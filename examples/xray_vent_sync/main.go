// The paper's X-ray/ventilator interoperability scenario (Section II.b):
// take chest images of an anesthetized, mechanically ventilated patient.
// Three coordination protocols compete:
//
//	manual         — shoot whenever asked (current practice)
//	pause-restart  — pause the ventilator, shoot, restart it
//	state-sync     — predict the end-of-exhale window from the
//	                 ventilator's transmitted cycle state and fire inside it
//
//	go run ./examples/xray_vent_sync
package main

import (
	"fmt"

	"repro/internal/closedloop"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

func run(proto closedloop.SyncProtocol) {
	k := sim.NewKernel()
	rng := sim.NewRNG(5)
	net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	patient := physio.DefaultPatient(rng.Fork("patient"))

	vent := device.MustNewVentilator(k, net, "vent1", physio.DefaultBreathCycle(), patient, core.ConnectConfig{})
	xray := device.MustNewXRay(k, net, "xr1", vent, core.ConnectConfig{})
	ward := device.NewWard(k, patient, sim.Second)
	ward.AttachVentSupport(vent)
	tr := sim.NewTrace()
	ward.Trace = tr

	sync := closedloop.MustNewXRaySync(k, mgr, closedloop.DefaultXRaySyncConfig("xr1", "vent1", proto))

	// Ten images requested over five minutes.
	for i := 0; i < 10; i++ {
		at := 20*sim.Second + sim.Time(i)*30*sim.Second
		k.At(at, func() { sync.RequestImage() })
	}
	if err := k.Run(8 * sim.Minute); err != nil {
		panic(err)
	}

	unventilated := 0.0
	ev := tr.Series("true/extvent")
	for i := 0; i+1 < len(ev); i++ {
		if ev[i].V < 0.5 {
			unventilated += (ev[i+1].T - ev[i].T).Seconds()
		}
	}
	fmt.Printf("%-14s sharp=%d blurred=%d deferred=%d | unventilated %.0f s, min SpO2 %.1f%%\n",
		proto, xray.Sharp, xray.Blurred, sync.Deferred,
		unventilated, tr.Stats("true/spo2").Min)
}

func main() {
	fmt.Println("10 chest images during mechanical ventilation, healthy 2 ms network:")
	fmt.Println()
	for _, p := range []closedloop.SyncProtocol{
		closedloop.ProtocolManual,
		closedloop.ProtocolPauseRestart,
		closedloop.ProtocolStateSync,
	} {
		run(p)
	}
	fmt.Println()
	fmt.Println("state-sync gets sharp images with zero interruption of ventilation —")
	fmt.Println("the paper's \"safer alternative, although presenting tighter timing constraints\".")
}
