// Tele-ICU / continuous home monitoring (paper trend II.d): four home
// patients stream vitals to a tele-ICU hub over a WAN. One of them takes
// too much of their prescribed opioid at home. How fast does the hub find
// out, store-and-forward versus streaming?
//
//	go run ./examples/teleicu
package main

import (
	"fmt"
	"time"

	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func run(mode telemetry.Mode, flush time.Duration) {
	k := sim.NewKernel()
	rng := sim.NewRNG(10)
	net := mednet.MustNew(k, rng.Fork("net"), mednet.LinkParams{
		Latency: 60 * time.Millisecond, Jitter: 20 * time.Millisecond, LossProb: 0.01,
	})
	hub := telemetry.NewAggregator(k, net, "tele-icu", []telemetry.AlertRule{
		{Signal: "spo2", Below: 90},
	})
	hub.OnAlert(func(a telemetry.Alert) {
		fmt.Printf("   [%v] hub alert: %s SpO2 %.1f%% (measured %v ago)\n",
			a.SeenAt.Duration(), a.PatientID, a.Value, a.Latency().Duration().Round(time.Millisecond))
	})

	for i := 0; i < 4; i++ {
		i := i
		prng := rng.Fork(fmt.Sprintf("p%d", i))
		patient := physio.DefaultPopulation().Sample(i, prng)
		mon := telemetry.MustNewRemoteMonitor(k, net, fmt.Sprintf("home-%d", i), telemetry.UplinkConfig{
			Mode: mode, FlushInterval: flush, Aggregator: "tele-icu",
		})
		k.Every(15*time.Second, func(sim.Time) {
			patient.Step(15*sim.Second, 0)
			mon.Record("spo2", patient.Vitals().SpO2+prng.Normal(0, 0.5))
		})
		if i == 2 { // patient 2 overdoses at home at t=30 min
			k.At(30*sim.Minute, func() { patient.Bolus(25) })
		}
	}

	name := mode.String()
	if mode == telemetry.StoreAndForward {
		name = fmt.Sprintf("%s (flush every %v)", name, flush)
	}
	fmt.Printf("%s:\n", name)
	if err := k.Run(90 * sim.Minute); err != nil {
		panic(err)
	}
	if len(hub.Alerts()) == 0 {
		fmt.Println("   deterioration never reached the hub!")
	}
	fmt.Println()
}

func main() {
	run(telemetry.StoreAndForward, 15*time.Minute)
	run(telemetry.StoreAndForward, time.Minute)
	run(telemetry.Streaming, 0)
	fmt.Println("Streaming turns home monitoring into real-time care — the paper's")
	fmt.Println("prerequisite for physiologically closed-loop telemedicine.")
}
