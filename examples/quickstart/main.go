// Quickstart: bring up a minimal Integrated Clinical Environment — one
// simulated patient, one pulse oximeter, an ICE manager — and watch five
// minutes of SpO2 estimates arrive over the (simulated) hospital network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

func main() {
	// Everything runs on one deterministic virtual clock.
	k := sim.NewKernel()
	rng := sim.NewRNG(1)

	// A hospital LAN: 2 ms latency, 1 ms jitter, no loss.
	net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())

	// The ICE manager admits devices, tracks liveness and routes data.
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())

	// A post-operative patient (two-compartment morphine PK, Emax PD,
	// vitals) advanced every second by the ward runner.
	patient := physio.DefaultPatient(rng.Fork("patient"))
	device.NewWard(k, patient, sim.Second)

	// A pulse oximeter: synthesizes a photoplethysmogram from the
	// patient's true vitals and publishes processed estimates, one per
	// 4-second analysis window.
	device.MustNewOximeter(k, net, "ox1", patient, rng.Fork("ox"), core.ConnectConfig{})

	// Subscribe like a monitoring app would.
	mgr.Subscribe("ox1/spo2", func(from string, d core.Datum) {
		if k.Now()%(30*sim.Second) < 4*sim.Second { // print every ~30 s
			fmt.Printf("t=%-8v %s reports SpO2 %.1f%% (valid=%v, quality %.2f)\n",
				k.Now().Duration(), from, d.Value, d.Valid, d.Quality)
		}
	})

	// Watch plug-and-play admission happen.
	mgr.WatchDevices(func(id string, st core.DeviceStatus) {
		fmt.Printf("t=%-8v device %s: admitted=%v alive=%v (%s %s)\n",
			k.Now().Duration(), id, st.Admitted, st.Alive,
			st.Descriptor.Manufacturer, st.Descriptor.Model)
	})

	if err := k.Run(5 * sim.Minute); err != nil {
		panic(err)
	}
	v := patient.Vitals()
	fmt.Printf("\nafter 5 virtual minutes: true SpO2 %.1f%%, HR %.0f bpm, pain %.1f/10\n",
		v.SpO2, v.HeartRate, v.Pain)
}
