// The paper's Figure 1, end to end: a misprogrammed PCA pump and a
// button-pressing visitor (PCA-by-proxy) push a post-operative patient
// toward respiratory failure; the ICE supervisor watches the pulse
// oximeter stream and stops the pump when desaturation begins.
//
// The same scenario runs twice — without and with the supervisor — and
// prints what each configuration did to the patient.
//
//	go run ./examples/pca_closedloop
package main

import (
	"fmt"

	"repro/internal/closedloop"
	"repro/internal/sim"
)

func main() {
	const seed = 42

	fmt.Println("== scenario: 2x drug concentration, lax limits, visitor pressing every 3 min ==")
	fmt.Println()

	for _, supervised := range []bool{false, true} {
		cfg := closedloop.DefaultPCAScenario(seed)
		cfg.SupervisorEnabled = supervised

		sc := closedloop.BuildPCAScenario(cfg)
		if supervised {
			sc.Sup.OnAlarm(func(a closedloop.Alarm) {
				fmt.Printf("   [%v] ALARM %s: %s\n", a.At.Duration(), a.Kind, a.Msg)
			})
		}
		out, err := sc.Run(cfg.Duration)
		if err != nil {
			panic(err)
		}

		name := "WITHOUT supervisor"
		if supervised {
			name = "WITH supervisor"
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("   drug delivered: %.1f mg  (boluses %d, denied by lockout %d)\n",
			out.TotalDrugMg, out.Boluses, out.BolusesDenied)
		fmt.Printf("   min SpO2 %.1f%%, time below 90%%: %.0f s, below 85%%: %.0f s\n",
			out.MinSpO2, out.SecondsBelow90, out.SecondsBelow85)
		if out.Distressed {
			fmt.Println("   outcome: PATIENT IN RESPIRATORY DISTRESS")
		} else {
			fmt.Println("   outcome: patient safe")
		}
		if supervised {
			fmt.Printf("   supervisor: %d stops, mean decision-to-ack latency %v\n",
				out.PumpStops, out.MeanStopLatency.Duration())
		}
		fmt.Println()
	}

	fmt.Println("The supervisor cannot retrieve drug already on board; it wins by cutting")
	fmt.Println("delivery at the first sustained desaturation — the paper's closed-loop case.")
	_ = sim.Second
}
