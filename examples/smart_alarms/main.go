// Smart alarms (paper challenge (i) and the mixed-criticality scenario):
// one patient, three disturbances —
//
//  1. a mispositioned SpO2 probe reading 15 points low (valid but wrong),
//  2. a bed raise shifting the MAP transducer reading,
//  3. a genuine opioid-driven desaturation,
//
// evaluated by a naive threshold engine and by the multivariate+context
// engine. Only the genuine event should alarm on the smart engine.
//
//	go run ./examples/smart_alarms
package main

import (
	"fmt"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

func run(smart bool) {
	k := sim.NewKernel()
	rng := sim.NewRNG(17)
	net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	patient := physio.DefaultPatient(rng.Fork("patient"))

	ox := device.MustNewOximeter(k, net, "ox1", patient, rng.Fork("ox"), core.ConnectConfig{})
	bed := device.MustNewBed(k, net, "bed1", core.ConnectConfig{})
	device.MustNewMonitor(k, net, "mon1", patient, bed, 2*time.Second, rng.Fork("mon"), core.ConnectConfig{})
	device.MustNewCapnograph(k, net, "cap1", patient, 2*time.Second, rng.Fork("cap"), core.ConnectConfig{})
	device.NewWard(k, patient, sim.Second)

	eng := alarm.NewEngine()
	eng.MustAddRule(alarm.ThresholdRule{
		Name: "spo2-low", Signal: "spo2", Low: 90, High: 101,
		Sustain: 15 * sim.Second, Priority: alarm.Crisis, Refractory: 5 * sim.Minute,
	})
	eng.MustAddRule(alarm.ThresholdRule{
		Name: "map-low", Signal: "map", Low: 62, High: 115,
		Sustain: 20 * sim.Second, Priority: alarm.Warning, Refractory: 5 * sim.Minute,
	})
	if smart {
		// The paper's own reasoning: a real desaturation derails other
		// channels; a probe artifact leaves them pristine.
		_ = eng.AddCorroboration(alarm.Corroboration{
			Rule: "spo2-low", MaxAge: 45 * sim.Second,
			Conditions: []alarm.Condition{
				{Signal: "etco2", Low: 30, High: 50},
				{Signal: "rr", Low: 9, High: 24},
				{Signal: "hr", Low: 50, High: 115},
			},
		})
		_ = eng.AddContextSuppression(alarm.ContextSuppression{
			Rule: "map-low", Event: "bed-moved", Window: 2 * sim.Minute,
		})
		mgr.Subscribe("bed1/height", func(string, core.Datum) {
			eng.ObserveContext(k.Now(), "bed-moved")
		})
	}
	feed := func(topic, signal string) {
		mgr.Subscribe(topic, func(_ string, d core.Datum) {
			eng.Observe(k.Now(), signal, d.Value, d.Valid)
		})
	}
	feed("ox1/spo2", "spo2")
	feed("mon1/map", "map")
	feed("mon1/hr", "hr")
	feed("mon1/rr", "rr")
	feed("cap1/etco2", "etco2")

	eng.OnEvent(func(ev alarm.Event) {
		fmt.Printf("   [%v] %s %s\n", ev.At.Duration(), ev.Priority, ev.Msg)
	})

	// Disturbance 1: probe misposition at t=10 min (false low SpO2).
	k.At(10*sim.Minute, func() { ox.InjectBias(4*sim.Minute, 15) })
	// Disturbance 2: bed raised at t=25 min (false low MAP reading).
	k.At(25*sim.Minute, func() { _ = bed.SetHeight(0.6) })
	k.At(27*sim.Minute, func() { _ = bed.SetHeight(0) })
	// Disturbance 3: genuine opioid overdose at t=40 min.
	k.At(40*sim.Minute, func() { patient.Bolus(22) })

	label := "threshold-only engine"
	if smart {
		label = "multivariate + context engine"
	}
	fmt.Printf("%s:\n", label)
	if err := k.Run(70 * sim.Minute); err != nil {
		panic(err)
	}
	fmt.Printf("   total alarms: %d (suppressed: %d artifact-like, %d context)\n\n",
		len(eng.Events()), eng.SuppressedByCorroboration, eng.SuppressedByContext)
}

func main() {
	run(false)
	run(true)
}
