// Package repro's root benchmarks regenerate every experiment in
// DESIGN.md's index (the paper, a position paper, has one figure and no
// tables; F1 reproduces the figure, E2-E13 quantify its textual claims,
// and A1 ablates the supervisor design). Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its full experiment per iteration and reports
// the headline metric via b.ReportMetric, so regressions in either
// performance or experimental shape are visible. cmd/icerun prints the
// same tables for human reading, and BenchmarkFleetPCAScaling tracks
// multi-room throughput of the fleet runner as the worker pool widens.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/closedloop"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icegate"
	"repro/internal/icemesh"
	"repro/internal/sim"
)

// cellFloat parses a formatted table cell for metric reporting.
func cellFloat(tb testing.TB, cell string) float64 {
	cleaned := ""
	for _, r := range cell {
		if (r >= '0' && r <= '9') || r == '.' || r == '-' {
			cleaned += string(r)
		} else {
			break
		}
	}
	v, err := strconv.ParseFloat(cleaned, 64)
	if err != nil {
		tb.Fatalf("unparseable cell %q: %v", cell, err)
	}
	return v
}

func BenchmarkF1PCAControlLoop(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.F1PCAControlLoop(experiments.F1Options{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Row 0 unsupervised, row 1 supervised; column 1 is min SpO2.
	b.ReportMetric(cellFloat(b, last.Rows[0][1]), "minSpO2-unsup")
	b.ReportMetric(cellFloat(b, last.Rows[1][1]), "minSpO2-sup")
	b.ReportMetric(cellFloat(b, last.Rows[1][3]), "s<85-sup")
}

func BenchmarkE2XrayVentSync(b *testing.B) {
	opt := experiments.DefaultE2()
	opt.Requests = 12
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E2XrayVentSync(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Sharp counts at the 2 ms column for each protocol (rows 0, 7, 14).
	b.ReportMetric(cellFloat(b, last.Rows[0][2]), "sharp-manual-2ms")
	b.ReportMetric(cellFloat(b, last.Rows[7][2]), "sharp-pause-2ms")
	b.ReportMetric(cellFloat(b, last.Rows[14][2]), "sharp-sync-2ms")
}

func BenchmarkE3SmartAlarms(b *testing.B) {
	opt := experiments.E3Options{Seed: 3, Patients: 4, Duration: 4 * sim.Hour}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E3SmartAlarms(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last.Rows[0][3]), "false-threshold")
	b.ReportMetric(cellFloat(b, last.Rows[2][3]), "false-full")
}

func BenchmarkE4SupervisoryControl(b *testing.B) {
	opt := experiments.E4Options{Seed: 4, Patients: 16, Duration: 2 * sim.Hour}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4SupervisoryControl(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last.Rows[0][3]), "danger-fixed")
	b.ReportMetric(cellFloat(b, last.Rows[1][3]), "danger-adaptive")
}

func BenchmarkE5WorkflowVerify(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5WorkflowVerify()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	states := 0.0
	for _, r := range last.Rows {
		states += cellFloat(b, r[2])
	}
	b.ReportMetric(states, "total-states")
}

func BenchmarkE6CommFailure(b *testing.B) {
	opt := experiments.E6Options{Seed: 7, Duration: sim.Hour, Losses: []float64{0, 0.2, 0.4}}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E6CommFailure(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Worst-case loss rows: fail-safe is row 2, fail-operational row 5.
	b.ReportMetric(cellFloat(b, last.Rows[2][3]), "s<85-failsafe-40pct")
	b.ReportMetric(cellFloat(b, last.Rows[5][3]), "s<85-failop-40pct")
}

func BenchmarkE7AdaptiveThresholds(b *testing.B) {
	opt := experiments.E7Options{Seed: 5, Athletes: 6, Average: 6, Duration: 8 * sim.Hour}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E7AdaptiveThresholds(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last.Rows[0][3]), "false-population")
	b.ReportMetric(cellFloat(b, last.Rows[1][3]), "false-personalized")
}

func BenchmarkE8IncrementalCert(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E8IncrementalCert()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last.Rows[0][1]), "evidence-reexamined-row0")
}

func BenchmarkE9Security(b *testing.B) {
	opt := experiments.E9Options{Seed: 9, ForgedCommands: 100}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E9Security(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last.Rows[0][1]), "forged-executed-open")
	b.ReportMetric(cellFloat(b, last.Rows[1][1]), "forged-executed-hmac")
}

func BenchmarkE10Telemetry(b *testing.B) {
	opt := experiments.E10Options{Seed: 10, Patients: 4}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E10Telemetry(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	slow, err := time.ParseDuration(last.Rows[0][2])
	if err != nil {
		b.Fatal(err)
	}
	fast, err := time.ParseDuration(last.Rows[len(last.Rows)-1][2])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(slow.Seconds(), "latency-sf15m-s")
	b.ReportMetric(fast.Seconds(), "latency-streaming-s")
}

func BenchmarkE11MixedCriticality(b *testing.B) {
	opt := experiments.E11Options{Seed: 11, Duration: 4 * sim.Hour, BedMoves: 8}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E11MixedCriticality(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last.Rows[0][3]), "false-no-context")
	b.ReportMetric(cellFloat(b, last.Rows[1][3]), "false-with-context")
}

func BenchmarkA1SupervisorAblation(b *testing.B) {
	opt := experiments.A1Options{
		Seed: 42, Duration: sim.Hour,
		StopSpO2s: []float64{91, 95},
		Delays:    []time.Duration{100 * time.Millisecond, 10 * time.Second},
	}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.A1SupervisorAblation(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Corner cells: permissive/slow vs strict/fast minimum SpO2.
	b.ReportMetric(cellFloat(b, last.Rows[1][2]), "minSpO2-91-slow")
	b.ReportMetric(cellFloat(b, last.Rows[2][2]), "minSpO2-95-fast")
}

func BenchmarkE13UserModel(b *testing.B) {
	opt := experiments.E13Options{Seed: 13, RunsPerCell: 100, ErrorRates: []float64{0.05}}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E13UserModel(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	var worst float64
	for _, r := range last.Rows {
		v := cellFloat(b, r[3])
		if v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst-P-unsafe")
}

// BenchmarkFleetPCAScaling runs a fixed fleet of independent PCA patient
// rooms at increasing worker counts, with prototype cloning on (proto=1,
// the default path) and off (proto=0, every cell constructed from
// scratch). The cells/s metric is the headline: it should scale with
// workers up to the core count, the proto=1 rows should dominate
// proto=0, and the reduced clinical outcome stays bit-identical across
// all of it (the determinism tests assert the bytes; the benchmark
// reports the mean nadir as a tripwire).
func BenchmarkFleetPCAScaling(b *testing.B) {
	const cells = 8
	for _, proto := range []bool{true, false} {
		for _, workers := range []int{1, 2, 4, 8} {
			p := 0
			if proto {
				p = 1
			}
			b.Run(fmt.Sprintf("workers=%d/proto=%d", workers, p), func(b *testing.B) {
				spec, err := fleet.Build(fleet.ScenarioPCASupervised, fleet.Params{
					Seed: 42, Cells: cells, Duration: 30 * sim.Minute,
				})
				if err != nil {
					b.Fatal(err)
				}
				runner := fleet.Runner{Workers: workers, NoPrototype: !proto}
				var last []fleet.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := runner.Run(spec)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.StopTimer()
				b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
				b.ReportMetric(fleet.Reduce(last).Mean(closedloop.MetricMinSpO2), "mean-minSpO2")
			})
		}
	}
}

// BenchmarkMeshScaling drives a latency-bound tele-ICU probe fleet
// through an in-process icemesh cluster (coordinator + N node runtimes
// over real TCP on localhost) at increasing node counts. Probe cells
// spend most of their wall time waiting on a seed-derived remote RTT
// (rtt_ms knob), not on the CPU, so adding nodes buys real concurrency
// even on a single-core host — this is the workload the streaming
// work-stealing coordinator has to scale: cells/s at 2 nodes should be
// >= 1.8x the 1-node rate, and >= 3.4x at 4 nodes. The reduced clinical
// outcome stays bit-identical to local execution (the mesh differential
// tests assert the bytes; the benchmark reports the mean nadir as a
// tripwire). Set -benchtime 1x: one iteration runs the full fleet.
func BenchmarkMeshScaling(b *testing.B) {
	cells := 10000
	if testing.Short() {
		cells = 400
	}
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			coord := icemesh.NewCoordinator(icemesh.Config{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go coord.Serve(ln)
			ctx, cancel := context.WithCancel(context.Background())
			defer func() { cancel(); ln.Close(); coord.Close() }()
			for i := 0; i < nodes; i++ {
				node := icemesh.NewNode(icemesh.NodeConfig{
					Coordinator: ln.Addr().String(), Workers: 2,
				})
				go func() { _ = node.Run(ctx) }()
			}
			waitCtx, waitCancel := context.WithTimeout(ctx, 10*time.Second)
			defer waitCancel()
			if err := coord.WaitForNodes(waitCtx, nodes); err != nil {
				b.Fatal(err)
			}

			spec, err := fleet.Build(fleet.ScenarioTeleICUProbe, fleet.Params{
				Seed: 42, Cells: cells, Duration: sim.Minute,
				Knobs: map[string]float64{"rtt_ms": 8},
			})
			if err != nil {
				b.Fatal(err)
			}
			runner := fleet.Runner{Workers: 2, Engine: coord}
			var last []fleet.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := runner.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
			b.ReportMetric(fleet.Reduce(last).Mean(closedloop.MetricMinSpO2), "mean-minSpO2")
		})
	}
}

func BenchmarkE12TemporalInduction(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E12TemporalInduction()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	proved := 0.0
	for _, r := range last.Rows {
		if r[3] == "proved" {
			proved++
		}
	}
	b.ReportMetric(proved, "proofs-closed")
}

// BenchmarkGatewayThroughput drives the icegate serving layer end to end
// over HTTP: each iteration submits one PCA ensemble as a job, polls it
// to completion, and fetches the rendered table — the serving-side
// analogue of BenchmarkFleetPCAScaling. Seeds vary per iteration so the
// deterministic result cache never short-circuits the simulation; the
// cells/s metric therefore measures scheduling + fleet + HTTP overhead,
// not cache replay.
func BenchmarkGatewayThroughput(b *testing.B) {
	const cells = 8
	sched := icegate.NewScheduler(icegate.Config{QueueDepth: 16, Executors: 2, Workers: 8})
	ts := httptest.NewServer(icegate.NewHandler(sched))
	defer func() {
		ts.Close()
		sched.Close()
	}()

	do := func(req *http.Request) map[string]any {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			b.Fatal(err)
		}
		return v
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"scenario":%q,"seed":%d,"cells":%d,"duration_s":1800}`,
			fleet.ScenarioPCASupervised, 1000+i, cells)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs",
			strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		v := do(req)
		id, _ := v["id"].(string)
		if id == "" {
			b.Fatalf("submit refused: %v", v)
		}
		for {
			get, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/jobs/"+id, nil)
			status, _ := do(get)["status"].(string)
			if status == "done" {
				break
			}
			if status == "failed" || status == "cancelled" {
				b.Fatalf("job %s ended %s", id, status)
			}
			time.Sleep(2 * time.Millisecond)
		}
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/result")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}
