package icescope

import (
	"sync"
	"time"
)

// SpanEventKind distinguishes the three moments a trace can announce.
type SpanEventKind uint8

const (
	// EventStart announces a span that just opened (End is zero and
	// meaningless; the closing EventEnd repeats Start, so consumers that
	// only care about completed spans can ignore starts entirely).
	EventStart SpanEventKind = iota + 1
	// EventEnd announces a completed span and is self-contained: it
	// carries both offsets and the attributes.
	EventEnd
	// EventInstant announces a zero-duration marker (Start == End).
	EventInstant
)

// String renders the kind for NDJSON export.
func (k SpanEventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventEnd:
		return "end"
	case EventInstant:
		return "instant"
	}
	return "unknown"
}

// SpanEvent is one entry of a trace's live event stream. Offsets are
// monotonic durations from the trace epoch, so a consumer needs no
// clock agreement with the producer. Seq is assigned at publication
// and strictly increases within one trace.
type SpanEvent struct {
	Seq    uint64
	Kind   SpanEventKind
	Span   SpanID
	Parent SpanID
	Tid    int32
	Name   string
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// eventLog is the bounded, drop-counting event plane behind a trace.
// It exists only when StreamEvents armed it; the nil case keeps every
// publication down to one pointer load on un-streamed traces.
type eventLog struct {
	mu      sync.Mutex
	max     int
	seq     uint64
	log     []SpanEvent
	subs    []chan SpanEvent
	onEvent func(SpanEvent)
	forward bool // ForwardEvents mode: no retention, no subscribers
	closed  bool
	dropped uint64
}

// StreamEvents arms the trace's live event plane with a bound of max
// retained events (<=0 picks 4096). Beyond the bound events are
// counted as dropped — from the log, from every subscriber, and from
// the OnEvent callback alike — so a pathological span storm degrades
// the stream, never the process. Must be called before recording
// begins (like SetMaxSpans, it is not synchronized against recording).
func (t *Trace) StreamEvents(max int) {
	if t == nil {
		return
	}
	if max <= 0 {
		max = 4096
	}
	t.events = &eventLog{max: max}
}

// ForwardEvents arms the event plane in forward-only mode: fn receives
// every published event synchronously on the publishing goroutine, and
// nothing is retained for replay — so arbitrarily long traces forward
// with memory bounded by the consumer's own flush cadence, never the
// replay bound. SubscribeEvents on a forward-only trace behaves as if
// the plane were unarmed. The mesh node uses this to ship span batches.
// Must be called before recording begins.
func (t *Trace) ForwardEvents(fn func(SpanEvent)) {
	if t == nil || fn == nil {
		return
	}
	t.events = &eventLog{onEvent: fn, forward: true}
}

// EventsArmed reports whether StreamEvents armed the live plane.
func (t *Trace) EventsArmed() bool { return t != nil && t.events != nil }

// EventsDropped reports events discarded over the stream bound.
func (t *Trace) EventsDropped() uint64 {
	if t == nil || t.events == nil {
		return 0
	}
	l := t.events
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// OnEvent registers a synchronous callback invoked for every published
// event, on the publishing goroutine, after the event is logged. One
// callback per trace (last registration wins); used by the mesh node to
// forward completed spans. Must be registered before recording begins.
func (t *Trace) OnEvent(fn func(SpanEvent)) {
	if t == nil || t.events == nil {
		return
	}
	l := t.events
	l.mu.Lock()
	l.onEvent = fn
	l.mu.Unlock()
}

// SubscribeEvents returns the events published so far and a live
// channel for the rest. The channel is buffered to the stream bound, so
// publication never blocks on a slow subscriber; it is closed when the
// trace's event plane closes (CloseEvents) — or immediately, when the
// plane is already closed or was never armed. cancel detaches the
// subscriber early (idempotent, never required).
func (t *Trace) SubscribeEvents() (replay []SpanEvent, live <-chan SpanEvent, cancel func()) {
	if t == nil || t.events == nil || t.events.forward {
		ch := make(chan SpanEvent)
		close(ch)
		return nil, ch, func() {}
	}
	l := t.events
	l.mu.Lock()
	defer l.mu.Unlock()
	replay = append([]SpanEvent(nil), l.log...)
	ch := make(chan SpanEvent, l.max)
	if l.closed {
		close(ch)
		return replay, ch, func() {}
	}
	l.subs = append(l.subs, ch)
	return replay, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		for i, s := range l.subs {
			if s == ch {
				l.subs = append(l.subs[:i], l.subs[i+1:]...)
				return
			}
		}
	}
}

// CloseEvents ends the live stream: every subscriber channel closes
// after draining, and further publications are discarded (not counted
// as drops — the trace is over). Idempotent; safe on an unarmed trace.
func (t *Trace) CloseEvents() {
	if t == nil || t.events == nil {
		return
	}
	l := t.events
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, ch := range l.subs {
		close(ch)
	}
	l.subs = nil
	l.onEvent = nil
}

// publish appends the event to the log and fans it out. The event-log
// mutex bounds the critical section; the OnEvent callback runs outside
// it (still on the publishing goroutine, so per-goroutine order holds).
func (t *Trace) publish(ev SpanEvent) {
	if t == nil || t.events == nil {
		return
	}
	l := t.events
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if !l.forward && len(l.log) >= l.max {
		l.dropped++
		l.mu.Unlock()
		return
	}
	l.seq++
	ev.Seq = l.seq
	if !l.forward {
		l.log = append(l.log, ev)
		for _, ch := range l.subs {
			// Cannot block: the channel is buffered to the log bound and
			// every send corresponds to a log append after the subscriber's
			// replay snapshot.
			ch <- ev
		}
	}
	fn := l.onEvent
	l.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// Now reports the current instant as a trace-clock offset. The mesh
// coordinator uses it to re-base forwarded node offsets onto the job
// trace's epoch.
func (t *Trace) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.since()
}

// InjectSpan records an already-completed span with caller-supplied
// offsets — the seam for spans that happened elsewhere (a node's cell
// span, re-based onto this trace's clock). It publishes a start and an
// end event, so live subscribers see injected spans mid-job exactly
// like native ones. Offsets are clamped to be non-decreasing.
func (t *Trace) InjectSpan(parent Span, name string, start, end time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	if start < 0 {
		start = 0
	}
	if end < start {
		end = start
	}
	id := SpanID(t.ids.Add(1))
	t.publish(SpanEvent{Kind: EventStart, Span: id, Parent: parent.id, Name: name, Start: start})
	t.publish(SpanEvent{Kind: EventEnd, Span: id, Parent: parent.id, Name: name, Start: start, End: end, Attrs: attrs})
	if !t.admit() {
		return
	}
	rec := spanRec{id: id, parent: parent.id, name: name, start: start, end: end, attrs: attrs}
	t.mu.Lock()
	t.ctl = append(t.ctl, rec)
	t.mu.Unlock()
}

// SelfTimes aggregates per-span-name *self* time — each span's duration
// minus the summed duration of its direct children, floored at zero —
// across the whole trace. Self time is what trace-attribution diffing
// wants: a parent that merely waits on its children contributes
// nothing, so a regression shows up under the span that actually moved.
// Snapshot rules apply: call only after the traced work has completed.
func (t *Trace) SelfTimes() map[string]time.Duration {
	if t == nil {
		return nil
	}
	spans := t.snapshot()
	childSum := make(map[SpanID]time.Duration, len(spans))
	for i := range spans {
		sp := &spans[i]
		if sp.parent != 0 {
			childSum[sp.parent] += sp.end - sp.start
		}
	}
	out := make(map[string]time.Duration)
	for i := range spans {
		sp := &spans[i]
		self := (sp.end - sp.start) - childSum[sp.id]
		if self < 0 {
			self = 0
		}
		out[sp.name] += self
	}
	return out
}
