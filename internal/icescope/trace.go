package icescope

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within its trace; 0 means "no span" (a
// root has parent 0).
type SpanID uint64

// Attr is one key/value annotation on a span. Exactly one of Str/Num is
// meaningful (isStr selects); the constructors below keep call sites
// readable and allocation-free beyond the variadic slice.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	isStr bool
}

// StrAttr annotates a span with a string value.
func StrAttr(key, value string) Attr { return Attr{Key: key, Str: value, isStr: true} }

// NumAttr annotates a span with a numeric value.
func NumAttr(key string, value float64) Attr { return Attr{Key: key, Num: value} }

// IntAttr annotates a span with an integer value.
func IntAttr(key string, value int) Attr { return Attr{Key: key, Num: float64(value)} }

// Value returns the attribute's payload as the type it was set with —
// string or float64 — for JSON renderers outside the package.
func (a Attr) Value() any {
	if a.isStr {
		return a.Str
	}
	return a.Num
}

// IsStr reports whether the attribute holds a string (false: numeric).
func (a Attr) IsStr() bool { return a.isStr }

// spanRec is one completed span as stored in a trace.
type spanRec struct {
	id, parent SpanID
	tid        int32 // recording buffer (0 = control plane), the Chrome export's tid
	name       string
	start, end time.Duration // monotonic offsets from the trace epoch
	attrs      []Attr
}

// Trace is one job's (or one process's) span recorder. All methods are
// nil-safe: a nil *Trace and the zero Span record nothing and cost a
// branch, so instrumented code needs no "is tracing on" plumbing.
//
// Two recording planes, by write frequency:
//
//   - Control plane — Trace.Start/Span.End, Trace.Instant: appended
//     under the trace mutex; safe to start and end on different
//     goroutines (a job span opened by the submitter and closed by an
//     executor, a shard span closed by a connection reader).
//   - Data plane — Trace.Buffer, Buffer.Start: each Buffer is owned by
//     exactly one worker goroutine and appends lock-free; per-cell
//     spans on the fleet's hot path take this route.
//
// A trace caps its span count (SetMaxSpans, default 65536): beyond the
// cap spans are counted as dropped rather than recorded, so a pathological
// workload degrades the trace, never the process. Snapshots (export,
// Coverage) must happen after the traced work has completed — worker
// buffers are not synchronized against their owning goroutines.
type Trace struct {
	name    string
	wall    time.Time // epoch: wall clock for export, monotonic base for offsets
	ids     atomic.Uint64
	max     int64
	count   atomic.Int64
	dropped atomic.Uint64

	mu   sync.Mutex
	ctl  []spanRec
	bufs []*Buffer

	// events is the live streaming plane (events.go); nil until
	// StreamEvents arms it, so un-streamed traces pay one pointer load
	// per publication site.
	events *eventLog
}

// NewTrace starts an empty trace whose epoch is now.
func NewTrace(name string) *Trace {
	return &Trace{name: name, wall: time.Now(), max: 65536}
}

// Name reports the trace's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// SetMaxSpans bounds the number of recorded spans; further spans are
// dropped (and counted). Not safe to call concurrently with recording.
func (t *Trace) SetMaxSpans(n int) {
	if t != nil && n > 0 {
		t.max = int64(n)
	}
}

// Dropped reports spans discarded over the cap.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// since is the monotonic offset of now from the trace epoch.
func (t *Trace) since() time.Duration { return time.Since(t.wall) }

// admit consumes one slot under the span cap.
func (t *Trace) admit() bool {
	if t.count.Add(1) > t.max {
		t.count.Add(-1)
		t.dropped.Add(1)
		return false
	}
	return true
}

// Span is an in-flight span handle. The zero Span is inert: Start on a
// nil trace returns it, and End/Child on it are no-ops, which is what
// lets un-traced runs share the instrumented code path.
type Span struct {
	tr     *Trace
	buf    *Buffer
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration
}

// Active reports whether the span records anywhere.
func (s Span) Active() bool { return s.tr != nil }

// ID exposes the span's trace-unique ID (0 for the zero Span).
func (s Span) ID() SpanID { return s.id }

// Trace returns the owning trace (nil for the zero Span).
func (s Span) Trace() *Trace { return s.tr }

// Start opens a control-plane span under parent (the zero Span parents
// a root). The returned handle may End on any goroutine.
func (t *Trace) Start(parent Span, name string) Span {
	if t == nil {
		return Span{}
	}
	s := Span{
		tr: t, id: SpanID(t.ids.Add(1)), parent: parent.id,
		name: name, start: t.since(),
	}
	if t.events != nil {
		t.publish(SpanEvent{Kind: EventStart, Span: s.id, Parent: s.parent, Name: name, Start: s.start})
	}
	return s
}

// Child opens a control-plane span under s; inert when s is.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.Start(s, name)
}

// End completes the span, recording it with optional attributes. A span
// never ended is never recorded. Ending the zero Span is a no-op. The
// end event publishes even when the span itself drops over the cap —
// the live stream has its own bound and its own drop counter.
func (s Span) End(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	rec := spanRec{
		id: s.id, parent: s.parent, name: s.name,
		start: s.start, end: s.tr.since(), attrs: attrs,
	}
	if s.buf != nil {
		rec.tid = s.buf.tid
	}
	if s.tr.events != nil {
		s.tr.publish(SpanEvent{
			Kind: EventEnd, Span: s.id, Parent: s.parent, Tid: rec.tid,
			Name: s.name, Start: s.start, End: rec.end, Attrs: attrs,
		})
	}
	if !s.tr.admit() {
		return
	}
	if s.buf != nil {
		s.buf.spans = append(s.buf.spans, rec)
		return
	}
	s.tr.mu.Lock()
	s.tr.ctl = append(s.tr.ctl, rec)
	s.tr.mu.Unlock()
}

// Instant records a zero-duration marker under parent — an event with a
// timestamp but no extent (a CellDone arrival, a heartbeat send). Like
// End, the live event publishes even when the marker drops over the
// span cap.
func (t *Trace) Instant(parent Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	at := t.since()
	id := SpanID(t.ids.Add(1))
	if t.events != nil {
		t.publish(SpanEvent{
			Kind: EventInstant, Span: id, Parent: parent.id,
			Name: name, Start: at, End: at, Attrs: attrs,
		})
	}
	if !t.admit() {
		return
	}
	rec := spanRec{id: id, parent: parent.id, name: name, start: at, end: at, attrs: attrs}
	t.mu.Lock()
	t.ctl = append(t.ctl, rec)
	t.mu.Unlock()
}

// Buffer is one worker goroutine's lock-free span sink. Exactly one
// goroutine may Start spans on a buffer (and must End them on the same
// goroutine); distinct workers get distinct buffers, so the data plane
// records without taking any lock.
type Buffer struct {
	tr    *Trace
	tid   int32
	spans []spanRec
}

// Buffer registers a new per-worker buffer (nil-safe: a nil trace
// returns a nil buffer, on which Start returns the inert zero Span).
func (t *Trace) Buffer() *Buffer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &Buffer{tr: t, tid: int32(len(t.bufs) + 1)}
	t.bufs = append(t.bufs, b)
	return b
}

// Start opens a data-plane span on the buffer's goroutine. Recording
// stays lock-free; when the trace's event plane is armed (StreamEvents)
// the start/end events additionally take the event-log mutex.
func (b *Buffer) Start(parent Span, name string) Span {
	if b == nil {
		return Span{}
	}
	s := Span{
		tr: b.tr, buf: b, id: SpanID(b.tr.ids.Add(1)), parent: parent.id,
		name: name, start: b.tr.since(),
	}
	if b.tr.events != nil {
		b.tr.publish(SpanEvent{Kind: EventStart, Span: s.id, Parent: s.parent, Tid: b.tid, Name: name, Start: s.start})
	}
	return s
}

// snapshot collects every recorded span. Callers must ensure the traced
// work has completed (worker buffers are single-owner, unsynchronized).
func (t *Trace) snapshot() []spanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]spanRec(nil), t.ctl...)
	for _, b := range t.bufs {
		out = append(out, b.spans...)
	}
	return out
}

// Coverage reports the fraction of the root span's wall time attributed
// to *leaf* spans — spans no other span claims as parent. Parent spans
// ("run") don't count: attribution means the trace explains where the
// time went, not merely that it went. Instants contribute nothing
// (zero width). Returns 0 when root was never recorded or has no
// duration.
func (t *Trace) Coverage(root Span) float64 {
	if t == nil {
		return 0
	}
	spans := t.snapshot()
	isParent := map[SpanID]bool{}
	var rootRec *spanRec
	for i := range spans {
		isParent[spans[i].parent] = true
		if spans[i].id == root.id {
			rootRec = &spans[i]
		}
	}
	if rootRec == nil || rootRec.end <= rootRec.start {
		return 0
	}
	type iv struct{ lo, hi time.Duration }
	var ivs []iv
	for i := range spans {
		sp := &spans[i]
		if sp.id == root.id || isParent[sp.id] {
			continue
		}
		lo, hi := max(sp.start, rootRec.start), min(sp.end, rootRec.end)
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	// Union of intervals via sweep.
	for i := 1; i < len(ivs); i++ { // insertion sort: control-plane sizes
		for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var covered, curLo, curHi time.Duration
	curLo, curHi = ivs[0].lo, ivs[0].hi
	for _, v := range ivs[1:] {
		if v.lo > curHi {
			covered += curHi - curLo
			curLo, curHi = v.lo, v.hi
			continue
		}
		curHi = max(curHi, v.hi)
	}
	covered += curHi - curLo
	return float64(covered) / float64(rootRec.end-rootRec.start)
}

// spanKey is the context key for cross-seam span propagation.
type spanKey struct{}

// ContextWithSpan threads a span across an interface seam (the fleet
// engine boundary): the caller cannot name the implementation's trace
// fields, but the context travels.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if !s.Active() {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext recovers the propagated span (the inert zero Span
// when none was attached).
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanKey{}).(Span)
	return s
}
