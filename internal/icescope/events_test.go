package icescope

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// drain collects everything currently buffered on a live channel
// without blocking on future events.
func drain(live <-chan SpanEvent) []SpanEvent {
	var out []SpanEvent
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestEventStreamStartEndInstant(t *testing.T) {
	tr := NewTrace("ev")
	tr.StreamEvents(64)
	if !tr.EventsArmed() {
		t.Fatal("StreamEvents did not arm the plane")
	}
	replay, live, cancel := tr.SubscribeEvents()
	defer cancel()
	if len(replay) != 0 {
		t.Fatalf("fresh trace replayed %d events", len(replay))
	}

	root := tr.Start(Span{}, "job")
	child := root.Child("work")
	child.End(IntAttr("cells", 3))
	tr.Instant(root, "ping", StrAttr("how", "test"))
	root.End()

	got := drain(live)
	// start(job), start(work), end(work), instant(ping), end(job)
	if len(got) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(got), got)
	}
	wantKinds := []SpanEventKind{EventStart, EventStart, EventEnd, EventInstant, EventEnd}
	wantNames := []string{"job", "work", "work", "ping", "job"}
	for i, ev := range got {
		if ev.Kind != wantKinds[i] || ev.Name != wantNames[i] {
			t.Fatalf("event %d = %s %q, want %s %q", i, ev.Kind, ev.Name, wantKinds[i], wantNames[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	// End events are self-contained: both offsets, attrs, and parentage.
	endWork := got[2]
	if endWork.Span != got[1].Span || endWork.Parent != got[0].Span {
		t.Fatalf("end(work) ids %d/%d do not match start events %+v", endWork.Span, endWork.Parent, got)
	}
	if endWork.End < endWork.Start {
		t.Fatalf("end(work) offsets inverted: %v > %v", endWork.Start, endWork.End)
	}
	if len(endWork.Attrs) != 1 || endWork.Attrs[0].Key != "cells" {
		t.Fatalf("end(work) attrs = %+v", endWork.Attrs)
	}
	if got[3].Start != got[3].End {
		t.Fatal("instant event has extent")
	}

	// A late subscriber replays the full history.
	replay2, live2, cancel2 := tr.SubscribeEvents()
	defer cancel2()
	if len(replay2) != 5 {
		t.Fatalf("late subscriber replayed %d events, want 5", len(replay2))
	}
	if n := len(drain(live2)); n != 0 {
		t.Fatalf("late subscriber got %d live events before any recording", n)
	}
}

func TestEventStreamBufferSpans(t *testing.T) {
	tr := NewTrace("buf")
	tr.StreamEvents(16)
	_, live, cancel := tr.SubscribeEvents()
	defer cancel()
	root := tr.Start(Span{}, "job")
	b := tr.Buffer()
	sp := b.Start(root, "cell run")
	sp.End(IntAttr("cell", 0))
	got := drain(live)
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3", len(got))
	}
	if got[1].Tid == 0 || got[2].Tid != got[1].Tid {
		t.Fatalf("buffer events did not carry the worker tid: %+v", got[1:])
	}
}

func TestEventStreamBoundAndDrops(t *testing.T) {
	tr := NewTrace("bound")
	tr.StreamEvents(4)
	_, live, cancel := tr.SubscribeEvents()
	defer cancel()
	for i := 0; i < 10; i++ {
		tr.Instant(Span{}, "tick")
	}
	if got := len(drain(live)); got != 4 {
		t.Fatalf("subscriber got %d events past a bound of 4", got)
	}
	if d := tr.EventsDropped(); d != 6 {
		t.Fatalf("EventsDropped = %d, want 6", d)
	}
	// The span plane has its own cap: nothing dropped there.
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("span Dropped = %d, want 0", d)
	}
}

func TestEventPublishSurvivesSpanCap(t *testing.T) {
	tr := NewTrace("cap")
	tr.SetMaxSpans(1)
	tr.StreamEvents(64)
	_, live, cancel := tr.SubscribeEvents()
	defer cancel()
	tr.Start(Span{}, "a").End()
	tr.Start(Span{}, "b").End() // dropped from the trace...
	tr.Instant(Span{}, "c")     // ...and so is this
	if d := tr.Dropped(); d != 2 {
		t.Fatalf("span Dropped = %d, want 2", d)
	}
	got := drain(live)
	// ...but the live stream still announced all of them.
	if len(got) != 5 {
		t.Fatalf("got %d events, want 5 (cap must not mute the stream)", len(got))
	}
}

func TestEventStreamCloseAndCancel(t *testing.T) {
	tr := NewTrace("close")
	tr.StreamEvents(8)
	_, live, cancel := tr.SubscribeEvents()
	_, live2, _ := tr.SubscribeEvents()
	tr.Instant(Span{}, "before")
	cancel()
	cancel() // idempotent
	tr.Instant(Span{}, "after-cancel")
	if got := len(drain(live)); got != 1 {
		t.Fatalf("cancelled subscriber got %d events, want 1", got)
	}
	tr.CloseEvents()
	tr.CloseEvents() // idempotent
	tr.Instant(Span{}, "after-close")
	evs := drain(live2)
	if len(evs) != 2 {
		t.Fatalf("subscriber got %d events, want 2 (publication after close is discarded)", len(evs))
	}
	if _, ok := <-live2; ok {
		t.Fatal("live channel not closed after CloseEvents")
	}
	// Subscribing after close: replay, then an already-closed channel.
	replay, live3, _ := tr.SubscribeEvents()
	if len(replay) != 2 {
		t.Fatalf("post-close replay = %d events, want 2", len(replay))
	}
	if _, ok := <-live3; ok {
		t.Fatal("post-close live channel not closed")
	}
}

func TestEventStreamUnarmedAndNil(t *testing.T) {
	tr := NewTrace("unarmed")
	tr.Start(Span{}, "a").End() // no stream armed: must not panic
	replay, live, cancel := tr.SubscribeEvents()
	cancel()
	if replay != nil {
		t.Fatalf("unarmed replay = %+v", replay)
	}
	if _, ok := <-live; ok {
		t.Fatal("unarmed live channel not pre-closed")
	}
	if tr.EventsArmed() || tr.EventsDropped() != 0 {
		t.Fatal("unarmed trace reports an armed plane")
	}
	tr.OnEvent(func(SpanEvent) {}) // no-op, must not panic

	var nilTr *Trace
	nilTr.StreamEvents(8)
	nilTr.CloseEvents()
	nilTr.OnEvent(nil)
	nilTr.InjectSpan(Span{}, "x", 0, 0)
	if nilTr.EventsArmed() || nilTr.EventsDropped() != 0 || nilTr.Now() != 0 {
		t.Fatal("nil trace leaked state")
	}
	if nilTr.SelfTimes() != nil {
		t.Fatal("nil trace SelfTimes not nil")
	}
	replay, live, cancel = nilTr.SubscribeEvents()
	cancel()
	if replay != nil {
		t.Fatal("nil trace replayed events")
	}
	if _, ok := <-live; ok {
		t.Fatal("nil trace live channel not pre-closed")
	}
}

func TestEventStreamDefaultBound(t *testing.T) {
	tr := NewTrace("default")
	tr.StreamEvents(0)
	if tr.events.max != 4096 {
		t.Fatalf("default bound = %d, want 4096", tr.events.max)
	}
}

func TestOnEventSynchronousOrder(t *testing.T) {
	tr := NewTrace("cb")
	tr.StreamEvents(64)
	var mu sync.Mutex
	var names []string
	tr.OnEvent(func(ev SpanEvent) {
		mu.Lock()
		names = append(names, ev.Kind.String()+":"+ev.Name)
		mu.Unlock()
	})
	sp := tr.Start(Span{}, "a")
	sp.End()
	// The callback runs on the publishing goroutine: both events are
	// visible the moment End returns.
	mu.Lock()
	defer mu.Unlock()
	if len(names) != 2 || names[0] != "start:a" || names[1] != "end:a" {
		t.Fatalf("callback order = %v", names)
	}
}

func TestInjectSpan(t *testing.T) {
	tr := NewTrace("inject")
	tr.StreamEvents(64)
	_, live, cancel := tr.SubscribeEvents()
	defer cancel()
	root := tr.Start(Span{}, "job")
	tr.InjectSpan(root, "remote cell", 5*time.Millisecond, 9*time.Millisecond, StrAttr("node", "n1"))
	tr.InjectSpan(root, "clamped", -time.Millisecond, -2*time.Millisecond)
	root.End()

	got := drain(live)
	if len(got) != 6 {
		t.Fatalf("got %d events, want 6", len(got))
	}
	if got[1].Kind != EventStart || got[2].Kind != EventEnd || got[1].Name != "remote cell" {
		t.Fatalf("inject events = %+v", got[1:3])
	}
	if got[2].Start != 5*time.Millisecond || got[2].End != 9*time.Millisecond {
		t.Fatalf("inject offsets = %v..%v", got[2].Start, got[2].End)
	}
	if got[4].Start != 0 || got[4].End != 0 {
		t.Fatalf("clamped inject offsets = %v..%v, want 0..0", got[4].Start, got[4].End)
	}

	// The injected span is in the recorded tree under its parent.
	text := tr.TextString()
	if want := "remote cell"; !strings.Contains(text, want) {
		t.Fatalf("trace text missing %q:\n%s", want, text)
	}
	spans := tr.snapshot()
	var found bool
	for _, sp := range spans {
		if sp.name == "remote cell" {
			found = true
			if sp.parent != root.ID() || sp.start != 5*time.Millisecond || sp.end != 9*time.Millisecond {
				t.Fatalf("injected rec = %+v", sp)
			}
		}
	}
	if !found {
		t.Fatal("injected span not recorded")
	}
}

func TestInjectSpanOverCap(t *testing.T) {
	tr := NewTrace("inject-cap")
	tr.SetMaxSpans(1)
	tr.Start(Span{}, "a").End()
	tr.InjectSpan(Span{}, "b", 0, time.Millisecond)
	if d := tr.Dropped(); d != 1 {
		t.Fatalf("Dropped = %d, want 1", d)
	}
	if len(tr.snapshot()) != 1 {
		t.Fatal("over-cap inject was recorded")
	}
}

func TestTraceNowMonotonic(t *testing.T) {
	tr := NewTrace("now")
	a := tr.Now()
	time.Sleep(time.Millisecond)
	b := tr.Now()
	if b <= a {
		t.Fatalf("Now not monotonic: %v then %v", a, b)
	}
}

func TestSelfTimes(t *testing.T) {
	tr := NewTrace("self")
	root := tr.Start(Span{}, "job")
	// Hand-build deterministic spans via InjectSpan offsets.
	tr.InjectSpan(root, "shard", 0, 10*time.Millisecond)
	tr.InjectSpan(root, "shard", 10*time.Millisecond, 14*time.Millisecond)
	root.End()
	st := tr.SelfTimes()
	if st["shard"] != 14*time.Millisecond {
		t.Fatalf("shard self time = %v, want 14ms", st["shard"])
	}
	// The root's self time excludes its children's extent.
	rootSelf := st["job"]
	if rootSelf < 0 || rootSelf > tr.Now() {
		t.Fatalf("job self time = %v out of range", rootSelf)
	}
	// A parent fully covered by children floors at zero, never negative.
	tr2 := NewTrace("floor")
	p := tr2.Start(Span{}, "parent")
	time.Sleep(time.Millisecond)
	p.End()
	// Children sum to more than the parent's extent.
	pr := tr2.snapshot()[0]
	tr2mustInject(tr2, pr, t)
	st2 := tr2.SelfTimes()
	if st2["parent"] != 0 {
		t.Fatalf("over-attributed parent self time = %v, want 0", st2["parent"])
	}
}

// tr2mustInject injects two children that together exceed the parent's
// own extent, forcing the self-time floor.
func tr2mustInject(tr *Trace, parent spanRec, t *testing.T) {
	t.Helper()
	ps := Span{tr: tr, id: parent.id}
	tr.InjectSpan(ps, "kid", parent.start, parent.end)
	tr.InjectSpan(ps, "kid", parent.start, parent.end)
}

func TestEventStreamConcurrentPublish(t *testing.T) {
	tr := NewTrace("race")
	tr.StreamEvents(10000)
	_, live, cancel := tr.SubscribeEvents()
	defer cancel()
	var wg sync.WaitGroup
	const G, N = 8, 50
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				sp := tr.Start(Span{}, fmt.Sprintf("g%d", g))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	tr.CloseEvents()
	var got []SpanEvent
	for ev := range live {
		got = append(got, ev)
	}
	if len(got) != G*N*2 {
		t.Fatalf("got %d events, want %d", len(got), G*N*2)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d: stream not totally ordered", i, ev.Seq)
		}
	}
}

func TestSpanEventKindString(t *testing.T) {
	cases := map[SpanEventKind]string{
		EventStart: "start", EventEnd: "end", EventInstant: "instant",
		SpanEventKind(0): "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// ForwardEvents is the node-side arming: every event reaches the
// callback with strictly increasing Seq, nothing is retained (no replay,
// no bound, no drops), and SubscribeEvents behaves as if unarmed.
func TestForwardEvents(t *testing.T) {
	tr := NewTrace("fwd")
	var got []SpanEvent
	tr.ForwardEvents(func(ev SpanEvent) { got = append(got, ev) })
	if !tr.EventsArmed() {
		t.Fatal("ForwardEvents did not arm the event plane")
	}
	root := tr.Start(Span{}, "root")
	// Far more events than the default StreamEvents bound: forward-only
	// mode must not drop any of them.
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Instant(root, "tick")
	}
	root.End()
	if want := n + 2; len(got) != want { // root start + ticks + root end
		t.Fatalf("callback saw %d events, want %d", len(got), want)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
	}
	if tr.EventsDropped() != 0 {
		t.Fatalf("forward-only mode counted %d drops", tr.EventsDropped())
	}
	replay, live, cancel := tr.SubscribeEvents()
	if replay != nil {
		t.Fatalf("forward-only trace replayed %d events to a subscriber", len(replay))
	}
	if _, ok := <-live; ok {
		t.Fatal("forward-only subscriber channel not pre-closed")
	}
	cancel()
}
