package icescope

import (
	"strings"
	"testing"
)

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_cells_done_total", "Cells completed.")
	g := r.Gauge("app_queue_depth", "Jobs queued.")
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Histogram("app_cell_seconds", "Cell latency.", nil)
	cv := r.CounterVec("app_node_cells_total", "Cells per node.", "node")
	gv := r.GaugeVec("app_backend", "Active backend.", "name")

	c.Add(3)
	g.Set(2)
	h.Observe(0.003)
	h.Observe(7)
	cv.With("b").Add(2)
	cv.With("a").Inc()
	gv.With("mesh").Set(1)

	text := r.Expose()
	if err := Lint(text); err != nil {
		t.Fatalf("Lint rejected own exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# HELP app_cells_done_total Cells completed.",
		"# TYPE app_cells_done_total counter",
		"app_cells_done_total 3",
		"app_queue_depth 2",
		"app_uptime_seconds 12.5",
		"# TYPE app_cell_seconds histogram",
		`app_cell_seconds_bucket{le="0.0025"} 0`,
		`app_cell_seconds_bucket{le="0.005"} 1`,
		`app_cell_seconds_bucket{le="+Inf"} 2`,
		"app_cell_seconds_sum 7.003",
		"app_cell_seconds_count 2",
		`app_node_cells_total{node="a"} 1`,
		`app_node_cells_total{node="b"} 2`,
		`app_backend{name="mesh"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Children render sorted by label value.
	if strings.Index(text, `node="a"`) > strings.Index(text, `node="b"`) {
		t.Errorf("vec children not sorted:\n%s", text)
	}
}

// A labeled histogram family: children share the bucket ladder, render
// with the label composed into every bucket line, and lint clean.
func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("app_queue_wait_seconds", "Queue wait by lane.", "lane", []float64{0.01, 1})
	hv.With("interactive").Observe(0.002)
	hv.With("batch").Observe(0.5)
	hv.With("batch").Observe(30)

	text := r.Expose()
	if err := Lint(text); err != nil {
		t.Fatalf("Lint rejected HistogramVec exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE app_queue_wait_seconds histogram",
		`app_queue_wait_seconds_bucket{lane="batch",le="0.01"} 0`,
		`app_queue_wait_seconds_bucket{lane="batch",le="1"} 1`,
		`app_queue_wait_seconds_bucket{lane="batch",le="+Inf"} 2`,
		`app_queue_wait_seconds_sum{lane="batch"} 30.5`,
		`app_queue_wait_seconds_count{lane="batch"} 2`,
		`app_queue_wait_seconds_bucket{lane="interactive",le="0.01"} 1`,
		`app_queue_wait_seconds_count{lane="interactive"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	hv.Delete("batch")
	if text := r.Expose(); strings.Contains(text, `lane="batch"`) {
		t.Fatalf("deleted histogram child still rendered:\n%s", text)
	}
}

func TestOnCollectAndDelete(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("mesh_node_up", "Node liveness.", "node")
	live := map[string]bool{"a": true, "b": true}
	r.OnCollect(func() {
		for n := range live {
			gv.With(n).Set(1)
		}
	})
	text := r.Expose()
	if !strings.Contains(text, `mesh_node_up{node="a"} 1`) || !strings.Contains(text, `mesh_node_up{node="b"} 1`) {
		t.Fatalf("OnCollect did not populate children:\n%s", text)
	}
	delete(live, "b")
	gv.Delete("b")
	if text := r.Expose(); strings.Contains(text, `node="b"`) {
		t.Fatalf("deleted child still rendered:\n%s", text)
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":    func() { r.Counter("ok_total", "again") },
		"invalid name": func() { r.Counter("0bad", "x") },
		"bad bounds":   func() { r.Histogram("h_x", "x", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLintCatchesBadInput(t *testing.T) {
	cases := map[string]string{
		"no TYPE":         "# HELP x_total a\nx_total 1\n",
		"no HELP":         "# TYPE x_total counter\nx_total 1\n",
		"bad sample":      "# HELP x_total a\n# TYPE x_total counter\nx_total one\n",
		"counter suffix":  "# HELP x a\n# TYPE x counter\nx 1\n",
		"bad TYPE":        "# HELP x a\n# TYPE x enum\nx 1\n",
		"unescaped label": "# HELP x a\n# TYPE x gauge\nx{l=\"a\"b\"} 1\n",
	}
	for name, text := range cases {
		if Lint(text) == nil {
			t.Errorf("%s: Lint accepted %q", name, text)
		}
	}
	good := "# HELP x_total a\n# TYPE x_total counter\nx_total{l=\"a\\\"b\"} 1\n"
	if err := Lint(good); err != nil {
		t.Errorf("Lint rejected valid text: %v", err)
	}
}

// The registry's write side must be allocation-free: these handles sit
// on the scheduling/delivery hot paths that the repo's existing alloc
// gates protect.
func TestMetricsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("z_total", "x")
	g := r.Gauge("z_g", "x")
	h := r.Histogram("z_h", "x", nil)
	cv := r.CounterVec("z_v_total", "x", "k")
	cv.With("warm") // create outside the measured loop
	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Gauge.Set":         func() { g.Set(1) },
		"Gauge.Add":         func() { g.Add(1) },
		"Histogram.Observe": func() { h.Observe(0.004) },
		"Vec.With(warm)":    func() { cv.With("warm").Inc() },
	} {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, n)
		}
	}
}
