package icescope

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteText renders the trace as an indented tree, one span per line:
//
//	job req-1                      41.2ms
//	  plan                         0.1ms  shards=4
//	  shard 0 [3:5] node-a         18.3ms
//	    cell 3 build               0.2ms
//	    cell 3 run                 8.9ms
//
// Spans sort by start time within their parent; orphans (parent never
// recorded, e.g. dropped over the cap) print at top level. Snapshot
// rules apply: call only after the traced work has completed.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "(no trace)\n")
		return err
	}
	spans := t.snapshot()
	byID := make(map[SpanID]*spanRec, len(spans))
	for i := range spans {
		byID[spans[i].id] = &spans[i]
	}
	kids := make(map[SpanID][]*spanRec, len(spans))
	var roots []*spanRec
	for i := range spans {
		sp := &spans[i]
		if sp.parent != 0 && byID[sp.parent] != nil {
			kids[sp.parent] = append(kids[sp.parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	order := func(list []*spanRec) {
		sort.SliceStable(list, func(i, j int) bool { return list[i].start < list[j].start })
	}
	order(roots)
	for _, list := range kids {
		order(list)
	}
	if _, err := fmt.Fprintf(w, "trace %s  %d spans", t.name, len(spans)); err != nil {
		return err
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "  (%d dropped)", d); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	var walk func(sp *spanRec, depth int) error
	walk = func(sp *spanRec, depth int) error {
		label := sp.name
		if sp.end == sp.start {
			label += " !" // instant marker
		}
		pad := 48 - 2*depth - len(label)
		if pad < 1 {
			pad = 1
		}
		line := fmt.Sprintf("%s%s%s%9.3fms%s\n",
			strings.Repeat("  ", depth), label, strings.Repeat(" ", pad),
			float64(sp.end-sp.start)/float64(time.Millisecond), attrText(sp.attrs))
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
		for _, k := range kids[sp.id] {
			if err := walk(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 1); err != nil {
			return err
		}
	}
	return nil
}

func attrText(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		b.WriteString("  ")
		b.WriteString(a.Key)
		b.WriteByte('=')
		if a.isStr {
			b.WriteString(a.Str)
		} else {
			b.WriteString(fmtFloat(a.Num))
		}
	}
	return b.String()
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (ph "X" = complete span, ph "i" = instant), loadable in Perfetto or
// chrome://tracing. Timestamps are microseconds from the trace epoch.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// WriteChrome exports the trace as Chrome trace-event JSON. Control-
// plane spans land on tid 0, each worker buffer on its own tid, so
// Perfetto shows the fleet's true parallelism as lanes. Snapshot rules
// apply: call only after the traced work has completed.
func (t *Trace) WriteChrome(w io.Writer) error {
	file := chromeFile{TraceEvents: []chromeEvent{}}
	if t != nil {
		spans := t.snapshot()
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := range spans {
			sp := &spans[i]
			ev := chromeEvent{
				Name: sp.name, Phase: "X",
				TS:  float64(sp.start) / float64(time.Microsecond),
				PID: 1, TID: sp.tid,
			}
			if sp.end == sp.start {
				ev.Phase, ev.Scope = "i", "t"
			} else {
				dur := float64(sp.end-sp.start) / float64(time.Microsecond)
				ev.Dur = &dur
			}
			if len(sp.attrs) > 0 {
				ev.Args = make(map[string]any, len(sp.attrs))
				for _, a := range sp.attrs {
					if a.isStr {
						ev.Args[a.Key] = a.Str
					} else {
						ev.Args[a.Key] = a.Num
					}
				}
			}
			file.TraceEvents = append(file.TraceEvents, ev)
		}
		file.Metadata = map[string]any{
			"trace-name": t.name,
			"epoch-wall": t.wall.UTC().Format(time.RFC3339Nano),
			"dropped":    t.Dropped(),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&file)
}

// TextString is WriteText into a string (convenience for handlers/tests).
func (t *Trace) TextString() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}
