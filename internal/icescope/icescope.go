// Package icescope is the observability layer of the serving stack: a
// span recorder for end-to-end job tracing, a unified metrics registry
// rendered in Prometheus exposition format, and profiling hooks — all
// provably off the determinism path. Nothing in this package touches a
// simulation kernel, an RNG, or a result byte: tracing and metrics read
// wall clocks and write to side buffers, so results are byte-identical
// with observability on or off (the differential suite holds the stack
// to that).
//
// The three pieces:
//
//   - Trace/Span/Buffer: a low-overhead span recorder. Control-plane
//     spans (job lifecycle, shard plans, RPC round trips) append under
//     one mutex and may start/end on different goroutines; data-plane
//     spans (per-cell execution) go through per-worker Buffers that
//     append lock-free because each buffer has exactly one writing
//     goroutine. Traces export as a text tree or as Chrome trace-event
//     JSON loadable in Perfetto, and Coverage reports how much of a
//     root span's wall time its leaf spans attribute.
//
//   - Registry/Counter/Gauge/Histogram: generic metric types (atomic,
//     zero-alloc on the hot path) replacing per-package hand-rolled
//     structs, with one Prometheus-exposition writer emitting HELP and
//     TYPE lines; Lint validates any exposition text.
//
//   - Region and DebugMux: a runtime/trace region wrapper that stays a
//     no-op unless a job opts in AND the Go execution tracer is running,
//     and an http mux bundling net/http/pprof with a registry's
//     /metrics for the daemons' -pprof flag.
package icescope

import (
	"context"
	"net/http"
	"net/http/pprof"
	rtrace "runtime/trace"
)

// regionNoop is the shared do-nothing closer, so a disabled Region call
// costs two branches and zero allocations.
var regionNoop = func() {}

// Region opens a runtime/trace region and returns its closer. It is a
// no-op unless both the caller opted in (enabled — a per-job choice) and
// the Go execution tracer is actually collecting (the -pprof
// /debug/pprof/trace endpoint or `go test -trace`): kernel hot loops
// stay untraced by default, but a profiling session of an opted-in job
// sees each cell as a named region on its worker goroutine.
func Region(enabled bool, name string) func() {
	if !enabled || !rtrace.IsEnabled() {
		return regionNoop
	}
	return rtrace.StartRegion(context.Background(), name).End
}

// DebugMux serves the standard net/http/pprof endpoints (profile, heap,
// goroutine, trace, ...) plus, when reg is non-nil, the registry's
// Prometheus exposition at /metrics. The daemons hang this off their
// -pprof flag so profiling never shares a listener with the serving API.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(reg.Expose()))
		})
	}
	return mux
}
