package icescope

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry owns a set of metric families and renders them all through
// one Prometheus-exposition writer. Registration (Counter, Gauge, ...)
// happens at construction time and takes a lock; the returned handles
// are the hot path — atomic operations, zero allocations — so wiring the
// registry into a serving loop cannot perturb its throughput. Families
// render in registration order, labeled children in label order, so the
// exposition text is deterministic for tests.
type Registry struct {
	mu      sync.Mutex
	fams    []*family
	byName  map[string]*family
	collect []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

type family struct {
	name, help, typ string
	labelKey        string // "" = one unlabeled series

	single any // *Counter, *Gauge, func() float64, or *Histogram

	cmu      sync.RWMutex
	children map[string]any // label value -> series (labeled families)
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// register installs a family, panicking on duplicate or lint-invalid
// names — registration is init-time code and a collision is a bug.
func (r *Registry) register(name, help, typ, labelKey string, single any) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("icescope: invalid metric name %q", name))
	}
	if labelKey != "" && !labelNameRE.MatchString(labelKey) {
		panic(fmt.Sprintf("icescope: invalid label name %q", labelKey))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("icescope: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, typ: typ, labelKey: labelKey, single: single}
	if labelKey != "" {
		f.children = map[string]any{}
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// OnCollect registers a hook run at the start of every exposition, for
// values that must be synced from external state just-in-time (the mesh
// coordinator uses it to refresh its per-node gauge vectors).
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments by delta (CAS loop; still allocation-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. Observe
// is atomic and allocation-free; rendering emits the standard
// <name>_bucket{le="..."} series plus _sum and _count.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reports total observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// LatencyBuckets is the default duration-in-seconds bucket ladder:
// 100µs to ~100s, a decade per three buckets — wide enough for a cell
// (ms) and a mesh job (s) on one axis.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
	}
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("icescope: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", "", c)
	return c
}

// Gauge registers and returns an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", "", g)
	return g
}

// GaugeFunc registers a gauge whose value is computed at exposition
// time — uptime, queue depth, derived rates.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", "", fn)
}

// Histogram registers a histogram with the given ascending bucket
// upper bounds (nil means LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	h := newHistogram(bounds)
	r.register(name, help, "histogram", "", h)
	return h
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", label, nil)}
}

// With returns (creating if needed) the child counter for the label
// value. Callers on hot paths should cache the child.
func (v *CounterVec) With(value string) *Counter {
	return v.f.child(value, func() any { return &Counter{} }).(*Counter)
}

// Delete drops the child for the label value (a departed mesh node).
func (v *CounterVec) Delete(value string) { v.f.delete(value) }

// HistogramVec is a histogram family keyed by one label; every child
// shares the family's bucket ladder.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a labeled histogram family with the given
// ascending bucket upper bounds (nil means LatencyBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	newHistogram(bounds) // validate the ladder once, at registration
	return &HistogramVec{f: r.register(name, help, "histogram", label, nil), bounds: bounds}
}

// With returns (creating if needed) the child histogram for the label
// value. Callers on hot paths should cache the child.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.child(value, func() any { return newHistogram(v.bounds) }).(*Histogram)
}

// Delete drops the child for the label value.
func (v *HistogramVec) Delete(value string) { v.f.delete(value) }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", label, nil)}
}

// With returns (creating if needed) the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	return v.f.child(value, func() any { return &Gauge{} }).(*Gauge)
}

// Delete drops the child for the label value.
func (v *GaugeVec) Delete(value string) { v.f.delete(value) }

func (f *family) child(value string, mk func() any) any {
	f.cmu.RLock()
	c, ok := f.children[value]
	f.cmu.RUnlock()
	if ok {
		return c
	}
	f.cmu.Lock()
	defer f.cmu.Unlock()
	if c, ok := f.children[value]; ok {
		return c
	}
	c = mk()
	f.children[value] = c
	return c
}

func (f *family) delete(value string) {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	delete(f.children, value)
}

// fmtFloat renders a float the way Prometheus exposition expects:
// shortest round-trip decimal, with integral values staying integral
// ("2", not "2.000000").
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Expose renders every family in Prometheus text exposition format —
// HELP and TYPE comment lines followed by the samples. Deterministic:
// families in registration order, labeled children sorted by value.
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// WriteTo renders the exposition into b.
func (r *Registry) WriteTo(b *strings.Builder) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	hooks := append([]func(){}, r.collect...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	for _, f := range fams {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
		if f.labelKey == "" {
			writeSeries(b, f.name, "", f.single)
			continue
		}
		f.cmu.RLock()
		values := make([]string, 0, len(f.children))
		for v := range f.children {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			label := fmt.Sprintf(`%s="%s"`, f.labelKey, escapeLabel(v))
			writeSeries(b, f.name, label, f.children[v])
		}
		f.cmu.RUnlock()
	}
}

func writeSeries(b *strings.Builder, name, label string, s any) {
	suffix := ""
	if label != "" {
		suffix = "{" + label + "}"
	}
	switch v := s.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", name, suffix, v.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %s\n", name, suffix, fmtFloat(v.Value()))
	case func() float64:
		fmt.Fprintf(b, "%s%s %s\n", name, suffix, fmtFloat(v()))
	case *Histogram:
		cum := uint64(0)
		for i, bound := range v.bounds {
			cum += v.counts[i].Load()
			le := fmt.Sprintf(`le="%s"`, fmtFloat(bound))
			if label != "" {
				le = label + "," + le
			}
			fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, le, cum)
		}
		le := `le="+Inf"`
		if label != "" {
			le = label + "," + le
		}
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, le, v.Count())
		fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, fmtFloat(v.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, v.Count())
	default:
		panic(fmt.Sprintf("icescope: unknown series type %T", s))
	}
}

var sampleRE = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// Lint validates Prometheus exposition text: every sample line must
// parse, every metric name must pass the name lint, and every sample's
// family must have been introduced by HELP and TYPE lines (histogram
// _bucket/_sum/_count series resolve to their base family). Tests hold
// /metrics bodies and coordinator exposition to this.
func Lint(text string) error {
	typed := map[string]string{} // family -> TYPE
	helped := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !metricNameRE.MatchString(name) {
				return fmt.Errorf("line %d: malformed HELP %q", ln+1, line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || !metricNameRE.MatchString(name) {
				return fmt.Errorf("line %d: malformed TYPE %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q", ln+1, typ)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free comment
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparseable sample %q", ln+1, line)
		}
		name := m[1]
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		if typed[fam] == "" {
			return fmt.Errorf("line %d: sample %q has no TYPE line", ln+1, name)
		}
		if !helped[fam] {
			return fmt.Errorf("line %d: sample %q has no HELP line", ln+1, name)
		}
		if typed[fam] == "counter" && !strings.HasSuffix(fam, "_total") && !strings.HasSuffix(fam, "_ns") {
			// Counters should read as totals; the _ns suffix is grand-
			// fathered for the pre-registry wire-encode accounting names.
			return fmt.Errorf("line %d: counter %q should end in _total", ln+1, fam)
		}
	}
	return nil
}
