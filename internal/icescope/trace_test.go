package icescope

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTreeAndExports(t *testing.T) {
	tr := NewTrace("job test-1")
	root := tr.Start(Span{}, "job")
	plan := root.Child("plan")
	time.Sleep(time.Millisecond)
	plan.End(IntAttr("shards", 4))
	buf := tr.Buffer()
	cell := buf.Start(root, "cell 0 run")
	time.Sleep(time.Millisecond)
	cell.End(StrAttr("mode", "proto"))
	tr.Instant(root, "celldone", IntAttr("cell", 0))
	root.End()

	text := tr.TextString()
	for _, want := range []string{"trace job test-1", "job", "plan", "shards=4", "cell 0 run", "mode=proto", "celldone !"} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q:\n%s", want, text)
		}
	}
	// plan must be indented under job.
	jobLine, planLine := "", ""
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, "job ") || strings.TrimSpace(ln) == "job" || strings.HasPrefix(strings.TrimLeft(ln, " "), "job ") {
			if jobLine == "" && !strings.HasPrefix(ln, "trace") {
				jobLine = ln
			}
		}
		if strings.Contains(ln, "plan") {
			planLine = ln
		}
	}
	if jobLine == "" || planLine == "" {
		t.Fatalf("missing job/plan lines:\n%s", text)
	}
	indent := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	if indent(planLine) <= indent(jobLine) {
		t.Errorf("plan not nested under job:\njob:  %q\nplan: %q", jobLine, planLine)
	}

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int32          `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &file); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, b.String())
	}
	if len(file.TraceEvents) != 4 {
		t.Fatalf("want 4 events, got %d", len(file.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range file.TraceEvents {
		byName[ev.Name] = i
	}
	if ev := file.TraceEvents[byName["cell 0 run"]]; ev.TID != 1 || ev.Phase != "X" || ev.Dur <= 0 || ev.Args["mode"] != "proto" {
		t.Errorf("cell event wrong: %+v", ev)
	}
	if ev := file.TraceEvents[byName["celldone"]]; ev.Phase != "i" {
		t.Errorf("instant not ph=i: %+v", ev)
	}
	if ev := file.TraceEvents[byName["plan"]]; ev.TID != 0 {
		t.Errorf("control span not tid 0: %+v", ev)
	}
}

func TestNilTraceAndZeroSpanAreInert(t *testing.T) {
	var tr *Trace
	s := tr.Start(Span{}, "x")
	if s.Active() {
		t.Fatal("span on nil trace is active")
	}
	s.End()
	s.Child("y").End()
	tr.Instant(s, "z")
	b := tr.Buffer()
	if b != nil {
		t.Fatal("nil trace returned a buffer")
	}
	if sp := b.Start(s, "w"); sp.Active() {
		t.Fatal("nil buffer span is active")
	}
	if tr.Coverage(s) != 0 || tr.Name() != "" || tr.Dropped() != 0 {
		t.Fatal("nil trace accessors not zero")
	}
	if got := tr.TextString(); got != "(no trace)\n" {
		t.Fatalf("nil text export = %q", got)
	}
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil || !strings.Contains(sb.String(), "traceEvents") {
		t.Fatalf("nil chrome export: %v %q", err, sb.String())
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := NewTrace("cap")
	tr.SetMaxSpans(3)
	root := tr.Start(Span{}, "root")
	root.End()
	for i := 0; i < 5; i++ {
		tr.Start(root, "s").End()
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if n := len(tr.snapshot()); n != 3 {
		t.Fatalf("recorded %d spans, want 3", n)
	}
}

func TestCoverage(t *testing.T) {
	tr := NewTrace("cov")
	root := tr.Start(Span{}, "root")
	// Two leaves covering disjoint halves with a gap, plus a parent span
	// that must NOT count (its children do), plus an overlap.
	mk := func(start, end time.Duration, parent Span, name string) Span {
		s := tr.Start(parent, name)
		s.start = start
		rec := spanRec{id: s.id, parent: s.parent, name: name, start: start, end: end}
		tr.mu.Lock()
		tr.ctl = append(tr.ctl, rec)
		tr.mu.Unlock()
		return s
	}
	mid := mk(0, 100*time.Millisecond, root, "phase") // becomes a parent
	mk(0, 40*time.Millisecond, mid, "a")
	mk(30*time.Millisecond, 60*time.Millisecond, mid, "b") // overlaps a
	mk(80*time.Millisecond, 100*time.Millisecond, root, "c")
	// Close root at exactly 100ms.
	tr.mu.Lock()
	tr.ctl = append(tr.ctl, spanRec{id: root.id, parent: 0, name: "root", start: 0, end: 100 * time.Millisecond})
	tr.mu.Unlock()
	// Union of leaves: [0,60) ∪ [80,100) = 80ms of 100ms.
	if got := tr.Coverage(root); got < 0.79 || got > 0.81 {
		t.Fatalf("coverage = %v, want 0.8", got)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTrace("ctx")
	root := tr.Start(Span{}, "root")
	ctx := ContextWithSpan(context.Background(), root)
	got := SpanFromContext(ctx)
	if got.ID() != root.ID() || got.Trace() != tr {
		t.Fatal("span did not round-trip through context")
	}
	if s := SpanFromContext(context.Background()); s.Active() {
		t.Fatal("empty context produced an active span")
	}
	if ctx2 := ContextWithSpan(context.Background(), Span{}); ctx2 != context.Background() {
		t.Fatal("inert span should not wrap the context")
	}
}

// Control-plane spans may start and end on different goroutines while
// worker buffers record concurrently; this must be race-free (run under
// -race in CI).
func TestConcurrentRecording(t *testing.T) {
	tr := NewTrace("conc")
	root := tr.Start(Span{}, "root")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		buf := tr.Buffer() // registered on the spawning goroutine
		wg.Add(1)
		go func(b *Buffer) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := b.Start(root, "cell")
				tr.Instant(root, "mark")
				sp.End()
			}
		}(buf)
	}
	wg.Wait()
	root.End()
	if n := len(tr.snapshot()); n != 4*200+1 {
		t.Fatalf("recorded %d spans, want %d", n, 4*200+1)
	}
	if cov := tr.Coverage(root); cov <= 0 || cov > 1 {
		t.Fatalf("coverage out of range: %v", cov)
	}
}

func TestRegionNoopWhenDisabled(t *testing.T) {
	// Tracer not running: both calls must return the shared no-op.
	end := Region(true, "x")
	end()
	if n := testing.AllocsPerRun(100, func() { Region(false, "cell")() }); n != 0 {
		t.Fatalf("disabled Region allocates %.1f per op", n)
	}
}
