package experiments

import (
	"fmt"
	"time"

	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// E10Options scale the tele-ICU study.
type E10Options struct {
	Seed     int64
	Patients int // 0 = 8
}

// e10Run measures mean detection latency of a genuine desaturation for
// one uplink configuration across the cohort.
func e10Run(opt E10Options, mode telemetry.Mode, flush time.Duration) (sim.Time, int, error) {
	k := sim.NewKernel()
	rng := sim.NewRNG(opt.Seed)
	// Home-to-hospital WAN.
	net := mednet.MustNew(k, rng.Fork("net"), mednet.LinkParams{
		Latency: 60 * time.Millisecond, Jitter: 20 * time.Millisecond, LossProb: 0.01,
	})
	agg := telemetry.NewAggregator(k, net, "tele-icu", []telemetry.AlertRule{
		{Signal: "spo2", Below: 90},
	})
	for i := 0; i < opt.Patients; i++ {
		i := i
		prng := rng.Fork(fmt.Sprintf("p%d", i))
		patient := physio.DefaultPopulation().Sample(i, prng)
		mon := telemetry.MustNewRemoteMonitor(k, net, fmt.Sprintf("home-%d", i), telemetry.UplinkConfig{
			Mode: mode, FlushInterval: flush, Aggregator: "tele-icu",
		})
		// Local sampling every 15 s; the patient deteriorates (large
		// opioid ingestion at home) at a per-patient time.
		k.Every(15*time.Second, func(now sim.Time) {
			patient.Step(15*sim.Second, 0)
			mon.Record("spo2", patient.Vitals().SpO2+prng.Normal(0, 0.5))
		})
		deteriorateAt := sim.Hour + sim.Time(i)*13*sim.Minute
		k.At(deteriorateAt, func() { patient.Bolus(25) })
	}
	horizon := sim.Hour + sim.Time(opt.Patients)*13*sim.Minute + sim.Hour
	if err := k.Run(horizon); err != nil {
		return 0, 0, err
	}
	return agg.MeanDetectionLatency(), len(agg.Alerts()), nil
}

// E10Telemetry quantifies the paper's II.d claim: store-and-forward home
// monitoring has "no real-time diagnostic capability" — detection latency
// is the forwarding period — while streaming detects within transport
// latency.
func E10Telemetry(opt E10Options) (Table, error) {
	if opt.Patients == 0 {
		opt.Patients = 8
	}
	t := Table{
		ID:     "E10",
		Title:  fmt.Sprintf("Tele-ICU detection latency: %d home patients, each with one desaturation event", opt.Patients),
		Header: []string{"uplink", "events detected", "mean detection latency"},
	}
	type cfg struct {
		name  string
		mode  telemetry.Mode
		flush time.Duration
	}
	cfgs := []cfg{
		{"store-and-forward, 15 min", telemetry.StoreAndForward, 15 * time.Minute},
		{"store-and-forward, 5 min", telemetry.StoreAndForward, 5 * time.Minute},
		{"store-and-forward, 1 min", telemetry.StoreAndForward, time.Minute},
		{"streaming", telemetry.Streaming, 0},
	}
	for _, c := range cfgs {
		lat, n, err := e10Run(opt, c.mode, c.flush)
		if err != nil {
			return t, fmt.Errorf("E10 %s: %w", c.name, err)
		}
		t.AddRow(c.name, d(n), lat.Duration().Round(time.Millisecond).String())
	}
	t.AddNote("expected shape: detection latency tracks roughly half the forwarding period; " +
		"streaming collapses it to WAN transport latency, enabling real-time response")
	return t, nil
}
