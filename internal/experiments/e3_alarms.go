package experiments

import (
	"fmt"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// E3Options scale the smart-alarm ward study.
type E3Options struct {
	Seed     int64
	Patients int      // 0 = 6
	Duration sim.Time // 0 = 6 h
}

// alarmEngineKind selects the ablation level (design decision D3).
type alarmEngineKind int

const (
	engineThreshold    alarmEngineKind = iota // baseline: per-signal thresholds
	engineMultivariate                        // + corroboration between signals
	engineFull                                // + context-event suppression
)

func (k alarmEngineKind) String() string {
	switch k {
	case engineThreshold:
		return "threshold-only"
	case engineMultivariate:
		return "multivariate"
	default:
		return "multivariate+context"
	}
}

// buildAlarmEngine wires an engine at the requested ablation level.
func buildAlarmEngine(kind alarmEngineKind) *alarm.Engine {
	e := alarm.NewEngine()
	e.MustAddRule(alarm.ThresholdRule{
		Name: "spo2-low", Signal: "spo2", Low: 90, High: 101,
		Sustain: 15 * sim.Second, Priority: alarm.Crisis, Refractory: 5 * sim.Minute,
	})
	e.MustAddRule(alarm.ThresholdRule{
		Name: "map-low", Signal: "map", Low: 62, High: 115,
		Sustain: 20 * sim.Second, Priority: alarm.Warning, Refractory: 5 * sim.Minute,
	})
	e.MustAddRule(alarm.ThresholdRule{
		Name: "hr-range", Signal: "hr", Low: 45, High: 130,
		Sustain: 20 * sim.Second, Priority: alarm.Warning, Refractory: 5 * sim.Minute,
	})
	if kind >= engineMultivariate {
		// A real desaturation from hypoventilation derails respiration:
		// EtCO2 climbs or respiratory rate collapses or the heart reacts.
		// A probe artifact leaves them all normal.
		if err := e.AddCorroboration(alarm.Corroboration{
			Rule: "spo2-low", MaxAge: 45 * sim.Second,
			Conditions: []alarm.Condition{
				{Signal: "etco2", Low: 30, High: 50},
				{Signal: "rr", Low: 9, High: 24},
				{Signal: "hr", Low: 50, High: 115},
			},
		}); err != nil {
			panic(err)
		}
	}
	if kind >= engineFull {
		if err := e.AddContextSuppression(alarm.ContextSuppression{
			Rule: "map-low", Event: "bed-moved", Window: 3 * sim.Minute,
		}); err != nil {
			panic(err)
		}
	}
	return e
}

// e3Patient runs one patient-day and scores one engine kind.
func e3Patient(opt E3Options, idx int, kind alarmEngineKind) (alarm.Metrics, error) {
	k := sim.NewKernel()
	rng := sim.NewRNG(opt.Seed + int64(idx)*1000)
	net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())

	spec := physio.DefaultPopulation()
	patient := spec.Sample(idx, rng.Fork("population"))

	ox := device.MustNewOximeter(k, net, "ox1", patient, rng.Fork("ox"), core.ConnectConfig{})
	bed := device.MustNewBed(k, net, "bed1", core.ConnectConfig{})
	device.MustNewMonitor(k, net, "mon1", patient, bed, 2*time.Second, rng.Fork("mon"), core.ConnectConfig{})
	device.MustNewCapnograph(k, net, "cap1", patient, 2*time.Second, rng.Fork("cap"), core.ConnectConfig{})

	ward := device.NewWard(k, patient, sim.Second)
	tr := sim.NewTrace()
	ward.Trace = tr

	eng := buildAlarmEngine(kind)
	mgr.Subscribe("ox1/spo2", func(_ string, dd core.Datum) { eng.Observe(k.Now(), "spo2", dd.Value, dd.Valid) })
	mgr.Subscribe("mon1/map", func(_ string, dd core.Datum) { eng.Observe(k.Now(), "map", dd.Value, dd.Valid) })
	mgr.Subscribe("mon1/hr", func(_ string, dd core.Datum) { eng.Observe(k.Now(), "hr", dd.Value, dd.Valid) })
	mgr.Subscribe("mon1/rr", func(_ string, dd core.Datum) { eng.Observe(k.Now(), "rr", dd.Value, dd.Valid) })
	mgr.Subscribe("cap1/etco2", func(_ string, dd core.Datum) { eng.Observe(k.Now(), "etco2", dd.Value, dd.Valid) })
	mgr.Subscribe("bed1/height", func(_ string, dd core.Datum) { eng.ObserveContext(k.Now(), "bed-moved") })

	// Disturbance schedule, deterministic per patient:
	//  - probe-misposition bias episodes (valid but false low SpO2);
	//  - bed moves (hydrostatic MAP artifact);
	//  - for a third of patients, a genuine opioid-driven deterioration.
	dur := opt.Duration
	genuine := idx%3 == 0
	for at := 40 * sim.Minute; at < dur; at += 75 * sim.Minute {
		at := at
		k.At(at, func() { ox.InjectBias(4*sim.Minute, rng.Uniform(12, 20)) })
	}
	for at := 25 * sim.Minute; at < dur; at += 50 * sim.Minute {
		at := at
		// Raise for care, lower a couple of minutes later: each raise
		// drops the MAP transducer reading ~60 mmHg below the limit.
		k.At(at, func() { _ = bed.SetHeight(0.8) })
		k.At(at+2*sim.Minute, func() { _ = bed.SetHeight(0) })
	}
	if genuine {
		k.At(dur/3, func() { patient.Bolus(22) }) // true hypoventilation episode
	}

	if err := k.Run(dur); err != nil {
		return alarm.Metrics{}, fmt.Errorf("E3 patient %d: %w", idx, err)
	}

	truth := alarm.EpisodesFromTrace(tr, "true/spo2", 90, 30*sim.Second)
	// Only spo2-low alarms are scored against the desaturation truth;
	// map/hr alarms with no corresponding derangement count as false.
	events := eng.Events()
	return alarm.Score(events, truth, 2*sim.Minute, dur), nil
}

// E3SmartAlarms compares the three alarm-engine ablations across a small
// ward of simulated patients.
func E3SmartAlarms(opt E3Options) (Table, error) {
	if opt.Patients == 0 {
		opt.Patients = 6
	}
	if opt.Duration == 0 {
		opt.Duration = 6 * sim.Hour
	}
	t := Table{
		ID: "E3",
		Title: fmt.Sprintf("Smart alarms: %d patients x %v, probe artifacts + bed moves + genuine deteriorations",
			opt.Patients, opt.Duration.Duration()),
		Header: []string{"engine", "alarms", "true+", "false+", "missed",
			"sensitivity", "precision", "false/patient-day"},
	}
	for _, kind := range []alarmEngineKind{engineThreshold, engineMultivariate, engineFull} {
		var agg alarm.Metrics
		for i := 0; i < opt.Patients; i++ {
			m, err := e3Patient(opt, i, kind)
			if err != nil {
				return t, err
			}
			agg.TotalAlarms += m.TotalAlarms
			agg.TruePositives += m.TruePositives
			agg.FalsePositives += m.FalsePositives
			agg.MissedEpisodes += m.MissedEpisodes
			agg.TotalEpisodes += m.TotalEpisodes
		}
		sens := 1.0
		if agg.TotalEpisodes > 0 {
			sens = float64(agg.TotalEpisodes-agg.MissedEpisodes) / float64(agg.TotalEpisodes)
		}
		prec := 1.0
		if agg.TotalAlarms > 0 {
			prec = float64(agg.TruePositives) / float64(agg.TotalAlarms)
		}
		perDay := float64(agg.FalsePositives) / (float64(opt.Patients) * opt.Duration.Seconds() / 86400)
		t.AddRow(kind.String(), d(agg.TotalAlarms), d(agg.TruePositives),
			d(agg.FalsePositives), fmt.Sprintf("%d/%d", agg.MissedEpisodes, agg.TotalEpisodes),
			f("%.2f", sens), f("%.2f", prec), f("%.1f", perDay))
	}
	t.AddNote("expected shape: each layer removes a class of false alarms (probe artifacts, then bed-move " +
		"MAP artifacts) while genuine deteriorations stay detected")
	return t, nil
}
