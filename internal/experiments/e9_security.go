package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/security"
	"repro/internal/sim"
)

// E9Options scale the security experiment.
type E9Options struct {
	Seed           int64
	ForgedCommands int // 0 = 200
}

// e9Run measures one configuration: how many forged stop/resume/set-basal
// commands the pump executes, and the honest-path command latency.
func e9Run(opt E9Options, withAuth bool) (executedForged uint64, rejected uint64, honestLatency sim.Time, err error) {
	k := sim.NewKernel()
	rng := sim.NewRNG(opt.Seed)
	net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())

	var auth core.Authenticator
	ks := security.NewKeyStore()
	if withAuth {
		ks.Issue("ice-manager", rng.Fork("keys"))
		ks.Issue("pump1", rng.Fork("keys2"))
		auth = security.NewHMACAuth(ks)
	}
	mgrCfg := core.DefaultManagerConfig()
	mgrCfg.Auth = auth
	mgr := core.MustNewManager(k, net, mgrCfg)

	pump := device.MustNewPump(k, net, "pump1", device.DefaultPumpSettings(),
		core.ConnectConfig{Auth: auth})

	// Honest supervisor issues one stop and measures decision-to-ack.
	var ackAt, sentAt sim.Time
	k.At(30*sim.Second, func() {
		sentAt = k.Now()
		mgr.SendCommand("pump1", "stop", nil, time.Second, func(a core.CommandAck, e error) {
			if e == nil && a.OK {
				ackAt = k.Now()
			}
		})
	})

	// Attacker floods forged set-basal commands (From spoofed as the
	// manager, no signature) straight at the pump, framed with the
	// wire's own (binary) codec — a protocol-fluent adversary.
	forge := core.NewBinaryCodec()
	for i := 0; i < opt.ForgedCommands; i++ {
		i := i
		at := sim.Minute + sim.Time(i)*100*sim.Millisecond
		k.At(at, func() {
			data, encErr := forge.AppendEnvelope(nil, core.MsgCommand, "ice-manager", "pump1",
				uint64(100000+i), k.Now(), &core.Command{
					ID: uint64(90000 + i), Name: "set-basal",
					Args: map[string]float64{"rate": 50}, // lethal rate
				})
			if encErr != nil {
				err = encErr
				return
			}
			net.Send("attacker", "pump1", "command", data)
		})
	}
	horizon := sim.Minute + sim.Time(opt.ForgedCommands)*100*sim.Millisecond + 10*sim.Second
	if runErr := k.Run(horizon); runErr != nil {
		return 0, 0, 0, runErr
	}
	if err != nil {
		return 0, 0, 0, err
	}
	// Forged commands that executed show up in the device connection's
	// command counters; subtract the one honest stop.
	conn := pump.Conn()
	executed := conn.CommandsOK + conn.CommandsFailed
	if executed > 0 {
		executed-- // the honest stop
	}
	return executed, conn.AuthRejected, ackAt - sentAt, nil
}

// E9Security contrasts the open ICE (today's implicit trust) with the
// HMAC-authenticated one: forged-command acceptance and the latency cost
// of authentication on the honest path (challenge (m)).
func E9Security(opt E9Options) (Table, error) {
	if opt.ForgedCommands == 0 {
		opt.ForgedCommands = 200
	}
	t := Table{
		ID:     "E9",
		Title:  fmt.Sprintf("Command injection: %d forged set-basal commands aimed at the PCA pump", opt.ForgedCommands),
		Header: []string{"configuration", "forged executed", "rejected by auth", "honest stop latency"},
	}
	for _, withAuth := range []bool{false, true} {
		name := "no authentication (open network)"
		if withAuth {
			name = "HMAC-SHA256 per-device keys"
		}
		executed, rejected, lat, err := e9Run(opt, withAuth)
		if err != nil {
			return t, fmt.Errorf("E9 auth=%v: %w", withAuth, err)
		}
		t.AddRow(name, u(executed), u(rejected), lat.Duration().String())
	}
	t.AddNote("expected shape: the open network executes every forged command (a lethal basal-rate " +
		"reprogramming); authentication rejects all of them at sub-millisecond honest-path cost")
	return t, nil
}
