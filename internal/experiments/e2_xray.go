package experiments

import (
	"fmt"
	"time"

	"repro/internal/closedloop"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// E2Options scale the X-ray/ventilator synchronization sweep.
type E2Options struct {
	Seed     int64
	Requests int             // image requests per run (0 = 24)
	Delays   []time.Duration // one-way network latencies to sweep
	LossProb float64         // background loss probability
}

// DefaultE2 returns the sweep in DESIGN.md.
func DefaultE2() E2Options {
	return E2Options{
		Seed:     1,
		Requests: 24,
		Delays: []time.Duration{
			2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond,
			200 * time.Millisecond, 500 * time.Millisecond, 700 * time.Millisecond,
			time.Second,
		},
		LossProb: 0.02,
	}
}

// e2Run executes one (protocol, delay) cell.
type e2Result struct {
	sharp, blurred, deferred uint64
	resumeFailures           uint64
	unventilatedSeconds      float64
	minSpO2                  float64
}

func e2Run(opt E2Options, proto closedloop.SyncProtocol, delay time.Duration) (e2Result, error) {
	// The synchronizer's delay bound is part of its design (D2): it stays
	// at its configured 50 ms while the actual network is swept — the
	// point where actual latency exceeds the bound is the crossover.
	out, err := closedloop.RunXRaySyncScenario(closedloop.XRaySyncScenarioConfig{
		Seed:     opt.Seed,
		Requests: opt.Requests,
		Spacing:  20 * sim.Second,
		Link:     mednet.LinkParams{Latency: delay, Jitter: delay / 4, LossProb: opt.LossProb},
		Sync:     closedloop.DefaultXRaySyncConfig("xr1", "vent1", proto),
	})
	if err != nil {
		return e2Result{}, fmt.Errorf("E2 %s delay %v: %w", proto, delay, err)
	}
	return e2Result{
		sharp: out.Sharp, blurred: out.Blurred, deferred: out.Deferred,
		resumeFailures:      out.ResumeFailures,
		unventilatedSeconds: out.UnventilatedSeconds,
		minSpO2:             out.MinSpO2,
	}, nil
}

// E2XrayVentSync sweeps network delay across the three coordination
// protocols of the paper's Section II.b scenario.
func E2XrayVentSync(opt E2Options) (Table, error) {
	if opt.Requests == 0 {
		opt = DefaultE2()
	}
	t := Table{
		ID: "E2",
		Title: fmt.Sprintf("X-ray/ventilator synchronization: %d image requests, loss %.0f%%, sweep one-way delay",
			opt.Requests, opt.LossProb*100),
		Header: []string{"protocol", "delay", "sharp", "blurred", "deferred",
			"resume-fail", "unvent (s)", "min SpO2"},
	}
	for _, proto := range []closedloop.SyncProtocol{
		closedloop.ProtocolManual, closedloop.ProtocolPauseRestart, closedloop.ProtocolStateSync,
	} {
		for _, delay := range opt.Delays {
			r, err := e2Run(opt, proto, delay)
			if err != nil {
				return t, err
			}
			t.AddRow(proto.String(), delay.String(), u(r.sharp), u(r.blurred),
				u(r.deferred), u(r.resumeFailures),
				f("%.0f", r.unventilatedSeconds), f("%.1f", r.minSpO2))
		}
	}
	t.AddNote("expected shape: manual blurs a large fraction at every delay; pause-restart is sharp " +
		"but suspends ventilation and risks resume loss; state-sync is sharp with zero ventilation " +
		"interruption while command delay fits the ~0.67 s end-of-exhale window, degrading once " +
		"delay + exposure outgrows it (>~0.6 s)")
	return t, nil
}
