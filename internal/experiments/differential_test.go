package experiments

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// The differential determinism suite, along two independent axes:
//
// Kernel backend: the arena kernel must reproduce the pre-refactor
// container/heap kernel byte for byte at the level that matters —
// rendered experiment tables and reduced fleet summaries — at every
// worker count. The reference backend lives in internal/sim/refqueue.go
// solely to anchor this comparison.
//
// Wire codec: the binary envelope codec must reproduce the JSON codec's
// tables byte for byte. Scenario outcomes are functions of delivered
// values, never of wire bytes, so any divergence is a codec bug (a value
// that did not survive the wire bit-exactly, or an encode path that
// perturbed RNG-visible behavior).

// differentially renders the same workload across kernel backends (with
// the default binary codec), then across wire codecs (on the default
// kernel), and asserts every rendering is byte-identical.
func differentially(t *testing.T, render func(workers int, codec string) (string, error)) {
	t.Helper()
	var baseline string
	check := func(label string, workers int, codec string) {
		out, err := render(workers, codec)
		if err != nil {
			sim.SetReferenceQueueForTest(false)
			t.Fatal(err)
		}
		if baseline == "" {
			baseline = out
			return
		}
		if out != baseline {
			sim.SetReferenceQueueForTest(false)
			t.Fatalf("%s workers=%d codec=%s diverged:\n%s\nvs baseline:\n%s", label, workers, codec, out, baseline)
		}
	}
	for _, ref := range []bool{false, true} {
		sim.SetReferenceQueueForTest(ref)
		for _, workers := range []int{1, 4} {
			label := "kernel=arena"
			if ref {
				label = "kernel=reference"
			}
			check(label, workers, "binary")
		}
	}
	sim.SetReferenceQueueForTest(false)
	for _, codec := range []string{"json"} {
		for _, workers := range []int{1, 4} {
			check("kernel=arena", workers, codec)
		}
	}
}

func TestDifferentialF1(t *testing.T) {
	differentially(t, func(workers int, codec string) (string, error) {
		tab, err := F1PCAControlLoop(F1Options{
			Seed: 42, Duration: 30 * sim.Minute, Trials: 3, Workers: workers, WireCodec: codec,
		})
		return tab.String(), err
	})
}

func TestDifferentialE6(t *testing.T) {
	differentially(t, func(workers int, codec string) (string, error) {
		tab, err := E6CommFailure(E6Options{
			Seed: 7, Duration: 30 * sim.Minute, Losses: []float64{0, 0.3}, Workers: workers, WireCodec: codec,
		})
		return tab.String(), err
	})
}

func TestDifferentialE7(t *testing.T) {
	// E7 is wire-free (synthetic series scored in-process); the codec
	// axis degenerates to a replay, which must of course still agree.
	differentially(t, func(workers int, _ string) (string, error) {
		tab, err := E7AdaptiveThresholds(E7Options{
			Seed: 5, Athletes: 3, Average: 3, Duration: 2 * sim.Hour, Workers: workers,
		})
		return tab.String(), err
	})
}

func TestDifferentialXRayVentSyncFleet(t *testing.T) {
	differentially(t, func(workers int, codec string) (string, error) {
		spec, err := fleet.Build(fleet.ScenarioXRayVentSync, fleet.Params{
			Seed: 11, Cells: 4, WireCodec: codec,
			Knobs: map[string]float64{"requests": 12},
		})
		if err != nil {
			return "", err
		}
		res, err := fleet.Runner{Workers: workers}.Run(spec)
		if err != nil {
			return "", err
		}
		return fleet.Reduce(res).String(), nil
	})
}
