package experiments

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// The differential determinism suite: the arena kernel must reproduce the
// pre-refactor container/heap kernel byte for byte at the level that
// matters — rendered experiment tables and reduced fleet summaries — and
// must keep doing so at every worker count. The reference backend lives
// in internal/sim/refqueue.go solely to anchor this comparison.

// differentially renders the same workload on both kernel backends across
// worker counts and asserts every rendering is byte-identical.
func differentially(t *testing.T, render func(workers int) (string, error)) {
	t.Helper()
	var baseline string
	for _, ref := range []bool{false, true} {
		sim.SetReferenceQueueForTest(ref)
		for _, workers := range []int{1, 4} {
			out, err := render(workers)
			if err != nil {
				sim.SetReferenceQueueForTest(false)
				t.Fatal(err)
			}
			if baseline == "" {
				baseline = out
				continue
			}
			if out != baseline {
				sim.SetReferenceQueueForTest(false)
				t.Fatalf("ref=%v workers=%d diverged:\n%s\nvs baseline:\n%s", ref, workers, out, baseline)
			}
		}
	}
	sim.SetReferenceQueueForTest(false)
}

func TestDifferentialF1(t *testing.T) {
	differentially(t, func(workers int) (string, error) {
		tab, err := F1PCAControlLoop(F1Options{
			Seed: 42, Duration: 30 * sim.Minute, Trials: 3, Workers: workers,
		})
		return tab.String(), err
	})
}

func TestDifferentialE6(t *testing.T) {
	differentially(t, func(workers int) (string, error) {
		tab, err := E6CommFailure(E6Options{
			Seed: 7, Duration: 30 * sim.Minute, Losses: []float64{0, 0.3}, Workers: workers,
		})
		return tab.String(), err
	})
}

func TestDifferentialE7(t *testing.T) {
	differentially(t, func(workers int) (string, error) {
		tab, err := E7AdaptiveThresholds(E7Options{
			Seed: 5, Athletes: 3, Average: 3, Duration: 2 * sim.Hour, Workers: workers,
		})
		return tab.String(), err
	})
}

func TestDifferentialXRayVentSyncFleet(t *testing.T) {
	differentially(t, func(workers int) (string, error) {
		spec, err := fleet.Build(fleet.ScenarioXRayVentSync, fleet.Params{
			Seed: 11, Cells: 4,
			Knobs: map[string]float64{"requests": 12},
		})
		if err != nil {
			return "", err
		}
		res, err := fleet.Runner{Workers: workers}.Run(spec)
		if err != nil {
			return "", err
		}
		return fleet.Reduce(res).String(), nil
	})
}
