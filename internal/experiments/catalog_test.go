package experiments

import (
	"strings"
	"testing"
)

func TestCatalogOrderAndLookup(t *testing.T) {
	ids := IDs()
	want := []string{"F1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "A1"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("catalog order = %v", ids)
	}
	for _, id := range ids {
		if !Has(id) {
			t.Fatalf("Has(%q) = false", id)
		}
	}
	if Has("E99") {
		t.Fatal("Has accepted unknown ID")
	}
	if _, err := Run("E99", Options{}); err == nil {
		t.Fatal("Run accepted unknown ID")
	}
}

// The catalog must render the same bytes as calling the runner directly —
// it is the single source both icerun and the gateway serve from.
func TestCatalogRunMatchesDirectCall(t *testing.T) {
	viaCatalog, err := Run("E12", Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := E12TemporalInduction()
	if err != nil {
		t.Fatal(err)
	}
	if viaCatalog.String() != direct.String() {
		t.Fatalf("catalog render diverged:\n%s\nvs\n%s", viaCatalog, direct)
	}
}
