package experiments

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/icescope"
)

// TestDifferentialTracing renders every catalog experiment — the full
// set of icerun tables — once bare and once under an active icescope
// span with fleet histograms attached, and holds each table
// byte-identical. This is the observability layer's determinism gate:
// spans and metrics ride alongside the simulation, never inside it, so
// turning them on cannot perturb a single byte of output. Fleet-backed
// experiments run multi-worker so the per-worker span buffers and the
// latency histograms are actually exercised.
func TestDifferentialTracing(t *testing.T) {
	plain := Options{Seed: 1, Cells: 2, Workers: 2}

	reg := icescope.NewRegistry()
	obs := &fleet.Obs{
		CellSeconds:      reg.Histogram("test_cell_seconds", "Cell wall time.", nil),
		QueueWaitSeconds: reg.Histogram("test_queue_wait_seconds", "Cell queue wait.", nil),
	}
	tr := icescope.NewTrace("differential")
	root := tr.Start(icescope.Span{}, "icerun")
	traced := plain
	traced.Trace = root
	traced.Obs = obs

	for _, id := range IDs() {
		bare, err := Run(id, plain)
		if err != nil {
			t.Fatalf("%s bare: %v", id, err)
		}
		instrumented, err := Run(id, traced)
		if err != nil {
			t.Fatalf("%s traced: %v", id, err)
		}
		if instrumented.String() != bare.String() {
			t.Errorf("%s: tracing changed the table\ntraced:\n%s\nbare:\n%s",
				id, instrumented.String(), bare.String())
		}
	}
	root.End()

	// The instrumentation must have actually observed something, or this
	// differential proved nothing.
	if tr.Coverage(root) <= 0 {
		t.Error("trace recorded no leaf spans — differential exercised nothing")
	}
	if obs.CellSeconds.Count() == 0 {
		t.Error("cell latency histogram never observed — differential exercised nothing")
	}
	if err := icescope.Lint(reg.Expose()); err != nil {
		t.Errorf("histogram exposition fails lint: %v", err)
	}
}
