package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/icescope"
)

// Options carries the harness-wide knobs into a catalog runner — the
// same triple cmd/icerun exposes as flags and the gateway accepts in a
// table-job request. Every runner is a pure function of its options, so
// a (id, options) pair keys a deterministic result cache.
type Options struct {
	Seed    int64 // base simulation seed; 0 = 1
	Cells   int   // trials per configuration for ensemble experiments (F1)
	Workers int   // fleet worker pool width for parallel cell execution

	// Engine, when non-nil, distributes fleet-backed experiments (F1,
	// E6) across it instead of the local pool — the icegate mesh backend
	// plugs the cluster in here. Deliberately NOT part of result
	// identity: the fleet's determinism contract makes tables
	// byte-identical wherever the cells ran, so engines are a deployment
	// knob exactly like Workers.
	Engine fleet.Engine

	// Trace, when active, parents the experiment's icescope spans; Obs
	// feeds the fleet's latency histograms. Both are observability-only:
	// like Workers and Engine they never enter result identity, and the
	// trace differential suite holds tables byte-identical with tracing
	// on and off.
	Trace icescope.Span
	Obs   *fleet.Obs
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Cells <= 0 {
		o.Cells = 1
	}
	return o
}

// catalog maps each experiment ID to its runner, in the canonical order
// of DESIGN.md's index. Both cmd/icerun and the icegate gateway serve
// from this table, so every experiment is equally runnable locally and
// remotely.
var catalog = []struct {
	id  string
	run func(o Options) (Table, error)
}{
	{"F1", func(o Options) (Table, error) {
		return F1PCAControlLoop(F1Options{
			Seed: o.Seed, Trials: o.Cells, Workers: o.Workers,
			Engine: o.Engine, Trace: o.Trace, Obs: o.Obs,
		})
	}},
	{"E2", func(o Options) (Table, error) {
		opt := DefaultE2()
		opt.Seed = o.Seed
		return E2XrayVentSync(opt)
	}},
	{"E3", func(o Options) (Table, error) {
		return E3SmartAlarms(E3Options{Seed: o.Seed})
	}},
	{"E4", func(o Options) (Table, error) {
		return E4SupervisoryControl(E4Options{Seed: o.Seed})
	}},
	{"E5", func(Options) (Table, error) { return E5WorkflowVerify() }},
	{"E6", func(o Options) (Table, error) {
		opt := DefaultE6()
		opt.Seed = o.Seed
		opt.Workers = o.Workers
		opt.Engine = o.Engine
		opt.Trace = o.Trace
		opt.Obs = o.Obs
		return E6CommFailure(opt)
	}},
	{"E7", func(o Options) (Table, error) {
		return E7AdaptiveThresholds(E7Options{Seed: o.Seed, Workers: o.Workers, Trace: o.Trace, Obs: o.Obs})
	}},
	{"E8", func(Options) (Table, error) { return E8IncrementalCert() }},
	{"E9", func(o Options) (Table, error) {
		return E9Security(E9Options{Seed: o.Seed})
	}},
	{"E10", func(o Options) (Table, error) {
		return E10Telemetry(E10Options{Seed: o.Seed})
	}},
	{"E11", func(o Options) (Table, error) {
		return E11MixedCriticality(E11Options{Seed: o.Seed})
	}},
	{"E12", func(Options) (Table, error) { return E12TemporalInduction() }},
	{"E13", func(o Options) (Table, error) {
		opt := DefaultE13()
		opt.Seed = o.Seed
		return E13UserModel(opt)
	}},
	{"A1", func(o Options) (Table, error) {
		opt := DefaultA1()
		opt.Seed = o.Seed
		return A1SupervisorAblation(opt)
	}},
}

// IDs lists the catalog's experiment IDs in canonical (DESIGN.md) order.
func IDs() []string {
	out := make([]string, len(catalog))
	for i, e := range catalog {
		out[i] = e.id
	}
	return out
}

// Has reports whether the catalog knows the experiment ID.
func Has(id string) bool {
	for _, e := range catalog {
		if e.id == id {
			return true
		}
	}
	return false
}

// Run executes one catalog experiment. Unknown IDs error; options get
// their harness defaults (seed 1, one cell) so a zero Options reproduces
// the historical serial tables.
func Run(id string, o Options) (Table, error) {
	o = o.withDefaults()
	for _, e := range catalog {
		if e.id == id {
			if o.Trace.Active() {
				sp := o.Trace.Child("exp " + id)
				o.Trace = sp
				tab, err := e.run(o)
				sp.End()
				return tab, err
			}
			return e.run(o)
		}
	}
	return Table{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}
