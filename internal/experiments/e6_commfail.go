package experiments

import (
	"fmt"

	"repro/internal/closedloop"
	"repro/internal/fleet"
	"repro/internal/icescope"
	"repro/internal/sim"
)

// E6Options scale the communication-failure sweep.
type E6Options struct {
	Seed      int64
	Duration  sim.Time  // 0 = 2 h
	Losses    []float64 // packet-loss probabilities to sweep
	Workers   int       // fleet worker pool width; 0 = serial
	WireCodec string    // ICE wire encoding inside cells; "" = binary

	// Engine distributes the sweep's cells when non-nil (see
	// Options.Engine); tables are byte-identical either way.
	Engine fleet.Engine

	// Trace/Obs are observability passthroughs (see Options); never part
	// of result identity.
	Trace icescope.Span
	Obs   *fleet.Obs
}

// DefaultE6 returns the sweep in DESIGN.md.
func DefaultE6() E6Options {
	return E6Options{
		Seed:     7,
		Duration: 2 * sim.Hour,
		Losses:   []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5},
	}
}

// E6CommFailure sweeps packet loss over the Figure 1 loop and contrasts
// the fail-safe supervisor (design decision D1) with a fail-operational
// ablation. On top of random loss, every run suffers a 35-minute total
// outage of the oximeter->supervisor path mid-session (a network
// partition) — the communication failure the paper says the supervisor
// must tolerate. What does each design cost the patient?
//
// Every sweep point is one fleet cell of the registered "pca-commfault"
// scenario, all pinned to the base seed so the (mode, loss) axis is the
// only thing that varies; the cells run concurrently across Workers and
// reduce back into rows in sweep order.
func E6CommFailure(opt E6Options) (Table, error) {
	if len(opt.Losses) == 0 {
		opt.Losses = DefaultE6().Losses
	}
	if opt.Duration == 0 {
		opt.Duration = 2 * sim.Hour
	}
	t := Table{
		ID:    "E6",
		Title: "PCA loop under packet loss + a 35-min oximeter outage: fail-safe vs fail-operational",
		Header: []string{"mode", "loss", "min SpO2", "s<85", "distress",
			"stops", "timeouts", "drug (mg)"},
	}

	type combo struct {
		mode     string
		failSafe bool
		loss     float64
	}
	var combos []combo
	for _, failSafe := range []bool{true, false} {
		mode := "fail-safe"
		if !failSafe {
			mode = "fail-operational"
		}
		for _, loss := range opt.Losses {
			combos = append(combos, combo{mode: mode, failSafe: failSafe, loss: loss})
		}
	}

	specs := make([]fleet.Spec, 0, len(combos))
	for _, c := range combos {
		failsafe := 0.0
		if c.failSafe {
			failsafe = 1
		}
		spec, err := fleet.Build(fleet.ScenarioPCACommFault, fleet.Params{
			Seed:      opt.Seed,
			Cells:     1,
			Duration:  opt.Duration,
			WireCodec: opt.WireCodec,
			Knobs:     map[string]float64{"loss": c.loss, "failsafe": failsafe},
		})
		if err != nil {
			return t, fmt.Errorf("E6: %w", err)
		}
		// Name the spec after the sweep point so a failing cell's error
		// identifies its (mode, loss) configuration. The seed is pinned by
		// the factory, so the name never feeds seed derivation here.
		spec.Name = fmt.Sprintf("E6 %s loss %.2f", c.mode, c.loss)
		specs = append(specs, spec)
	}
	groups, err := fleet.Runner{Workers: opt.Workers, Engine: opt.Engine, Span: opt.Trace, Obs: opt.Obs}.RunAll(specs)
	if err != nil {
		return t, fmt.Errorf("E6: %w", err)
	}

	for i, c := range combos {
		m := groups[i][0].Metrics
		t.AddRow(c.mode, f("%.0f%%", c.loss*100), f("%.1f", m[closedloop.MetricMinSpO2]),
			f("%.0f", m[closedloop.MetricSecondsBelow85]),
			boolCell(m[closedloop.MetricDistressed] != 0),
			u(uint64(m[closedloop.MetricPumpStops])),
			u(uint64(m[closedloop.MetricDataTimeouts])),
			f("%.1f", m[closedloop.MetricDrugMg]))
	}
	t.AddNote("expected shape: fail-safe holds the distress line at every loss rate by trading availability " +
		"(stops during the blind window); fail-operational keeps infusing blind through the outage and " +
		"harms the patient")
	return t, nil
}
