package experiments

import (
	"fmt"
	"time"

	"repro/internal/closedloop"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// E6Options scale the communication-failure sweep.
type E6Options struct {
	Seed     int64
	Duration sim.Time  // 0 = 2 h
	Losses   []float64 // packet-loss probabilities to sweep
}

// DefaultE6 returns the sweep in DESIGN.md.
func DefaultE6() E6Options {
	return E6Options{
		Seed:     7,
		Duration: 2 * sim.Hour,
		Losses:   []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5},
	}
}

// E6CommFailure sweeps packet loss over the Figure 1 loop and contrasts
// the fail-safe supervisor (design decision D1) with a fail-operational
// ablation. On top of random loss, every run suffers a 35-minute total
// outage of the oximeter->supervisor path mid-session (a network
// partition) — the communication failure the paper says the supervisor
// must tolerate. What does each design cost the patient?
func E6CommFailure(opt E6Options) (Table, error) {
	if len(opt.Losses) == 0 {
		opt = DefaultE6()
	}
	t := Table{
		ID:    "E6",
		Title: "PCA loop under packet loss + a 35-min oximeter outage: fail-safe vs fail-operational",
		Header: []string{"mode", "loss", "min SpO2", "s<85", "distress",
			"stops", "timeouts", "drug (mg)"},
	}
	for _, failSafe := range []bool{true, false} {
		mode := "fail-safe"
		if !failSafe {
			mode = "fail-operational"
		}
		for _, loss := range opt.Losses {
			cfg := closedloop.DefaultPCAScenario(opt.Seed)
			cfg.Duration = opt.Duration
			cfg.Link = mednet.LinkParams{
				Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, LossProb: loss,
			}
			cfg.Supervisor.FailSafe = failSafe
			sc := closedloop.BuildPCAScenario(cfg)
			outageStart := opt.Duration / 4
			if err := sc.Net.Outage("ox1", sc.Mgr.Addr(), outageStart, outageStart+35*sim.Minute); err != nil {
				return t, err
			}
			out, err := sc.Run(cfg.Duration)
			if err != nil {
				return t, fmt.Errorf("E6 %s loss %.2f: %w", mode, loss, err)
			}
			t.AddRow(mode, f("%.0f%%", loss*100), f("%.1f", out.MinSpO2),
				f("%.0f", out.SecondsBelow85), boolCell(out.Distressed),
				u(out.PumpStops), u(out.DataTimeouts), f("%.1f", out.TotalDrugMg))
		}
	}
	t.AddNote("expected shape: fail-safe holds the distress line at every loss rate by trading availability " +
		"(stops during the blind window); fail-operational keeps infusing blind through the outage and " +
		"harms the patient")
	return t, nil
}
