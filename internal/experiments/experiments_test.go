package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// Each experiment runs end-to-end at reduced scale and must produce a
// table whose shape matches the claims in DESIGN.md. These are the
// integration tests of the whole repository: every substrate participates.

func TestF1SupervisorPreventsDistress(t *testing.T) {
	tab, err := F1PCAControlLoop(F1Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	unsup, sup := tab.Rows[0], tab.Rows[1]
	if unsup[4] != "yes" {
		t.Fatalf("unsupervised run not distressed: %v", unsup)
	}
	if sup[4] != "no" {
		t.Fatalf("supervised run distressed: %v", sup)
	}
	if sup[8] == "0" {
		t.Fatalf("no stops issued: %v", sup)
	}
	if !strings.Contains(tab.String(), "F1") {
		t.Fatal("table rendering broken")
	}
}

func TestF1TraceRenders(t *testing.T) {
	out, err := F1Trace(F1Options{Seed: 42, Duration: 30 * sim.Minute}, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true/spo2") {
		t.Fatalf("trace missing series header:\n%s", out)
	}
}

func TestE2ProtocolShape(t *testing.T) {
	opt := E2Options{
		Seed: 1, Requests: 10,
		Delays:   []time.Duration{2 * time.Millisecond, time.Second},
		LossProb: 0,
	}
	tab, err := E2XrayVentSync(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 3 protocols x 2 delays.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	cell := func(proto, delay string, col int) string {
		for _, r := range tab.Rows {
			if r[0] == proto && r[1] == delay {
				return r[col]
			}
		}
		t.Fatalf("row %s/%s missing", proto, delay)
		return ""
	}
	// Manual blurs at fast network; state-sync does not.
	if cell("manual", "2ms", 3) == "0" {
		t.Fatalf("manual protocol never blurred:\n%s", tab)
	}
	if cell("state-sync", "2ms", 3) != "0" {
		t.Fatalf("state-sync blurred at 2ms:\n%s", tab)
	}
	if cell("state-sync", "2ms", 2) == "0" {
		t.Fatalf("state-sync took no images at 2ms:\n%s", tab)
	}
	// State-sync degrades (defers or blurs) past its 50 ms design bound.
	if cell("state-sync", "1s", 3) == "0" && cell("state-sync", "1s", 4) == "0" {
		t.Fatalf("state-sync unaffected by 1s delay:\n%s", tab)
	}
	// Pause-restart never blurs but suspends ventilation.
	if cell("pause-restart", "2ms", 3) != "0" {
		t.Fatalf("pause-restart blurred:\n%s", tab)
	}
	if cell("pause-restart", "2ms", 6) == "0" {
		t.Fatalf("pause-restart shows no unventilated time:\n%s", tab)
	}
	if cell("state-sync", "2ms", 6) != "0" {
		t.Fatalf("state-sync interrupted ventilation:\n%s", tab)
	}
}

func TestE3LayersReduceFalseAlarms(t *testing.T) {
	tab, err := E3SmartAlarms(E3Options{Seed: 3, Patients: 3, Duration: 3 * sim.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	fp := func(i int) string { return tab.Rows[i][3] }
	if fp(0) <= fp(2) && fp(0) != fp(2) {
		// String compare is fine only same width; parse instead.
	}
	var fps [3]int
	for i := range fps {
		if _, err := fmtSscan(tab.Rows[i][3], &fps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !(fps[0] > fps[1] || fps[1] > fps[2]) || fps[2] > fps[0] {
		t.Fatalf("false alarms not reduced by layers: %v\n%s", fps, tab)
	}
	// Sensitivity must not collapse.
	for i := range tab.Rows {
		var sens float64
		if _, err := fmtSscan(tab.Rows[i][5], &sens); err != nil {
			t.Fatal(err)
		}
		if sens < 0.99 {
			t.Fatalf("engine %s lost sensitivity %.2f:\n%s", tab.Rows[i][0], sens, tab)
		}
	}
}

func TestE4AdaptiveImprovesTracking(t *testing.T) {
	tab, err := E4SupervisoryControl(E4Options{Seed: 4, Patients: 20, Duration: 3 * sim.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var fixedErr, adaptErr float64
	if _, err := fmtSscan(tab.Rows[0][1], &fixedErr); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][1], &adaptErr); err != nil {
		t.Fatal(err)
	}
	// The supervisor's whole point: better steady tracking across the
	// sensitivity spread.
	if adaptErr >= fixedErr {
		t.Fatalf("supervisor tracking (%f) not better than fixed PID (%f):\n%s", adaptErr, fixedErr, tab)
	}
	// Switching transients are tolerated but must stay bounded: danger
	// count within +2 of fixed and overshoot below 0.75.
	var fixedDanger, adaptDanger int
	if _, err := fmtSscan(tab.Rows[0][3], &fixedDanger); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][3], &adaptDanger); err != nil {
		t.Fatal(err)
	}
	if adaptDanger > fixedDanger+2 {
		t.Fatalf("supervisor endangered far more patients than fixed PID:\n%s", tab)
	}
	var adaptOver float64
	if _, err := fmtSscan(tab.Rows[1][2], &adaptOver); err != nil {
		t.Fatal(err)
	}
	if adaptOver > 0.75 {
		t.Fatalf("supervisor overshoot unbounded:\n%s", tab)
	}
}

func TestE5FindsInjectedHazards(t *testing.T) {
	tab, err := E5WorkflowVerify()
	if err != nil {
		t.Fatal(err)
	}
	nominalViolations, faultFindings := 0, 0
	for _, r := range tab.Rows {
		if r[1] == "none" && (r[4] == "VIOLATED" || r[6] == "VIOLATED" || r[5] == "no") {
			nominalViolations++
		}
		if r[1] == "user-error" && (r[4] == "VIOLATED" || r[6] == "VIOLATED") {
			faultFindings++
		}
	}
	if nominalViolations != 0 {
		t.Fatalf("nominal workflows unsafe:\n%s", tab)
	}
	if faultFindings < 3 {
		t.Fatalf("fault injection found only %d hazards:\n%s", faultFindings, tab)
	}
}

func TestE6FailSafeHoldsTheLine(t *testing.T) {
	opt := E6Options{Seed: 7, Duration: sim.Hour, Losses: []float64{0, 0.3}}
	tab, err := E6CommFailure(opt)
	if err != nil {
		t.Fatal(err)
	}
	// fail-safe rows come first; none may show distress.
	for _, r := range tab.Rows[:2] {
		if r[4] != "no" {
			t.Fatalf("fail-safe distressed at loss %s:\n%s", r[1], tab)
		}
	}
}

func TestE7PersonalizationSilencesAthletes(t *testing.T) {
	tab, err := E7AdaptiveThresholds(E7Options{Seed: 5, Athletes: 4, Average: 4, Duration: 6 * sim.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var popFP, persFP int
	if _, err := fmtSscan(tab.Rows[0][3], &popFP); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][3], &persFP); err != nil {
		t.Fatal(err)
	}
	if persFP >= popFP {
		t.Fatalf("personalization did not reduce false alarms (%d -> %d):\n%s", popFP, persFP, tab)
	}
	// No missed episodes either way.
	for _, r := range tab.Rows {
		if !strings.HasPrefix(r[4], "0/") {
			t.Fatalf("missed true bradycardia: %v", r)
		}
	}
}

func TestE8SavingsPositive(t *testing.T) {
	tab, err := E8IncrementalCert()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[5] == "0%" {
			t.Fatalf("no saving for %s:\n%s", r[0], tab)
		}
	}
}

func TestE9AuthStopsInjection(t *testing.T) {
	tab, err := E9Security(E9Options{Seed: 9, ForgedCommands: 50})
	if err != nil {
		t.Fatal(err)
	}
	open, authed := tab.Rows[0], tab.Rows[1]
	if open[1] == "0" {
		t.Fatalf("open network executed nothing:\n%s", tab)
	}
	if authed[1] != "0" {
		t.Fatalf("authenticated network executed forged commands:\n%s", tab)
	}
	if authed[2] == "0" {
		t.Fatalf("no rejections counted:\n%s", tab)
	}
}

func TestE10StreamingFastest(t *testing.T) {
	tab, err := E10Telemetry(E10Options{Seed: 10, Patients: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Last row is streaming; its latency must parse smaller than the
	// first (15 min store-and-forward).
	slow, err := time.ParseDuration(tab.Rows[0][2])
	if err != nil {
		t.Fatal(err)
	}
	fast, err := time.ParseDuration(tab.Rows[len(tab.Rows)-1][2])
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow {
		t.Fatalf("streaming (%v) not faster than store-and-forward (%v):\n%s", fast, slow, tab)
	}
	if fast > time.Second {
		t.Fatalf("streaming latency %v implausibly high:\n%s", fast, tab)
	}
}

func TestE11ContextRemovesBedFalseAlarms(t *testing.T) {
	tab, err := E11MixedCriticality(E11Options{Seed: 11, Duration: 4 * sim.Hour, BedMoves: 6})
	if err != nil {
		t.Fatal(err)
	}
	var noCtxFP, ctxFP int
	if _, err := fmtSscan(tab.Rows[0][3], &noCtxFP); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][3], &ctxFP); err != nil {
		t.Fatal(err)
	}
	if noCtxFP == 0 {
		t.Fatalf("bed moves produced no false alarms without context:\n%s", tab)
	}
	if ctxFP >= noCtxFP {
		t.Fatalf("context did not reduce false alarms:\n%s", tab)
	}
	for _, r := range tab.Rows {
		if !strings.HasPrefix(r[4], "0/") {
			t.Fatalf("missed the true hypotension: %v\n%s", r, tab)
		}
	}
}

func TestE12InductionAgrees(t *testing.T) {
	tab, err := E12TemporalInduction()
	if err != nil {
		t.Fatal(err)
	}
	proved := 0
	for _, r := range tab.Rows {
		if r[3] == "proved" {
			proved++
		}
		if r[3] == "refuted" {
			t.Fatalf("nominal workflow refuted: %v", r)
		}
	}
	if proved < 3 {
		t.Fatalf("only %d proofs closed:\n%s", proved, tab)
	}
}

// fmtSscan is a tiny wrapper so tests read naturally.
func fmtSscan(s string, out any) (int, error) {
	return sscan(s, out)
}

func TestA1ThresholdTradeoff(t *testing.T) {
	tab, err := A1SupervisorAblation(A1Options{
		Seed: 42, Duration: 2 * sim.Hour,
		StopSpO2s: []float64{91, 95},
		Delays:    []time.Duration{100 * time.Millisecond, 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(thr, delay string, col int) float64 {
		for _, r := range tab.Rows {
			if r[0] == thr && r[1] == delay {
				var v float64
				if _, err := fmtSscan(r[col], &v); err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("missing row %s/%s", thr, delay)
		return 0
	}
	// A stricter threshold at the same delay must not worsen the nadir.
	if cell("95", "100ms", 2) < cell("91", "100ms", 2)-0.5 {
		t.Fatalf("stricter threshold worsened nadir:\n%s", tab)
	}
	// The stricter threshold must cost analgesia (less drug delivered).
	if cell("95", "100ms", 6) >= cell("91", "100ms", 6) {
		t.Fatalf("stricter threshold delivered no less drug:\n%s", tab)
	}
}

func TestE13HazardGrowsWithErrorRate(t *testing.T) {
	tab, err := E13UserModel(E13Options{
		Seed: 13, RunsPerCell: 120, ErrorRates: []float64{0.02, 0.15},
	})
	if err != nil {
		t.Fatal(err)
	}
	// For each workflow: P(unsafe) at the high rate >= at the low rate,
	// and at least one workflow shows real degradation.
	grew := false
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		lo, hi := tab.Rows[i], tab.Rows[i+1]
		if lo[0] != hi[0] {
			t.Fatalf("row pairing broken: %v vs %v", lo, hi)
		}
		var loP, hiP float64
		if _, err := fmtSscan(lo[3], &loP); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(hi[3], &hiP); err != nil {
			t.Fatal(err)
		}
		if hiP < loP-0.05 {
			t.Fatalf("%s: hazard shrank with error rate (%f -> %f):\n%s", lo[0], loP, hiP, tab)
		}
		if hiP > loP+0.05 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no workflow showed hazard growth:\n%s", tab)
	}
}
