package experiments

import (
	"fmt"
	"math"

	"repro/internal/control"
	"repro/internal/physio"
	"repro/internal/sim"
)

// E4Options scale the closed-loop sedation-control study.
type E4Options struct {
	Seed     int64
	Patients int      // 0 = 40
	Duration sim.Time // 0 = 3 h
	Target   float64  // target fractional depression (0 = 0.35)
}

// e4Plant adapts a patient to a sedation-control plant: input infusion
// rate (mg/min), output a *linearized* sedation measurement. The raw
// sedation index (fractional depression) follows a steep Hill curve, so
// the loop controls its inverse-Hill transform — the effect-compartment
// concentration estimate, standard practice in closed-loop anesthesia.
// Under this transform a patient's unknown sensitivity (EC50) becomes a
// pure static gain, exactly the parametric uncertainty the supervisory
// architecture is built for.
type e4Plant struct {
	p       *physio.Patient
	rng     *sim.RNG
	nominal *physio.PD // nominal curve used for the measurement transform
}

func (pl *e4Plant) step(u float64, dt sim.Time) float64 {
	pl.p.Step(dt, u)
	dep := pl.p.Vitals().Depression + pl.rng.Normal(0, 0.005)
	if dep < 0 {
		dep = 0
	}
	if dep > 0.9 {
		dep = 0.9
	}
	return pl.nominal.ConcentrationFor(dep)
}

// e4Controllers builds the two competitors for one actuator range. Every
// controller uses the same certainty-equivalence lambda tuning; the only
// difference is whether the plant-gain hypothesis adapts.
func e4Controllers(umax float64) (fixed control.Controller, adaptive control.Controller) {
	// Two-lag hypothesis matching the PK/PD structure: central-compartment
	// distribution (~13 min) cascaded with effect-site equilibration
	// (~12 min at ke0 0.08/min). The effective settling constant for PID
	// tuning is their sum.
	const tau1, tau2 = 13 * 60.0, 12 * 60.0
	const tauEff = tau1 + tau2
	tune := func(gain float64) control.PIDParams {
		lambda := tauEff / 3
		kp := tauEff / (gain * lambda)
		return control.PIDParams{Kp: kp, Ki: kp / tauEff, OutMin: 0, OutMax: umax, DerivFilter: 1}
	}
	// In the linearized coordinate, the plant's static gain is
	// (EC50_nominal / EC50_patient) / clearance: a sensitive patient
	// (low EC50) reads proportionally high. Candidates hypothesize the
	// sensitivity ratio; their controllers are certainty-equivalence
	// tuned for that gain.
	const clearance = 1.25 // L/min, nominal k10*V1
	mkCandidate := func(name string, sensitivityRatio float64) control.Candidate {
		gain := sensitivityRatio / clearance
		return control.Candidate{
			Name: name, Gain: gain, Tau: tau1, Tau2: tau2,
			Ctrl: control.MustPID(tune(gain)),
		}
	}
	// First candidate = initial incumbent: start from the SENSITIVE
	// hypothesis (gentlest dosing — "start low, go slow") and escalate
	// only on evidence. The set covers the population's ~10x spread.
	cands := []control.Candidate{
		mkCandidate("ultra-sensitive", 8),
		mkCandidate("sensitive", 3),
		mkCandidate("nominal", 1),
		mkCandidate("resistant", 0.4),
	}
	// The fixed competitor is the nominal candidate's controller: what a
	// designer ships when they must pick one tuning for everyone.
	fixedC := control.MustPID(tune(1 / clearance))
	sup := control.MustSupervisor(control.SupervisorParams{
		Forgetting: 0.9995, DwellSeconds: 450, Hysteresis: 0.5,
	}, cands)
	return fixedC, sup
}

type e4Score struct {
	meanAbsErr   float64 // after the first 90 minutes
	overshoot    float64 // max depression reached
	dangerous    int     // patients whose depression exceeded 0.50
	undertreated int     // patients still below 0.25 at the end (inadequate sedation)
	switches     uint64
}

// e4Patient samples one study subject: drug sensitivity (EC50) varies
// log-normally by a factor of ~10 across the cohort while the lag
// structure stays near nominal. This isolates the *parametric gain
// uncertainty* supervisory control is designed for (Morse [17]); lag
// (ke0) mismatch is a separate identifiability problem the candidate
// models would need a second dimension for, and is kept small here the
// way a drug with well-characterized kinetics but patient-specific
// sensitivity behaves.
func e4Patient(idx int, rng *sim.RNG) *physio.Patient {
	pd := physio.DefaultMorphinePD()
	pd.EC50 *= rng.LogNormal(0, 0.9)
	pd.Ke0 *= rng.LogNormal(0, 0.1)
	pk := physio.DefaultMorphinePK()
	pk.V1 *= rng.LogNormal(0, 0.15)
	pk.K10 *= rng.LogNormal(0, 0.15)
	tr := physio.DefaultTraits()
	tr.ID = fmt.Sprintf("e4-patient-%03d", idx)
	return physio.NewPatient(tr, physio.MustPK(pk), physio.MustPD(pd), rng.Fork(tr.ID))
}

func e4Run(opt E4Options, adaptive bool) (e4Score, error) {
	var sc e4Score
	rng := sim.NewRNG(opt.Seed)
	const umax = 1.2 // mg/min actuator ceiling
	nominalPD := physio.MustPD(physio.DefaultMorphinePD())
	// Setpoint in the linearized coordinate: the nominal effect-site
	// concentration producing the target depression.
	ySetpoint := nominalPD.ConcentrationFor(opt.Target)
	for i := 0; i < opt.Patients; i++ {
		patient := e4Patient(i, rng.Fork(fmt.Sprintf("p%d", i)))
		plant := &e4Plant{p: patient, rng: rng.Fork(fmt.Sprintf("n%d", i)), nominal: nominalPD}
		fixed, sup := e4Controllers(umax)
		var ctrl control.Controller = fixed
		if adaptive {
			ctrl = sup
		}
		measured := 0.0
		var absErr float64
		var absN int
		maxDep := 0.0
		steps := int(opt.Duration / (5 * sim.Second))
		for s := 0; s < steps; s++ {
			uRate := ctrl.Update(ySetpoint, measured, 5)
			measured = plant.step(uRate, 5*sim.Second)
			dep := patient.Vitals().Depression
			if dep > maxDep {
				maxDep = dep
			}
			if sim.Time(s)*5*sim.Second > 90*sim.Minute {
				absErr += math.Abs(dep - opt.Target)
				absN++
			}
		}
		if absN > 0 {
			sc.meanAbsErr += absErr / float64(absN)
		}
		if maxDep > sc.overshoot {
			sc.overshoot = maxDep
		}
		if maxDep > 0.50 {
			sc.dangerous++
		}
		if patient.Vitals().Depression < 0.25 {
			sc.undertreated++
		}
		if s, ok := ctrl.(*control.Supervisor); ok {
			sc.switches += s.Switches
		}
	}
	sc.meanAbsErr /= float64(opt.Patients)
	return sc, nil
}

// E4SupervisoryControl compares a fixed nominal-tuned PID against the
// Morse-style supervisory adaptive controller across a PK/PD-variable
// population (challenge (g), design decision D4).
func E4SupervisoryControl(opt E4Options) (Table, error) {
	if opt.Patients == 0 {
		opt.Patients = 40
	}
	if opt.Duration == 0 {
		opt.Duration = 3 * sim.Hour
	}
	if opt.Target == 0 {
		opt.Target = 0.35
	}
	t := Table{
		ID: "E4",
		Title: fmt.Sprintf("Closed-loop sedation across %d patients (target depression %.2f, %v)",
			opt.Patients, opt.Target, opt.Duration.Duration()),
		Header: []string{"controller", "mean |err| (steady)", "worst overshoot",
			"patients > 0.50 (danger)", "undertreated", "switches"},
	}
	fixedScore, err := e4Run(opt, false)
	if err != nil {
		return t, err
	}
	t.AddRow("fixed PID (nominal tuning)", f("%.3f", fixedScore.meanAbsErr),
		f("%.2f", fixedScore.overshoot), d(fixedScore.dangerous), d(fixedScore.undertreated), "-")
	adaptScore, err := e4Run(opt, true)
	if err != nil {
		return t, err
	}
	t.AddRow("supervisory adaptive", f("%.3f", adaptScore.meanAbsErr),
		f("%.2f", adaptScore.overshoot), d(adaptScore.dangerous), d(adaptScore.undertreated), u(adaptScore.switches))
	t.AddNote("expected shape: with a 10x sensitivity spread the fixed nominal tuning tracks slowly on " +
		"off-nominal patients; the supervisor identifies each patient and retunes, cutting steady tracking " +
		"error by roughly a quarter. The cost of adaptation is the occasional switching transient on the " +
		"sensitive tail — the classic supervisory-control trade-off, bounded by dwell time and hysteresis")
	return t, nil
}
