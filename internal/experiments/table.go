// Package experiments contains one runner per experiment in DESIGN.md's
// index (F1, E2-E13, A1). Each runner builds its scenario from the
// library packages, executes it on the virtual clock, and returns a
// Table — the rows the paper's evaluation section would have reported.
// The sweep-shaped runners (F1 trials, E6, E7) execute their cells on
// the internal/fleet runner, so their tables are reproducible at any
// worker count. bench_test.go and the cmd/ tools are thin wrappers
// around these runners; cmd/icerun renders their output.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-text annotation rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f(format string, v float64) string { return fmt.Sprintf(format, v) }
func d(v int) string                    { return fmt.Sprintf("%d", v) }
func u(v uint64) string                 { return fmt.Sprintf("%d", v) }
func boolCell(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
