package experiments

import (
	"testing"

	"repro/internal/fleet"
)

// TestDifferentialPrototypeCloning renders every catalog experiment —
// the full set of icerun tables — with prototype cloning globally
// disabled and again with it enabled, and holds each table
// byte-identical. This is the tentpole's end-to-end gate: the
// Reset-replay rigs must be indistinguishable from from-scratch
// construction at the level users actually consume, the rendered
// tables. Fleet-backed experiments run with a multi-worker pool so the
// per-worker prototype caches are exercised, not just a single rig.
func TestDifferentialPrototypeCloning(t *testing.T) {
	defer fleet.SetPrototypesForTest(true)
	opt := Options{Seed: 1, Cells: 2, Workers: 2}
	for _, id := range IDs() {
		fleet.SetPrototypesForTest(false)
		scratch, err := Run(id, opt)
		if err != nil {
			t.Fatalf("%s from-scratch: %v", id, err)
		}
		fleet.SetPrototypesForTest(true)
		cloned, err := Run(id, opt)
		if err != nil {
			t.Fatalf("%s cloned: %v", id, err)
		}
		if cloned.String() != scratch.String() {
			t.Errorf("%s: prototype cloning changed the table\ncloned:\n%s\nfrom-scratch:\n%s",
				id, cloned.String(), scratch.String())
		}
	}
}
