package experiments

import (
	"fmt"
	"sort"

	"repro/internal/assurance"
)

// E8IncrementalCert upgrades each component of the PCA assurance case in
// turn and compares the incremental re-certification effort against the
// full-review baseline (challenge (n), design decision D5).
func E8IncrementalCert() (Table, error) {
	t := Table{
		ID:    "E8",
		Title: "Incremental re-certification of the PCA assurance case after component upgrades",
		Header: []string{"upgraded component", "evidence invalidated", "evidence total",
			"re-examined (incremental)", "re-examined (full review)", "saving"},
	}
	components := []string{"pump-firmware", "oximeter-firmware", "supervisor-app", "ice-platform"}
	sort.Strings(components)
	for _, comp := range components {
		c := assurance.BuildPCACase()
		if ok, _ := c.Supported("G0"); !ok {
			return t, fmt.Errorf("E8: fresh case unsupported")
		}
		invalidated := c.UpgradeComponent(comp, "next")
		plan := c.PlanRecertification()
		if len(plan.InvalidEvidence) != len(invalidated) {
			return t, fmt.Errorf("E8: plan/invalidation mismatch for %s", comp)
		}
		// Execute the incremental plan and confirm support is restored.
		for _, id := range plan.InvalidEvidence {
			if err := c.Reexamine(id); err != nil {
				return t, err
			}
		}
		if ok, _ := c.Supported("G0"); !ok {
			return t, fmt.Errorf("E8: %s not restored by incremental plan", comp)
		}
		saving := 1 - float64(len(invalidated))/float64(plan.TotalEvidence)
		t.AddRow(comp, d(len(invalidated)), d(plan.TotalEvidence),
			d(len(invalidated)), d(plan.TotalEvidence), f("%.0f%%", saving*100))
	}
	t.AddNote("expected shape: every upgrade re-examines only the evidence depending on the changed " +
		"component — the paper's alternative to reconsidering the whole assurance case from scratch")
	return t, nil
}
