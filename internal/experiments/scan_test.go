package experiments

import "fmt"

// sscan parses a single formatted cell back into a value for assertions.
func sscan(s string, out any) (int, error) {
	return fmt.Sscan(s, out)
}
