package experiments

import (
	"fmt"

	"repro/internal/closedloop"
	"repro/internal/sim"
)

// F1Options scale the Figure 1 reproduction.
type F1Options struct {
	Seed     int64
	Duration sim.Time // 0 = 2 h
}

// F1PCAControlLoop reproduces Figure 1 of the paper: the closed-loop PCA
// system. It runs the adverse-event scenario (misprogrammed pump +
// PCA-by-proxy) with and without the network supervisor and reports the
// patient-safety outcome of each, plus the control-loop delay budget the
// figure annotates (signal processing time, algorithm processing time,
// pump stop delay).
func F1PCAControlLoop(opt F1Options) (Table, error) {
	if opt.Duration == 0 {
		opt.Duration = 2 * sim.Hour
	}
	t := Table{
		ID:    "F1",
		Title: "PCA control loop (paper Fig. 1): misprogrammed pump + PCA-by-proxy, 2 h session",
		Header: []string{"configuration", "min SpO2 (%)", "s<90", "s<85", "distress",
			"drug (mg)", "boluses", "denied", "stops", "alarms"},
	}

	run := func(name string, enabled bool) (closedloop.PCAOutcome, *closedloop.PCAScenario, error) {
		cfg := closedloop.DefaultPCAScenario(opt.Seed)
		cfg.Duration = opt.Duration
		cfg.SupervisorEnabled = enabled
		out, sc, err := closedloop.RunPCAScenario(cfg)
		if err != nil {
			return out, nil, fmt.Errorf("F1 %s: %w", name, err)
		}
		t.AddRow(name, f("%.1f", out.MinSpO2), f("%.0f", out.SecondsBelow90),
			f("%.0f", out.SecondsBelow85), boolCell(out.Distressed),
			f("%.1f", out.TotalDrugMg), u(out.Boluses), u(out.BolusesDenied),
			u(out.PumpStops), d(out.Alarms))
		return out, sc, nil
	}

	if _, _, err := run("unsupervised (stand-alone devices)", false); err != nil {
		return t, err
	}
	outYes, sc, err := run("ICE supervisor (Fig. 1 loop)", true)
	if err != nil {
		return t, err
	}

	// The delay budget Figure 1 annotates.
	win := sc.Oximeter.Conn().Descriptor() // window length comes from the estimator
	_ = win
	t.AddNote("loop delay budget: signal processing = 4 s analysis window; "+
		"algorithm processing = 100 ms; network+ack+pump stop delay (measured) = %v",
		outYes.MeanStopLatency.Duration())
	t.AddNote("supervisor data timeouts: %d; expected shape: supervision eliminates the distress episode", outYes.DataTimeouts)
	return t, nil
}

// F1Trace renders the ground-truth time series of the supervised run —
// the waveform view of Figure 1 — sampled every step.
func F1Trace(opt F1Options, step sim.Time) (string, error) {
	if opt.Duration == 0 {
		opt.Duration = 2 * sim.Hour
	}
	if step == 0 {
		step = 5 * sim.Minute
	}
	cfg := closedloop.DefaultPCAScenario(opt.Seed)
	cfg.Duration = opt.Duration
	_, sc, err := closedloop.RunPCAScenario(cfg)
	if err != nil {
		return "", err
	}
	names := []string{"true/spo2", "true/hr", "true/rr", "true/drug-plasma", "true/infusion-rate"}
	out := sc.Trace.Render(names, step, opt.Duration)
	for _, ev := range sc.Trace.Events("alarm") {
		out += fmt.Sprintf("alarm @ %-10v %s\n", ev.T.Duration(), ev.Msg)
	}
	return out, nil
}
