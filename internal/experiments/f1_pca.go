package experiments

import (
	"fmt"
	"time"

	"repro/internal/closedloop"
	"repro/internal/fleet"
	"repro/internal/icescope"
	"repro/internal/sim"
)

// F1Options scale the Figure 1 reproduction.
type F1Options struct {
	Seed      int64
	Duration  sim.Time // 0 = 2 h
	Trials    int      // independent patient sessions per configuration; 0 = 1
	Workers   int      // fleet worker pool width; 0 = serial
	WireCodec string   // ICE wire encoding inside cells; "" = binary

	// Engine distributes the trial ensembles when non-nil (see
	// Options.Engine); tables are byte-identical either way.
	Engine fleet.Engine

	// Trace/Obs are observability passthroughs (see Options); never part
	// of result identity.
	Trace icescope.Span
	Obs   *fleet.Obs
}

// F1PCAControlLoop reproduces Figure 1 of the paper: the closed-loop PCA
// system. It runs the adverse-event scenario (misprogrammed pump +
// PCA-by-proxy) with and without the network supervisor and reports the
// patient-safety outcome of each, plus the control-loop delay budget the
// figure annotates (signal processing time, algorithm processing time,
// pump stop delay).
//
// Both configurations run as fleet ensembles: Trials independent patient
// rooms per configuration, executed across Workers goroutines. Trial 0
// replays the base seed, so the default single-trial table is identical
// to the historical serial run; with Trials > 1 each row reports ensemble
// means and the distress column becomes a count.
func F1PCAControlLoop(opt F1Options) (Table, error) {
	trials := opt.Trials
	if trials <= 0 {
		trials = 1
	}
	title := "PCA control loop (paper Fig. 1): misprogrammed pump + PCA-by-proxy, 2 h session"
	if trials > 1 {
		title = fmt.Sprintf("%s (%d trials/config, ensemble means)", title, trials)
	}
	t := Table{
		ID:    "F1",
		Title: title,
		Header: []string{"configuration", "min SpO2 (%)", "s<90", "s<85", "distress",
			"drug (mg)", "boluses", "denied", "stops", "alarms"},
	}

	params := fleet.Params{Seed: opt.Seed, Cells: trials, Duration: opt.Duration, WireCodec: opt.WireCodec}
	specs := make([]fleet.Spec, 0, 2)
	for _, name := range []string{fleet.ScenarioPCAUnsupervised, fleet.ScenarioPCASupervised} {
		spec, err := fleet.Build(name, params)
		if err != nil {
			return t, fmt.Errorf("F1: %w", err)
		}
		specs = append(specs, spec)
	}
	groups, err := fleet.Runner{Workers: opt.Workers, Engine: opt.Engine, Span: opt.Trace, Obs: opt.Obs}.RunAll(specs)
	if err != nil {
		return t, fmt.Errorf("F1: %w", err)
	}

	var supSum *fleet.Summary // supervised-group summary, reused by the notes
	rowNames := []string{"unsupervised (stand-alone devices)", "ICE supervisor (Fig. 1 loop)"}
	for i, name := range rowNames {
		if trials == 1 {
			m := groups[i][0].Metrics
			t.AddRow(name, f("%.1f", m[closedloop.MetricMinSpO2]),
				f("%.0f", m[closedloop.MetricSecondsBelow90]),
				f("%.0f", m[closedloop.MetricSecondsBelow85]),
				boolCell(m[closedloop.MetricDistressed] != 0),
				f("%.1f", m[closedloop.MetricDrugMg]),
				u(uint64(m[closedloop.MetricBoluses])),
				u(uint64(m[closedloop.MetricBolusesDenied])),
				u(uint64(m[closedloop.MetricPumpStops])),
				d(int(m[closedloop.MetricAlarms])))
			continue
		}
		sum := fleet.Reduce(groups[i])
		if i == 1 {
			supSum = sum
		}
		t.AddRow(name, f("%.1f", sum.Mean(closedloop.MetricMinSpO2)),
			f("%.0f", sum.Mean(closedloop.MetricSecondsBelow90)),
			f("%.0f", sum.Mean(closedloop.MetricSecondsBelow85)),
			fmt.Sprintf("%d/%d", sum.CountAbove(closedloop.MetricDistressed, 0.5), sum.Cells),
			f("%.1f", sum.Mean(closedloop.MetricDrugMg)),
			f("%.1f", sum.Mean(closedloop.MetricBoluses)),
			f("%.1f", sum.Mean(closedloop.MetricBolusesDenied)),
			f("%.1f", sum.Mean(closedloop.MetricPumpStops)),
			f("%.1f", sum.Mean(closedloop.MetricAlarms)))
	}

	// The delay budget Figure 1 annotates, measured on the base-seed
	// supervised session (trial 0 replays the legacy serial run exactly).
	supervised := groups[1][0].Metrics
	t.AddNote("loop delay budget: signal processing = 4 s analysis window; "+
		"algorithm processing = 100 ms; network+ack+pump stop delay (measured) = %v",
		time.Duration(int64(supervised[closedloop.MetricStopLatencyNs])))
	t.AddNote("supervisor data timeouts: %d; expected shape: supervision eliminates the distress episode",
		uint64(supervised[closedloop.MetricDataTimeouts]))
	if trials > 1 {
		t.AddNote("supervised min SpO2 across %d trials: mean %.1f, p5 %.1f, worst %.1f",
			supSum.Cells, supSum.Mean(closedloop.MetricMinSpO2),
			supSum.Percentile(closedloop.MetricMinSpO2, 5), supSum.Min(closedloop.MetricMinSpO2))
	}
	return t, nil
}

// F1Trace renders the ground-truth time series of the supervised run —
// the waveform view of Figure 1 — sampled every step.
func F1Trace(opt F1Options, step sim.Time) (string, error) {
	if opt.Duration == 0 {
		opt.Duration = 2 * sim.Hour
	}
	if step == 0 {
		step = 5 * sim.Minute
	}
	cfg := closedloop.DefaultPCAScenario(opt.Seed)
	cfg.Duration = opt.Duration
	_, sc, err := closedloop.RunPCAScenario(cfg)
	if err != nil {
		return "", err
	}
	names := []string{"true/spo2", "true/hr", "true/rr", "true/drug-plasma", "true/infusion-rate"}
	out := sc.Trace.Render(names, step, opt.Duration)
	for _, ev := range sc.Trace.Events("alarm") {
		out += fmt.Sprintf("alarm @ %-10v %s\n", ev.T.Duration(), ev.Msg)
	}
	return out, nil
}
