package experiments

import (
	"fmt"
	"time"

	"repro/internal/closedloop"
	"repro/internal/sim"
)

// A1Options scale the supervisor-threshold ablation.
type A1Options struct {
	Seed      int64
	Duration  sim.Time        // 0 = 2 h
	StopSpO2s []float64       // thresholds to sweep
	Delays    []time.Duration // algorithm processing delays to sweep
}

// DefaultA1 returns the sweep grid.
func DefaultA1() A1Options {
	return A1Options{
		Seed:      42,
		Duration:  2 * sim.Hour,
		StopSpO2s: []float64{91, 93, 95},
		Delays:    []time.Duration{100 * time.Millisecond, 2 * time.Second, 10 * time.Second, 30 * time.Second},
	}
}

// A1SupervisorAblation sweeps the PCA supervisor's two tunable design
// parameters — the desaturation stop threshold and the algorithm
// processing delay (Figure 1's annotated latency) — over the adverse
// scenario. It quantifies the safety/availability frontier: a higher
// threshold and faster algorithm stop earlier (safer, less drug
// delivered); a slow algorithm erodes the margin the threshold bought.
func A1SupervisorAblation(opt A1Options) (Table, error) {
	if len(opt.StopSpO2s) == 0 {
		opt = DefaultA1()
	}
	t := Table{
		ID:    "A1",
		Title: "Ablation: PCA supervisor stop threshold x algorithm delay (adverse scenario)",
		Header: []string{"stop SpO2", "algo delay", "min SpO2", "s<88", "distress",
			"stops", "drug (mg)", "final pain"},
	}
	for _, thr := range opt.StopSpO2s {
		for _, delay := range opt.Delays {
			cfg := closedloop.DefaultPCAScenario(opt.Seed)
			cfg.Duration = opt.Duration
			cfg.Supervisor.StopSpO2 = thr
			if cfg.Supervisor.ResumeSpO2 < thr+2 {
				cfg.Supervisor.ResumeSpO2 = thr + 2
			}
			cfg.Supervisor.AlgorithmDelay = delay
			out, sc, err := closedloop.RunPCAScenario(cfg)
			if err != nil {
				return t, fmt.Errorf("A1 thr=%.0f delay=%v: %w", thr, delay, err)
			}
			below88 := 0.0
			s := sc.Trace.Series("true/spo2")
			for i := 0; i+1 < len(s); i++ {
				if s[i].V < 88 {
					below88 += (s[i+1].T - s[i].T).Seconds()
				}
			}
			t.AddRow(f("%.0f", thr), delay.String(), f("%.1f", out.MinSpO2),
				f("%.0f", below88), boolCell(out.Distressed),
				u(out.PumpStops), f("%.1f", out.TotalDrugMg), f("%.1f", out.FinalPain))
		}
	}
	t.AddNote("expected shape: raising the threshold and shortening the algorithm delay both deepen the " +
		"safety margin (higher nadir) at the cost of earlier/more frequent interruption of analgesia " +
		"(less drug, more residual pain) — the availability/safety frontier of design decision D1")
	return t, nil
}
