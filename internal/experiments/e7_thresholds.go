package experiments

import (
	"fmt"

	"repro/internal/alarm"
	"repro/internal/ehr"
	"repro/internal/fleet"
	"repro/internal/icescope"
	"repro/internal/sim"
)

// E7Options scale the adaptive-threshold study.
type E7Options struct {
	Seed     int64
	Athletes int      // 0 = 10
	Average  int      // 0 = 10
	Duration sim.Time // 0 = 12 h
	Workers  int      // fleet worker pool width; 0 = serial

	// Trace/Obs are observability passthroughs (see Options); never part
	// of result identity.
	Trace icescope.Span
	Obs   *fleet.Obs
}

// e7Series synthesizes a heart-rate series for one patient: baseline plus
// wander, with one genuine bradycardia episode (drop to ~28 bpm for 5 min)
// injected for a third of patients.
func e7Series(rng *sim.RNG, baseline float64, dur sim.Time, genuineAt sim.Time) ([]sim.Sample, []alarm.Episode) {
	var out []sim.Sample
	var truth []alarm.Episode
	wander := 0.0
	for at := sim.Time(0); at < dur; at += 10 * sim.Second {
		wander += (-wander*0.05 + rng.Normal(0, 0.6))
		v := baseline + wander + rng.Normal(0, 1.2)
		if genuineAt > 0 && at >= genuineAt && at < genuineAt+5*sim.Minute {
			v = 28 + rng.Normal(0, 1)
		}
		out = append(out, sim.Sample{T: at, V: v})
	}
	if genuineAt > 0 {
		truth = append(truth, alarm.Episode{Start: genuineAt, End: genuineAt + 5*sim.Minute})
	}
	return out, truth
}

// e7Patient monitors one patient for the configured duration and scores
// the alarm stream against ground truth — the body of one fleet cell.
// prng is the cell's own stream, derived by the fleet runner as a pure
// function of (seed, spec name, cell index), so the ensemble scores
// identically however many workers run it, and identically for the
// population and personalized passes (the two passes share a spec name
// and seed, keeping the comparison paired).
func e7Patient(opt E7Options, personalized bool, i int, prng *sim.RNG) alarm.Metrics {
	isAthlete := i < opt.Athletes
	baseline := prng.Uniform(62, 80)
	rec := ehr.NewRecord(fmt.Sprintf("p%d", i))
	if isAthlete {
		baseline = prng.Uniform(41, 48)
		rec.ExerciseHoursPerWeek = prng.Uniform(7, 14)
	} else {
		rec.ExerciseHoursPerWeek = prng.Uniform(0, 3)
	}
	// History: two weeks of daily resting heart rates on the chart.
	for j := 0; j < 14; j++ {
		rec.AddObservation(ehr.Observation{Signal: "hr", Value: baseline + prng.Normal(0, 2)})
	}
	th := ehr.PopulationThresholds()
	if personalized {
		th = ehr.Personalize(rec, th)
	}

	genuineAt := sim.Time(0)
	if i%3 == 0 {
		genuineAt = opt.Duration / 2
	}
	series, truth := e7Series(prng, baseline, opt.Duration, genuineAt)

	eng := alarm.NewEngine()
	eng.MustAddRule(alarm.ThresholdRule{
		Name: "hr-low", Signal: "hr", Low: th.HRLow, High: th.HRHigh,
		Sustain: 30 * sim.Second, Priority: alarm.Crisis, Refractory: 10 * sim.Minute,
	})
	for _, s := range series {
		eng.Observe(s.T, "hr", s.V, true)
	}
	return alarm.Score(eng.Events(), truth, 2*sim.Minute, opt.Duration)
}

func e7Score(opt E7Options, personalized bool) (alarm.Metrics, error) {
	spec := fleet.Spec{
		Name:  "e7-threshold-ward",
		Seed:  opt.Seed,
		Cells: opt.Athletes + opt.Average,
		Run: func(c fleet.Cell) (fleet.Metrics, error) {
			m := e7Patient(opt, personalized, c.Index, c.RNG())
			return fleet.Metrics{
				"alarms":    float64(m.TotalAlarms),
				"true_pos":  float64(m.TruePositives),
				"false_pos": float64(m.FalsePositives),
				"missed":    float64(m.MissedEpisodes),
				"episodes":  float64(m.TotalEpisodes),
			}, nil
		},
	}
	results, err := fleet.Runner{Workers: opt.Workers, Span: opt.Trace, Obs: opt.Obs}.Run(spec)
	if err != nil {
		return alarm.Metrics{}, err
	}
	sum := fleet.Reduce(results)
	return alarm.Metrics{
		TotalAlarms:    int(sum.Sum("alarms")),
		TruePositives:  int(sum.Sum("true_pos")),
		FalsePositives: int(sum.Sum("false_pos")),
		MissedEpisodes: int(sum.Sum("missed")),
		TotalEpisodes:  int(sum.Sum("episodes")),
	}, nil
}

// E7AdaptiveThresholds compares population alarm limits against EHR-
// personalized limits on a ward mixing athletes (resting HR ~45) with
// average patients — the paper's own example of challenge (i).
func E7AdaptiveThresholds(opt E7Options) (Table, error) {
	if opt.Athletes == 0 && opt.Average == 0 {
		opt.Athletes, opt.Average = 10, 10
	}
	if opt.Duration == 0 {
		opt.Duration = 12 * sim.Hour
	}
	t := Table{
		ID: "E7",
		Title: fmt.Sprintf("Adaptive thresholds: %d athletes + %d average patients, %v of HR monitoring",
			opt.Athletes, opt.Average, opt.Duration.Duration()),
		Header: []string{"thresholds", "alarms", "true+", "false+", "missed", "false/patient-day"},
	}
	for _, personalized := range []bool{false, true} {
		name := "population (one-size-fits-all)"
		if personalized {
			name = "EHR-personalized"
		}
		m, err := e7Score(opt, personalized)
		if err != nil {
			return t, err
		}
		perDay := float64(m.FalsePositives) /
			(float64(opt.Athletes+opt.Average) * opt.Duration.Seconds() / 86400)
		t.AddRow(name, d(m.TotalAlarms), d(m.TruePositives), d(m.FalsePositives),
			fmt.Sprintf("%d/%d", m.MissedEpisodes, m.TotalEpisodes), f("%.1f", perDay))
	}
	t.AddNote("expected shape: population thresholds page continuously on every athlete (HR < 50); " +
		"personalization silences them while true bradycardia (HR ~28) still alarms for both")
	return t, nil
}
