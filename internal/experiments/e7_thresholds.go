package experiments

import (
	"fmt"

	"repro/internal/alarm"
	"repro/internal/ehr"
	"repro/internal/sim"
)

// E7Options scale the adaptive-threshold study.
type E7Options struct {
	Seed     int64
	Athletes int      // 0 = 10
	Average  int      // 0 = 10
	Duration sim.Time // 0 = 12 h
}

// e7Series synthesizes a heart-rate series for one patient: baseline plus
// wander, with one genuine bradycardia episode (drop to ~28 bpm for 5 min)
// injected for a third of patients.
func e7Series(rng *sim.RNG, baseline float64, dur sim.Time, genuineAt sim.Time) ([]sim.Sample, []alarm.Episode) {
	var out []sim.Sample
	var truth []alarm.Episode
	wander := 0.0
	for at := sim.Time(0); at < dur; at += 10 * sim.Second {
		wander += (-wander*0.05 + rng.Normal(0, 0.6))
		v := baseline + wander + rng.Normal(0, 1.2)
		if genuineAt > 0 && at >= genuineAt && at < genuineAt+5*sim.Minute {
			v = 28 + rng.Normal(0, 1)
		}
		out = append(out, sim.Sample{T: at, V: v})
	}
	if genuineAt > 0 {
		truth = append(truth, alarm.Episode{Start: genuineAt, End: genuineAt + 5*sim.Minute})
	}
	return out, truth
}

func e7Score(opt E7Options, personalized bool) (alarm.Metrics, error) {
	rng := sim.NewRNG(opt.Seed)
	var agg alarm.Metrics
	total := opt.Athletes + opt.Average
	for i := 0; i < total; i++ {
		isAthlete := i < opt.Athletes
		prng := rng.Fork(fmt.Sprintf("p%d", i))
		baseline := prng.Uniform(62, 80)
		rec := ehr.NewRecord(fmt.Sprintf("p%d", i))
		if isAthlete {
			baseline = prng.Uniform(41, 48)
			rec.ExerciseHoursPerWeek = prng.Uniform(7, 14)
		} else {
			rec.ExerciseHoursPerWeek = prng.Uniform(0, 3)
		}
		// History: two weeks of daily resting heart rates on the chart.
		for j := 0; j < 14; j++ {
			rec.AddObservation(ehr.Observation{Signal: "hr", Value: baseline + prng.Normal(0, 2)})
		}
		th := ehr.PopulationThresholds()
		if personalized {
			th = ehr.Personalize(rec, th)
		}

		genuineAt := sim.Time(0)
		if i%3 == 0 {
			genuineAt = opt.Duration / 2
		}
		series, truth := e7Series(prng, baseline, opt.Duration, genuineAt)

		eng := alarm.NewEngine()
		eng.MustAddRule(alarm.ThresholdRule{
			Name: "hr-low", Signal: "hr", Low: th.HRLow, High: th.HRHigh,
			Sustain: 30 * sim.Second, Priority: alarm.Crisis, Refractory: 10 * sim.Minute,
		})
		for _, s := range series {
			eng.Observe(s.T, "hr", s.V, true)
		}
		m := alarm.Score(eng.Events(), truth, 2*sim.Minute, opt.Duration)
		agg.TotalAlarms += m.TotalAlarms
		agg.TruePositives += m.TruePositives
		agg.FalsePositives += m.FalsePositives
		agg.MissedEpisodes += m.MissedEpisodes
		agg.TotalEpisodes += m.TotalEpisodes
	}
	return agg, nil
}

// E7AdaptiveThresholds compares population alarm limits against EHR-
// personalized limits on a ward mixing athletes (resting HR ~45) with
// average patients — the paper's own example of challenge (i).
func E7AdaptiveThresholds(opt E7Options) (Table, error) {
	if opt.Athletes == 0 && opt.Average == 0 {
		opt.Athletes, opt.Average = 10, 10
	}
	if opt.Duration == 0 {
		opt.Duration = 12 * sim.Hour
	}
	t := Table{
		ID: "E7",
		Title: fmt.Sprintf("Adaptive thresholds: %d athletes + %d average patients, %v of HR monitoring",
			opt.Athletes, opt.Average, opt.Duration.Duration()),
		Header: []string{"thresholds", "alarms", "true+", "false+", "missed", "false/patient-day"},
	}
	for _, personalized := range []bool{false, true} {
		name := "population (one-size-fits-all)"
		if personalized {
			name = "EHR-personalized"
		}
		m, err := e7Score(opt, personalized)
		if err != nil {
			return t, err
		}
		perDay := float64(m.FalsePositives) /
			(float64(opt.Athletes+opt.Average) * opt.Duration.Seconds() / 86400)
		t.AddRow(name, d(m.TotalAlarms), d(m.TruePositives), d(m.FalsePositives),
			fmt.Sprintf("%d/%d", m.MissedEpisodes, m.TotalEpisodes), f("%.1f", perDay))
	}
	t.AddNote("expected shape: population thresholds page continuously on every athlete (HR < 50); " +
		"personalization silences them while true bradycardia (HR ~28) still alarms for both")
	return t, nil
}
