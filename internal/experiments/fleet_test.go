package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// The fleet-runner acceptance criterion: for a fixed seed the rendered
// experiment table must be byte-identical no matter how many workers
// execute the cells.

func tableAcrossWorkers(t *testing.T, run func(workers int) (Table, error)) {
	t.Helper()
	var baseline string
	for _, workers := range []int{1, 4, 8} {
		tab, err := run(workers)
		if err != nil {
			t.Fatal(err)
		}
		rendered := tab.String()
		if baseline == "" {
			baseline = rendered
			continue
		}
		if rendered != baseline {
			t.Fatalf("table differs at %d workers:\n%s\nvs baseline:\n%s", workers, rendered, baseline)
		}
	}
}

func TestF1FleetDeterministicAcrossWorkers(t *testing.T) {
	tableAcrossWorkers(t, func(workers int) (Table, error) {
		return F1PCAControlLoop(F1Options{
			Seed: 42, Duration: 20 * sim.Minute, Trials: 4, Workers: workers,
		})
	})
}

func TestE6FleetDeterministicAcrossWorkers(t *testing.T) {
	tableAcrossWorkers(t, func(workers int) (Table, error) {
		return E6CommFailure(E6Options{
			Seed: 7, Duration: sim.Hour, Losses: []float64{0, 0.2, 0.4}, Workers: workers,
		})
	})
}

func TestE7FleetDeterministicAcrossWorkers(t *testing.T) {
	tableAcrossWorkers(t, func(workers int) (Table, error) {
		return E7AdaptiveThresholds(E7Options{
			Seed: 5, Athletes: 4, Average: 4, Duration: 4 * sim.Hour, Workers: workers,
		})
	})
}

// With Trials > 1 the F1 table switches the distress column to an
// ensemble count and reports trial percentiles; the supervised ensemble
// must still dominate the unsupervised one.
func TestF1TrialEnsembleShape(t *testing.T) {
	tab, err := F1PCAControlLoop(F1Options{Seed: 42, Duration: sim.Hour, Trials: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	unsup, sup := tab.Rows[0], tab.Rows[1]
	if !strings.HasSuffix(unsup[4], "/3") || !strings.HasSuffix(sup[4], "/3") {
		t.Fatalf("distress cells not ensemble counts: %q %q", unsup[4], sup[4])
	}
	var unsupSpO2, supSpO2 float64
	if _, err := fmtSscan(unsup[1], &unsupSpO2); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(sup[1], &supSpO2); err != nil {
		t.Fatal(err)
	}
	if supSpO2 <= unsupSpO2 {
		t.Fatalf("supervised ensemble mean SpO2 %.1f not above unsupervised %.1f:\n%s",
			supSpO2, unsupSpO2, tab)
	}
	foundPercentiles := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "p5") {
			foundPercentiles = true
		}
	}
	if !foundPercentiles {
		t.Fatalf("ensemble percentile note missing:\n%s", tab)
	}
}
