package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/workflow"
)

// E13Options scale the caregiver user-model study.
type E13Options struct {
	Seed        int64
	RunsPerCell int       // Monte-Carlo runs per (workflow, error rate)
	ErrorRates  []float64 // per-step probability of each user-error mode
}

// DefaultE13 returns the sweep in DESIGN.md.
func DefaultE13() E13Options {
	return E13Options{
		Seed:        13,
		RunsPerCell: 400,
		ErrorRates:  []float64{0.01, 0.05, 0.15},
	}
}

// E13UserModel performs the quantitative user-modeling analysis of
// challenge (j): given a probabilistic model of caregiver behaviour
// (per-step likelihood of acting out of order or omitting an action),
// estimate by Monte-Carlo interpretation the probability that a clinical
// workflow ends in an unsafe condition — "quantitative reasoning about
// device safety" from likelihood-annotated caregiver models.
func E13UserModel(opt E13Options) (Table, error) {
	if opt.RunsPerCell == 0 {
		opt = DefaultE13()
	}
	t := Table{
		ID: "E13",
		Title: fmt.Sprintf("Caregiver user model: Monte-Carlo P(unsafe) over %d runs per cell",
			opt.RunsPerCell),
		Header: []string{"workflow", "error rate", "P(invariant violated)", "P(unsafe terminal)"},
	}
	builtins := workflow.Builtins()
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)

	// Unsafe-terminal predicates per workflow (same goals as E5).
	goals := map[string]workflow.Expr{
		"xray_vent":   workflow.VarExpr{Name: "ventilated"},
		"handoff":     workflow.VarExpr{Name: "briefed"},
		"pca_setup":   workflow.VarExpr{Name: "started"},
		"transfusion": workflow.VarExpr{Name: "completed"},
		"sedation_titration": workflow.BinExpr{
			Op: workflow.OpGe,
			L:  workflow.VarExpr{Name: "dose"},
			R:  workflow.LitExpr{V: workflow.IntVal(2)},
		},
	}

	for _, name := range names {
		w := builtins[name]
		for _, rate := range opt.ErrorRates {
			violated, unsafeTerm := 0, 0
			for run := 0; run < opt.RunsPerCell; run++ {
				k := sim.NewKernel()
				in := workflow.NewInterp(k, w, workflow.InterpConfig{
					Seed: opt.Seed + int64(run)*7919,
					Errors: workflow.ErrorModel{
						SkipGuardProb: rate,
						OmitProb:      rate,
					},
				})
				res, err := in.RunToCompletion(24 * sim.Hour)
				if err != nil {
					return t, fmt.Errorf("E13 %s rate %.2f run %d: %w", name, rate, run, err)
				}
				if len(res.Violations) > 0 {
					violated++
				}
				if goal := goals[name]; goal != nil {
					ok, err := workflow.EvalBool(goal, w.Env(res.Final))
					if err != nil {
						return t, err
					}
					if !ok {
						unsafeTerm++
					}
				}
			}
			n := float64(opt.RunsPerCell)
			t.AddRow(name, f("%.0f%%", rate*100),
				f("%.3f", float64(violated)/n),
				f("%.3f", float64(unsafeTerm)/n))
		}
	}
	t.AddNote("expected shape: hazard probability grows monotonically with the caregiver error rate, and " +
		"the ranking across workflows quantifies their structural robustness (sedation_titration's " +
		"guard structure absorbs every injected error; the handoff and transfusion protocols degrade " +
		"fastest) — the quantitative safety comparison challenge (j) asks for")
	return t, nil
}
