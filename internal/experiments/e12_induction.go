package experiments

import (
	"fmt"
	"sort"

	"repro/internal/verify"
	"repro/internal/workflow"
)

// E12TemporalInduction compares proof strategies on the clinical workflow
// corpus: exhaustive reachability versus temporal induction (Sheeran et
// al. [21], the technique the paper's compositionality challenge cites).
func E12TemporalInduction() (Table, error) {
	t := Table{
		ID:    "E12",
		Title: "Temporal induction vs exhaustive reachability on workflow invariants",
		Header: []string{"workflow", "reach states", "universe", "verdict",
			"induction k", "base states", "step paths"},
	}
	builtins := workflow.Builtins()
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		w := builtins[name]
		a := workflow.Analysis{W: w}
		reach, err := a.CheckSafety(nil, verify.Options{})
		if err != nil {
			return t, err
		}
		ind, err := a.ProveByInduction(8)
		verdict := "proved"
		kCell, baseCell, pathCell := "-", "-", "-"
		if err != nil {
			verdict = "inconclusive@8"
		} else {
			if ind.Refuted {
				verdict = "refuted"
			}
			kCell = d(ind.K)
			baseCell = d(ind.BaseStates)
			pathCell = d(ind.StepPaths)
		}
		if err == nil && ind.Proved != reach.Holds {
			return t, fmt.Errorf("E12 %s: induction and reachability disagree", name)
		}
		t.AddRow(name, d(reach.States), d(len(w.Universe())), verdict, kCell, baseCell, pathCell)
	}
	t.AddNote("expected shape: induction closes each proof at small k from shallow base cases, without " +
		"enumerating the reachable space — the scaling argument for applying it to composed device systems")
	return t, nil
}
