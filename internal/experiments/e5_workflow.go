package experiments

import (
	"sort"

	"repro/internal/verify"
	"repro/internal/workflow"
)

// E5WorkflowVerify model-checks the built-in clinical workflow corpus,
// nominally and under fault injection (challenge (e)).
func E5WorkflowVerify() (Table, error) {
	t := Table{
		ID:    "E5",
		Title: "Clinical workflow verification: reachable states and hazards found",
		Header: []string{"workflow", "faults", "states", "transitions",
			"invariants", "deadlock-free", "terminal goal"},
	}
	builtins := workflow.Builtins()
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)

	goals := map[string]workflow.Expr{
		"xray_vent":   workflow.VarExpr{Name: "ventilated"},
		"handoff":     workflow.VarExpr{Name: "briefed"},
		"pca_setup":   workflow.VarExpr{Name: "started"},
		"transfusion": workflow.VarExpr{Name: "completed"},
		"sedation_titration": workflow.BinExpr{
			Op: workflow.OpGe,
			L:  workflow.VarExpr{Name: "dose"},
			R:  workflow.LitExpr{V: workflow.IntVal(2)},
		},
	}
	faultSets := map[string][]workflow.Fault{
		"xray_vent": {
			{Kind: workflow.FaultOmit, Step: "resume_vent"},
			{Kind: workflow.FaultSkipGuard, Step: "image"},
		},
		"pca_setup": {
			{Kind: workflow.FaultSkipGuard, Step: "start_pump"},
		},
		"transfusion": {
			{Kind: workflow.FaultSkipGuard, Step: "start_transfusion"},
		},
		"handoff": {
			{Kind: workflow.FaultSkipGuard, Step: "accept"},
		},
		"sedation_titration": {
			{Kind: workflow.FaultSkipGuard, Step: "increase"},
		},
	}

	for _, name := range names {
		w := builtins[name]
		for _, withFaults := range []bool{false, true} {
			a := workflow.Analysis{W: w}
			label := "none"
			if withFaults {
				a.Faults = faultSets[name]
				label = "user-error"
			}
			rep, err := a.CheckSafety(goals[name], verify.Options{})
			if err != nil {
				return t, err
			}
			inv := "hold"
			if !rep.Holds {
				inv = "VIOLATED"
			}
			goal := "holds"
			if goals[name] == nil {
				goal = "-"
			} else if !rep.TerminalGoalHolds {
				goal = "VIOLATED"
			}
			// With a goal, terminal analysis subsumes deadlock detection.
			deadlock := boolCell(rep.DeadlockFree)
			if goals[name] != nil {
				deadlock = "-"
			}
			t.AddRow(name, label, d(rep.States), d(rep.Transitions), inv, deadlock, goal)
		}
	}
	t.AddNote("expected shape: every workflow is safe nominally; fault injection exposes the wrong-dose " +
		"start (pca_setup), the unverified transfusion, the premature image and the forgotten ventilator restart")
	return t, nil
}
