package experiments

import (
	"fmt"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// E11Options scale the mixed-criticality context study.
type E11Options struct {
	Seed     int64
	Duration sim.Time // 0 = 8 h
	BedMoves int      // 0 = 12
}

func e11Run(opt E11Options, withContext bool) (alarm.Metrics, error) {
	k := sim.NewKernel()
	rng := sim.NewRNG(opt.Seed)
	net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	patient := physio.DefaultPatient(rng.Fork("patient"))

	bed := device.MustNewBed(k, net, "bed1", core.ConnectConfig{})
	device.MustNewMonitor(k, net, "mon1", patient, bed, 2*time.Second, rng.Fork("mon"), core.ConnectConfig{})
	ward := device.NewWard(k, patient, sim.Second)
	tr := sim.NewTrace()
	ward.Trace = tr

	eng := alarm.NewEngine()
	eng.MustAddRule(alarm.ThresholdRule{
		Name: "map-low", Signal: "map", Low: 62, High: 115,
		Sustain: 20 * sim.Second, Priority: alarm.Warning, Refractory: 5 * sim.Minute,
	})
	if withContext {
		if err := eng.AddContextSuppression(alarm.ContextSuppression{
			Rule: "map-low", Event: "bed-moved", Window: 2 * sim.Minute,
		}); err != nil {
			return alarm.Metrics{}, err
		}
		mgr.Subscribe("bed1/height", func(string, core.Datum) {
			eng.ObserveContext(k.Now(), "bed-moved")
		})
	}
	mgr.Subscribe("mon1/map", func(_ string, dd core.Datum) {
		eng.Observe(k.Now(), "map", dd.Value, dd.Valid)
		tr.Record("obs/map", k.Now(), dd.Value)
	})

	// Bed care routine: raise for a while, then lower, BedMoves times.
	// A 0.6 m raise shifts the transducer reading ~45 mmHg down — well
	// below the alarm limit — although the patient is fine.
	spacing := opt.Duration / sim.Time(opt.BedMoves+1)
	for i := 0; i < opt.BedMoves; i++ {
		at := spacing * sim.Time(i+1)
		k.At(at, func() { _ = bed.SetHeight(0.6) })
		k.At(at+90*sim.Second, func() { _ = bed.SetHeight(0) })
	}
	// One genuine hypotension episode (hemorrhage) mid-run, scheduled
	// away from any bed move.
	trueStart := opt.Duration*2/3 + spacing/2
	k.At(trueStart, func() { patient.InduceHemodynamicShift(-45) })
	k.At(trueStart+10*sim.Minute, func() { patient.InduceHemodynamicShift(0) })

	if err := k.Run(opt.Duration); err != nil {
		return alarm.Metrics{}, err
	}
	truth := []alarm.Episode{{Start: trueStart, End: trueStart + 12*sim.Minute}}
	return alarm.Score(eng.Events(), truth, 3*sim.Minute, opt.Duration), nil
}

// E11MixedCriticality reproduces the paper's Class I bed vs Class III
// monitor interference scenario: bed raises corrupt the MAP reading; the
// context event channel lets the monitoring system suppress exactly those
// artifacts while still catching a genuine hemorrhage.
func E11MixedCriticality(opt E11Options) (Table, error) {
	if opt.Duration == 0 {
		opt.Duration = 8 * sim.Hour
	}
	if opt.BedMoves == 0 {
		opt.BedMoves = 12
	}
	t := Table{
		ID: "E11",
		Title: fmt.Sprintf("Mixed criticality: %d bed raises + 1 true hypotension over %v",
			opt.BedMoves, opt.Duration.Duration()),
		Header: []string{"monitoring system", "alarms", "true+", "false+", "missed"},
	}
	for _, withCtx := range []bool{false, true} {
		name := "MAP threshold only"
		if withCtx {
			name = "with bed context events"
		}
		m, err := e11Run(opt, withCtx)
		if err != nil {
			return t, fmt.Errorf("E11 ctx=%v: %w", withCtx, err)
		}
		t.AddRow(name, d(m.TotalAlarms), d(m.TruePositives), d(m.FalsePositives),
			fmt.Sprintf("%d/%d", m.MissedEpisodes, m.TotalEpisodes))
	}
	t.AddNote("expected shape: without context every bed raise pages the nurse; with the Class I bed's " +
		"height events on the bus, only the genuine hypotension alarms")
	return t, nil
}
