package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/icescope"
)

// Engine executes a range of a scenario's cells somewhere other than the
// calling goroutine's worker pool — the distribution seam of the fleet.
// An engine receives the scenario by registry name plus the Params it was
// built with (a spec's closures cannot travel), rebuilds the identical
// spec wherever the cells actually run, and delivers each finished cell
// back. internal/icemesh's coordinator is the production implementation;
// the local pool is the degenerate one.
//
// Contract: deliver may be called from any goroutine, once per executed
// cell, with Result.Cell.Index set to the cell's global ensemble index.
// Because cell results are pure functions of (scenario, params, index),
// a merge by index reproduces the local result slice byte for byte no
// matter which node ran which cell — the determinism contract extended
// across processes.
type Engine interface {
	RunRange(ctx context.Context, scenario string, p Params, start, end int, deliver func(Result)) error
}

// runEngineSpec ships one Build-provenanced spec to the runner's engine
// and merges delivered cells by global index. Duplicate deliveries (a
// shard re-assigned after a presumed-dead node completed it anyway) are
// dropped — first result wins, and both copies are byte-identical by the
// determinism contract. Cells the engine never delivered are filled with
// the engine's error so the result slice stays complete.
func (r Runner) runEngineSpec(ctx context.Context, s Spec, out []Result, deliver func(Result)) error {
	// Trace the remote range and propagate the span over the context —
	// the only channel that crosses the Engine interface — so a
	// distributed coordinator can hang its plan/shard spans on this tree.
	sp := icescope.Span{}
	if r.Span.Active() {
		sp = r.Span.Child("engine " + s.Name)
		ctx = icescope.ContextWithSpan(ctx, sp)
	}
	var mu sync.Mutex
	seen := make([]bool, s.Cells)
	err := r.Engine.RunRange(ctx, s.scenario, s.params, 0, s.Cells, func(res Result) {
		mu.Lock()
		if res.Cell.Index < 0 || res.Cell.Index >= s.Cells || seen[res.Cell.Index] {
			mu.Unlock()
			return
		}
		seen[res.Cell.Index] = true
		out[res.Cell.Index] = res
		mu.Unlock()
		deliver(res)
	})

	sp.End(icescope.IntAttr("cells", s.Cells))

	fillErr := err
	if fillErr == nil {
		fillErr = ctx.Err()
	}
	if fillErr == nil {
		fillErr = errors.New("fleet: engine did not deliver the cell")
	}
	var errs []error
	if err != nil {
		errs = append(errs, fmt.Errorf("%s: %w", s.Name, err))
	}
	missing := 0
	for i := range out {
		if !seen[i] {
			out[i] = Result{Cell: Cell{Index: i, Seed: s.seedFor(i)}, Err: fillErr}
			missing++
			continue
		}
		// Per-cell failures reported by remote nodes join the returned
		// error exactly as local cells' would.
		if out[i].Err != nil && !errors.Is(out[i].Err, ctx.Err()) {
			errs = append(errs, fmt.Errorf("%s cell %d: %w", s.Name, i, out[i].Err))
		}
	}
	if err == nil && missing > 0 && ctx.Err() == nil {
		errs = append(errs, fmt.Errorf("fleet: engine left %d of %d cells unexecuted", missing, s.Cells))
	}
	return errors.Join(errs...)
}
