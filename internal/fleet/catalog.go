package fleet

import (
	"time"

	"repro/internal/closedloop"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// The built-in catalog: patient-room scenarios assembled from the
// closedloop factories. Experiments and cmd/icerun build their fleets
// from these names instead of hand-rolling loops.
func init() {
	Register(ScenarioPCASupervised, pcaFactory(true))
	Register(ScenarioPCAUnsupervised, pcaFactory(false))
	Register(ScenarioPCACommFault, commFaultFactory)
}

// Built-in scenario names.
const (
	// ScenarioPCASupervised is the paper's Figure 1 adverse-event rig
	// (misprogrammed pump + PCA-by-proxy) with the ICE supervisor closing
	// the loop. One cell = one 2-hour patient session.
	ScenarioPCASupervised = "pca-supervised"
	// ScenarioPCAUnsupervised is the same rig with stand-alone devices.
	ScenarioPCAUnsupervised = "pca-unsupervised"
	// ScenarioPCACommFault is the supervised rig under packet loss
	// (knob "loss") plus a 35-minute oximeter partition, with knob
	// "failsafe" (default 1) selecting design D1 vs the fail-operational
	// ablation. Every cell pins the base seed, so the knobs are the only
	// thing that varies across a sweep.
	ScenarioPCACommFault = "pca-commfault"
)

func pcaConfig(seed int64, d sim.Time) closedloop.PCAScenarioConfig {
	cfg := closedloop.DefaultPCAScenario(seed)
	if d > 0 {
		cfg.Duration = d
	}
	return cfg
}

func pcaFactory(supervised bool) Factory {
	name := ScenarioPCAUnsupervised
	if supervised {
		name = ScenarioPCASupervised
	}
	return func(p Params) Spec {
		return Spec{
			Name:   name,
			Seed:   p.Seed,
			Cells:  p.Cells,
			SeedFn: EnsembleSeeds(p.Seed, name+"/trial"),
			Run: func(c Cell) (Metrics, error) {
				cfg := pcaConfig(c.Seed, p.Duration)
				cfg.SupervisorEnabled = supervised
				return closedloop.RunPCACell(cfg)
			},
		}
	}
}

func commFaultFactory(p Params) Spec {
	return Spec{
		Name:  ScenarioPCACommFault,
		Seed:  p.Seed,
		Cells: p.Cells,
		// A sweep point, not a trial ensemble: every cell replays the base
		// seed so sweeps stay paired across knob settings.
		SeedFn: func(int) int64 { return p.Seed },
		Run: func(c Cell) (Metrics, error) {
			cfg := pcaConfig(c.Seed, p.Duration)
			cfg.Link = mednet.LinkParams{
				Latency:  5 * time.Millisecond,
				Jitter:   2 * time.Millisecond,
				LossProb: p.Knob("loss", 0),
			}
			cfg.Supervisor.FailSafe = p.Knob("failsafe", 1) != 0
			cfg.OximeterOutageStart = cfg.Duration / 4
			cfg.OximeterOutageEnd = cfg.Duration/4 + 35*sim.Minute
			return closedloop.RunPCACell(cfg)
		},
	}
}
