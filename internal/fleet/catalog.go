package fleet

import (
	"math"
	"time"

	"repro/internal/closedloop"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// The built-in catalog: patient-room scenarios assembled from the
// closedloop factories. Experiments and cmd/icerun build their fleets
// from these names instead of hand-rolling loops.
func init() {
	Register(ScenarioPCASupervised, pcaFactory(true))
	Register(ScenarioPCAUnsupervised, pcaFactory(false))
	Register(ScenarioPCACommFault, commFaultFactory)
	Register(ScenarioXRayVentSync, xraySyncFactory)
	Register(ScenarioTeleICUProbe, teleProbeFactory)
}

// Built-in scenario names.
const (
	// ScenarioPCASupervised is the paper's Figure 1 adverse-event rig
	// (misprogrammed pump + PCA-by-proxy) with the ICE supervisor closing
	// the loop. One cell = one 2-hour patient session.
	ScenarioPCASupervised = "pca-supervised"
	// ScenarioPCAUnsupervised is the same rig with stand-alone devices.
	ScenarioPCAUnsupervised = "pca-unsupervised"
	// ScenarioPCACommFault is the supervised rig under packet loss
	// (knob "loss") plus a 35-minute oximeter partition, with knob
	// "failsafe" (default 1) selecting design D1 vs the fail-operational
	// ablation. Every cell pins the base seed, so the knobs are the only
	// thing that varies across a sweep.
	ScenarioPCACommFault = "pca-commfault"
	// ScenarioXRayVentSync is the Section II.b imaging rig: one ventilated
	// patient, an X-ray, and the synchronizer app. Knob "protocol" picks
	// the coordination design (0 manual, 1 pause-restart, 2 state-sync;
	// default 2), "delay_ms" (default 10) and "loss" (default 0.02) set the
	// network point, and "requests" (default 24) sizes the session (a
	// requested duration converts to one image request per 20 s). One
	// cell = one imaging session; trials beyond cell 0 draw substreams.
	ScenarioXRayVentSync = "xray-ventsync"
	// ScenarioTeleICUProbe models a tele-ICU check: a short supervised
	// PCA session (default 2 sim-minutes) whose wall time is dominated by
	// the round trips to the remote bedside — knob "rtt_ms" (default 0 =
	// no pacing) adds a deterministic per-cell wall-clock wait, spread by
	// knob "jitter" (fraction of rtt_ms, default 0.5, derived from the
	// cell seed so it is identical at any worker or node count). The wait
	// never touches metrics: tables are byte-identical with pacing on or
	// off. It exists for two real workload shapes: latency-bound fleets
	// (cells gated on external devices, not CPU), and mesh scaling
	// benchmarks on a single host, where in-process "nodes" share the
	// machine's cores and only a latency-bound cell can measure the
	// assignment pipeline rather than the core count.
	ScenarioTeleICUProbe = "tele-icu-probe"
)

// scenarioKnobs declares the knob names each built-in scenario consumes.
// The serving layer validates submissions against this, so a mistyped
// knob is a 400 instead of a silently-nominal simulation cached under
// the mistyped key.
var scenarioKnobs = map[string][]string{
	ScenarioPCASupervised:   {},
	ScenarioPCAUnsupervised: {},
	ScenarioPCACommFault:    {"loss", "failsafe"},
	ScenarioXRayVentSync:    {"protocol", "delay_ms", "loss", "requests"},
	ScenarioTeleICUProbe:    {"rtt_ms", "jitter"},
}

// KnownKnobs returns the knob names the named scenario consumes and
// whether the scenario declares them at all. Scenarios registered
// outside the built-in catalog make no declaration (ok = false); callers
// should skip validation for those.
func KnownKnobs(name string) (knobs []string, ok bool) {
	knobs, ok = scenarioKnobs[name]
	return knobs, ok
}

func pcaConfig(seed int64, d sim.Time) closedloop.PCAScenarioConfig {
	cfg := closedloop.DefaultPCAScenario(seed)
	if d > 0 {
		cfg.Duration = d
	}
	return cfg
}

// pcaProto and xrayProto adapt the closedloop cell rigs to the fleet
// Proto seam. Clone hands the rig the cell's seed and pooled trace; the
// rig's Reset-replay contract guarantees byte identity with the
// factory's from-scratch Run.
type pcaProto struct{ rig *closedloop.PCACellRig }

func (p pcaProto) Clone(c Cell) (Metrics, error) { return p.rig.RunCell(c.Seed, c.Trace()) }

type xrayProto struct{ rig *closedloop.XRaySyncCellRig }

func (p xrayProto) Clone(c Cell) (Metrics, error) { return p.rig.RunCell(c.Seed, c.Trace()) }

// pcaNewProto builds the prototype hook shared by the PCA factories:
// the rig is constructed from the spec's template config (the build
// seed is irrelevant — Clone reseeds every stream), declining to nil
// when the config cannot be cloned.
func pcaNewProto(cfgFor func(seed int64) closedloop.PCAScenarioConfig) func() Proto {
	return func() Proto {
		rig := closedloop.NewPCACellRig(cfgFor(0))
		if rig == nil {
			return nil
		}
		return pcaProto{rig}
	}
}

func pcaFactory(supervised bool) Factory {
	name := ScenarioPCAUnsupervised
	if supervised {
		name = ScenarioPCASupervised
	}
	return func(p Params) Spec {
		cfgFor := func(seed int64) closedloop.PCAScenarioConfig {
			cfg := pcaConfig(seed, p.Duration)
			cfg.SupervisorEnabled = supervised
			cfg.WireCodec = p.WireCodec
			return cfg
		}
		return Spec{
			Name:   name,
			Seed:   p.Seed,
			Cells:  p.Cells,
			SeedFn: EnsembleSeeds(p.Seed, name+"/trial"),
			Run: func(c Cell) (Metrics, error) {
				cfg := cfgFor(c.Seed)
				cfg.Trace = c.Trace()
				return closedloop.RunPCACell(cfg)
			},
			NewProto: pcaNewProto(cfgFor),
		}
	}
}

func xraySyncFactory(p Params) Spec {
	cfgFor := func(seed int64) closedloop.XRaySyncScenarioConfig {
		proto := closedloop.SyncProtocol(int(p.Knob("protocol", float64(closedloop.ProtocolStateSync))))
		cfg := closedloop.DefaultXRaySyncScenario(seed, proto)
		// The session's length is its request schedule: a requested
		// duration converts to one image request per spacing interval,
		// so Duration is honored rather than silently dropped.
		if p.Duration > 0 {
			if n := int(p.Duration / cfg.Spacing); n > 0 {
				cfg.Requests = n
			} else {
				cfg.Requests = 1
			}
		}
		if n := int(p.Knob("requests", 0)); n > 0 {
			cfg.Requests = n
		}
		delay := time.Duration(p.Knob("delay_ms", 10) * float64(time.Millisecond))
		cfg.Link = mednet.LinkParams{
			Latency:  delay,
			Jitter:   delay / 4,
			LossProb: p.Knob("loss", 0.02),
		}
		cfg.WireCodec = p.WireCodec
		return cfg
	}
	return Spec{
		Name:   ScenarioXRayVentSync,
		Seed:   p.Seed,
		Cells:  p.Cells,
		SeedFn: EnsembleSeeds(p.Seed, ScenarioXRayVentSync+"/trial"),
		Run: func(c Cell) (Metrics, error) {
			cfg := cfgFor(c.Seed)
			cfg.Trace = c.Trace()
			return closedloop.RunXRaySyncCell(cfg)
		},
		NewProto: func() Proto {
			rig := closedloop.NewXRaySyncCellRig(cfgFor(0))
			if rig == nil {
				return nil
			}
			return xrayProto{rig}
		},
	}
}

// probeWait derives one cell's remote round-trip wall wait: rtt_ms
// scaled by a seed-derived factor in [1-jitter, 1+jitter]. Pure function
// of (seed, knobs), so pacing is identical wherever the cell runs.
func probeWait(seed int64, p Params) time.Duration {
	rtt := p.Knob("rtt_ms", 0)
	if rtt <= 0 {
		return 0
	}
	jit := p.Knob("jitter", 0.5)
	jit = math.Min(math.Max(jit, 0), 1)
	u := float64(uint64(sim.SubSeed(seed, "tele-icu-probe/rtt", 0))>>11) / float64(1<<53)
	return time.Duration(rtt * (1 + jit*(2*u-1)) * float64(time.Millisecond))
}

// probeProto paces the cloned cell exactly as the from-scratch Run
// does; the wait happens after the metrics are computed, so the clone
// contract (byte identity with Run) is untouched.
type probeProto struct {
	rig  *closedloop.PCACellRig
	pace func(seed int64)
}

func (p probeProto) Clone(c Cell) (Metrics, error) {
	m, err := p.rig.RunCell(c.Seed, c.Trace())
	p.pace(c.Seed)
	return m, err
}

func teleProbeFactory(p Params) Spec {
	if p.Duration <= 0 {
		p.Duration = 2 * sim.Minute // short session: the RTT dominates, by design
	}
	cfgFor := func(seed int64) closedloop.PCAScenarioConfig {
		cfg := pcaConfig(seed, p.Duration)
		cfg.SupervisorEnabled = true
		cfg.WireCodec = p.WireCodec
		return cfg
	}
	pace := func(seed int64) {
		if d := probeWait(seed, p); d > 0 {
			time.Sleep(d)
		}
	}
	return Spec{
		Name:   ScenarioTeleICUProbe,
		Seed:   p.Seed,
		Cells:  p.Cells,
		SeedFn: EnsembleSeeds(p.Seed, ScenarioTeleICUProbe+"/trial"),
		Run: func(c Cell) (Metrics, error) {
			cfg := cfgFor(c.Seed)
			cfg.Trace = c.Trace()
			m, err := closedloop.RunPCACell(cfg)
			pace(c.Seed)
			return m, err
		},
		NewProto: func() Proto {
			rig := closedloop.NewPCACellRig(cfgFor(0))
			if rig == nil {
				return nil
			}
			return probeProto{rig, pace}
		},
	}
}

func commFaultFactory(p Params) Spec {
	cfgFor := func(seed int64) closedloop.PCAScenarioConfig {
		cfg := pcaConfig(seed, p.Duration)
		cfg.WireCodec = p.WireCodec
		cfg.Link = mednet.LinkParams{
			Latency:  5 * time.Millisecond,
			Jitter:   2 * time.Millisecond,
			LossProb: p.Knob("loss", 0),
		}
		cfg.Supervisor.FailSafe = p.Knob("failsafe", 1) != 0
		cfg.OximeterOutageStart = cfg.Duration / 4
		cfg.OximeterOutageEnd = cfg.Duration/4 + 35*sim.Minute
		return cfg
	}
	return Spec{
		Name:  ScenarioPCACommFault,
		Seed:  p.Seed,
		Cells: p.Cells,
		// A sweep point, not a trial ensemble: every cell replays the base
		// seed so sweeps stay paired across knob settings.
		SeedFn: func(int) int64 { return p.Seed },
		Run: func(c Cell) (Metrics, error) {
			cfg := cfgFor(c.Seed)
			cfg.Trace = c.Trace()
			return closedloop.RunPCACell(cfg)
		},
		NewProto: pcaNewProto(cfgFor),
	}
}
