package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Params parameterize a registered scenario factory.
type Params struct {
	Seed     int64
	Cells    int
	Duration sim.Time // 0 = scenario default

	// WireCodec selects the ICE wire encoding inside each cell: "" or
	// "binary" (default), "json" (debug/compat). Simulation outcomes are
	// codec-independent; the differential suite replays scenarios under
	// both and asserts byte-identical reductions.
	WireCodec string

	// Knobs carries scenario-specific numeric parameters ("loss",
	// "failsafe", ...). Factories read them with Knob.
	Knobs map[string]float64
}

// Knob returns the named knob or def when unset.
func (p Params) Knob(name string, def float64) float64 {
	if v, ok := p.Knobs[name]; ok {
		return v
	}
	return def
}

// Factory builds an ensemble spec for a named scenario.
type Factory func(p Params) Spec

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register installs a named scenario factory. Duplicate names panic:
// registration happens at init time and a collision is a programming bug.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("fleet: duplicate scenario %q", name))
	}
	if f == nil {
		panic(fmt.Sprintf("fleet: nil factory for %q", name))
	}
	registry[name] = f
}

// Names lists registered scenarios, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build resolves a scenario by name and instantiates its spec. Built
// specs carry provenance — the (name, params) pair they came from — so a
// distributed engine can rebuild the identical spec on a remote node
// (see Spec.Provenance and Runner.Engine).
func Build(name string, p Params) (Spec, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("fleet: unknown scenario %q (have %v)", name, Names())
	}
	if p.Cells <= 0 {
		p.Cells = 1
	}
	spec := f(p)
	spec.scenario = name
	p.Cells = spec.Cells // factories may resize; provenance must rebuild identically
	spec.params = p
	return spec, nil
}

// EnsembleSeeds is the seed rule for trial ensembles: cell 0 replays the
// base seed exactly (so a 1-cell fleet reproduces the legacy serial run
// bit-for-bit), and later cells draw named substreams.
func EnsembleSeeds(seed int64, label string) func(index int) int64 {
	return func(index int) int64 {
		if index == 0 {
			return seed
		}
		return sim.SubSeed(seed, label, index)
	}
}
