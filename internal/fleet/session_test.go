package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// A session executing an ensemble one fine range at a time must merge to
// exactly what one local Run produces — the node-side contract that lets
// shard size drop to 1 without touching result bytes.
func TestSessionFineRangesMatchRun(t *testing.T) {
	spec, err := Build(ScenarioPCASupervised, Params{Seed: 42, Cells: 6, Duration: 10 * sim.Minute})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Runner{Workers: 3}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := Runner{Workers: 3}.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got := make([]Result, spec.Cells)
	for start := 0; start < spec.Cells; start++ {
		rs, err := sess.RunRange(context.Background(), start, start+1, nil)
		if err != nil {
			t.Fatalf("range [%d,%d): %v", start, start+1, err)
		}
		got[start] = rs[0]
	}
	if stable(got) != stable(want) {
		t.Fatalf("session fine ranges diverged from local run:\n%+v\nvs\n%+v", got, want)
	}
}

// Concurrent RunRange calls share the session pool safely and still
// merge byte-identically — the shape a node executes when its credit
// window holds several shards at once.
func TestSessionConcurrentRangesMatchRun(t *testing.T) {
	spec, err := Build(ScenarioPCASupervised, Params{Seed: 7, Cells: 8, Duration: 10 * sim.Minute})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Runner{Workers: 2}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Runner{Workers: 2}.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	got := make([]Result, spec.Cells)
	var wg sync.WaitGroup
	for start := 0; start < spec.Cells; start += 2 {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			rs, err := sess.RunRange(context.Background(), lo, lo+2, nil)
			if err != nil {
				t.Errorf("range [%d,%d): %v", lo, lo+2, err)
				return
			}
			copy(got[lo:], rs)
		}(start)
	}
	wg.Wait()
	if stable(got) != stable(want) {
		t.Fatalf("concurrent session ranges diverged from local run:\n%+v\nvs\n%+v", got, want)
	}
}

// The whole point of the session seam: prototypes are built at most once
// per worker for the session's lifetime, not once per range.
func TestSessionReusesPrototypeAcrossRanges(t *testing.T) {
	var builds atomic.Int64
	spec := Spec{
		Name: "count-builds", Seed: 1, Cells: 12,
		Run: func(c Cell) (Metrics, error) { return Metrics{"v": float64(c.Index)}, nil },
		NewProto: func() Proto {
			builds.Add(1)
			return protoFunc(func(c Cell) (Metrics, error) { return Metrics{"v": float64(c.Index)}, nil })
		},
	}
	sess, err := Runner{Workers: 2}.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for start := 0; start < spec.Cells; start++ {
		if _, err := sess.RunRange(context.Background(), start, start+1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := builds.Load(); n > 2 {
		t.Fatalf("prototype built %d times across 12 ranges on 2 workers, want <= 2", n)
	}
}

type protoFunc func(c Cell) (Metrics, error)

func (f protoFunc) Clone(c Cell) (Metrics, error) { return f(c) }

// stable renders results for comparison with the sampled wall-clock
// encode-time counter zeroed — it is timing, not table content (reduced
// tables never include it).
func stable(rs []Result) string {
	cp := append([]Result(nil), rs...)
	for i := range cp {
		cp[i].WireEncodeNS = 0
	}
	return fmt.Sprintf("%+v", cp)
}

// Range validation and post-Close behavior fail loudly instead of
// wedging the pool.
func TestSessionRejectsBadRangeAndClosed(t *testing.T) {
	spec, err := Build(ScenarioPCASupervised, Params{Seed: 1, Cells: 2, Duration: 5 * sim.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Runner{}.NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunRange(context.Background(), 0, 3, nil); err == nil {
		t.Error("out-of-range RunRange succeeded")
	}
	if !sess.Idle() {
		t.Error("fresh session not idle")
	}
	sess.Close()
	sess.Close() // double Close is safe
	if _, err := sess.RunRange(context.Background(), 0, 1, nil); err == nil {
		t.Error("RunRange on closed session succeeded")
	}
}

// The probe scenario's pacing is observability-grade only: rtt knobs
// change wall time, never table bytes.
func TestTeleICUProbePacingIsByteInvisible(t *testing.T) {
	base := Params{Seed: 11, Cells: 3}
	paced := Params{Seed: 11, Cells: 3, Knobs: map[string]float64{"rtt_ms": 2, "jitter": 0.5}}
	specA, err := Build(ScenarioTeleICUProbe, base)
	if err != nil {
		t.Fatal(err)
	}
	specB, err := Build(ScenarioTeleICUProbe, paced)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Runner{Workers: 2}.Run(specA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Runner{Workers: 2}.Run(specB)
	if err != nil {
		t.Fatal(err)
	}
	if stable(ra) != stable(rb) {
		t.Fatalf("rtt pacing changed table bytes:\n%+v\nvs\n%+v", ra, rb)
	}
}
