// Package fleet runs ensembles of isolated patient-room simulations in
// parallel. The simulation kernel, network, and device models are all
// single-threaded by construction (see sim.Kernel, mednet.Network), so
// scale comes from running many *independent* rooms concurrently rather
// than from threading one room: a Cell bundles one room's entire world —
// its own kernel, network, ICE manager, devices, and patient — behind a
// CellFunc, a Runner executes N cells across a bounded worker pool, and a
// Summary reduces the per-cell metrics.
//
// Determinism under parallelism is the load-bearing guarantee: each cell's
// seed is a pure function of its index — by default
// sim.SubSeed(spec seed, spec name, index), though specs may install their
// own pure SeedFn (the catalog's trial ensembles replay the base seed at
// cell 0 via EnsembleSeeds, and sweep points pin every cell to it) — cells
// share no mutable state, and results are collected by cell index, so a
// fixed seed produces byte-identical reduced output whether the fleet runs
// on 1 worker or 64.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/closedloop"
	"repro/internal/icescope"
	"repro/internal/sim"
)

// prototypesDisabled globally gates prototype cloning (in addition to
// the per-Runner NoPrototype switch). The differential suite flips it
// to render whole experiment catalogs — whose runners the caller cannot
// reach — with and without cloning and hold the outputs byte-identical.
var prototypesDisabled atomic.Bool

// SetPrototypesForTest globally enables or disables prototype cloning.
// Tests only; not safe to flip while a fleet is running.
func SetPrototypesForTest(enabled bool) { prototypesDisabled.Store(!enabled) }

// Metrics is the named numeric outcome of one cell. Cell bodies outside
// this package return plain map[string]float64 (assignable to Metrics) so
// scenario packages need not import fleet.
type Metrics map[string]float64

// MetricSimEvents is the reserved metric key under which cell bodies
// report their kernel's executed-event total. The runner lifts it out of
// the metrics map into Result.Events before results are reduced or
// streamed, so the engine counter never pollutes clinical tables. The
// constant is defined in closedloop (scenario packages return plain maps
// and stay free of fleet imports); fleet aliases it so the two layers
// cannot drift.
const MetricSimEvents = closedloop.MetricSimEvents

// MetricWireBytes and MetricWireEncodeNS are the reserved wire-codec
// counters, lifted into Result.WireBytes / Result.WireEncodeNS the same
// way (see closedloop for the definitions).
const (
	MetricWireBytes    = closedloop.MetricWireBytes
	MetricWireEncodeNS = closedloop.MetricWireEncodeNS
)

// Cell identifies one room of the fleet to its builder.
type Cell struct {
	Index int   // position in the ensemble, 0-based
	Seed  int64 // per-cell seed, derived deterministically by the runner

	// scratch is the worker's reusable per-cell state; nil outside a
	// runner (Cell.Trace then allocates fresh).
	scratch *Scratch
}

// RNG returns the cell's root generator. Models inside the cell should
// Fork it exactly as a standalone scenario would.
func (c Cell) RNG() *sim.RNG { return sim.NewRNG(c.Seed) }

// Trace returns an empty trace for the cell's scenario to record into.
// Inside a runner it is the worker's pooled trace — Reset between cells,
// so ensemble runs reuse sample buffers instead of reallocating them —
// and the recorded contents remain a pure function of the cell either
// way. The trace is only valid until the cell function returns; results
// must not retain it.
func (c Cell) Trace() *sim.Trace {
	if c.scratch != nil {
		return c.scratch.trace()
	}
	return sim.NewTrace()
}

// Scratch is one worker's reusable per-cell state. Each runner goroutine
// owns exactly one, so pooling introduces no sharing between concurrent
// cells and cannot perturb determinism.
type Scratch struct {
	tr *sim.Trace

	// protos caches one constructed prototype rig per spec (keyed by the
	// spec's position in the worker's job set). A rig is built on the
	// worker's first cell of a spec and stamps every later cell by
	// Clone — construction cost is paid once per worker, not per cell.
	protos map[int]Proto
}

func (s *Scratch) trace() *sim.Trace {
	if s.tr == nil {
		s.tr = sim.NewTrace()
	}
	return s.tr
}

// reset prepares the scratch for the next cell.
func (s *Scratch) reset() {
	if s.tr != nil {
		s.tr.Reset()
	}
}

// CellFunc builds and runs one isolated room and returns its metrics.
// The runner calls it from worker goroutines, one cell per call; it must
// not share mutable state with other cells.
type CellFunc func(c Cell) (Metrics, error)

// Proto is a reusable cell prototype: one fully constructed scenario rig
// that stamps out cells by resetting its kernel and reseeding its RNG
// substreams instead of rebuilding patient, devices, network, and
// manager from scratch. A Proto belongs to one worker goroutine (it
// lives in that worker's Scratch), so it needs no locking.
//
// The contract is byte identity: Clone(c) must return exactly the
// metrics Spec.Run(c) would, for any cell, in any order — the
// differential suite holds every opted-in scenario to it. Factories
// meet the bar by replaying their construction-time scheduling calls in
// the original order after sim.Kernel.Reset, which reproduces the
// original event sequence numbers and therefore the original execution
// order (see DESIGN.md "Prototype cloning").
type Proto interface {
	Clone(c Cell) (Metrics, error)
}

// Spec describes one ensemble: how many cells, how they are seeded, and
// how each is built and run.
type Spec struct {
	Name  string // registry/reporting name; also the seed-derivation label
	Seed  int64  // base seed for the ensemble
	Cells int

	// SeedFn overrides per-cell seed derivation. Nil means
	// sim.SubSeed(Seed, Name, index). Sweep-shaped specs that replay one
	// scenario under different parameters typically pin every cell to the
	// base seed instead, so the sweep axis is the only thing that varies.
	SeedFn func(index int) int64

	Run CellFunc

	// NewProto, when non-nil, builds a reusable prototype rig for this
	// spec. The runner calls it at most once per worker and routes every
	// cell through Proto.Clone; a nil NewProto (or Runner.NoPrototype)
	// falls back to from-scratch construction via Run, so the registry
	// contract is unchanged for factories that have not opted in.
	NewProto func() Proto

	// scenario/params, when set, record how Build produced this spec —
	// the provenance a distributed engine needs to rebuild the identical
	// spec in another process (a spec's closures cannot travel). Hand-
	// built specs carry none and always execute on the local pool.
	scenario string
	params   Params
}

// Provenance reports the registry name and Params this spec was built
// from; ok is false for hand-built specs, which no engine can ship.
func (s Spec) Provenance() (scenario string, p Params, ok bool) {
	return s.scenario, s.params, s.scenario != ""
}

func (s Spec) seedFor(i int) int64 {
	if s.SeedFn != nil {
		return s.SeedFn(i)
	}
	return sim.SubSeed(s.Seed, s.Name, i)
}

// Result is one cell's outcome.
type Result struct {
	Cell    Cell
	Metrics Metrics
	// Events is the cell kernel's executed-event total, lifted from the
	// reserved MetricSimEvents key (0 when the cell body does not report
	// it). The serving layer sums it into true events/s gauges.
	Events uint64
	// WireBytes and WireEncodeNS are the cell codec's encoded envelope
	// bytes and sampled encode time, lifted from the reserved wire
	// metric keys the same way.
	WireBytes    uint64
	WireEncodeNS uint64
	Err          error
}

// Obs receives the fleet's timing metrics when a caller wires a runner
// into an icescope registry. All fields are optional; a nil Obs (the
// default) skips every clock read, so un-observed runs pay nothing.
type Obs struct {
	// CellSeconds observes each cell's execution latency (build + run).
	CellSeconds *icescope.Histogram
	// QueueWaitSeconds observes how long each cell sat between dispatch
	// and a worker picking it up — the pool-saturation signal.
	QueueWaitSeconds *icescope.Histogram
}

// Runner executes specs across a bounded worker pool. The zero value runs
// serially (one worker).
type Runner struct {
	Workers int // goroutines executing cells; <=0 means 1

	// Engine, when non-nil, executes Build-provenanced specs remotely
	// instead of on the local pool (see Engine). Hand-built specs — those
	// without Provenance — still run locally, so mixed workloads degrade
	// to exactly the local behavior rather than failing.
	Engine Engine

	// NoPrototype disables prototype cloning: every cell is built from
	// scratch via Spec.Run even when the spec offers NewProto. The
	// differential suite uses it to prove cloned and from-scratch cells
	// byte-identical; it is also the honest baseline for benchmarks.
	NoPrototype bool

	// Span, when active, parents the run's trace: each worker records
	// per-cell spans into its own lock-free buffer, prototype builds get
	// their own spans, and engine-shipped specs propagate the span over
	// the context so a distributed coordinator can attach its shard
	// spans to the same tree. The zero Span disables tracing entirely —
	// observability never touches cell seeds, scheduling, or results.
	Span icescope.Span

	// Obs, when non-nil, feeds the fleet's latency histograms.
	Obs *Obs

	// ProfileRegions opts this run's cell hot loop into runtime/trace
	// regions (visible in `go tool trace`). Off by default so kernel
	// loops stay untraced; even on, it is a no-op unless the Go
	// execution tracer is actually collecting.
	ProfileRegions bool
}

// stamp reads the clock only when queue-wait observation is on.
func (r Runner) stamp() time.Time {
	if r.Obs != nil && r.Obs.QueueWaitSeconds != nil {
		return time.Now()
	}
	return time.Time{}
}

// observeWait records dispatch-to-pickup latency for one cell.
func (r Runner) observeWait(enq time.Time) {
	if !enq.IsZero() {
		r.Obs.QueueWaitSeconds.Observe(time.Since(enq).Seconds())
	}
}

// Run executes every cell of one spec and returns results in cell order.
// The returned error joins all per-cell errors; the slice is complete
// either way, so callers can report partial fleets.
func (r Runner) Run(spec Spec) ([]Result, error) {
	return r.RunContext(context.Background(), spec, nil)
}

// RunContext is Run with cancellation and incremental delivery: cells not
// yet dispatched when ctx is cancelled are skipped (their Result carries
// ctx.Err()), and onCell, when non-nil, is invoked once per executed cell
// as it completes. See RunAllContext for the exact semantics.
func (r Runner) RunContext(ctx context.Context, spec Spec, onCell func(Result)) ([]Result, error) {
	all, err := r.RunAllContext(ctx, []Spec{spec}, onCell)
	if len(all) == 0 {
		return nil, err // spec failed validation
	}
	return all[0], err
}

// RunAll schedules the cells of several specs over one shared pool and
// returns results grouped by spec, each group in cell order. Scheduling
// order never affects results: cells are independent and slot into their
// own result index.
func (r Runner) RunAll(specs []Spec) ([][]Result, error) {
	return r.RunAllContext(context.Background(), specs, nil)
}

// RunAllContext is RunAll plus two serving-layer affordances:
//
// Cancellation: when ctx is cancelled, no further cells are dispatched.
// Cells already executing run to completion (a simulation cell is not
// interruptible mid-kernel), skipped cells get a Result whose Err is
// ctx.Err(), and the joined error reports the cancellation once. An
// uncancelled run returns exactly what RunAll would.
//
// Incremental delivery: onCell, when non-nil, is called once per executed
// cell as soon as it finishes, from the runner's goroutines but never
// concurrently with itself, so callers can stream results without their
// own locking. Completion order is scheduling-dependent; the returned
// slices remain in deterministic cell order.
func (r Runner) RunAllContext(ctx context.Context, specs []Spec, onCell func(Result)) ([][]Result, error) {
	for _, s := range specs {
		if s.Run == nil {
			return nil, fmt.Errorf("fleet: spec %q has no Run", s.Name)
		}
		if s.Cells < 0 {
			return nil, fmt.Errorf("fleet: spec %q has %d cells", s.Name, s.Cells)
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	out := make([][]Result, len(specs))
	// Partition: specs the engine can ship (provenance from Build) run
	// remotely, one ensemble at a time — each fans its cells out across
	// the cluster, so the parallelism lives inside RunRange. Everything
	// else shares the local pool below.
	remote := make([]bool, len(specs))
	total := 0
	for i, s := range specs {
		out[i] = make([]Result, s.Cells)
		if r.Engine != nil && s.scenario != "" {
			remote[i] = true
		} else {
			total += s.Cells
		}
	}
	if workers > total {
		workers = total
	}

	var deliverMu sync.Mutex
	var errs []error
	for si, s := range specs {
		if !remote[si] {
			continue
		}
		err := r.runEngineSpec(ctx, s, out[si], func(res Result) {
			if onCell != nil {
				deliverMu.Lock()
				onCell(res)
				deliverMu.Unlock()
			}
		})
		if err != nil {
			errs = append(errs, err)
		}
	}

	type job struct {
		si, ci int
		enq    time.Time // dispatch stamp; zero unless queue wait is observed
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &Scratch{} // one per worker: cells on this goroutine share buffers serially
			buf := r.Span.Trace().Buffer()
			for j := range jobs {
				r.observeWait(j.enq)
				res := r.runCell(specs[j.si], j.si, j.ci, scratch, buf)
				out[j.si][j.ci] = res
				if onCell != nil {
					deliverMu.Lock()
					onCell(res)
					deliverMu.Unlock()
				}
			}
		}()
	}
	cancelled := 0
dispatch:
	for si, s := range specs {
		if remote[si] {
			continue
		}
		for ci := 0; ci < s.Cells; ci++ {
			select {
			case jobs <- job{si, ci, r.stamp()}:
			case <-ctx.Done():
				// Mark this and every remaining local cell as skipped. Seeds
				// are still derived so partial result sets stay identifiable.
				for sj := si; sj < len(specs); sj++ {
					if remote[sj] {
						continue
					}
					start := 0
					if sj == si {
						start = ci
					}
					for cj := start; cj < specs[sj].Cells; cj++ {
						out[sj][cj] = Result{
							Cell: Cell{Index: cj, Seed: specs[sj].seedFor(cj)},
							Err:  ctx.Err(),
						}
						cancelled++
					}
				}
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()

	for si, group := range out {
		if remote[si] {
			continue // engine failures were recorded once, not per cell
		}
		for _, res := range group {
			if res.Err != nil && !errors.Is(res.Err, ctx.Err()) {
				errs = append(errs, fmt.Errorf("%s cell %d: %w", specs[si].Name, res.Cell.Index, res.Err))
			}
		}
	}
	if cancelled > 0 {
		errs = append(errs, fmt.Errorf("fleet: %d cells skipped: %w", cancelled, ctx.Err()))
	}
	return out, errors.Join(errs...)
}

// RunRangeContext executes the contiguous cell range [start, end) of one
// spec on the local pool — the node-side primitive distributed engines
// are built from. Results carry their global ensemble index and seed,
// exactly as the same cells would in a full local run, so merging range
// results by index reproduces the local result slice byte for byte.
// onCell, when non-nil, is invoked serially as cells complete; results
// are returned in range order (position i holds cell start+i).
func (r Runner) RunRangeContext(ctx context.Context, spec Spec, start, end int, onCell func(Result)) ([]Result, error) {
	sess, err := r.NewSession(spec)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return sess.RunRange(ctx, start, end, onCell)
}

// runCell executes one cell, converting a panic in the model (the sim
// kernel panics on causality violations) into a per-cell error so one bad
// room cannot take down the fleet. The scratch pointer is stripped from
// the stored Result so pooled buffers never escape the worker. si keys
// the worker's prototype cache: cells of the same spec on the same
// worker share one rig. A panic also evicts the spec's prototype — a
// rig that blew up mid-run holds undefined state and must not stamp the
// next cell.
func (r Runner) runCell(s Spec, si, i int, scratch *Scratch, buf *icescope.Buffer) (res Result) {
	seed := s.seedFor(i)
	res.Cell = Cell{Index: i, Seed: seed}
	defer icescope.Region(r.ProfileRegions, "fleet.cell")()
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("cell panicked: %v", p)
			if scratch != nil {
				delete(scratch.protos, si)
			}
		}
	}()
	if scratch != nil {
		scratch.reset()
	}
	var t0 time.Time
	if r.Obs != nil && r.Obs.CellSeconds != nil {
		t0 = time.Now()
	}
	cell := Cell{Index: i, Seed: seed, scratch: scratch}
	var m Metrics
	var err error
	// Resolve the prototype before opening the cell span: "proto build"
	// and "cell run" are sibling leaves, so trace coverage attributes
	// construction and execution separately.
	proto := r.protoFor(s, si, scratch, buf, r.Span)
	mode := "scratch"
	sp := buf.Start(r.Span, "cell run")
	if proto != nil {
		mode = "proto"
		m, err = proto.Clone(cell)
	} else {
		m, err = s.Run(cell)
	}
	sp.End(icescope.IntAttr("cell", i), icescope.StrAttr("mode", mode))
	if !t0.IsZero() {
		r.Obs.CellSeconds.Observe(time.Since(t0).Seconds())
	}
	if ev, ok := m[MetricSimEvents]; ok {
		res.Events = uint64(ev)
		delete(m, MetricSimEvents)
	}
	if wb, ok := m[MetricWireBytes]; ok {
		res.WireBytes = uint64(wb)
		delete(m, MetricWireBytes)
	}
	if wn, ok := m[MetricWireEncodeNS]; ok {
		res.WireEncodeNS = uint64(wn)
		delete(m, MetricWireEncodeNS)
	}
	res.Metrics, res.Err = m, err
	return res
}

// protoFor resolves the worker's cached prototype for spec si, building
// it on first use. Returns nil — meaning "construct from scratch" —
// when the spec offers no prototype, the runner disables cloning, or
// the factory declined at build time (a nil Proto is cached so the
// factory is not re-asked per cell).
func (r Runner) protoFor(s Spec, si int, scratch *Scratch, buf *icescope.Buffer, parent icescope.Span) Proto {
	if r.NoPrototype || s.NewProto == nil || scratch == nil || prototypesDisabled.Load() {
		return nil
	}
	p, ok := scratch.protos[si]
	if !ok {
		bsp := buf.Start(parent, "proto build")
		p = s.NewProto()
		bsp.End(icescope.StrAttr("spec", s.Name))
		if scratch.protos == nil {
			scratch.protos = make(map[int]Proto)
		}
		scratch.protos[si] = p
	}
	return p
}
