package fleet

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// The reserved engine counter must be lifted out of the metrics map into
// Result.Events, so reduced tables never see it.
func TestRunnerLiftsSimEventsMetric(t *testing.T) {
	spec := Spec{
		Name: "lift", Seed: 1, Cells: 3,
		Run: func(c Cell) (Metrics, error) {
			return Metrics{"x": float64(c.Index), MetricSimEvents: float64(100 + c.Index)}, nil
		},
	}
	res, err := Runner{Workers: 2}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if _, ok := r.Metrics[MetricSimEvents]; ok {
			t.Fatalf("cell %d: %q leaked into metrics", r.Cell.Index, MetricSimEvents)
		}
		if want := uint64(100 + r.Cell.Index); r.Events != want {
			t.Fatalf("cell %d: Events = %d, want %d", r.Cell.Index, r.Events, want)
		}
	}
	sum := Reduce(res)
	if sum.Events != 303 {
		t.Fatalf("Summary.Events = %d, want 303", sum.Events)
	}
	if strings.Contains(sum.String(), MetricSimEvents) {
		t.Fatalf("reduced table mentions %q:\n%s", MetricSimEvents, sum)
	}
}

// Real scenario cells must actually report their kernel totals.
func TestCatalogCellsReportEvents(t *testing.T) {
	for _, name := range []string{ScenarioPCASupervised, ScenarioXRayVentSync} {
		spec, err := Build(name, Params{Seed: 42, Cells: 1, Duration: 5 * sim.Minute})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Runner{}.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Events == 0 {
			t.Fatalf("%s cell reported zero kernel events", name)
		}
	}
}

// Pooled per-worker scratch must not perturb results: the same ensemble
// reduced twice on the same Runner (buffers warm on the second pass) and
// at different worker counts stays byte-identical, and a second ensemble
// on a reused Summary matches a fresh reduction.
func TestScratchPoolingPreservesDeterminism(t *testing.T) {
	build := func() Spec {
		spec, err := Build(ScenarioPCASupervised, Params{Seed: 7, Cells: 4, Duration: 10 * sim.Minute})
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	var renders []string
	sum := NewSummary()
	for pass := 0; pass < 2; pass++ {
		for _, workers := range []int{1, 3} {
			res, err := Runner{Workers: workers}.Run(build())
			if err != nil {
				t.Fatal(err)
			}
			sum.Reset()
			sum.Add(res)
			renders = append(renders, sum.String())
		}
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("render %d diverged:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
	}
	if fresh := Reduce(mustRun(t, build())); fresh.String() != renders[0] {
		t.Fatalf("pooled summary diverged from fresh Reduce:\n%s\nvs\n%s", renders[0], fresh)
	}
}

func mustRun(t *testing.T, spec Spec) []Result {
	t.Helper()
	res, err := Runner{Workers: 2}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Cell.Trace outside a runner hands out fresh traces (no pooling, no
// sharing) so scenario code works unchanged in standalone use.
func TestCellTraceStandalone(t *testing.T) {
	c := Cell{Index: 0, Seed: 1}
	a, b := c.Trace(), c.Trace()
	if a == nil || b == nil || a == b {
		t.Fatal("standalone Cell.Trace must allocate distinct traces")
	}
}

// A Summary being reused across ensembles with different metric sets must
// not leak metrics from the previous ensemble.
func TestSummaryResetDropsStaleMetrics(t *testing.T) {
	sum := NewSummary()
	sum.Add([]Result{{Metrics: Metrics{"old": 1}}})
	sum.Reset()
	sum.Add([]Result{{Metrics: Metrics{"new": 2}}})
	names := sum.Names()
	if len(names) != 1 || names[0] != "new" {
		t.Fatalf("Names after Reset = %v, want [new]", names)
	}
	if sum.Count("old") != 0 {
		t.Fatal("stale metric retained samples")
	}
	if sum.Values("old") != nil {
		t.Fatal("Values for a stale metric must be nil (absent)")
	}
}
