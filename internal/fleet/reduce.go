package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is the reduce stage: per-metric aggregates over a fleet's cells.
// All accessors are deterministic functions of the result set, independent
// of worker count or scheduling order. A Summary is reusable: Reset keeps
// its per-metric buffers so a serving loop can reduce ensemble after
// ensemble without reallocating accumulators.
type Summary struct {
	Cells  int    // cells that produced metrics
	Failed int    // cells that errored (excluded from aggregates)
	Events uint64 // total kernel events executed across cells

	names  []string             // sorted names of metrics with samples; nil = stale
	values map[string][]float64 // per metric, in cell order
}

// NewSummary returns an empty, reusable summary.
func NewSummary() *Summary {
	return &Summary{values: make(map[string][]float64)}
}

// Reset empties the summary while keeping accumulator capacity, so pooled
// summaries reduce repeated ensembles allocation-free at steady state.
func (s *Summary) Reset() {
	s.Cells, s.Failed, s.Events = 0, 0, 0
	s.names = nil
	for name := range s.values {
		s.values[name] = s.values[name][:0]
	}
}

// Add accumulates a result slice (as returned by Runner.Run). Metrics from
// successive Add calls append in call order, so reducing groups one Add at
// a time equals reducing their concatenation.
func (s *Summary) Add(results []Result) {
	for _, r := range results {
		if r.Err != nil {
			s.Failed++
			continue
		}
		s.Cells++
		s.Events += r.Events
		for name, v := range r.Metrics {
			s.values[name] = append(s.values[name], v)
		}
	}
	s.names = nil
}

// Reduce aggregates a result slice (as returned by Runner.Run).
func Reduce(results []Result) *Summary {
	s := NewSummary()
	s.Add(results)
	return s
}

// ReduceAll flattens several result groups (as returned by Runner.RunAll)
// into one summary.
func ReduceAll(groups [][]Result) *Summary {
	s := NewSummary()
	for _, g := range groups {
		s.Add(g)
	}
	return s
}

// Names lists the observed metric names, sorted. Metrics whose buffers
// are empty (possible only after Reset) are not listed.
func (s *Summary) Names() []string {
	if s.names == nil {
		s.names = make([]string, 0, len(s.values))
		for name, vs := range s.values {
			if len(vs) > 0 {
				s.names = append(s.names, name)
			}
		}
		sort.Strings(s.names)
	}
	return s.names
}

// Values returns the metric's samples in cell order (nil when absent —
// including metrics seen only before a Reset, whose buffers are retained
// empty).
func (s *Summary) Values(name string) []float64 {
	if vs := s.values[name]; len(vs) > 0 {
		return vs
	}
	return nil
}

// Count reports how many cells emitted the metric.
func (s *Summary) Count(name string) int { return len(s.values[name]) }

// Sum totals the metric across cells.
func (s *Summary) Sum(name string) float64 {
	t := 0.0
	for _, v := range s.values[name] {
		t += v
	}
	return t
}

// Mean averages the metric across cells (NaN when absent).
func (s *Summary) Mean(name string) float64 {
	vs := s.values[name]
	if len(vs) == 0 {
		return math.NaN()
	}
	return s.Sum(name) / float64(len(vs))
}

// Min returns the smallest sample (NaN when absent).
func (s *Summary) Min(name string) float64 {
	vs := s.values[name]
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample (NaN when absent).
func (s *Summary) Max(name string) float64 {
	vs := s.values[name]
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the nearest-rank p-th percentile (p in [0,100]) of
// the metric (NaN when absent).
func (s *Summary) Percentile(name string, p float64) float64 {
	vs := s.values[name]
	if len(vs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// CountAbove counts cells whose metric exceeds the threshold — the shape
// of "how many trials showed distress".
func (s *Summary) CountAbove(name string, threshold float64) int {
	n := 0
	for _, v := range s.values[name] {
		if v > threshold {
			n++
		}
	}
	return n
}

// String renders a deterministic aggregate table, one metric per line.
// Byte-identical output for byte-identical result sets makes it the
// fixture for the determinism-under-parallelism tests.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cells=%d failed=%d\n", s.Cells, s.Failed)
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "%-24s n=%-4d mean=%-12.6g min=%-12.6g p50=%-12.6g p95=%-12.6g max=%.6g\n",
			name, s.Count(name), s.Mean(name), s.Min(name),
			s.Percentile(name, 50), s.Percentile(name, 95), s.Max(name))
	}
	return b.String()
}
