package fleet

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// protoCatalogParams returns a short-but-nontrivial parameterization for
// every built-in scenario, sized so the suite stays fast while still
// exercising boluses, supervisor stops, outages, and imaging windows.
func protoCatalogParams() map[string]Params {
	return map[string]Params{
		ScenarioPCASupervised:   {Seed: 42, Cells: 3, Duration: 30 * sim.Minute},
		ScenarioPCAUnsupervised: {Seed: 43, Cells: 3, Duration: 30 * sim.Minute},
		ScenarioPCACommFault:    {Seed: 7, Cells: 2, Duration: 30 * sim.Minute, Knobs: map[string]float64{"loss": 0.3}},
		ScenarioXRayVentSync:    {Seed: 11, Cells: 3, Knobs: map[string]float64{"requests": 12}},
	}
}

// stripWallClock zeroes the one non-deterministic field so results can
// be compared exactly.
func stripWallClock(rs []Result) []Result {
	for i := range rs {
		rs[i].WireEncodeNS = 0
	}
	return rs
}

func renderResults(rs []Result) string {
	out := ""
	for _, r := range rs {
		out += fmt.Sprintf("%d seed=%d events=%d bytes=%d err=%v metrics=%v\n",
			r.Cell.Index, r.Cell.Seed, r.Events, r.WireBytes, r.Err, r.Metrics)
	}
	return out
}

// TestPrototypeCloneByteIdentical is the core tentpole gate at the fleet
// level: for every built-in scenario, cloned cells must match
// from-scratch cells result-for-result — same metrics, same kernel event
// counts, same wire bytes — across worker counts, kernel backends, and
// wire codecs. Sorted-map rendering via %v makes the comparison total.
func TestPrototypeCloneByteIdentical(t *testing.T) {
	defer sim.SetReferenceQueueForTest(false)
	for name, p := range protoCatalogParams() {
		for _, ref := range []bool{false, true} {
			sim.SetReferenceQueueForTest(ref)
			for _, codec := range []string{"binary", "json"} {
				pc := p
				pc.WireCodec = codec
				spec, err := Build(name, pc)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if spec.NewProto == nil {
					t.Fatalf("%s: catalog spec did not opt into prototyping", name)
				}
				scratchRes, err := Runner{Workers: 1, NoPrototype: true}.Run(spec)
				if err != nil {
					t.Fatalf("%s from-scratch: %v", name, err)
				}
				baseline := renderResults(stripWallClock(scratchRes))
				for _, workers := range []int{1, 4} {
					cloneRes, err := Runner{Workers: workers}.Run(spec)
					if err != nil {
						t.Fatalf("%s clone workers=%d: %v", name, workers, err)
					}
					got := renderResults(stripWallClock(cloneRes))
					if got != baseline {
						t.Fatalf("%s ref=%v codec=%s workers=%d: clone diverged from from-scratch\nclone:\n%s\nscratch:\n%s",
							name, ref, codec, workers, got, baseline)
					}
				}
			}
		}
	}
}

// TestPrototypeCloneAllocBudget pins the steady-state allocation cost of
// stamping a cell from a warm prototype. The budget (measured ~54 on
// go1.24: the returned metrics map, alarm formatting, and result
// bookkeeping) is deliberately loose enough to survive runtime-version
// noise but tight enough that reintroducing per-cell construction —
// hundreds of allocations — fails loudly.
func TestPrototypeCloneAllocBudget(t *testing.T) {
	const budget = 96
	spec, err := Build(ScenarioPCASupervised, Params{Seed: 42, Cells: 1, Duration: 30 * sim.Minute})
	if err != nil {
		t.Fatal(err)
	}
	scratch := &Scratch{}
	proto := spec.NewProto()
	if proto == nil {
		t.Fatal("pca-supervised declined to build a prototype")
	}
	clone := func(i int) {
		scratch.reset()
		if _, err := proto.Clone(Cell{Index: i, Seed: spec.seedFor(i), scratch: scratch}); err != nil {
			t.Fatal(err)
		}
	}
	clone(0) // warm: first cell grows pools and trace buffers
	clone(1)
	i := 2
	got := testing.AllocsPerRun(5, func() { clone(i); i++ })
	if got > budget {
		t.Fatalf("per-clone allocations = %v, budget %d", got, budget)
	}
}

// TestPrototypeFallsBackWithoutNewProto pins the opt-in contract: a spec
// without NewProto runs from scratch and still produces its results.
func TestPrototypeFallsBackWithoutNewProto(t *testing.T) {
	spec, err := Build(ScenarioPCASupervised, Params{Seed: 9, Cells: 2, Duration: 20 * sim.Minute})
	if err != nil {
		t.Fatal(err)
	}
	withProto, err := Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.NewProto = nil
	without, err := Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if renderResults(stripWallClock(withProto)) != renderResults(stripWallClock(without)) {
		t.Fatal("removing NewProto changed results")
	}
}

// TestPrototypeGlobalDisable pins the SetPrototypesForTest hook the
// experiments differential suite depends on.
func TestPrototypeGlobalDisable(t *testing.T) {
	defer SetPrototypesForTest(true)
	spec, err := Build(ScenarioXRayVentSync, Params{Seed: 3, Cells: 2, Knobs: map[string]float64{"requests": 8}})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	SetPrototypesForTest(false)
	off, err := Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if renderResults(stripWallClock(on)) != renderResults(stripWallClock(off)) {
		t.Fatal("global prototype disable changed results")
	}
}
