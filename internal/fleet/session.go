package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/icescope"
)

// Session pins one built spec to a persistent worker pool. Where
// Runner.RunRangeContext spins up fresh workers — and therefore fresh
// Scratches and prototype rigs — per call, a Session keeps the pool
// alive across calls: each worker goroutine owns one Scratch for the
// session's lifetime, so the spec's prototype is constructed once per
// worker and every later range stamps cells by Clone. That is the seam
// a distributed node needs for fine-grained shards: at shard size 1 the
// per-call fixed cost must be a function call, not a scenario build.
//
// Concurrent RunRange calls are safe and share the pool — cells from
// overlapping calls interleave across the same workers, bounding total
// parallelism at the session's worker count no matter how many ranges
// are in flight. Determinism is untouched: cells remain pure functions
// of their index, and each call's results are collected by index.
type Session struct {
	r    Runner
	spec Spec
	jobs chan sessionCell
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
	active int // RunRange calls in flight (idle tracking for cache evictors)
}

// sessionCell is one cell dispatched to the session pool; exec runs it
// on the worker's long-lived scratch and lock-free trace buffer.
type sessionCell struct {
	ci   int
	exec func(ci int, scratch *Scratch, buf *icescope.Buffer)
}

// NewSession validates the spec and starts the runner's worker pool
// against it. The caller must Close the session (with no RunRange in
// flight) to release the workers. Engine, if set on the runner, is
// ignored: a session is always local execution.
func (r Runner) NewSession(spec Spec) (*Session, error) {
	if spec.Run == nil {
		return nil, fmt.Errorf("fleet: spec %q has no Run", spec.Name)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	s := &Session{r: r, spec: spec, jobs: make(chan sessionCell)}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			scratch := &Scratch{} // lives as long as the session: prototypes persist
			buf := r.Span.Trace().Buffer()
			for j := range s.jobs {
				j.exec(j.ci, scratch, buf)
			}
		}()
	}
	return s, nil
}

// Spec returns the spec this session executes.
func (s *Session) Spec() Spec { return s.spec }

// Idle reports whether no RunRange call is in flight — the safe-to-Close
// signal for session caches.
func (s *Session) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active == 0
}

// RunRange executes cells [start, end) of the session's spec, exactly as
// Runner.RunRangeContext would: results carry their global ensemble index
// and seed, onCell (when non-nil) is invoked serially per completed cell,
// cells not yet dispatched when ctx is cancelled are skipped with
// ctx.Err(), and the returned slice is in range order.
func (s *Session) RunRange(ctx context.Context, start, end int, onCell func(Result)) ([]Result, error) {
	if start < 0 || end < start || end > s.spec.Cells {
		return nil, fmt.Errorf("fleet: range [%d,%d) outside spec %q (%d cells)", start, end, s.spec.Name, s.spec.Cells)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: session for %q is closed", s.spec.Name)
	}
	s.active++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()

	n := end - start
	out := make([]Result, n)
	var deliverMu sync.Mutex
	var done sync.WaitGroup
	exec := func(ci int, scratch *Scratch, buf *icescope.Buffer) {
		defer done.Done()
		res := s.r.runCell(s.spec, 0, ci, scratch, buf)
		out[ci-start] = res
		if onCell != nil {
			deliverMu.Lock()
			onCell(res)
			deliverMu.Unlock()
		}
	}
	cancelled := 0
dispatch:
	for ci := start; ci < end; ci++ {
		done.Add(1)
		select {
		case s.jobs <- sessionCell{ci, exec}:
		case <-ctx.Done():
			done.Done()
			for cj := ci; cj < end; cj++ {
				out[cj-start] = Result{Cell: Cell{Index: cj, Seed: s.spec.seedFor(cj)}, Err: ctx.Err()}
				cancelled++
			}
			break dispatch
		}
	}
	done.Wait()

	var errs []error
	for _, res := range out {
		if res.Err != nil && !errors.Is(res.Err, ctx.Err()) {
			errs = append(errs, fmt.Errorf("%s cell %d: %w", s.spec.Name, res.Cell.Index, res.Err))
		}
	}
	if cancelled > 0 {
		errs = append(errs, fmt.Errorf("fleet: %d cells skipped: %w", cancelled, ctx.Err()))
	}
	return out, errors.Join(errs...)
}

// Close stops the worker pool and waits for the workers to exit. It must
// not race an in-flight RunRange (see Idle); calling Close twice is safe.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}
