package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// mathSpec is a cheap synthetic workload: each cell draws from its own
// seeded stream, so any cross-cell interference or order dependence shows
// up as a metric change.
func mathSpec(name string, seed int64, cells int) Spec {
	return Spec{
		Name:  name,
		Seed:  seed,
		Cells: cells,
		Run: func(c Cell) (Metrics, error) {
			rng := c.RNG()
			total := 0.0
			for i := 0; i < 1000; i++ {
				total += rng.Normal(0, 1)
			}
			return Metrics{"total": total, "seed": float64(c.Seed), "index": float64(c.Index)}, nil
		},
	}
}

// The tentpole guarantee: a fixed seed produces byte-identical reduced
// output at any worker count.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	var baseline []Result
	var baselineSummary string
	for _, workers := range []int{1, 4, 8} {
		results, err := Runner{Workers: workers}.Run(mathSpec("det", 99, 32))
		if err != nil {
			t.Fatal(err)
		}
		rendered := Reduce(results).String()
		if baseline == nil {
			baseline, baselineSummary = results, rendered
			continue
		}
		if !reflect.DeepEqual(results, baseline) {
			t.Fatalf("per-cell results differ at %d workers", workers)
		}
		if rendered != baselineSummary {
			t.Fatalf("reduced summary differs at %d workers:\n%s\nvs\n%s", workers, rendered, baselineSummary)
		}
	}
}

func TestRunAllFlattensAcrossSpecs(t *testing.T) {
	specs := []Spec{mathSpec("a", 1, 5), mathSpec("b", 2, 3)}
	groups, err := Runner{Workers: 4}.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 5 || len(groups[1]) != 3 {
		t.Fatalf("group shape wrong: %d/%d/%d", len(groups), len(groups[0]), len(groups[1]))
	}
	for si, g := range groups {
		for ci, r := range g {
			if r.Cell.Index != ci {
				t.Fatalf("spec %d cell %d stored at wrong index %d", si, ci, r.Cell.Index)
			}
			if r.Cell.Seed != sim.SubSeed(specs[si].Seed, specs[si].Name, ci) {
				t.Fatalf("spec %d cell %d has wrong derived seed", si, ci)
			}
		}
	}
}

func TestSeedDerivationIndependentOfOtherCells(t *testing.T) {
	// Cell 7's world must not depend on how many cells the fleet has.
	small, err := Runner{}.Run(mathSpec("ind", 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Runner{Workers: 8}.Run(mathSpec("ind", 5, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(small[7], big[7]) {
		t.Fatalf("cell 7 changed when the fleet grew: %+v vs %+v", small[7], big[7])
	}
}

func TestRunnerCollectsErrorsAndPanics(t *testing.T) {
	spec := Spec{
		Name:  "faulty",
		Cells: 4,
		Run: func(c Cell) (Metrics, error) {
			switch c.Index {
			case 1:
				return nil, errors.New("boom")
			case 2:
				panic("kernel causality violation")
			}
			return Metrics{"ok": 1}, nil
		},
	}
	results, err := Runner{Workers: 4}.Run(spec)
	if err == nil {
		t.Fatal("expected joined error")
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatalf("per-cell errors not recorded: %+v", results)
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("healthy cells errored: %+v", results)
	}
	sum := Reduce(results)
	if sum.Cells != 2 || sum.Failed != 2 {
		t.Fatalf("summary cells=%d failed=%d", sum.Cells, sum.Failed)
	}
}

func TestReduceAggregates(t *testing.T) {
	var results []Result
	for i := 0; i < 10; i++ {
		results = append(results, Result{
			Cell:    Cell{Index: i},
			Metrics: Metrics{"v": float64(i), "hit": boolMetric(i >= 7)},
		})
	}
	s := Reduce(results)
	if got := s.Sum("v"); got != 45 {
		t.Fatalf("sum = %v", got)
	}
	if got := s.Mean("v"); got != 4.5 {
		t.Fatalf("mean = %v", got)
	}
	if s.Min("v") != 0 || s.Max("v") != 9 {
		t.Fatalf("min/max = %v/%v", s.Min("v"), s.Max("v"))
	}
	if got := s.Percentile("v", 50); got != 4 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile("v", 100); got != 9 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.CountAbove("hit", 0.5); got != 3 {
		t.Fatalf("count above = %v", got)
	}
	if got := s.Names(); len(got) != 2 || got[0] != "hit" || got[1] != "v" {
		t.Fatalf("names = %v", got)
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestRegistryBuildsCatalogScenarios(t *testing.T) {
	names := Names()
	for _, want := range []string{ScenarioPCASupervised, ScenarioPCAUnsupervised, ScenarioPCACommFault} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("scenario %q not registered (have %v)", want, names)
		}
	}
	if _, err := Build("no-such-scenario", Params{}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// A real patient-room fleet — each cell is a full PCA rig with its own
// kernel, network, manager, devices and patient — must also be
// deterministic under parallelism. Run with -race this doubles as the
// isolation proof: any shared mutable state across rooms is a data race.
func TestPCAFleetDeterministicAcrossWorkers(t *testing.T) {
	build := func() Spec {
		spec, err := Build(ScenarioPCASupervised, Params{Seed: 42, Cells: 4, Duration: 10 * sim.Minute})
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	var baseline string
	for _, workers := range []int{1, 4, 8} {
		results, err := Runner{Workers: workers}.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		rendered := Reduce(results).String()
		for i, r := range results {
			rendered += fmt.Sprintf("cell %d seed %d spo2 %v\n", i, r.Cell.Seed, r.Metrics["min_spo2"])
		}
		if baseline == "" {
			baseline = rendered
			continue
		}
		if rendered != baseline {
			t.Fatalf("PCA fleet output differs at %d workers:\n%s\nvs\n%s", workers, rendered, baseline)
		}
	}
	// Trial 0 must replay the base seed so 1-cell fleets reproduce the
	// legacy serial experiments bit-for-bit.
	results, err := Runner{}.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Cell.Seed != 42 {
		t.Fatalf("trial 0 seed = %d, want base seed 42", results[0].Cell.Seed)
	}
}
