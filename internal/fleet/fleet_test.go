package fleet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/sim"
)

// mathSpec is a cheap synthetic workload: each cell draws from its own
// seeded stream, so any cross-cell interference or order dependence shows
// up as a metric change.
func mathSpec(name string, seed int64, cells int) Spec {
	return Spec{
		Name:  name,
		Seed:  seed,
		Cells: cells,
		Run: func(c Cell) (Metrics, error) {
			rng := c.RNG()
			total := 0.0
			for i := 0; i < 1000; i++ {
				total += rng.Normal(0, 1)
			}
			return Metrics{"total": total, "seed": float64(c.Seed), "index": float64(c.Index)}, nil
		},
	}
}

// The tentpole guarantee: a fixed seed produces byte-identical reduced
// output at any worker count.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	var baseline []Result
	var baselineSummary string
	for _, workers := range []int{1, 4, 8} {
		results, err := Runner{Workers: workers}.Run(mathSpec("det", 99, 32))
		if err != nil {
			t.Fatal(err)
		}
		rendered := Reduce(results).String()
		if baseline == nil {
			baseline, baselineSummary = results, rendered
			continue
		}
		if !reflect.DeepEqual(results, baseline) {
			t.Fatalf("per-cell results differ at %d workers", workers)
		}
		if rendered != baselineSummary {
			t.Fatalf("reduced summary differs at %d workers:\n%s\nvs\n%s", workers, rendered, baselineSummary)
		}
	}
}

func TestRunAllFlattensAcrossSpecs(t *testing.T) {
	specs := []Spec{mathSpec("a", 1, 5), mathSpec("b", 2, 3)}
	groups, err := Runner{Workers: 4}.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 5 || len(groups[1]) != 3 {
		t.Fatalf("group shape wrong: %d/%d/%d", len(groups), len(groups[0]), len(groups[1]))
	}
	for si, g := range groups {
		for ci, r := range g {
			if r.Cell.Index != ci {
				t.Fatalf("spec %d cell %d stored at wrong index %d", si, ci, r.Cell.Index)
			}
			if r.Cell.Seed != sim.SubSeed(specs[si].Seed, specs[si].Name, ci) {
				t.Fatalf("spec %d cell %d has wrong derived seed", si, ci)
			}
		}
	}
}

func TestSeedDerivationIndependentOfOtherCells(t *testing.T) {
	// Cell 7's world must not depend on how many cells the fleet has.
	small, err := Runner{}.Run(mathSpec("ind", 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Runner{Workers: 8}.Run(mathSpec("ind", 5, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(small[7], big[7]) {
		t.Fatalf("cell 7 changed when the fleet grew: %+v vs %+v", small[7], big[7])
	}
}

func TestRunnerCollectsErrorsAndPanics(t *testing.T) {
	spec := Spec{
		Name:  "faulty",
		Cells: 4,
		Run: func(c Cell) (Metrics, error) {
			switch c.Index {
			case 1:
				return nil, errors.New("boom")
			case 2:
				panic("kernel causality violation")
			}
			return Metrics{"ok": 1}, nil
		},
	}
	results, err := Runner{Workers: 4}.Run(spec)
	if err == nil {
		t.Fatal("expected joined error")
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatalf("per-cell errors not recorded: %+v", results)
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("healthy cells errored: %+v", results)
	}
	sum := Reduce(results)
	if sum.Cells != 2 || sum.Failed != 2 {
		t.Fatalf("summary cells=%d failed=%d", sum.Cells, sum.Failed)
	}
}

func TestReduceAggregates(t *testing.T) {
	var results []Result
	for i := 0; i < 10; i++ {
		results = append(results, Result{
			Cell:    Cell{Index: i},
			Metrics: Metrics{"v": float64(i), "hit": boolMetric(i >= 7)},
		})
	}
	s := Reduce(results)
	if got := s.Sum("v"); got != 45 {
		t.Fatalf("sum = %v", got)
	}
	if got := s.Mean("v"); got != 4.5 {
		t.Fatalf("mean = %v", got)
	}
	if s.Min("v") != 0 || s.Max("v") != 9 {
		t.Fatalf("min/max = %v/%v", s.Min("v"), s.Max("v"))
	}
	if got := s.Percentile("v", 50); got != 4 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile("v", 100); got != 9 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.CountAbove("hit", 0.5); got != 3 {
		t.Fatalf("count above = %v", got)
	}
	if got := s.Names(); len(got) != 2 || got[0] != "hit" || got[1] != "v" {
		t.Fatalf("names = %v", got)
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestRegistryBuildsCatalogScenarios(t *testing.T) {
	names := Names()
	for _, want := range []string{ScenarioPCASupervised, ScenarioPCAUnsupervised, ScenarioPCACommFault} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("scenario %q not registered (have %v)", want, names)
		}
	}
	if _, err := Build("no-such-scenario", Params{}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// A real patient-room fleet — each cell is a full PCA rig with its own
// kernel, network, manager, devices and patient — must also be
// deterministic under parallelism. Run with -race this doubles as the
// isolation proof: any shared mutable state across rooms is a data race.
func TestPCAFleetDeterministicAcrossWorkers(t *testing.T) {
	build := func() Spec {
		spec, err := Build(ScenarioPCASupervised, Params{Seed: 42, Cells: 4, Duration: 10 * sim.Minute})
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	var baseline string
	for _, workers := range []int{1, 4, 8} {
		results, err := Runner{Workers: workers}.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		rendered := Reduce(results).String()
		for i, r := range results {
			rendered += fmt.Sprintf("cell %d seed %d spo2 %v\n", i, r.Cell.Seed, r.Metrics["min_spo2"])
		}
		if baseline == "" {
			baseline = rendered
			continue
		}
		if rendered != baseline {
			t.Fatalf("PCA fleet output differs at %d workers:\n%s\nvs\n%s", workers, rendered, baseline)
		}
	}
	// Trial 0 must replay the base seed so 1-cell fleets reproduce the
	// legacy serial experiments bit-for-bit.
	results, err := Runner{}.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Cell.Seed != 42 {
		t.Fatalf("trial 0 seed = %d, want base seed 42", results[0].Cell.Seed)
	}
}

// blockSpec builds a spec whose cells block on release until freed, so
// tests can hold a fleet mid-flight deterministically.
func blockSpec(name string, cells int, release <-chan struct{}, started chan<- int) Spec {
	return Spec{
		Name:  name,
		Cells: cells,
		Run: func(c Cell) (Metrics, error) {
			if started != nil {
				started <- c.Index
			}
			<-release
			return Metrics{"index": float64(c.Index)}, nil
		},
	}
}

func TestRunContextMatchesRunWhenUncancelled(t *testing.T) {
	spec := mathSpec("ctx-eq", 11, 16)
	plain, err := Runner{Workers: 4}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Runner{Workers: 4}.RunContext(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCtx) {
		t.Fatal("RunContext diverged from Run without cancellation")
	}
}

func TestRunContextCancellationSkipsUndispatchedCells(t *testing.T) {
	release := make(chan struct{})
	started := make(chan int, 1)
	ctx, cancel := context.WithCancel(context.Background())

	// One worker: cell 0 starts and blocks, cells 1..3 are undispatched.
	done := make(chan struct{})
	var results []Result
	var runErr error
	go func() {
		defer close(done)
		results, runErr = Runner{Workers: 1}.RunContext(ctx, blockSpec("cancel", 4, release, started), nil)
	}()
	<-started
	cancel()
	close(release)
	<-done

	if runErr == nil || !errors.Is(runErr, context.Canceled) {
		t.Fatalf("joined error should report cancellation, got %v", runErr)
	}
	if results[0].Err != nil || results[0].Metrics["index"] != 0 {
		t.Fatalf("in-flight cell should complete: %+v", results[0])
	}
	skipped := 0
	for _, r := range results[1:] {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
			if r.Cell.Seed == 0 && r.Cell.Index > 0 {
				// seedFor still ran; default derivation is never 0 here
				t.Fatalf("skipped cell %d lost its derived seed", r.Cell.Index)
			}
		}
	}
	if skipped == 0 {
		t.Fatalf("no cells recorded as skipped: %+v", results)
	}
	if sum := Reduce(results); sum.Failed != skipped || sum.Cells != 4-skipped {
		t.Fatalf("summary cells=%d failed=%d want %d/%d", sum.Cells, sum.Failed, 4-skipped, skipped)
	}
}

func TestRunContextDeliversEachCellOnce(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	results, err := Runner{Workers: 8}.RunContext(context.Background(), mathSpec("deliver", 3, 24),
		func(r Result) {
			// onCell is serialized by the runner; the mutex guards against
			// regressions of that guarantee under -race.
			mu.Lock()
			seen[r.Cell.Index]++
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 24 {
		t.Fatalf("delivered %d distinct cells, want 24", len(seen))
	}
	for i, r := range results {
		if seen[i] != 1 {
			t.Fatalf("cell %d delivered %d times", i, seen[i])
		}
		if r.Metrics == nil {
			t.Fatalf("cell %d missing metrics", i)
		}
	}
}

func TestNamesSortedAndBuildable(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("catalog too small: %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, n := range names {
		if _, err := Build(n, Params{Seed: 1, Cells: 1}); err != nil {
			t.Fatalf("registered scenario %q does not build: %v", n, err)
		}
	}
}

// A requested duration must shape the xray session (one image request
// per 20 s of session), not be silently dropped: the gateway keys its
// result cache on duration, so a dropped parameter would cache default
// results under a non-default key.
func TestXRaySyncScenarioHonorsDuration(t *testing.T) {
	run := func(d sim.Time) float64 {
		spec, err := Build(ScenarioXRayVentSync, Params{
			Seed: 3, Cells: 1, Duration: d,
			Knobs: map[string]float64{"loss": 0}, // lossless: every request resolves
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Runner{}.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		m := res[0].Metrics
		return m["sharp"] + m["blurred"] + m["deferred"]
	}
	if got := run(10 * sim.Minute); got != 30 { // 600 s / 20 s spacing
		t.Fatalf("10-minute session resolved %v requests, want 30", got)
	}
	if got := run(0); got != 24 { // scenario default
		t.Fatalf("default session resolved %v requests, want 24", got)
	}
}

func TestKnownKnobsDeclarations(t *testing.T) {
	knobs, ok := KnownKnobs(ScenarioXRayVentSync)
	if !ok || len(knobs) != 4 {
		t.Fatalf("xray knobs = %v, %v", knobs, ok)
	}
	if knobs, ok := KnownKnobs(ScenarioPCASupervised); !ok || len(knobs) != 0 {
		t.Fatalf("pca-supervised should declare an empty knob set, got %v, %v", knobs, ok)
	}
	if _, ok := KnownKnobs("not-registered-here"); ok {
		t.Fatal("undeclared scenario claims a knob set")
	}
}
