package core

import (
	"repro/internal/icewire"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// The ICE wire types and codecs are defined in internal/icewire (one
// source of truth shared with the fuzz and differential harnesses); core
// aliases them so the rest of the tree keeps its vocabulary. The binary
// codec is the default wire encoding; JSON is retained as the
// debug/compat codec, selectable per Manager/DeviceConn via
// ManagerConfig.Codec and ConnectConfig.Codec.
type (
	MsgType     = icewire.MsgType
	Envelope    = icewire.Envelope
	Datum       = icewire.Datum
	Command     = icewire.Command
	CommandAck  = icewire.CommandAck
	AdmitResult = icewire.AdmitResult
	Codec       = icewire.Codec
	CodecStats  = icewire.CodecStats
)

const (
	MsgAnnounce   = icewire.MsgAnnounce
	MsgAdmit      = icewire.MsgAdmit
	MsgPublish    = icewire.MsgPublish
	MsgCommand    = icewire.MsgCommand
	MsgCommandAck = icewire.MsgCommandAck
	MsgHeartbeat  = icewire.MsgHeartbeat
	MsgBye        = icewire.MsgBye
)

// NewCodec constructs a wire codec by name: "" or "binary" (default),
// "json" (debug/compat).
func NewCodec(name string) (Codec, error) { return icewire.NewCodec(name) }

// MustNewCodec is NewCodec for known-good names.
func MustNewCodec(name string) Codec { return icewire.MustNewCodec(name) }

// NewBinaryCodec returns a fresh instance of the default binary codec.
func NewBinaryCodec() Codec { return icewire.NewBinary() }

// NewJSONCodec returns a fresh instance of the JSON debug/compat codec.
func NewJSONCodec() Codec { return icewire.NewJSON() }

// Encode marshals an envelope with the given typed body in the JSON
// debug/compat encoding. Stateless; kept for tests and tools that build
// frames outside a connection (hot paths go through a Codec instance).
func Encode(t MsgType, from, to string, seq uint64, at sim.Time, body any) ([]byte, error) {
	return icewire.EncodeJSON(t, from, to, seq, at, body)
}

// sendFrame is the one signed-send sequence both endpoints (Manager and
// DeviceConn) share: encode the envelope once into a pooled network
// buffer and, when an authenticator is configured, sign the encoded
// frame's canonical bytes and patch the tag in — never re-serialize.
// A frame that cannot be signed (no key provisioned) goes out unsigned;
// the receiver's Verify is the enforcement point. sig is the caller's
// scratch buffer for the signing bytes.
func sendFrame(net *mednet.Network, codec Codec, auth Authenticator, sig *[]byte,
	t MsgType, from, to string, seq uint64, at sim.Time, body any) {
	buf := net.AcquireBuf()
	frame, err := codec.AppendEnvelope(buf.B[:0], t, from, to, seq, at, body)
	if err != nil {
		panic(err) // endpoint bodies are all encodable wire structs
	}
	if auth != nil {
		if s, err := codec.Signing((*sig)[:0], frame); err == nil {
			retainScratch(sig, s, frame)
			if tag, err := auth.Sign(from, s); err == nil {
				if patched, err := codec.PatchAuth(frame, tag); err == nil {
					frame = patched
				}
			}
		}
	}
	buf.B = frame
	net.SendBuf(from, to, string(t), buf)
}

// verifyEnvelope checks a decoded envelope's tag against its canonical
// signing bytes (zero-copy for binary frames). A nil authenticator
// accepts everything; sig is the caller's scratch buffer; frame is the
// wire bytes env was decoded from.
func verifyEnvelope(auth Authenticator, sig *[]byte, env *Envelope, frame []byte) error {
	if auth == nil {
		return nil
	}
	s := env.AppendSigning((*sig)[:0])
	retainScratch(sig, s, frame)
	return auth.Verify(env.From, s, env.Auth)
}

// retainScratch stores a (possibly reallocated) signing buffer back on
// its owner so growth beyond the initial capacity is paid once, not per
// message — unless the codec returned a window into the frame itself
// (the binary zero-copy path, recognizable by its first byte: a frame
// window always starts at frame[0]), which must never be retained: the
// frame buffer is pooled and will be overwritten.
func retainScratch(sig *[]byte, s, frame []byte) {
	if len(s) > 0 && (len(frame) == 0 || &s[0] != &frame[0]) {
		*sig = s[:0]
	}
}

// Decode unmarshals a JSON envelope from the wire.
func Decode(data []byte) (Envelope, error) {
	return icewire.DecodeJSON(data)
}
