package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// MsgType enumerates the ICE wire protocol message types.
type MsgType string

const (
	MsgAnnounce   MsgType = "announce"    // device -> manager: descriptor
	MsgAdmit      MsgType = "admit"       // manager -> device: admission result
	MsgPublish    MsgType = "publish"     // device -> manager: sensor datum
	MsgCommand    MsgType = "command"     // manager -> device: actuator command
	MsgCommandAck MsgType = "command-ack" // device -> manager
	MsgHeartbeat  MsgType = "heartbeat"   // device -> manager liveness
	MsgBye        MsgType = "bye"         // device -> manager: orderly leave
)

// Envelope is the wire representation of every ICE message. Auth carries
// the optional HMAC tag added by internal/security; it covers every field
// except itself.
type Envelope struct {
	Type MsgType         `json:"type"`
	From string          `json:"from"`
	To   string          `json:"to"`
	Seq  uint64          `json:"seq"`
	At   sim.Time        `json:"at"`
	Body json.RawMessage `json:"body,omitempty"`
	Auth []byte          `json:"auth,omitempty"`
}

// Datum is the body of a MsgPublish: one sensor observation.
type Datum struct {
	Topic   string   `json:"topic"`
	Value   float64  `json:"value"`
	Valid   bool     `json:"valid"`
	Quality float64  `json:"quality"` // [0,1] signal-quality index
	Sampled sim.Time `json:"sampled"` // when the underlying signal was measured
}

// Command is the body of a MsgCommand.
type Command struct {
	ID   uint64             `json:"id"`
	Name string             `json:"name"`
	Args map[string]float64 `json:"args,omitempty"`
}

// CommandAck is the body of a MsgCommandAck.
type CommandAck struct {
	ID  uint64 `json:"id"`
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// AdmitResult is the body of a MsgAdmit.
type AdmitResult struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// Encode marshals an envelope with the given typed body.
func Encode(t MsgType, from, to string, seq uint64, at sim.Time, body any) ([]byte, error) {
	var raw json.RawMessage
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("core: encoding %s body: %w", t, err)
		}
		raw = b
	}
	env := Envelope{Type: t, From: from, To: to, Seq: seq, At: at, Body: raw}
	out, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("core: encoding %s envelope: %w", t, err)
	}
	return out, nil
}

// Decode unmarshals an envelope from the wire.
func Decode(data []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, fmt.Errorf("core: decoding envelope: %w", err)
	}
	if env.Type == "" {
		return Envelope{}, errors.New("core: envelope missing type")
	}
	if env.From == "" {
		return Envelope{}, errors.New("core: envelope missing sender")
	}
	return env, nil
}

// DecodeBody unmarshals the body into out.
func (e Envelope) DecodeBody(out any) error {
	if len(e.Body) == 0 {
		return fmt.Errorf("core: %s envelope has empty body", e.Type)
	}
	if err := json.Unmarshal(e.Body, out); err != nil {
		return fmt.Errorf("core: decoding %s body: %w", e.Type, err)
	}
	return nil
}

// mustMarshalEnvelope re-serializes an envelope (used after attaching an
// authentication tag). Marshaling an Envelope cannot fail.
func mustMarshalEnvelope(e Envelope) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("core: marshal envelope: %v", err))
	}
	return b
}

// SigningBytes returns the canonical byte string an authenticator signs:
// the envelope with the Auth field cleared. Deterministic because
// encoding/json marshals struct fields in declaration order.
func (e Envelope) SigningBytes() []byte {
	e.Auth = nil
	b, err := json.Marshal(e)
	if err != nil {
		// Envelope fields are all marshalable types; this cannot fail.
		panic(fmt.Sprintf("core: signing bytes: %v", err))
	}
	return b
}
