package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mednet"
	"repro/internal/sim"
)

// rig is a complete ICE test fixture.
type rig struct {
	k   *sim.Kernel
	net *mednet.Network
	mgr *Manager
}

func newRig(t *testing.T, cfg ManagerConfig) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	mgr, err := NewManager(k, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, net: net, mgr: mgr}
}

func TestManagerConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	bad := []ManagerConfig{
		{HeartbeatInterval: 0, LivenessTimeout: time.Second},
		{HeartbeatInterval: time.Second, LivenessTimeout: 0},
		{HeartbeatInterval: 2 * time.Second, LivenessTimeout: time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewManager(k, net, cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestAnnounceAdmitPublishSubscribe(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	var data []Datum
	r.mgr.Subscribe("ox1/spo2", func(from string, d Datum) {
		if from != "ox1" {
			t.Errorf("from = %q", from)
		}
		data = append(data, d)
	})

	var admitted bool
	r.k.At(0, func() {
		c := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		c.OnAdmit(func(ok bool, reason string) { admitted = ok })
		r.k.After(100*time.Millisecond, func() {
			c.Publish("spo2", 97.5, true, 0.9, r.k.Now())
			c.Publish("heart-rate", 72, true, 0.9, r.k.Now()) // not subscribed
		})
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if !admitted {
		t.Fatal("device not admitted")
	}
	if len(data) != 1 {
		t.Fatalf("received %d data, want 1", len(data))
	}
	if data[0].Value != 97.5 || !data[0].Valid {
		t.Fatalf("datum = %+v", data[0])
	}
	st, ok := r.mgr.Device("ox1")
	if !ok || !st.Admitted || !st.Alive {
		t.Fatalf("status = %+v, %v", st, ok)
	}
}

func TestAdmissionPolicyRejects(t *testing.T) {
	cfg := DefaultManagerConfig()
	cfg.Admission = RequireAny(Requirement{Kind: KindInfusionPump})
	r := newRig(t, cfg)
	var ok bool
	var reason string
	r.k.At(0, func() {
		c := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		c.OnAdmit(func(o bool, re string) { ok, reason = o, re })
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("oximeter admitted by pump-only policy")
	}
	if reason == "" {
		t.Fatal("rejection carried no reason")
	}
	if _, found := r.mgr.Device("ox1"); found {
		t.Fatal("rejected device present in registry")
	}
}

func TestWildcardSubscription(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	topics := map[string]int{}
	r.mgr.Subscribe("*/*", func(_ string, d Datum) { topics[d.Topic]++ })
	r.k.At(0, func() {
		ox := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		pu := MustConnect(r.k, r.net, pumpDesc("pump1"), ConnectConfig{})
		r.k.After(50*time.Millisecond, func() {
			ox.Publish("spo2", 98, true, 1, r.k.Now())
			pu.Publish("infusion-rate", 0.05, true, 1, r.k.Now())
		})
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if topics["ox1/spo2"] != 1 || topics["pump1/infusion-rate"] != 1 {
		t.Fatalf("topics = %v", topics)
	}
}

func TestCommandRoundTrip(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	stopped := false
	var ackOK bool
	var ackErr error
	r.k.At(0, func() {
		p := MustConnect(r.k, r.net, pumpDesc("pump1"), ConnectConfig{})
		p.Handle("stop", func(map[string]float64) error { stopped = true; return nil })
		r.k.After(50*time.Millisecond, func() {
			r.mgr.SendCommand("pump1", "stop", nil, time.Second, func(a CommandAck, err error) {
				ackOK, ackErr = a.OK, err
			})
		})
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Fatal("command did not execute")
	}
	if !ackOK || ackErr != nil {
		t.Fatalf("ack = %v, err = %v", ackOK, ackErr)
	}
}

func TestCommandErrorPropagates(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	var ack CommandAck
	r.k.At(0, func() {
		p := MustConnect(r.k, r.net, pumpDesc("pump1"), ConnectConfig{})
		p.Handle("stop", func(map[string]float64) error { return errors.New("valve jammed") })
		r.k.After(50*time.Millisecond, func() {
			r.mgr.SendCommand("pump1", "stop", nil, time.Second, func(a CommandAck, err error) { ack = a })
		})
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if ack.OK || ack.Err != "valve jammed" {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestUnknownCommandNacked(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	var ack CommandAck
	r.k.At(0, func() {
		MustConnect(r.k, r.net, pumpDesc("pump1"), ConnectConfig{})
		r.k.After(50*time.Millisecond, func() {
			r.mgr.SendCommand("pump1", "self-destruct", nil, time.Second, func(a CommandAck, err error) { ack = a })
		})
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("unknown command acked OK")
	}
}

func TestCommandTimeoutOnDeadDevice(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	var timedOut bool
	r.k.At(0, func() {
		p := MustConnect(r.k, r.net, pumpDesc("pump1"), ConnectConfig{})
		r.k.After(50*time.Millisecond, func() {
			p.Crash()
			r.mgr.SendCommand("pump1", "stop", nil, 500*time.Millisecond, func(a CommandAck, err error) {
				timedOut = err != nil
			})
		})
	})
	if err := r.k.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("command to crashed device did not time out")
	}
}

func TestLivenessDetectsCrash(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	transitions := map[bool]int{}
	var lastAlive bool
	r.mgr.WatchDevices(func(id string, st DeviceStatus) {
		if id == "ox1" {
			transitions[st.Alive]++
			lastAlive = st.Alive
		}
	})
	r.k.At(0, func() {
		c := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		r.k.After(2*time.Second, func() { c.Crash() })
	})
	if err := r.k.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if transitions[true] == 0 {
		t.Fatal("no admission notification")
	}
	if transitions[false] == 0 {
		t.Fatal("crash never detected by liveness sweep")
	}
	if lastAlive {
		t.Fatal("device still considered alive at end")
	}
	st, _ := r.mgr.Device("ox1")
	if st.Alive {
		t.Fatal("status.Alive = true after crash")
	}
}

func TestLivenessRecovery(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	var events []bool
	r.mgr.WatchDevices(func(id string, st DeviceStatus) { events = append(events, st.Alive) })
	r.k.At(0, func() {
		c := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		r.k.After(2*time.Second, func() { c.Crash() })
		// Reconnect (device restart) at t=8s with a fresh connection.
		r.k.After(8*time.Second, func() {
			MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		})
	})
	if err := r.k.Run(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Expect alive -> dead -> alive somewhere in the sequence.
	wantSeq := []bool{true, false, true}
	i := 0
	for _, e := range events {
		if i < len(wantSeq) && e == wantSeq[i] {
			i++
		}
	}
	if i != len(wantSeq) {
		t.Fatalf("liveness transitions = %v, want to contain %v in order", events, wantSeq)
	}
}

func TestByeRemovesDevice(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	r.k.At(0, func() {
		c := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		r.k.After(time.Second, func() { c.Bye() })
	})
	if err := r.k.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.mgr.Device("ox1"); ok {
		t.Fatal("device still registered after Bye")
	}
	if got := r.mgr.Devices(); len(got) != 0 {
		t.Fatalf("devices = %v", got)
	}
}

func TestPublishUnderForeignPrefixRejected(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	var received int
	r.mgr.Subscribe("*/*", func(string, Datum) { received++ })
	r.k.At(0, func() {
		// A malicious or buggy device publishing under another device's ID.
		c := MustConnect(r.k, r.net, oximeterDesc("evil"), ConnectConfig{})
		r.k.After(100*time.Millisecond, func() {
			// Hand-craft a publish claiming pump1's topic, framed with
			// the manager's own (binary) codec so the frame decodes and
			// the topic-prefix enforcement itself is what rejects it.
			data, err := NewBinaryCodec().AppendEnvelope(nil, MsgPublish, "evil", r.mgr.Addr(), 99, r.k.Now(), &Datum{
				Topic: "pump1/infusion-rate", Value: 0, Valid: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			r.net.Send("evil", r.mgr.Addr(), "publish", data)
			_ = c
		})
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if received != 0 {
		t.Fatal("spoofed-topic publish was routed")
	}
	if r.mgr.Malformed == 0 {
		t.Fatal("spoofed publish not counted as malformed")
	}
}

func TestDuplicatedFramesDeduplicated(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.LinkParams{
		Latency: 2 * time.Millisecond, DupProb: 1, // every frame duplicated
	})
	mgr := MustNewManager(k, net, DefaultManagerConfig())
	var data int
	mgr.Subscribe("*/*", func(string, Datum) { data++ })
	k.At(0, func() {
		c := MustConnect(k, net, oximeterDesc("ox1"), ConnectConfig{})
		k.After(100*time.Millisecond, func() {
			c.Publish("spo2", 97, true, 1, k.Now())
		})
	})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if data != 1 {
		t.Fatalf("received %d copies, want 1 (anti-replay dedup)", data)
	}
	if mgr.ReplayRejected == 0 {
		t.Fatal("duplicate not counted")
	}
}

func TestMalformedPayloadCounted(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	r.k.At(0, func() {
		r.net.Send("x", r.mgr.Addr(), "junk", []byte("{not json"))
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if r.mgr.Malformed != 1 {
		t.Fatalf("malformed = %d, want 1", r.mgr.Malformed)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	data, err := Encode(MsgPublish, "d1", "mgr", 7, 123*sim.Millisecond, Datum{
		Topic: "d1/spo2", Value: 96.5, Valid: true, Quality: 0.8, Sampled: 120 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != MsgPublish || env.From != "d1" || env.Seq != 7 {
		t.Fatalf("envelope = %+v", env)
	}
	var d Datum
	if err := env.DecodeBody(&d); err != nil {
		t.Fatal(err)
	}
	if d.Value != 96.5 || d.Topic != "d1/spo2" {
		t.Fatalf("datum = %+v", d)
	}
	// Signing bytes must not depend on the Auth field.
	sig1 := env.SigningBytes()
	env.Auth = []byte("tag")
	sig2 := env.SigningBytes()
	if string(sig1) != string(sig2) {
		t.Fatal("SigningBytes varies with Auth field")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("{}"), []byte(`{"type":"x"}`), []byte("][")} {
		if _, err := Decode(b); err == nil {
			t.Fatalf("Decode(%q) accepted", b)
		}
	}
}

func TestPublishUnadvertisedCapabilityPanics(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	r.k.At(0, func() {
		c := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		defer func() {
			if recover() == nil {
				t.Error("publishing unadvertised capability did not panic")
			}
		}()
		c.Publish("etco2", 38, true, 1, r.k.Now())
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestHandleUnadvertisedCommandPanics(t *testing.T) {
	r := newRig(t, DefaultManagerConfig())
	r.k.At(0, func() {
		c := MustConnect(r.k, r.net, oximeterDesc("ox1"), ConnectConfig{})
		defer func() {
			if recover() == nil {
				t.Error("handling unadvertised command did not panic")
			}
		}()
		c.Handle("stop", func(map[string]float64) error { return nil })
	})
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
}
