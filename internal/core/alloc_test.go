package core

import (
	"testing"
	"time"

	"repro/internal/mednet"
	"repro/internal/sim"
)

// allocRig is one manager + one device over a healthy link, admitted and
// warmed, for the steady-state allocation gates.
type allocRig struct {
	k    *sim.Kernel
	net  *mednet.Network
	mgr  *Manager
	conn *DeviceConn
}

func newAllocRig(t testing.TB) *allocRig {
	t.Helper()
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	mgr := MustNewManager(k, net, DefaultManagerConfig())
	conn := MustConnect(k, net, Descriptor{
		ID: "dev1", Kind: KindPulseOximeter,
		Capabilities: []Capability{
			{Name: "spo2", Class: ClassSensor, Criticality: 3},
			{Name: "stop", Class: ClassActuator, Criticality: 3},
		},
	}, ConnectConfig{})
	conn.Handle("stop", func(map[string]float64) error { return nil })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if !conn.Admitted() {
		t.Fatal("device not admitted")
	}
	return &allocRig{k: k, net: net, mgr: mgr, conn: conn}
}

// The steady-state publish path — typed body encode into a pooled wire
// buffer, delivery, binary decode with interned strings, subscriber
// dispatch — must be allocation-free end to end.
func TestAllocsPublishPath(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	r := newAllocRig(t)
	delivered := 0
	r.mgr.Subscribe("*/spo2", func(_ string, d Datum) {
		if d.Valid {
			delivered++
		}
	})
	publish := func() {
		r.conn.Publish("spo2", 97.5, true, 1, r.k.Now())
		if err := r.k.Run(r.k.Now() + 10*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	publish() // warm buffers, intern table, topic cache
	before := delivered
	if got := testing.AllocsPerRun(2000, publish); got != 0 {
		t.Fatalf("publish path allocates %v/op, want 0", got)
	}
	if delivered-before < 2000 {
		t.Fatalf("only %d publications delivered", delivered-before)
	}
}

// The steady-state command/ack round trip — command encode, device
// decode + handler dispatch, ack encode, manager ack decode with the
// pending-command slot pooled — must be allocation-free end to end
// (minus the caller's own args map and callback, which the caller owns).
func TestAllocsCommandAckPath(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	r := newAllocRig(t)
	acked := 0
	onAck := func(ack CommandAck, err error) {
		if err == nil && ack.OK {
			acked++
		}
	}
	roundTrip := func() {
		r.mgr.SendCommand("dev1", "stop", nil, time.Second, onAck)
		if err := r.k.Run(r.k.Now() + 20*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm the pendingCmd pool and wire buffers
	before := acked
	if got := testing.AllocsPerRun(2000, roundTrip); got != 0 {
		t.Fatalf("command/ack path allocates %v/op, want 0", got)
	}
	if acked-before < 2000 {
		t.Fatalf("only %d commands acknowledged", acked-before)
	}
	if r.conn.CommandsOK < 2000 {
		t.Fatalf("device executed only %d commands", r.conn.CommandsOK)
	}
}

// Fire-and-forget commands (nil callback) skip the pending table
// entirely and must also be allocation-free.
func TestAllocsFireAndForgetCommand(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	r := newAllocRig(t)
	send := func() {
		r.mgr.SendCommand("dev1", "stop", nil, time.Second, nil)
		if err := r.k.Run(r.k.Now() + 20*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	send()
	if got := testing.AllocsPerRun(2000, send); got != 0 {
		t.Fatalf("fire-and-forget command allocates %v/op, want 0", got)
	}
}
