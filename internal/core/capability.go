package core

import (
	"errors"
	"fmt"
	"strings"
)

// DeviceKind classifies a device for admission checks and app matching.
type DeviceKind string

// Kinds used by the scenarios in the paper.
const (
	KindInfusionPump  DeviceKind = "infusion-pump"
	KindPulseOximeter DeviceKind = "pulse-oximeter"
	KindVentilator    DeviceKind = "ventilator"
	KindXRay          DeviceKind = "x-ray"
	KindMonitor       DeviceKind = "patient-monitor"
	KindBed           DeviceKind = "hospital-bed"
	KindCapnograph    DeviceKind = "capnograph"
)

// CapabilityClass distinguishes what a capability does.
type CapabilityClass string

const (
	ClassSensor   CapabilityClass = "sensor"   // publishes measurements
	ClassActuator CapabilityClass = "actuator" // accepts commands
	ClassSetting  CapabilityClass = "setting"  // accepts configuration
	ClassEvent    CapabilityClass = "event"    // publishes discrete events
)

// Capability is one named function a device offers. Sensor capabilities
// publish on topic "<deviceID>/<name>"; actuator capabilities accept
// commands named "<name>".
type Capability struct {
	Name  string          `json:"name"`
	Class CapabilityClass `json:"class"`
	Unit  string          `json:"unit,omitempty"`
	// Criticality is the FDA-style class of the function (1 = lowest,
	// 3 = highest). The mixed-criticality scenario (III.l) needs this:
	// a Class I bed publishes context events consumed by a Class III
	// monitoring function.
	Criticality int `json:"criticality"`
}

// Descriptor is the self-description a device transmits when announcing.
type Descriptor struct {
	ID           string       `json:"id"`
	Kind         DeviceKind   `json:"kind"`
	Manufacturer string       `json:"manufacturer"`
	Model        string       `json:"model"`
	Version      string       `json:"version"`
	Capabilities []Capability `json:"capabilities"`
}

// Validate reports an error for descriptors unusable for admission.
func (d Descriptor) Validate() error {
	if d.ID == "" {
		return errors.New("core: descriptor missing ID")
	}
	if strings.ContainsAny(d.ID, "/ \t\n") {
		return fmt.Errorf("core: device ID %q contains reserved characters", d.ID)
	}
	if d.Kind == "" {
		return errors.New("core: descriptor missing kind")
	}
	seen := make(map[string]bool, len(d.Capabilities))
	for _, c := range d.Capabilities {
		if c.Name == "" {
			return fmt.Errorf("core: device %s has unnamed capability", d.ID)
		}
		if seen[c.Name] {
			return fmt.Errorf("core: device %s duplicates capability %q", d.ID, c.Name)
		}
		seen[c.Name] = true
		switch c.Class {
		case ClassSensor, ClassActuator, ClassSetting, ClassEvent:
		default:
			return fmt.Errorf("core: device %s capability %q has unknown class %q", d.ID, c.Name, c.Class)
		}
		if c.Criticality < 1 || c.Criticality > 3 {
			return fmt.Errorf("core: device %s capability %q criticality %d outside [1,3]", d.ID, c.Name, c.Criticality)
		}
	}
	return nil
}

// Has reports whether the descriptor offers a capability with the name and
// class.
func (d Descriptor) Has(name string, class CapabilityClass) bool {
	for _, c := range d.Capabilities {
		if c.Name == name && c.Class == class {
			return true
		}
	}
	return false
}

// Requirement expresses what a clinical scenario needs from a device slot
// before the ICE may compose it (the "requirements for devices that can be
// safely used in a scenario" of challenge (f)).
type Requirement struct {
	Kind         DeviceKind
	Capabilities []Capability // name+class must match; unit if non-empty
}

// SatisfiedBy reports whether the descriptor can fill this requirement,
// with a reason when it cannot.
func (r Requirement) SatisfiedBy(d Descriptor) (bool, string) {
	if r.Kind != "" && r.Kind != d.Kind {
		return false, fmt.Sprintf("kind %s does not match required %s", d.Kind, r.Kind)
	}
	for _, want := range r.Capabilities {
		found := false
		for _, have := range d.Capabilities {
			if have.Name == want.Name && have.Class == want.Class &&
				(want.Unit == "" || want.Unit == have.Unit) {
				found = true
				break
			}
		}
		if !found {
			return false, fmt.Sprintf("missing capability %s/%s", want.Name, want.Class)
		}
	}
	return true, ""
}

// Topic returns the bus topic a device publishes a sensor capability on.
func Topic(deviceID, capability string) string {
	return deviceID + "/" + capability
}

// SplitTopic decomposes a topic into device and capability. ok is false
// for malformed topics.
func SplitTopic(topic string) (deviceID, capability string, ok bool) {
	i := strings.IndexByte(topic, '/')
	if i <= 0 || i == len(topic)-1 {
		return "", "", false
	}
	return topic[:i], topic[i+1:], true
}

// MatchTopic matches a topic against a pattern where "*" matches a whole
// segment: "pump1/*" matches every capability of pump1; "*/spo2" matches
// spo2 from any device; "*/*" matches everything.
func MatchTopic(pattern, topic string) bool {
	pd, pc, ok := SplitTopic(pattern)
	if !ok {
		return pattern == topic
	}
	td, tc, ok := SplitTopic(topic)
	if !ok {
		return false
	}
	if pd != "*" && pd != td {
		return false
	}
	if pc != "*" && pc != tc {
		return false
	}
	return true
}
