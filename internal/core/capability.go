package core

import (
	"fmt"
	"strings"

	"repro/internal/icewire"
)

// Device self-description travels on the wire (the body of a
// MsgAnnounce), so the types live in internal/icewire next to their
// codecs; core aliases them.
type (
	DeviceKind      = icewire.DeviceKind
	CapabilityClass = icewire.CapabilityClass
	Capability      = icewire.Capability
	Descriptor      = icewire.Descriptor
)

// Kinds used by the scenarios in the paper.
const (
	KindInfusionPump  = icewire.KindInfusionPump
	KindPulseOximeter = icewire.KindPulseOximeter
	KindVentilator    = icewire.KindVentilator
	KindXRay          = icewire.KindXRay
	KindMonitor       = icewire.KindMonitor
	KindBed           = icewire.KindBed
	KindCapnograph    = icewire.KindCapnograph
)

const (
	ClassSensor   = icewire.ClassSensor
	ClassActuator = icewire.ClassActuator
	ClassSetting  = icewire.ClassSetting
	ClassEvent    = icewire.ClassEvent
)

// Requirement expresses what a clinical scenario needs from a device slot
// before the ICE may compose it (the "requirements for devices that can be
// safely used in a scenario" of challenge (f)).
type Requirement struct {
	Kind         DeviceKind
	Capabilities []Capability // name+class must match; unit if non-empty
}

// SatisfiedBy reports whether the descriptor can fill this requirement,
// with a reason when it cannot.
func (r Requirement) SatisfiedBy(d Descriptor) (bool, string) {
	if r.Kind != "" && r.Kind != d.Kind {
		return false, fmt.Sprintf("kind %s does not match required %s", d.Kind, r.Kind)
	}
	for _, want := range r.Capabilities {
		found := false
		for _, have := range d.Capabilities {
			if have.Name == want.Name && have.Class == want.Class &&
				(want.Unit == "" || want.Unit == have.Unit) {
				found = true
				break
			}
		}
		if !found {
			return false, fmt.Sprintf("missing capability %s/%s", want.Name, want.Class)
		}
	}
	return true, ""
}

// Topic returns the bus topic a device publishes a sensor capability on.
func Topic(deviceID, capability string) string {
	return deviceID + "/" + capability
}

// SplitTopic decomposes a topic into device and capability. ok is false
// for malformed topics.
func SplitTopic(topic string) (deviceID, capability string, ok bool) {
	i := strings.IndexByte(topic, '/')
	if i <= 0 || i == len(topic)-1 {
		return "", "", false
	}
	return topic[:i], topic[i+1:], true
}

// MatchTopic matches a topic against a pattern where "*" matches a whole
// segment: "pump1/*" matches every capability of pump1; "*/spo2" matches
// spo2 from any device; "*/*" matches everything.
func MatchTopic(pattern, topic string) bool {
	pd, pc, ok := SplitTopic(pattern)
	if !ok {
		return pattern == topic
	}
	td, tc, ok := SplitTopic(topic)
	if !ok {
		return false
	}
	if pd != "*" && pd != td {
		return false
	}
	if pc != "*" && pc != tc {
		return false
	}
	return true
}
