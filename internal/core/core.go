// Package core implements the paper's central infrastructure challenge
// (III.k): an Integrated Clinical Environment (ICE) in the spirit of ASTM
// F2761 / the MD PnP initiative. It provides
//
//   - a capability model describing what each medical device senses,
//     actuates and accepts as settings;
//   - plug-and-play discovery: devices announce themselves to the ICE
//     manager, are admitted against a required-capability check, and are
//     monitored for liveness by heartbeats;
//   - a typed publish/subscribe topic bus carrying physiological data;
//   - a command channel with acknowledgements for actuator control;
//   - hooks for message authentication (internal/security) and auditing.
//
// Everything runs over a simulated lossy network (internal/mednet) on the
// shared virtual clock, so supervisors built on this package (see
// internal/closedloop) are exercised against realistic communication
// faults — the paper's prerequisite for arguing safety of closed-loop
// medical device systems.
package core
