package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/icewire"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// Authenticator is the hook internal/security plugs into. Implementations
// must be symmetric: Sign produces the tag Verify checks.
type Authenticator interface {
	// Sign returns the authentication tag for the envelope's SigningBytes.
	Sign(sender string, signing []byte) ([]byte, error)
	// Verify checks the tag; a non-nil error rejects the message.
	Verify(sender string, signing, tag []byte) error
}

// AdmissionPolicy decides whether an announcing device may join the ICE.
type AdmissionPolicy func(Descriptor) (ok bool, reason string)

// AdmitAll accepts every structurally valid descriptor.
func AdmitAll(Descriptor) (bool, string) { return true, "" }

// RequireAny admits a device if it satisfies at least one requirement —
// the static half of the static/dynamic safety-check split challenge (f)
// describes.
func RequireAny(reqs ...Requirement) AdmissionPolicy {
	return func(d Descriptor) (bool, string) {
		if len(reqs) == 0 {
			return true, ""
		}
		var lastReason string
		for _, r := range reqs {
			if ok, reason := r.SatisfiedBy(d); ok {
				return true, ""
			} else {
				lastReason = reason
			}
		}
		return false, lastReason
	}
}

// ManagerConfig configures the ICE manager.
type ManagerConfig struct {
	Addr              string        // network address (default "ice-manager")
	HeartbeatInterval time.Duration // expected device heartbeat period
	LivenessTimeout   time.Duration // silence before a device is declared stale
	Admission         AdmissionPolicy
	Auth              Authenticator // nil disables authentication

	// Codec selects the wire encoding; nil means a fresh instance of the
	// default binary codec. Pass the same instance to every endpoint of
	// a cell to share its intern table and encode accounting (codec
	// instances are single-threaded, like the cell itself).
	Codec Codec
}

// DefaultManagerConfig returns sane clinical defaults: 1 s heartbeats,
// 3.5 s liveness timeout.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{
		Addr:              "ice-manager",
		HeartbeatInterval: time.Second,
		LivenessTimeout:   3500 * time.Millisecond,
		Admission:         AdmitAll,
	}
}

// DeviceStatus is the manager's view of one connected device.
type DeviceStatus struct {
	Descriptor   Descriptor
	Admitted     bool
	Alive        bool
	LastSeen     sim.Time
	AuthFailures uint64
}

// replayWindow implements IPsec-style sliding-window anti-replay so that
// network duplicates and replayed envelopes are rejected while jitter-
// reordered fresh messages still pass.
type replayWindow struct {
	highest uint64
	bitmap  uint64 // bit i set => (highest - i) seen, i in [0,63]
	primed  bool
}

// admit reports whether seq is fresh, and records it.
func (w *replayWindow) admit(seq uint64) bool {
	if !w.primed {
		w.primed = true
		w.highest = seq
		w.bitmap = 1
		return true
	}
	switch {
	case seq > w.highest:
		shift := seq - w.highest
		if shift >= 64 {
			w.bitmap = 1
		} else {
			w.bitmap = w.bitmap<<shift | 1
		}
		w.highest = seq
		return true
	case w.highest-seq >= 64:
		return false // too old to judge: reject
	default:
		bit := uint64(1) << (w.highest - seq)
		if w.bitmap&bit != 0 {
			return false // duplicate
		}
		w.bitmap |= bit
		return true
	}
}

type managedDevice struct {
	status DeviceStatus
	replay replayWindow
}

type subscription struct {
	pattern string
	fn      func(from string, d Datum)
}

// pendingCmd tracks one acknowledged command in flight. It doubles as the
// argument of its own timeout event (scheduled closure-free via AfterFunc
// and canceled by EventID when the ack lands).
type pendingCmd struct {
	m        *Manager
	id       uint64
	name     string
	deviceID string
	wait     time.Duration
	fn       func(CommandAck, error)
	timeout  sim.EventID
}

// cmdTimeout fires when a command's acknowledgement never arrived;
// package-level so scheduling it allocates nothing beyond the pendingCmd.
// The slot is recycled before fn runs, since fn may send a retry.
func cmdTimeout(arg any) {
	p := arg.(*pendingCmd)
	if q, ok := p.m.pending[p.id]; !ok || q != p {
		return // acked (or superseded) in the meantime
	}
	delete(p.m.pending, p.id)
	m, id, name, deviceID, wait, fn := p.m, p.id, p.name, p.deviceID, p.wait, p.fn
	*p = pendingCmd{}
	m.cmdPool = append(m.cmdPool, p)
	fn(CommandAck{ID: id}, fmt.Errorf("core: command %s to %s timed out after %v", name, deviceID, wait))
}

// Manager is the ICE supervisor host and network controller: it admits
// devices, tracks liveness, routes published data to subscribed apps, and
// carries acknowledged commands to actuators.
type Manager struct {
	cfg     ManagerConfig
	k       *sim.Kernel
	net     *mednet.Network
	codec   Codec
	devices map[string]*managedDevice
	subs    []subscription
	watch   []func(id string, st DeviceStatus)
	pending map[uint64]*pendingCmd
	seq     uint64
	cmdSeq  uint64
	sweeper *sim.Ticker

	// cmdPool recycles pendingCmd slots so acknowledged commands do not
	// allocate one per send at steady state.
	cmdPool []*pendingCmd

	// Scratch state for the zero-allocation receive path: each incoming
	// frame decodes into these manager-owned slots (handlers run
	// synchronously, one message at a time, so the slots are never live
	// across messages), keeping pointers to them off the heap-escape
	// path that local variables passed through the Codec interface
	// would take.
	envScratch   Envelope
	datumScratch Datum
	ackScratch   CommandAck
	cmdScratch   Command // outgoing SendCommand body
	sigScratch   []byte  // signing-bytes buffer for Sign/Verify

	// Counters for experiments and audit.
	AuthRejected   uint64
	ReplayRejected uint64
	Malformed      uint64
}

// NewManager attaches a manager to the network and starts liveness sweeps.
func NewManager(k *sim.Kernel, net *mednet.Network, cfg ManagerConfig) (*Manager, error) {
	if cfg.Addr == "" {
		cfg.Addr = "ice-manager"
	}
	if cfg.HeartbeatInterval <= 0 || cfg.LivenessTimeout <= 0 {
		return nil, errors.New("core: heartbeat interval and liveness timeout must be positive")
	}
	if cfg.LivenessTimeout <= cfg.HeartbeatInterval {
		return nil, errors.New("core: liveness timeout must exceed heartbeat interval")
	}
	if cfg.Admission == nil {
		cfg.Admission = AdmitAll
	}
	if cfg.Codec == nil {
		cfg.Codec = icewire.NewBinary()
	}
	m := &Manager{
		cfg:     cfg,
		k:       k,
		net:     net,
		codec:   cfg.Codec,
		devices: make(map[string]*managedDevice),
		pending: make(map[uint64]*pendingCmd),
	}
	if cfg.Auth != nil {
		// Signing-bytes scratch, used only by the JSON debug codec (the
		// binary codec's signing window is a frame subslice).
		m.sigScratch = make([]byte, 0, 1024)
	}
	net.Register(cfg.Addr, m.onMessage)
	m.sweeper = k.Every(cfg.HeartbeatInterval, func(sim.Time) { m.sweepLiveness() })
	return m, nil
}

// MustNewManager is NewManager for known-good configuration.
func MustNewManager(k *sim.Kernel, net *mednet.Network, cfg ManagerConfig) *Manager {
	m, err := NewManager(k, net, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Addr returns the manager's network address.
func (m *Manager) Addr() string { return m.cfg.Addr }

// Reset returns the manager to its just-constructed state for a
// prototype clone: the device registry, in-flight commands, sequence
// counters, and audit counters clear, and the liveness sweeper re-arms
// on the freshly reset kernel — NewManager's one scheduling call,
// replayed in the same position so the clone's event sequence matches a
// from-scratch build. Subscriptions, watchers, the codec, command-slot
// pool, and the network registration are construction-time wiring and
// are retained. Callers must Reset the kernel first.
func (m *Manager) Reset() {
	clear(m.devices)
	for _, p := range m.pending {
		*p = pendingCmd{}
		m.cmdPool = append(m.cmdPool, p)
	}
	clear(m.pending)
	m.seq = 0
	m.cmdSeq = 0
	m.AuthRejected = 0
	m.ReplayRejected = 0
	m.Malformed = 0
	m.sweeper.Reset()
}

// Close detaches the manager from the network and stops sweeps.
func (m *Manager) Close() {
	m.sweeper.Stop()
	m.net.Unregister(m.cfg.Addr)
}

// Subscribe routes every published datum whose topic matches the pattern
// ("device/capability", "*" wildcards per segment) to fn.
func (m *Manager) Subscribe(pattern string, fn func(from string, d Datum)) {
	if fn == nil {
		panic("core: nil subscription callback")
	}
	m.subs = append(m.subs, subscription{pattern: pattern, fn: fn})
}

// WatchDevices registers fn to be called on every admission, departure and
// liveness transition, with the device's current status.
func (m *Manager) WatchDevices(fn func(id string, st DeviceStatus)) {
	m.watch = append(m.watch, fn)
}

// Device reports the status of a connected device.
func (m *Manager) Device(id string) (DeviceStatus, bool) {
	d, ok := m.devices[id]
	if !ok {
		return DeviceStatus{}, false
	}
	return d.status, true
}

// Devices lists the IDs of all admitted devices.
func (m *Manager) Devices() []string {
	var out []string
	for id, d := range m.devices {
		if d.status.Admitted {
			out = append(out, id)
		}
	}
	return out
}

// SendCommand delivers an actuator command to a device and invokes fn with
// the acknowledgement, or with an error after timeout. fn may be nil for
// fire-and-forget.
func (m *Manager) SendCommand(deviceID, name string, args map[string]float64, timeout time.Duration, fn func(CommandAck, error)) {
	m.cmdSeq++
	m.cmdScratch = Command{ID: m.cmdSeq, Name: name, Args: args}
	if fn != nil {
		var p *pendingCmd
		if last := len(m.cmdPool) - 1; last >= 0 {
			p = m.cmdPool[last]
			m.cmdPool = m.cmdPool[:last]
		} else {
			p = &pendingCmd{}
		}
		*p = pendingCmd{m: m, id: m.cmdSeq, name: name, deviceID: deviceID, wait: timeout, fn: fn}
		p.timeout = m.k.AfterFunc(timeout, cmdTimeout, p)
		m.pending[m.cmdSeq] = p
	}
	m.send(deviceID, MsgCommand, &m.cmdScratch)
}

// send encodes one envelope straight into a pooled network buffer —
// and, when authentication is on, signs the encoded frame once and
// patches the tag in, instead of the historical decode → set Auth →
// re-marshal round trip. See sendFrame.
func (m *Manager) send(to string, t MsgType, body any) {
	m.seq++
	sendFrame(m.net, m.codec, m.cfg.Auth, &m.sigScratch, t, m.cfg.Addr, to, m.seq, m.k.Now(), body)
}

func (m *Manager) onMessage(msg mednet.Message) {
	e, err := m.codec.Decode(msg.Payload)
	if err != nil {
		m.Malformed++
		return
	}
	// Decode into the manager-owned scratch slot: handlers run
	// synchronously one message at a time, and a pointer to the slot
	// never forces a per-message heap allocation the way a stack
	// variable escaping through the Codec interface would.
	m.envScratch = e
	env := &m.envScratch
	if err := verifyEnvelope(m.cfg.Auth, &m.sigScratch, env, msg.Payload); err != nil {
		m.AuthRejected++
		if d, ok := m.devices[env.From]; ok {
			d.status.AuthFailures++
		}
		return
	}
	// Anti-replay per sender (also deduplicates network-duplicated frames).
	if env.Type != MsgAnnounce { // announce may legitimately restart seq after reboot
		if d, ok := m.devices[env.From]; ok {
			if !d.replay.admit(env.Seq) {
				m.ReplayRejected++
				return
			}
		}
	}

	switch env.Type {
	case MsgAnnounce:
		m.handleAnnounce(env)
	case MsgPublish:
		m.handlePublish(env)
	case MsgCommandAck:
		m.handleCommandAck(env)
	case MsgHeartbeat:
		m.touch(env.From)
	case MsgBye:
		m.handleBye(env)
	default:
		m.Malformed++
	}
}

func (m *Manager) handleAnnounce(env *Envelope) {
	var desc Descriptor
	if err := env.DecodeBody(&desc); err != nil {
		m.Malformed++
		return
	}
	if desc.ID != env.From {
		m.Malformed++
		return
	}
	result := AdmitResult{OK: true}
	if err := desc.Validate(); err != nil {
		result = AdmitResult{OK: false, Reason: err.Error()}
	} else if ok, reason := m.cfg.Admission(desc); !ok {
		result = AdmitResult{OK: false, Reason: reason}
	}
	if result.OK {
		d := &managedDevice{status: DeviceStatus{
			Descriptor: desc, Admitted: true, Alive: true, LastSeen: m.k.Now(),
		}}
		d.replay.admit(env.Seq)
		m.devices[desc.ID] = d
		m.notify(desc.ID)
	}
	m.send(env.From, MsgAdmit, result)
}

func (m *Manager) handlePublish(env *Envelope) {
	d, ok := m.devices[env.From]
	if !ok || !d.status.Admitted {
		return // not admitted: data from unknown devices is discarded
	}
	if err := env.DecodeBody(&m.datumScratch); err != nil {
		m.Malformed++
		return
	}
	datum := m.datumScratch
	devID, _, ok := SplitTopic(datum.Topic)
	if !ok || devID != env.From {
		m.Malformed++ // devices may only publish under their own prefix
		return
	}
	m.touch(env.From)
	for _, s := range m.subs {
		if MatchTopic(s.pattern, datum.Topic) {
			s.fn(env.From, datum)
		}
	}
}

func (m *Manager) handleCommandAck(env *Envelope) {
	if err := env.DecodeBody(&m.ackScratch); err != nil {
		m.Malformed++
		return
	}
	ack := m.ackScratch
	m.touch(env.From)
	if p, ok := m.pending[ack.ID]; ok {
		delete(m.pending, ack.ID)
		m.k.Cancel(p.timeout)
		// Recycle before invoking fn: the callback may send a retry,
		// which pops from the pool.
		fn := p.fn
		*p = pendingCmd{}
		m.cmdPool = append(m.cmdPool, p)
		fn(ack, nil)
	}
}

func (m *Manager) handleBye(env *Envelope) {
	if _, ok := m.devices[env.From]; ok {
		delete(m.devices, env.From)
		for _, w := range m.watch {
			w(env.From, DeviceStatus{Admitted: false, Alive: false, LastSeen: m.k.Now()})
		}
	}
}

func (m *Manager) touch(id string) {
	d, ok := m.devices[id]
	if !ok {
		return
	}
	d.status.LastSeen = m.k.Now()
	if !d.status.Alive {
		d.status.Alive = true
		m.notify(id)
	}
}

func (m *Manager) sweepLiveness() {
	cutoff := m.k.Now() - sim.Time(m.cfg.LivenessTimeout)
	for id, d := range m.devices {
		if d.status.Alive && d.status.LastSeen < cutoff {
			d.status.Alive = false
			m.notify(id)
		}
	}
}

func (m *Manager) notify(id string) {
	st := m.devices[id].status
	for _, w := range m.watch {
		w(id, st)
	}
}
