package core

import (
	"fmt"
	"time"

	"repro/internal/icewire"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// CommandHandler executes one actuator command on the device. A non-nil
// error is reported back to the manager in the acknowledgement.
type CommandHandler func(args map[string]float64) error

// DeviceConn is the device-side ICE endpoint: it announces the device,
// sends heartbeats, publishes sensor data, and dispatches incoming
// commands to registered handlers. Concrete devices in internal/device
// embed one.
type DeviceConn struct {
	desc    Descriptor
	mgrAddr string
	k       *sim.Kernel
	net     *mednet.Network
	auth    Authenticator
	codec   Codec
	seq     uint64
	beat    *sim.Ticker
	replay  replayWindow

	admitted  bool
	admitErr  string
	onAdmit   []func(ok bool, reason string)
	handlers  map[string]CommandHandler
	connected bool

	// topics caches the capability -> "<id>/<capability>" strings so the
	// publish hot path never rebuilds them.
	topics map[string]string

	// Scratch state for the zero-allocation send/receive paths; see
	// Manager for the rationale.
	envScratch   Envelope
	datumScratch Datum
	cmdScratch   Command
	ackScratch   CommandAck
	admitScratch AdmitResult
	sigScratch   []byte

	// Counters for experiments.
	CommandsOK     uint64
	CommandsFailed uint64
	AuthRejected   uint64
}

// ConnectConfig carries the optional knobs for a device connection.
type ConnectConfig struct {
	ManagerAddr       string        // default "ice-manager"
	HeartbeatInterval time.Duration // default 1 s
	Auth              Authenticator // nil disables signing

	// Codec selects the wire encoding; nil means a fresh instance of
	// the default binary codec. See ManagerConfig.Codec.
	Codec Codec
}

// Connect registers the device on the network and announces it to the
// manager. The returned connection is live immediately; admission status
// arrives asynchronously via OnAdmit.
func Connect(k *sim.Kernel, net *mednet.Network, desc Descriptor, cfg ConnectConfig) (*DeviceConn, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if cfg.ManagerAddr == "" {
		cfg.ManagerAddr = "ice-manager"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.Codec == nil {
		cfg.Codec = icewire.NewBinary()
	}
	c := &DeviceConn{
		desc:      desc,
		mgrAddr:   cfg.ManagerAddr,
		k:         k,
		net:       net,
		auth:      cfg.Auth,
		codec:     cfg.Codec,
		handlers:  make(map[string]CommandHandler),
		topics:    make(map[string]string, len(desc.Capabilities)),
		connected: true,
	}
	if cfg.Auth != nil {
		// Signing-bytes scratch, used only by the JSON debug codec (the
		// binary codec's signing window is a frame subslice).
		c.sigScratch = make([]byte, 0, 1024)
	}
	net.Register(desc.ID, c.onMessage)
	c.sendEnvelope(MsgAnnounce, &c.desc)
	c.beat = k.Every(cfg.HeartbeatInterval, func(sim.Time) {
		if c.connected {
			c.sendEnvelope(MsgHeartbeat, nil)
		}
	})
	return c, nil
}

// MustConnect is Connect for known-good descriptors.
func MustConnect(k *sim.Kernel, net *mednet.Network, desc Descriptor, cfg ConnectConfig) *DeviceConn {
	c, err := Connect(k, net, desc, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset replays Connect's runtime side effects for a prototype clone:
// admission state, the replay window, the envelope sequence, and the
// counters clear; then the endpoint re-registers on the network,
// re-announces itself (drawing the same network RNG sequence a fresh
// Connect would), and re-arms its heartbeat ticker — the exact tail of
// Connect, replayed so the clone's scheduling order matches a
// from-scratch build. Handlers, admission callbacks, the codec, and the
// topic cache are retained. Callers must Reset the kernel and network
// first and reset device connections in their original Connect order.
func (c *DeviceConn) Reset() {
	c.seq = 0
	c.replay = replayWindow{}
	c.admitted = false
	c.admitErr = ""
	c.connected = true
	c.CommandsOK = 0
	c.CommandsFailed = 0
	c.AuthRejected = 0
	c.net.Register(c.desc.ID, c.onMessage)
	c.sendEnvelope(MsgAnnounce, &c.desc)
	c.beat.Reset()
}

// ID returns the device's network identity.
func (c *DeviceConn) ID() string { return c.desc.ID }

// Descriptor returns the announced self-description.
func (c *DeviceConn) Descriptor() Descriptor { return c.desc }

// Admitted reports the admission state (false until the admit reply lands).
func (c *DeviceConn) Admitted() bool { return c.admitted }

// OnAdmit registers fn to run when the admission result arrives.
func (c *DeviceConn) OnAdmit(fn func(ok bool, reason string)) {
	c.onAdmit = append(c.onAdmit, fn)
}

// Handle registers the executor for a named actuator command. The
// capability must have been declared in the descriptor; otherwise the
// registration panics — it is a programming error for a device to accept
// commands it did not advertise.
func (c *DeviceConn) Handle(name string, h CommandHandler) {
	if !c.desc.Has(name, ClassActuator) && !c.desc.Has(name, ClassSetting) {
		panic(fmt.Sprintf("core: device %s handling unadvertised command %q", c.desc.ID, name))
	}
	c.handlers[name] = h
}

// topic resolves the cached publish topic for a capability.
func (c *DeviceConn) topic(capability string) string {
	if t, ok := c.topics[capability]; ok {
		return t
	}
	t := Topic(c.desc.ID, capability)
	c.topics[capability] = t
	return t
}

// Publish sends one observation for a declared sensor or event capability.
func (c *DeviceConn) Publish(capability string, value float64, valid bool, quality float64, sampled sim.Time) {
	if !c.connected {
		return
	}
	if !c.desc.Has(capability, ClassSensor) && !c.desc.Has(capability, ClassEvent) {
		panic(fmt.Sprintf("core: device %s publishing unadvertised capability %q", c.desc.ID, capability))
	}
	c.datumScratch = Datum{
		Topic: c.topic(capability), Value: value, Valid: valid,
		Quality: quality, Sampled: sampled,
	}
	c.sendEnvelope(MsgPublish, &c.datumScratch)
}

// Bye leaves the ICE in an orderly fashion and detaches from the network.
func (c *DeviceConn) Bye() {
	if !c.connected {
		return
	}
	c.sendEnvelope(MsgBye, nil)
	c.Crash()
}

// Crash detaches abruptly: no farewell, heartbeats stop. The manager will
// notice via liveness timeout — this is the failure mode experiments inject.
func (c *DeviceConn) Crash() {
	c.connected = false
	c.beat.Stop()
	c.net.Unregister(c.desc.ID)
}

// Connected reports whether the device endpoint is attached.
func (c *DeviceConn) Connected() bool { return c.connected }

// sendEnvelope mirrors Manager.send: encode once into a pooled network
// buffer, sign the encoded frame, patch the tag in. See sendFrame.
func (c *DeviceConn) sendEnvelope(t MsgType, body any) {
	c.seq++
	sendFrame(c.net, c.codec, c.auth, &c.sigScratch, t, c.desc.ID, c.mgrAddr, c.seq, c.k.Now(), body)
}

func (c *DeviceConn) onMessage(msg mednet.Message) {
	e, err := c.codec.Decode(msg.Payload)
	if err != nil {
		return
	}
	c.envScratch = e
	env := &c.envScratch
	if err := verifyEnvelope(c.auth, &c.sigScratch, env, msg.Payload); err != nil {
		c.AuthRejected++
		return
	}
	if !c.replay.admit(env.Seq) {
		return
	}
	switch env.Type {
	case MsgAdmit:
		if env.DecodeBody(&c.admitScratch) != nil {
			return
		}
		res := c.admitScratch
		c.admitted = res.OK
		c.admitErr = res.Reason
		for _, fn := range c.onAdmit {
			fn(res.OK, res.Reason)
		}
	case MsgCommand:
		if env.DecodeBody(&c.cmdScratch) != nil {
			return
		}
		cmd := c.cmdScratch
		c.ackScratch = CommandAck{ID: cmd.ID, OK: true}
		if h, ok := c.handlers[cmd.Name]; !ok {
			c.ackScratch.OK = false
			c.ackScratch.Err = fmt.Sprintf("unknown command %q", cmd.Name)
		} else if err := h(cmd.Args); err != nil {
			c.ackScratch.OK = false
			c.ackScratch.Err = err.Error()
		}
		if c.ackScratch.OK {
			c.CommandsOK++
		} else {
			c.CommandsFailed++
		}
		c.sendEnvelope(MsgCommandAck, &c.ackScratch)
	}
}
