package core

import (
	"fmt"
	"time"

	"repro/internal/mednet"
	"repro/internal/sim"
)

// CommandHandler executes one actuator command on the device. A non-nil
// error is reported back to the manager in the acknowledgement.
type CommandHandler func(args map[string]float64) error

// DeviceConn is the device-side ICE endpoint: it announces the device,
// sends heartbeats, publishes sensor data, and dispatches incoming
// commands to registered handlers. Concrete devices in internal/device
// embed one.
type DeviceConn struct {
	desc    Descriptor
	mgrAddr string
	k       *sim.Kernel
	net     *mednet.Network
	auth    Authenticator
	seq     uint64
	beat    *sim.Ticker
	replay  replayWindow

	admitted  bool
	admitErr  string
	onAdmit   []func(ok bool, reason string)
	handlers  map[string]CommandHandler
	connected bool

	// Counters for experiments.
	CommandsOK     uint64
	CommandsFailed uint64
	AuthRejected   uint64
}

// ConnectConfig carries the optional knobs for a device connection.
type ConnectConfig struct {
	ManagerAddr       string        // default "ice-manager"
	HeartbeatInterval time.Duration // default 1 s
	Auth              Authenticator // nil disables signing
}

// Connect registers the device on the network and announces it to the
// manager. The returned connection is live immediately; admission status
// arrives asynchronously via OnAdmit.
func Connect(k *sim.Kernel, net *mednet.Network, desc Descriptor, cfg ConnectConfig) (*DeviceConn, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if cfg.ManagerAddr == "" {
		cfg.ManagerAddr = "ice-manager"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	c := &DeviceConn{
		desc:      desc,
		mgrAddr:   cfg.ManagerAddr,
		k:         k,
		net:       net,
		auth:      cfg.Auth,
		handlers:  make(map[string]CommandHandler),
		connected: true,
	}
	net.Register(desc.ID, c.onMessage)
	c.sendEnvelope(MsgAnnounce, desc)
	c.beat = k.Every(cfg.HeartbeatInterval, func(sim.Time) {
		if c.connected {
			c.sendEnvelope(MsgHeartbeat, nil)
		}
	})
	return c, nil
}

// MustConnect is Connect for known-good descriptors.
func MustConnect(k *sim.Kernel, net *mednet.Network, desc Descriptor, cfg ConnectConfig) *DeviceConn {
	c, err := Connect(k, net, desc, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the device's network identity.
func (c *DeviceConn) ID() string { return c.desc.ID }

// Descriptor returns the announced self-description.
func (c *DeviceConn) Descriptor() Descriptor { return c.desc }

// Admitted reports the admission state (false until the admit reply lands).
func (c *DeviceConn) Admitted() bool { return c.admitted }

// OnAdmit registers fn to run when the admission result arrives.
func (c *DeviceConn) OnAdmit(fn func(ok bool, reason string)) {
	c.onAdmit = append(c.onAdmit, fn)
}

// Handle registers the executor for a named actuator command. The
// capability must have been declared in the descriptor; otherwise the
// registration panics — it is a programming error for a device to accept
// commands it did not advertise.
func (c *DeviceConn) Handle(name string, h CommandHandler) {
	if !c.desc.Has(name, ClassActuator) && !c.desc.Has(name, ClassSetting) {
		panic(fmt.Sprintf("core: device %s handling unadvertised command %q", c.desc.ID, name))
	}
	c.handlers[name] = h
}

// Publish sends one observation for a declared sensor or event capability.
func (c *DeviceConn) Publish(capability string, value float64, valid bool, quality float64, sampled sim.Time) {
	if !c.connected {
		return
	}
	if !c.desc.Has(capability, ClassSensor) && !c.desc.Has(capability, ClassEvent) {
		panic(fmt.Sprintf("core: device %s publishing unadvertised capability %q", c.desc.ID, capability))
	}
	c.sendEnvelope(MsgPublish, Datum{
		Topic: Topic(c.desc.ID, capability), Value: value, Valid: valid,
		Quality: quality, Sampled: sampled,
	})
}

// Bye leaves the ICE in an orderly fashion and detaches from the network.
func (c *DeviceConn) Bye() {
	if !c.connected {
		return
	}
	c.sendEnvelope(MsgBye, nil)
	c.Crash()
}

// Crash detaches abruptly: no farewell, heartbeats stop. The manager will
// notice via liveness timeout — this is the failure mode experiments inject.
func (c *DeviceConn) Crash() {
	c.connected = false
	c.beat.Stop()
	c.net.Unregister(c.desc.ID)
}

// Connected reports whether the device endpoint is attached.
func (c *DeviceConn) Connected() bool { return c.connected }

func (c *DeviceConn) sendEnvelope(t MsgType, body any) {
	c.seq++
	data, err := Encode(t, c.desc.ID, c.mgrAddr, c.seq, c.k.Now(), body)
	if err != nil {
		panic(err)
	}
	if c.auth != nil {
		env, _ := Decode(data)
		if tag, err := c.auth.Sign(c.desc.ID, env.SigningBytes()); err == nil {
			env.Auth = tag
			data = mustMarshalEnvelope(env)
		}
	}
	c.net.Send(c.desc.ID, c.mgrAddr, string(t), data)
}

func (c *DeviceConn) onMessage(msg mednet.Message) {
	env, err := Decode(msg.Payload)
	if err != nil {
		return
	}
	if c.auth != nil {
		if err := c.auth.Verify(env.From, env.SigningBytes(), env.Auth); err != nil {
			c.AuthRejected++
			return
		}
	}
	if !c.replay.admit(env.Seq) {
		return
	}
	switch env.Type {
	case MsgAdmit:
		var res AdmitResult
		if env.DecodeBody(&res) != nil {
			return
		}
		c.admitted = res.OK
		c.admitErr = res.Reason
		for _, fn := range c.onAdmit {
			fn(res.OK, res.Reason)
		}
	case MsgCommand:
		var cmd Command
		if env.DecodeBody(&cmd) != nil {
			return
		}
		ack := CommandAck{ID: cmd.ID, OK: true}
		if h, ok := c.handlers[cmd.Name]; !ok {
			ack.OK = false
			ack.Err = fmt.Sprintf("unknown command %q", cmd.Name)
		} else if err := h(cmd.Args); err != nil {
			ack.OK = false
			ack.Err = err.Error()
		}
		if ack.OK {
			c.CommandsOK++
		} else {
			c.CommandsFailed++
		}
		c.sendEnvelope(MsgCommandAck, ack)
	}
}
