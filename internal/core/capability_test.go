package core

import (
	"testing"
	"testing/quick"
)

func oximeterDesc(id string) Descriptor {
	return Descriptor{
		ID: id, Kind: KindPulseOximeter, Manufacturer: "Acme", Model: "OX-9", Version: "1.0",
		Capabilities: []Capability{
			{Name: "spo2", Class: ClassSensor, Unit: "%", Criticality: 3},
			{Name: "heart-rate", Class: ClassSensor, Unit: "bpm", Criticality: 3},
		},
	}
}

func pumpDesc(id string) Descriptor {
	return Descriptor{
		ID: id, Kind: KindInfusionPump, Manufacturer: "Acme", Model: "PCA-1", Version: "2.1",
		Capabilities: []Capability{
			{Name: "infusion-rate", Class: ClassSensor, Unit: "mg/min", Criticality: 3},
			{Name: "stop", Class: ClassActuator, Criticality: 3},
			{Name: "resume", Class: ClassActuator, Criticality: 3},
			{Name: "bolus", Class: ClassActuator, Unit: "mg", Criticality: 3},
		},
	}
}

func TestDescriptorValidate(t *testing.T) {
	if err := oximeterDesc("ox1").Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Descriptor)
	}{
		{"empty id", func(d *Descriptor) { d.ID = "" }},
		{"slash in id", func(d *Descriptor) { d.ID = "a/b" }},
		{"space in id", func(d *Descriptor) { d.ID = "a b" }},
		{"empty kind", func(d *Descriptor) { d.Kind = "" }},
		{"unnamed cap", func(d *Descriptor) { d.Capabilities[0].Name = "" }},
		{"dup cap", func(d *Descriptor) { d.Capabilities[1].Name = d.Capabilities[0].Name }},
		{"bad class", func(d *Descriptor) { d.Capabilities[0].Class = "wat" }},
		{"criticality 0", func(d *Descriptor) { d.Capabilities[0].Criticality = 0 }},
		{"criticality 4", func(d *Descriptor) { d.Capabilities[0].Criticality = 4 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := oximeterDesc("ox1")
			c.mut(&d)
			if err := d.Validate(); err == nil {
				t.Fatalf("invalid descriptor accepted: %+v", d)
			}
		})
	}
}

func TestDescriptorHas(t *testing.T) {
	d := pumpDesc("p1")
	if !d.Has("stop", ClassActuator) {
		t.Fatal("missing stop actuator")
	}
	if d.Has("stop", ClassSensor) {
		t.Fatal("class confusion")
	}
	if d.Has("nope", ClassActuator) {
		t.Fatal("phantom capability")
	}
}

func TestRequirementSatisfiedBy(t *testing.T) {
	req := Requirement{
		Kind: KindInfusionPump,
		Capabilities: []Capability{
			{Name: "stop", Class: ClassActuator},
			{Name: "infusion-rate", Class: ClassSensor, Unit: "mg/min"},
		},
	}
	if ok, reason := req.SatisfiedBy(pumpDesc("p1")); !ok {
		t.Fatalf("pump should satisfy: %s", reason)
	}
	if ok, _ := req.SatisfiedBy(oximeterDesc("ox1")); ok {
		t.Fatal("oximeter satisfied pump requirement")
	}
	// Unit mismatch is a mismatch.
	req.Capabilities[1].Unit = "mL/h"
	if ok, _ := req.SatisfiedBy(pumpDesc("p1")); ok {
		t.Fatal("unit mismatch accepted")
	}
	// Kind-less requirement matches on capabilities alone.
	anyStop := Requirement{Capabilities: []Capability{{Name: "stop", Class: ClassActuator}}}
	if ok, _ := anyStop.SatisfiedBy(pumpDesc("p1")); !ok {
		t.Fatal("kind-less requirement rejected pump")
	}
}

func TestTopicSplitAndMatch(t *testing.T) {
	top := Topic("ox1", "spo2")
	if top != "ox1/spo2" {
		t.Fatalf("topic = %q", top)
	}
	d, c, ok := SplitTopic(top)
	if !ok || d != "ox1" || c != "spo2" {
		t.Fatalf("split = %q %q %v", d, c, ok)
	}
	for _, bad := range []string{"", "noslash", "/x", "x/"} {
		if _, _, ok := SplitTopic(bad); ok {
			t.Fatalf("split accepted %q", bad)
		}
	}
	match := []struct {
		pattern, topic string
		want           bool
	}{
		{"ox1/spo2", "ox1/spo2", true},
		{"ox1/*", "ox1/spo2", true},
		{"*/spo2", "ox1/spo2", true},
		{"*/*", "anything/at-all", true},
		{"ox1/spo2", "ox2/spo2", false},
		{"*/hr", "ox1/spo2", false},
		{"ox1/*", "ox2/spo2", false},
		{"exact", "exact", true},
		{"exact", "other", false},
	}
	for _, m := range match {
		if got := MatchTopic(m.pattern, m.topic); got != m.want {
			t.Fatalf("MatchTopic(%q,%q) = %v, want %v", m.pattern, m.topic, got, m.want)
		}
	}
}

// Property: MatchTopic("*/*") accepts exactly the set of well-formed topics.
func TestMatchTopicWildcardProperty(t *testing.T) {
	f := func(dev, cap string) bool {
		topic := dev + "/" + cap
		_, _, wellFormed := SplitTopic(topic)
		return MatchTopic("*/*", topic) == wellFormed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayWindow(t *testing.T) {
	var w replayWindow
	if !w.admit(5) {
		t.Fatal("first seq rejected")
	}
	if w.admit(5) {
		t.Fatal("duplicate admitted")
	}
	if !w.admit(7) || !w.admit(6) {
		t.Fatal("fresh out-of-order rejected")
	}
	if w.admit(6) {
		t.Fatal("replayed 6 admitted")
	}
	if !w.admit(100) {
		t.Fatal("jump ahead rejected")
	}
	if w.admit(7) {
		t.Fatal("ancient seq admitted after window slid")
	}
	if !w.admit(90) {
		t.Fatal("in-window unseen seq rejected")
	}
	if w.admit(90) {
		t.Fatal("replayed 90 admitted")
	}
}

// Property: the window never admits the same sequence number twice.
func TestReplayWindowNoDoubleAdmitProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		var w replayWindow
		admitted := make(map[uint16]bool)
		for _, s := range seqs {
			if w.admit(uint64(s)) {
				if admitted[s] {
					return false
				}
				admitted[s] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
