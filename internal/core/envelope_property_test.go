package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: every well-formed datum survives the wire round-trip intact.
func TestDatumWireRoundTripProperty(t *testing.T) {
	f := func(seq uint64, atRaw int64, value float64, valid bool, quality float64) bool {
		if math.IsNaN(value) || math.IsInf(value, 0) || math.IsNaN(quality) || math.IsInf(quality, 0) {
			return true // JSON cannot carry non-finite floats; senders never produce them
		}
		at := sim.Time(atRaw % (1 << 40))
		if at < 0 {
			at = -at
		}
		in := Datum{Topic: "dev/cap", Value: value, Valid: valid, Quality: quality, Sampled: at}
		data, err := Encode(MsgPublish, "dev", "mgr", seq, at, in)
		if err != nil {
			return false
		}
		env, err := Decode(data)
		if err != nil || env.Seq != seq || env.From != "dev" || env.Type != MsgPublish {
			return false
		}
		var out Datum
		if err := env.DecodeBody(&out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: command bodies round-trip including argument maps.
func TestCommandWireRoundTripProperty(t *testing.T) {
	f := func(id uint64, rate float64, hasArgs bool) bool {
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			return true
		}
		in := Command{ID: id, Name: "set-basal"}
		if hasArgs {
			in.Args = map[string]float64{"rate": rate}
		}
		data, err := Encode(MsgCommand, "mgr", "pump", 1, 0, in)
		if err != nil {
			return false
		}
		env, err := Decode(data)
		if err != nil {
			return false
		}
		var out Command
		if err := env.DecodeBody(&out); err != nil {
			return false
		}
		if out.ID != in.ID || out.Name != in.Name {
			return false
		}
		if hasArgs {
			return out.Args != nil && out.Args["rate"] == rate
		}
		return len(out.Args) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
