package device

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// XRay is the portable X-ray machine of the interoperability scenario.
// Its single actuator takes an exposure; whether the resulting image is
// sharp depends on the physical truth — was the chest still for the whole
// exposure? — which it cannot observe directly. The synchronization
// protocols in internal/closedloop decide *when* to trigger it.
//
// Capabilities:
//
//	event    image  — 1 sharp, 0 blurred, published when exposure completes
//	actuator shoot  — args: exposure-ms (default 100)
type XRay struct {
	conn *core.DeviceConn
	k    *sim.Kernel
	vent *Ventilator // physical coupling: the chest being imaged

	exposing bool

	// Counters for experiments.
	Sharp   uint64
	Blurred uint64
	Refused uint64
}

// XRayDescriptor returns the ICE descriptor an X-ray machine announces.
func XRayDescriptor(id string) core.Descriptor {
	return core.Descriptor{
		ID: id, Kind: core.KindXRay,
		Manufacturer: "Repro Medical", Model: "XR-3", Version: "1.0",
		Capabilities: []core.Capability{
			{Name: "image", Class: core.ClassEvent, Criticality: 2},
			{Name: "shoot", Class: core.ClassActuator, Unit: "ms", Criticality: 2},
		},
	}
}

// NewXRay connects an X-ray machine physically aimed at the chest the
// given ventilator drives.
func NewXRay(k *sim.Kernel, net *mednet.Network, id string, vent *Ventilator, cfg core.ConnectConfig) (*XRay, error) {
	conn, err := core.Connect(k, net, XRayDescriptor(id), cfg)
	if err != nil {
		return nil, err
	}
	x := &XRay{conn: conn, k: k, vent: vent}
	conn.Handle("shoot", func(args map[string]float64) error {
		expMs := args["exposure-ms"]
		if expMs <= 0 {
			expMs = 100
		}
		return x.Shoot(sim.Time(expMs) * sim.Millisecond)
	})
	return x, nil
}

// MustNewXRay is NewXRay, panicking on error.
func MustNewXRay(k *sim.Kernel, net *mednet.Network, id string, vent *Ventilator, cfg core.ConnectConfig) *XRay {
	x, err := NewXRay(k, net, id, vent, cfg)
	if err != nil {
		panic(err)
	}
	return x
}

// Conn exposes the ICE connection.
func (x *XRay) Conn() *core.DeviceConn { return x.conn }

// Reset returns the machine to its just-connected state for a prototype
// clone: idle, counters cleared, ICE connection re-announced. NewXRay
// schedules nothing beyond Connect, so no ticker re-arms here. Kernel
// and network must be reset first.
func (x *XRay) Reset() {
	x.exposing = false
	x.Sharp = 0
	x.Blurred = 0
	x.Refused = 0
	x.conn.Reset()
}

// Shoot begins an exposure of the given duration. The image sharpness is
// evaluated against the true chest motion over the exposure interval and
// published as an image event when the exposure completes.
func (x *XRay) Shoot(exposure sim.Time) error {
	if x.exposing {
		x.Refused++
		return fmt.Errorf("device: x-ray already exposing")
	}
	if exposure <= 0 {
		return fmt.Errorf("device: non-positive exposure %v", exposure)
	}
	x.exposing = true
	start := x.k.Now()
	x.k.After(exposure.Duration(), func() {
		x.exposing = false
		sharp := x.vent.ChestStillDuring(start, x.k.Now())
		val := 0.0
		if sharp {
			x.Sharp++
			val = 1
		} else {
			x.Blurred++
		}
		if x.conn.Connected() {
			x.conn.Publish("image", val, true, 1, start)
		}
	})
	return nil
}
