package device

import (
	"time"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// Monitor is a multi-parameter patient monitor publishing heart rate,
// mean arterial pressure and respiratory rate. Its MAP channel exhibits
// the mixed-criticality artifact of the paper (III.l): the pressure
// transducer reading depends on the patient-to-sensor height difference,
// so raising the bed shifts the published MAP even though the patient is
// unchanged.
//
// Capabilities:
//
//	sensor hr   (bpm)
//	sensor map  (mmHg)
//	sensor rr   (bpm)
type Monitor struct {
	conn    *core.DeviceConn
	k       *sim.Kernel
	patient *physio.Patient
	rng     *sim.RNG
	bed     *Bed // optional physical coupling for the MAP artifact
}

// MonitorDescriptor returns the ICE descriptor a monitor announces.
func MonitorDescriptor(id string) core.Descriptor {
	return core.Descriptor{
		ID: id, Kind: core.KindMonitor,
		Manufacturer: "Repro Medical", Model: "MON-12", Version: "1.0",
		Capabilities: []core.Capability{
			{Name: "hr", Class: core.ClassSensor, Unit: "bpm", Criticality: 3},
			{Name: "map", Class: core.ClassSensor, Unit: "mmHg", Criticality: 3},
			{Name: "rr", Class: core.ClassSensor, Unit: "bpm", Criticality: 3},
		},
	}
}

// NewMonitor connects a monitor publishing every interval. bed may be nil
// to disable the MAP position artifact.
func NewMonitor(k *sim.Kernel, net *mednet.Network, id string, patient *physio.Patient, bed *Bed, interval time.Duration, rng *sim.RNG, cfg core.ConnectConfig) (*Monitor, error) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	conn, err := core.Connect(k, net, MonitorDescriptor(id), cfg)
	if err != nil {
		return nil, err
	}
	m := &Monitor{conn: conn, k: k, patient: patient, rng: rng, bed: bed}
	k.Every(interval, func(now sim.Time) { m.publish(now) })
	return m, nil
}

// MustNewMonitor is NewMonitor, panicking on error.
func MustNewMonitor(k *sim.Kernel, net *mednet.Network, id string, patient *physio.Patient, bed *Bed, interval time.Duration, rng *sim.RNG, cfg core.ConnectConfig) *Monitor {
	m, err := NewMonitor(k, net, id, patient, bed, interval, rng, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Conn exposes the ICE connection.
func (m *Monitor) Conn() *core.DeviceConn { return m.conn }

// mapOffsetPerMeter is the hydrostatic error of a fluid-filled pressure
// line: ~7.5 mmHg per 10 cm of height difference.
const mapOffsetPerMeter = 75.0

func (m *Monitor) publish(now sim.Time) {
	if !m.conn.Connected() {
		return
	}
	v := m.patient.Vitals()
	hr := v.HeartRate + m.rng.Normal(0, 1.0)
	rr := v.RespRate + m.rng.Normal(0, 0.5)
	mapReading := v.MAP + m.rng.Normal(0, 1.5)
	if m.bed != nil {
		// Transducer fixed to the pole; patient moves with the bed.
		mapReading -= m.bed.Height() * mapOffsetPerMeter
	}
	m.conn.Publish("hr", hr, true, 1, now)
	m.conn.Publish("rr", rr, true, 1, now)
	m.conn.Publish("map", mapReading, true, 1, now)
}
