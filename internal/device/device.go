// Package device implements the simulated medical devices the paper's
// scenarios compose: a PCA infusion pump, a pulse oximeter, a ventilator,
// an X-ray machine, a multi-parameter patient monitor, a hospital bed (the
// Class I context device of the mixed-criticality scenario) and a
// capnograph. Each device owns a core.DeviceConn, announces a capability
// descriptor, publishes observations on the ICE bus, and executes actuator
// commands — exactly the integration surface challenge (k) calls for.
//
// Devices observe and affect the patient only through their transducers;
// ground-truth physiology lives in internal/physio and is advanced by the
// Ward runner below.
package device

import (
	"repro/internal/physio"
	"repro/internal/sim"
)

// DrugSource reports the drug flow a device is currently delivering.
// The PCA pump implements it; the Ward polls it when stepping physiology.
type DrugSource interface {
	// CurrentRateMgPerMin returns the instantaneous infusion rate.
	CurrentRateMgPerMin() float64
	// TakePendingBolusMg returns and clears any bolus mass delivered
	// since the last call.
	TakePendingBolusMg() float64
}

// VentSupport reports the mechanical ventilation scale a device provides.
// The ventilator implements it.
type VentSupport interface {
	// VentilationScale is 1 while ventilating, 0 while paused.
	VentilationScale() float64
}

// Ward advances the shared patient physiology from the device layer's
// inputs. It is the glue between the cyber side (devices) and the physical
// side (the patient) — the "patient model" box of Figure 1.
type Ward struct {
	Patient *physio.Patient
	k       *sim.Kernel
	drug    []DrugSource
	vent    []VentSupport
	tick    *sim.Ticker
	Trace   *sim.Trace // optional: records ground truth each step

	// Interned series handles for Trace; the ward samples eight series
	// every step, so resolving names once keeps the hot path off the map.
	interned                                                   *sim.Trace // trace the handles below belong to
	sSpO2, sHR, sRR, sPlasma, sDepress, sPain, sRate, sExtVent sim.SeriesID
}

// NewWard starts stepping the patient every step interval.
func NewWard(k *sim.Kernel, p *physio.Patient, step sim.Time) *Ward {
	w := &Ward{Patient: p, k: k}
	w.tick = k.Every(step.Duration(), func(now sim.Time) { w.step(now, step) })
	return w
}

// AttachDrugSource registers an infusion source (e.g. the PCA pump).
func (w *Ward) AttachDrugSource(s DrugSource) { w.drug = append(w.drug, s) }

// AttachVentSupport registers a ventilation provider. With at least one
// provider attached, the patient is treated as anesthetized: effective
// support is the maximum over providers (a second ventilator can cover).
func (w *Ward) AttachVentSupport(v VentSupport) { w.vent = append(w.vent, v) }

// Stop halts physiology stepping.
func (w *Ward) Stop() { w.tick.Stop() }

// Reset re-arms the stepping ticker for a prototype clone. Attached
// sources and the interned series handles are retained; the handles
// re-intern lazily if the rig swaps in a different pooled Trace. The
// patient itself is reset by the rig, which owns its RNG.
func (w *Ward) Reset() { w.tick.Reset() }

func (w *Ward) step(now sim.Time, dt sim.Time) {
	rate := 0.0
	for _, s := range w.drug {
		rate += s.CurrentRateMgPerMin()
		if b := s.TakePendingBolusMg(); b > 0 {
			w.Patient.Bolus(b)
		}
	}
	if len(w.vent) > 0 {
		scale := 0.0
		for _, v := range w.vent {
			if s := v.VentilationScale(); s > scale {
				scale = s
			}
		}
		w.Patient.SetExternalVentilation(scale)
	}
	w.Patient.Step(dt, rate)
	if w.Trace != nil {
		if w.interned != w.Trace {
			w.intern()
		}
		v := w.Patient.Vitals()
		w.Trace.RecordID(w.sSpO2, now, v.SpO2)
		w.Trace.RecordID(w.sHR, now, v.HeartRate)
		w.Trace.RecordID(w.sRR, now, v.RespRate)
		w.Trace.RecordID(w.sPlasma, now, v.DrugPlasma)
		w.Trace.RecordID(w.sDepress, now, v.Depression)
		w.Trace.RecordID(w.sPain, now, v.Pain)
		w.Trace.RecordID(w.sRate, now, rate)
		w.Trace.RecordID(w.sExtVent, now, w.Patient.ExternalVentilation())
	}
}

// intern resolves the ground-truth series handles for the current Trace.
// Lazy so that assigning the exported Trace field keeps working.
func (w *Ward) intern() {
	w.interned = w.Trace
	w.sSpO2 = w.Trace.SeriesID("true/spo2")
	w.sHR = w.Trace.SeriesID("true/hr")
	w.sRR = w.Trace.SeriesID("true/rr")
	w.sPlasma = w.Trace.SeriesID("true/drug-plasma")
	w.sDepress = w.Trace.SeriesID("true/depression")
	w.sPain = w.Trace.SeriesID("true/pain")
	w.sRate = w.Trace.SeriesID("true/infusion-rate")
	w.sExtVent = w.Trace.SeriesID("true/extvent")
}
