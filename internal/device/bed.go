package device

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// Bed is the hospital bed of the paper's mixed-criticality scenario: a
// Class I device (lowest FDA criticality) whose height changes corrupt a
// Class III monitoring function's MAP reading. Publishing its height as a
// context event is exactly the "provide all sources of interactions as
// explicit inputs" design the paper recommends.
//
// Capabilities:
//
//	event    height (m)  — published whenever the height changes
//	actuator set-height  — args: height (m)
type Bed struct {
	conn   *core.DeviceConn
	k      *sim.Kernel
	height float64 // meters above the reference position

	// Moves counts height adjustments, for experiment accounting.
	Moves uint64
}

// BedDescriptor returns the ICE descriptor a bed announces. Note the
// criticality: this is deliberately a Class I device.
func BedDescriptor(id string) core.Descriptor {
	return core.Descriptor{
		ID: id, Kind: core.KindBed,
		Manufacturer: "Repro Medical", Model: "BED-2", Version: "1.0",
		Capabilities: []core.Capability{
			{Name: "height", Class: core.ClassEvent, Unit: "m", Criticality: 1},
			{Name: "set-height", Class: core.ClassActuator, Unit: "m", Criticality: 1},
		},
	}
}

// NewBed connects a bed at height zero.
func NewBed(k *sim.Kernel, net *mednet.Network, id string, cfg core.ConnectConfig) (*Bed, error) {
	conn, err := core.Connect(k, net, BedDescriptor(id), cfg)
	if err != nil {
		return nil, err
	}
	b := &Bed{conn: conn, k: k}
	conn.Handle("set-height", func(args map[string]float64) error {
		h, ok := args["height"]
		if !ok {
			return fmt.Errorf("set-height requires height arg")
		}
		return b.SetHeight(h)
	})
	return b, nil
}

// MustNewBed is NewBed, panicking on error.
func MustNewBed(k *sim.Kernel, net *mednet.Network, id string, cfg core.ConnectConfig) *Bed {
	b, err := NewBed(k, net, id, cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Conn exposes the ICE connection.
func (b *Bed) Conn() *core.DeviceConn { return b.conn }

// Height reports the current height above reference (meters).
func (b *Bed) Height() float64 { return b.height }

// SetHeight moves the bed and publishes the context event.
func (b *Bed) SetHeight(h float64) error {
	if h < -0.5 || h > 1.0 {
		return fmt.Errorf("device: bed height %f outside mechanical range [-0.5,1.0]", h)
	}
	if h == b.height {
		return nil
	}
	b.height = h
	b.Moves++
	if b.conn.Connected() {
		b.conn.Publish("height", h, true, 1, b.k.Now())
	}
	return nil
}
