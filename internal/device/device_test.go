package device

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/physio"
	"repro/internal/sim"
)

func TestWardDrivesPatientFromPump(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	s := DefaultPumpSettings()
	s.BasalRateMgPerHour = 3
	var pump *Pump
	f.k.At(0, func() {
		pump = MustNewPump(f.k, f.net, "pump1", s, core.ConnectConfig{})
		w := NewWard(f.k, patient, sim.Second)
		w.AttachDrugSource(pump)
	})
	if err := f.k.Run(sim.Hour); err != nil {
		t.Fatal(err)
	}
	if got := patient.PK().TotalInfused(); math.Abs(got-3) > 0.1 {
		t.Fatalf("infused %f mg in 1h at 3 mg/h", got)
	}
	if patient.PK().Concentration() <= 0 {
		t.Fatal("no drug reached the patient")
	}
}

func TestWardDeliversBoluses(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	s := DefaultPumpSettings()
	s.BasalRateMgPerHour = 0
	f.k.At(0, func() {
		pump := MustNewPump(f.k, f.net, "pump1", s, core.ConnectConfig{})
		w := NewWard(f.k, patient, sim.Second)
		w.AttachDrugSource(pump)
		f.k.At(10*sim.Second, func() { pump.PressButton() })
	})
	// The bolus infuses over its BolusDuration; give it time to finish.
	if err := f.k.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if got := patient.PK().TotalInfused(); math.Abs(got-1) > 0.05 {
		t.Fatalf("infused = %f, want ~1 (one bolus)", got)
	}
}

func TestWardTraceRecordsGroundTruth(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	tr := sim.NewTrace()
	f.k.At(0, func() {
		w := NewWard(f.k, patient, sim.Second)
		w.Trace = tr
	})
	if err := f.k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"true/spo2", "true/hr", "true/rr", "true/depression"} {
		if len(tr.Series(name)) == 0 {
			t.Fatalf("trace missing %s", name)
		}
	}
}

func TestOximeterPublishesCloseToTruth(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	var spo2s, hrs []core.Datum
	f.mgr.Subscribe("ox1/spo2", func(_ string, d core.Datum) { spo2s = append(spo2s, d) })
	f.mgr.Subscribe("ox1/heart-rate", func(_ string, d core.Datum) { hrs = append(hrs, d) })
	f.k.At(0, func() {
		NewWard(f.k, patient, sim.Second)
		MustNewOximeter(f.k, f.net, "ox1", patient, f.rng.Fork("ox"), core.ConnectConfig{})
	})
	if err := f.k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if len(spo2s) < 10 {
		t.Fatalf("got %d spo2 estimates in 60s with a 4s window, want ~15", len(spo2s))
	}
	truth := patient.Vitals()
	last := spo2s[len(spo2s)-1]
	if !last.Valid {
		t.Fatalf("clean-signal estimate invalid: %+v", last)
	}
	if math.Abs(last.Value-truth.SpO2) > 3 {
		t.Fatalf("oximeter spo2 %f vs truth %f", last.Value, truth.SpO2)
	}
	lastHR := hrs[len(hrs)-1]
	if math.Abs(lastHR.Value-truth.HeartRate) > 6 {
		t.Fatalf("oximeter hr %f vs truth %f", lastHR.Value, truth.HeartRate)
	}
}

func TestOximeterDropoutPublishesInvalid(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	var data []core.Datum
	f.mgr.Subscribe("ox1/spo2", func(_ string, d core.Datum) { data = append(data, d) })
	var ox *Oximeter
	f.k.At(0, func() {
		NewWard(f.k, patient, sim.Second)
		ox = MustNewOximeter(f.k, f.net, "ox1", patient, f.rng.Fork("ox"), core.ConnectConfig{})
		f.k.At(10*sim.Second, func() { ox.InjectDropout(20 * sim.Second) })
	})
	if err := f.k.Run(40 * sim.Second); err != nil {
		t.Fatal(err)
	}
	invalid := 0
	for _, d := range data {
		if !d.Valid {
			invalid++
		}
	}
	if invalid < 3 {
		t.Fatalf("only %d invalid estimates during a 20s dropout", invalid)
	}
	if ox.InvalidEstimates == 0 {
		t.Fatal("oximeter did not count invalid estimates")
	}
}

func TestVentilatorPauseRemovesSupport(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	var vent *Ventilator
	f.k.At(0, func() {
		vent = MustNewVentilator(f.k, f.net, "vent1", physio.DefaultBreathCycle(), patient, core.ConnectConfig{})
		w := NewWard(f.k, patient, sim.Second)
		w.AttachVentSupport(vent)
		f.k.At(sim.Minute, func() {
			if err := vent.Pause(); err != nil {
				t.Error(err)
			}
		})
	})
	// 6 minutes paused: an anesthetized patient desaturates.
	if err := f.k.Run(7 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if v := patient.Vitals(); v.SpO2 > 90 {
		t.Fatalf("SpO2 = %f after 6 min unventilated, expected desaturation", v.SpO2)
	}
	f.k.At(f.k.Now(), func() { vent.Resume() })
	if err := f.k.Run(f.k.Now() + 15*sim.Minute); err != nil {
		t.Fatal(err)
	}
	if v := patient.Vitals(); v.SpO2 < 93 {
		t.Fatalf("SpO2 = %f after resuming ventilation, expected recovery", v.SpO2)
	}
}

func TestVentilatorDoublePauseErrors(t *testing.T) {
	f := newFixture(t)
	f.k.At(0, func() {
		v := MustNewVentilator(f.k, f.net, "vent1", physio.DefaultBreathCycle(), nil, core.ConnectConfig{})
		if err := v.Pause(); err != nil {
			t.Error(err)
		}
		if err := v.Pause(); err == nil {
			t.Error("double pause accepted")
		}
		v.Resume()
		v.Resume() // idempotent
		if v.Paused() {
			t.Error("still paused after resume")
		}
	})
	if err := f.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestVentilatorPublishesCycleAnchor(t *testing.T) {
	f := newFixture(t)
	var anchors []core.Datum
	f.mgr.Subscribe("vent1/cycle-anchor", func(_ string, d core.Datum) { anchors = append(anchors, d) })
	f.k.At(0, func() {
		MustNewVentilator(f.k, f.net, "vent1", physio.DefaultBreathCycle(), nil, core.ConnectConfig{})
	})
	if err := f.k.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(anchors) < 8 {
		t.Fatalf("got %d anchor publications in 10s", len(anchors))
	}
	if anchors[0].Value != 0 {
		t.Fatalf("anchor = %f, want 0 (started at t=0)", anchors[0].Value)
	}
}

func TestXRayImageSharpOnlyWhenChestStill(t *testing.T) {
	f := newFixture(t)
	var vent *Ventilator
	var xray *XRay
	f.k.At(0, func() {
		vent = MustNewVentilator(f.k, f.net, "vent1", physio.DefaultBreathCycle(), nil, core.ConnectConfig{})
		xray = MustNewXRay(f.k, f.net, "xr1", vent, core.ConnectConfig{})
		// Shot 1: during inhalation (cycle starts at 0; inhale ~1.5s).
		f.k.At(200*sim.Millisecond, func() {
			if err := xray.Shoot(100 * sim.Millisecond); err != nil {
				t.Error(err)
			}
		})
		// Shot 2: inside the quiescent window.
		f.k.At(sim.Second, func() {
			ws, _ := vent.Cycle().NextQuiescentWindow(f.k.Now(), vent.Anchor())
			f.k.At(ws+50*sim.Millisecond, func() {
				if err := xray.Shoot(100 * sim.Millisecond); err != nil {
					t.Error(err)
				}
			})
		})
	})
	if err := f.k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if xray.Blurred != 1 || xray.Sharp != 1 {
		t.Fatalf("sharp=%d blurred=%d, want 1/1", xray.Sharp, xray.Blurred)
	}
}

func TestXRayRefusesOverlappingExposure(t *testing.T) {
	f := newFixture(t)
	f.k.At(0, func() {
		vent := MustNewVentilator(f.k, f.net, "vent1", physio.DefaultBreathCycle(), nil, core.ConnectConfig{})
		xray := MustNewXRay(f.k, f.net, "xr1", vent, core.ConnectConfig{})
		if err := xray.Shoot(200 * sim.Millisecond); err != nil {
			t.Error(err)
		}
		if err := xray.Shoot(100 * sim.Millisecond); err == nil {
			t.Error("overlapping exposure accepted")
		}
		if err := xray.Shoot(0); err == nil {
			t.Error("zero exposure accepted")
		}
	})
	if err := f.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorMAPBedArtifact(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	var maps []float64
	f.mgr.Subscribe("mon1/map", func(_ string, d core.Datum) { maps = append(maps, d.Value) })
	var bed *Bed
	f.k.At(0, func() {
		NewWard(f.k, patient, sim.Second)
		bed = MustNewBed(f.k, f.net, "bed1", core.ConnectConfig{})
		MustNewMonitor(f.k, f.net, "mon1", patient, bed, 2*time.Second, f.rng.Fork("mon"), core.ConnectConfig{})
		f.k.At(30*sim.Second, func() {
			if err := bed.SetHeight(0.3); err != nil {
				t.Error(err)
			}
		})
	})
	if err := f.k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if len(maps) < 20 {
		t.Fatalf("got %d MAP readings", len(maps))
	}
	before := mean(maps[:10])
	after := mean(maps[len(maps)-10:])
	// 0.3 m * 75 mmHg/m = 22.5 mmHg artifact drop.
	if before-after < 15 {
		t.Fatalf("bed raise shifted MAP by %f mmHg, want > 15", before-after)
	}
}

func TestBedHeightValidationAndEvents(t *testing.T) {
	f := newFixture(t)
	var events []float64
	f.mgr.Subscribe("bed1/height", func(_ string, d core.Datum) { events = append(events, d.Value) })
	f.k.At(0, func() {
		bed := MustNewBed(f.k, f.net, "bed1", core.ConnectConfig{})
		if err := bed.SetHeight(2.0); err == nil {
			t.Error("out-of-range height accepted")
		}
		if err := bed.SetHeight(0.2); err != nil {
			t.Error(err)
		}
		if err := bed.SetHeight(0.2); err != nil { // no-op move
			t.Error(err)
		}
		if bed.Moves != 1 {
			t.Errorf("moves = %d, want 1", bed.Moves)
		}
	})
	if err := f.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0] != 0.2 {
		t.Fatalf("height events = %v", events)
	}
}

func TestCapnographTracksHypoventilation(t *testing.T) {
	f := newFixture(t)
	patient := physio.DefaultPatient(f.rng.Fork("patient"))
	var etco2 []core.Datum
	f.mgr.Subscribe("cap1/etco2", func(_ string, d core.Datum) { etco2 = append(etco2, d) })
	f.k.At(0, func() {
		NewWard(f.k, patient, sim.Second)
		MustNewCapnograph(f.k, f.net, "cap1", patient, 2*time.Second, f.rng.Fork("cap"), core.ConnectConfig{})
		// Heavy sedation at t=60s.
		f.k.At(sim.Minute, func() { patient.Bolus(30) })
	})
	if err := f.k.Run(30 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if len(etco2) < 100 {
		t.Fatalf("got %d etco2 readings", len(etco2))
	}
	baseline := etco2[5].Value
	late := etco2[len(etco2)-1]
	if late.Valid && late.Value < baseline+5 {
		t.Fatalf("etco2 did not rise under hypoventilation: %f -> %f", baseline, late.Value)
	}
}

func TestBedIsClassOneDevice(t *testing.T) {
	d := BedDescriptor("bed1")
	for _, c := range d.Capabilities {
		if c.Criticality != 1 {
			t.Fatalf("bed capability %s has criticality %d, want 1 (Class I)", c.Name, c.Criticality)
		}
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
