package device

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/sim"
)

type fixture struct {
	k   *sim.Kernel
	net *mednet.Network
	mgr *core.Manager
	rng *sim.RNG
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	return &fixture{k: k, net: net, mgr: mgr, rng: sim.NewRNG(2)}
}

func TestPumpSettingsValidate(t *testing.T) {
	if err := DefaultPumpSettings().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*PumpSettings){
		func(s *PumpSettings) { s.BolusMg = -1 },
		func(s *PumpSettings) { s.BasalRateMgPerHour = -1 },
		func(s *PumpSettings) { s.LockoutInterval = -time.Second },
		func(s *PumpSettings) { s.HourlyLimitMg = 0 },
		func(s *PumpSettings) { s.ConcentrationFactor = 0 },
		func(s *PumpSettings) { s.StopDelay = -time.Second },
		func(s *PumpSettings) { s.BolusDuration = 0 },
	}
	for i, mut := range bad {
		s := DefaultPumpSettings()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid settings accepted: %+v", i, s)
		}
	}
}

func TestPumpLockoutEnforced(t *testing.T) {
	f := newFixture(t)
	var delivered, denied int
	f.k.At(0, func() {
		p := MustNewPump(f.k, f.net, "pump1", DefaultPumpSettings(), core.ConnectConfig{})
		// Press every minute for 30 min; lockout is 8 min.
		f.k.Every(time.Minute, func(sim.Time) {
			if p.PressButton() {
				delivered++
			} else {
				denied++
			}
		})
	})
	if err := f.k.Run(30 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	// Presses at 1,9,17,25 min succeed -> 4 deliveries.
	if delivered != 4 {
		t.Fatalf("delivered = %d, want 4", delivered)
	}
	if denied != 26 {
		t.Fatalf("denied = %d, want 26", denied)
	}
}

func TestPumpHourlyLimitEnforced(t *testing.T) {
	f := newFixture(t)
	s := DefaultPumpSettings()
	s.LockoutInterval = time.Minute // permissive lockout so the cap binds
	s.BolusMg = 1
	s.HourlyLimitMg = 5
	var delivered int
	f.k.At(0, func() {
		p := MustNewPump(f.k, f.net, "pump1", s, core.ConnectConfig{})
		f.k.Every(time.Minute+time.Second, func(sim.Time) {
			if p.PressButton() {
				delivered++
			}
		})
	})
	if err := f.k.Run(sim.Hour); err != nil {
		t.Fatal(err)
	}
	if delivered != 5 {
		t.Fatalf("delivered = %d in first hour, want hourly limit 5", delivered)
	}
	// The sliding window frees capacity in the second hour.
	delivered = 0
	if err := f.k.Run(2 * sim.Hour); err != nil {
		t.Fatal(err)
	}
	if delivered == 0 {
		t.Fatal("sliding window never freed capacity")
	}
}

func TestPumpStopDelayAndResume(t *testing.T) {
	f := newFixture(t)
	s := DefaultPumpSettings()
	s.StopDelay = 2 * time.Second
	var atStop, after1s, after3s, afterResume float64
	f.k.At(0, func() {
		p := MustNewPump(f.k, f.net, "pump1", s, core.ConnectConfig{})
		f.k.At(10*sim.Second, func() {
			p.Stop()
			atStop = p.CurrentRateMgPerMin()
			if p.State() != PumpStopping {
				t.Errorf("state after Stop = %v, want stopping", p.State())
			}
		})
		f.k.At(11*sim.Second, func() { after1s = p.CurrentRateMgPerMin() })
		f.k.At(13*sim.Second, func() {
			after3s = p.CurrentRateMgPerMin()
			if p.State() != PumpStopped {
				t.Errorf("state after delay = %v, want stopped", p.State())
			}
			p.Resume()
			afterResume = p.CurrentRateMgPerMin()
		})
	})
	if err := f.k.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	want := DefaultPumpSettings().BasalRateMgPerHour / 60
	if atStop != want || after1s != want {
		t.Fatalf("rate during stop delay = %f/%f, want %f (still flowing)", atStop, after1s, want)
	}
	if after3s != 0 {
		t.Fatalf("rate after stop delay = %f, want 0", after3s)
	}
	if afterResume != want {
		t.Fatalf("rate after resume = %f, want %f", afterResume, want)
	}
}

func TestPumpStoppedDeniesBolus(t *testing.T) {
	f := newFixture(t)
	f.k.At(0, func() {
		p := MustNewPump(f.k, f.net, "pump1", DefaultPumpSettings(), core.ConnectConfig{})
		p.Stop()
		f.k.At(10*sim.Second, func() {
			if p.PressButton() {
				t.Error("stopped pump delivered a bolus")
			}
		})
	})
	if err := f.k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestPumpMisprogrammedConcentration(t *testing.T) {
	f := newFixture(t)
	s := DefaultPumpSettings()
	s.ConcentrationFactor = 4 // 4x drug loaded (the paper's wrong-vial error)
	f.k.At(0, func() {
		p := MustNewPump(f.k, f.net, "pump1", s, core.ConnectConfig{})
		f.k.At(sim.Second, func() {
			if !p.PressButton() {
				t.Error("press denied")
			}
			// During the bolus the actual rate is 4x the displayed dose
			// spread over the bolus duration, on top of 4x basal.
			want := s.BasalRateMgPerHour/60*4 + s.BolusMg*4/s.BolusDuration.Minutes()
			if got := p.CurrentRateMgPerMin(); got != want {
				t.Errorf("rate during bolus = %f, want %f", got, want)
			}
		})
		f.k.At(sim.Second+sim.Time(s.BolusDuration)+sim.Second, func() {
			want := s.BasalRateMgPerHour / 60 * 4
			if got := p.CurrentRateMgPerMin(); got != want {
				t.Errorf("rate after bolus = %f, want %f", got, want)
			}
		})
	})
	if err := f.k.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestPumpCommandsOverICE(t *testing.T) {
	f := newFixture(t)
	var p *Pump
	f.k.At(0, func() {
		p = MustNewPump(f.k, f.net, "pump1", DefaultPumpSettings(), core.ConnectConfig{})
	})
	f.k.At(sim.Second, func() {
		f.mgr.SendCommand("pump1", "stop", nil, time.Second, nil)
	})
	f.k.At(10*sim.Second, func() {
		if p.State() != PumpStopped {
			t.Errorf("state = %v after networked stop, want stopped", p.State())
		}
		f.mgr.SendCommand("pump1", "resume", nil, time.Second, nil)
	})
	f.k.At(15*sim.Second, func() {
		if p.State() != PumpRunning {
			t.Errorf("state = %v after networked resume, want running", p.State())
		}
		f.mgr.SendCommand("pump1", "set-basal", map[string]float64{"rate": 2.4}, time.Second, nil)
	})
	if err := f.k.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if p.Settings().BasalRateMgPerHour != 2.4 {
		t.Fatalf("basal = %f after set-basal, want 2.4", p.Settings().BasalRateMgPerHour)
	}
}

func TestPumpPublishesInfusionRate(t *testing.T) {
	f := newFixture(t)
	var rates []float64
	f.mgr.Subscribe("pump1/infusion-rate", func(_ string, d core.Datum) {
		rates = append(rates, d.Value)
	})
	f.k.At(0, func() {
		MustNewPump(f.k, f.net, "pump1", DefaultPumpSettings(), core.ConnectConfig{})
	})
	if err := f.k.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(rates) < 8 {
		t.Fatalf("received %d rate publications in 10s, want ~10", len(rates))
	}
}
