package device

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// Ventilator is the mechanical ventilator of the paper's X-ray
// interoperability scenario (II.b). It runs a deterministic breath cycle
// and supports the two coordination protocols the paper contrasts:
//
//   - pause/resume actuator commands — the "let the X-ray machine pause
//     and restart the ventilator" protocol, with its deadly
//     forgot-to-restart failure mode;
//   - cycle-state transmission — the safer protocol: the ventilator
//     periodically publishes its cycle anchor and settings so the X-ray
//     machine can predict the end-of-exhale quiescent window itself.
//
// Capabilities:
//
//	sensor   cycle-anchor (ns)  — inhalation-onset anchor timestamp
//	sensor   breath-rate  (bpm) — current setting
//	event    state              — 1 running, 0 paused
//	actuator pause, resume
type Ventilator struct {
	conn    *core.DeviceConn
	k       *sim.Kernel
	cycle   physio.BreathCycle
	phase0  sim.Time // anchor: an inhalation onset instant
	paused  bool
	patient *physio.Patient // optional: anesthetized patient losing support on pause
	tick    *sim.Ticker

	// Counters for experiments.
	Pauses  uint64
	Resumes uint64
}

// VentilatorDescriptor returns the ICE descriptor a ventilator announces.
func VentilatorDescriptor(id string) core.Descriptor {
	return core.Descriptor{
		ID: id, Kind: core.KindVentilator,
		Manufacturer: "Repro Medical", Model: "VENT-7", Version: "1.0",
		Capabilities: []core.Capability{
			{Name: "cycle-anchor", Class: core.ClassSensor, Unit: "ns", Criticality: 3},
			{Name: "breath-rate", Class: core.ClassSensor, Unit: "bpm", Criticality: 3},
			{Name: "state", Class: core.ClassEvent, Criticality: 3},
			{Name: "pause", Class: core.ClassActuator, Criticality: 3},
			{Name: "resume", Class: core.ClassActuator, Criticality: 3},
		},
	}
}

// NewVentilator connects a ventilator. patient may be nil for bench-only
// use; when set, pausing removes the patient's ventilatory support.
func NewVentilator(k *sim.Kernel, net *mednet.Network, id string, cycle physio.BreathCycle, patient *physio.Patient, cfg core.ConnectConfig) (*Ventilator, error) {
	if err := cycle.Validate(); err != nil {
		return nil, err
	}
	conn, err := core.Connect(k, net, VentilatorDescriptor(id), cfg)
	if err != nil {
		return nil, err
	}
	v := &Ventilator{conn: conn, k: k, cycle: cycle, phase0: k.Now(), patient: patient}
	conn.Handle("pause", func(map[string]float64) error { return v.Pause() })
	conn.Handle("resume", func(map[string]float64) error { v.Resume(); return nil })
	// State transmission: publish the cycle anchor every second so a
	// subscriber always has a fresh prediction basis.
	v.tick = k.Every(time.Second, func(now sim.Time) {
		if !conn.Connected() || v.paused {
			return
		}
		conn.Publish("cycle-anchor", float64(v.phase0), true, 1, now)
		conn.Publish("breath-rate", v.cycle.RatePerMin, true, 1, now)
	})
	return v, nil
}

// Reset returns the ventilator to its just-connected state for a
// prototype clone: running, cycle re-anchored at the (reset) clock,
// counters cleared, the ICE connection re-announced, and the
// state-transmission ticker re-armed in NewVentilator's order. Kernel
// and network must be reset first.
func (v *Ventilator) Reset() {
	v.phase0 = v.k.Now()
	v.paused = false
	v.Pauses = 0
	v.Resumes = 0
	v.conn.Reset()
	v.tick.Reset()
}

// MustNewVentilator is NewVentilator, panicking on error.
func MustNewVentilator(k *sim.Kernel, net *mednet.Network, id string, cycle physio.BreathCycle, patient *physio.Patient, cfg core.ConnectConfig) *Ventilator {
	v, err := NewVentilator(k, net, id, cycle, patient, cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// Conn exposes the ICE connection.
func (v *Ventilator) Conn() *core.DeviceConn { return v.conn }

// Cycle returns the active breath settings.
func (v *Ventilator) Cycle() physio.BreathCycle { return v.cycle }

// Paused reports whether ventilation is suspended.
func (v *Ventilator) Paused() bool { return v.paused }

// Pause suspends ventilation at the next end-of-exhale (pausing mid-breath
// would trap volume). Returns an error if already paused.
func (v *Ventilator) Pause() error {
	if v.paused {
		return errors.New("device: ventilator already paused")
	}
	v.paused = true
	v.Pauses++
	if v.conn.Connected() {
		v.conn.Publish("state", 0, true, 1, v.k.Now())
	}
	return nil
}

// Resume restarts ventilation, re-anchoring the cycle at the current
// instant (a fresh inhalation begins immediately).
func (v *Ventilator) Resume() {
	if !v.paused {
		return
	}
	v.paused = false
	v.Resumes++
	v.phase0 = v.k.Now()
	if v.conn.Connected() {
		v.conn.Publish("state", 1, true, 1, v.k.Now())
	}
}

// VentilationScale implements VentSupport.
func (v *Ventilator) VentilationScale() float64 {
	if v.paused {
		return 0
	}
	return 1
}

// PhaseAt reports the true breath phase at time t — the physical chest
// motion the X-ray image quality depends on. While paused the chest is
// still, so every instant is quiescent.
func (v *Ventilator) PhaseAt(t sim.Time) physio.BreathPhase {
	if v.paused {
		return physio.PhaseQuiescent
	}
	return v.cycle.PhaseAt(t, v.phase0)
}

// ChestStillDuring reports whether the chest is motionless over the whole
// exposure interval [start, end].
func (v *Ventilator) ChestStillDuring(start, end sim.Time) bool {
	if v.paused {
		return true
	}
	for t := start; t <= end; t += 10 * sim.Millisecond {
		if v.cycle.PhaseAt(t, v.phase0) != physio.PhaseQuiescent {
			return false
		}
	}
	return true
}

// Anchor reports the current cycle anchor (for in-sim oracles; networked
// consumers get it via the cycle-anchor topic).
func (v *Ventilator) Anchor() sim.Time { return v.phase0 }
