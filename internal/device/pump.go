package device

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/sim"
)

// PumpSettings program a PCA infusion pump. These are the safeguards the
// paper notes are "not sufficient to protect all patients": lockout and
// hourly limits bound what the button can deliver, but misprogramming and
// PCA-by-proxy defeat them — which is why the closed-loop supervisor exists.
type PumpSettings struct {
	BasalRateMgPerHour float64       // continuous background infusion
	BolusMg            float64       // demand-dose size
	BolusDuration      time.Duration // time over which a demand dose infuses
	LockoutInterval    time.Duration // min spacing between demand doses
	HourlyLimitMg      float64       // total-delivery cap per sliding hour
	StopDelay          time.Duration // mechanical latency of the stop path
	// ConcentrationFactor models drug-loading errors: the pump believes it
	// delivers X mg but actually delivers X*ConcentrationFactor. 1 = correct.
	ConcentrationFactor float64
}

// DefaultPumpSettings returns a typical post-operative morphine program.
func DefaultPumpSettings() PumpSettings {
	return PumpSettings{
		BasalRateMgPerHour:  0.5,
		BolusMg:             1.0,
		BolusDuration:       2 * time.Minute,
		LockoutInterval:     8 * time.Minute,
		HourlyLimitMg:       6,
		StopDelay:           2 * time.Second,
		ConcentrationFactor: 1,
	}
}

// Validate reports an error for clinically meaningless settings.
func (s PumpSettings) Validate() error {
	if s.BasalRateMgPerHour < 0 || s.BolusMg < 0 {
		return errors.New("device: negative pump dose")
	}
	if s.LockoutInterval < 0 || s.StopDelay < 0 {
		return errors.New("device: negative pump interval")
	}
	if s.BolusDuration <= 0 {
		return errors.New("device: bolus duration must be positive")
	}
	if s.HourlyLimitMg <= 0 {
		return errors.New("device: hourly limit must be positive")
	}
	if s.ConcentrationFactor <= 0 {
		return errors.New("device: concentration factor must be positive")
	}
	return nil
}

// PumpState enumerates the pump's operational state.
type PumpState int

const (
	PumpRunning  PumpState = iota
	PumpStopping           // stop commanded, mechanical delay running
	PumpStopped
)

// String names the state.
func (s PumpState) String() string {
	switch s {
	case PumpRunning:
		return "running"
	case PumpStopping:
		return "stopping"
	case PumpStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// Pump is the PCA infusion pump. It exposes ICE capabilities:
//
//	sensor   infusion-rate (mg/min)  — published every second
//	event    bolus                   — published on each demand dose
//	actuator stop, resume            — supervisor commands
//	setting  set-basal               — programming
type Pump struct {
	conn     *core.DeviceConn
	k        *sim.Kernel
	settings PumpSettings
	orig     PumpSettings // as programmed at construction, restored on Reset
	state    PumpState
	tick     *sim.Ticker

	lastBolusAt sim.Time
	everBolused bool
	window      []dose // deliveries in the sliding hour
	bolusEnd    sim.Time
	bolusRate   float64 // mg/min while a demand dose is infusing

	// Counters for experiments.
	BolusesDelivered uint64
	BolusesDenied    uint64
	StopsReceived    uint64
}

type dose struct {
	at sim.Time
	mg float64
}

// PumpDescriptor returns the ICE descriptor a pump announces.
func PumpDescriptor(id string) core.Descriptor {
	return core.Descriptor{
		ID: id, Kind: core.KindInfusionPump,
		Manufacturer: "Repro Medical", Model: "PCA-100", Version: "1.0",
		Capabilities: []core.Capability{
			{Name: "infusion-rate", Class: core.ClassSensor, Unit: "mg/min", Criticality: 3},
			{Name: "bolus", Class: core.ClassEvent, Unit: "mg", Criticality: 3},
			{Name: "stop", Class: core.ClassActuator, Criticality: 3},
			{Name: "resume", Class: core.ClassActuator, Criticality: 3},
			{Name: "set-basal", Class: core.ClassSetting, Unit: "mg/h", Criticality: 3},
		},
	}
}

// NewPump connects a pump to the ICE and starts its telemetry.
func NewPump(k *sim.Kernel, net *mednet.Network, id string, s PumpSettings, cfg core.ConnectConfig) (*Pump, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	conn, err := core.Connect(k, net, PumpDescriptor(id), cfg)
	if err != nil {
		return nil, err
	}
	p := &Pump{conn: conn, k: k, settings: s, orig: s, state: PumpRunning}
	conn.Handle("stop", func(map[string]float64) error {
		p.Stop()
		return nil
	})
	conn.Handle("resume", func(map[string]float64) error {
		p.Resume()
		return nil
	})
	conn.Handle("set-basal", func(args map[string]float64) error {
		rate, ok := args["rate"]
		if !ok || rate < 0 {
			return fmt.Errorf("set-basal requires nonnegative rate, got %v", args)
		}
		p.settings.BasalRateMgPerHour = rate
		return nil
	})
	p.tick = k.Every(time.Second, func(now sim.Time) {
		if conn.Connected() {
			conn.Publish("infusion-rate", p.CurrentRateMgPerMin(), true, 1, now)
		}
	})
	return p, nil
}

// Reset returns the pump to its freshly programmed state for a
// prototype clone: the construction-time settings are restored (a
// set-basal command may have reprogrammed the rate), delivery state and
// counters clear, and the ICE connection re-announces then telemetry
// re-arms — NewPump's scheduling order, replayed. Kernel and network
// must be reset first.
func (p *Pump) Reset() {
	p.settings = p.orig
	p.state = PumpRunning
	p.lastBolusAt = 0
	p.everBolused = false
	p.window = p.window[:0]
	p.bolusEnd = 0
	p.bolusRate = 0
	p.BolusesDelivered = 0
	p.BolusesDenied = 0
	p.StopsReceived = 0
	p.conn.Reset()
	p.tick.Reset()
}

// MustNewPump is NewPump for known-good settings.
func MustNewPump(k *sim.Kernel, net *mednet.Network, id string, s PumpSettings, cfg core.ConnectConfig) *Pump {
	p, err := NewPump(k, net, id, s, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Conn exposes the ICE connection (for crash injection in experiments).
func (p *Pump) Conn() *core.DeviceConn { return p.conn }

// State reports the operational state.
func (p *Pump) State() PumpState { return p.state }

// Settings returns the active program.
func (p *Pump) Settings() PumpSettings { return p.settings }

// Stop begins the stop sequence; the infusion actually ceases after the
// mechanical StopDelay (Figure 1's "pump stop delay").
func (p *Pump) Stop() {
	p.StopsReceived++
	if p.state != PumpRunning {
		return
	}
	p.state = PumpStopping
	p.k.After(p.settings.StopDelay, func() {
		if p.state == PumpStopping {
			p.state = PumpStopped
		}
	})
}

// Resume restarts the infusion immediately.
func (p *Pump) Resume() { p.state = PumpRunning }

// PressButton handles a demand-dose request (the patient's button, or —
// in the PCA-by-proxy failure mode — anyone else's finger). It delivers a
// bolus when the lockout has elapsed, the sliding-hour limit permits, and
// the pump is running. Reports whether the dose was delivered.
func (p *Pump) PressButton() bool {
	now := p.k.Now()
	if p.state != PumpRunning {
		p.BolusesDenied++
		return false
	}
	if p.everBolused && now-p.lastBolusAt < sim.Time(p.settings.LockoutInterval) {
		p.BolusesDenied++
		return false
	}
	if p.deliveredLastHour(now)+p.settings.BolusMg > p.settings.HourlyLimitMg {
		p.BolusesDenied++
		return false
	}
	p.lastBolusAt = now
	p.everBolused = true
	actual := p.settings.BolusMg * p.settings.ConcentrationFactor
	p.window = append(p.window, dose{at: now, mg: p.settings.BolusMg}) // pump believes nominal
	// The demand dose infuses at a high rate over BolusDuration rather
	// than instantaneously; a supervisor stop cancels the remainder.
	p.bolusRate = actual / p.settings.BolusDuration.Minutes()
	p.bolusEnd = now + sim.Time(p.settings.BolusDuration)
	p.BolusesDelivered++
	if p.conn.Connected() {
		p.conn.Publish("bolus", p.settings.BolusMg, true, 1, now)
	}
	return true
}

func (p *Pump) deliveredLastHour(now sim.Time) float64 {
	cutoff := now - sim.Hour
	total := 0.0
	keep := p.window[:0]
	for _, d := range p.window {
		if d.at >= cutoff {
			keep = append(keep, d)
			total += d.mg
		}
	}
	p.window = keep
	return total
}

// CurrentRateMgPerMin implements DrugSource: the actual (possibly
// misprogrammed) continuous delivery rate, including any demand dose
// still infusing.
func (p *Pump) CurrentRateMgPerMin() float64 {
	if p.state == PumpStopped {
		return 0
	}
	rate := p.settings.BasalRateMgPerHour / 60 * p.settings.ConcentrationFactor
	if p.k.Now() < p.bolusEnd {
		rate += p.bolusRate
	}
	return rate
}

// TakePendingBolusMg implements DrugSource. The pump delivers demand doses
// through the rate path, so there is never an instantaneous pending mass.
func (p *Pump) TakePendingBolusMg() float64 { return 0 }
