package device

import (
	"errors"
	"fmt"
	"time"
)

// DrugEntry is one drug's dosing envelope in the hospital's drug library —
// the safeguard the paper notes is standard practice yet "not adequate to
// address all the scenarios seen in clinical practice": it catches
// programming outside the envelope but not a wrong-but-plausible program,
// a wrong vial, or PCA-by-proxy. The closed-loop supervisor exists for
// what the library cannot see.
type DrugEntry struct {
	Name                 string
	ConcentrationMgPerMl float64 // expected vial concentration
	MaxBolusMg           float64
	MinLockout           time.Duration
	MaxBasalMgPerHour    float64
	MaxHourlyMg          float64
	// HardLimit marks limits that cannot be overridden; soft limits may
	// be overridden with a second clinician's sign-off.
	HardLimit bool
}

// Validate reports an error for unusable entries.
func (d DrugEntry) Validate() error {
	if d.Name == "" {
		return errors.New("device: drug entry needs a name")
	}
	if d.ConcentrationMgPerMl <= 0 || d.MaxBolusMg <= 0 || d.MaxHourlyMg <= 0 {
		return errors.New("device: drug entry limits must be positive")
	}
	if d.MinLockout < 0 || d.MaxBasalMgPerHour < 0 {
		return errors.New("device: negative drug entry limits")
	}
	return nil
}

// DrugLibrary maps drug names to dosing envelopes.
type DrugLibrary struct {
	entries map[string]DrugEntry
}

// NewDrugLibrary returns an empty library.
func NewDrugLibrary() *DrugLibrary {
	return &DrugLibrary{entries: make(map[string]DrugEntry)}
}

// StandardPCALibrary returns a typical adult post-operative PCA library.
func StandardPCALibrary() *DrugLibrary {
	l := NewDrugLibrary()
	for _, e := range []DrugEntry{
		{
			Name: "morphine", ConcentrationMgPerMl: 1,
			MaxBolusMg: 2, MinLockout: 6 * time.Minute,
			MaxBasalMgPerHour: 1, MaxHourlyMg: 10, HardLimit: true,
		},
		{
			Name: "hydromorphone", ConcentrationMgPerMl: 0.2,
			MaxBolusMg: 0.4, MinLockout: 6 * time.Minute,
			MaxBasalMgPerHour: 0.2, MaxHourlyMg: 2, HardLimit: true,
		},
		{
			Name: "fentanyl", ConcentrationMgPerMl: 0.01,
			MaxBolusMg: 0.025, MinLockout: 5 * time.Minute,
			MaxBasalMgPerHour: 0.01, MaxHourlyMg: 0.1, HardLimit: true,
		},
	} {
		if err := l.Add(e); err != nil {
			panic(err)
		}
	}
	return l
}

// Add registers an entry.
func (l *DrugLibrary) Add(e DrugEntry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if _, dup := l.entries[e.Name]; dup {
		return fmt.Errorf("device: duplicate drug %q", e.Name)
	}
	l.entries[e.Name] = e
	return nil
}

// Lookup fetches an entry.
func (l *DrugLibrary) Lookup(drug string) (DrugEntry, bool) {
	e, ok := l.entries[drug]
	return e, ok
}

// CheckViolation describes one library check failure.
type CheckViolation struct {
	Field string
	Msg   string
	Hard  bool // true: must not be overridden
}

// CheckProgram validates pump settings against the library envelope for a
// drug. It returns every violation found; an empty slice means the
// program is inside the envelope. Note what this CANNOT catch: a
// ConcentrationFactor error (wrong vial) is invisible here because the
// pump believes the programmed concentration — exactly the gap the
// paper's closed-loop supervisor covers.
func (l *DrugLibrary) CheckProgram(drug string, s PumpSettings) ([]CheckViolation, error) {
	e, ok := l.Lookup(drug)
	if !ok {
		return nil, fmt.Errorf("device: drug %q not in library", drug)
	}
	var out []CheckViolation
	add := func(field, format string, args ...any) {
		out = append(out, CheckViolation{Field: field, Msg: fmt.Sprintf(format, args...), Hard: e.HardLimit})
	}
	if s.BolusMg > e.MaxBolusMg {
		add("bolus", "bolus %.2f mg exceeds library maximum %.2f mg", s.BolusMg, e.MaxBolusMg)
	}
	if s.LockoutInterval < e.MinLockout {
		add("lockout", "lockout %v below library minimum %v", s.LockoutInterval, e.MinLockout)
	}
	if s.BasalRateMgPerHour > e.MaxBasalMgPerHour {
		add("basal", "basal %.2f mg/h exceeds library maximum %.2f mg/h", s.BasalRateMgPerHour, e.MaxBasalMgPerHour)
	}
	if s.HourlyLimitMg > e.MaxHourlyMg {
		add("hourly", "hourly cap %.1f mg exceeds library maximum %.1f mg", s.HourlyLimitMg, e.MaxHourlyMg)
	}
	return out, nil
}

// GuardedProgram applies a program to settings only if the library allows
// it (or every violation is soft and override is true). This is the
// "program the pump through the drug library" flow.
func (l *DrugLibrary) GuardedProgram(drug string, s PumpSettings, override bool) (PumpSettings, error) {
	violations, err := l.CheckProgram(drug, s)
	if err != nil {
		return PumpSettings{}, err
	}
	for _, v := range violations {
		if v.Hard || !override {
			return PumpSettings{}, fmt.Errorf("device: drug library rejects program: %s", v.Msg)
		}
	}
	return s, nil
}
