package device

import (
	"time"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// Capnograph measures end-tidal CO2 — the second, independent respiratory
// channel the smart-alarm experiments use for multivariate corroboration
// (challenge (i)): hypoventilation raises EtCO2 while it lowers SpO2, so
// requiring both to move before alarming rejects single-sensor artifacts.
//
// Capabilities:
//
//	sensor etco2 (mmHg)
//	sensor rr    (bpm)
type Capnograph struct {
	conn    *core.DeviceConn
	k       *sim.Kernel
	patient *physio.Patient
	rng     *sim.RNG
}

// CapnographDescriptor returns the ICE descriptor a capnograph announces.
func CapnographDescriptor(id string) core.Descriptor {
	return core.Descriptor{
		ID: id, Kind: core.KindCapnograph,
		Manufacturer: "Repro Medical", Model: "CAP-5", Version: "1.0",
		Capabilities: []core.Capability{
			{Name: "etco2", Class: core.ClassSensor, Unit: "mmHg", Criticality: 3},
			{Name: "rr", Class: core.ClassSensor, Unit: "bpm", Criticality: 3},
		},
	}
}

// NewCapnograph connects a capnograph publishing every interval.
func NewCapnograph(k *sim.Kernel, net *mednet.Network, id string, patient *physio.Patient, interval time.Duration, rng *sim.RNG, cfg core.ConnectConfig) (*Capnograph, error) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	conn, err := core.Connect(k, net, CapnographDescriptor(id), cfg)
	if err != nil {
		return nil, err
	}
	c := &Capnograph{conn: conn, k: k, patient: patient, rng: rng}
	k.Every(interval, func(now sim.Time) { c.publish(now) })
	return c, nil
}

// MustNewCapnograph is NewCapnograph, panicking on error.
func MustNewCapnograph(k *sim.Kernel, net *mednet.Network, id string, patient *physio.Patient, interval time.Duration, rng *sim.RNG, cfg core.ConnectConfig) *Capnograph {
	c, err := NewCapnograph(k, net, id, patient, interval, rng, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Conn exposes the ICE connection.
func (c *Capnograph) Conn() *core.DeviceConn { return c.conn }

func (c *Capnograph) publish(now sim.Time) {
	if !c.conn.Connected() {
		return
	}
	v := c.patient.Vitals()
	// EtCO2 rises as alveolar ventilation falls (CO2 retention); with no
	// breaths at all there is no exhalate to measure.
	if v.RespRate < 4 {
		c.conn.Publish("etco2", 0, false, 0, now)
		c.conn.Publish("rr", 0, false, 0, now)
		return
	}
	vent := v.Ventilation
	if vent < 0.25 {
		vent = 0.25
	}
	etco2 := 38/vent + c.rng.Normal(0, 1)
	c.conn.Publish("etco2", etco2, true, 1, now)
	c.conn.Publish("rr", v.RespRate+c.rng.Normal(0, 0.5), true, 1, now)
}
