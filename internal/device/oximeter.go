package device

import (
	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sigproc"
	"repro/internal/sim"
)

// Oximeter is the pulse oximeter of Figure 1. Rather than reading the
// patient's ground truth directly, it synthesizes a photoplethysmogram
// from the true vitals and runs the sigproc estimator over it — so its
// published values carry realistic estimation error, artifact-induced
// dropouts, and the full "signal processing time" latency of the paper's
// control-loop delay budget (one analysis window per estimate).
//
// Capabilities:
//
//	sensor spo2        (%)   — one estimate per analysis window
//	sensor heart-rate  (bpm)
type Oximeter struct {
	conn    *core.DeviceConn
	k       *sim.Kernel
	patient *physio.Patient
	synth   *sigproc.Synth
	est     *sigproc.Estimator
	tick    *sim.Ticker

	// Counters for experiments.
	Estimates        uint64
	InvalidEstimates uint64
}

// OximeterDescriptor returns the ICE descriptor an oximeter announces.
func OximeterDescriptor(id string) core.Descriptor {
	return core.Descriptor{
		ID: id, Kind: core.KindPulseOximeter,
		Manufacturer: "Repro Medical", Model: "OXI-50", Version: "1.0",
		Capabilities: []core.Capability{
			{Name: "spo2", Class: core.ClassSensor, Unit: "%", Criticality: 3},
			{Name: "heart-rate", Class: core.ClassSensor, Unit: "bpm", Criticality: 3},
		},
	}
}

// NewOximeter connects an oximeter observing the given patient. For event-
// queue economy the waveform is synthesized in one batch per analysis
// window: the estimator sees the same samples it would have accumulated
// at the device's sampling rate, and the estimate is published at the
// window's end — the same observable timing at a fraction of the events.
func NewOximeter(k *sim.Kernel, net *mednet.Network, id string, patient *physio.Patient, rng *sim.RNG, cfg core.ConnectConfig) (*Oximeter, error) {
	conn, err := core.Connect(k, net, OximeterDescriptor(id), cfg)
	if err != nil {
		return nil, err
	}
	o := &Oximeter{
		conn:    conn,
		k:       k,
		patient: patient,
		synth:   sigproc.NewSynth(sigproc.DefaultSynth(), rng),
		est:     sigproc.NewEstimator(sigproc.DefaultEstimator()),
	}
	window := o.est.ProcessingDelay()
	o.tick = k.Every(window.Duration(), func(now sim.Time) { o.processWindow(now, window) })
	return o, nil
}

// MustNewOximeter is NewOximeter, panicking on error.
func MustNewOximeter(k *sim.Kernel, net *mednet.Network, id string, patient *physio.Patient, rng *sim.RNG, cfg core.ConnectConfig) *Oximeter {
	o, err := NewOximeter(k, net, id, patient, rng, cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// Conn exposes the ICE connection.
func (o *Oximeter) Conn() *core.DeviceConn { return o.conn }

// Reset returns the oximeter to its just-connected state for a
// prototype clone: the ICE connection re-announces, the synthesizer and
// estimator clear, counters zero, and the window ticker re-arms —
// NewOximeter's scheduling order, replayed. The probe RNG is owned and
// reseeded by the rig.
func (o *Oximeter) Reset() {
	o.conn.Reset()
	o.synth.Reset()
	o.est.Reset()
	o.Estimates = 0
	o.InvalidEstimates = 0
	o.tick.Reset()
}

// InjectMotion corrupts the probe signal with motion artifact for d.
func (o *Oximeter) InjectMotion(d sim.Time, gain float64) {
	o.synth.InjectMotion(o.k.Now(), d, gain)
}

// InjectDropout simulates probe disconnection for d. During the dropout
// the estimator flags its windows invalid — the supervisor must treat this
// as missing data, not as a healthy reading.
func (o *Oximeter) InjectDropout(d sim.Time) {
	o.synth.InjectDropout(o.k.Now(), d)
}

// InjectBias simulates a mispositioned probe for d: readings stay valid
// (clean waveform) but run delta points low — the single-sensor artifact
// the paper's smart-alarm discussion targets.
func (o *Oximeter) InjectBias(d sim.Time, delta float64) {
	o.synth.InjectBias(o.k.Now(), d, delta)
}

func (o *Oximeter) processWindow(now sim.Time, window sim.Time) {
	if !o.conn.Connected() {
		return
	}
	v := o.patient.Vitals()
	dt := o.synth.SampleInterval()
	start := now - window
	for i := 0; i < o.est.WindowSamples(); i++ {
		ts := start + sim.Time(i)*dt
		s := o.synth.Next(ts, dt, v.HeartRate, v.SpO2)
		if e, ok := o.est.Push(s); ok {
			o.Estimates++
			if !e.Valid {
				o.InvalidEstimates++
			}
			o.conn.Publish("spo2", e.SpO2, e.Valid, e.Quality, start)
			o.conn.Publish("heart-rate", e.HeartRate, e.Valid, e.Quality, start)
		}
	}
}
