package device

import (
	"testing"
	"time"
)

func TestDrugEntryValidate(t *testing.T) {
	bad := []DrugEntry{
		{},
		{Name: "x", ConcentrationMgPerMl: 0, MaxBolusMg: 1, MaxHourlyMg: 1},
		{Name: "x", ConcentrationMgPerMl: 1, MaxBolusMg: 0, MaxHourlyMg: 1},
		{Name: "x", ConcentrationMgPerMl: 1, MaxBolusMg: 1, MaxHourlyMg: 1, MinLockout: -time.Second},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, e)
		}
	}
}

func TestLibraryAddAndLookup(t *testing.T) {
	l := StandardPCALibrary()
	if _, ok := l.Lookup("morphine"); !ok {
		t.Fatal("morphine missing from standard library")
	}
	if _, ok := l.Lookup("etomidate"); ok {
		t.Fatal("phantom drug found")
	}
	if err := l.Add(DrugEntry{Name: "morphine", ConcentrationMgPerMl: 1, MaxBolusMg: 1, MaxHourlyMg: 5}); err == nil {
		t.Fatal("duplicate drug accepted")
	}
}

func TestCheckProgramWithinEnvelope(t *testing.T) {
	l := StandardPCALibrary()
	v, err := l.CheckProgram("morphine", DefaultPumpSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("default program flagged: %+v", v)
	}
}

func TestCheckProgramCatchesMisprogramming(t *testing.T) {
	l := StandardPCALibrary()
	s := DefaultPumpSettings()
	s.BolusMg = 5                       // over 2 mg max
	s.LockoutInterval = 2 * time.Minute // under 6 min
	s.HourlyLimitMg = 30                // over 10 mg
	v, err := l.CheckProgram("morphine", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 {
		t.Fatalf("violations = %+v, want 3", v)
	}
	for _, viol := range v {
		if !viol.Hard {
			t.Fatalf("morphine limits should be hard: %+v", viol)
		}
	}
	if _, err := l.GuardedProgram("morphine", s, true); err == nil {
		t.Fatal("hard-limit violation overridden")
	}
}

// The gap the paper identifies: the library validates what the pump
// BELIEVES, so a wrong-concentration vial (ConcentrationFactor != 1)
// passes every check while quadrupling the actual dose.
func TestLibraryCannotSeeWrongVial(t *testing.T) {
	l := StandardPCALibrary()
	s := DefaultPumpSettings()
	s.ConcentrationFactor = 4 // wrong vial loaded
	v, err := l.CheckProgram("morphine", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("library flagged the invisible vial error: %+v (it cannot know)", v)
	}
	// The program is accepted...
	accepted, err := l.GuardedProgram("morphine", s, false)
	if err != nil {
		t.Fatal(err)
	}
	// ...and the actual delivery is 4x what the library approved.
	actualPerBolus := accepted.BolusMg * accepted.ConcentrationFactor
	entry, _ := l.Lookup("morphine")
	if actualPerBolus <= entry.MaxBolusMg {
		t.Fatal("test premise broken: actual dose should exceed the library max")
	}
}

func TestGuardedProgramSoftOverride(t *testing.T) {
	l := NewDrugLibrary()
	if err := l.Add(DrugEntry{
		Name: "ketamine", ConcentrationMgPerMl: 10,
		MaxBolusMg: 10, MinLockout: 2 * time.Minute,
		MaxBasalMgPerHour: 5, MaxHourlyMg: 60, HardLimit: false,
	}); err != nil {
		t.Fatal(err)
	}
	s := DefaultPumpSettings()
	s.BolusMg = 12 // soft violation
	if _, err := l.GuardedProgram("ketamine", s, false); err == nil {
		t.Fatal("soft violation accepted without override")
	}
	if _, err := l.GuardedProgram("ketamine", s, true); err != nil {
		t.Fatalf("soft violation not overridable: %v", err)
	}
	if _, err := l.GuardedProgram("propofol", s, true); err == nil {
		t.Fatal("unknown drug programmed")
	}
}
