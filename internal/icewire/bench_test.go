package icewire

import (
	"testing"

	"repro/internal/sim"
)

// benchDatum is the steady-state message shape: one sensor observation.
var benchDatum = Datum{Topic: "ox1/spo2", Value: 97.25, Valid: true, Quality: 0.875, Sampled: 4987 * sim.Millisecond}

// BenchmarkEnvelopeCodec is the PR's headline: one op = encode one
// publish envelope into a reused buffer, decode the frame, and decode
// the typed body — the full per-message codec cost on the wire's hot
// path. The acceptance bar is binary ≥ 5x JSON with 0 allocs/op.
func BenchmarkEnvelopeCodec(b *testing.B) {
	run := func(b *testing.B, c Codec) {
		var (
			buf   []byte
			datum Datum
			env   Envelope
			err   error
		)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err = c.AppendEnvelope(buf[:0], MsgPublish, "ox1", "ice-manager", uint64(i), 5*sim.Second, &benchDatum)
			if err != nil {
				b.Fatal(err)
			}
			env, err = c.Decode(buf)
			if err != nil {
				b.Fatal(err)
			}
			if err = c.DecodeBody(&env, &datum); err != nil {
				b.Fatal(err)
			}
		}
		if datum.Topic != benchDatum.Topic {
			b.Fatal("round trip corrupted the datum")
		}
		b.SetBytes(int64(len(buf)))
	}
	b.Run("binary", func(b *testing.B) { run(b, NewBinary()) })
	b.Run("json", func(b *testing.B) { run(b, NewJSON()) })
}

// BenchmarkEnvelopeCodecSigned times the authenticated frame path:
// encode, extract signing bytes, patch a fixed tag in.
func BenchmarkEnvelopeCodecSigned(b *testing.B) {
	tag := make([]byte, 32)
	run := func(b *testing.B, c Codec) {
		var (
			buf []byte
			sig []byte
			err error
		)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err = c.AppendEnvelope(buf[:0], MsgPublish, "ox1", "ice-manager", uint64(i), 5*sim.Second, &benchDatum)
			if err != nil {
				b.Fatal(err)
			}
			if sig, err = c.Signing(sig[:0], buf); err != nil {
				b.Fatal(err)
			}
			if buf, err = c.PatchAuth(buf, tag); err != nil {
				b.Fatal(err)
			}
		}
		_ = sig
	}
	b.Run("binary", func(b *testing.B) { run(b, NewBinary()) })
	b.Run("json", func(b *testing.B) { run(b, NewJSON()) })
}

// The binary codec's steady-state encode+decode+body round trip must be
// allocation-free: the frame lands in the caller's reused buffer, the
// envelope's strings are interned, and body/auth are subslices.
func TestAllocsEnvelopeCodec(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	c := NewBinary()
	var (
		buf   []byte
		env   Envelope
		datum Datum
		err   error
	)
	seq := uint64(0)
	round := func() {
		seq++
		buf, err = c.AppendEnvelope(buf[:0], MsgPublish, "ox1", "ice-manager", seq, 5*sim.Second, &benchDatum)
		if err != nil {
			t.Fatal(err)
		}
		if env, err = c.Decode(buf); err != nil {
			t.Fatal(err)
		}
		if err = c.DecodeBody(&env, &datum); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm the buffer and intern table
	if got := testing.AllocsPerRun(2000, round); got != 0 {
		t.Fatalf("binary encode+decode round trip allocates %v/op, want 0", got)
	}
}
