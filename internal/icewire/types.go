// Package icewire defines the ICE wire protocol: the message types every
// subsystem exchanges over mednet, and the codecs that put them on the
// wire. Two codecs implement the same protocol:
//
//   - Binary (the default): a length-prefixed binary frame format with
//     varint integers and typed body encoders. It exists because the
//     envelope codec dominated per-cell cost once the kernel and delivery
//     paths went allocation-free — short, fixed-shape messages sent
//     millions of times per run are exactly where a compact, carefully
//     specified encoding pays off. Steady-state encode and decode are
//     0 allocs/op (see binary.go for the frame layout).
//   - JSON: the debug/compat codec, byte-compatible with the historical
//     encoding/json wire format. Selectable per Manager/DeviceConn for
//     wire-level debugging and differential testing.
//
// The type definitions live here (rather than internal/core) so the
// codecs, core, and the fuzz/differential harnesses share one source of
// truth without an import cycle; internal/core aliases everything, so
// the rest of the tree keeps saying core.Datum.
package icewire

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// MsgType enumerates the ICE wire protocol message types.
type MsgType string

const (
	MsgAnnounce   MsgType = "announce"    // device -> manager: descriptor
	MsgAdmit      MsgType = "admit"       // manager -> device: admission result
	MsgPublish    MsgType = "publish"     // device -> manager: sensor datum
	MsgCommand    MsgType = "command"     // manager -> device: actuator command
	MsgCommandAck MsgType = "command-ack" // device -> manager
	MsgHeartbeat  MsgType = "heartbeat"   // device -> manager liveness
	MsgBye        MsgType = "bye"         // device -> manager: orderly leave
)

// Envelope is the wire representation of every ICE message. Body holds
// the codec-encoded body bytes (JSON for the JSON codec, the typed binary
// encoding for the binary codec); DecodeBody dispatches on the codec that
// decoded the envelope. Auth carries the optional HMAC tag added by
// internal/security; it covers every field except itself (see
// AppendSigning for the canonical byte string).
type Envelope struct {
	Type MsgType         `json:"type"`
	From string          `json:"from"`
	To   string          `json:"to"`
	Seq  uint64          `json:"seq"`
	At   sim.Time        `json:"at"`
	Body json.RawMessage `json:"body,omitempty"`
	Auth []byte          `json:"auth,omitempty"`

	// codec is the codec that produced this envelope via Decode; nil
	// means JSON (the historical default, kept so hand-built envelopes
	// and the package-level Decode keep working).
	codec Codec
	// signing, when non-nil, is the canonical signing window of the
	// frame this envelope was decoded from — a subslice of the original
	// frame, valid only as long as the frame's buffer is. The binary
	// codec sets it so steady-state verification is zero-copy.
	signing []byte
}

// Datum is the body of a MsgPublish: one sensor observation.
type Datum struct {
	Topic   string   `json:"topic"`
	Value   float64  `json:"value"`
	Valid   bool     `json:"valid"`
	Quality float64  `json:"quality"` // [0,1] signal-quality index
	Sampled sim.Time `json:"sampled"` // when the underlying signal was measured
}

// Command is the body of a MsgCommand.
type Command struct {
	ID   uint64             `json:"id"`
	Name string             `json:"name"`
	Args map[string]float64 `json:"args,omitempty"`
}

// CommandAck is the body of a MsgCommandAck.
type CommandAck struct {
	ID  uint64 `json:"id"`
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// AdmitResult is the body of a MsgAdmit.
type AdmitResult struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// DeviceKind classifies a device for admission checks and app matching.
type DeviceKind string

// Kinds used by the scenarios in the paper.
const (
	KindInfusionPump  DeviceKind = "infusion-pump"
	KindPulseOximeter DeviceKind = "pulse-oximeter"
	KindVentilator    DeviceKind = "ventilator"
	KindXRay          DeviceKind = "x-ray"
	KindMonitor       DeviceKind = "patient-monitor"
	KindBed           DeviceKind = "hospital-bed"
	KindCapnograph    DeviceKind = "capnograph"
)

// CapabilityClass distinguishes what a capability does.
type CapabilityClass string

const (
	ClassSensor   CapabilityClass = "sensor"   // publishes measurements
	ClassActuator CapabilityClass = "actuator" // accepts commands
	ClassSetting  CapabilityClass = "setting"  // accepts configuration
	ClassEvent    CapabilityClass = "event"    // publishes discrete events
)

// Capability is one named function a device offers. Sensor capabilities
// publish on topic "<deviceID>/<name>"; actuator capabilities accept
// commands named "<name>".
type Capability struct {
	Name  string          `json:"name"`
	Class CapabilityClass `json:"class"`
	Unit  string          `json:"unit,omitempty"`
	// Criticality is the FDA-style class of the function (1 = lowest,
	// 3 = highest). The mixed-criticality scenario (III.l) needs this:
	// a Class I bed publishes context events consumed by a Class III
	// monitoring function.
	Criticality int `json:"criticality"`
}

// Descriptor is the self-description a device transmits when announcing —
// the body of a MsgAnnounce.
type Descriptor struct {
	ID           string       `json:"id"`
	Kind         DeviceKind   `json:"kind"`
	Manufacturer string       `json:"manufacturer"`
	Model        string       `json:"model"`
	Version      string       `json:"version"`
	Capabilities []Capability `json:"capabilities"`
}

// Validate reports an error for descriptors unusable for admission.
func (d Descriptor) Validate() error {
	if d.ID == "" {
		return errors.New("core: descriptor missing ID")
	}
	if strings.ContainsAny(d.ID, "/ \t\n") {
		return fmt.Errorf("core: device ID %q contains reserved characters", d.ID)
	}
	if d.Kind == "" {
		return errors.New("core: descriptor missing kind")
	}
	seen := make(map[string]bool, len(d.Capabilities))
	for _, c := range d.Capabilities {
		if c.Name == "" {
			return fmt.Errorf("core: device %s has unnamed capability", d.ID)
		}
		if seen[c.Name] {
			return fmt.Errorf("core: device %s duplicates capability %q", d.ID, c.Name)
		}
		seen[c.Name] = true
		switch c.Class {
		case ClassSensor, ClassActuator, ClassSetting, ClassEvent:
		default:
			return fmt.Errorf("core: device %s capability %q has unknown class %q", d.ID, c.Name, c.Class)
		}
		if c.Criticality < 1 || c.Criticality > 3 {
			return fmt.Errorf("core: device %s capability %q criticality %d outside [1,3]", d.ID, c.Name, c.Criticality)
		}
	}
	return nil
}

// Has reports whether the descriptor offers a capability with the name and
// class.
func (d Descriptor) Has(name string, class CapabilityClass) bool {
	for _, c := range d.Capabilities {
		if c.Name == name && c.Class == class {
			return true
		}
	}
	return false
}
