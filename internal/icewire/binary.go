package icewire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Binary frame layout, version 1. All multi-byte integers are unsigned
// LEB128 varints (encoding/binary Uvarint); strings and byte fields are
// length-prefixed (uvarint length, then the raw bytes); float64s are
// IEEE-754 bits, little-endian, fixed 8 bytes.
//
//	offset 0  version byte (0x01)
//	offset 1  message type code (see typeCodes)
//	uvarint   seq
//	uvarint   at   (sim.Time nanoseconds, as uint64)
//	bytes     from (uvarint length + UTF-8)
//	bytes     to
//	bytes     body (typed encoding, selected by the message type)
//	bytes     auth (empty on unsigned frames)
//
// The canonical signing window is everything before the auth field, so a
// received frame verifies against a plain subslice and an unsigned frame
// signs as frame[:len-1] — no re-serialization on either side.
//
// Body encodings:
//
//	publish      topic, f64 value, bool valid, f64 quality, uvarint sampled
//	command      uvarint id, name, uvarint nargs, nargs × (key, f64),
//	             keys sorted ascending (canonical: one encoding per value)
//	command-ack  uvarint id, bool ok, err
//	admit        bool ok, reason
//	announce     id, kind, manufacturer, model, version, uvarint ncaps,
//	             ncaps × (name, class code byte, unit, uvarint criticality)
//	heartbeat    empty
//	bye          empty
//
// Bools are one byte, strictly 0 or 1. Decoders reject out-of-range
// codes, truncated fields, and trailing garbage, so every accepted frame
// has exactly one encoding — the property the golden vectors pin and the
// fuzz targets defend.
const Version1 = 0x01

// maxInternEntries caps the decoder's string intern table so adversarial
// traffic cannot grow it without bound; beyond the cap strings are
// returned uninterned (correct, just no longer allocation-free).
const maxInternEntries = 1 << 12

var typeCodes = map[MsgType]byte{
	MsgAnnounce:   1,
	MsgAdmit:      2,
	MsgPublish:    3,
	MsgCommand:    4,
	MsgCommandAck: 5,
	MsgHeartbeat:  6,
	MsgBye:        7,
}

var typeNames = [8]MsgType{
	1: MsgAnnounce, 2: MsgAdmit, 3: MsgPublish, 4: MsgCommand,
	5: MsgCommandAck, 6: MsgHeartbeat, 7: MsgBye,
}

var classCodes = map[CapabilityClass]byte{
	ClassSensor: 1, ClassActuator: 2, ClassSetting: 3, ClassEvent: 4,
}

var classNames = [5]CapabilityClass{
	1: ClassSensor, 2: ClassActuator, 3: ClassSetting, 4: ClassEvent,
}

// Binary is the default ICE wire codec. One instance serves one
// simulation cell: the string intern table keeps steady-state decode
// allocation-free, and the scratch buffers keep encode appends in place.
type Binary struct {
	st     codecStats
	intern map[string]string
	body   []byte   // scratch: body encoded before its length prefix is known
	keys   []string // scratch: canonical ordering of command args
}

// NewBinary returns a fresh binary codec instance.
func NewBinary() *Binary {
	return &Binary{intern: make(map[string]string)}
}

// Name implements Codec.
func (c *Binary) Name() string { return "binary" }

// Stats implements Codec.
func (c *Binary) Stats() CodecStats { return c.st.stats() }

// AppendEnvelope implements Codec.
func (c *Binary) AppendEnvelope(dst []byte, t MsgType, from, to string, seq uint64, at sim.Time, body any) ([]byte, error) {
	sampled := c.st.beginSample()
	start := len(dst)
	code, ok := typeCodes[t]
	if !ok {
		return dst, fmt.Errorf("icewire: cannot binary-encode message type %q", t)
	}
	bodyBytes, err := c.appendBody(c.body[:0], body)
	if err != nil {
		return dst, fmt.Errorf("icewire: encoding %s body: %w", t, err)
	}
	c.body = bodyBytes
	dst = append(dst, Version1, code)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(at))
	dst = appendString(dst, from)
	dst = appendString(dst, to)
	dst = binary.AppendUvarint(dst, uint64(len(bodyBytes)))
	dst = append(dst, bodyBytes...)
	dst = append(dst, 0) // auth: empty on unsigned frames
	c.st.endSample(sampled, len(dst)-start)
	return dst, nil
}

// appendBody encodes a typed body into dst.
func (c *Binary) appendBody(dst []byte, body any) ([]byte, error) {
	switch b := body.(type) {
	case nil:
		return dst, nil
	case *Datum:
		return appendDatum(dst, b), nil
	case Datum:
		return appendDatum(dst, &b), nil
	case *Command:
		return c.appendCommand(dst, b), nil
	case Command:
		return c.appendCommand(dst, &b), nil
	case *CommandAck:
		return appendAck(dst, b), nil
	case CommandAck:
		return appendAck(dst, &b), nil
	case *AdmitResult:
		return appendAdmit(dst, b), nil
	case AdmitResult:
		return appendAdmit(dst, &b), nil
	case *Descriptor:
		return appendDescriptor(dst, b)
	case Descriptor:
		return appendDescriptor(dst, &b)
	default:
		return dst, fmt.Errorf("unsupported body type %T", body)
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendDatum(dst []byte, d *Datum) []byte {
	dst = appendString(dst, d.Topic)
	dst = appendFloat(dst, d.Value)
	dst = appendBool(dst, d.Valid)
	dst = appendFloat(dst, d.Quality)
	return binary.AppendUvarint(dst, uint64(d.Sampled))
}

func (c *Binary) appendCommand(dst []byte, cmd *Command) []byte {
	dst = binary.AppendUvarint(dst, cmd.ID)
	dst = appendString(dst, cmd.Name)
	dst = binary.AppendUvarint(dst, uint64(len(cmd.Args)))
	if len(cmd.Args) == 0 {
		return dst
	}
	// Canonical arg order: keys sorted ascending, via the reusable
	// scratch and an insertion sort (sort.Strings would let the slice
	// escape through its interface argument).
	keys := c.keys[:0]
	for k := range cmd.Args {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	c.keys = keys
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendFloat(dst, cmd.Args[k])
	}
	return dst
}

func appendAck(dst []byte, a *CommandAck) []byte {
	dst = binary.AppendUvarint(dst, a.ID)
	dst = appendBool(dst, a.OK)
	return appendString(dst, a.Err)
}

func appendAdmit(dst []byte, a *AdmitResult) []byte {
	dst = appendBool(dst, a.OK)
	return appendString(dst, a.Reason)
}

func appendDescriptor(dst []byte, d *Descriptor) ([]byte, error) {
	dst = appendString(dst, d.ID)
	dst = appendString(dst, string(d.Kind))
	dst = appendString(dst, d.Manufacturer)
	dst = appendString(dst, d.Model)
	dst = appendString(dst, d.Version)
	dst = binary.AppendUvarint(dst, uint64(len(d.Capabilities)))
	for _, cb := range d.Capabilities {
		code, ok := classCodes[cb.Class]
		if !ok {
			return dst, fmt.Errorf("capability %q has unknown class %q", cb.Name, cb.Class)
		}
		dst = appendString(dst, cb.Name)
		dst = append(dst, code)
		dst = appendString(dst, cb.Unit)
		if cb.Criticality < 0 {
			return dst, fmt.Errorf("capability %q has negative criticality", cb.Name)
		}
		dst = binary.AppendUvarint(dst, uint64(cb.Criticality))
	}
	return dst, nil
}

// appendSigningFrame is the canonical signing form shared by every
// codec: the binary framing of all fields except Auth. Message types
// outside the wire protocol (possible on hand-built JSON envelopes)
// encode as 0xFF + the type string — a code no real binary frame can
// start its signing window with, so exotic envelopes stay signable
// without colliding with protocol frames.
func appendSigningFrame(dst []byte, t MsgType, from, to string, seq uint64, at sim.Time, body []byte) []byte {
	dst = append(dst, Version1)
	if code, ok := typeCodes[t]; ok {
		dst = append(dst, code)
	} else {
		dst = append(dst, 0xFF)
		dst = appendString(dst, string(t))
	}
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(at))
	dst = appendString(dst, from)
	dst = appendString(dst, to)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// --- decoding ---

// reader is a bounds-checked cursor over one frame. Every read reports
// failure instead of panicking, which is what lets the fuzz targets
// assert "decode never panics on arbitrary bytes".
type reader struct {
	data []byte
	off  int
}

var errTruncated = errors.New("icewire: truncated frame")

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, errTruncated
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errors.New("icewire: bad varint")
	}
	// Reject non-minimal encodings (a trailing zero group): every value
	// has exactly one accepted wire form, so signed frames cannot be
	// mutated into a second byte string with the same meaning.
	if n > 1 && r.data[r.off+n-1] == 0 {
		return 0, errors.New("icewire: non-minimal varint")
	}
	r.off += n
	return v, nil
}

// bytes returns a length-prefixed field as a subslice of the frame.
func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.off) {
		return nil, errTruncated
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) float() (float64, error) {
	if len(r.data)-r.off < 8 {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, nil
}

func (r *reader) bool() (bool, error) {
	b, err := r.byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("icewire: bool byte 0x%02x", b)
	}
}

func (r *reader) rest() int { return len(r.data) - r.off }

// internString returns a stable string for the bytes, allocation-free
// once the value has been seen (the compiler elides the []byte→string
// conversion in the map lookup).
func (c *Binary) internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := c.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(c.intern) < maxInternEntries {
		c.intern[s] = s
	}
	return s
}

// Decode implements Codec. The returned envelope's From/To are interned,
// and Body, Auth and the signing window alias the input buffer.
func (c *Binary) Decode(data []byte) (Envelope, error) {
	var env Envelope
	if len(data) < 2 {
		return env, errTruncated
	}
	if data[0] != Version1 {
		return env, fmt.Errorf("icewire: unsupported frame version 0x%02x", data[0])
	}
	code := data[1]
	if int(code) >= len(typeNames) || typeNames[code] == "" {
		return env, fmt.Errorf("icewire: unknown message type code 0x%02x", code)
	}
	r := reader{data: data, off: 2}
	var err error
	if env.Seq, err = r.uvarint(); err != nil {
		return Envelope{}, err
	}
	at, err := r.uvarint()
	if err != nil {
		return Envelope{}, err
	}
	env.At = sim.Time(at)
	from, err := r.bytes()
	if err != nil {
		return Envelope{}, err
	}
	to, err := r.bytes()
	if err != nil {
		return Envelope{}, err
	}
	body, err := r.bytes()
	if err != nil {
		return Envelope{}, err
	}
	signingEnd := r.off
	auth, err := r.bytes()
	if err != nil {
		return Envelope{}, err
	}
	if r.rest() != 0 {
		return Envelope{}, fmt.Errorf("icewire: %d trailing bytes after frame", r.rest())
	}
	if len(from) == 0 {
		return Envelope{}, errors.New("core: envelope missing sender")
	}
	env.Type = typeNames[code]
	env.From = c.internString(from)
	env.To = c.internString(to)
	if len(body) > 0 {
		env.Body = body
	}
	if len(auth) > 0 {
		env.Auth = auth
	}
	env.codec = c
	env.signing = data[:signingEnd]
	return env, nil
}

// DecodeBody implements Codec.
func (c *Binary) DecodeBody(e *Envelope, out any) error {
	if len(e.Body) == 0 {
		return fmt.Errorf("core: %s envelope has empty body", e.Type)
	}
	r := reader{data: e.Body}
	var err error
	switch v := out.(type) {
	case *Datum:
		err = c.readDatum(&r, v)
	case *Command:
		err = c.readCommand(&r, v)
	case *CommandAck:
		err = c.readAck(&r, v)
	case *AdmitResult:
		err = readAdmit(&r, v)
	case *Descriptor:
		err = c.readDescriptor(&r, v)
	default:
		return fmt.Errorf("icewire: cannot binary-decode into %T", out)
	}
	if err == nil && r.rest() != 0 {
		err = fmt.Errorf("%d trailing body bytes", r.rest())
	}
	if err != nil {
		return fmt.Errorf("core: decoding %s body: %w", e.Type, err)
	}
	return nil
}

func (c *Binary) readDatum(r *reader, d *Datum) error {
	topic, err := r.bytes()
	if err != nil {
		return err
	}
	d.Topic = c.internString(topic)
	if d.Value, err = r.float(); err != nil {
		return err
	}
	if d.Valid, err = r.bool(); err != nil {
		return err
	}
	if d.Quality, err = r.float(); err != nil {
		return err
	}
	sampled, err := r.uvarint()
	if err != nil {
		return err
	}
	d.Sampled = sim.Time(sampled)
	return nil
}

func (c *Binary) readCommand(r *reader, cmd *Command) error {
	id, err := r.uvarint()
	if err != nil {
		return err
	}
	cmd.ID = id
	name, err := r.bytes()
	if err != nil {
		return err
	}
	cmd.Name = c.internString(name)
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	cmd.Args = nil
	if n == 0 {
		return nil
	}
	// Each arg is at least 1 (key length) + 8 (value) bytes; reject
	// counts the remaining frame cannot possibly hold before allocating.
	if n > uint64(r.rest())/9 {
		return errTruncated
	}
	cmd.Args = make(map[string]float64, n)
	prev := ""
	for i := uint64(0); i < n; i++ {
		k, err := r.bytes()
		if err != nil {
			return err
		}
		key := c.internString(k)
		// Enforce the encoder's canonical form — strictly ascending
		// keys — so no two byte strings decode to the same command
		// (duplicate keys would silently overwrite each other).
		if i > 0 && key <= prev {
			return fmt.Errorf("args out of canonical order (%q after %q)", key, prev)
		}
		prev = key
		v, err := r.float()
		if err != nil {
			return err
		}
		cmd.Args[key] = v
	}
	return nil
}

func (c *Binary) readAck(r *reader, a *CommandAck) error {
	id, err := r.uvarint()
	if err != nil {
		return err
	}
	a.ID = id
	if a.OK, err = r.bool(); err != nil {
		return err
	}
	errStr, err := r.bytes()
	if err != nil {
		return err
	}
	a.Err = c.internString(errStr)
	return nil
}

func readAdmit(r *reader, a *AdmitResult) error {
	ok, err := r.bool()
	if err != nil {
		return err
	}
	a.OK = ok
	reason, err := r.bytes()
	if err != nil {
		return err
	}
	a.Reason = string(reason)
	return nil
}

func (c *Binary) readDescriptor(r *reader, d *Descriptor) error {
	read := func(dst *string) error {
		b, err := r.bytes()
		if err != nil {
			return err
		}
		*dst = string(b)
		return nil
	}
	if err := read(&d.ID); err != nil {
		return err
	}
	var kind string
	if err := read(&kind); err != nil {
		return err
	}
	d.Kind = DeviceKind(kind)
	if err := read(&d.Manufacturer); err != nil {
		return err
	}
	if err := read(&d.Model); err != nil {
		return err
	}
	if err := read(&d.Version); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	d.Capabilities = nil
	if n == 0 {
		return nil
	}
	// Each capability is at least 4 bytes (two lengths, class, criticality).
	if n > uint64(r.rest())/4 {
		return errTruncated
	}
	d.Capabilities = make([]Capability, 0, n)
	for i := uint64(0); i < n; i++ {
		var cb Capability
		if err := read(&cb.Name); err != nil {
			return err
		}
		code, err := r.byte()
		if err != nil {
			return err
		}
		if int(code) >= len(classNames) || classNames[code] == "" {
			return fmt.Errorf("unknown capability class code 0x%02x", code)
		}
		cb.Class = classNames[code]
		if err := read(&cb.Unit); err != nil {
			return err
		}
		crit, err := r.uvarint()
		if err != nil {
			return err
		}
		if crit > math.MaxInt32 {
			return fmt.Errorf("criticality %d out of range", crit)
		}
		cb.Criticality = int(crit)
		d.Capabilities = append(d.Capabilities, cb)
	}
	return nil
}

// splitAuth locates the auth field of an encoded frame, returning the
// signing window (everything before the auth length prefix) and the tag.
func splitAuth(frame []byte) (signing, auth []byte, err error) {
	if len(frame) < 2 {
		return nil, nil, errTruncated
	}
	if frame[0] != Version1 {
		return nil, nil, fmt.Errorf("icewire: unsupported frame version 0x%02x", frame[0])
	}
	r := reader{data: frame, off: 2}
	if _, err := r.uvarint(); err != nil { // seq
		return nil, nil, err
	}
	if _, err := r.uvarint(); err != nil { // at
		return nil, nil, err
	}
	for i := 0; i < 3; i++ { // from, to, body
		if _, err := r.bytes(); err != nil {
			return nil, nil, err
		}
	}
	signingEnd := r.off
	auth, err = r.bytes()
	if err != nil {
		return nil, nil, err
	}
	if r.rest() != 0 {
		return nil, nil, fmt.Errorf("icewire: %d trailing bytes after frame", r.rest())
	}
	return frame[:signingEnd], auth, nil
}

// Signing implements Codec: for binary frames the canonical signing
// bytes are a subslice of the frame itself, so dst is unused.
func (c *Binary) Signing(dst, frame []byte) ([]byte, error) {
	signing, _, err := splitAuth(frame)
	return signing, err
}

// PatchAuth implements Codec: the auth field is the frame's final field,
// so attaching a tag replaces the empty auth suffix in place.
func (c *Binary) PatchAuth(frame, tag []byte) ([]byte, error) {
	signing, auth, err := splitAuth(frame)
	if err != nil {
		return frame, err
	}
	if len(auth) != 0 {
		return frame, errors.New("icewire: frame already authenticated")
	}
	if len(tag) == 0 {
		return frame, nil
	}
	frame = binary.AppendUvarint(frame[:len(signing)], uint64(len(tag)))
	return append(frame, tag...), nil
}
