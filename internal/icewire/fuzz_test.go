package icewire

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/sim"
)

// FuzzDecodeBinary asserts the decoder's safety contract on arbitrary
// bytes: it never panics, never over-allocates (length fields are
// bounds-checked against the remaining input before any allocation), and
// anything it does accept re-encodes to a frame that decodes to the same
// envelope — accepted frames have exactly one meaning.
func FuzzDecodeBinary(f *testing.F) {
	// Seeds beyond the checked-in corpus (testdata/fuzz/FuzzDecodeBinary).
	c := NewBinary()
	frame, err := c.AppendEnvelope(nil, MsgPublish, "ox1", "ice-manager", 42, 5*sim.Second,
		&Datum{Topic: "ox1/spo2", Value: 97.25, Valid: true, Quality: 0.875, Sampled: 4987 * sim.Millisecond})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{Version1, 6, 1, 0, 1, 'a', 1, 'b', 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewBinary()
		env, err := c.Decode(data)
		if err != nil {
			return // rejection is always fine; panicking is not
		}
		// Bodies must decode (or reject) without panicking too.
		exerciseBodyDecoders(c, &env)

		// Accepted frames are canonical: re-encoding the decoded fields
		// with the raw body and auth reproduces the input bytes.
		re := appendSigningFrame(nil, env.Type, env.From, env.To, env.Seq, env.At, env.Body)
		re = appendString(re, string(env.Auth))
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not canonical:\nin  %x\nout %x", data, re)
		}
	})
}

// exerciseBodyDecoders runs the typed decoder matching the envelope's
// message type; any error is acceptable, any panic is the bug.
func exerciseBodyDecoders(c *Binary, env *Envelope) {
	switch env.Type {
	case MsgPublish:
		var d Datum
		_ = c.DecodeBody(env, &d)
	case MsgCommand:
		var cmd Command
		_ = c.DecodeBody(env, &cmd)
	case MsgCommandAck:
		var a CommandAck
		_ = c.DecodeBody(env, &a)
	case MsgAdmit:
		var a AdmitResult
		_ = c.DecodeBody(env, &a)
	case MsgAnnounce:
		var d Descriptor
		_ = c.DecodeBody(env, &d)
	}
}

// FuzzEnvelopeRoundTrip asserts encode∘decode is the identity for valid
// envelopes across every body type: arbitrary field values (including
// non-finite floats and non-UTF-8 strings) survive the binary wire
// bit-exactly, and re-encoding reproduces the identical frame.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add(byte(0), uint64(42), int64(5e9), "ox1", "ice-manager", "ox1/spo2", "x", uint64(0), 97.25, 0.875, true)
	f.Add(byte(1), uint64(7), int64(0), "mgr", "pump1", "set-basal", "rate", uint64(3), 2.5, 30.0, false)
	f.Add(byte(2), uint64(8), int64(1), "pump1", "mgr", "pump jammed", "", uint64(4), 0.0, 0.0, false)
	f.Add(byte(3), uint64(1), int64(2), "mgr", "dev", "kind mismatch", "", uint64(0), 0.0, 0.0, true)
	f.Add(byte(4), uint64(2), int64(3), "dev", "mgr", "acme", "mg/min", uint64(1), 1.0, 0.0, true)

	f.Fuzz(func(t *testing.T, kind byte, seq uint64, at int64, from, to, s1, s2 string, u1 uint64, v1, v2 float64, b1 bool) {
		if from == "" {
			from = "d" // Decode requires a sender, as the protocol does
		}
		var typ MsgType
		var body any
		switch kind % 5 {
		case 0:
			typ = MsgPublish
			body = &Datum{Topic: s1, Value: v1, Valid: b1, Quality: v2, Sampled: sim.Time(u1)}
		case 1:
			typ = MsgCommand
			cmd := &Command{ID: u1, Name: s1}
			if s2 != "" {
				cmd.Args = map[string]float64{s2: v1, s2 + "2": v2}
			}
			body = cmd
		case 2:
			typ = MsgCommandAck
			body = &CommandAck{ID: u1, OK: b1, Err: s1}
		case 3:
			typ = MsgAdmit
			body = &AdmitResult{OK: b1, Reason: s1}
		case 4:
			typ = MsgAnnounce
			body = &Descriptor{ID: from, Kind: DeviceKind(s1), Manufacturer: s2, Model: "m", Version: "v",
				Capabilities: []Capability{{Name: "c", Class: ClassSensor, Unit: s2, Criticality: int(u1 % 4)}}}
		}
		c := NewBinary()
		frame, err := c.AppendEnvelope(nil, typ, from, to, seq, sim.Time(at), body)
		if err != nil {
			t.Fatalf("valid envelope failed to encode: %v", err)
		}
		env, err := c.Decode(frame)
		if err != nil {
			t.Fatalf("own frame failed to decode: %v", err)
		}
		if env.Type != typ || env.From != from || env.To != to || env.Seq != seq || env.At != sim.Time(at) {
			t.Fatalf("header mismatch: %+v", env)
		}
		checkBodyIdentity(t, c, &env, body)

		// Re-encoding the decoded envelope must reproduce the frame.
		re, err := NewBinary().AppendEnvelope(nil, env.Type, env.From, env.To, env.Seq, env.At, body)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, frame) {
			t.Fatalf("encode is not deterministic:\n%x\nvs\n%x", frame, re)
		}
	})
}

func eqBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func checkBodyIdentity(t *testing.T, c *Binary, env *Envelope, in any) {
	t.Helper()
	switch want := in.(type) {
	case *Datum:
		var got Datum
		if err := c.DecodeBody(env, &got); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		if got.Topic != want.Topic || got.Valid != want.Valid || got.Sampled != want.Sampled ||
			!eqBits(got.Value, want.Value) || !eqBits(got.Quality, want.Quality) {
			t.Fatalf("datum mismatch: %+v vs %+v", got, want)
		}
	case *Command:
		var got Command
		if err := c.DecodeBody(env, &got); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		if got.ID != want.ID || got.Name != want.Name || len(got.Args) != len(want.Args) {
			t.Fatalf("command mismatch: %+v vs %+v", got, want)
		}
		for k, v := range want.Args {
			if gv, ok := got.Args[k]; !ok || !eqBits(gv, v) {
				t.Fatalf("arg %q mismatch", k)
			}
		}
	case *CommandAck:
		var got CommandAck
		if err := c.DecodeBody(env, &got); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		if got != *want {
			t.Fatalf("ack mismatch: %+v vs %+v", got, want)
		}
	case *AdmitResult:
		var got AdmitResult
		if err := c.DecodeBody(env, &got); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		if got != *want {
			t.Fatalf("admit mismatch: %+v vs %+v", got, want)
		}
	case *Descriptor:
		var got Descriptor
		if err := c.DecodeBody(env, &got); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		if got.ID != want.ID || got.Kind != want.Kind || len(got.Capabilities) != len(want.Capabilities) {
			t.Fatalf("descriptor mismatch: %+v vs %+v", got, want)
		}
	}
}
