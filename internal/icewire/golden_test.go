package icewire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden wire vectors and fuzz seed corpus")

// goldenEnvelope is one pinned frame: fixed field values so the encoding
// can never drift silently. One vector per MsgType, plus a signed frame.
type goldenEnvelope struct {
	name string
	typ  MsgType
	from string
	to   string
	seq  uint64
	at   sim.Time
	body any
	tag  []byte // non-nil: PatchAuth'd frame
}

func goldenEnvelopes() []goldenEnvelope {
	desc := testDescriptor()
	return []goldenEnvelope{
		{name: "announce", typ: MsgAnnounce, from: "pump1", to: "ice-manager", seq: 1, at: 0, body: &desc},
		{name: "admit", typ: MsgAdmit, from: "ice-manager", to: "pump1", seq: 1, at: 2 * sim.Millisecond,
			body: &AdmitResult{OK: true}},
		{name: "admit-denied", typ: MsgAdmit, from: "ice-manager", to: "rogue", seq: 2, at: 3 * sim.Millisecond,
			body: &AdmitResult{OK: false, Reason: "kind mismatch"}},
		{name: "publish", typ: MsgPublish, from: "ox1", to: "ice-manager", seq: 42, at: 5 * sim.Second,
			body: &Datum{Topic: "ox1/spo2", Value: 97.25, Valid: true, Quality: 0.875, Sampled: 4987 * sim.Millisecond}},
		{name: "command", typ: MsgCommand, from: "ice-manager", to: "pump1", seq: 7, at: 90 * sim.Second,
			body: &Command{ID: 3, Name: "set-basal", Args: map[string]float64{"rate": 2.5, "cap": 30}}},
		{name: "command-ack", typ: MsgCommandAck, from: "pump1", to: "ice-manager", seq: 8, at: 90*sim.Second + 4*sim.Millisecond,
			body: &CommandAck{ID: 3, OK: true}},
		{name: "command-ack-err", typ: MsgCommandAck, from: "pump1", to: "ice-manager", seq: 9, at: 91 * sim.Second,
			body: &CommandAck{ID: 4, OK: false, Err: "pump jammed"}},
		{name: "heartbeat", typ: MsgHeartbeat, from: "ox1", to: "ice-manager", seq: 43, at: 6 * sim.Second},
		{name: "bye", typ: MsgBye, from: "ox1", to: "ice-manager", seq: 44, at: 7 * sim.Second},
		{name: "publish-signed", typ: MsgPublish, from: "ox1", to: "ice-manager", seq: 45, at: 8 * sim.Second,
			body: &Datum{Topic: "ox1/spo2", Value: 96.5, Valid: true, Quality: 1, Sampled: 8 * sim.Second},
			tag:  bytes.Repeat([]byte{0x5A}, 32)},
	}
}

func encodeGolden(t *testing.T, g goldenEnvelope) []byte {
	t.Helper()
	c := NewBinary()
	frame, err := c.AppendEnvelope(nil, g.typ, g.from, g.to, g.seq, g.at, g.body)
	if err != nil {
		t.Fatalf("%s: %v", g.name, err)
	}
	if g.tag != nil {
		if frame, err = c.PatchAuth(frame, g.tag); err != nil {
			t.Fatalf("%s: patch: %v", g.name, err)
		}
	}
	return frame
}

// TestGoldenWireVectors pins the binary wire format: every MsgType's
// frame must match its checked-in hex vector byte for byte. A failure
// here means the format changed — bump the version byte and write a
// migration, don't regenerate blindly.
func TestGoldenWireVectors(t *testing.T) {
	for _, g := range goldenEnvelopes() {
		frame := encodeGolden(t, g)
		path := filepath.Join("testdata", g.name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(hex.EncodeToString(frame)+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (run with -update to regenerate): %v", g.name, err)
		}
		got := hex.EncodeToString(frame)
		if got != strings.TrimSpace(string(want)) {
			t.Errorf("%s: wire format drifted:\ngot  %s\nwant %s", g.name, got, strings.TrimSpace(string(want)))
		}
		// Every golden frame must also decode back to its own fields.
		env, err := NewBinary().Decode(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", g.name, err)
		}
		if env.Type != g.typ || env.From != g.from || env.To != g.to || env.Seq != g.seq || env.At != g.at {
			t.Errorf("%s: decoded header mismatch: %+v", g.name, env)
		}
		if g.tag != nil && !bytes.Equal(env.Auth, g.tag) {
			t.Errorf("%s: decoded tag mismatch", g.name)
		}
	}
}

// Version 1 frames carry version byte 0x01 first, and the decoder
// rejects every other version outright — the upgrade path is explicit.
func TestVersionByte(t *testing.T) {
	g := goldenEnvelopes()[3] // publish
	frame := encodeGolden(t, g)
	if frame[0] != Version1 {
		t.Fatalf("frame starts with 0x%02x, want version byte 0x%02x", frame[0], Version1)
	}
	for _, v := range []byte{0x00, 0x02, 0x7F, 0xFF} {
		bad := append([]byte(nil), frame...)
		bad[0] = v
		if _, err := NewBinary().Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("version 0x%02x: err = %v, want version rejection", v, err)
		}
	}
}

// With -update, regenerate the fuzz seed corpus from the golden frames
// plus a few adversarial shapes, in Go's corpus file format.
func TestFuzzSeedCorpus(t *testing.T) {
	if !*update {
		t.Skip("corpus is checked in; run with -update to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeBinary")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := make(map[string][]byte)
	for _, g := range goldenEnvelopes() {
		seeds["golden-"+g.name] = encodeGolden(t, g)
	}
	seeds["empty"] = nil
	seeds["version-only"] = []byte{Version1}
	seeds["bad-version"] = []byte{0x02, 0x03, 0x01}
	seeds["huge-length"] = []byte{Version1, 3, 1, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	seeds["overlong-varint"] = append([]byte{Version1, 3}, bytes.Repeat([]byte{0x80}, 11)...)
	truncated := encodeGolden(t, goldenEnvelopes()[0])
	seeds["truncated-announce"] = truncated[:len(truncated)/2]
	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
