package icewire

import "encoding/binary"

// Exported frame primitives. The ICE envelope codec and the icemesh RPC
// protocol share one low-level encoding — minimal-form LEB128 varints,
// uvarint-length-prefixed byte fields, fixed 8-byte IEEE-754 floats,
// strict 0/1 bools — so sibling wire formats inherit the same canonical-
// form and never-panic guarantees instead of re-deriving them. The
// append side composes encoding/binary's AppendUvarint with the helpers
// below; the decode side is Reader, the bounds-checked cursor the fuzz
// targets certify.

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte { return appendString(dst, s) }

// AppendBytes appends a uvarint-length-prefixed byte field.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendFloat appends a float64 as its IEEE-754 bits, little-endian.
func AppendFloat(dst []byte, f float64) []byte { return appendFloat(dst, f) }

// AppendBool appends a bool as one strict 0/1 byte.
func AppendBool(dst []byte, b bool) []byte { return appendBool(dst, b) }

// Reader is a bounds-checked cursor over one frame. Every read reports
// failure instead of panicking — the property that lets decoders built
// on it assert "never panics on arbitrary bytes" — and varint reads
// reject non-minimal encodings, so every accepted value has exactly one
// wire form.
type Reader struct{ r reader }

// NewReader returns a cursor over data, positioned at offset 0.
func NewReader(data []byte) *Reader { return &Reader{r: reader{data: data}} }

// Byte reads one byte.
func (r *Reader) Byte() (byte, error) { return r.r.byte() }

// Uvarint reads one minimal-form LEB128 varint.
func (r *Reader) Uvarint() (uint64, error) { return r.r.uvarint() }

// Bytes reads a uvarint-length-prefixed field as a subslice of the
// frame — no copy; the result is valid as long as the input buffer is.
func (r *Reader) Bytes() ([]byte, error) { return r.r.bytes() }

// String reads a uvarint-length-prefixed field as a freshly allocated
// string.
func (r *Reader) String() (string, error) {
	b, err := r.r.bytes()
	return string(b), err
}

// Float reads a fixed 8-byte little-endian IEEE-754 float64.
func (r *Reader) Float() (float64, error) { return r.r.float() }

// Bool reads one byte, accepting only the strict 0/1 encodings.
func (r *Reader) Bool() (bool, error) { return r.r.bool() }

// Rest reports how many bytes remain unread. Decoders reject frames
// with Rest != 0 after the last field, so trailing garbage never rides
// along on an accepted frame.
func (r *Reader) Rest() int { return r.r.rest() }
