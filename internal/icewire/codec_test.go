package icewire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func testDescriptor() Descriptor {
	return Descriptor{
		ID: "pump1", Kind: KindInfusionPump,
		Manufacturer: "acme", Model: "pca-9", Version: "2.1",
		Capabilities: []Capability{
			{Name: "rate", Class: ClassSensor, Unit: "mg/min", Criticality: 3},
			{Name: "stop", Class: ClassActuator, Criticality: 3},
			{Name: "lockout", Class: ClassSetting, Unit: "min", Criticality: 2},
			{Name: "door-open", Class: ClassEvent, Criticality: 1},
		},
	}
}

// Every typed body must round-trip bit-exactly through both codecs.
func TestBodyRoundTripBothCodecs(t *testing.T) {
	bodies := []struct {
		typ  MsgType
		in   any
		out  func() any
		same func(in, out any) bool
	}{
		{
			MsgPublish,
			&Datum{Topic: "ox1/spo2", Value: 97.25, Valid: true, Quality: 0.875, Sampled: 123 * sim.Millisecond},
			func() any { return &Datum{} },
			func(in, out any) bool { return *in.(*Datum) == *out.(*Datum) },
		},
		{
			MsgCommand,
			&Command{ID: 42, Name: "set-basal", Args: map[string]float64{"rate": 2.5, "cap": 30}},
			func() any { return &Command{} },
			func(in, out any) bool {
				a, b := in.(*Command), out.(*Command)
				if a.ID != b.ID || a.Name != b.Name || len(a.Args) != len(b.Args) {
					return false
				}
				for k, v := range a.Args {
					if b.Args[k] != v {
						return false
					}
				}
				return true
			},
		},
		{
			MsgCommand,
			&Command{ID: 7, Name: "stop"},
			func() any { return &Command{} },
			func(in, out any) bool {
				a, b := in.(*Command), out.(*Command)
				return a.ID == b.ID && a.Name == b.Name && len(b.Args) == 0
			},
		},
		{
			MsgCommandAck,
			&CommandAck{ID: 42, OK: false, Err: "pump jammed"},
			func() any { return &CommandAck{} },
			func(in, out any) bool { return *in.(*CommandAck) == *out.(*CommandAck) },
		},
		{
			MsgAdmit,
			&AdmitResult{OK: false, Reason: "kind mismatch"},
			func() any { return &AdmitResult{} },
			func(in, out any) bool { return *in.(*AdmitResult) == *out.(*AdmitResult) },
		},
		{
			MsgAnnounce,
			func() any { d := testDescriptor(); return &d }(),
			func() any { return &Descriptor{} },
			func(in, out any) bool {
				a, b := in.(*Descriptor), out.(*Descriptor)
				if a.ID != b.ID || a.Kind != b.Kind || a.Manufacturer != b.Manufacturer ||
					a.Model != b.Model || a.Version != b.Version || len(a.Capabilities) != len(b.Capabilities) {
					return false
				}
				for i := range a.Capabilities {
					if a.Capabilities[i] != b.Capabilities[i] {
						return false
					}
				}
				return true
			},
		},
	}
	for _, codec := range []Codec{NewBinary(), NewJSON()} {
		for _, tc := range bodies {
			frame, err := codec.AppendEnvelope(nil, tc.typ, "dev", "mgr", 9, 55*sim.Second, tc.in)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", codec.Name(), tc.typ, err)
			}
			env, err := codec.Decode(frame)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", codec.Name(), tc.typ, err)
			}
			if env.Type != tc.typ || env.From != "dev" || env.To != "mgr" || env.Seq != 9 || env.At != 55*sim.Second {
				t.Fatalf("%s/%s: header mismatch: %+v", codec.Name(), tc.typ, env)
			}
			out := tc.out()
			if err := env.DecodeBody(out); err != nil {
				t.Fatalf("%s/%s: decode body: %v", codec.Name(), tc.typ, err)
			}
			if !tc.same(tc.in, out) {
				t.Fatalf("%s/%s: round trip mismatch:\nin  %+v\nout %+v", codec.Name(), tc.typ, tc.in, out)
			}
		}
	}
}

// Body-less messages (heartbeat, bye) round-trip with empty bodies, and
// decoding a body out of them errors rather than fabricating one.
func TestEmptyBodyMessages(t *testing.T) {
	for _, codec := range []Codec{NewBinary(), NewJSON()} {
		for _, typ := range []MsgType{MsgHeartbeat, MsgBye} {
			frame, err := codec.AppendEnvelope(nil, typ, "dev", "mgr", 3, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			env, err := codec.Decode(frame)
			if err != nil {
				t.Fatal(err)
			}
			if len(env.Body) != 0 {
				t.Fatalf("%s/%s: unexpected body %q", codec.Name(), typ, env.Body)
			}
			var d Datum
			if err := env.DecodeBody(&d); err == nil || !strings.Contains(err.Error(), "empty body") {
				t.Fatalf("%s/%s: empty body decode err = %v", codec.Name(), typ, err)
			}
		}
	}
}

// The two codecs must expose identical values for the same message even
// though their wire bytes are different.
func TestCodecsAgreeOnValues(t *testing.T) {
	in := Datum{Topic: "ox1/spo2", Value: 97.1234567890123, Valid: true, Quality: 0.5, Sampled: 7 * sim.Minute}
	var out [2]Datum
	for i, codec := range []Codec{NewBinary(), NewJSON()} {
		frame, err := codec.AppendEnvelope(nil, MsgPublish, "ox1", "mgr", 1, sim.Second, &in)
		if err != nil {
			t.Fatal(err)
		}
		env, err := codec.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.DecodeBody(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if out[0] != out[1] {
		t.Fatalf("codecs disagree: binary %+v vs json %+v", out[0], out[1])
	}
}

// PatchAuth on the JSON codec must produce exactly the bytes a full
// re-marshal with Auth set would — the historical wire format.
func TestJSONPatchAuthMatchesRemarshal(t *testing.T) {
	c := NewJSON()
	frame, err := c.AppendEnvelope(nil, MsgPublish, "dev", "mgr", 4, 9*sim.Second, &Datum{Topic: "dev/spo2", Value: 95})
	if err != nil {
		t.Fatal(err)
	}
	tag := []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x41}
	patched, err := c.PatchAuth(append([]byte(nil), frame...), tag)
	if err != nil {
		t.Fatal(err)
	}
	env, err := DecodeJSON(frame)
	if err != nil {
		t.Fatal(err)
	}
	env.Auth = tag
	want, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(patched, want) {
		t.Fatalf("patched frame differs from re-marshal:\n%s\nvs\n%s", patched, want)
	}
	// And the patched frame decodes with the tag attached.
	env2, err := c.Decode(patched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env2.Auth, tag) {
		t.Fatalf("Auth = %x, want %x", env2.Auth, tag)
	}
	// Double-patching is rejected, like the binary codec.
	if _, err := c.PatchAuth(patched, tag); err == nil {
		t.Fatal("patching an already-authenticated JSON frame succeeded")
	}
}

// Binary PatchAuth attaches the tag in place; Signing exposes the
// zero-copy signing window; a decoded frame verifies against the same
// window the sender signed.
func TestBinarySigningAndPatchAuth(t *testing.T) {
	c := NewBinary()
	frame, err := c.AppendEnvelope(nil, MsgPublish, "dev", "mgr", 4, 9*sim.Second, &Datum{Topic: "dev/spo2", Value: 95})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := c.Signing(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sig, frame[:len(frame)-1]) {
		t.Fatal("unsigned binary frame's signing window is not frame[:len-1]")
	}
	tag := bytes.Repeat([]byte{0xAB}, 32)
	patched, err := c.PatchAuth(frame, tag)
	if err != nil {
		t.Fatal(err)
	}
	env, err := c.Decode(patched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Auth, tag) {
		t.Fatalf("Auth = %x, want %x", env.Auth, tag)
	}
	if got := env.AppendSigning(nil); !bytes.Equal(got, sig) {
		t.Fatal("receiver's signing window differs from what the sender signed")
	}
	// Double-patching is rejected.
	if _, err := c.PatchAuth(patched, tag); err == nil {
		t.Fatal("patching an already-authenticated frame succeeded")
	}
	// Empty tags are a no-op.
	again, err := c.AppendEnvelope(nil, MsgHeartbeat, "dev", "mgr", 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	same, err := c.PatchAuth(again, nil)
	if err != nil || !bytes.Equal(same, again) {
		t.Fatalf("empty-tag patch: %v", err)
	}
}

// A JSON-signed envelope and a binary-signed envelope carry different
// canonical signing bytes for the same logical message (their body bytes
// differ), so a tag computed under one codec can never verify under the
// other — the no-cross-codec-confusion property.
func TestNoCrossCodecSigningConfusion(t *testing.T) {
	datum := &Datum{Topic: "ox1/spo2", Value: 97, Valid: true, Quality: 1, Sampled: sim.Second}
	bin, jsn := NewBinary(), NewJSON()

	bframe, err := bin.AppendEnvelope(nil, MsgPublish, "ox1", "mgr", 8, 2*sim.Second, datum)
	if err != nil {
		t.Fatal(err)
	}
	jframe, err := jsn.AppendEnvelope(nil, MsgPublish, "ox1", "mgr", 8, 2*sim.Second, datum)
	if err != nil {
		t.Fatal(err)
	}
	bsig, err := bin.Signing(nil, bframe)
	if err != nil {
		t.Fatal(err)
	}
	jsig, err := jsn.Signing(nil, jframe)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bsig, jsig) {
		t.Fatal("binary and JSON signing bytes collide; cross-codec tag replay possible")
	}
	// Both windows share the canonical framing prefix (same header
	// fields), so the divergence is exactly the body encoding.
	benv, err := bin.Decode(bframe)
	if err != nil {
		t.Fatal(err)
	}
	jenv, err := jsn.Decode(jframe)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(benv.Body, jenv.Body) {
		t.Fatal("body encodings identical across codecs?")
	}

	// Body-less messages are the deliberate exception: signing is
	// carrier-independent, so a heartbeat's canonical bytes are the
	// same under either codec — re-framing a signed heartbeat is a
	// replay of the same message, which the replay window governs.
	bhb, err := bin.AppendEnvelope(nil, MsgHeartbeat, "ox1", "mgr", 9, 3*sim.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	jhb, err := jsn.AppendEnvelope(nil, MsgHeartbeat, "ox1", "mgr", 9, 3*sim.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	bhsig, err := bin.Signing(nil, bhb)
	if err != nil {
		t.Fatal(err)
	}
	jhsig, err := jsn.Signing(nil, jhb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bhsig, jhsig) {
		t.Fatal("body-less signing bytes diverged across carriers; senders and receivers could disagree")
	}
}

// Hand-built envelopes (no codec) still produce canonical signing bytes,
// including message types outside the protocol enum.
func TestSigningBytesHandBuilt(t *testing.T) {
	e := Envelope{Type: MsgPublish, From: "a", To: "b", Seq: 1, At: 2, Body: []byte(`{"x":1}`)}
	s1 := e.SigningBytes()
	e.Auth = []byte{1, 2, 3}
	s2 := e.SigningBytes()
	if !bytes.Equal(s1, s2) {
		t.Fatal("SigningBytes varies with Auth")
	}
	exotic := Envelope{Type: "future-type", From: "a", To: "b", Seq: 1}
	if len(exotic.SigningBytes()) == 0 {
		t.Fatal("exotic type not signable")
	}
	known := Envelope{Type: MsgBye, From: "a", To: "b", Seq: 1}
	if bytes.Equal(exotic.SigningBytes(), known.SigningBytes()) {
		t.Fatal("exotic and known types share signing bytes")
	}
}

// Decoder hardening: every malformed frame errors cleanly.
func TestBinaryDecodeRejects(t *testing.T) {
	c := NewBinary()
	good, err := c.AppendEnvelope(nil, MsgPublish, "dev", "mgr", 4, 9, &Datum{Topic: "dev/spo2", Value: 95})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"one byte":         {Version1},
		"bad version":      append([]byte{0x02}, good[1:]...),
		"unknown type":     append([]byte{Version1, 0x7F}, good[2:]...),
		"zero type":        append([]byte{Version1, 0x00}, good[2:]...),
		"truncated header": good[:4],
		"truncated body":   good[:len(good)-6],
		"trailing garbage": append(append([]byte(nil), good...), 0xFF),
		"empty sender": func() []byte {
			f, _ := NewBinary().AppendEnvelope(nil, MsgHeartbeat, "", "mgr", 1, 0, nil)
			return f
		}(),
		"huge field length": {Version1, 3, 1, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"overlong varint":   append([]byte{Version1, 3}, bytes.Repeat([]byte{0x80}, 11)...),
	}
	for name, frame := range cases {
		if _, err := c.Decode(frame); err == nil {
			t.Errorf("%s: decode accepted %x", name, frame)
		}
	}
}

// Body decoder hardening: malformed bodies inside a well-formed envelope
// error cleanly for every typed decoder.
func TestBinaryDecodeBodyRejects(t *testing.T) {
	c := NewBinary()
	env := Envelope{Type: MsgPublish, Body: []byte{0xFF, 0xFF}, codec: c}
	var d Datum
	if err := env.DecodeBody(&d); err == nil {
		t.Error("garbage datum body accepted")
	}
	// A valid datum body with a trailing byte must be rejected.
	frame, err := c.AppendEnvelope(nil, MsgPublish, "dev", "mgr", 1, 0, &Datum{Topic: "a/b"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	e2.Body = append(append([]byte(nil), e2.Body...), 0x00)
	if err := e2.DecodeBody(&d); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing body byte: err = %v", err)
	}
	// Bad bool byte.
	env3, err := c.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the valid flag: topic "a/b" (1+3 bytes) + value (8) → offset 12 in body.
	body := append([]byte(nil), env3.Body...)
	body[12] = 2
	env3.Body = body
	if err := env3.DecodeBody(&d); err == nil || !strings.Contains(err.Error(), "bool") {
		t.Errorf("bool byte 2: err = %v", err)
	}
	// Command arg count larger than the body can hold.
	cmdFrame, err := c.AppendEnvelope(nil, MsgCommand, "m", "d", 1, 0, &Command{ID: 1, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	e4, err := c.Decode(cmdFrame)
	if err != nil {
		t.Fatal(err)
	}
	cb := append([]byte(nil), e4.Body...)
	cb[len(cb)-1] = 0x40 // claim 64 args with no bytes behind them
	e4.Body = cb
	var cmd Command
	if err := e4.DecodeBody(&cmd); err == nil {
		t.Error("oversized arg count accepted")
	}
	// Descriptor with an unknown class code.
	desc := testDescriptor()
	aframe, err := c.AppendEnvelope(nil, MsgAnnounce, "pump1", "mgr", 1, 0, &desc)
	if err != nil {
		t.Fatal(err)
	}
	e5, err := c.Decode(aframe)
	if err != nil {
		t.Fatal(err)
	}
	db := append([]byte(nil), e5.Body...)
	// Find the first class code byte (after id/kind/manufacturer/model/
	// version strings + ncaps + first name) and corrupt it.
	idx := bytes.IndexByte(db, byte(classCodes[ClassSensor]))
	for i := range db {
		if db[i] == 1 && i > 20 { // first cap's class byte region
			idx = i
			break
		}
	}
	db[idx] = 0x7F
	e5.Body = db
	var dd Descriptor
	if err := e5.DecodeBody(&dd); err == nil {
		t.Error("unknown class code accepted")
	}
	// Unsupported out types.
	var s string
	if err := env3.DecodeBody(&s); err == nil {
		t.Error("decode into *string accepted")
	}
}

// Unsupported bodies and types error on encode instead of panicking.
func TestBinaryEncodeRejects(t *testing.T) {
	c := NewBinary()
	if _, err := c.AppendEnvelope(nil, "not-a-type", "a", "b", 1, 0, nil); err == nil {
		t.Error("unknown message type encoded")
	}
	if _, err := c.AppendEnvelope(nil, MsgPublish, "a", "b", 1, 0, struct{ X int }{1}); err == nil {
		t.Error("arbitrary body type encoded")
	}
	bad := testDescriptor()
	bad.Capabilities[0].Class = "quantum"
	if _, err := c.AppendEnvelope(nil, MsgAnnounce, "a", "b", 1, 0, &bad); err == nil {
		t.Error("unknown capability class encoded")
	}
}

// NaN and infinities round-trip bit-exactly through the binary codec
// (JSON cannot carry them; binary has no such restriction).
func TestBinaryNonFiniteFloats(t *testing.T) {
	c := NewBinary()
	in := &Datum{Topic: "a/b", Value: math.NaN(), Quality: math.Inf(1)}
	frame, err := c.AppendEnvelope(nil, MsgPublish, "a", "b", 1, 0, in)
	if err != nil {
		t.Fatal(err)
	}
	env, err := c.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var out Datum
	if err := env.DecodeBody(&out); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.Value) != math.Float64bits(in.Value) ||
		math.Float64bits(out.Quality) != math.Float64bits(in.Quality) {
		t.Fatal("non-finite floats did not round-trip bit-exactly")
	}
}

// Command args have exactly one canonical encoding regardless of map
// iteration order.
func TestCommandArgsCanonicalOrder(t *testing.T) {
	c := NewBinary()
	args := map[string]float64{"z": 1, "a": 2, "m": 3, "b": 4, "q": 5}
	var first []byte
	for i := 0; i < 20; i++ {
		frame, err := c.AppendEnvelope(nil, MsgCommand, "m", "d", 1, 0, &Command{ID: 1, Name: "x", Args: args})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = append([]byte(nil), frame...)
		} else if !bytes.Equal(first, frame) {
			t.Fatal("command encoding varies with map iteration order")
		}
	}
}

// The decoder enforces the canonical arg order: out-of-order and
// duplicate keys are rejected, so no two distinct byte strings decode
// to the same command.
func TestCommandArgsNonCanonicalRejected(t *testing.T) {
	c := NewBinary()
	makeBody := func(keys ...string) []byte {
		body := appendUvarintForTest(nil, 1) // id
		body = appendString(body, "x")       // name
		body = appendUvarintForTest(body, uint64(len(keys)))
		for _, k := range keys {
			body = appendString(body, k)
			body = appendFloat(body, 1)
		}
		return body
	}
	var cmd Command
	ok := Envelope{Type: MsgCommand, Body: makeBody("a", "b"), codec: c}
	if err := c.DecodeBody(&ok, &cmd); err != nil {
		t.Fatalf("canonical args rejected: %v", err)
	}
	for name, keys := range map[string][]string{
		"out of order": {"b", "a"},
		"duplicate":    {"a", "a"},
	} {
		env := Envelope{Type: MsgCommand, Body: makeBody(keys...), codec: c}
		if err := c.DecodeBody(&env, &cmd); err == nil {
			t.Errorf("%s args accepted", name)
		}
	}
}

// Codec construction by name.
func TestNewCodec(t *testing.T) {
	for name, want := range map[string]string{"": "binary", "binary": "binary", "json": "json"} {
		c, err := NewCodec(name)
		if err != nil || c.Name() != want {
			t.Fatalf("NewCodec(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := NewCodec("xml"); err == nil {
		t.Fatal("NewCodec(xml) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewCodec(xml) did not panic")
		}
	}()
	MustNewCodec("xml")
}

// Stats count frames and bytes on the encode side.
func TestCodecStats(t *testing.T) {
	for _, c := range []Codec{NewBinary(), NewJSON()} {
		var total int
		for i := 0; i < 10; i++ {
			frame, err := c.AppendEnvelope(nil, MsgHeartbeat, "d", "m", uint64(i), 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += len(frame)
		}
		st := c.Stats()
		if st.Frames != 10 || st.Bytes != uint64(total) {
			t.Fatalf("%s stats = %+v, want 10 frames / %d bytes", c.Name(), st, total)
		}
	}
}

// The JSON codec rejects malformed and incomplete envelopes as before.
func TestJSONDecodeRejects(t *testing.T) {
	c := NewJSON()
	for name, data := range map[string][]byte{
		"garbage":      []byte("{"),
		"missing type": []byte(`{"from":"a"}`),
		"missing from": []byte(`{"type":"publish"}`),
	} {
		if _, err := c.Decode(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := c.PatchAuth([]byte("not json"), []byte{1}); err == nil {
		t.Error("PatchAuth on malformed frame succeeded")
	}
	if _, err := c.Signing(nil, []byte("not json")); err == nil {
		t.Error("Signing on malformed frame succeeded")
	}
}

// Interned strings: decoding the same sender repeatedly yields the same
// string value and the table stays bounded.
func TestInternBounded(t *testing.T) {
	c := NewBinary()
	for i := 0; i < 2*maxInternEntries; i++ {
		b := []byte{byte(i), byte(i >> 8), byte(i >> 16)}
		_ = c.internString(b)
	}
	if len(c.intern) > maxInternEntries {
		t.Fatalf("intern table grew to %d entries", len(c.intern))
	}
	if c.internString(nil) != "" {
		t.Fatal("empty intern")
	}
}

// appendUvarintForTest keeps the hand-built frames above readable.
func appendUvarintForTest(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}
