package icewire

import (
	"strings"
	"testing"
)

// Every strict prefix of every golden frame must be rejected: the frame
// grammar is length-prefixed throughout, so no truncation can parse.
// (This is the deterministic cousin of FuzzDecodeBinary, and it walks
// the decoder into every truncation branch.)
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	c := NewBinary()
	for _, g := range goldenEnvelopes() {
		frame := encodeGolden(t, g)
		for n := 0; n < len(frame); n++ {
			if _, err := c.Decode(frame[:n]); err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded successfully", g.name, n, len(frame))
			}
		}
		// Likewise every strict prefix of a typed body.
		env, err := c.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		full := append([]byte(nil), env.Body...)
		for n := 0; n < len(full); n++ {
			e := env
			e.Body = full[:n]
			if err := bodyDecodeErr(c, &e); err == nil {
				t.Fatalf("%s body truncated to %d/%d bytes decoded successfully", g.name, n, len(full))
			}
		}
	}
}

// bodyDecodeErr decodes the body with the type-matched decoder and
// returns its error (nil for the body-less message types).
func bodyDecodeErr(c *Binary, env *Envelope) error {
	switch env.Type {
	case MsgPublish:
		var d Datum
		return c.DecodeBody(env, &d)
	case MsgCommand:
		var cmd Command
		return c.DecodeBody(env, &cmd)
	case MsgCommandAck:
		var a CommandAck
		return c.DecodeBody(env, &a)
	case MsgAdmit:
		var a AdmitResult
		return c.DecodeBody(env, &a)
	case MsgAnnounce:
		var d Descriptor
		return c.DecodeBody(env, &d)
	default:
		var d Datum
		return c.DecodeBody(env, &d) // heartbeat/bye: empty-body error
	}
}

// Value (non-pointer) bodies encode identically to their pointer forms.
func TestValueBodiesEncode(t *testing.T) {
	c := NewBinary()
	desc := testDescriptor()
	pairs := []struct {
		typ      MsgType
		val, ptr any
	}{
		{MsgPublish, Datum{Topic: "a/b", Value: 1}, &Datum{Topic: "a/b", Value: 1}},
		{MsgCommand, Command{ID: 1, Name: "x"}, &Command{ID: 1, Name: "x"}},
		{MsgCommandAck, CommandAck{ID: 1, OK: true}, &CommandAck{ID: 1, OK: true}},
		{MsgAdmit, AdmitResult{OK: true}, &AdmitResult{OK: true}},
		{MsgAnnounce, desc, &desc},
	}
	for _, p := range pairs {
		a, err := c.AppendEnvelope(nil, p.typ, "d", "m", 1, 0, p.val)
		if err != nil {
			t.Fatalf("%s value body: %v", p.typ, err)
		}
		b, err := c.AppendEnvelope(nil, p.typ, "d", "m", 1, 0, p.ptr)
		if err != nil {
			t.Fatalf("%s pointer body: %v", p.typ, err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s: value and pointer bodies encode differently", p.typ)
		}
	}
}

// Descriptor validation and capability lookup (defined here with the
// wire type; exercised from core as well).
func TestDescriptorValidate(t *testing.T) {
	good := testDescriptor()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Descriptor){
		"missing id":       func(d *Descriptor) { d.ID = "" },
		"reserved chars":   func(d *Descriptor) { d.ID = "a/b" },
		"missing kind":     func(d *Descriptor) { d.Kind = "" },
		"unnamed cap":      func(d *Descriptor) { d.Capabilities[0].Name = "" },
		"duplicate cap":    func(d *Descriptor) { d.Capabilities[1].Name = d.Capabilities[0].Name },
		"unknown class":    func(d *Descriptor) { d.Capabilities[0].Class = "quantum" },
		"criticality low":  func(d *Descriptor) { d.Capabilities[0].Criticality = 0 },
		"criticality high": func(d *Descriptor) { d.Capabilities[0].Criticality = 4 },
		"whitespace in id": func(d *Descriptor) { d.ID = "a b" },
	}
	for name, mutate := range cases {
		d := testDescriptor()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestDescriptorHas(t *testing.T) {
	d := testDescriptor()
	if !d.Has("rate", ClassSensor) || !d.Has("stop", ClassActuator) {
		t.Fatal("declared capabilities not found")
	}
	if d.Has("rate", ClassActuator) || d.Has("nope", ClassSensor) {
		t.Fatal("phantom capability found")
	}
}

// JSON body decode errors surface with the message type in the text.
func TestJSONBodyDecodeError(t *testing.T) {
	c := NewJSON()
	env := Envelope{Type: MsgPublish, Body: []byte(`{"value":`)}
	var d Datum
	if err := c.DecodeBody(&env, &d); err == nil || !strings.Contains(err.Error(), "publish") {
		t.Fatalf("err = %v", err)
	}
	if _, err := EncodeJSON(MsgPublish, "a", "b", 1, 0, func() {}); err == nil {
		t.Fatal("unmarshalable body encoded")
	}
}
