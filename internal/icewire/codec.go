package icewire

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Codec is one wire encoding of the ICE protocol. A codec instance is
// owned by a single simulation cell (it keeps intern tables and scratch
// buffers) and must not be shared across kernels or goroutines; the cost
// of that restriction is zero because cells are single-threaded by
// construction and parallelism lives in the fleet layer.
type Codec interface {
	// Name identifies the codec ("binary", "json") for config surfaces
	// and metrics.
	Name() string

	// AppendEnvelope encodes one complete envelope — framing plus typed
	// body — directly into dst and returns the extended slice. body is
	// nil or one of *Datum, *Command, *CommandAck, *AdmitResult,
	// *Descriptor (value forms also accepted). The frame is unsigned;
	// use Signing + PatchAuth to authenticate it.
	AppendEnvelope(dst []byte, t MsgType, from, to string, seq uint64, at sim.Time, body any) ([]byte, error)

	// Decode parses one frame. The returned envelope's Body (and, for
	// the binary codec, Auth and signing window) reference the input
	// buffer; the envelope is only valid as long as data is.
	Decode(data []byte) (Envelope, error)

	// DecodeBody decodes e's body into out, which must be a pointer to
	// one of the body types above.
	DecodeBody(e *Envelope, out any) error

	// Signing returns the canonical signing bytes of an unsigned frame
	// this codec produced, appending into dst when a new buffer is
	// needed. The binary codec returns a subslice of the frame itself;
	// either way the result is valid only until frame or dst is reused.
	Signing(dst, frame []byte) ([]byte, error)

	// PatchAuth attaches an authentication tag to an unsigned encoded
	// frame without re-encoding the envelope, returning the (possibly
	// reallocated) frame. This replaces the historical decode→set-Auth→
	// re-marshal round trip on the signed send path.
	PatchAuth(frame, tag []byte) ([]byte, error)

	// Stats reports cumulative encode-side accounting.
	Stats() CodecStats
}

// CodecStats is the encode-side accounting a codec accumulates: frames
// and bytes are exact; EncodeNS is estimated by timing one encode in
// every 64 and scaling, so the hot path stays free of per-frame clock
// reads.
type CodecStats struct {
	Frames   uint64 // envelopes encoded
	Bytes    uint64 // encoded frame bytes (pre-auth)
	EncodeNS uint64 // estimated wall time spent encoding, in ns
}

// codecStats implements the shared sampling logic.
type codecStats struct {
	frames   uint64
	bytes    uint64
	encodeNS uint64
	t0       time.Time
}

// beginSample starts timing if this frame is a sampled one.
func (s *codecStats) beginSample() bool {
	if s.frames&63 == 0 {
		s.t0 = time.Now()
		return true
	}
	return false
}

// endSample accounts one encoded frame of n bytes.
func (s *codecStats) endSample(sampled bool, n int) {
	if sampled {
		s.encodeNS += uint64(time.Since(s.t0)) * 64
	}
	s.frames++
	s.bytes += uint64(n)
}

func (s *codecStats) stats() CodecStats {
	return CodecStats{Frames: s.frames, Bytes: s.bytes, EncodeNS: s.encodeNS}
}

// DecodeBody decodes the envelope's body into out using the codec that
// decoded the envelope (JSON for hand-built envelopes, preserving the
// historical behavior).
func (e *Envelope) DecodeBody(out any) error {
	if e.codec != nil {
		return e.codec.DecodeBody(e, out)
	}
	return decodeJSONBody(e, out)
}

// AppendSigning appends the canonical signing byte string — the binary
// framing of every field except Auth — to dst and returns it. The form
// is carrier-independent by design: a JSON-carried envelope signs the
// same framing over its JSON body bytes, so sender and receiver always
// agree. Bodied messages therefore never verify against the other
// codec's tags (their body bytes differ), while body-less messages
// (heartbeat, bye) carry identical canonical bytes in either encoding —
// re-framing one is exactly a replay of the same signed message, and
// the per-sender replay window is what governs replays.
//
// Envelopes decoded from a binary frame return the frame's own signing
// window (zero-copy); that result is valid only while the frame buffer
// is.
func (e *Envelope) AppendSigning(dst []byte) []byte {
	if e.signing != nil {
		return e.signing
	}
	return appendSigningFrame(dst, e.Type, e.From, e.To, e.Seq, e.At, e.Body)
}

// SigningBytes returns the canonical byte string an authenticator signs:
// the envelope with the Auth field excluded, in the binary canonical
// form. Allocates; hot paths use AppendSigning with a scratch buffer.
func (e Envelope) SigningBytes() []byte {
	return e.AppendSigning(nil)
}

// NewCodec constructs a codec by name: "" or "binary" for the binary
// codec, "json" for the debug/compat JSON codec.
func NewCodec(name string) (Codec, error) {
	switch name {
	case "", "binary":
		return NewBinary(), nil
	case "json":
		return NewJSON(), nil
	default:
		return nil, fmt.Errorf("icewire: unknown codec %q (have binary, json)", name)
	}
}

// MustNewCodec is NewCodec for known-good names.
func MustNewCodec(name string) Codec {
	c, err := NewCodec(name)
	if err != nil {
		panic(err)
	}
	return c
}
