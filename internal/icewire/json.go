package icewire

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// JSON is the debug/compat codec: byte-identical to the historical
// encoding/json wire format, so captured traffic stays readable and the
// differential suite can replay every scenario under both encodings.
type JSON struct {
	st codecStats
}

// NewJSON returns a fresh JSON codec instance.
func NewJSON() *JSON { return &JSON{} }

// Name implements Codec.
func (c *JSON) Name() string { return "json" }

// Stats implements Codec.
func (c *JSON) Stats() CodecStats { return c.st.stats() }

// AppendEnvelope implements Codec.
func (c *JSON) AppendEnvelope(dst []byte, t MsgType, from, to string, seq uint64, at sim.Time, body any) ([]byte, error) {
	sampled := c.st.beginSample()
	frame, err := EncodeJSON(t, from, to, seq, at, body)
	if err != nil {
		return dst, err
	}
	dst = append(dst, frame...)
	c.st.endSample(sampled, len(frame))
	return dst, nil
}

// Decode implements Codec.
func (c *JSON) Decode(data []byte) (Envelope, error) {
	env, err := DecodeJSON(data)
	if err != nil {
		return Envelope{}, err
	}
	env.codec = c
	return env, nil
}

// DecodeBody implements Codec.
func (c *JSON) DecodeBody(e *Envelope, out any) error {
	return decodeJSONBody(e, out)
}

// Signing implements Codec: parse the frame and append its canonical
// (binary-form) signing bytes to dst.
func (c *JSON) Signing(dst, frame []byte) ([]byte, error) {
	env, err := DecodeJSON(frame)
	if err != nil {
		return nil, err
	}
	return appendSigningFrame(dst, env.Type, env.From, env.To, env.Seq, env.At, env.Body), nil
}

// PatchAuth implements Codec. encoding/json marshals struct fields in
// declaration order and Auth is the Envelope's final field, so attaching
// a tag is an append before the closing brace — byte-identical to
// re-marshaling the envelope with Auth set, without the re-marshal.
func (c *JSON) PatchAuth(frame, tag []byte) ([]byte, error) {
	if len(frame) == 0 || frame[len(frame)-1] != '}' {
		return frame, errors.New("icewire: malformed JSON frame")
	}
	// Mirror the binary codec's contract: patching is for unsigned
	// frames only (a double patch would append a second "auth" member
	// that last-key-wins unmarshaling silently accepts).
	if env, err := DecodeJSON(frame); err != nil {
		return frame, err
	} else if len(env.Auth) != 0 {
		return frame, errors.New("icewire: frame already authenticated")
	}
	if len(tag) == 0 {
		return frame, nil
	}
	frame = append(frame[:len(frame)-1], `,"auth":"`...)
	n := base64.StdEncoding.EncodedLen(len(tag))
	frame = append(frame, make([]byte, n)...)
	base64.StdEncoding.Encode(frame[len(frame)-n:], tag)
	return append(frame, '"', '}'), nil
}

// EncodeJSON marshals an envelope with the given typed body in the
// historical JSON wire format. Stateless (no codec instance required);
// retained for tests and attack-traffic forging in experiments.
func EncodeJSON(t MsgType, from, to string, seq uint64, at sim.Time, body any) ([]byte, error) {
	var raw json.RawMessage
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("core: encoding %s body: %w", t, err)
		}
		raw = b
	}
	env := Envelope{Type: t, From: from, To: to, Seq: seq, At: at, Body: raw}
	out, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("core: encoding %s envelope: %w", t, err)
	}
	return out, nil
}

// DecodeJSON unmarshals a JSON envelope from the wire.
func DecodeJSON(data []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, fmt.Errorf("core: decoding envelope: %w", err)
	}
	if env.Type == "" {
		return Envelope{}, errors.New("core: envelope missing type")
	}
	if env.From == "" {
		return Envelope{}, errors.New("core: envelope missing sender")
	}
	return env, nil
}

// decodeJSONBody unmarshals the body into out; shared by the JSON codec
// and hand-built envelopes.
func decodeJSONBody(e *Envelope, out any) error {
	if len(e.Body) == 0 {
		return fmt.Errorf("core: %s envelope has empty body", e.Type)
	}
	if err := json.Unmarshal(e.Body, out); err != nil {
		return fmt.Errorf("core: decoding %s body: %w", e.Type, err)
	}
	return nil
}
