// Package security addresses the paper's challenge (m): message
// authentication so that an attacker on the hospital network cannot
// reprogram devices, role-based authorization balancing flexibility
// against the industry's all-or-nothing network lockdown, and a
// hash-chained audit log providing tamper-evident accountability.
package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// KeyStore holds per-principal symmetric keys, as provisioned during
// device admission in a real deployment.
type KeyStore struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewKeyStore returns an empty store.
func NewKeyStore() *KeyStore {
	return &KeyStore{keys: make(map[string][]byte)}
}

// Issue generates and registers a fresh 32-byte key for a principal,
// derived from the given RNG (deterministic in simulation).
func (ks *KeyStore) Issue(principal string, rng *sim.RNG) []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(rng.Intn(256))
	}
	ks.Set(principal, key)
	return key
}

// Set registers a key.
func (ks *KeyStore) Set(principal string, key []byte) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.keys[principal] = append([]byte(nil), key...)
}

// Key fetches a principal's key.
func (ks *KeyStore) Key(principal string) ([]byte, bool) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	k, ok := ks.keys[principal]
	return k, ok
}

// Revoke removes a principal's key (decommissioned device).
func (ks *KeyStore) Revoke(principal string) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	delete(ks.keys, principal)
}

// HMACAuth implements core.Authenticator with HMAC-SHA256 over the
// envelope's signing bytes, keyed per sender.
type HMACAuth struct {
	ks *KeyStore
}

// NewHMACAuth wraps a key store.
func NewHMACAuth(ks *KeyStore) *HMACAuth { return &HMACAuth{ks: ks} }

// Sign computes the tag for a sender's message.
func (a *HMACAuth) Sign(sender string, signing []byte) ([]byte, error) {
	key, ok := a.ks.Key(sender)
	if !ok {
		return nil, fmt.Errorf("security: no key for %q", sender)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(signing)
	return mac.Sum(nil), nil
}

// Verify checks a tag. Unknown senders and bad tags are both rejections.
func (a *HMACAuth) Verify(sender string, signing, tag []byte) error {
	if len(tag) == 0 {
		return errors.New("security: missing authentication tag")
	}
	want, err := a.Sign(sender, signing)
	if err != nil {
		return err
	}
	if !hmac.Equal(want, tag) {
		return fmt.Errorf("security: bad tag from %q", sender)
	}
	return nil
}

// Action is a guarded operation in the ACL.
type Action string

// Standard actions.
const (
	ActCommand   Action = "command"   // send actuator commands
	ActConfigure Action = "configure" // change settings
	ActReadData  Action = "read-data" // subscribe to physiological data
)

// Rule allows a role to perform an action on devices of a kind
// ("*" = any kind).
type Rule struct {
	Role   string
	Action Action
	Kind   string
}

// ACL is a role-based policy: the middle ground the paper asks for
// between open control and the industry's read-only lockdown.
type ACL struct {
	rules []Rule
	roles map[string]string // principal -> role
}

// NewACL returns an empty policy (everything denied).
func NewACL() *ACL {
	return &ACL{roles: make(map[string]string)}
}

// Grant adds a rule.
func (a *ACL) Grant(role string, action Action, kind string) {
	a.rules = append(a.rules, Rule{Role: role, Action: action, Kind: kind})
}

// Assign binds a principal to a role.
func (a *ACL) Assign(principal, role string) { a.roles[principal] = role }

// Authorize reports whether the principal may perform the action on a
// device of the given kind, with the denial reason.
func (a *ACL) Authorize(principal string, action Action, kind string) (bool, string) {
	role, ok := a.roles[principal]
	if !ok {
		return false, fmt.Sprintf("principal %q has no role", principal)
	}
	for _, r := range a.rules {
		if r.Role == role && r.Action == action && (r.Kind == "*" || r.Kind == kind) {
			return true, ""
		}
	}
	return false, fmt.Sprintf("role %q not permitted %s on %s", role, action, kind)
}

// ClinicalDefaultACL returns a sensible hospital policy: the supervisor
// commands and configures everything; monitoring apps read; devices read
// nothing.
func ClinicalDefaultACL() *ACL {
	acl := NewACL()
	acl.Grant("supervisor", ActCommand, "*")
	acl.Grant("supervisor", ActConfigure, "*")
	acl.Grant("supervisor", ActReadData, "*")
	acl.Grant("monitor-app", ActReadData, "*")
	return acl
}

// AuditEntry is one audit-log record.
type AuditEntry struct {
	At        sim.Time
	Principal string
	Action    string
	Detail    string
	PrevHash  string
	Hash      string
}

// AuditLog is an append-only, hash-chained log: each entry's hash covers
// its content and the previous hash, so any retroactive modification
// breaks the chain.
type AuditLog struct {
	mu      sync.Mutex
	entries []AuditEntry
}

// NewAuditLog returns an empty log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

func entryHash(e AuditEntry) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%s|%s|%s|%s", e.At, e.Principal, e.Action, e.Detail, e.PrevHash)
	return hex.EncodeToString(h.Sum(nil))
}

// Append records an event.
func (l *AuditLog) Append(at sim.Time, principal, action, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := ""
	if n := len(l.entries); n > 0 {
		prev = l.entries[n-1].Hash
	}
	e := AuditEntry{At: at, Principal: principal, Action: action, Detail: detail, PrevHash: prev}
	e.Hash = entryHash(e)
	l.entries = append(l.entries, e)
}

// Entries returns a copy of the log.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEntry(nil), l.entries...)
}

// VerifyChain checks the hash chain, returning the index of the first
// corrupted entry (-1 if intact).
func (l *AuditLog) VerifyChain() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := ""
	for i, e := range l.entries {
		if e.PrevHash != prev || entryHash(e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// Tamper modifies an entry in place — test helper for demonstrating
// tamper evidence.
func (l *AuditLog) Tamper(idx int, detail string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if idx < 0 || idx >= len(l.entries) {
		return errors.New("security: tamper index out of range")
	}
	l.entries[idx].Detail = detail
	return nil
}

// ByPrincipal summarizes entry counts per principal, sorted by name.
func (l *AuditLog) ByPrincipal() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	counts := map[string]int{}
	for _, e := range l.entries {
		counts[e.Principal]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, fmt.Sprintf("%s=%d", n, counts[n]))
	}
	return out
}
