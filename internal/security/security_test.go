package security

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/sim"
)

func TestHMACSignVerifyRoundTrip(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("pump1", sim.NewRNG(1))
	auth := NewHMACAuth(ks)
	msg := []byte("stop the pump")
	tag, err := auth.Sign("pump1", msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify("pump1", msg, tag); err != nil {
		t.Fatal(err)
	}
}

func TestHMACRejectsTamperAndForgery(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("pump1", sim.NewRNG(1))
	ks.Issue("mallory", sim.NewRNG(2))
	auth := NewHMACAuth(ks)
	msg := []byte("stop the pump")
	tag, _ := auth.Sign("pump1", msg)

	if err := auth.Verify("pump1", []byte("STOP THE PUMP"), tag); err == nil {
		t.Fatal("tampered message accepted")
	}
	if err := auth.Verify("pump1", msg, nil); err == nil {
		t.Fatal("missing tag accepted")
	}
	// Mallory signs with her key but claims to be pump1.
	forged, _ := auth.Sign("mallory", msg)
	if err := auth.Verify("pump1", msg, forged); err == nil {
		t.Fatal("cross-key forgery accepted")
	}
	if _, err := auth.Sign("ghost", msg); err == nil {
		t.Fatal("signing for unknown principal succeeded")
	}
}

// Property: for random messages, only the exact (message, sender) pair
// verifies.
func TestHMACTamperDetectionProperty(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("a", sim.NewRNG(1))
	auth := NewHMACAuth(ks)
	f := func(msg []byte, flip uint16) bool {
		if len(msg) == 0 {
			return true
		}
		tag, err := auth.Sign("a", msg)
		if err != nil {
			return false
		}
		if auth.Verify("a", msg, tag) != nil {
			return false
		}
		mutated := append([]byte(nil), msg...)
		mutated[int(flip)%len(mutated)] ^= 0xA5
		return auth.Verify("a", mutated, tag) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRevocation(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("d", sim.NewRNG(3))
	auth := NewHMACAuth(ks)
	msg := []byte("hello")
	tag, _ := auth.Sign("d", msg)
	ks.Revoke("d")
	if err := auth.Verify("d", msg, tag); err == nil {
		t.Fatal("revoked principal still verifies")
	}
}

func TestACL(t *testing.T) {
	acl := ClinicalDefaultACL()
	acl.Assign("pca-supervisor", "supervisor")
	acl.Assign("dashboard", "monitor-app")

	if ok, _ := acl.Authorize("pca-supervisor", ActCommand, "infusion-pump"); !ok {
		t.Fatal("supervisor denied command")
	}
	if ok, reason := acl.Authorize("dashboard", ActCommand, "infusion-pump"); ok || reason == "" {
		t.Fatal("monitor app allowed to command a pump")
	}
	if ok, _ := acl.Authorize("dashboard", ActReadData, "pulse-oximeter"); !ok {
		t.Fatal("monitor app denied read")
	}
	if ok, _ := acl.Authorize("stranger", ActReadData, "pulse-oximeter"); ok {
		t.Fatal("unassigned principal authorized")
	}
}

func TestAuditChain(t *testing.T) {
	log := NewAuditLog()
	log.Append(0, "supervisor", "command", "pump1.stop")
	log.Append(sim.Second, "supervisor", "command", "pump1.resume")
	log.Append(2*sim.Second, "nurse", "configure", "pump1.set-basal rate=1")
	if idx := log.VerifyChain(); idx != -1 {
		t.Fatalf("fresh chain corrupt at %d", idx)
	}
	if err := log.Tamper(1, "pump1.bolus 100mg"); err != nil {
		t.Fatal(err)
	}
	if idx := log.VerifyChain(); idx != 1 {
		t.Fatalf("tampering not detected at entry 1 (got %d)", idx)
	}
	if err := log.Tamper(99, "x"); err == nil {
		t.Fatal("out-of-range tamper accepted")
	}
	if got := len(log.Entries()); got != 3 {
		t.Fatalf("entries = %d", got)
	}
	if got := log.ByPrincipal(); len(got) != 2 {
		t.Fatalf("ByPrincipal = %v", got)
	}
}

// End-to-end over the ICE: with HMAC enabled, an attacker without a key
// cannot inject a stop command; the manager rejects it and the pump never
// sees it.
func TestICEAuthenticationBlocksInjection(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	ks := NewKeyStore()
	rng := sim.NewRNG(9)
	ks.Issue("ice-manager", rng)
	ks.Issue("ox1", rng)
	auth := NewHMACAuth(ks)

	cfg := core.DefaultManagerConfig()
	cfg.Auth = auth
	mgr := core.MustNewManager(k, net, cfg)

	received := 0
	mgr.Subscribe("*/*", func(string, core.Datum) { received++ })

	k.At(0, func() {
		// Legitimate device with a key.
		c := core.MustConnect(k, net, core.Descriptor{
			ID: "ox1", Kind: core.KindPulseOximeter,
			Capabilities: []core.Capability{{Name: "spo2", Class: core.ClassSensor, Criticality: 3}},
		}, core.ConnectConfig{Auth: auth})
		k.After(100*time.Millisecond, func() {
			c.Publish("spo2", 97, true, 1, k.Now())
		})
		// Attacker: well-formed but unsigned publish claiming to be ox1,
		// framed with the wire's own (binary) codec.
		k.After(200*time.Millisecond, func() {
			data, err := core.NewBinaryCodec().AppendEnvelope(nil, core.MsgPublish, "ox1", mgr.Addr(), 1000, k.Now(), &core.Datum{
				Topic: "ox1/spo2", Value: 10, Valid: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			net.Send("attacker", mgr.Addr(), "publish", data)
		})
	})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("received %d publications, want 1 (forgery rejected)", received)
	}
	if mgr.AuthRejected != 1 {
		t.Fatalf("AuthRejected = %d, want 1", mgr.AuthRejected)
	}
}

// Without authentication, the same injection succeeds — the vulnerable
// baseline of E9.
func TestICEWithoutAuthIsVulnerable(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	received := 0
	mgr.Subscribe("*/*", func(string, core.Datum) { received++ })
	k.At(0, func() {
		core.MustConnect(k, net, core.Descriptor{
			ID: "ox1", Kind: core.KindPulseOximeter,
			Capabilities: []core.Capability{{Name: "spo2", Class: core.ClassSensor, Criticality: 3}},
		}, core.ConnectConfig{})
		k.After(200*time.Millisecond, func() {
			data, _ := core.NewBinaryCodec().AppendEnvelope(nil, core.MsgPublish, "ox1", mgr.Addr(), 1000, k.Now(), &core.Datum{
				Topic: "ox1/spo2", Value: 10, Valid: true,
			})
			net.Send("attacker", mgr.Addr(), "publish", data)
		})
	})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("spoofed datum not delivered on unauthenticated ICE (received=%d)", received)
	}
}

// signedBinaryPublish crafts a correctly signed binary publish frame
// from ox1: encode once, sign the frame's own signing window, patch the
// tag in — exactly the conns' send path.
func signedBinaryPublish(t *testing.T, auth *HMACAuth, to string, seq uint64, at sim.Time) []byte {
	t.Helper()
	wire := core.NewBinaryCodec()
	frame, err := wire.AppendEnvelope(nil, core.MsgPublish, "ox1", to, seq, at, &core.Datum{
		Topic: "ox1/spo2", Value: 95, Valid: true, Quality: 1, Sampled: at,
	})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := wire.Signing(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := auth.Sign("ox1", sig)
	if err != nil {
		t.Fatal(err)
	}
	frame, err = wire.PatchAuth(frame, tag)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// Binary-frame regression battery: a correctly signed frame passes HMAC
// verification; tampered payloads, tampered tags, truncated frames and
// replayed frames are all rejected, each on the right counter.
func TestBinaryFrameTamperTruncateReplay(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	ks := NewKeyStore()
	rng := sim.NewRNG(9)
	ks.Issue("ice-manager", rng)
	ks.Issue("ox1", rng)
	auth := NewHMACAuth(ks)

	cfg := core.DefaultManagerConfig()
	cfg.Auth = auth
	mgr := core.MustNewManager(k, net, cfg)
	received := 0
	mgr.Subscribe("*/*", func(string, core.Datum) { received++ })

	// A real ox1 joins (signed announce) so publishes are dispatched.
	core.MustConnect(k, net, core.Descriptor{
		ID: "ox1", Kind: core.KindPulseOximeter,
		Capabilities: []core.Capability{{Name: "spo2", Class: core.ClassSensor, Criticality: 3}},
	}, core.ConnectConfig{Auth: auth})
	if err := k.Run(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	deliver := func(frame []byte) {
		net.Send("x", mgr.Addr(), "publish", frame)
		if err := k.Run(k.Now() + 50*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// 1. The genuine signed frame verifies and is delivered.
	frame := signedBinaryPublish(t, auth, mgr.Addr(), 5000, k.Now())
	deliver(frame)
	if received != 1 {
		t.Fatalf("signed frame not delivered (received=%d)", received)
	}
	if mgr.AuthRejected != 0 || mgr.Malformed != 0 {
		t.Fatalf("genuine frame bumped counters: auth=%d malformed=%d", mgr.AuthRejected, mgr.Malformed)
	}

	// 2. Replaying the identical frame is rejected by the replay window.
	deliver(frame)
	if received != 1 || mgr.ReplayRejected != 1 {
		t.Fatalf("replay not rejected (received=%d, replay=%d)", received, mgr.ReplayRejected)
	}

	// 3. A tampered tag fails verification.
	badTag := signedBinaryPublish(t, auth, mgr.Addr(), 5001, k.Now())
	badTag[len(badTag)-1] ^= 0xFF
	deliver(badTag)
	if received != 1 || mgr.AuthRejected != 1 {
		t.Fatalf("tampered tag not rejected (received=%d, auth=%d)", received, mgr.AuthRejected)
	}

	// 4. A tampered payload (the datum's value bytes, mid-frame) breaks
	// the signature even though the frame still parses.
	badBody := signedBinaryPublish(t, auth, mgr.Addr(), 5002, k.Now())
	badBody[len(badBody)/2] ^= 0x01
	deliver(badBody)
	if received != 1 {
		t.Fatalf("tampered payload delivered (received=%d)", received)
	}
	if mgr.AuthRejected+mgr.Malformed != 2 {
		t.Fatalf("tampered payload not counted (auth=%d malformed=%d)", mgr.AuthRejected, mgr.Malformed)
	}

	// 5. Truncated frames never parse, let alone verify.
	trunc := signedBinaryPublish(t, auth, mgr.Addr(), 5003, k.Now())
	for _, n := range []int{1, 7, len(trunc) / 2, len(trunc) - 3} {
		deliver(trunc[:n])
	}
	if received != 1 {
		t.Fatalf("truncated frame delivered (received=%d)", received)
	}
}

// A tag computed over the legacy JSON signing bytes must not verify
// against the canonical (binary) signing form — no cross-codec
// confusion: switching codecs invalidates old tags instead of silently
// accepting them.
func TestJSONSignedTagRejectedByCanonicalSigner(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	ks := NewKeyStore()
	rng := sim.NewRNG(9)
	ks.Issue("ice-manager", rng)
	ks.Issue("ox1", rng)
	auth := NewHMACAuth(ks)

	cfg := core.DefaultManagerConfig()
	cfg.Auth = auth
	cfg.Codec = core.NewJSONCodec() // debug codec on the wire
	mgr := core.MustNewManager(k, net, cfg)
	received := 0
	mgr.Subscribe("*/*", func(string, core.Datum) { received++ })
	core.MustConnect(k, net, core.Descriptor{
		ID: "ox1", Kind: core.KindPulseOximeter,
		Capabilities: []core.Capability{{Name: "spo2", Class: core.ClassSensor, Criticality: 3}},
	}, core.ConnectConfig{Auth: auth, Codec: core.NewJSONCodec()})
	if err := k.Run(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	wire := core.NewJSONCodec()
	unsigned, err := wire.AppendEnvelope(nil, core.MsgPublish, "ox1", mgr.Addr(), 7000, k.Now(), &core.Datum{
		Topic: "ox1/spo2", Value: 50, Valid: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Legacy-style tag: HMAC over the raw JSON frame bytes themselves
	// (the pre-canonical scheme). Must be rejected.
	legacyTag, err := auth.Sign("ox1", unsigned)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := wire.PatchAuth(append([]byte(nil), unsigned...), legacyTag)
	if err != nil {
		t.Fatal(err)
	}
	net.Send("x", mgr.Addr(), "publish", legacy)
	if err := k.Run(k.Now() + 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if received != 0 || mgr.AuthRejected != 1 {
		t.Fatalf("legacy JSON-signed tag accepted (received=%d, auth=%d)", received, mgr.AuthRejected)
	}

	// Canonically signed JSON frame: accepted — the codec is debuggable,
	// the signing form is shared.
	sig, err := wire.Signing(nil, unsigned)
	if err != nil {
		t.Fatal(err)
	}
	goodTag, err := auth.Sign("ox1", sig)
	if err != nil {
		t.Fatal(err)
	}
	good, err := wire.PatchAuth(unsigned, goodTag)
	if err != nil {
		t.Fatal(err)
	}
	net.Send("x", mgr.Addr(), "publish", good)
	if err := k.Run(k.Now() + 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("canonically signed JSON frame rejected (received=%d, auth=%d)", received, mgr.AuthRejected)
	}
}
