package security

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/mednet"
	"repro/internal/sim"
)

func TestHMACSignVerifyRoundTrip(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("pump1", sim.NewRNG(1))
	auth := NewHMACAuth(ks)
	msg := []byte("stop the pump")
	tag, err := auth.Sign("pump1", msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify("pump1", msg, tag); err != nil {
		t.Fatal(err)
	}
}

func TestHMACRejectsTamperAndForgery(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("pump1", sim.NewRNG(1))
	ks.Issue("mallory", sim.NewRNG(2))
	auth := NewHMACAuth(ks)
	msg := []byte("stop the pump")
	tag, _ := auth.Sign("pump1", msg)

	if err := auth.Verify("pump1", []byte("STOP THE PUMP"), tag); err == nil {
		t.Fatal("tampered message accepted")
	}
	if err := auth.Verify("pump1", msg, nil); err == nil {
		t.Fatal("missing tag accepted")
	}
	// Mallory signs with her key but claims to be pump1.
	forged, _ := auth.Sign("mallory", msg)
	if err := auth.Verify("pump1", msg, forged); err == nil {
		t.Fatal("cross-key forgery accepted")
	}
	if _, err := auth.Sign("ghost", msg); err == nil {
		t.Fatal("signing for unknown principal succeeded")
	}
}

// Property: for random messages, only the exact (message, sender) pair
// verifies.
func TestHMACTamperDetectionProperty(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("a", sim.NewRNG(1))
	auth := NewHMACAuth(ks)
	f := func(msg []byte, flip uint16) bool {
		if len(msg) == 0 {
			return true
		}
		tag, err := auth.Sign("a", msg)
		if err != nil {
			return false
		}
		if auth.Verify("a", msg, tag) != nil {
			return false
		}
		mutated := append([]byte(nil), msg...)
		mutated[int(flip)%len(mutated)] ^= 0xA5
		return auth.Verify("a", mutated, tag) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRevocation(t *testing.T) {
	ks := NewKeyStore()
	ks.Issue("d", sim.NewRNG(3))
	auth := NewHMACAuth(ks)
	msg := []byte("hello")
	tag, _ := auth.Sign("d", msg)
	ks.Revoke("d")
	if err := auth.Verify("d", msg, tag); err == nil {
		t.Fatal("revoked principal still verifies")
	}
}

func TestACL(t *testing.T) {
	acl := ClinicalDefaultACL()
	acl.Assign("pca-supervisor", "supervisor")
	acl.Assign("dashboard", "monitor-app")

	if ok, _ := acl.Authorize("pca-supervisor", ActCommand, "infusion-pump"); !ok {
		t.Fatal("supervisor denied command")
	}
	if ok, reason := acl.Authorize("dashboard", ActCommand, "infusion-pump"); ok || reason == "" {
		t.Fatal("monitor app allowed to command a pump")
	}
	if ok, _ := acl.Authorize("dashboard", ActReadData, "pulse-oximeter"); !ok {
		t.Fatal("monitor app denied read")
	}
	if ok, _ := acl.Authorize("stranger", ActReadData, "pulse-oximeter"); ok {
		t.Fatal("unassigned principal authorized")
	}
}

func TestAuditChain(t *testing.T) {
	log := NewAuditLog()
	log.Append(0, "supervisor", "command", "pump1.stop")
	log.Append(sim.Second, "supervisor", "command", "pump1.resume")
	log.Append(2*sim.Second, "nurse", "configure", "pump1.set-basal rate=1")
	if idx := log.VerifyChain(); idx != -1 {
		t.Fatalf("fresh chain corrupt at %d", idx)
	}
	if err := log.Tamper(1, "pump1.bolus 100mg"); err != nil {
		t.Fatal(err)
	}
	if idx := log.VerifyChain(); idx != 1 {
		t.Fatalf("tampering not detected at entry 1 (got %d)", idx)
	}
	if err := log.Tamper(99, "x"); err == nil {
		t.Fatal("out-of-range tamper accepted")
	}
	if got := len(log.Entries()); got != 3 {
		t.Fatalf("entries = %d", got)
	}
	if got := log.ByPrincipal(); len(got) != 2 {
		t.Fatalf("ByPrincipal = %v", got)
	}
}

// End-to-end over the ICE: with HMAC enabled, an attacker without a key
// cannot inject a stop command; the manager rejects it and the pump never
// sees it.
func TestICEAuthenticationBlocksInjection(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	ks := NewKeyStore()
	rng := sim.NewRNG(9)
	ks.Issue("ice-manager", rng)
	ks.Issue("ox1", rng)
	auth := NewHMACAuth(ks)

	cfg := core.DefaultManagerConfig()
	cfg.Auth = auth
	mgr := core.MustNewManager(k, net, cfg)

	received := 0
	mgr.Subscribe("*/*", func(string, core.Datum) { received++ })

	k.At(0, func() {
		// Legitimate device with a key.
		c := core.MustConnect(k, net, core.Descriptor{
			ID: "ox1", Kind: core.KindPulseOximeter,
			Capabilities: []core.Capability{{Name: "spo2", Class: core.ClassSensor, Criticality: 3}},
		}, core.ConnectConfig{Auth: auth})
		k.After(100*time.Millisecond, func() {
			c.Publish("spo2", 97, true, 1, k.Now())
		})
		// Attacker: well-formed but unsigned publish claiming to be ox1.
		k.After(200*time.Millisecond, func() {
			data, err := core.Encode(core.MsgPublish, "ox1", mgr.Addr(), 1000, k.Now(), core.Datum{
				Topic: "ox1/spo2", Value: 10, Valid: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			net.Send("attacker", mgr.Addr(), "publish", data)
		})
	})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("received %d publications, want 1 (forgery rejected)", received)
	}
	if mgr.AuthRejected != 1 {
		t.Fatalf("AuthRejected = %d, want 1", mgr.AuthRejected)
	}
}

// Without authentication, the same injection succeeds — the vulnerable
// baseline of E9.
func TestICEWithoutAuthIsVulnerable(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	received := 0
	mgr.Subscribe("*/*", func(string, core.Datum) { received++ })
	k.At(0, func() {
		core.MustConnect(k, net, core.Descriptor{
			ID: "ox1", Kind: core.KindPulseOximeter,
			Capabilities: []core.Capability{{Name: "spo2", Class: core.ClassSensor, Criticality: 3}},
		}, core.ConnectConfig{})
		k.After(200*time.Millisecond, func() {
			data, _ := core.Encode(core.MsgPublish, "ox1", mgr.Addr(), 1000, k.Now(), core.Datum{
				Topic: "ox1/spo2", Value: 10, Valid: true,
			})
			net.Send("attacker", mgr.Addr(), "publish", data)
		})
	})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("spoofed datum not delivered on unauthenticated ICE (received=%d)", received)
	}
}
