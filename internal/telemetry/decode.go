package telemetry

import (
	"encoding/json"
	"fmt"
)

// decodeBatch parses an uplink payload.
func decodeBatch(data []byte) ([]VitalSample, error) {
	var out []VitalSample
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("telemetry: decoding batch: %w", err)
	}
	return out, nil
}
