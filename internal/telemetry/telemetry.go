// Package telemetry implements the paper's continuous-monitoring trend
// (II.d): remote/home monitoring of vital signs with two transport
// disciplines — the prevailing store-and-forward mode ("no real-time
// diagnostic capability") and the streaming mode that closed-loop care
// needs — plus a tele-ICU aggregator that watches many remote patients
// and measures how long deterioration takes to reach a clinician's
// screen. Experiment E10 quantifies the detection-latency gap.
package telemetry

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mednet"
	"repro/internal/sim"
)

// VitalSample is one remote measurement.
type VitalSample struct {
	PatientID string   `json:"patient"`
	Signal    string   `json:"signal"`
	Value     float64  `json:"value"`
	At        sim.Time `json:"at"` // measurement time at the remote site
}

// Mode selects the transport discipline.
type Mode int

const (
	// StoreAndForward buffers samples locally and uploads in batches.
	StoreAndForward Mode = iota
	// Streaming transmits each sample when measured.
	Streaming
)

// String names the mode.
func (m Mode) String() string {
	if m == Streaming {
		return "streaming"
	}
	return "store-and-forward"
}

// UplinkConfig configures a remote monitor's transport.
type UplinkConfig struct {
	Mode          Mode
	FlushInterval time.Duration // store-and-forward batch period
	Aggregator    string        // network address of the tele-ICU
}

// Validate reports an error for unusable configurations.
func (c UplinkConfig) Validate() error {
	if c.Aggregator == "" {
		return errors.New("telemetry: uplink needs an aggregator address")
	}
	if c.Mode == StoreAndForward && c.FlushInterval <= 0 {
		return errors.New("telemetry: store-and-forward needs a positive flush interval")
	}
	return nil
}

// encodeBatch serializes samples for the wire (newline-free JSON array
// via the stdlib).
func encodeBatch(samples []VitalSample) []byte {
	out := []byte{'['}
	for i, s := range samples {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, []byte(fmt.Sprintf(
			`{"patient":%q,"signal":%q,"value":%g,"at":%d}`,
			s.PatientID, s.Signal, s.Value, int64(s.At)))...)
	}
	return append(out, ']')
}

// RemoteMonitor is the patient-side uplink: it accepts samples from local
// sensors and ships them per the configured mode.
type RemoteMonitor struct {
	id   string
	cfg  UplinkConfig
	k    *sim.Kernel
	net  *mednet.Network
	buf  []VitalSample
	tick *sim.Ticker

	// Counters.
	SamplesTaken uint64
	BatchesSent  uint64
}

// NewRemoteMonitor attaches an uplink for one remote patient.
func NewRemoteMonitor(k *sim.Kernel, net *mednet.Network, id string, cfg UplinkConfig) (*RemoteMonitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &RemoteMonitor{id: id, cfg: cfg, k: k, net: net}
	if cfg.Mode == StoreAndForward {
		m.tick = k.Every(cfg.FlushInterval, func(sim.Time) { m.Flush() })
	}
	return m, nil
}

// MustNewRemoteMonitor is NewRemoteMonitor, panicking on error.
func MustNewRemoteMonitor(k *sim.Kernel, net *mednet.Network, id string, cfg UplinkConfig) *RemoteMonitor {
	m, err := NewRemoteMonitor(k, net, id, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Record accepts one locally measured sample.
func (m *RemoteMonitor) Record(signal string, value float64) {
	s := VitalSample{PatientID: m.id, Signal: signal, Value: value, At: m.k.Now()}
	m.SamplesTaken++
	if m.cfg.Mode == Streaming {
		m.send([]VitalSample{s})
		return
	}
	m.buf = append(m.buf, s)
}

// Flush uploads the buffered batch (store-and-forward).
func (m *RemoteMonitor) Flush() {
	if len(m.buf) == 0 {
		return
	}
	m.send(m.buf)
	m.buf = nil
}

// Buffered reports how many samples await the next flush.
func (m *RemoteMonitor) Buffered() int { return len(m.buf) }

func (m *RemoteMonitor) send(batch []VitalSample) {
	m.BatchesSent++
	m.net.Send(m.id, m.cfg.Aggregator, "vitals", encodeBatch(batch))
}

// AlertRule triggers when a signal crosses below (or above) a bound.
type AlertRule struct {
	Signal string
	Below  float64 // alert when value < Below (ignored if 0 and Above set)
	Above  float64 // alert when value > Above
}

// Alert is one tele-ICU detection.
type Alert struct {
	PatientID  string
	Signal     string
	Value      float64
	MeasuredAt sim.Time // when the remote sensor measured it
	SeenAt     sim.Time // when the aggregator processed it
}

// Latency is the transport + batching delay the clinician experienced.
func (a Alert) Latency() sim.Time { return a.SeenAt - a.MeasuredAt }

// Aggregator is the tele-ICU hub: it decodes uplink batches from many
// remote patients, applies alert rules, and records detection latency.
type Aggregator struct {
	addr  string
	k     *sim.Kernel
	rules []AlertRule

	alerts  []Alert
	onAlert []func(Alert)
	// Received counts samples processed.
	Received uint64
	// Decode failures.
	Malformed uint64
	seen      map[string]sim.Time // patient|signal -> last alert measurement time (dedup)
}

// NewAggregator registers the hub on the network.
func NewAggregator(k *sim.Kernel, net *mednet.Network, addr string, rules []AlertRule) *Aggregator {
	a := &Aggregator{addr: addr, k: k, rules: rules, seen: make(map[string]sim.Time)}
	net.Register(addr, a.onMessage)
	return a
}

// Alerts returns all detections so far.
func (a *Aggregator) Alerts() []Alert { return a.alerts }

// OnAlert registers a listener.
func (a *Aggregator) OnAlert(fn func(Alert)) { a.onAlert = append(a.onAlert, fn) }

// MeanDetectionLatency averages alert latencies (0 when none).
func (a *Aggregator) MeanDetectionLatency() sim.Time {
	if len(a.alerts) == 0 {
		return 0
	}
	var sum sim.Time
	for _, al := range a.alerts {
		sum += al.Latency()
	}
	return sum / sim.Time(len(a.alerts))
}

func (a *Aggregator) onMessage(msg mednet.Message) {
	samples, err := decodeBatch(msg.Payload)
	if err != nil {
		a.Malformed++
		return
	}
	for _, s := range samples {
		a.Received++
		for _, r := range a.rules {
			if r.Signal != s.Signal {
				continue
			}
			trig := (r.Below != 0 && s.Value < r.Below) || (r.Above != 0 && s.Value > r.Above)
			if !trig {
				continue
			}
			// Deduplicate: one alert per patient/signal per 60 s of
			// measurement time.
			key := s.PatientID + "|" + s.Signal
			if last, ok := a.seen[key]; ok && s.At-last < sim.Minute {
				continue
			}
			a.seen[key] = s.At
			al := Alert{
				PatientID: s.PatientID, Signal: s.Signal, Value: s.Value,
				MeasuredAt: s.At, SeenAt: a.k.Now(),
			}
			a.alerts = append(a.alerts, al)
			for _, fn := range a.onAlert {
				fn(al)
			}
		}
	}
}
