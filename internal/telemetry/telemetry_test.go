package telemetry

import (
	"testing"
	"time"

	"repro/internal/mednet"
	"repro/internal/sim"
)

func wanNet(t *testing.T) (*sim.Kernel, *mednet.Network) {
	t.Helper()
	k := sim.NewKernel()
	// Home-to-hospital WAN: 40 ms ± 10 ms.
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.LinkParams{
		Latency: 40 * time.Millisecond, Jitter: 10 * time.Millisecond,
	})
	return k, net
}

func spo2Rules() []AlertRule {
	return []AlertRule{{Signal: "spo2", Below: 90}}
}

func TestUplinkValidation(t *testing.T) {
	k, net := wanNet(t)
	if _, err := NewRemoteMonitor(k, net, "p1", UplinkConfig{}); err == nil {
		t.Fatal("missing aggregator accepted")
	}
	if _, err := NewRemoteMonitor(k, net, "p1", UplinkConfig{
		Aggregator: "hub", Mode: StoreAndForward,
	}); err == nil {
		t.Fatal("store-and-forward without flush interval accepted")
	}
}

func TestStreamingDeliversEachSample(t *testing.T) {
	k, net := wanNet(t)
	agg := NewAggregator(k, net, "hub", spo2Rules())
	mon := MustNewRemoteMonitor(k, net, "p1", UplinkConfig{Mode: Streaming, Aggregator: "hub"})
	for i := 0; i < 10; i++ {
		i := i
		k.At(sim.Time(i)*sim.Second, func() { mon.Record("spo2", 97) })
	}
	if err := k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if agg.Received != 10 {
		t.Fatalf("received = %d, want 10", agg.Received)
	}
	if mon.BatchesSent != 10 {
		t.Fatalf("batches = %d, want 10 (one per sample)", mon.BatchesSent)
	}
}

func TestStoreAndForwardBatches(t *testing.T) {
	k, net := wanNet(t)
	agg := NewAggregator(k, net, "hub", spo2Rules())
	mon := MustNewRemoteMonitor(k, net, "p1", UplinkConfig{
		Mode: StoreAndForward, FlushInterval: 30 * time.Second, Aggregator: "hub",
	})
	// Samples every 3 s for a minute straddle both 30 s flush windows.
	for i := 0; i < 20; i++ {
		i := i
		k.At(sim.Time(i)*3*sim.Second, func() { mon.Record("spo2", 97) })
	}
	if err := k.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if agg.Received != 20 {
		t.Fatalf("received = %d, want 20", agg.Received)
	}
	if mon.BatchesSent != 2 {
		t.Fatalf("batches = %d, want 2 (30 s flushes over 60 s)", mon.BatchesSent)
	}
}

func TestDetectionLatencyGap(t *testing.T) {
	// The headline E10 shape: streaming detects a desaturation within
	// transport latency; store-and-forward waits for the next flush.
	run := func(mode Mode) sim.Time {
		k, net := wanNet(t)
		agg := NewAggregator(k, net, "hub", spo2Rules())
		cfg := UplinkConfig{Mode: mode, Aggregator: "hub", FlushInterval: 5 * time.Minute}
		mon := MustNewRemoteMonitor(k, net, "p1", cfg)
		// Normal samples every 10 s; desaturation at t=61 s.
		for i := 0; i < 60; i++ {
			i := i
			k.At(sim.Time(i)*10*sim.Second, func() {
				v := 97.0
				if sim.Time(i)*10*sim.Second >= 61*sim.Second {
					v = 82
				}
				mon.Record("spo2", v)
			})
		}
		if err := k.Run(15 * sim.Minute); err != nil {
			t.Fatal(err)
		}
		if len(agg.Alerts()) == 0 {
			t.Fatalf("%v: desaturation never detected", mode)
		}
		return agg.Alerts()[0].Latency()
	}
	streamLat := run(Streaming)
	sfLat := run(StoreAndForward)
	if streamLat > 200*sim.Millisecond {
		t.Fatalf("streaming latency %v, want < 200ms", streamLat)
	}
	if sfLat < sim.Minute {
		t.Fatalf("store-and-forward latency %v, want minutes (next flush)", sfLat)
	}
	if sfLat <= streamLat {
		t.Fatal("store-and-forward not slower than streaming")
	}
}

func TestAlertDeduplication(t *testing.T) {
	k, net := wanNet(t)
	agg := NewAggregator(k, net, "hub", spo2Rules())
	mon := MustNewRemoteMonitor(k, net, "p1", UplinkConfig{Mode: Streaming, Aggregator: "hub"})
	// 30 consecutive low samples over 30 s: one alert, not 30.
	for i := 0; i < 30; i++ {
		i := i
		k.At(sim.Time(i)*sim.Second, func() { mon.Record("spo2", 80) })
	}
	if err := k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if len(agg.Alerts()) != 1 {
		t.Fatalf("alerts = %d, want 1 (dedup within a minute)", len(agg.Alerts()))
	}
}

func TestAboveRuleAndMultiplePatients(t *testing.T) {
	k, net := wanNet(t)
	agg := NewAggregator(k, net, "hub", []AlertRule{{Signal: "hr", Above: 130}})
	m1 := MustNewRemoteMonitor(k, net, "p1", UplinkConfig{Mode: Streaming, Aggregator: "hub"})
	m2 := MustNewRemoteMonitor(k, net, "p2", UplinkConfig{Mode: Streaming, Aggregator: "hub"})
	k.At(sim.Second, func() {
		m1.Record("hr", 145) // alert
		m2.Record("hr", 80)  // fine
	})
	if err := k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if len(agg.Alerts()) != 1 || agg.Alerts()[0].PatientID != "p1" {
		t.Fatalf("alerts = %+v", agg.Alerts())
	}
	if agg.MeanDetectionLatency() <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestMalformedBatchCounted(t *testing.T) {
	k, net := wanNet(t)
	agg := NewAggregator(k, net, "hub", nil)
	k.At(0, func() { net.Send("x", "hub", "vitals", []byte("{broken")) })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if agg.Malformed != 1 {
		t.Fatalf("malformed = %d", agg.Malformed)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []VitalSample{
		{PatientID: "p1", Signal: "spo2", Value: 97.25, At: 123 * sim.Second},
		{PatientID: "p2", Signal: "hr", Value: 61, At: 124 * sim.Second},
	}
	out, err := decodeBatch(encodeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestFlushEmptyBufferSendsNothing(t *testing.T) {
	k, net := wanNet(t)
	mon := MustNewRemoteMonitor(k, net, "p1", UplinkConfig{
		Mode: StoreAndForward, FlushInterval: time.Second, Aggregator: "hub",
	})
	if err := k.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if mon.BatchesSent != 0 {
		t.Fatalf("batches = %d, want 0 for empty buffer", mon.BatchesSent)
	}
	if mon.Buffered() != 0 {
		t.Fatal("phantom buffered samples")
	}
}

func TestModeString(t *testing.T) {
	if StoreAndForward.String() != "store-and-forward" || Streaming.String() != "streaming" {
		t.Fatal("mode names")
	}
}
