// Package ehr implements the electronic-health-record store the paper's
// adaptive-algorithm challenge (i) depends on: per-patient history —
// including exercise history, the paper's athlete example — from which
// alarm thresholds are personalized so that a trained athlete's resting
// heart rate of 45 does not page a nurse, while the same value in a
// deconditioned patient still does.
package ehr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Observation is one historical vital-sign measurement.
type Observation struct {
	Signal string // "hr", "spo2", "map", "rr"
	Value  float64
}

// Record is one patient's chart.
type Record struct {
	PatientID string
	Age       int
	// ExerciseHoursPerWeek is the exercise history; >= 6 marks athletic
	// conditioning for threshold purposes.
	ExerciseHoursPerWeek float64
	// ChronicHypoxemia notes a condition (e.g. COPD) where a baseline
	// SpO2 in the low 90s is the patient's normal.
	ChronicHypoxemia bool

	history map[string][]float64
}

// NewRecord returns an empty chart.
func NewRecord(patientID string) *Record {
	return &Record{PatientID: patientID, history: make(map[string][]float64)}
}

// Athlete reports whether the exercise history indicates athletic
// conditioning.
func (r *Record) Athlete() bool { return r.ExerciseHoursPerWeek >= 6 }

// AddObservation appends a historical measurement.
func (r *Record) AddObservation(o Observation) {
	if r.history == nil {
		r.history = make(map[string][]float64)
	}
	r.history[o.Signal] = append(r.history[o.Signal], o.Value)
}

// ObservationCount reports how many values are on file for a signal.
func (r *Record) ObservationCount(signal string) int { return len(r.history[signal]) }

// Percentile returns the p-th percentile (0-100) of the recorded values
// for a signal. ok is false with no history.
func (r *Record) Percentile(signal string, p float64) (float64, bool) {
	vals := r.history[signal]
	if len(vals) == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], true
	}
	if p >= 100 {
		return sorted[len(sorted)-1], true
	}
	idx := p / 100 * float64(len(sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1], true
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, true
}

// Store is a concurrency-safe in-memory EHR.
type Store struct {
	mu      sync.RWMutex
	records map[string]*Record
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{records: make(map[string]*Record)}
}

// Put registers a record, replacing any existing one for the patient.
func (s *Store) Put(r *Record) error {
	if r == nil || r.PatientID == "" {
		return errors.New("ehr: record needs a patient ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[r.PatientID] = r
	return nil
}

// Get fetches a record.
func (s *Store) Get(patientID string) (*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[patientID]
	if !ok {
		return nil, fmt.Errorf("ehr: no record for patient %q", patientID)
	}
	return r, nil
}

// Thresholds are alarm limits for the standard vitals.
type Thresholds struct {
	HRLow, HRHigh   float64
	SpO2Low         float64
	MAPLow, MAPHigh float64
	RRLow, RRHigh   float64
}

// PopulationThresholds are the one-size-fits-all limits the paper
// criticizes as generating alarm fatigue.
func PopulationThresholds() Thresholds {
	return Thresholds{
		HRLow: 50, HRHigh: 120,
		SpO2Low: 90,
		MAPLow:  60, MAPHigh: 110,
		RRLow: 8, RRHigh: 24,
	}
}

// Personalize adapts population thresholds to the patient's chart:
//
//   - athletes (by exercise history) get a lower HR floor anchored at the
//     5th percentile of their recorded resting heart rates;
//   - chronic hypoxemia lowers the SpO2 limit toward the patient's own
//     baseline (5th percentile), never below a hard floor of 85;
//   - with enough history, HR ceiling adapts to the 95th percentile plus
//     a margin.
//
// Limits only relax toward the patient's demonstrated normal; they never
// become stricter than a hard safety floor.
func Personalize(rec *Record, pop Thresholds) Thresholds {
	out := pop
	const minHistory = 10

	if rec.ObservationCount("hr") >= minHistory {
		if p5, ok := rec.Percentile("hr", 5); ok {
			candidate := p5 - 5
			if rec.Athlete() && candidate < out.HRLow {
				if candidate < 35 {
					candidate = 35 // hard floor
				}
				out.HRLow = candidate
			}
		}
		if p95, ok := rec.Percentile("hr", 95); ok {
			candidate := p95 + 15
			if candidate > out.HRHigh {
				if candidate > 150 {
					candidate = 150
				}
				out.HRHigh = candidate
			}
		}
	}
	if rec.ChronicHypoxemia && rec.ObservationCount("spo2") >= minHistory {
		if p5, ok := rec.Percentile("spo2", 5); ok {
			candidate := p5 - 2
			if candidate < 85 {
				candidate = 85 // hard floor
			}
			if candidate < out.SpO2Low {
				out.SpO2Low = candidate
			}
		}
	}
	return out
}
