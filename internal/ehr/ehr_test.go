package ehr

import (
	"math"
	"testing"
	"testing/quick"
)

func athleteRecord() *Record {
	r := NewRecord("athlete-1")
	r.ExerciseHoursPerWeek = 10
	for _, hr := range []float64{44, 45, 46, 44, 43, 47, 45, 44, 46, 45, 44, 43} {
		r.AddObservation(Observation{Signal: "hr", Value: hr})
	}
	return r
}

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	if err := s.Put(nil); err == nil {
		t.Fatal("nil record accepted")
	}
	if err := s.Put(NewRecord("")); err == nil {
		t.Fatal("empty ID accepted")
	}
	r := athleteRecord()
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("athlete-1")
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatal("wrong record returned")
	}
	if _, err := s.Get("ghost"); err == nil {
		t.Fatal("missing record returned no error")
	}
}

func TestPercentile(t *testing.T) {
	r := NewRecord("p")
	for i := 1; i <= 100; i++ {
		r.AddObservation(Observation{Signal: "hr", Value: float64(i)})
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5},
	}
	for _, c := range cases {
		got, ok := r.Percentile("hr", c.p)
		if !ok || math.Abs(got-c.want) > 0.01 {
			t.Fatalf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if _, ok := r.Percentile("nothing", 50); ok {
		t.Fatal("percentile of empty history reported ok")
	}
}

func TestAthleteClassification(t *testing.T) {
	r := NewRecord("p")
	r.ExerciseHoursPerWeek = 2
	if r.Athlete() {
		t.Fatal("casual exerciser classified as athlete")
	}
	r.ExerciseHoursPerWeek = 8
	if !r.Athlete() {
		t.Fatal("8h/week not classified as athlete")
	}
}

func TestPersonalizeAthleteHRFloor(t *testing.T) {
	pop := PopulationThresholds()
	pers := Personalize(athleteRecord(), pop)
	if pers.HRLow >= pop.HRLow {
		t.Fatalf("athlete HR floor %f not lowered from %f", pers.HRLow, pop.HRLow)
	}
	if pers.HRLow < 35 {
		t.Fatalf("HR floor %f below hard safety floor", pers.HRLow)
	}
	// Other limits unchanged.
	if pers.SpO2Low != pop.SpO2Low || pers.MAPLow != pop.MAPLow {
		t.Fatalf("unrelated thresholds moved: %+v", pers)
	}
}

func TestPersonalizeNonAthleteUnchanged(t *testing.T) {
	r := NewRecord("sedentary")
	r.ExerciseHoursPerWeek = 1
	for i := 0; i < 12; i++ {
		r.AddObservation(Observation{Signal: "hr", Value: 46}) // bradycardic but NOT athletic
	}
	pop := PopulationThresholds()
	pers := Personalize(r, pop)
	if pers.HRLow != pop.HRLow {
		t.Fatalf("non-athlete HR floor moved to %f; low HR without exercise history is pathological", pers.HRLow)
	}
}

func TestPersonalizeRequiresHistory(t *testing.T) {
	r := NewRecord("new-patient")
	r.ExerciseHoursPerWeek = 12
	r.AddObservation(Observation{Signal: "hr", Value: 45}) // single reading
	pop := PopulationThresholds()
	if pers := Personalize(r, pop); pers.HRLow != pop.HRLow {
		t.Fatal("thresholds personalized from insufficient history")
	}
}

func TestPersonalizeChronicHypoxemia(t *testing.T) {
	r := NewRecord("copd")
	r.ChronicHypoxemia = true
	for i := 0; i < 15; i++ {
		r.AddObservation(Observation{Signal: "spo2", Value: 91})
	}
	pop := PopulationThresholds()
	pers := Personalize(r, pop)
	if pers.SpO2Low >= pop.SpO2Low {
		t.Fatalf("COPD SpO2 limit %f not lowered", pers.SpO2Low)
	}
	if pers.SpO2Low < 85 {
		t.Fatalf("SpO2 limit %f below hard floor", pers.SpO2Low)
	}
}

func TestPersonalizeHighHRCeiling(t *testing.T) {
	r := NewRecord("anxious")
	for i := 0; i < 20; i++ {
		r.AddObservation(Observation{Signal: "hr", Value: 115})
	}
	pop := PopulationThresholds()
	pers := Personalize(r, pop)
	if pers.HRHigh <= pop.HRHigh {
		t.Fatalf("HR ceiling %f not raised for chronically fast heart", pers.HRHigh)
	}
	if pers.HRHigh > 150 {
		t.Fatalf("HR ceiling %f above hard cap", pers.HRHigh)
	}
}

// Property: personalization never crosses the hard safety floors and
// only ever relaxes limits (never tightens into the normal range).
func TestPersonalizeSafetyFloorsProperty(t *testing.T) {
	f := func(hrs []uint8, exercise uint8, hypox bool) bool {
		r := NewRecord("p")
		r.ExerciseHoursPerWeek = float64(exercise % 15)
		r.ChronicHypoxemia = hypox
		for _, h := range hrs {
			r.AddObservation(Observation{Signal: "hr", Value: 30 + float64(h%120)})
			r.AddObservation(Observation{Signal: "spo2", Value: 80 + float64(h%21)})
		}
		pop := PopulationThresholds()
		pers := Personalize(r, pop)
		return pers.HRLow >= 35 && pers.HRLow <= pop.HRLow &&
			pers.HRHigh >= pop.HRHigh && pers.HRHigh <= 150 &&
			pers.SpO2Low >= 85 && pers.SpO2Low <= pop.SpO2Low
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestObservationCount(t *testing.T) {
	r := NewRecord("p")
	if r.ObservationCount("hr") != 0 {
		t.Fatal("fresh record has observations")
	}
	r.AddObservation(Observation{Signal: "hr", Value: 60})
	if r.ObservationCount("hr") != 1 {
		t.Fatal("count wrong")
	}
}
