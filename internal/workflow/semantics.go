package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// State is one configuration of a workflow: variable values plus which
// non-repeating steps have fired. It is the paper's "precise operational
// semantics": Enabled and Apply below define the transition relation that
// both the interpreter and the model checker use.
type State struct {
	Vars []Value // indexed by Workflow.Vars order
	Done []bool  // indexed by Workflow.Steps order
}

// Key returns a canonical encoding usable as a map key.
func (s State) Key() string {
	var b strings.Builder
	for i, v := range s.Vars {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(v.String())
	}
	b.WriteByte('|')
	for _, d := range s.Done {
		if d {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Clone deep-copies the state.
func (s State) Clone() State {
	return State{
		Vars: append([]Value(nil), s.Vars...),
		Done: append([]bool(nil), s.Done...),
	}
}

// InitialState builds the declared initial configuration.
func (w *Workflow) InitialState() State {
	s := State{Vars: make([]Value, len(w.Vars)), Done: make([]bool, len(w.Steps))}
	for i, v := range w.Vars {
		s.Vars[i] = v.Initial
	}
	return s
}

// Env materializes the variable environment of a state.
func (w *Workflow) Env(s State) map[string]Value {
	env := make(map[string]Value, len(w.Vars))
	for i, v := range w.Vars {
		env[v.Name] = s.Vars[i]
	}
	return env
}

func (w *Workflow) varIndex(name string) int {
	for i, v := range w.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// runBody executes a step body over a copy of the state. When skipGuards
// is true, failing require statements are ignored — the user-error model.
// Commands are recorded for the caller (the interpreter sends them to
// devices; the checker ignores them). A false first return means a guard
// failed (step not enabled); an error means a set left an int variable's
// declared range, which also disables the step.
func (w *Workflow) runBody(s State, step Step, skipGuards bool) (ok bool, out State, commands []Stmt, err error) {
	out = s.Clone()
	env := w.Env(out)
	for _, st := range step.Body {
		switch st.Kind {
		case StmtRequire:
			holds, everr := EvalBool(st.Expr, env)
			if everr != nil {
				return false, s, nil, everr
			}
			if !holds && !skipGuards {
				return false, s, nil, nil
			}
		case StmtSet:
			v, everr := Eval(st.Expr, env)
			if everr != nil {
				return false, s, nil, everr
			}
			idx := w.varIndex(st.Var)
			decl := w.Vars[idx]
			if decl.Type == TypeInt && (v.I < decl.Lo || v.I > decl.Hi) {
				return false, s, nil, fmt.Errorf("workflow: set %s=%d leaves range [%d,%d]",
					st.Var, v.I, decl.Lo, decl.Hi)
			}
			out.Vars[idx] = v
			env[st.Var] = v
		case StmtCommand:
			commands = append(commands, st)
		}
	}
	return true, out, commands, nil
}

// Enabled reports whether step index i may fire in state s.
func (w *Workflow) Enabled(s State, i int) bool {
	step := w.Steps[i]
	if s.Done[i] && !step.Repeats {
		return false
	}
	ok, _, _, err := w.runBody(s, step, false)
	return ok && err == nil
}

// Apply fires step index i, returning the successor state and the device
// commands the step issues. Firing a disabled step is an error.
func (w *Workflow) Apply(s State, i int) (State, []Stmt, error) {
	step := w.Steps[i]
	if s.Done[i] && !step.Repeats {
		return s, nil, fmt.Errorf("workflow: step %q already done", step.Name)
	}
	ok, out, cmds, err := w.runBody(s, step, false)
	if err != nil {
		return s, nil, err
	}
	if !ok {
		return s, nil, fmt.Errorf("workflow: step %q not enabled", step.Name)
	}
	out.Done[i] = true
	return out, cmds, nil
}

// CheckInvariants evaluates every invariant in s, returning the labels of
// those violated.
func (w *Workflow) CheckInvariants(s State) ([]string, error) {
	env := w.Env(s)
	var violated []string
	for _, inv := range w.Invariants {
		holds, err := EvalBool(inv.Expr, env)
		if err != nil {
			return nil, err
		}
		if !holds {
			violated = append(violated, inv.Label)
		}
	}
	return violated, nil
}

// FaultKind enumerates the analysis fault modes — the "effects of faults
// and user errors" the paper wants explored.
type FaultKind int

const (
	// FaultSkipGuard fires a step even when its preconditions fail: a
	// caregiver performing an action out of order.
	FaultSkipGuard FaultKind = iota
	// FaultOmit marks a step done without applying any of its effects: a
	// forgotten action the caregiver believes was performed (the
	// forgotten ventilator restart).
	FaultOmit
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultSkipGuard:
		return "skip-guard"
	case FaultOmit:
		return "omit"
	default:
		return "unknown"
	}
}

// Fault enables one fault mode on one step during analysis.
type Fault struct {
	Kind FaultKind
	Step string
}

// Transition is one outgoing edge from a state.
type Transition struct {
	Step  string
	Fault *Fault // nil for a nominal transition
	To    State
}

// Analysis wraps a workflow plus fault modes as a transition system.
type Analysis struct {
	W      *Workflow
	Faults []Fault
}

// Successors enumerates every nominal and faulty transition from s, in a
// deterministic order.
func (a Analysis) Successors(s State) ([]Transition, error) {
	var out []Transition
	for i, step := range a.W.Steps {
		if a.W.Enabled(s, i) {
			next, _, err := a.W.Apply(s, i)
			if err != nil {
				return nil, err
			}
			out = append(out, Transition{Step: step.Name, To: next})
		}
	}
	for fi := range a.Faults {
		f := a.Faults[fi]
		idx := -1
		for i, step := range a.W.Steps {
			if step.Name == f.Step {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("workflow: fault on unknown step %q", f.Step)
		}
		step := a.W.Steps[idx]
		if s.Done[idx] && !step.Repeats {
			continue
		}
		switch f.Kind {
		case FaultSkipGuard:
			ok, next, _, err := a.W.runBody(s, step, true)
			if err != nil || !ok {
				continue // range violation: physically impossible even as an error
			}
			// Only a distinct transition when the guard actually failed.
			if a.W.Enabled(s, idx) {
				continue
			}
			next.Done[idx] = true
			out = append(out, Transition{Step: step.Name, Fault: &a.Faults[fi], To: next})
		case FaultOmit:
			// The step must have been attemptable for the caregiver to
			// believe it happened.
			if !a.W.Enabled(s, idx) {
				continue
			}
			next := s.Clone()
			next.Done[idx] = true
			out = append(out, Transition{Step: step.Name, Fault: &a.Faults[fi], To: next})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Fault == nil && out[j].Fault != nil
	})
	return out, nil
}

// Terminal reports whether no transitions (nominal or faulty) leave s.
func (a Analysis) Terminal(s State) (bool, error) {
	succ, err := a.Successors(s)
	if err != nil {
		return false, err
	}
	return len(succ) == 0, nil
}

// AllDone reports whether every non-repeating step has fired.
func (w *Workflow) AllDone(s State) bool {
	for i, step := range w.Steps {
		if !step.Repeats && !s.Done[i] {
			return false
		}
	}
	return true
}
