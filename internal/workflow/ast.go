// Package workflow implements the paper's executable-clinical-workflow
// challenge (e): a small language for clinical scenarios specifying the
// devices a scenario needs, the caregiver roles involved, the variables of
// the protocol state, the steps each role performs (with preconditions,
// effects and device commands), and safety invariants. The language has a
// precise operational semantics (semantics.go) that both an interpreter
// (interp.go, running on the simulation kernel) and the model checker in
// internal/verify consume — one description, executable and analyzable,
// exactly as the paper asks.
//
// Example (the X-ray/ventilator scenario):
//
//	workflow xray_vent {
//	  devices {
//	    vent: ventilator requires [pause, resume]
//	    xray: x-ray requires [shoot]
//	  }
//	  roles { anesthesiologist technician }
//	  vars {
//	    ventilated: bool = true
//	    imaged: bool = false
//	  }
//	  steps {
//	    step pause_vent by anesthesiologist {
//	      require ventilated == true
//	      command vent.pause
//	      set ventilated = false
//	    }
//	    step image by technician {
//	      require ventilated == false
//	      command xray.shoot
//	      set imaged = true
//	    }
//	    step resume_vent by anesthesiologist {
//	      require imaged == true
//	      command vent.resume
//	      set ventilated = true
//	    }
//	  }
//	  invariants {
//	    invariant "no imaging while ventilated" : !(imaged && ventilated == false) || true
//	  }
//	}
package workflow

import (
	"errors"
	"fmt"
)

// Workflow is the root of a parsed clinical scenario.
type Workflow struct {
	Name       string
	Devices    []DeviceReq
	Roles      []string
	Vars       []VarDecl
	Steps      []Step
	Invariants []Invariant
}

// DeviceReq names a device slot and the capabilities the scenario needs
// from whatever device fills it.
type DeviceReq struct {
	Alias    string // name used by command statements
	Kind     string // device kind required
	Commands []string
}

// VarType is the type of a protocol variable.
type VarType int

const (
	TypeBool VarType = iota
	TypeInt
)

// VarDecl declares a protocol variable. Int variables carry a finite
// range so the state space stays enumerable.
type VarDecl struct {
	Name    string
	Type    VarType
	Lo, Hi  int // int range, inclusive (ignored for bool)
	Initial Value
}

// Value is a variable value.
type Value struct {
	Type VarType
	B    bool
	I    int
}

// BoolVal wraps a bool.
func BoolVal(b bool) Value { return Value{Type: TypeBool, B: b} }

// IntVal wraps an int.
func IntVal(i int) Value { return Value{Type: TypeInt, I: i} }

// String renders the value.
func (v Value) String() string {
	if v.Type == TypeBool {
		return fmt.Sprintf("%t", v.B)
	}
	return fmt.Sprintf("%d", v.I)
}

// Equal compares values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	if v.Type == TypeBool {
		return v.B == o.B
	}
	return v.I == o.I
}

// Step is one unit of caregiver work.
type Step struct {
	Name    string
	Role    string
	Repeats bool // may fire more than once
	Body    []Stmt
}

// StmtKind discriminates statements.
type StmtKind int

const (
	StmtRequire StmtKind = iota
	StmtSet
	StmtCommand
)

// Stmt is one statement in a step body.
type Stmt struct {
	Kind    StmtKind
	Expr    Expr   // require: guard; set: right-hand side
	Var     string // set: target variable
	Device  string // command: device alias
	Command string // command: command name
}

// Invariant is a safety property that must hold in every reachable state.
type Invariant struct {
	Label string
	Expr  Expr
}

// Validate checks cross-references and typing of the whole workflow.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return errors.New("workflow: missing name")
	}
	roles := map[string]bool{}
	for _, r := range w.Roles {
		if roles[r] {
			return fmt.Errorf("workflow %s: duplicate role %q", w.Name, r)
		}
		roles[r] = true
	}
	devs := map[string]map[string]bool{}
	for _, d := range w.Devices {
		if _, dup := devs[d.Alias]; dup {
			return fmt.Errorf("workflow %s: duplicate device alias %q", w.Name, d.Alias)
		}
		cmds := map[string]bool{}
		for _, c := range d.Commands {
			cmds[c] = true
		}
		devs[d.Alias] = cmds
	}
	vars := map[string]VarDecl{}
	for _, v := range w.Vars {
		if _, dup := vars[v.Name]; dup {
			return fmt.Errorf("workflow %s: duplicate variable %q", w.Name, v.Name)
		}
		if v.Type == TypeInt && v.Hi < v.Lo {
			return fmt.Errorf("workflow %s: variable %q has empty range", w.Name, v.Name)
		}
		if v.Initial.Type != v.Type {
			return fmt.Errorf("workflow %s: variable %q initial value has wrong type", w.Name, v.Name)
		}
		if v.Type == TypeInt && (v.Initial.I < v.Lo || v.Initial.I > v.Hi) {
			return fmt.Errorf("workflow %s: variable %q initial value outside range", w.Name, v.Name)
		}
		vars[v.Name] = v
	}
	if len(w.Steps) == 0 {
		return fmt.Errorf("workflow %s: no steps", w.Name)
	}
	stepNames := map[string]bool{}
	for _, s := range w.Steps {
		if stepNames[s.Name] {
			return fmt.Errorf("workflow %s: duplicate step %q", w.Name, s.Name)
		}
		stepNames[s.Name] = true
		if !roles[s.Role] {
			return fmt.Errorf("workflow %s: step %q performed by unknown role %q", w.Name, s.Name, s.Role)
		}
		for _, st := range s.Body {
			switch st.Kind {
			case StmtRequire, StmtSet:
				if err := checkExpr(st.Expr, vars); err != nil {
					return fmt.Errorf("workflow %s, step %s: %w", w.Name, s.Name, err)
				}
				if st.Kind == StmtSet {
					decl, ok := vars[st.Var]
					if !ok {
						return fmt.Errorf("workflow %s, step %s: set of unknown variable %q", w.Name, s.Name, st.Var)
					}
					et, err := exprType(st.Expr, vars)
					if err != nil {
						return fmt.Errorf("workflow %s, step %s: %w", w.Name, s.Name, err)
					}
					if et != decl.Type {
						return fmt.Errorf("workflow %s, step %s: set %s type mismatch", w.Name, s.Name, st.Var)
					}
				} else {
					et, err := exprType(st.Expr, vars)
					if err != nil {
						return fmt.Errorf("workflow %s, step %s: %w", w.Name, s.Name, err)
					}
					if et != TypeBool {
						return fmt.Errorf("workflow %s, step %s: require needs a boolean", w.Name, s.Name)
					}
				}
			case StmtCommand:
				cmds, ok := devs[st.Device]
				if !ok {
					return fmt.Errorf("workflow %s, step %s: command on unknown device %q", w.Name, s.Name, st.Device)
				}
				if !cmds[st.Command] {
					return fmt.Errorf("workflow %s, step %s: device %q does not require command %q",
						w.Name, s.Name, st.Device, st.Command)
				}
			}
		}
	}
	for _, inv := range w.Invariants {
		if err := checkExpr(inv.Expr, vars); err != nil {
			return fmt.Errorf("workflow %s, invariant %q: %w", w.Name, inv.Label, err)
		}
		et, err := exprType(inv.Expr, vars)
		if err != nil {
			return fmt.Errorf("workflow %s, invariant %q: %w", w.Name, inv.Label, err)
		}
		if et != TypeBool {
			return fmt.Errorf("workflow %s, invariant %q: not boolean", w.Name, inv.Label)
		}
	}
	return nil
}

// VarDeclByName finds a variable declaration.
func (w *Workflow) VarDeclByName(name string) (VarDecl, bool) {
	for _, v := range w.Vars {
		if v.Name == name {
			return v, true
		}
	}
	return VarDecl{}, false
}

// StepByName finds a step.
func (w *Workflow) StepByName(name string) (Step, bool) {
	for _, s := range w.Steps {
		if s.Name == name {
			return s, true
		}
	}
	return Step{}, false
}
