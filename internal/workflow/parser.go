package workflow

import (
	"fmt"
	"strconv"
)

// Parse compiles workflow source text into a validated Workflow.
func Parse(src string) (*Workflow, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	w, err := p.workflow()
	if err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustParse is Parse for known-good sources (embedded scenarios).
func MustParse(src string) *Workflow {
	w, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return w
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokIdent) && t.text == text
}

func (p *parser) expect(text string) error {
	if !p.at(text) {
		return fmt.Errorf("line %d: expected %q, found %s", p.cur().line, text, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("line %d: expected identifier, found %s", t.line, t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) workflow() (*Workflow, error) {
	if err := p.expect("workflow"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	w := &Workflow{Name: name}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.at("}") {
		t := p.cur()
		if t.kind == tokEOF {
			return nil, fmt.Errorf("line %d: unexpected end of input in workflow body", t.line)
		}
		switch t.text {
		case "devices":
			if err := p.devices(w); err != nil {
				return nil, err
			}
		case "roles":
			if err := p.roles(w); err != nil {
				return nil, err
			}
		case "vars":
			if err := p.vars(w); err != nil {
				return nil, err
			}
		case "steps":
			if err := p.steps(w); err != nil {
				return nil, err
			}
		case "invariants":
			if err := p.invariants(w); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("line %d: unknown section %s", t.line, t)
		}
	}
	p.advance() // }
	return w, nil
}

func (p *parser) devices(w *Workflow) error {
	p.advance() // devices
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.at("}") {
		alias, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(":"); err != nil {
			return err
		}
		kind, err := p.ident()
		if err != nil {
			return err
		}
		d := DeviceReq{Alias: alias, Kind: kind}
		if p.at("requires") {
			p.advance()
			if err := p.expect("["); err != nil {
				return err
			}
			for !p.at("]") {
				c, err := p.ident()
				if err != nil {
					return err
				}
				d.Commands = append(d.Commands, c)
				if p.at(",") {
					p.advance()
				}
			}
			p.advance() // ]
		}
		w.Devices = append(w.Devices, d)
	}
	p.advance() // }
	return nil
}

func (p *parser) roles(w *Workflow) error {
	p.advance()
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.at("}") {
		r, err := p.ident()
		if err != nil {
			return err
		}
		w.Roles = append(w.Roles, r)
	}
	p.advance()
	return nil
}

func (p *parser) vars(w *Workflow) error {
	p.advance()
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.at("}") {
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(":"); err != nil {
			return err
		}
		tname, err := p.ident()
		if err != nil {
			return err
		}
		decl := VarDecl{Name: name}
		switch tname {
		case "bool":
			decl.Type = TypeBool
		case "int":
			decl.Type = TypeInt
			if err := p.expect("("); err != nil {
				return err
			}
			lo, err := p.intLit()
			if err != nil {
				return err
			}
			// Range syntax: int(lo .. hi) lexed as lo . . hi
			if err := p.expect("."); err != nil {
				return err
			}
			if err := p.expect("."); err != nil {
				return err
			}
			hi, err := p.intLit()
			if err != nil {
				return err
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			decl.Lo, decl.Hi = lo, hi
		default:
			return fmt.Errorf("line %d: unknown type %q", p.cur().line, tname)
		}
		if err := p.expect("="); err != nil {
			return err
		}
		v, err := p.literal(decl.Type)
		if err != nil {
			return err
		}
		decl.Initial = v
		w.Vars = append(w.Vars, decl)
	}
	p.advance()
	return nil
}

func (p *parser) intLit() (int, error) {
	neg := false
	if p.at("-") {
		neg = true
		p.advance()
	}
	t := p.cur()
	if t.kind != tokInt {
		return 0, fmt.Errorf("line %d: expected integer, found %s", t.line, t)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("line %d: bad integer %q", t.line, t.text)
	}
	if neg {
		n = -n
	}
	return n, nil
}

func (p *parser) literal(want VarType) (Value, error) {
	if want == TypeBool {
		switch {
		case p.at("true"):
			p.advance()
			return BoolVal(true), nil
		case p.at("false"):
			p.advance()
			return BoolVal(false), nil
		default:
			return Value{}, fmt.Errorf("line %d: expected boolean literal", p.cur().line)
		}
	}
	n, err := p.intLit()
	if err != nil {
		return Value{}, err
	}
	return IntVal(n), nil
}

func (p *parser) steps(w *Workflow) error {
	p.advance()
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.at("}") {
		if err := p.expect("step"); err != nil {
			return err
		}
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("by"); err != nil {
			return err
		}
		role, err := p.ident()
		if err != nil {
			return err
		}
		s := Step{Name: name, Role: role}
		if p.at("repeats") {
			s.Repeats = true
			p.advance()
		}
		if err := p.expect("{"); err != nil {
			return err
		}
		for !p.at("}") {
			st, err := p.stmt()
			if err != nil {
				return err
			}
			s.Body = append(s.Body, st)
		}
		p.advance()
		w.Steps = append(w.Steps, s)
	}
	p.advance()
	return nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.text {
	case "require":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtRequire, Expr: e}, nil
	case "set":
		p.advance()
		name, err := p.ident()
		if err != nil {
			return Stmt{}, err
		}
		if err := p.expect("="); err != nil {
			return Stmt{}, err
		}
		e, err := p.expr()
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtSet, Var: name, Expr: e}, nil
	case "command":
		p.advance()
		dev, err := p.ident()
		if err != nil {
			return Stmt{}, err
		}
		if err := p.expect("."); err != nil {
			return Stmt{}, err
		}
		cmd, err := p.ident()
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: StmtCommand, Device: dev, Command: cmd}, nil
	default:
		return Stmt{}, fmt.Errorf("line %d: unknown statement %s", t.line, t)
	}
}

func (p *parser) invariants(w *Workflow) error {
	p.advance()
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.at("}") {
		if err := p.expect("invariant"); err != nil {
			return err
		}
		t := p.cur()
		if t.kind != tokString {
			return fmt.Errorf("line %d: invariant needs a label string", t.line)
		}
		p.advance()
		if err := p.expect(":"); err != nil {
			return err
		}
		e, err := p.expr()
		if err != nil {
			return err
		}
		w.Invariants = append(w.Invariants, Invariant{Label: t.text, Expr: e})
	}
	p.advance()
	return nil
}

// Expression grammar, lowest precedence first:
//
//	expr    := orExpr
//	orExpr  := andExpr ("||" andExpr)*
//	andExpr := cmpExpr ("&&" cmpExpr)*
//	cmpExpr := addExpr (("=="|"!="|"<"|"<="|">"|">=") addExpr)?
//	addExpr := unary (("+"|"-") unary)*
//	unary   := "!" unary | "(" expr ")" | literal | variable
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at("||") {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at("&&") {
		p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]BinOp{
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at("+") || p.at("-") {
		op := OpAdd
		if p.at("-") {
			op = OpSub
		}
		p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch {
	case p.at("!"):
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	case p.at("("):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at("true"):
		p.advance()
		return LitExpr{V: BoolVal(true)}, nil
	case p.at("false"):
		p.advance()
		return LitExpr{V: BoolVal(false)}, nil
	case t.kind == tokInt || p.at("-"):
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		return LitExpr{V: IntVal(n)}, nil
	case t.kind == tokIdent:
		p.advance()
		return VarExpr{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("line %d: unexpected token %s in expression", t.line, t)
	}
}
