package workflow

import (
	"strings"
	"testing"

	"repro/internal/verify"
)

func TestCheckSafetyNominalBuiltinsHold(t *testing.T) {
	for name, w := range Builtins() {
		a := Analysis{W: w}
		rep, err := a.CheckSafety(nil, verify.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Holds {
			t.Fatalf("%s: nominal invariant violation:\n%s", name, rep.Counterexample)
		}
		if rep.States == 0 {
			t.Fatalf("%s: no states explored", name)
		}
	}
}

func TestCheckSafetySkipGuardFindsPCAWrongDose(t *testing.T) {
	w := Builtins()["pca_setup"]
	a := Analysis{W: w, Faults: []Fault{{Kind: FaultSkipGuard, Step: "start_pump"}}}
	rep, err := a.CheckSafety(nil, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("model checker missed the skip-guard wrong-dose hazard")
	}
	if len(rep.ViolatedLabels) == 0 {
		t.Fatal("no violated invariant labels reported")
	}
	if !strings.Contains(rep.Counterexample, "start_pump[skip-guard]") {
		t.Fatalf("counterexample does not show the faulty step:\n%s", rep.Counterexample)
	}
}

func TestCheckSafetyOmitResumeViolatesGoal(t *testing.T) {
	w := Builtins()["xray_vent"]
	a := Analysis{W: w, Faults: []Fault{{Kind: FaultOmit, Step: "resume_vent"}}}
	goal, err := Parse(`workflow g { roles { r } vars { x: bool = true } steps { step s by r { } } }`)
	if err != nil {
		t.Fatal(err)
	}
	_ = goal
	// Goal: at completion, the ventilator must be running.
	rep, err := a.CheckSafety(VarExpr{Name: "ventilated"}, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TerminalGoalHolds {
		t.Fatal("omitted resume not detected by terminal-goal analysis")
	}
	if !strings.Contains(rep.TerminalGoalTrace, "resume_vent[omit]") {
		t.Fatalf("goal trace does not show the omission:\n%s", rep.TerminalGoalTrace)
	}
	// The state-predicate invariants still hold (no imaging while
	// ventilated) — the hazard is a liveness/terminal one.
	if !rep.Holds {
		t.Fatalf("unexpected invariant violation:\n%s", rep.Counterexample)
	}
}

func TestCheckSafetyNominalGoalHolds(t *testing.T) {
	w := Builtins()["xray_vent"]
	a := Analysis{W: w}
	rep, err := a.CheckSafety(VarExpr{Name: "ventilated"}, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TerminalGoalHolds {
		t.Fatalf("nominal terminal goal violated:\n%s", rep.TerminalGoalTrace)
	}
	if !rep.DeadlockFree {
		t.Fatalf("nominal deadlock:\n%s", rep.DeadlockTrace)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Two steps guarding on each other: classic deadlock.
	src := `
workflow deadlock {
  roles { a b }
  vars { x: bool = false  y: bool = false }
  steps {
    step s1 by a { require y == true  set x = true }
    step s2 by b { require x == true  set y = true }
  }
}`
	w := MustParse(src)
	rep, err := Analysis{W: w}.CheckSafety(nil, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlockFree {
		t.Fatal("deadlock not detected")
	}
}

func TestUniverseSize(t *testing.T) {
	w := Builtins()["transfusion"] // 4 bools, 4 steps
	u := w.Universe()
	want := 16 * 16 // 2^4 var combos * 2^4 done combos
	if len(u) != want {
		t.Fatalf("universe = %d, want %d", len(u), want)
	}
	// All keys distinct.
	seen := map[string]bool{}
	for _, s := range u {
		k := s.Key()
		if seen[k] {
			t.Fatalf("duplicate universe state %s", k)
		}
		seen[k] = true
	}
}

func TestProveByInductionTransfusion(t *testing.T) {
	w := Builtins()["transfusion"]
	a := Analysis{W: w}
	res, err := a.ProveByInduction(6)
	if err != nil {
		t.Fatalf("induction inconclusive: %v", err)
	}
	if !res.Proved {
		t.Fatalf("transfusion invariant not proved: %+v", res)
	}
}

func TestProveByInductionRefutesFaultyWorkflow(t *testing.T) {
	w := Builtins()["pca_setup"]
	a := Analysis{W: w, Faults: []Fault{{Kind: FaultSkipGuard, Step: "start_pump"}}}
	res, err := a.ProveByInduction(8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Refuted {
		t.Fatalf("faulty workflow not refuted: %+v", res)
	}
}

func TestInductionAgreesWithReachability(t *testing.T) {
	// For every builtin, induction (when it concludes) must agree with
	// exhaustive reachability.
	for name, w := range Builtins() {
		a := Analysis{W: w}
		reach, err := a.CheckSafety(nil, verify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ind, err := a.ProveByInduction(6)
		if err != nil {
			continue // inconclusive is acceptable; reachability covers it
		}
		if ind.Proved != reach.Holds {
			t.Fatalf("%s: induction proved=%v but reachability holds=%v", name, ind.Proved, reach.Holds)
		}
	}
}
