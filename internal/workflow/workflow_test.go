package workflow

import (
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/verify"
)

func verifyOptions() verify.Options { return verify.Options{} }

func TestParseBuiltins(t *testing.T) {
	for name, w := range Builtins() {
		if w.Name == "" {
			t.Fatalf("%s: empty name", name)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"no steps", `workflow w { roles { r } }`},
		{"unknown section", `workflow w { bogus { } }`},
		{"unknown role", `workflow w { roles { r } steps { step s by ghost { } } }`},
		{"unknown var", `workflow w { roles { r } steps { step s by r { set x = true } } }`},
		{"type mismatch", `workflow w { roles { r } vars { x: bool = true } steps { step s by r { set x = 3 } } }`},
		{"require non-bool", `workflow w { roles { r } vars { n: int(0 .. 5) = 0 } steps { step s by r { require n + 1 } } }`},
		{"command unknown device", `workflow w { roles { r } steps { step s by r { command d.go } } }`},
		{"command not required", `workflow w { devices { d: pump requires [start] } roles { r } steps { step s by r { command d.stop } } }`},
		{"init outside range", `workflow w { roles { r } vars { n: int(0 .. 5) = 9 } steps { step s by r { require true } } }`},
		{"empty range", `workflow w { roles { r } vars { n: int(5 .. 0) = 5 } steps { step s by r { require true } } }`},
		{"dup step", `workflow w { roles { r } steps { step s by r { } step s by r { } } }`},
		{"dup var", `workflow w { roles { r } vars { x: bool = true x: bool = false } steps { step s by r { } } }`},
		{"unterminated string", `workflow w { roles { r } steps { step s by r { } } invariants { invariant "oops`},
		{"bad char", `workflow w @ { }`},
		{"non-bool invariant", `workflow w { roles { r } vars { n: int(0 .. 5) = 0 } steps { step s by r { } } invariants { invariant "x" : n + 1 } }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Fatalf("accepted: %s", c.src)
			}
		})
	}
}

func TestExprParsingAndPrecedence(t *testing.T) {
	src := `
workflow w {
  roles { r }
  vars { a: int(0 .. 10) = 1  b: int(0 .. 10) = 2  p: bool = true }
  steps {
    step s by r {
      require p || a + 1 < b && !(a == b)
      set a = b + 3 - 1
    }
  }
}`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s0 := w.InitialState()
	if !w.Enabled(s0, 0) {
		t.Fatal("step should be enabled (p true)")
	}
	next, _, err := w.Apply(s0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Vars[w.varIndex("a")]; got.I != 4 {
		t.Fatalf("a = %v, want 4", got)
	}
}

func TestEnabledRespectsGuardsAndDone(t *testing.T) {
	w := Builtins()["xray_vent"]
	s := w.InitialState()
	// Initially only pause_vent is possible; imaging requires the
	// ventilator paused, resuming requires the image taken.
	if !w.Enabled(s, 0) {
		t.Fatal("pause_vent should be enabled initially")
	}
	if w.Enabled(s, stepIndex(t, w, "image")) {
		t.Fatal("image enabled while ventilated")
	}
	// resume_vent requires imaged.
	idx := stepIndex(t, w, "resume_vent")
	if w.Enabled(s, idx) {
		t.Fatal("resume_vent enabled before imaging")
	}
	// Fire pause_vent twice: second must be rejected (done).
	s2, cmds, err := w.Apply(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || cmds[0].Command != "pause" {
		t.Fatalf("commands = %+v", cmds)
	}
	if w.Enabled(s2, 0) {
		t.Fatal("pause_vent still enabled after firing (not repeats)")
	}
	if _, _, err := w.Apply(s2, 0); err == nil {
		t.Fatal("re-applying non-repeating step succeeded")
	}
}

func stepIndex(t *testing.T, w *Workflow, name string) int {
	t.Helper()
	for i, s := range w.Steps {
		if s.Name == name {
			return i
		}
	}
	t.Fatalf("no step %q", name)
	return -1
}

func TestHappyPathXRayVent(t *testing.T) {
	w := Builtins()["xray_vent"]
	s := w.InitialState()
	for _, name := range []string{"pause_vent", "image", "resume_vent"} {
		idx := stepIndex(t, w, name)
		if !w.Enabled(s, idx) {
			t.Fatalf("step %s not enabled on happy path", name)
		}
		var err error
		s, _, err = w.Apply(s, idx)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := w.CheckInvariants(s); err != nil || len(v) > 0 {
			t.Fatalf("invariants violated on happy path: %v %v", v, err)
		}
	}
	if !w.AllDone(s) {
		t.Fatal("happy path did not complete")
	}
	env := w.Env(s)
	if !env["ventilated"].B {
		t.Fatal("ventilator not running at completion")
	}
}

func TestImagingWhileVentilatedViolatesInvariant(t *testing.T) {
	// The technician shooting without waiting for the pause (a skip-guard
	// user error) puts the system in a state violating the invariant.
	w := Builtins()["xray_vent"]
	a := Analysis{W: w, Faults: []Fault{{Kind: FaultSkipGuard, Step: "image"}}}
	succ, err := a.Successors(w.InitialState())
	if err != nil {
		t.Fatal(err)
	}
	var bad *State
	for i := range succ {
		if succ[i].Fault != nil && succ[i].Step == "image" {
			bad = &succ[i].To
		}
	}
	if bad == nil {
		t.Fatalf("skip-guard image transition missing: %+v", succ)
	}
	violated, err := w.CheckInvariants(*bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(violated) != 1 {
		t.Fatalf("violations = %v, want the imaging invariant", violated)
	}
}

func TestIntRangeBlocksStep(t *testing.T) {
	w := Builtins()["sedation_titration"]
	s := w.InitialState()
	inc := stepIndex(t, w, "increase")
	re := stepIndex(t, w, "reassess")
	// Titrate to the max: increase/reassess alternating, 4 times.
	for i := 0; i < 4; i++ {
		var err error
		s, _, err = w.Apply(s, inc)
		if err != nil {
			t.Fatal(err)
		}
		s, _, err = w.Apply(s, re)
		if err != nil {
			t.Fatal(err)
		}
	}
	// dose == 4: a fifth increase must be disabled by the guard AND the
	// range check.
	if w.Enabled(s, inc) {
		t.Fatal("increase enabled beyond programmed maximum")
	}
}

func TestStateKeyRoundTrip(t *testing.T) {
	w := Builtins()["pca_setup"]
	a := w.InitialState()
	b := w.InitialState()
	if a.Key() != b.Key() {
		t.Fatal("identical states have different keys")
	}
	c, _, err := w.Apply(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() == a.Key() {
		t.Fatal("different states share a key")
	}
	// Clone independence.
	d := a.Clone()
	d.Vars[0] = BoolVal(true)
	if a.Vars[0].Equal(d.Vars[0]) && a.Vars[0].B {
		t.Fatal("clone aliases original")
	}
}

func TestAnalysisNominalSuccessors(t *testing.T) {
	w := Builtins()["transfusion"]
	a := Analysis{W: w}
	succ, err := a.Successors(w.InitialState())
	if err != nil {
		t.Fatal(err)
	}
	// check_identity and check_product are enabled initially.
	if len(succ) != 2 {
		t.Fatalf("successors = %d, want 2: %+v", len(succ), succ)
	}
	for _, tr := range succ {
		if tr.Fault != nil {
			t.Fatal("nominal analysis produced fault transition")
		}
	}
}

func TestAnalysisSkipGuardFindsWrongDose(t *testing.T) {
	w := Builtins()["pca_setup"]
	a := Analysis{W: w, Faults: []Fault{{Kind: FaultSkipGuard, Step: "start_pump"}}}
	// Misprogram, then (fault) start without the double-check.
	s := w.InitialState()
	s, _, err := w.Apply(s, stepIndex(t, w, "misprogram_pump"))
	if err != nil {
		t.Fatal(err)
	}
	succ, err := a.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	var bad *State
	for i := range succ {
		if succ[i].Fault != nil && succ[i].Step == "start_pump" {
			bad = &succ[i].To
		}
	}
	if bad == nil {
		t.Fatalf("skip-guard transition not generated: %+v", succ)
	}
	violated, err := w.CheckInvariants(*bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(violated) == 0 {
		t.Fatal("unverified wrong-dose start violated nothing")
	}
}

func TestAnalysisOmitMakesStepDoneWithoutEffect(t *testing.T) {
	w := Builtins()["xray_vent"]
	a := Analysis{W: w, Faults: []Fault{{Kind: FaultOmit, Step: "resume_vent"}}}
	// Happy path to the resume point.
	s := w.InitialState()
	s, _, _ = w.Apply(s, stepIndex(t, w, "pause_vent"))
	s, _, _ = w.Apply(s, stepIndex(t, w, "image"))
	succ, err := a.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	var omitted *State
	for i := range succ {
		if succ[i].Fault != nil && succ[i].Fault.Kind == FaultOmit {
			omitted = &succ[i].To
		}
	}
	if omitted == nil {
		t.Fatal("omit transition not generated")
	}
	if !w.AllDone(*omitted) {
		t.Fatal("omitted step not marked done")
	}
	if w.Env(*omitted)["ventilated"].B {
		t.Fatal("omit applied effects (ventilated became true)")
	}
}

func TestInterpHappyPath(t *testing.T) {
	k := sim.NewKernel()
	var commands []string
	in := NewInterp(k, Builtins()["transfusion"], InterpConfig{
		Seed: 3,
		Commands: func(dev, cmd string) error {
			commands = append(commands, dev+"."+cmd)
			return nil
		},
	})
	res, err := in.RunToCompletion(sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Deadlocked {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations on nominal run: %v", res.Violations)
	}
	if len(commands) != 2 {
		t.Fatalf("commands = %v, want start and stop", commands)
	}
	if res.StepsFired != 4 {
		t.Fatalf("steps fired = %d, want 4", res.StepsFired)
	}
}

func TestInterpNominalRunsNeverViolate(t *testing.T) {
	for name, w := range Builtins() {
		for seed := int64(0); seed < 20; seed++ {
			k := sim.NewKernel()
			in := NewInterp(k, w, InterpConfig{Seed: seed})
			res, err := in.RunToCompletion(24 * sim.Hour)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s seed %d: nominal violations %v\nlog: %v",
					name, seed, res.Violations, res.Log)
			}
		}
	}
}

func TestInterpErrorInjectionFindsViolations(t *testing.T) {
	// With aggressive user-error rates, some seed must produce a
	// violation in pca_setup (wrong dose reaches patient).
	found := false
	for seed := int64(0); seed < 60 && !found; seed++ {
		k := sim.NewKernel()
		in := NewInterp(k, Builtins()["pca_setup"], InterpConfig{
			Seed:   seed,
			Errors: ErrorModel{SkipGuardProb: 0.3},
		})
		res, err := in.RunToCompletion(24 * sim.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("60 error-injected runs never violated an invariant")
	}
}

func TestInterpOmissionCausesIncompleteOrViolation(t *testing.T) {
	sawTrouble := false
	for seed := int64(0); seed < 40 && !sawTrouble; seed++ {
		k := sim.NewKernel()
		in := NewInterp(k, Builtins()["xray_vent"], InterpConfig{
			Seed:   seed,
			Errors: ErrorModel{OmitProb: 0.4},
		})
		res, err := in.RunToCompletion(24 * sim.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if res.FaultsInjected > 0 {
			env := in.w.Env(res.Final)
			if res.Completed && !env["ventilated"].B {
				sawTrouble = true // completed with ventilator still paused
			}
		}
	}
	if !sawTrouble {
		t.Fatal("omission injection never left the ventilator paused at completion")
	}
}

func TestInterpDeterministicGivenSeed(t *testing.T) {
	run := func() InterpResult {
		k := sim.NewKernel()
		in := NewInterp(k, Builtins()["transfusion"], InterpConfig{Seed: 11})
		res, err := in.RunToCompletion(sim.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.StepsFired != b.StepsFired || a.Completed != b.Completed || len(a.Log) != len(b.Log) {
		t.Fatal("interpreter not deterministic for fixed seed")
	}
}

func TestLexerIdentWithDash(t *testing.T) {
	toks, err := lexAll("x-ray set-rate a - b")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := "x-ray set-rate a - b"
	if strings.Join(texts, " ") != want {
		t.Fatalf("tokens = %v", texts)
	}
}

func TestValueString(t *testing.T) {
	if BoolVal(true).String() != "true" || IntVal(7).String() != "7" {
		t.Fatal("value formatting")
	}
	if BoolVal(true).Equal(IntVal(1)) {
		t.Fatal("cross-type equality")
	}
	if FaultSkipGuard.String() != "skip-guard" || FaultOmit.String() != "omit" || FaultKind(9).String() != "unknown" {
		t.Fatal("fault kind names")
	}
}

// The on-disk scenario files shipped under scenarios/ must parse, verify
// nominally, and expose their intended hazards under fault injection.
func TestShippedScenarioFiles(t *testing.T) {
	for _, tc := range []struct {
		path string
		goal string
		omit string
	}{
		{"../../scenarios/mri_transport.wf", "on_wall_vent", "reconnect_wall"},
		{"../../scenarios/insulin_infusion.wf", "infusing", ""},
	} {
		src, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		a := Analysis{W: w}
		rep, err := a.CheckSafety(VarExpr{Name: tc.goal}, verifyOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Holds || !rep.TerminalGoalHolds {
			t.Fatalf("%s: nominal check failed: holds=%v goal=%v\n%s%s",
				tc.path, rep.Holds, rep.TerminalGoalHolds, rep.Counterexample, rep.TerminalGoalTrace)
		}
		if tc.omit != "" {
			a.Faults = []Fault{{Kind: FaultOmit, Step: tc.omit}}
			rep, err := a.CheckSafety(VarExpr{Name: tc.goal}, verifyOptions())
			if err != nil {
				t.Fatal(err)
			}
			if rep.TerminalGoalHolds {
				t.Fatalf("%s: omitting %s exposed no hazard", tc.path, tc.omit)
			}
		}
	}
}
