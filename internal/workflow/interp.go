package workflow

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// CommandFunc delivers a device command issued by a step. The interpreter
// treats a non-nil error as a command failure and records it; execution
// continues (the protocol state has already moved — exactly the
// cyber/physical divergence the analysis hunts for).
type CommandFunc func(deviceAlias, command string) error

// ErrorModel injects caregiver errors during interpretation, with the
// probabilities of each fault mode applied independently per step.
type ErrorModel struct {
	SkipGuardProb float64 // performs the step even if preconditions fail
	OmitProb      float64 // believes the step done without doing it
}

// ExecEventKind classifies interpreter log entries.
type ExecEventKind int

const (
	ExecStep ExecEventKind = iota
	ExecFault
	ExecCommand
	ExecCommandFailed
	ExecViolation
	ExecDeadlock
	ExecCompleted
)

// ExecEvent is one interpreter log entry.
type ExecEvent struct {
	At   sim.Time
	Kind ExecEventKind
	Step string
	Msg  string
}

// InterpConfig configures an interpretation run.
type InterpConfig struct {
	// StepDelay samples the caregiver's time to perform a step. The
	// default is uniform 5-30 s — nurses are busy.
	StepDelay func(rng *sim.RNG, role, step string) time.Duration
	Commands  CommandFunc
	Errors    ErrorModel
	// Seed drives step choice, delays and error injection.
	Seed int64
}

// InterpResult summarizes a run.
type InterpResult struct {
	Completed      bool // all non-repeating steps fired
	Deadlocked     bool // stuck before completion
	Violations     []string
	StepsFired     int
	FaultsInjected int
	Log            []ExecEvent
	Final          State
}

// Interp executes a workflow on the simulation kernel: repeatedly picks a
// uniformly random enabled step, waits the caregiver delay, applies it,
// issues its commands and checks invariants. One caregiver acts at a time
// (the conservative sequential reading of a clinical protocol).
type Interp struct {
	w   *Workflow
	k   *sim.Kernel
	cfg InterpConfig
	rng *sim.RNG

	state  State
	result InterpResult
	done   bool
}

// NewInterp prepares an interpretation.
func NewInterp(k *sim.Kernel, w *Workflow, cfg InterpConfig) *Interp {
	if cfg.StepDelay == nil {
		cfg.StepDelay = func(rng *sim.RNG, role, step string) time.Duration {
			return time.Duration(rng.Uniform(5, 30) * float64(time.Second))
		}
	}
	return &Interp{
		w:     w,
		k:     k,
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed),
		state: w.InitialState(),
	}
}

// Start schedules the first step choice; the caller then runs the kernel.
func (in *Interp) Start() {
	in.checkInvariants()
	in.scheduleNext()
}

// Result returns the summary; valid once the kernel has drained or the
// run completed/deadlocked.
func (in *Interp) Result() InterpResult {
	r := in.result
	r.Final = in.state
	return r
}

func (in *Interp) log(kind ExecEventKind, step, format string, args ...any) {
	in.result.Log = append(in.result.Log, ExecEvent{
		At: in.k.Now(), Kind: kind, Step: step, Msg: fmt.Sprintf(format, args...),
	})
}

func (in *Interp) scheduleNext() {
	if in.done {
		return
	}
	var enabled, blocked []int
	for i, step := range in.w.Steps {
		if in.state.Done[i] && !step.Repeats {
			continue
		}
		if in.w.Enabled(in.state, i) {
			enabled = append(enabled, i)
		} else {
			blocked = append(blocked, i)
		}
	}
	// User-error model: with SkipGuardProb, the caregiver performs a
	// pending step whose preconditions do NOT hold (out-of-order action).
	if len(blocked) > 0 && in.rng.Bernoulli(in.cfg.Errors.SkipGuardProb) {
		idx := blocked[in.rng.Intn(len(blocked))]
		step := in.w.Steps[idx]
		delay := in.cfg.StepDelay(in.rng, step.Role, step.Name)
		in.k.After(delay, func() { in.fire(idx, true) })
		return
	}
	if len(enabled) == 0 {
		if in.w.AllDone(in.state) {
			in.result.Completed = true
			in.log(ExecCompleted, "", "workflow complete")
		} else {
			in.result.Deadlocked = true
			in.log(ExecDeadlock, "", "no enabled steps before completion")
		}
		in.done = true
		return
	}
	idx := enabled[in.rng.Intn(len(enabled))]
	step := in.w.Steps[idx]
	delay := in.cfg.StepDelay(in.rng, step.Role, step.Name)
	in.k.After(delay, func() { in.fire(idx, false) })
}

func (in *Interp) fire(idx int, skip bool) {
	step := in.w.Steps[idx]

	// Error injection: omission (nothing happens but the caregiver's
	// belief) applies to any attempted step.
	if in.cfg.Errors.OmitProb > 0 && in.rng.Bernoulli(in.cfg.Errors.OmitProb) {
		in.state.Done[idx] = true
		in.result.FaultsInjected++
		in.log(ExecFault, step.Name, "omitted (caregiver believes it was done)")
		in.afterFire()
		return
	}

	ok, next, cmds, err := in.w.runBody(in.state, step, skip)
	if err != nil || !ok {
		// Became disabled while the caregiver walked over; re-choose.
		in.scheduleNext()
		return
	}
	next.Done[idx] = true
	in.state = next
	in.result.StepsFired++
	if skip {
		in.result.FaultsInjected++
		in.log(ExecFault, step.Name, "performed out of order (guards not met)")
	} else {
		in.log(ExecStep, step.Name, "performed by %s", step.Role)
	}
	for _, c := range cmds {
		if in.cfg.Commands == nil {
			in.log(ExecCommand, step.Name, "command %s.%s (unbound)", c.Device, c.Command)
			continue
		}
		if err := in.cfg.Commands(c.Device, c.Command); err != nil {
			in.log(ExecCommandFailed, step.Name, "command %s.%s failed: %v", c.Device, c.Command, err)
		} else {
			in.log(ExecCommand, step.Name, "command %s.%s", c.Device, c.Command)
		}
	}
	in.afterFire()
}

func (in *Interp) afterFire() {
	in.checkInvariants()
	in.scheduleNext()
}

func (in *Interp) checkInvariants() {
	violated, err := in.w.CheckInvariants(in.state)
	if err != nil {
		in.log(ExecViolation, "", "invariant evaluation error: %v", err)
		return
	}
	for _, label := range violated {
		in.result.Violations = append(in.result.Violations, label)
		in.log(ExecViolation, "", "invariant violated: %s", label)
	}
}

// RunToCompletion is a convenience: start, run the kernel until the
// workflow completes, deadlocks, or the horizon passes, and return the
// result.
func (in *Interp) RunToCompletion(horizon sim.Time) (InterpResult, error) {
	in.Start()
	if err := in.k.Run(horizon); err != nil {
		return InterpResult{}, err
	}
	return in.Result(), nil
}
