package workflow

import (
	"fmt"

	"repro/internal/verify"
)

// CheckReport is the result of model-checking a workflow.
type CheckReport struct {
	Workflow       string
	States         int
	Transitions    int
	Holds          bool
	ViolatedLabels []string
	Counterexample string // human-readable trace, empty when Holds
	DeadlockFree   bool
	DeadlockTrace  string
	// TerminalGoalHolds reports whether every terminal state satisfies
	// the goal expression (empty goal: vacuously true).
	TerminalGoalHolds bool
	TerminalGoalTrace string
}

// System adapts an Analysis (workflow + fault modes) to the generic
// model checker.
func (a Analysis) System() verify.System[State] {
	return verify.System[State]{
		Init: []State{a.W.InitialState()},
		Key:  func(s State) string { return s.Key() },
		Succ: func(s State) ([]verify.Edge[State], error) {
			trs, err := a.Successors(s)
			if err != nil {
				return nil, err
			}
			out := make([]verify.Edge[State], 0, len(trs))
			for _, tr := range trs {
				label := tr.Step
				if tr.Fault != nil {
					label = fmt.Sprintf("%s[%s]", tr.Step, tr.Fault.Kind)
				}
				out = append(out, verify.Edge[State]{Label: label, To: tr.To})
			}
			return out, nil
		},
	}
}

// describe renders a state for counterexample output.
func (a Analysis) describe(s State) string {
	out := ""
	for i, v := range a.W.Vars {
		if i > 0 {
			out += " "
		}
		out += v.Name + "=" + s.Vars[i].String()
	}
	return out
}

// CheckSafety model-checks all invariants over the reachable states of
// the workflow under the analysis's fault modes, then checks deadlock
// freedom and, when goal is non-nil, that every terminal state satisfies
// it (e.g. "ventilated == true" — the forgot-to-resume detector).
func (a Analysis) CheckSafety(goal Expr, opts verify.Options) (CheckReport, error) {
	rep := CheckReport{Workflow: a.W.Name}
	sys := a.System()

	inv := func(s State) (bool, error) {
		violated, err := a.W.CheckInvariants(s)
		if err != nil {
			return false, err
		}
		return len(violated) == 0, nil
	}
	res, err := verify.Check(sys, inv, opts)
	if err != nil {
		return rep, err
	}
	rep.States = res.StatesExplored
	rep.Transitions = res.Transitions
	rep.Holds = res.Holds
	if !res.Holds && len(res.Counterexample) > 0 {
		last := res.Counterexample[len(res.Counterexample)-1].State
		rep.ViolatedLabels, _ = a.W.CheckInvariants(last)
		rep.Counterexample = verify.FormatTrace(res.Counterexample, a.describe)
	}

	// Terminal-state analysis: explore again, judging every state with no
	// outgoing transitions. With a goal expression, a terminal state is
	// acceptable iff the goal holds there — the right notion for
	// workflows with alternative branches, where not every step fires on
	// every run. Without a goal, acceptability falls back to "all
	// non-repeating steps completed" (deadlock detection for linear
	// protocols).
	rep.DeadlockFree = true
	rep.TerminalGoalHolds = true
	termInv := func(s State) (bool, error) {
		term, err := a.Terminal(s)
		if err != nil {
			return false, err
		}
		if !term {
			return true, nil
		}
		if goal != nil {
			return EvalBool(goal, a.W.Env(s))
		}
		return a.W.AllDone(s), nil
	}
	tres, err := verify.Check(sys, termInv, opts)
	if err != nil {
		return rep, err
	}
	if !tres.Holds && len(tres.Counterexample) > 0 {
		trace := verify.FormatTrace(tres.Counterexample, a.describe)
		if goal != nil {
			rep.TerminalGoalHolds = false
			rep.TerminalGoalTrace = trace
		} else {
			rep.DeadlockFree = false
			rep.DeadlockTrace = trace
		}
	}
	return rep, nil
}

// Universe enumerates every syntactic state of the workflow: all
// combinations of variable values (bools and declared int ranges) and
// done flags. This is the universe temporal induction quantifies over.
// The size is exponential; callers should keep workflows small or bound
// the variable ranges.
func (w *Workflow) Universe() []State {
	states := []State{{Vars: make([]Value, 0, len(w.Vars)), Done: nil}}
	for _, v := range w.Vars {
		var values []Value
		if v.Type == TypeBool {
			values = []Value{BoolVal(false), BoolVal(true)}
		} else {
			for i := v.Lo; i <= v.Hi; i++ {
				values = append(values, IntVal(i))
			}
		}
		var next []State
		for _, s := range states {
			for _, val := range values {
				ns := State{Vars: append(append([]Value(nil), s.Vars...), val)}
				next = append(next, ns)
			}
		}
		states = next
	}
	for si := range states {
		states[si].Done = make([]bool, len(w.Steps))
	}
	// Expand done-flag combinations.
	var out []State
	var expand func(s State, i int)
	expand = func(s State, i int) {
		if i == len(w.Steps) {
			out = append(out, s.Clone())
			return
		}
		s.Done[i] = false
		expand(s, i+1)
		s.Done[i] = true
		expand(s, i+1)
	}
	for _, s := range states {
		expand(s, 0)
	}
	return out
}

// ProveByInduction attempts a temporal-induction proof of the workflow's
// invariants over its syntactic universe.
func (a Analysis) ProveByInduction(maxK int) (verify.InductionResult, error) {
	inv := func(s State) (bool, error) {
		violated, err := a.W.CheckInvariants(s)
		if err != nil {
			return false, err
		}
		return len(violated) == 0, nil
	}
	return verify.Induction(a.System(), inv, a.W.Universe(), maxK)
}
