package workflow

import (
	"errors"
	"fmt"
)

// Expr is a side-effect-free expression over protocol variables.
type Expr interface {
	eval(env map[string]Value) (Value, error)
	String() string
}

// LitExpr is a literal.
type LitExpr struct{ V Value }

func (e LitExpr) eval(map[string]Value) (Value, error) { return e.V, nil }
func (e LitExpr) String() string                       { return e.V.String() }

// VarExpr references a variable.
type VarExpr struct{ Name string }

func (e VarExpr) eval(env map[string]Value) (Value, error) {
	v, ok := env[e.Name]
	if !ok {
		return Value{}, fmt.Errorf("workflow: unknown variable %q", e.Name)
	}
	return v, nil
}
func (e VarExpr) String() string { return e.Name }

// NotExpr is boolean negation.
type NotExpr struct{ X Expr }

func (e NotExpr) eval(env map[string]Value) (Value, error) {
	v, err := e.X.eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.Type != TypeBool {
		return Value{}, errors.New("workflow: ! of non-boolean")
	}
	return BoolVal(!v.B), nil
}
func (e NotExpr) String() string { return "!" + e.X.String() }

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAnd BinOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
)

var opNames = map[BinOp]string{
	OpAnd: "&&", OpOr: "||", OpEq: "==", OpNe: "!=",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-",
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

func (e BinExpr) String() string {
	return "(" + e.L.String() + " " + opNames[e.Op] + " " + e.R.String() + ")"
}

func (e BinExpr) eval(env map[string]Value) (Value, error) {
	l, err := e.L.eval(env)
	if err != nil {
		return Value{}, err
	}
	r, err := e.R.eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case OpAnd, OpOr:
		if l.Type != TypeBool || r.Type != TypeBool {
			return Value{}, fmt.Errorf("workflow: %s of non-booleans", opNames[e.Op])
		}
		if e.Op == OpAnd {
			return BoolVal(l.B && r.B), nil
		}
		return BoolVal(l.B || r.B), nil
	case OpEq, OpNe:
		if l.Type != r.Type {
			return Value{}, errors.New("workflow: comparing values of different types")
		}
		eq := l.Equal(r)
		if e.Op == OpNe {
			eq = !eq
		}
		return BoolVal(eq), nil
	case OpLt, OpLe, OpGt, OpGe:
		if l.Type != TypeInt || r.Type != TypeInt {
			return Value{}, fmt.Errorf("workflow: %s of non-integers", opNames[e.Op])
		}
		var b bool
		switch e.Op {
		case OpLt:
			b = l.I < r.I
		case OpLe:
			b = l.I <= r.I
		case OpGt:
			b = l.I > r.I
		case OpGe:
			b = l.I >= r.I
		}
		return BoolVal(b), nil
	case OpAdd, OpSub:
		if l.Type != TypeInt || r.Type != TypeInt {
			return Value{}, fmt.Errorf("workflow: %s of non-integers", opNames[e.Op])
		}
		if e.Op == OpAdd {
			return IntVal(l.I + r.I), nil
		}
		return IntVal(l.I - r.I), nil
	default:
		return Value{}, fmt.Errorf("workflow: unknown operator %d", e.Op)
	}
}

// Eval evaluates an expression in an environment.
func Eval(e Expr, env map[string]Value) (Value, error) { return e.eval(env) }

// EvalBool evaluates a boolean expression, erroring on type mismatch.
func EvalBool(e Expr, env map[string]Value) (bool, error) {
	v, err := e.eval(env)
	if err != nil {
		return false, err
	}
	if v.Type != TypeBool {
		return false, errors.New("workflow: expected boolean expression")
	}
	return v.B, nil
}

// exprType infers the static type of an expression given declarations.
func exprType(e Expr, vars map[string]VarDecl) (VarType, error) {
	switch x := e.(type) {
	case LitExpr:
		return x.V.Type, nil
	case VarExpr:
		d, ok := vars[x.Name]
		if !ok {
			return 0, fmt.Errorf("workflow: unknown variable %q", x.Name)
		}
		return d.Type, nil
	case NotExpr:
		t, err := exprType(x.X, vars)
		if err != nil {
			return 0, err
		}
		if t != TypeBool {
			return 0, errors.New("workflow: ! of non-boolean")
		}
		return TypeBool, nil
	case BinExpr:
		lt, err := exprType(x.L, vars)
		if err != nil {
			return 0, err
		}
		rt, err := exprType(x.R, vars)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case OpAnd, OpOr:
			if lt != TypeBool || rt != TypeBool {
				return 0, errors.New("workflow: logic on non-booleans")
			}
			return TypeBool, nil
		case OpEq, OpNe:
			if lt != rt {
				return 0, errors.New("workflow: comparing different types")
			}
			return TypeBool, nil
		case OpLt, OpLe, OpGt, OpGe:
			if lt != TypeInt || rt != TypeInt {
				return 0, errors.New("workflow: ordering non-integers")
			}
			return TypeBool, nil
		case OpAdd, OpSub:
			if lt != TypeInt || rt != TypeInt {
				return 0, errors.New("workflow: arithmetic on non-integers")
			}
			return TypeInt, nil
		}
		return 0, errors.New("workflow: unknown operator")
	default:
		return 0, fmt.Errorf("workflow: unknown expression %T", e)
	}
}

// checkExpr verifies every variable reference resolves.
func checkExpr(e Expr, vars map[string]VarDecl) error {
	_, err := exprType(e, vars)
	return err
}
