package workflow

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind discriminates lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokPunct // single punctuation or operator
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// lexer tokenizes workflow source. Comments run from "--" or "//" to end
// of line. Identifiers may contain '-' after the first character (device
// kinds like "x-ray").
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--") || strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.scan()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scan() (token, error) {
	c := l.src[l.pos]
	start := l.pos
	switch {
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, fmt.Errorf("line %d: unterminated string", l.line)
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("line %d: unterminated string", l.line)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil

	case unicode.IsDigit(rune(c)):
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokInt, text: l.src[start:l.pos], line: l.line}, nil

	case unicode.IsLetter(rune(c)) || c == '_':
		l.pos++
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil

	default:
		for _, op := range twoCharOps {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokPunct, text: op, line: l.line}, nil
			}
		}
		if strings.ContainsRune("{}[]():,.=<>!+-", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, c)
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
