package workflow

// Builtin clinical scenarios. These serve as the corpus for experiment E5
// (workflow verification), the wfcheck command, and the examples. Each is
// written in the workflow DSL and parsed at first use.

// XRayVentSource is the paper's Section II.b scenario: coordinate a chest
// X-ray with mechanical ventilation. The safety property is that imaging
// never happens while the chest moves, and the protocol must always be
// able to end with the ventilator running — the fault analysis shows that
// an omitted resume step violates completion (the paper's fatal case).
const XRayVentSource = `
workflow xray_vent {
  devices {
    vent: ventilator requires [pause, resume]
    xray: x-ray requires [shoot]
  }
  roles { anesthesiologist technician }
  vars {
    ventilated: bool = true
    imaged: bool = false
    image_during_vent: bool = false
  }
  steps {
    step pause_vent by anesthesiologist {
      require ventilated == true && imaged == false
      command vent.pause
      set ventilated = false
    }
    step image by technician {
      require ventilated == false && imaged == false
      command xray.shoot
      set imaged = true
      set image_during_vent = ventilated
    }
    step resume_vent by anesthesiologist {
      require ventilated == false && imaged == true
      command vent.resume
      set ventilated = true
    }
  }
  invariants {
    invariant "no image while ventilating" : !image_during_vent
  }
}
`

// PCASetupSource models programming and starting a PCA pump with the
// double-check protocol: the programmed dose must be verified by a second
// nurse before the pump starts — skipping the check (a guard-skip user
// error) lets a wrong dose reach the patient.
const PCASetupSource = `
workflow pca_setup {
  devices {
    pump: infusion-pump requires [start]
  }
  roles { nurse verifier }
  vars {
    -- 0 none, 1 programmed-correct, 2 programmed-wrong
    program: int(0 .. 2) = 0
    checked: bool = false
    started: bool = false
    wrong_dose_running: bool = false
  }
  steps {
    step program_pump by nurse {
      require program == 0
      set program = 1
    }
    step misprogram_pump by nurse {
      require program == 0
      set program = 2
    }
    step double_check by verifier {
      require program == 1 && checked == false
      set checked = true
    }
    step fix_program by verifier {
      require program == 2
      set program = 1
    }
    step start_pump by nurse {
      require checked == true && started == false
      command pump.start
      set started = true
      set wrong_dose_running = program == 2
    }
  }
  invariants {
    invariant "no unverified infusion" : !started || checked
    invariant "no wrong dose" : !wrong_dose_running
  }
}
`

// TransfusionSource models the two-person blood-product verification
// protocol: identity and product must both be confirmed before the
// transfusion starts.
const TransfusionSource = `
workflow transfusion {
  devices {
    pump: infusion-pump requires [start, stop]
  }
  roles { nurse1 nurse2 }
  vars {
    id_checked: bool = false
    product_checked: bool = false
    transfusing: bool = false
    completed: bool = false
  }
  steps {
    step check_identity by nurse1 {
      require transfusing == false
      set id_checked = true
    }
    step check_product by nurse2 {
      require transfusing == false
      set product_checked = true
    }
    step start_transfusion by nurse1 {
      require id_checked == true && product_checked == true
      command pump.start
      set transfusing = true
    }
    step complete_transfusion by nurse1 {
      require transfusing == true
      command pump.stop
      set transfusing = false
      set completed = true
    }
  }
  invariants {
    invariant "verified before transfusing" : !transfusing || (id_checked && product_checked)
  }
}
`

// HandoffSource models a shift-change handoff where the outgoing nurse
// must brief the incoming one before relinquishing responsibility. The
// latent hazard: both believing the other is responsible.
const HandoffSource = `
workflow handoff {
  roles { outgoing incoming }
  vars {
    -- 0 outgoing responsible, 1 briefing, 2 incoming responsible
    phase: int(0 .. 2) = 0
    briefed: bool = false
  }
  steps {
    step begin_briefing by outgoing {
      require phase == 0
      set phase = 1
    }
    step brief by outgoing {
      require phase == 1
      set briefed = true
    }
    step accept by incoming {
      require phase == 1 && briefed == true
      set phase = 2
    }
  }
  invariants {
    invariant "accepted only after briefing" : phase != 2 || briefed
  }
}
`

// SedationTitrationSource models stepwise titration of a sedative with a
// mandated reassessment between increases. Its int variable exercises
// range checking: the dose can never leave the programmed bounds.
const SedationTitrationSource = `
workflow sedation_titration {
  devices {
    pump: infusion-pump requires [set-rate]
  }
  roles { nurse }
  vars {
    dose: int(0 .. 4) = 0
    assessed: bool = true
  }
  steps {
    step increase by nurse repeats {
      require assessed == true && dose < 4
      command pump.set-rate
      set dose = dose + 1
      set assessed = false
    }
    step reassess by nurse repeats {
      require assessed == false
      set assessed = true
    }
    step finish by nurse {
      require dose >= 2
    }
  }
  invariants {
    invariant "dose within program" : dose >= 0 && dose <= 4
    invariant "no unassessed double-step" : true
  }
}
`

// Builtins returns the parsed scenario corpus.
func Builtins() map[string]*Workflow {
	return map[string]*Workflow{
		"xray_vent":          MustParse(XRayVentSource),
		"pca_setup":          MustParse(PCASetupSource),
		"transfusion":        MustParse(TransfusionSource),
		"handoff":            MustParse(HandoffSource),
		"sedation_titration": MustParse(SedationTitrationSource),
	}
}
