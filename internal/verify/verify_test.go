package verify

import (
	"fmt"
	"strings"
	"testing"
)

// counter is a toy system: an integer 0..n-1 incremented mod n.
func counter(n int) System[int] {
	return System[int]{
		Init: []int{0},
		Key:  func(s int) string { return fmt.Sprintf("%d", s) },
		Succ: func(s int) ([]Edge[int], error) {
			return []Edge[int]{{Label: "inc", To: (s + 1) % n}}, nil
		},
	}
}

func TestCheckHoldsOnSafeSystem(t *testing.T) {
	res, err := Check(counter(10), func(s int) (bool, error) { return s < 10, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("safe system refuted: %+v", res)
	}
	if res.StatesExplored != 10 {
		t.Fatalf("states = %d, want 10", res.StatesExplored)
	}
}

func TestCheckFindsShortestCounterexample(t *testing.T) {
	res, err := Check(counter(10), func(s int) (bool, error) { return s != 4, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("violation missed")
	}
	// Shortest path to 4 is 4 transitions: trace has init + 4 steps.
	if len(res.Counterexample) != 5 {
		t.Fatalf("counterexample length = %d, want 5", len(res.Counterexample))
	}
	if res.Counterexample[4].State != 4 {
		t.Fatalf("counterexample ends at %d", res.Counterexample[4].State)
	}
	if res.Depth != 4 {
		t.Fatalf("depth = %d, want 4", res.Depth)
	}
	txt := FormatTrace(res.Counterexample, func(s int) string { return fmt.Sprintf("s=%d", s) })
	if !strings.Contains(txt, "s=4") {
		t.Fatalf("trace rendering missing final state:\n%s", txt)
	}
}

func TestCheckInitialViolation(t *testing.T) {
	res, err := Check(counter(3), func(s int) (bool, error) { return s != 0, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds || len(res.Counterexample) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestBMCDepthBound(t *testing.T) {
	// Violation at depth 6, BMC to 4: not found. BMC to 6: found.
	inv := func(s int) (bool, error) { return s != 6, nil }
	shallow, err := Check(counter(10), inv, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !shallow.Holds {
		t.Fatal("BMC(4) found a depth-6 violation")
	}
	deep, err := Check(counter(10), inv, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Holds {
		t.Fatal("BMC(6) missed a depth-6 violation")
	}
}

func TestCheckStateBudget(t *testing.T) {
	res, err := Check(counter(1000), func(int) (bool, error) { return true, nil }, Options{MaxStates: 50})
	if err == nil {
		t.Fatalf("budget exhaustion not reported: %+v", res)
	}
	if !res.Truncated {
		t.Fatal("truncation flag not set")
	}
}

func TestCheckValidation(t *testing.T) {
	if _, err := Check(System[int]{}, func(int) (bool, error) { return true, nil }, Options{}); err == nil {
		t.Fatal("empty system accepted")
	}
}

func TestInductionProvesSafeCounter(t *testing.T) {
	// Invariant s < 10 over the 10-counter: inductive at k=1 with the
	// universe 0..9 (every state's successor stays < 10).
	universe := make([]int, 10)
	for i := range universe {
		universe[i] = i
	}
	res, err := Induction(counter(10), func(s int) (bool, error) { return s < 10, nil }, universe, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved || res.Refuted {
		t.Fatalf("res = %+v", res)
	}
}

func TestInductionRefutesRealViolation(t *testing.T) {
	universe := make([]int, 10)
	for i := range universe {
		universe[i] = i
	}
	res, err := Induction(counter(10), func(s int) (bool, error) { return s != 7, nil }, universe, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Refuted || res.Proved {
		t.Fatalf("res = %+v", res)
	}
}

// A system where plain 1-induction fails but temporal induction at a
// deeper k closes the proof: reachable chain 0->1->2->2 plus an
// unreachable pocket 10->11 where 11 violates. The invariant truly holds
// (11 is unreachable), but 1-induction fails because unreachable state 10
// satisfies the invariant yet steps into 11. Deepening to k=2 rescues the
// proof: the only path out of 10 dies after one step, so no inv-respecting
// path of length 2 ends badly — the strengthening the Sheeran et al.
// technique provides.
func TestInductionDeepensPastSpuriousStep(t *testing.T) {
	sys := System[int]{
		Init: []int{0},
		Key:  func(s int) string { return fmt.Sprintf("%d", s) },
		Succ: func(s int) ([]Edge[int], error) {
			switch s {
			case 0:
				return []Edge[int]{{Label: "a", To: 1}}, nil
			case 1:
				return []Edge[int]{{Label: "b", To: 2}}, nil
			case 2:
				return []Edge[int]{{Label: "c", To: 2}}, nil
			case 10:
				return []Edge[int]{{Label: "x", To: 11}}, nil
			default:
				return nil, nil
			}
		},
	}
	inv := func(s int) (bool, error) { return s != 11, nil }

	// With the junk states in the universe the k=1 step fails and the
	// proof closes at k=2 instead.
	res, err := Induction(sys, inv, []int{0, 1, 2, 10, 11}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved || res.K != 2 {
		t.Fatalf("poisoned universe: res = %+v, want proof at k=2", res)
	}
	// With the tight universe the proof closes immediately at k=1.
	res2, err := Induction(sys, inv, []int{0, 1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Proved || res2.K != 1 {
		t.Fatalf("tight universe: res = %+v", res2)
	}
}

func TestInductionValidation(t *testing.T) {
	if _, err := Induction(counter(3), func(int) (bool, error) { return true, nil }, nil, 4); err == nil {
		t.Fatal("empty universe accepted")
	}
}

// Two-device LTS scenario: ventilator and x-ray synchronizing on
// pause/resume/shoot labels.
func ventLTS() *LTS {
	return &LTS{
		Name: "ventilator",
		Init: "running",
		Trans: []LabeledTransition{
			{From: "running", Label: "pause", To: "paused"},
			{From: "paused", Label: "resume", To: "running"},
			{From: "running", Label: "breathe", To: "running"},
		},
	}
}

func xrayLTSSafe() *LTS {
	return &LTS{
		Name: "xray-safe",
		Init: "idle",
		Trans: []LabeledTransition{
			{From: "idle", Label: "pause", To: "ready"},
			{From: "ready", Label: "shoot", To: "done"},
			{From: "done", Label: "resume", To: "finished"},
		},
	}
}

func xrayLTSUnsafe() *LTS {
	// Shoots without coordinating a pause.
	return &LTS{
		Name: "xray-unsafe",
		Init: "idle",
		Trans: []LabeledTransition{
			{From: "idle", Label: "shoot", To: "done"},
		},
	}
}

// shootMonitor flags shooting while the ventilator runs: it tracks
// pause/resume and errors on a shoot outside a paused phase.
func shootMonitor() *LTS {
	return &LTS{
		Name: "monitor",
		Init: "vent-on",
		Trans: []LabeledTransition{
			{From: "vent-on", Label: "pause", To: "vent-off"},
			{From: "vent-off", Label: "resume", To: "vent-on"},
			{From: "vent-off", Label: "shoot", To: "vent-off"},
			{From: "vent-on", Label: "shoot", To: "boom"},
			{From: "vent-on", Label: "breathe", To: "vent-on"},
		},
		Err: map[string]bool{"boom": true},
	}
}

// xrayAssumption is what the ventilator's safety argument assumes of the
// imaging environment: it only shoots between a pause and the following
// resume. Deterministic, no error states (MonitorFrom adds them).
func xrayAssumption() *LTS {
	return &LTS{
		Name: "xray-assumption",
		Init: "on",
		Trans: []LabeledTransition{
			{From: "on", Label: "pause", To: "off"},
			{From: "off", Label: "shoot", To: "off"},
			{From: "off", Label: "resume", To: "on"},
		},
	}
}

func TestComposeSafe(t *testing.T) {
	// vent ∥ xray-safe ∥ monitor: the coordinated protocol never booms.
	res, err := CheckComposition(Options{}, ventLTS(), xrayLTSSafe(), shootMonitor())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("safe composition refuted: %+v", res.Counterexample)
	}
}

func TestComposeUnsafeFindsTrace(t *testing.T) {
	res, err := CheckComposition(Options{}, ventLTS(), xrayLTSUnsafe(), shootMonitor())
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("unsafe composition passed")
	}
	last := res.Counterexample[len(res.Counterexample)-1]
	if last.Label != "shoot" {
		t.Fatalf("counterexample should end with the uncoordinated shoot: %+v", res.Counterexample)
	}
}

func TestComposeInterleavesPrivateLabels(t *testing.T) {
	// "breathe" is private to the ventilator w.r.t. the safe x-ray; the
	// product must still allow it without moving the x-ray.
	c, err := NewComposition(ventLTS(), xrayLTSSafe())
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := c.System()
	succ, err := sys.Succ(ProductState{"running", "idle"})
	if err != nil {
		t.Fatal(err)
	}
	foundBreathe := false
	for _, e := range succ {
		if e.Label == "breathe" {
			foundBreathe = true
			if e.To[1] != "idle" {
				t.Fatal("private label moved the other component")
			}
		}
	}
	if !foundBreathe {
		t.Fatal("private label suppressed in product")
	}
}

func TestMonitorFromCatchesDeviation(t *testing.T) {
	mon := MonitorFrom(xrayAssumption())
	// The unsafe x-ray shoots from "on": the monitor must trap that.
	res, err := CheckComposition(Options{}, xrayLTSUnsafe(), mon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("monitor missed the assumption violation")
	}
	// The safe x-ray conforms.
	res2, err := CheckComposition(Options{}, xrayLTSSafe(), mon)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Holds {
		t.Fatalf("conforming environment tripped the monitor: %+v", res2.Counterexample)
	}
}

func TestAssumeGuarantee(t *testing.T) {
	res, err := AssumeGuarantee(ventLTS(), xrayAssumption(), shootMonitor(), xrayLTSSafe(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("AG check failed: p1=%v p2=%v", res.Premise1.Holds, res.Premise2.Holds)
	}
	// Swapping in the unsafe x-ray breaks only premise 2 — the component
	// side needs no re-verification (incremental certification).
	res2, err := AssumeGuarantee(ventLTS(), xrayAssumption(), shootMonitor(), xrayLTSUnsafe(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Holds {
		t.Fatal("unsafe environment passed AG")
	}
	if !res2.Premise1.Holds {
		t.Fatal("premise 1 should be unaffected by the environment swap")
	}
	if res2.Premise2.Holds {
		t.Fatal("premise 2 should catch the unsafe environment")
	}
}

func TestLTSValidate(t *testing.T) {
	bad := &LTS{Name: "x"}
	if err := bad.Validate(); err == nil {
		t.Fatal("LTS without init accepted")
	}
	bad2 := &LTS{Init: "a", Trans: []LabeledTransition{{From: "a"}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("malformed transition accepted")
	}
	if _, err := NewComposition(bad, ventLTS()); err == nil {
		t.Fatal("compose accepted invalid LTS")
	}
	if _, err := NewComposition(); err == nil {
		t.Fatal("empty composition accepted")
	}
}

func TestAlphabet(t *testing.T) {
	a := ventLTS().Alphabet()
	want := []string{"breathe", "pause", "resume"}
	if len(a) != len(want) {
		t.Fatalf("alphabet = %v", a)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("alphabet = %v, want %v", a, want)
		}
	}
}
