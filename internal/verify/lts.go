package verify

import (
	"errors"
	"fmt"
	"sort"
)

// LTS is an explicit labeled transition system — the form in which device
// protocols are written for compositional reasoning. Labels shared
// between two systems synchronize in the product; others interleave.
type LTS struct {
	Name  string
	Init  string
	Trans []LabeledTransition
	// Err marks error states (safety violations).
	Err map[string]bool
}

// LabeledTransition is one edge of an LTS.
type LabeledTransition struct {
	From, Label, To string
}

// Validate reports structural errors.
func (l *LTS) Validate() error {
	if l.Init == "" {
		return errors.New("verify: LTS needs an initial state")
	}
	for _, t := range l.Trans {
		if t.From == "" || t.To == "" || t.Label == "" {
			return fmt.Errorf("verify: LTS %s has malformed transition %+v", l.Name, t)
		}
	}
	return nil
}

// Alphabet returns the sorted set of labels.
func (l *LTS) Alphabet() []string {
	set := map[string]bool{}
	for _, t := range l.Trans {
		set[t.Label] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// next returns the successors of a state under a label.
func (l *LTS) next(state, label string) []string {
	var out []string
	for _, t := range l.Trans {
		if t.From == state && t.Label == label {
			out = append(out, t.To)
		}
	}
	return out
}

// enabled returns the labels with at least one transition from state.
func (l *LTS) enabled(state string) []string {
	set := map[string]bool{}
	for _, t := range l.Trans {
		if t.From == state {
			set[t.Label] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ProductState is the composite state of an n-ary composition: one local
// state per component, in composition order.
type ProductState []string

// key joins the component states.
func (s ProductState) key() string {
	out := ""
	for i, c := range s {
		if i > 0 {
			out += "\x00"
		}
		out += c
	}
	return out
}

// Composition is the synchronous product of several LTSs: a label fires
// jointly in every component whose alphabet contains it (multi-way
// synchronization), and interleaves for the rest.
type Composition struct {
	Parts []*LTS
	alpha []map[string]bool // alphabet per part
}

// NewComposition validates and assembles a composition.
func NewComposition(parts ...*LTS) (*Composition, error) {
	if len(parts) == 0 {
		return nil, errors.New("verify: empty composition")
	}
	c := &Composition{Parts: parts}
	for _, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		set := map[string]bool{}
		for _, l := range p.Alphabet() {
			set[l] = true
		}
		c.alpha = append(c.alpha, set)
	}
	return c, nil
}

// System exposes the product as a checkable transition system along with
// its error predicate (any component in one of its error states).
func (c *Composition) System() (System[ProductState], func(ProductState) bool) {
	init := make(ProductState, len(c.Parts))
	for i, p := range c.Parts {
		init[i] = p.Init
	}
	labels := map[string]bool{}
	for _, p := range c.Parts {
		for _, l := range p.Alphabet() {
			labels[l] = true
		}
	}
	sortedLabels := make([]string, 0, len(labels))
	for l := range labels {
		sortedLabels = append(sortedLabels, l)
	}
	sort.Strings(sortedLabels)

	sys := System[ProductState]{
		Init: []ProductState{init},
		Key:  func(s ProductState) string { return s.key() },
		Succ: func(s ProductState) ([]Edge[ProductState], error) {
			var out []Edge[ProductState]
			for _, l := range sortedLabels {
				// Every participating component must be able to fire l.
				options := make([][]string, len(c.Parts))
				feasible := true
				for i, p := range c.Parts {
					if !c.alpha[i][l] {
						options[i] = []string{s[i]} // not participating: stays
						continue
					}
					nx := p.next(s[i], l)
					if len(nx) == 0 {
						feasible = false
						break
					}
					options[i] = nx
				}
				if !feasible {
					continue
				}
				// Cartesian product of per-part choices.
				combos := [][]string{nil}
				for _, opts := range options {
					var next [][]string
					for _, prefix := range combos {
						for _, o := range opts {
							row := append(append([]string(nil), prefix...), o)
							next = append(next, row)
						}
					}
					combos = next
				}
				for _, row := range combos {
					out = append(out, Edge[ProductState]{Label: l, To: ProductState(row)})
				}
			}
			return out, nil
		},
	}
	isErr := func(s ProductState) bool {
		for i, p := range c.Parts {
			if p.Err[s[i]] {
				return true
			}
		}
		return false
	}
	return sys, isErr
}

// CheckComposition verifies that the product of the given LTSs never
// reaches an error state of any component.
func CheckComposition(opts Options, parts ...*LTS) (Result[ProductState], error) {
	c, err := NewComposition(parts...)
	if err != nil {
		return Result[ProductState]{}, err
	}
	sys, isErr := c.System()
	return Check(sys, func(s ProductState) (bool, error) { return !isErr(s), nil }, opts)
}

// MonitorFrom derives a conformance monitor from a deterministic
// assumption automaton: any action in the assumption's alphabet that the
// assumption does not allow in the current state leads to a fresh error
// state. Composing the monitor with an environment checks that the
// environment's visible behaviour stays within the assumption.
func MonitorFrom(asm *LTS) *LTS {
	const errState = "__asm_violation__"
	mon := &LTS{
		Name:  asm.Name + "-monitor",
		Init:  asm.Init,
		Trans: append([]LabeledTransition(nil), asm.Trans...),
		Err:   map[string]bool{errState: true},
	}
	states := map[string]bool{asm.Init: true}
	for _, t := range asm.Trans {
		states[t.From] = true
		states[t.To] = true
	}
	for s := range states {
		for _, l := range asm.Alphabet() {
			if len(asm.next(s, l)) == 0 {
				mon.Trans = append(mon.Trans, LabeledTransition{From: s, Label: l, To: errState})
			}
		}
	}
	return mon
}

// AGResult reports an assume-guarantee check.
type AGResult struct {
	Holds bool
	// Premise1: component ∥ assumption ∥ property-monitor reaches no error.
	Premise1 Result[ProductState]
	// Premise2: environment conforms to the assumption.
	Premise2 Result[ProductState]
}

// AssumeGuarantee applies the compositional safety rule
//
//	⟨Asm⟩ Component ⟨P⟩   and   Environment ⊨ Asm
//	─────────────────────────────────────────────
//	       Component ∥ Environment ⊨ P
//
// Asm is a deterministic automaton over the interface alphabet describing
// what the component assumes about its environment; property is a monitor
// LTS whose Err states mark violations of P. Premise 1 model-checks the
// component against the abstract environment; premise 2 checks the real
// environment against the assumption via MonitorFrom. This split is the
// incremental-certification enabler of challenge (n): upgrading the
// environment device requires re-checking only premise 2.
func AssumeGuarantee(component, assumption, property, environment *LTS, opts Options) (AGResult, error) {
	var out AGResult
	p1, err := CheckComposition(opts, component, assumption, property)
	if err != nil {
		return out, err
	}
	out.Premise1 = p1
	p2, err := CheckComposition(opts, environment, MonitorFrom(assumption))
	if err != nil {
		return out, err
	}
	out.Premise2 = p2
	out.Holds = p1.Holds && p2.Holds
	return out, nil
}
