// Package verify provides the verification substrate the paper's
// challenges (l) and (n) call for: explicit-state safety checking with
// counterexamples, bounded model checking, temporal induction after
// Sheeran-Singh-Stålmarck [21] (k-induction restricted to simple paths,
// complete for finite systems), and assume-guarantee reasoning over
// composed labeled transition systems.
package verify

import (
	"errors"
	"fmt"
)

// Edge is one labeled transition.
type Edge[S any] struct {
	Label string
	To    S
}

// System is an implicit transition system: initial states, a key function
// for state identity, and a successor function.
type System[S any] struct {
	Init []S
	Key  func(S) string
	Succ func(S) ([]Edge[S], error)
}

// Validate reports an error for incomplete systems.
func (s System[S]) Validate() error {
	if len(s.Init) == 0 {
		return errors.New("verify: no initial states")
	}
	if s.Key == nil || s.Succ == nil {
		return errors.New("verify: Key and Succ are required")
	}
	return nil
}

// TraceStep is one step of a counterexample: the label taken and the
// state reached (the first step has an empty label and an initial state).
type TraceStep[S any] struct {
	Label string
	State S
}

// Result reports a safety check.
type Result[S any] struct {
	Holds          bool
	StatesExplored int
	Transitions    int
	Depth          int // depth reached (or depth of the counterexample)
	Counterexample []TraceStep[S]
	Truncated      bool // state budget exhausted before exploration finished
}

// Options bound the exploration.
type Options struct {
	MaxStates int // 0 = default 1<<20
	MaxDepth  int // 0 = unbounded (full reachability); >0 = BMC to that depth
}

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return 1 << 20
	}
	return o.MaxStates
}

// Check explores the reachable state space breadth-first and verifies
// that inv holds everywhere. With Options.MaxDepth set it is a bounded
// model check. The counterexample is the shortest violating path.
func Check[S any](sys System[S], inv func(S) (bool, error), opts Options) (Result[S], error) {
	if err := sys.Validate(); err != nil {
		return Result[S]{}, err
	}
	type node struct {
		state S
		key   string
		label string
		prev  int // index into nodes, -1 for roots
		depth int
	}
	var res Result[S]
	nodes := make([]node, 0, 1024)
	seen := make(map[string]bool)
	queue := make([]int, 0, 1024)

	counterexample := func(i int) []TraceStep[S] {
		var rev []TraceStep[S]
		for j := i; j >= 0; j = nodes[j].prev {
			rev = append(rev, TraceStep[S]{Label: nodes[j].label, State: nodes[j].state})
		}
		out := make([]TraceStep[S], 0, len(rev))
		for j := len(rev) - 1; j >= 0; j-- {
			out = append(out, rev[j])
		}
		return out
	}

	push := func(s S, label string, prev, depth int) (violating bool, idx int, err error) {
		k := sys.Key(s)
		if seen[k] {
			return false, -1, nil
		}
		seen[k] = true
		nodes = append(nodes, node{state: s, key: k, label: label, prev: prev, depth: depth})
		idx = len(nodes) - 1
		res.StatesExplored++
		if depth > res.Depth {
			res.Depth = depth
		}
		ok, err := inv(s)
		if err != nil {
			return false, idx, err
		}
		if !ok {
			return true, idx, nil
		}
		queue = append(queue, idx)
		return false, idx, nil
	}

	for _, s := range sys.Init {
		bad, idx, err := push(s, "", -1, 0)
		if err != nil {
			return res, err
		}
		if bad {
			res.Holds = false
			res.Counterexample = counterexample(idx)
			res.Depth = 0
			return res, nil
		}
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nodes[cur]
		if opts.MaxDepth > 0 && n.depth >= opts.MaxDepth {
			continue
		}
		succ, err := sys.Succ(n.state)
		if err != nil {
			return res, err
		}
		for _, e := range succ {
			res.Transitions++
			bad, idx, err := push(e.To, e.Label, cur, n.depth+1)
			if err != nil {
				return res, err
			}
			if bad {
				res.Holds = false
				res.Counterexample = counterexample(idx)
				res.Depth = nodes[idx].depth
				return res, nil
			}
			if res.StatesExplored >= opts.maxStates() {
				res.Truncated = true
				res.Holds = false
				return res, fmt.Errorf("verify: state budget %d exhausted", opts.maxStates())
			}
		}
	}
	res.Holds = true
	return res, nil
}

// FormatTrace renders a counterexample for humans.
func FormatTrace[S any](trace []TraceStep[S], describe func(S) string) string {
	out := ""
	for i, st := range trace {
		if i == 0 {
			out += fmt.Sprintf("  init: %s\n", describe(st.State))
			continue
		}
		out += fmt.Sprintf("  %2d. --%s--> %s\n", i, st.Label, describe(st.State))
	}
	return out
}
