package verify

import (
	"errors"
	"fmt"
)

// InductionResult reports a temporal-induction proof attempt.
type InductionResult struct {
	Proved       bool
	Refuted      bool // base case found a real counterexample
	K            int  // the depth at which the proof closed or refuted
	BaseStates   int  // states explored across base cases
	StepPaths    int  // simple paths examined in the inductive steps
	UniverseSize int
}

// Induction proves inv for sys by temporal induction à la Sheeran, Singh
// and Stålmarck: for increasing k,
//
//	base:  no path of length <= k from an initial state violates inv;
//	step:  every SIMPLE path s_0 .. s_k with inv true at s_0..s_{k-1}
//	       has inv true at s_k, for s_0 ranging over the universe.
//
// The simple-path restriction (no repeated states) makes the method
// complete for finite systems: it terminates with a proof or a real
// counterexample for some k <= diameter+1.
//
// universe must enumerate a superset of all states (e.g. every syntactic
// variable assignment); it is what makes the inductive step a statement
// about arbitrary, not just reachable, states.
func Induction[S any](sys System[S], inv func(S) (bool, error), universe []S, maxK int) (InductionResult, error) {
	if err := sys.Validate(); err != nil {
		return InductionResult{}, err
	}
	if len(universe) == 0 {
		return InductionResult{}, errors.New("verify: empty universe")
	}
	if maxK <= 0 {
		maxK = 16
	}
	res := InductionResult{UniverseSize: len(universe)}

	for k := 1; k <= maxK; k++ {
		res.K = k
		// Base case: BMC to depth k.
		base, err := Check(sys, inv, Options{MaxDepth: k})
		if err != nil {
			return res, err
		}
		res.BaseStates += base.StatesExplored
		if !base.Holds {
			res.Refuted = true
			return res, nil
		}
		// Inductive step over all universe states.
		holds := true
		for _, s0 := range universe {
			ok, err := inv(s0)
			if err != nil {
				return res, err
			}
			if !ok {
				continue // paths must start inside the invariant
			}
			stepOK, paths, err := stepHolds(sys, inv, s0, k)
			res.StepPaths += paths
			if err != nil {
				return res, err
			}
			if !stepOK {
				holds = false
				break
			}
		}
		if holds {
			res.Proved = true
			return res, nil
		}
	}
	return res, fmt.Errorf("verify: induction inconclusive up to k=%d", maxK)
}

// stepHolds checks the inductive step from one start state: every simple
// path of exactly k transitions whose first k states satisfy inv must end
// in a state satisfying inv.
func stepHolds[S any](sys System[S], inv func(S) (bool, error), s0 S, k int) (bool, int, error) {
	paths := 0
	onPath := map[string]bool{sys.Key(s0): true}

	var dfs func(s S, depth int) (bool, error)
	dfs = func(s S, depth int) (bool, error) {
		if depth == k {
			paths++
			return inv(s)
		}
		// Intermediate states must satisfy inv to extend the path.
		if depth > 0 {
			ok, err := inv(s)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil // path leaves the invariant: vacuously fine
			}
		}
		succ, err := sys.Succ(s)
		if err != nil {
			return false, err
		}
		for _, e := range succ {
			key := sys.Key(e.To)
			if onPath[key] {
				continue // simple paths only
			}
			onPath[key] = true
			ok, err := dfs(e.To, depth+1)
			delete(onPath, key)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}
	ok, err := dfs(s0, 0)
	return ok, paths, err
}
