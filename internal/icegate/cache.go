package icegate

import "sync"

// cacheEntry memoizes one successful job: the rendered table plus the
// per-cell records in deterministic cell-index order, so a cache hit can
// replay both the result and the stream byte-for-byte.
type cacheEntry struct {
	table string
	cells []CellResult
}

// Cache is the deterministic result cache. The fleet guarantees a
// (scenario, seed, cells, duration, knobs) tuple reduces to byte-identical
// output at any worker count, and the experiment catalog runners are pure
// functions of (id, seed, cells) — so a repeat submission is served
// without simulating anything. Entries are kept for the process lifetime;
// results never go stale because the key covers every input.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    uint64
	misses  uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{entries: map[string]cacheEntry{}} }

// get looks a key up, counting the hit or miss.
func (c *Cache) get(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// put memoizes a completed job's result.
func (c *Cache) put(key string, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = e
}

// Stats reports lifetime hit/miss counters and the entry count.
func (c *Cache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
