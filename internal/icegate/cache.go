package icegate

import (
	"encoding/json"
	"sync"
)

// cacheEntry memoizes one successful job: the rendered table plus the
// per-cell records in deterministic cell-index order, so a cache hit can
// replay both the result and the stream byte-for-byte.
type cacheEntry struct {
	table string
	cells []CellResult
}

// Cache is the deterministic result cache. The fleet guarantees a
// (scenario, seed, cells, duration, knobs) tuple reduces to byte-identical
// output at any worker count, and the experiment catalog runners are pure
// functions of (id, seed, cells) — so a repeat submission is served
// without simulating anything. Entries are kept for the process lifetime;
// results never go stale because the key covers every input.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    uint64
	misses  uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{entries: map[string]cacheEntry{}} }

// get looks a key up, counting the hit or miss.
func (c *Cache) get(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// put memoizes a completed job's result.
func (c *Cache) put(key string, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = e
}

// Stats reports lifetime hit/miss counters and the entry count.
func (c *Cache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// storedResult is the disk encoding of a cacheEntry: stable JSON inside
// the store's checksummed envelope, so an entry written by one daemon
// replays byte-identically from the next.
type storedResult struct {
	Table string       `json:"table"`
	Cells []CellResult `json:"cells"`
}

// storeGet looks the key up in the disk store (the L2 below the
// in-memory cache). A corrupt or undecodable payload is a miss — the
// store has already quarantined checksum failures, and a JSON-level
// failure here just means re-simulating.
func (s *Scheduler) storeGet(key string) (cacheEntry, bool) {
	if s.store == nil {
		return cacheEntry{}, false
	}
	raw, ok := s.store.Get(key)
	if !ok {
		return cacheEntry{}, false
	}
	var sr storedResult
	if err := json.Unmarshal(raw, &sr); err != nil {
		return cacheEntry{}, false
	}
	return cacheEntry{table: sr.Table, cells: sr.Cells}, true
}

// storePut writes a finished result through to the disk store. Failures
// (oversized for the store's budget, disk trouble) cost only restart
// durability, never correctness, so they are dropped.
func (s *Scheduler) storePut(key string, e cacheEntry) {
	if s.store == nil {
		return
	}
	raw, err := json.Marshal(storedResult{Table: e.table, Cells: e.cells})
	if err != nil {
		return
	}
	_ = s.store.Put(key, raw)
}
