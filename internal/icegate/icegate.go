// Package icegate is the serving layer above the fleet: a long-running
// gateway that accepts scenario-run and experiment-table jobs over
// HTTP/JSON, schedules them on a bounded queue with admission control,
// streams per-cell results as they complete, and memoizes finished
// results in a deterministic cache.
//
// The design leans on the layer below it: because a fleet result is a
// pure function of (scenario, seed, cells, duration, knobs) — byte-
// identical at any worker count — the gateway can key a result cache on
// exactly that tuple and serve repeat queries without simulating, and it
// can treat parallelism (fleet workers, concurrent jobs) purely as
// deployment capacity. cmd/icegated wraps this package as a daemon;
// cmd/icerun -remote is its client.
package icegate

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icescope"
)

// Config sizes the gateway.
type Config struct {
	QueueDepth int // jobs admitted but not yet executing; <=0 means 16
	Executors  int // jobs executing concurrently; <=0 means 1
	Workers    int // fleet worker-pool width per job; <=0 means 1
	MaxCells   int // per-job cell ceiling (admission control); <=0 means 4096
	RetainJobs int // finished jobs kept for status queries; <=0 means 1024

	// TraceSample, when positive, force-enables span recording on every
	// Nth submitted job (the 1-in-N always-on profile a long-running
	// daemon wants: recent traces on hand without clients asking).
	// Tracing is observability only — it never touches result bytes or
	// cache identity — so sampling composes with per-request Trace: a
	// sampled job is traced exactly as if the client had asked.
	TraceSample int

	// Backend selects where fleet cells execute; nil means LocalBackend
	// (this process's pool). Deliberately not part of any result
	// identity: determinism makes backends interchangeable.
	Backend Backend
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Executors <= 0 {
		c.Executors = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 4096
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.Backend == nil {
		c.Backend = LocalBackend{}
	}
	return c
}

// ErrQueueFull is admission control's rejection: the HTTP layer maps it
// to 429 Too Many Requests.
var ErrQueueFull = errors.New("icegate: job queue full")

// Scheduler owns the job queue, the executor pool, and the result cache.
type Scheduler struct {
	cfg   Config
	cache *Cache
	met   *gatewayMetrics

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*Job
	order  []string // submission order, for listing

	// hooks let lifecycle tests observe transitions without polling;
	// zero outside tests.
	hooks schedulerHooks
}

// schedulerHooks are test observation points on the job lifecycle.
type schedulerHooks struct {
	jobRunning func(*Job) // after queued->running, before cells execute
}

// NewScheduler starts cfg.Executors executor goroutines and returns the
// scheduler. Close must be called to stop them.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		cache:   NewCache(),
		baseCtx: ctx,
		stop:    stop,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    map[string]*Job{},
	}
	s.met = newGatewayMetrics(s) // after s: the GaugeFuncs read scheduler state
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Close rejects further submissions, cancels every queued and running
// job, and waits for the executors to drain. Safe to call once; callers
// must stop the HTTP front end first or accept "scheduler closed" errors.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		for _, j := range s.jobs {
			j.requestCancel()
		}
	}
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Drain is the graceful half of shutdown: stop admitting, let queued
// and running jobs run to completion, then release the executors. When
// ctx expires first, whatever still runs is cancelled and Drain returns
// ctx.Err() — the caller is exiting and a simulation cell is not
// interruptible mid-kernel, so the deadline is the contract. Close
// afterwards is safe (and a no-op for the queue). cmd/icegated calls
// this on SIGTERM.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.requestCancel()
		}
		s.mu.Unlock()
		s.stop()
		return ctx.Err()
	}
}

// Cache exposes the result cache (metrics and tests).
func (s *Scheduler) Cache() *Cache { return s.cache }

// Backend reports where this scheduler's cells execute.
func (s *Scheduler) Backend() Backend { return s.cfg.Backend }

// QueueDepth reports jobs admitted but not yet picked up by an executor.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Submit validates and admits one job. A cache hit completes the job
// instantly — it is registered with an ID like any other so clients keep
// one code path — and a full queue returns ErrQueueFull without
// registering anything.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Cells > s.cfg.MaxCells {
		return nil, fmt.Errorf("icegate: %d cells exceeds the per-job ceiling %d", req.Cells, s.cfg.MaxCells)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("icegate: scheduler closed")
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%06d", s.seq), req)
	if req.Trace || (s.cfg.TraceSample > 0 && s.seq%s.cfg.TraceSample == 0) {
		job.enableTrace()
	}

	if e, ok := s.cache.get(job.key); ok {
		job.traceInstant("cache hit")
		for _, cr := range e.cells {
			job.deliver(cr)
		}
		job.finish(StatusDone, e.table, "", true)
		s.register(job)
		s.met.jobsDone.Add(1)
		return job, nil
	}

	// Admission control: a full queue rejects rather than blocks, so one
	// flood of submissions degrades to fast 429s instead of head-of-line
	// latency for everyone.
	select {
	case s.queue <- job:
	default:
		s.met.jobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.register(job)
	return job, nil
}

// register records the job; callers hold s.mu.
func (s *Scheduler) register(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.met.jobsSubmitted.Add(1)
	s.evictLocked()
}

// evictLocked keeps the daemon's job registry bounded: once the registry
// exceeds RetainJobs, terminal jobs are dropped oldest-first (their
// results live on in the cache; only the per-ID status record goes).
// Queued and running jobs are never evicted. Callers hold s.mu.
func (s *Scheduler) evictLocked() {
	if len(s.jobs) <= s.cfg.RetainJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.cfg.RetainJobs && j.Status().terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get resolves a job by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every registered job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel aborts a queued or running job. Cancelling an unknown job is an
// error; cancelling a terminal one is a no-op.
func (s *Scheduler) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("icegate: unknown job %q", id)
	}
	if j.requestCancel() {
		s.met.jobsCancelled.Add(1)
	}
	return nil
}

func (s *Scheduler) executor() {
	defer s.wg.Done()
	// Each executor owns one reduce accumulator, reused across its jobs
	// so steady-state serving reallocates no per-metric buffers.
	sum := fleet.NewSummary()
	for job := range s.queue {
		s.runJob(job, sum)
	}
}

// runJob executes one admitted job end to end.
func (s *Scheduler) runJob(job *Job, sum *fleet.Summary) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !job.start(cancel) {
		return // cancelled while queued
	}
	if s.hooks.jobRunning != nil {
		s.hooks.jobRunning(job)
	}

	var table string
	var err error
	if job.Req.Scenario != "" {
		table, err = s.runScenario(ctx, job, sum)
	} else {
		table, err = s.runExperiment(ctx, job)
	}

	switch {
	case ctx.Err() != nil:
		job.finish(StatusCancelled, "", ctx.Err().Error(), false)
	case err != nil:
		s.met.jobsFailed.Add(1)
		job.finish(StatusFailed, "", err.Error(), false)
	default:
		// Memoize with cells re-sorted into deterministic index order so a
		// cache hit replays the same stream regardless of this run's
		// completion order.
		job.mu.Lock()
		cells := append([]CellResult(nil), job.cells...)
		job.mu.Unlock()
		ordered := make([]CellResult, len(cells))
		copy(ordered, cells)
		for _, cr := range cells {
			if cr.Index >= 0 && cr.Index < len(ordered) {
				ordered[cr.Index] = cr
			}
		}
		s.cache.put(job.key, cacheEntry{table: table, cells: ordered})
		s.met.jobsDone.Add(1)
		job.finish(StatusDone, table, "", false)
	}
}

// runScenario executes a fleet ensemble, streaming each cell as it lands
// and reducing into the executor's pooled summary.
func (s *Scheduler) runScenario(ctx context.Context, job *Job, sum *fleet.Summary) (string, error) {
	req := job.Req
	build := job.run.Child("build spec")
	spec, err := fleet.Build(req.Scenario, fleet.Params{
		Seed:     req.Seed,
		Cells:    req.Cells,
		Duration: req.duration(),
		Knobs:    req.Knobs,
	})
	build.End(icescope.StrAttr("scenario", req.Scenario))
	if err != nil {
		return "", err
	}
	runner := fleet.Runner{
		Workers: s.cfg.Workers,
		Engine:  s.cfg.Backend.Engine(),
		Span:    job.run,
		Obs:     s.met.fleetObs,
	}
	results, err := runner.RunContext(ctx, spec, func(r fleet.Result) {
		cr := CellResult{Index: r.Cell.Index, Seed: r.Cell.Seed, Metrics: r.Metrics}
		if r.Err != nil {
			cr.Err = r.Err.Error()
		}
		job.deliver(cr)
		s.met.cellsDone.Inc()
		s.met.simEvents.Add(r.Events)
		s.met.wireBytes.Add(r.WireBytes)
		s.met.wireEncodeNS.Add(r.WireEncodeNS)
	})
	if err != nil {
		return "", err
	}
	merge := job.run.Child("merge")
	table := renderScenarioTable(req, results, sum)
	merge.End(icescope.IntAttr("cells", len(results)))
	return table, nil
}

// renderScenarioTable is the canonical rendering of a scenario job: the
// request identity line plus the fleet's reduced summary. Byte-identical
// result sets render to byte-identical tables (the cache contract). sum
// may be nil for one-shot callers; a pooled summary is reset first.
func renderScenarioTable(req Request, results []fleet.Result, sum *fleet.Summary) string {
	if sum == nil {
		sum = fleet.NewSummary()
	} else {
		sum.Reset()
	}
	sum.Add(results)
	return fmt.Sprintf("scenario %s seed=%d cells=%d\n%s",
		req.Scenario, req.Seed, req.Cells, sum)
}

// runExperiment renders one catalog table. Experiment runners are not
// interruptible mid-run; cancellation is honored between admission and
// start, and the result of a run that raced cancellation is discarded by
// runJob's ctx check.
func (s *Scheduler) runExperiment(ctx context.Context, job *Job) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	tab, err := experiments.Run(job.Req.Exp, experiments.Options{
		Seed:    job.Req.Seed,
		Cells:   job.Req.Cells,
		Workers: s.cfg.Workers,
		Engine:  s.cfg.Backend.Engine(),
		Trace:   job.run,
		Obs:     s.met.fleetObs,
	})
	if err != nil {
		return "", err
	}
	return tab.String(), nil
}
