// Package icegate is the serving layer above the fleet: a long-running
// gateway that accepts scenario-run and experiment-table jobs over
// HTTP/JSON, schedules them across tenants with quotas and weighted
// fair queueing, streams per-cell results as they complete, and
// memoizes finished results in a deterministic cache — in memory and,
// when configured, in a disk-backed content-addressed store that
// survives restarts.
//
// The design leans on the layer below it: because a fleet result is a
// pure function of (scenario, seed, cells, duration, knobs) — byte-
// identical at any worker count — the gateway can key a result cache on
// exactly that tuple and serve repeat queries without simulating, and it
// can treat parallelism (fleet workers, concurrent jobs) purely as
// deployment capacity. cmd/icegated wraps this package as a daemon;
// cmd/icerun -remote is its client.
package icegate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icescope"
	"repro/internal/icestore"
)

// Config sizes the gateway.
type Config struct {
	QueueDepth int // jobs admitted but not yet executing, all tenants; <=0 means 16
	Executors  int // jobs executing concurrently; <=0 means 1
	Workers    int // fleet worker-pool width per job; <=0 means 1
	MaxCells   int // per-job cell ceiling (admission control); <=0 means 4096
	RetainJobs int // finished jobs kept for status queries; <=0 means 1024

	// Tenants is the multi-tenant policy: per-tenant quotas and fair-share
	// weights. The zero value admits everyone under one unlimited default
	// quota, which reduces the scheduler to the single-tenant FIFO it used
	// to be.
	Tenants TenantsConfig

	// TraceSample, when positive, force-enables span recording on every
	// Nth submitted job (the 1-in-N always-on profile a long-running
	// daemon wants: recent traces on hand without clients asking).
	// Tracing is observability only — it never touches result bytes or
	// cache identity — so sampling composes with per-request Trace: a
	// sampled job is traced exactly as if the client had asked.
	TraceSample int

	// Backend selects where fleet cells execute; nil means LocalBackend
	// (this process's pool). Deliberately not part of any result
	// identity: determinism makes backends interchangeable.
	Backend Backend

	// Store, when non-nil, is the disk-backed second cache level: results
	// missing from the in-memory cache are looked up there, and finished
	// results are written through, so cache hits survive daemon restarts.
	Store *icestore.Store
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Executors <= 0 {
		c.Executors = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 4096
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.Backend == nil {
		c.Backend = LocalBackend{}
	}
	return c
}

// ErrQueueFull is admission control's global rejection: the HTTP layer
// maps it (and the per-tenant QuotaError wrapping it) to 429 Too Many
// Requests.
var ErrQueueFull = errors.New("icegate: job queue full")

// Scheduler owns the tenant queues, the executor pool, and the result
// cache hierarchy.
type Scheduler struct {
	cfg   Config
	cache *Cache
	store *icestore.Store
	met   *gatewayMetrics

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond // signalled on enqueue; broadcast on completion/close
	closed bool
	seq    int
	jobs   map[string]*Job
	order  []string // submission order, for listing

	// Multi-tenant scheduling state, all guarded by mu. tenants holds one
	// state per identity with work in flight; vtime is the weighted-fair-
	// queueing virtual clock, advanced to the dispatched tenant's pass at
	// every pop so tenants activating later join the race where it
	// currently stands rather than at zero (which would let them starve
	// everyone while they burn banked credit).
	tenants     map[string]*tenantState
	queuedTotal int
	vtime       float64

	// Span/event drop totals carried over from evicted jobs, so the
	// icescope_*_dropped_total expositions stay monotone after the job
	// registry rotates. Guarded by mu.
	evictedSpanDrops  uint64
	evictedEventDrops uint64

	// hooks let lifecycle tests observe transitions without polling;
	// zero outside tests.
	hooks schedulerHooks
}

// schedulerHooks are test observation points on the job lifecycle.
type schedulerHooks struct {
	jobRunning func(*Job) // after queued->running, before cells execute
}

// NewScheduler starts cfg.Executors executor goroutines and returns the
// scheduler. Close must be called to stop them.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		cache:   NewCache(),
		store:   cfg.Store,
		baseCtx: ctx,
		stop:    stop,
		jobs:    map[string]*Job{},
		tenants: map[string]*tenantState{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.met = newGatewayMetrics(s) // after s: the GaugeFuncs read scheduler state
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Close rejects further submissions, cancels every queued and running
// job, and waits for the executors to drain. Safe to call once; callers
// must stop the HTTP front end first or accept "scheduler closed" errors.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, j := range s.jobs {
			if j.requestCancel() {
				s.removeQueuedLocked(j)
			}
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Drain is the graceful half of shutdown: stop admitting, let queued
// and running jobs run to completion, then release the executors. When
// ctx expires first, whatever still runs is cancelled and Drain returns
// ctx.Err() — the caller is exiting and a simulation cell is not
// interruptible mid-kernel, so the deadline is the contract. Close
// afterwards is safe (and a no-op for the queues). cmd/icegated calls
// this on SIGTERM.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.requestCancel() {
				s.removeQueuedLocked(j)
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		s.stop()
		return ctx.Err()
	}
}

// Cache exposes the in-memory result cache (metrics and tests).
func (s *Scheduler) Cache() *Cache { return s.cache }

// Store exposes the disk-backed result store; nil when none configured.
func (s *Scheduler) Store() *icestore.Store { return s.store }

// Backend reports where this scheduler's cells execute.
func (s *Scheduler) Backend() Backend { return s.cfg.Backend }

// QueueDepth reports jobs admitted but not yet picked up by an executor,
// across all tenants and lanes.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedTotal
}

// Submit validates and admits one job under its tenant's quota. A cache
// or store hit completes the job instantly — it is registered with an ID
// like any other so clients keep one code path — and an admission
// rejection (global queue full, or any per-tenant quota) returns an
// ErrQueueFull-family error without registering anything.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Cells > s.cfg.MaxCells {
		return nil, fmt.Errorf("icegate: %d cells exceeds the per-job ceiling %d", req.Cells, s.cfg.MaxCells)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errSchedulerClosed
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%06d", s.seq), req)
	if req.Trace || (s.cfg.TraceSample > 0 && s.seq%s.cfg.TraceSample == 0) {
		job.enableTrace()
	}

	if e, ok := s.cache.get(job.key); ok {
		s.finishFromCache(job, e, "cache hit")
		return job, nil
	}
	// L2: the disk store. A hit is promoted into the in-memory cache so
	// the next repeat skips the disk entirely.
	if e, ok := s.storeGet(job.key); ok {
		s.cache.put(job.key, e)
		s.finishFromCache(job, e, "store hit")
		return job, nil
	}

	// Admission control, cheapest rejection first. Every path rejects
	// rather than blocks, so one flood of submissions degrades to fast
	// 429s instead of head-of-line latency for everyone.
	name := job.Req.Tenant
	t := s.tenants[name]
	if t == nil && !s.admitNewTenantLocked(name) {
		s.rejectLocked(name)
		return nil, &QuotaError{Tenant: name, Reason: "tenants", RetryAfter: retryAfterHint(0)}
	}
	if s.queuedTotal >= s.cfg.QueueDepth {
		s.rejectLocked(name)
		return nil, ErrQueueFull
	}
	quota := s.cfg.Tenants.quotaFor(name)
	queued, cells := 0, 0
	if t != nil {
		queued, cells = t.queued, t.cells
	}
	if quota.MaxQueued > 0 && queued >= quota.MaxQueued {
		s.rejectLocked(name)
		return nil, &QuotaError{Tenant: name, Reason: "queued", RetryAfter: retryAfterHint(queued)}
	}
	if quota.MaxCells > 0 && cells+job.cost > quota.MaxCells {
		s.rejectLocked(name)
		return nil, &QuotaError{Tenant: name, Reason: "cells", RetryAfter: retryAfterHint(queued)}
	}

	s.enqueueLocked(s.tenantLocked(name), job)
	s.register(job)
	return job, nil
}

// finishFromCache completes a job instantly from a memoized entry;
// callers hold s.mu.
func (s *Scheduler) finishFromCache(job *Job, e cacheEntry, how string) {
	job.traceInstant(how)
	for _, cr := range e.cells {
		job.deliver(cr)
	}
	job.finish(StatusDone, e.table, "", true)
	s.register(job)
	s.met.jobsDone.Add(1)
}

// admitNewTenantLocked decides whether an identity with no state yet may
// enter the scheduler. Configured tenants and the anonymous bucket are
// always admitted; unnamed identities are capped so a hostile client
// minting fresh names cannot grow the tenant table (and the metric
// label space) without bound. Callers hold s.mu.
func (s *Scheduler) admitNewTenantLocked(name string) bool {
	if name == AnonTenant {
		return true
	}
	if _, named := s.cfg.Tenants.Tenants[name]; named {
		return true
	}
	return len(s.tenants) < s.cfg.Tenants.maxTenants()
}

// rejectLocked counts one admission rejection; callers hold s.mu.
func (s *Scheduler) rejectLocked(tenant string) {
	s.met.jobsRejected.Add(1)
	s.met.tenantRejected.With(tenant).Inc()
}

// retryAfterHint scales the 429 Retry-After hint with the tenant's
// backlog — one second plus one per queued job, bounded — so a client
// honoring it naturally backs off harder the deeper it has dug.
func retryAfterHint(queued int) time.Duration {
	d := time.Duration(1+queued) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// tenantLocked returns the live state for name, creating it at the
// current virtual time if the tenant is newly active. Callers hold s.mu
// and must have passed admitNewTenantLocked.
func (s *Scheduler) tenantLocked(name string) *tenantState {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := &tenantState{name: name, q: s.cfg.Tenants.quotaFor(name), pass: s.vtime}
	s.tenants[name] = t
	return t
}

// enqueueLocked charges the job to its tenant and appends it to the
// tenant's lane queue. Callers hold s.mu.
func (s *Scheduler) enqueueLocked(t *tenantState, job *Job) {
	if !t.active() && t.pass < s.vtime {
		// An idle tenant's pass is stale; catch it up so it neither
		// starves behind everyone (pass too high never happens — pops only
		// raise it) nor spends banked credit from its idle time.
		t.pass = s.vtime
	}
	job.enqueuedAt = time.Now()
	t.queues[job.laneIdx] = append(t.queues[job.laneIdx], job)
	t.queued++
	t.cells += job.cost
	s.queuedTotal++
	s.met.tenantSubmitted.With(t.name).Inc()
	s.cond.Signal()
}

// popLocked selects the next job to dispatch: strict lane priority
// first (interactive before batch, across all tenants), weighted fair
// queueing between tenants within the lane, FIFO within one tenant's
// lane. Tenants at their MaxRunning cap are passed over without losing
// their place. Returns nil when nothing is dispatchable. Callers hold
// s.mu.
func (s *Scheduler) popLocked() *Job {
	for lane := 0; lane < numLanes; lane++ {
		var best *tenantState
		for _, t := range s.tenants {
			if len(t.queues[lane]) == 0 {
				continue
			}
			if t.q.MaxRunning > 0 && t.running >= t.q.MaxRunning {
				continue
			}
			if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
				best = t
			}
		}
		if best == nil {
			continue
		}
		q := best.queues[lane]
		job := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		best.queues[lane] = q[:len(q)-1]
		best.queued--
		best.running++
		s.queuedTotal--
		// Advance the virtual clock to the winner's pass, then charge the
		// winner cost/weight: heavier tenants' passes climb slower, so
		// they win proportionally more dispatches.
		s.vtime = best.pass
		best.pass += float64(job.cost) / best.weight()
		s.met.queueWait.With(laneName(lane)).Observe(time.Since(job.enqueuedAt).Seconds())
		return job
	}
	return nil
}

// jobDoneLocked returns a dispatched job's resources to its tenant after
// the executor is through with it (run, cancelled mid-run, or skipped
// because it was cancelled between pop and start). Callers hold s.mu.
func (s *Scheduler) jobDoneLocked(job *Job) {
	t := s.tenants[job.Req.Tenant]
	if t == nil {
		return
	}
	t.running--
	s.freeQuotaLocked(t, job)
	s.reapLocked(t)
	s.cond.Broadcast()
}

// removeQueuedLocked takes a cancelled job out of its tenant's lane
// queue, freeing its queue slot and cell charge immediately rather than
// when an executor would have popped it. A job already popped (or
// already removed) is left to jobDoneLocked. Callers hold s.mu.
func (s *Scheduler) removeQueuedLocked(job *Job) {
	t := s.tenants[job.Req.Tenant]
	if t == nil {
		return
	}
	q := t.queues[job.laneIdx]
	for i, j := range q {
		if j != job {
			continue
		}
		copy(q[i:], q[i+1:])
		q[len(q)-1] = nil
		t.queues[job.laneIdx] = q[:len(q)-1]
		t.queued--
		s.queuedTotal--
		s.freeQuotaLocked(t, job)
		s.reapLocked(t)
		s.cond.Broadcast()
		return
	}
}

// freeQuotaLocked releases a job's cell charge exactly once, no matter
// how many paths observe its end. Callers hold s.mu.
func (s *Scheduler) freeQuotaLocked(t *tenantState, job *Job) {
	if job.quotaFreed {
		return
	}
	job.quotaFreed = true
	t.cells -= job.cost
}

// reapLocked drops a tenant with nothing in flight: state is cheap to
// recreate (tenantLocked), and dropping it bounds the tenant table and
// the per-tenant metric children at "currently active" instead of "ever
// seen". Callers hold s.mu.
func (s *Scheduler) reapLocked(t *tenantState) {
	if !t.active() {
		delete(s.tenants, t.name)
	}
}

// register records the job; callers hold s.mu.
func (s *Scheduler) register(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.met.jobsSubmitted.Add(1)
	s.evictLocked()
}

// evictLocked keeps the daemon's job registry bounded: once the registry
// exceeds RetainJobs, terminal jobs are dropped oldest-first (their
// results live on in the cache; only the per-ID status record goes).
// Queued and running jobs are never evicted. Callers hold s.mu.
func (s *Scheduler) evictLocked() {
	if len(s.jobs) <= s.cfg.RetainJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.cfg.RetainJobs && j.Status().terminal() {
			s.evictedSpanDrops += j.tr.Dropped()
			s.evictedEventDrops += j.tr.EventsDropped()
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// spanDropsLocked sums span and live-event drops across every retained
// traced job plus the evicted carry-over; callers hold s.mu.
func (s *Scheduler) spanDropsLocked() (spans, events uint64) {
	spans, events = s.evictedSpanDrops, s.evictedEventDrops
	for _, j := range s.jobs {
		spans += j.tr.Dropped()
		events += j.tr.EventsDropped()
	}
	return spans, events
}

// Get resolves a job by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every registered job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel aborts a queued or running job. Cancelling a queued job frees
// its queue slot and quota charge immediately. Cancelling an unknown job
// is an error; cancelling a terminal one is a no-op.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("icegate: unknown job %q", id)
	}
	if j.requestCancel() {
		s.met.jobsCancelled.Add(1)
		s.removeQueuedLocked(j)
	}
	return nil
}

func (s *Scheduler) executor() {
	defer s.wg.Done()
	// Each executor owns one reduce accumulator, reused across its jobs
	// so steady-state serving reallocates no per-metric buffers.
	sum := fleet.NewSummary()
	for {
		s.mu.Lock()
		var job *Job
		for {
			if job = s.popLocked(); job != nil {
				break
			}
			if s.closed && s.queuedTotal == 0 {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.runJob(job, sum)
		s.mu.Lock()
		s.jobDoneLocked(job)
		s.mu.Unlock()
	}
}

// runJob executes one admitted job end to end.
func (s *Scheduler) runJob(job *Job, sum *fleet.Summary) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !job.start(cancel) {
		return // cancelled while queued
	}
	if s.hooks.jobRunning != nil {
		s.hooks.jobRunning(job)
	}

	var table string
	var err error
	if job.Req.Scenario != "" {
		table, err = s.runScenario(ctx, job, sum)
	} else {
		table, err = s.runExperiment(ctx, job)
	}

	switch {
	case ctx.Err() != nil:
		job.finish(StatusCancelled, "", ctx.Err().Error(), false)
	case err != nil:
		s.met.jobsFailed.Add(1)
		job.finish(StatusFailed, "", err.Error(), false)
	default:
		// Memoize with cells re-sorted into deterministic index order so a
		// cache hit replays the same stream regardless of this run's
		// completion order.
		job.mu.Lock()
		cells := append([]CellResult(nil), job.cells...)
		job.mu.Unlock()
		ordered := make([]CellResult, len(cells))
		copy(ordered, cells)
		for _, cr := range cells {
			if cr.Index >= 0 && cr.Index < len(ordered) {
				ordered[cr.Index] = cr
			}
		}
		entry := cacheEntry{table: table, cells: ordered}
		s.cache.put(job.key, entry)
		s.storePut(job.key, entry)
		s.met.jobsDone.Add(1)
		job.finish(StatusDone, table, "", false)
	}
}

// runScenario executes a fleet ensemble, streaming each cell as it lands
// and reducing into the executor's pooled summary.
func (s *Scheduler) runScenario(ctx context.Context, job *Job, sum *fleet.Summary) (string, error) {
	req := job.Req
	build := job.run.Child("build spec")
	spec, err := fleet.Build(req.Scenario, fleet.Params{
		Seed:     req.Seed,
		Cells:    req.Cells,
		Duration: req.duration(),
		Knobs:    req.Knobs,
	})
	build.End(icescope.StrAttr("scenario", req.Scenario))
	if err != nil {
		return "", err
	}
	runner := fleet.Runner{
		Workers: s.cfg.Workers,
		Engine:  s.cfg.Backend.Engine(),
		Span:    job.run,
		Obs:     s.met.fleetObs,
	}
	results, err := runner.RunContext(ctx, spec, func(r fleet.Result) {
		cr := CellResult{Index: r.Cell.Index, Seed: r.Cell.Seed, Metrics: r.Metrics}
		if r.Err != nil {
			cr.Err = r.Err.Error()
		}
		job.deliver(cr)
		s.met.cellsDone.Inc()
		s.met.simEvents.Add(r.Events)
		s.met.wireBytes.Add(r.WireBytes)
		s.met.wireEncodeNS.Add(r.WireEncodeNS)
	})
	if err != nil {
		return "", err
	}
	merge := job.run.Child("merge")
	table := renderScenarioTable(req, results, sum)
	merge.End(icescope.IntAttr("cells", len(results)))
	return table, nil
}

// renderScenarioTable is the canonical rendering of a scenario job: the
// request identity line plus the fleet's reduced summary. Byte-identical
// result sets render to byte-identical tables (the cache contract). sum
// may be nil for one-shot callers; a pooled summary is reset first.
func renderScenarioTable(req Request, results []fleet.Result, sum *fleet.Summary) string {
	if sum == nil {
		sum = fleet.NewSummary()
	} else {
		sum.Reset()
	}
	sum.Add(results)
	return fmt.Sprintf("scenario %s seed=%d cells=%d\n%s",
		req.Scenario, req.Seed, req.Cells, sum)
}

// runExperiment renders one catalog table. Experiment runners are not
// interruptible mid-run; cancellation is honored between admission and
// start, and the result of a run that raced cancellation is discarded by
// runJob's ctx check.
func (s *Scheduler) runExperiment(ctx context.Context, job *Job) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	tab, err := experiments.Run(job.Req.Exp, experiments.Options{
		Seed:    job.Req.Seed,
		Cells:   job.Req.Cells,
		Workers: s.cfg.Workers,
		Engine:  s.cfg.Backend.Engine(),
		Trace:   job.run,
		Obs:     s.met.fleetObs,
	})
	if err != nil {
		return "", err
	}
	return tab.String(), nil
}
