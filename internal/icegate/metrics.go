package icegate

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// gatewayMetrics are the serving-side counters behind /metrics. They
// describe the gateway process (wall-clock throughput, queue pressure,
// cache efficiency) and are deliberately separate from simulation
// results, which stay deterministic.
type gatewayMetrics struct {
	start         time.Time
	cellsDone     atomic.Uint64
	simEvents     atomic.Uint64 // kernel events executed by scenario cells
	wireBytes     atomic.Uint64 // envelope bytes encoded by scenario cells
	wireEncodeNS  atomic.Uint64 // sampled envelope-encode wall time, ns
	jobsSubmitted atomic.Uint64
	jobsRejected  atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCancelled atomic.Uint64
}

func newGatewayMetrics() *gatewayMetrics {
	return &gatewayMetrics{start: time.Now()}
}

// MetricsText emits the Prometheus-style text form of the gateway's
// state — the /metrics body, exported for embedders and tests.
func (s *Scheduler) MetricsText() string { return s.renderMetrics() }

// Render emits the Prometheus-style text form of the gateway's state.
func (s *Scheduler) renderMetrics() string {
	hits, misses, entries := s.cache.Stats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	uptime := time.Since(s.met.start).Seconds()
	cells := s.met.cellsDone.Load()
	cellsPerSec := 0.0
	if uptime > 0 {
		cellsPerSec = float64(cells) / uptime
	}
	// True engine throughput: kernel events actually executed (cache hits
	// replay stored results and so add nothing — by design).
	events := s.met.simEvents.Load()
	eventsPerSec := 0.0
	if uptime > 0 {
		eventsPerSec = float64(events) / uptime
	}

	var b strings.Builder
	line := func(name string, v any) { fmt.Fprintf(&b, "icegate_%s %v\n", name, v) }
	line("uptime_seconds", fmt.Sprintf("%.1f", uptime))
	line("queue_depth", s.QueueDepth())
	line("queue_capacity", s.cfg.QueueDepth)
	line("executors", s.cfg.Executors)
	line("fleet_workers", s.cfg.Workers)
	line("jobs_submitted_total", s.met.jobsSubmitted.Load())
	line("jobs_rejected_total", s.met.jobsRejected.Load())
	line("jobs_done_total", s.met.jobsDone.Load())
	line("jobs_failed_total", s.met.jobsFailed.Load())
	line("jobs_cancelled_total", s.met.jobsCancelled.Load())
	line("cache_entries", entries)
	line("cache_hits_total", hits)
	line("cache_misses_total", misses)
	line("cache_hit_rate", fmt.Sprintf("%.3f", hitRate))
	line("cells_done_total", cells)
	line("cells_per_second", fmt.Sprintf("%.2f", cellsPerSec))
	line("sim_events_total", events)
	line("sim_events_per_second", fmt.Sprintf("%.0f", eventsPerSec))
	// Wire-codec accounting: bytes the cells' ICE envelopes encoded to,
	// and the (sampled) wall time spent encoding them. Cache hits add
	// nothing, like the event gauges.
	line("wire_bytes_total", s.met.wireBytes.Load())
	line("wire_encode_ns", s.met.wireEncodeNS.Load())
	// Execution backend: which one is active, plus whatever gauges it
	// exports (the mesh coordinator reports node liveness, shard
	// retries, and per-node throughput here).
	fmt.Fprintf(&b, "icegate_backend{name=%q} 1\n", s.cfg.Backend.Name())
	if bm, ok := s.cfg.Backend.(backendMetrics); ok {
		b.WriteString(bm.MetricsText())
	}
	return b.String()
}
