package icegate

import (
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/icescope"
)

// gatewayMetrics is the gateway's icescope registry plus the typed
// handles the serving paths update. They describe the gateway process
// (wall-clock throughput, queue pressure, cache efficiency) and are
// deliberately separate from simulation results, which stay
// deterministic. Derived gauges (uptime, rates, queue depth) are
// GaugeFuncs evaluated at scrape time, so the write side stays
// counters-only and allocation-free.
type gatewayMetrics struct {
	reg   *icescope.Registry
	start time.Time

	jobsSubmitted *icescope.Counter
	jobsRejected  *icescope.Counter
	jobsDone      *icescope.Counter
	jobsFailed    *icescope.Counter
	jobsCancelled *icescope.Counter

	// Per-tenant serving accounting: enqueue/reject counters keyed by
	// tenant, and the per-lane queue-wait distribution that makes "batch
	// floods don't starve interactive" a measurable claim.
	tenantSubmitted *icescope.CounterVec
	tenantRejected  *icescope.CounterVec
	queueWait       *icescope.HistogramVec

	cellsDone    *icescope.Counter
	simEvents    *icescope.Counter // kernel events executed by scenario cells
	wireBytes    *icescope.Counter // envelope bytes encoded by scenario cells
	wireEncodeNS *icescope.Counter // sampled envelope-encode wall time, ns

	// fleetObs is handed to every job's fleet.Runner: cell execution
	// latency and dispatch-to-pickup queue wait, as histograms.
	fleetObs *fleet.Obs
}

// newGatewayMetrics builds the registry against a constructed scheduler
// (the GaugeFuncs read its queue and cache at scrape time).
func newGatewayMetrics(s *Scheduler) *gatewayMetrics {
	m := &gatewayMetrics{reg: icescope.NewRegistry(), start: time.Now()}
	r := m.reg

	r.GaugeFunc("icegate_uptime_seconds", "Seconds since the gateway started.",
		func() float64 { return time.Since(m.start).Seconds() })
	r.GaugeFunc("icegate_queue_depth", "Jobs admitted but not yet picked up by an executor.",
		func() float64 { return float64(s.QueueDepth()) })
	r.GaugeFunc("icegate_queue_capacity", "Admission queue size.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	r.GaugeFunc("icegate_executors", "Concurrent job executors.",
		func() float64 { return float64(s.cfg.Executors) })
	r.GaugeFunc("icegate_fleet_workers", "Fleet worker-pool width per job.",
		func() float64 { return float64(s.cfg.Workers) })

	m.jobsSubmitted = r.Counter("icegate_jobs_submitted_total", "Jobs admitted (including cache hits).")
	m.jobsRejected = r.Counter("icegate_jobs_rejected_total", "Jobs rejected by admission control.")
	m.jobsDone = r.Counter("icegate_jobs_done_total", "Jobs finished successfully.")
	m.jobsFailed = r.Counter("icegate_jobs_failed_total", "Jobs that ended in failure.")
	m.jobsCancelled = r.Counter("icegate_jobs_cancelled_total", "Jobs cancelled by clients or shutdown.")

	r.GaugeFunc("icegate_cache_entries", "Result-cache entries resident.",
		func() float64 { _, _, entries := s.cache.Stats(); return float64(entries) })
	r.GaugeFunc("icegate_cache_hits_total", "Result-cache hits.",
		func() float64 { hits, _, _ := s.cache.Stats(); return float64(hits) })
	r.GaugeFunc("icegate_cache_misses_total", "Result-cache misses.",
		func() float64 { _, misses, _ := s.cache.Stats(); return float64(misses) })
	r.GaugeFunc("icegate_cache_hit_rate", "Fraction of lookups served from cache.",
		func() float64 {
			hits, misses, _ := s.cache.Stats()
			if hits+misses == 0 {
				return 0
			}
			return float64(hits) / float64(hits+misses)
		})

	// Trace health: spans silently discarded over per-trace caps (and
	// live events over stream bounds) across all traced jobs, including
	// those already evicted from the registry. A nonzero value means a
	// span tree in /trace or /events is incomplete.
	r.GaugeFunc("icescope_spans_dropped_total", "Spans discarded over per-trace caps, all traced jobs.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			spans, _ := s.spanDropsLocked()
			return float64(spans)
		})
	r.GaugeFunc("icescope_span_events_dropped_total", "Live span events discarded over per-job stream bounds.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			_, events := s.spanDropsLocked()
			return float64(events)
		})

	m.cellsDone = r.Counter("icegate_cells_done_total", "Fleet cells completed.")
	r.GaugeFunc("icegate_cells_per_second", "Cells completed per second of uptime.",
		func() float64 { return m.rate(float64(m.cellsDone.Value())) })
	// True engine throughput: kernel events actually executed (cache hits
	// replay stored results and so add nothing — by design).
	m.simEvents = r.Counter("icegate_sim_events_total", "Kernel events executed by scenario cells.")
	r.GaugeFunc("icegate_sim_events_per_second", "Kernel events executed per second of uptime.",
		func() float64 { return m.rate(float64(m.simEvents.Value())) })
	// Wire-codec accounting: bytes the cells' ICE envelopes encoded to,
	// and the (sampled) wall time spent encoding them.
	m.wireBytes = r.Counter("icegate_wire_bytes_total", "Envelope bytes encoded by scenario cells.")
	m.wireEncodeNS = r.Counter("icegate_wire_encode_ns", "Sampled envelope-encode wall time, nanoseconds.")

	// Multi-tenant scheduling: per-tenant counters, live per-tenant
	// gauges refreshed at scrape time from scheduler state, and the
	// per-lane queue-wait histogram.
	m.tenantSubmitted = r.CounterVec("icegate_tenant_jobs_submitted_total",
		"Jobs enqueued, by tenant.", "tenant")
	m.tenantRejected = r.CounterVec("icegate_tenant_jobs_rejected_total",
		"Jobs rejected by admission control, by tenant.", "tenant")
	m.queueWait = r.HistogramVec("icegate_queue_wait_seconds",
		"Job wait between admission and executor pickup, by lane.", "lane", nil)
	tenantQueued := r.GaugeVec("icegate_tenant_queued", "Jobs queued, by tenant.", "tenant")
	tenantRunning := r.GaugeVec("icegate_tenant_running", "Jobs running, by tenant.", "tenant")
	tenantCells := r.GaugeVec("icegate_tenant_cells_in_flight",
		"Cells in flight across queued and running jobs, by tenant.", "tenant")
	var collectMu sync.Mutex // Expose runs hooks outside the registry lock
	exported := map[string]bool{}
	r.OnCollect(func() {
		type snap struct{ queued, running, cells int }
		s.mu.Lock()
		cur := make(map[string]snap, len(s.tenants))
		for name, t := range s.tenants {
			cur[name] = snap{t.queued, t.running, t.cells}
		}
		s.mu.Unlock()
		collectMu.Lock()
		defer collectMu.Unlock()
		for name, v := range cur {
			tenantQueued.With(name).Set(float64(v.queued))
			tenantRunning.With(name).Set(float64(v.running))
			tenantCells.With(name).Set(float64(v.cells))
			exported[name] = true
		}
		// Tenants reaped since the last scrape leave the exposition too:
		// the gauge family tracks live scheduler state, not history.
		for name := range exported {
			if _, live := cur[name]; !live {
				tenantQueued.Delete(name)
				tenantRunning.Delete(name)
				tenantCells.Delete(name)
				delete(exported, name)
			}
		}
	})

	// Disk result store (the L2 under the in-memory cache), when
	// configured. Gauge-typed running totals, matching the cache family
	// above: scrape-time reads of the store's own counters.
	if s.store != nil {
		st := s.store
		r.GaugeFunc("icegate_store_entries", "Disk-store entries resident.",
			func() float64 { return float64(st.Stats().Entries) })
		r.GaugeFunc("icegate_store_bytes", "Disk-store bytes resident.",
			func() float64 { return float64(st.Stats().Bytes) })
		r.GaugeFunc("icegate_store_hits_total", "Disk-store hits.",
			func() float64 { return float64(st.Stats().Hits) })
		r.GaugeFunc("icegate_store_misses_total", "Disk-store misses.",
			func() float64 { return float64(st.Stats().Misses) })
		r.GaugeFunc("icegate_store_puts_total", "Disk-store writes committed.",
			func() float64 { return float64(st.Stats().Puts) })
		r.GaugeFunc("icegate_store_evictions_total", "Disk-store entries evicted by the byte budget.",
			func() float64 { return float64(st.Stats().Evictions) })
		r.GaugeFunc("icegate_store_quarantined_total", "Disk-store entries quarantined as corrupt.",
			func() float64 { return float64(st.Stats().Quarantined) })
	}

	m.fleetObs = &fleet.Obs{
		CellSeconds: r.Histogram("icegate_cell_seconds",
			"Per-cell execution latency (build + run).", nil),
		QueueWaitSeconds: r.Histogram("icegate_cell_queue_wait_seconds",
			"Per-cell wait between fleet dispatch and worker pickup.", nil),
	}

	// Execution backend: which one is active (a one-hot labeled gauge).
	r.GaugeVec("icegate_backend", "Active execution backend.", "name").
		With(s.cfg.Backend.Name()).Set(1)
	return m
}

// rate divides a running total by uptime.
func (m *gatewayMetrics) rate(total float64) float64 {
	up := time.Since(m.start).Seconds()
	if up <= 0 {
		return 0
	}
	return total / up
}

// MetricsText emits the Prometheus text exposition of the gateway's
// state — the /metrics body, exported for embedders and tests.
func (s *Scheduler) MetricsText() string { return s.renderMetrics() }

// renderMetrics renders the registry, then appends whatever the backend
// exports (the mesh coordinator reports node liveness, shard retries,
// and per-node throughput here).
func (s *Scheduler) renderMetrics() string {
	text := s.met.reg.Expose()
	if bm, ok := s.cfg.Backend.(backendMetrics); ok {
		text += bm.MetricsText()
	}
	return text
}
