package icegate

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// Lifecycle-edge seeds: each test case needs its own gate (see
// testGates); the counter keeps them unique under -count=N.
var lifecycleSeeds atomic.Int64

func nextGateSeed() int64 { return 50_000 + lifecycleSeeds.Add(1) }

// TestJobLifecycleEdges drives the scheduler through its racy edges —
// cancel while queued, cancel while running, 429 under a full queue with
// a cancelled occupant — synchronized entirely by the scheduler's
// jobRunning hook and the per-seed cell gates: no polling, no sleeps.
func TestJobLifecycleEdges(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, s *Scheduler, running <-chan *Job)
	}{
		{"cancel-while-queued", func(t *testing.T, s *Scheduler, running <-chan *Job) {
			seedA := nextGateSeed()
			a := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: seedA, Cells: 1})
			if got := <-running; got.ID != a.ID {
				t.Fatalf("running job %s, want %s", got.ID, a.ID)
			}
			// The executor is occupied, so this one is provably queued.
			b := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1})
			if st := b.Status(); st != StatusQueued {
				t.Fatalf("second job status %v, want queued", st)
			}
			if err := s.Cancel(b.ID); err != nil {
				t.Fatal(err)
			}
			<-b.Done() // closes synchronously on queued->cancelled
			if st := b.Status(); st != StatusCancelled {
				t.Fatalf("cancelled-queued job status %v", st)
			}
			gate(seedA) <- struct{}{}
			<-a.Done()
			if st := a.Status(); st != StatusDone {
				t.Fatalf("first job status %v, want done", st)
			}
			// The cancelled job must never have executed a cell.
			if v := b.View(); v.CellsDone != 0 {
				t.Fatalf("cancelled-queued job executed %d cells", v.CellsDone)
			}
		}},
		{"cancel-while-running", func(t *testing.T, s *Scheduler, running <-chan *Job) {
			seed := nextGateSeed()
			a := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: seed, Cells: 2})
			if got := <-running; got.ID != a.ID {
				t.Fatalf("running job %s, want %s", got.ID, a.ID)
			}
			// Provably running — and its cells provably in flight — when
			// the cancel lands.
			if err := s.Cancel(a.ID); err != nil {
				t.Fatal(err)
			}
			close(gate(seed)) // let the in-flight cells finish
			<-a.Done()
			if st := a.Status(); st != StatusCancelled {
				t.Fatalf("cancelled-running job status %v", st)
			}
			if _, ok := a.Table(); ok {
				t.Fatal("cancelled job rendered a table")
			}
			// Terminal cancels are no-ops, not errors.
			if err := s.Cancel(a.ID); err != nil {
				t.Fatalf("re-cancel errored: %v", err)
			}
		}},
		{"queue-full-429-race", func(t *testing.T, s *Scheduler, running <-chan *Job) {
			seedA := nextGateSeed()
			a := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: seedA, Cells: 1})
			if got := <-running; got.ID != a.ID {
				t.Fatalf("running job %s, want %s", got.ID, a.ID)
			}
			b := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1})
			// Queue depth 1 is spent: the next submission bounces.
			if _, err := s.Submit(Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1}); !errors.Is(err, ErrQueueFull) {
				t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
			}
			// Cancelling the queued occupant frees its slot immediately —
			// the tenant scheduler removes it from its lane queue, no
			// executor pop required.
			if err := s.Cancel(b.ID); err != nil {
				t.Fatal(err)
			}
			<-b.Done()
			// ...and exactly once: a terminal re-cancel must not free a
			// second slot, so after one replacement fills the queue the
			// next submission bounces again.
			if err := s.Cancel(b.ID); err != nil {
				t.Fatalf("re-cancel errored: %v", err)
			}
			seedD := nextGateSeed()
			d := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: seedD, Cells: 1})
			if _, err := s.Submit(Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1}); !errors.Is(err, ErrQueueFull) {
				t.Fatalf("post-refill submit err = %v, want ErrQueueFull (cancel must free exactly one slot)", err)
			}
			// Release the runner; the replacement (never the cancelled
			// corpse) runs next.
			gate(seedA) <- struct{}{}
			<-a.Done()
			if got := <-running; got.ID != d.ID {
				t.Fatalf("running job %s, want %s (cancelled corpse must be skipped)", got.ID, d.ID)
			}
			gate(seedD) <- struct{}{}
			<-d.Done()
			if st := d.Status(); st != StatusDone {
				t.Fatalf("post-race job status %v", st)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScheduler(Config{QueueDepth: 1, Executors: 1, Workers: 2})
			running := make(chan *Job, 8)
			s.hooks.jobRunning = func(j *Job) { running <- j }
			t.Cleanup(s.Close)
			tc.run(t, s, running)
		})
	}
}

func mustSubmit(t *testing.T, s *Scheduler, req Request) *Job {
	t.Helper()
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// Drain lets running work finish: submissions stop immediately, the
// in-flight job completes (not cancelled), and Drain returns clean.
func TestDrainFinishesRunningJobs(t *testing.T) {
	s := NewScheduler(Config{QueueDepth: 2, Executors: 1, Workers: 1})
	running := make(chan *Job, 1)
	s.hooks.jobRunning = func(j *Job) { running <- j }
	t.Cleanup(s.Close)

	seed := nextGateSeed()
	a := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: seed, Cells: 1})
	<-running

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Drain's first act is flipping closed under the lock; spin until it
	// has (no timing assumptions, just scheduling).
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			break
		}
		runtime.Gosched()
	}
	// Admission is already stopped while the job still runs.
	if _, err := s.Submit(Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1}); err == nil || errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit during drain err = %v, want scheduler-closed rejection", err)
	}

	gate(seed) <- struct{}{}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-a.Done()
	if st := a.Status(); st != StatusDone {
		t.Fatalf("drained job status %v, want done (drain must not cancel)", st)
	}
}

// A drain that blows its deadline cancels the stragglers and reports
// the deadline; the daemon then exits anyway.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s := NewScheduler(Config{QueueDepth: 2, Executors: 1, Workers: 1})
	running := make(chan *Job, 1)
	s.hooks.jobRunning = func(j *Job) { running <- j }

	seed := nextGateSeed()
	a := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: seed, Cells: 1})
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already blown: the drain must cut straight to cancellation
	if err := s.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain err = %v, want context.Canceled", err)
	}
	close(gate(seed)) // let the wedged cell return so the executor can exit
	<-a.Done()
	if st := a.Status(); st != StatusCancelled {
		t.Fatalf("straggler status %v, want cancelled", st)
	}
	s.Close()
}

// The daemon's SIGTERM path, on the in-process server: the front end
// stops, new submissions are refused, the running job drains to
// completion (never cancelled), and its result stays fetchable — the
// exact sequence cmd/icegated walks before exiting 0.
func TestGracefulShutdownInProcessServer(t *testing.T) {
	s := NewScheduler(Config{QueueDepth: 2, Executors: 1, Workers: 1})
	running := make(chan *Job, 1)
	s.hooks.jobRunning = func(j *Job) { running <- j }
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })

	seed := nextGateSeed()
	v, code := submit(t, ts, Request{Scenario: "test-gated", Seed: seed, Cells: 1})
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	<-running

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			break
		}
		runtime.Gosched()
	}
	if _, code := submit(t, ts, Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1}); code != http.StatusBadRequest {
		t.Fatalf("submit during drain = %d, want refusal", code)
	}

	gate(seed) <- struct{}{}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	job, _ := s.Get(v.ID)
	<-job.Done()
	if st := job.Status(); st != StatusDone {
		t.Fatalf("job after graceful shutdown: %v, want done", st)
	}
	table, _, code := getResult(t, ts, v.ID)
	if code != http.StatusOK || !strings.HasPrefix(table, "scenario test-gated") {
		t.Fatalf("result after drain = %d:\n%s", code, table)
	}
}

// The scheduler reports its backend in /metrics, and a local scheduler
// runs experiment jobs with a nil engine (pure in-process).
func TestBackendSurfacedInMetrics(t *testing.T) {
	s := NewScheduler(Config{})
	t.Cleanup(s.Close)
	if got := s.Backend().Name(); got != "local" {
		t.Fatalf("default backend %q", got)
	}
	if s.Backend().Engine() != nil {
		t.Fatal("local backend has a non-nil engine")
	}
	m := s.renderMetrics()
	if want := `icegate_backend{name="local"} 1`; !strings.Contains(m, want) {
		t.Fatalf("metrics missing %q:\n%s", want, m)
	}
}
