package icegate

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/icescope"
)

// The trace endpoint's contract end to end: untraced jobs 404, live
// traced jobs 202, terminal traced jobs return a text tree whose spans
// cover the job lifecycle, and ?format=chrome yields valid trace-event
// JSON — all without changing the rendered table (trace is a serving
// knob, so the traced request is even served from the untraced one's
// cache line).
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 2})

	plain := Request{Scenario: fleet.ScenarioPCASupervised, Seed: 17, Cells: 2, DurationS: 300}
	v, code := submit(t, ts, plain)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	if v = waitDone(t, ts, v.ID); v.Status != StatusDone {
		t.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	if code, _ := get(t, ts, "/api/v1/jobs/"+v.ID+"/trace"); code != http.StatusNotFound {
		t.Fatalf("trace of untraced job = %d, want 404", code)
	}
	plainTable := fetchResult(t, ts, v.ID)

	traced := plain
	traced.Trace = true
	tv, code := submit(t, ts, traced)
	if code != http.StatusCreated {
		t.Fatalf("traced submit = %d", code)
	}
	if tv = waitDone(t, ts, tv.ID); tv.Status != StatusDone {
		t.Fatalf("traced job ended %s: %s", tv.Status, tv.Error)
	}
	// Trace is not part of result identity: same cache line, same bytes.
	if !tv.Cached {
		t.Error("traced resubmission missed the cache — Trace leaked into the key")
	}
	if got := fetchResult(t, ts, tv.ID); got != plainTable {
		t.Errorf("traced table differs from untraced:\n%s\nvs\n%s", got, plainTable)
	}

	code, text := get(t, ts, "/api/v1/jobs/"+tv.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace fetch = %d: %s", code, text)
	}
	for _, want := range []string{"job " + tv.ID, "queued", "cache hit"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace tree missing %q:\n%s", want, text)
		}
	}

	code, raw := get(t, ts, "/api/v1/jobs/"+tv.ID+"/trace?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome trace fetch = %d", code)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(raw), &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, raw)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

// An uncached traced job records the executor-side spans — run, build
// spec, merge, and the fleet's per-cell leaves — not just lifecycle
// bookkeeping.
func TestJobTraceRecordsExecutionSpans(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 2})
	req := Request{Scenario: fleet.ScenarioPCASupervised, Seed: 23, Cells: 3, DurationS: 300, Trace: true}
	v, code := submit(t, ts, req)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	if v = waitDone(t, ts, v.ID); v.Status != StatusDone {
		t.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	code, text := get(t, ts, "/api/v1/jobs/"+v.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace fetch = %d", code)
	}
	for _, want := range []string{"run", "build spec", "merge", "cell run", "proto build"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing execution span %q:\n%s", want, text)
		}
	}
}

// TraceSample force-traces every Nth submission without clients opting
// in: with N=2, the 2nd and 4th jobs expose a trace and the others 404.
// Sampling must not leak into result identity — the sampled job is
// served from the unsampled one's cache line.
func TestTraceSampleForcesEveryNthJob(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 8, Executors: 1, Workers: 2, TraceSample: 2})

	wantTraced := map[int]bool{1: false, 2: true, 3: false, 4: true}
	for i := 1; i <= 4; i++ {
		// Distinct seeds except job 3, which repeats job 1 (cache-hit path).
		seed := int64(40 + i)
		if i == 3 {
			seed = 41
		}
		req := Request{Scenario: fleet.ScenarioPCASupervised, Seed: seed, Cells: 1, DurationS: 300}
		v, code := submit(t, ts, req)
		if code != http.StatusCreated {
			t.Fatalf("submit %d = %d", i, code)
		}
		if v = waitDone(t, ts, v.ID); v.Status != StatusDone {
			t.Fatalf("job %d ended %s: %s", i, v.Status, v.Error)
		}
		code, _ = get(t, ts, "/api/v1/jobs/"+v.ID+"/trace")
		if wantTraced[i] && code != http.StatusOK {
			t.Errorf("sampled job %d trace = %d, want 200", i, code)
		}
		if !wantTraced[i] && code != http.StatusNotFound {
			t.Errorf("unsampled job %d trace = %d, want 404", i, code)
		}
		if i == 3 && !v.Cached {
			t.Error("unsampled repeat of job 1 missed the cache — sampling leaked into the key")
		}
	}
}

// The gateway's full exposition — registry plus any backend suffix —
// must satisfy the icescope linter, and the hand-picked lines CI greps
// for must survive the registry rewrite byte for byte.
func TestGatewayExpositionLints(t *testing.T) {
	s, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 2})
	req := Request{Scenario: fleet.ScenarioPCASupervised, Seed: 29, Cells: 1, DurationS: 300}
	v, code := submit(t, ts, req)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, ts, v.ID)
	if v, _ = submit(t, ts, req); !v.Cached {
		t.Fatal("resubmission not cached")
	}

	text := s.renderMetrics()
	if err := icescope.Lint(text); err != nil {
		t.Fatalf("gateway exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"icegate_cache_hits_total 1\n",
		"icegate_jobs_done_total 2\n",
		`icegate_backend{name="local"} 1` + "\n",
		"# TYPE icegate_cell_seconds histogram\n",
		"# HELP icegate_queue_depth ",
		"icescope_spans_dropped_total 0\n",
		"icescope_span_events_dropped_total 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// The events endpoint's contract end to end: unknown jobs and untraced
// jobs 404, a queued/running traced job streams span events live (the
// lifecycle spans arrive while the job is still running), a terminal
// job replays its whole stream and closes with a done line, and a
// cache-hit job streams its replay without erroring — all without
// changing the rendered table even with a subscriber attached mid-run.
func TestJobEventsEndpoint(t *testing.T) {
	s, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 2})

	if code, _ := get(t, ts, "/api/v1/jobs/nope/events"); code != http.StatusNotFound {
		t.Fatalf("events of unknown job = %d, want 404", code)
	}

	plain := Request{Scenario: fleet.ScenarioPCASupervised, Seed: 31, Cells: 2, DurationS: 300}
	v, code := submit(t, ts, plain)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	if v = waitDone(t, ts, v.ID); v.Status != StatusDone {
		t.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	if code, _ := get(t, ts, "/api/v1/jobs/"+v.ID+"/events"); code != http.StatusNotFound {
		t.Fatalf("events of untraced job = %d, want 404", code)
	}
	plainTable := fetchResult(t, ts, v.ID)

	// Hold the next job in "running" so the live half of the stream is
	// observable deterministically.
	running := make(chan struct{})
	release := make(chan struct{})
	s.hooks.jobRunning = func(*Job) { close(running); <-release }

	traced := plain
	traced.Seed = 37 // fresh cache line: the job must actually execute
	traced.Trace = true
	tv, code := submit(t, ts, traced)
	if code != http.StatusCreated {
		t.Fatalf("traced submit = %d", code)
	}
	<-running

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + tv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream = %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	readLine := func() EventLine {
		t.Helper()
		var l EventLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("events stream decode: %v", err)
		}
		return l
	}
	// The job is running, not terminal: its lifecycle events must be on
	// the stream already. start(job), start(queued), end(queued),
	// start(run).
	wantLive := []struct{ kind, name string }{
		{"start", "job " + tv.ID}, {"start", "queued"}, {"end", "queued"}, {"start", "run"},
	}
	for i, want := range wantLive {
		l := readLine()
		if l.Kind != want.kind || l.Name != want.name {
			t.Fatalf("live event %d = %s %q, want %s %q", i, l.Kind, l.Name, want.kind, want.name)
		}
		if l.Done {
			t.Fatalf("stream terminated while the job was running: %+v", l)
		}
	}
	close(release)
	// Drain to the terminal line: the stream must close itself with the
	// final status once the job is terminal.
	var last EventLine
	for {
		l := readLine()
		if l.Done {
			last = l
			break
		}
	}
	if last.Status != StatusDone {
		t.Fatalf("terminal event line status = %s, want done", last.Status)
	}
	if err := dec.Decode(&EventLine{}); err != io.EOF {
		t.Fatalf("stream not closed after the done line: %v", err)
	}

	// Byte-identity with a subscriber attached: same table as untraced.
	if tv = waitDone(t, ts, tv.ID); tv.Status != StatusDone {
		t.Fatalf("traced job ended %s: %s", tv.Status, tv.Error)
	}
	s.hooks.jobRunning = nil
	tracedPlain := plain
	tracedPlain.Seed = 37
	pv, _ := submit(t, ts, tracedPlain)
	if pv = waitDone(t, ts, pv.ID); pv.Status != StatusDone {
		t.Fatalf("comparison job ended %s", pv.Status)
	}
	if got, want := fetchResult(t, ts, tv.ID), fetchResult(t, ts, pv.ID); got != want {
		t.Errorf("traced table differs from untraced with a subscriber attached:\n%s\nvs\n%s", got, want)
	}
	_ = plainTable // tables differ across seeds; identity is per-request

	// Terminal job: replay and close. Every event arrives at once, the
	// last line is the terminal record.
	code, body := get(t, ts, "/api/v1/jobs/"+tv.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("terminal events = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 5 {
		t.Fatalf("terminal replay has %d lines, want >= 5:\n%s", len(lines), body)
	}
	var terminal EventLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &terminal); err != nil {
		t.Fatal(err)
	}
	if !terminal.Done || terminal.Status != StatusDone {
		t.Fatalf("terminal replay last line = %+v", terminal)
	}

	// Cache hit: the identical traced request finishes at Submit; its
	// events stream replays and closes without erroring.
	cv, code := submit(t, ts, traced)
	if code != http.StatusCreated {
		t.Fatalf("cache-hit submit = %d", code)
	}
	if !cv.Cached {
		t.Fatal("resubmission missed the cache")
	}
	code, body = get(t, ts, "/api/v1/jobs/"+cv.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("cache-hit events = %d", code)
	}
	lines = strings.Split(strings.TrimSpace(body), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &terminal); err != nil {
		t.Fatal(err)
	}
	if !terminal.Done || terminal.Status != StatusDone {
		t.Fatalf("cache-hit events last line = %+v", terminal)
	}
	var sawCacheHit bool
	for _, ln := range lines {
		var l EventLine
		_ = json.Unmarshal([]byte(ln), &l)
		if l.Kind == "instant" && l.Name == "cache hit" {
			sawCacheHit = true
		}
	}
	if !sawCacheHit {
		t.Errorf("cache-hit replay missing the 'cache hit' instant:\n%s", body)
	}
}

// get fetches a path from the test server and returns (status, body).
func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// fetchResult returns the rendered table of a done job.
func fetchResult(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	code, body := get(t, ts, "/api/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result fetch = %d: %s", code, body)
	}
	return body
}
