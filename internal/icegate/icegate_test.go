package icegate

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

// The tests register one extra scenario whose cells block on a per-seed
// gate, so a job can be held mid-flight deterministically: each token
// sent to the gate releases exactly one cell.
var testGates sync.Map // seed -> chan struct{}

func gate(seed int64) chan struct{} {
	ch, _ := testGates.LoadOrStore(seed, make(chan struct{}))
	return ch.(chan struct{})
}

func init() {
	fleet.Register("test-gated", func(p fleet.Params) fleet.Spec {
		return fleet.Spec{
			Name:  "test-gated",
			Seed:  p.Seed,
			Cells: p.Cells,
			Run: func(c fleet.Cell) (fleet.Metrics, error) {
				<-gate(p.Seed)
				return fleet.Metrics{"index": float64(c.Index)}, nil
			},
		}
	})
}

func newTestGateway(t *testing.T, cfg Config) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := NewScheduler(cfg)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req Request) (View, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.Status.terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return View{}
}

func getResult(t *testing.T, ts *httptest.Server, id string) (string, string, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("X-Icegate-Cached"), resp.StatusCode
}

// The acceptance criterion for the deterministic cache: two identical
// submissions return byte-identical tables, the second served from cache
// without simulating.
func TestIdenticalSubmissionsServedFromCacheByteIdentical(t *testing.T) {
	s, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 4})

	req := Request{Scenario: fleet.ScenarioPCASupervised, Seed: 42, Cells: 3, DurationS: 600}
	v1, code := submit(t, ts, req)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	if v1.Cached {
		t.Fatal("first submission claims cached")
	}
	waitDone(t, ts, v1.ID)
	table1, cached1, code := getResult(t, ts, v1.ID)
	if code != http.StatusOK || cached1 != "false" {
		t.Fatalf("first result code=%d cached=%s", code, cached1)
	}
	if !strings.HasPrefix(table1, "scenario pca-supervised seed=42 cells=3\n") {
		t.Fatalf("unexpected table header:\n%s", table1)
	}

	v2, code := submit(t, ts, req)
	if code != http.StatusCreated {
		t.Fatalf("second submit = %d", code)
	}
	if !v2.Cached || v2.Status != StatusDone {
		t.Fatalf("second submission not served from cache: %+v", v2)
	}
	table2, cached2, code := getResult(t, ts, v2.ID)
	if code != http.StatusOK || cached2 != "true" {
		t.Fatalf("second result code=%d cached=%s", code, cached2)
	}
	if table1 != table2 {
		t.Fatalf("cached table differs:\n%s\nvs\n%s", table1, table2)
	}
	if hits, _, _ := s.Cache().Stats(); hits != 1 {
		t.Fatalf("cache hits = %d", hits)
	}

	// A semantically identical request with defaults spelled differently
	// must hit the same cache line.
	if (Request{Scenario: "x", Cells: 0, Seed: 0}).Key() != (Request{Scenario: "x", Cells: 1, Seed: 1}).Key() {
		t.Fatal("normalized requests key differently")
	}
}

// The acceptance criterion for serving: a multi-cell job streams NDJSON
// per-cell results as cells complete, while a concurrent job on another
// executor is cancelled via its context.
func TestStreamsCellsWhileConcurrentJobCancelled(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 8, Executors: 2, Workers: 2})

	streamSeed, victimSeed := nextGateSeed(), nextGateSeed()
	streamJob, code := submit(t, ts, Request{Scenario: "test-gated", Seed: streamSeed, Cells: 3})
	if code != http.StatusCreated {
		t.Fatalf("submit stream job = %d", code)
	}
	victim, code := submit(t, ts, Request{Scenario: "test-gated", Seed: victimSeed, Cells: 2})
	if code != http.StatusCreated {
		t.Fatalf("submit victim job = %d", code)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + streamJob.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	readLine := func() streamLine {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		return l
	}

	// Cancel the concurrent job mid-flight: its two cells are blocked on
	// their gate, so it is provably running when the DELETE lands.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+victim.ID, nil)
	if resp, err := http.DefaultClient.Do(delReq); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	// Release the streaming job one cell at a time; each token must yield
	// one NDJSON cell line while the remaining cells are still blocked —
	// the incremental-delivery proof.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		gate(streamSeed) <- struct{}{}
		l := readLine()
		if l.Cell == nil {
			t.Fatalf("expected cell line, got %+v", l)
		}
		if seen[l.Cell.Index] {
			t.Fatalf("cell %d streamed twice", l.Cell.Index)
		}
		seen[l.Cell.Index] = true
		if l.Cell.Metrics["index"] != float64(l.Cell.Index) {
			t.Fatalf("cell %d carries wrong metrics: %+v", l.Cell.Index, l.Cell)
		}
	}
	final := readLine()
	if !final.Done || final.Status != StatusDone {
		t.Fatalf("terminal line = %+v", final)
	}
	for i := 0; i < 3; i++ {
		if !seen[i] {
			t.Fatalf("cell %d never streamed (saw %v)", i, seen)
		}
	}

	// Unblock the victim's in-flight cells; the job must still end
	// cancelled because its context was cancelled while they ran.
	close(gate(victimSeed))
	if v := waitDone(t, ts, victim.ID); v.Status != StatusCancelled {
		t.Fatalf("victim status = %+v", v)
	}
}

// Admission control: a full queue answers 429 without registering a job,
// and a queued job can be cancelled before it ever runs.
func TestQueueFullRejectsWith429(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 1, Executors: 1, Workers: 1})

	runSeed := nextGateSeed()
	running, code := submit(t, ts, Request{Scenario: "test-gated", Seed: runSeed, Cells: 1})
	if code != http.StatusCreated {
		t.Fatalf("submit running = %d", code)
	}
	// Occupying the executor takes a moment; poll until it leaves the queue.
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, ts, running.ID).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}

	queued, code := submit(t, ts, Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1})
	if code != http.StatusCreated {
		t.Fatalf("submit queued = %d", code)
	}
	if _, code := submit(t, ts, Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1}); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", code)
	}

	// Cancel the queued job; it must go terminal without running.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := getJob(t, ts, queued.ID); v.Status != StatusCancelled {
		t.Fatalf("queued job after cancel: %+v", v)
	}

	close(gate(runSeed))
	if v := waitDone(t, ts, running.ID); v.Status != StatusDone {
		t.Fatalf("running job finished as %+v", v)
	}
}

// The gateway serves the experiment catalog too: a remote table render is
// byte-identical to calling the runner in-process.
func TestExperimentJobMatchesLocalRender(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 2})
	v, code := submit(t, ts, Request{Exp: "E12"})
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, ts, v.ID)
	remote, _, code := getResult(t, ts, v.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, remote)
	}
	local, err := experiments.Run("E12", experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if remote != local.String() {
		t.Fatalf("remote render differs:\n%s\nvs\n%s", remote, local)
	}
}

// Bad submissions are 400s, the scenario list covers the fleet registry,
// and /metrics exposes queue and cache state.
func TestListValidationAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 1})

	for _, bad := range []Request{
		{},                                      // neither scenario nor exp
		{Scenario: "pca-supervised", Exp: "F1"}, // both
		{Scenario: "no-such-scenario"},
		{Exp: "E99"},
		{Scenario: "pca-supervised", Cells: -1},
		{Exp: "F1", DurationS: 60}, // duration on a table job
		// A knob the scenario never reads would cache a nominal run under
		// the mistyped key; the declaration check rejects it instead.
		{Scenario: "pca-commfault", Knobs: map[string]float64{"losss": 0.1}},
		{Scenario: "pca-supervised", Knobs: map[string]float64{"loss": 0.1}},
	} {
		if _, code := submit(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("bad request %+v accepted with %d", bad, code)
		}
	}

	resp, err := http.Get(ts.URL + "/api/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var listing map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, want := fmt.Sprint(listing["scenarios"]), fmt.Sprint(fleet.Names()); got != want {
		t.Fatalf("scenario list %s != fleet registry %s", got, want)
	}
	if len(listing["experiments"]) != len(experiments.IDs()) {
		t.Fatalf("experiment list %v", listing["experiments"])
	}

	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	for _, want := range []string{
		"icegate_queue_depth ", "icegate_queue_capacity 4",
		"icegate_cache_hits_total ", "icegate_cells_per_second ",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if resp, err := http.Get(ts.URL + "/api/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job = %d", resp.StatusCode)
		}
	}
}

// The daemon's job registry is bounded: beyond RetainJobs, the oldest
// terminal jobs are evicted (their results survive in the cache), while
// live jobs are never touched.
func TestTerminalJobsEvictedBeyondRetention(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 8, Executors: 1, Workers: 1, RetainJobs: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		// Distinct seeds so each submission is a distinct cache key.
		v, code := submit(t, ts, Request{Exp: "E12", Seed: int64(i + 1)})
		if code != http.StatusCreated {
			t.Fatalf("submit %d = %d", i, code)
		}
		waitDone(t, ts, v.ID)
		ids = append(ids, v.ID)
	}

	wantCode := func(id string, want int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("job %s status code = %d, want %d", id, resp.StatusCode, want)
		}
	}
	wantCode(ids[0], http.StatusNotFound) // evicted
	wantCode(ids[1], http.StatusNotFound) // evicted
	wantCode(ids[2], http.StatusOK)
	wantCode(ids[3], http.StatusOK)
}
