package icegate

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fleet"
)

func scrapeMetric(t *testing.T, ts *httptest.Server, name string) uint64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	prefix := fmt.Sprintf("icegate_%s ", name)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseUint(strings.TrimPrefix(line, prefix), 10, 64)
			if err != nil {
				t.Fatalf("unparseable %s line %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s missing:\n%s", name, body)
	return 0
}

// /metrics must report the aggregate kernel-event total of executed
// scenario cells — true engine throughput, not job counting — and cache
// hits must not inflate it (a replayed result simulates nothing).
func TestMetricsReportSimEvents(t *testing.T) {
	_, ts := newTestGateway(t, Config{QueueDepth: 4, Executors: 1, Workers: 2})
	if got := scrapeMetric(t, ts, "sim_events_total"); got != 0 {
		t.Fatalf("sim_events_total = %d before any job", got)
	}

	req := Request{Scenario: fleet.ScenarioPCASupervised, Seed: 91, Cells: 2, DurationS: 300}
	v, code := submit(t, ts, req)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	if v = waitDone(t, ts, v.ID); v.Status != StatusDone {
		t.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	ran := scrapeMetric(t, ts, "sim_events_total")
	if ran == 0 {
		t.Fatal("sim_events_total still 0 after a scenario job")
	}

	// Identical resubmission: served from cache, no new kernel events.
	v2, code := submit(t, ts, req)
	if code != http.StatusCreated || !v2.Cached {
		t.Fatalf("resubmission not cached: code=%d %+v", code, v2)
	}
	if got := scrapeMetric(t, ts, "sim_events_total"); got != ran {
		t.Fatalf("cache hit changed sim_events_total: %d -> %d", ran, got)
	}
	// The companion gauge exists (its value is wall-clock dependent).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "icegate_sim_events_per_second ") {
		t.Fatalf("sim_events_per_second missing:\n%s", body)
	}
}
