package icegate

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/icestore"
)

// contains aliases strings.Contains for metric-text assertions.
func contains(s, substr string) bool { return strings.Contains(s, substr) }

// The hostile-tenant suite: every test drives the scheduler with an
// adversarial load pattern and proves the isolation claim with hook and
// gate ordering alone — no sleeps, no timing assertions.

// newTenantScheduler builds a scheduler wired for hook-driven tests.
func newTenantScheduler(t *testing.T, cfg Config) (*Scheduler, <-chan *Job) {
	t.Helper()
	s := NewScheduler(cfg)
	running := make(chan *Job, 64)
	s.hooks.jobRunning = func(j *Job) { running <- j }
	t.Cleanup(s.Close)
	return s, running
}

// gatedReq builds a one-cell test-gated request with a fresh gate.
func gatedReq(tenant, lane string) Request {
	return Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1, Tenant: tenant, Lane: lane}
}

// releaseAndWait lets a running one-cell gated job finish.
func releaseAndWait(t *testing.T, j *Job) {
	t.Helper()
	close(gate(j.Req.Seed))
	<-j.Done()
}

// The headline fairness claim: a tenant flooding the batch lane with a
// large sweep cannot delay another tenant's interactive job by more than
// the one job already in flight. The flood is fully queued ahead of the
// interactive submission, yet the interactive job is dispatched the
// moment the in-flight slot frees.
func TestBatchFloodCannotStarveInteractive(t *testing.T) {
	s, running := newTenantScheduler(t, Config{QueueDepth: 32, Executors: 1, Workers: 2})

	// The hostile sweep: first job occupies the only executor, seven more
	// pile up in the batch lane.
	flood := make([]*Job, 0, 8)
	first := mustSubmit(t, s, gatedReq("sweeper", LaneBatch))
	flood = append(flood, first)
	if got := <-running; got.ID != first.ID {
		t.Fatalf("running %s, want flood head %s", got.ID, first.ID)
	}
	for i := 0; i < 7; i++ {
		flood = append(flood, mustSubmit(t, s, gatedReq("sweeper", LaneBatch)))
	}

	// The interactive job arrives dead last in submission order.
	inter := mustSubmit(t, s, gatedReq("clinician", LaneInteractive))
	if st := inter.Status(); st != StatusQueued {
		t.Fatalf("interactive job status %v, want queued", st)
	}

	// Free the in-flight slot. The next dispatch MUST be the interactive
	// job — seven earlier-submitted batch jobs notwithstanding.
	releaseAndWait(t, first)
	if got := <-running; got.ID != inter.ID {
		t.Fatalf("after slot freed, running %s (tenant %s), want interactive %s",
			got.ID, got.Req.Tenant, inter.ID)
	}
	releaseAndWait(t, inter)

	// Only then does the flood drain, FIFO.
	for i := 1; i < len(flood); i++ {
		got := <-running
		if got.ID != flood[i].ID {
			t.Fatalf("flood drained out of order: got %s, want %s", got.ID, flood[i].ID)
		}
		releaseAndWait(t, got)
	}

	// The lanes and tenants left their marks on the exposition.
	m := s.renderMetrics()
	for _, want := range []string{
		`icegate_tenant_jobs_submitted_total{tenant="sweeper"} 8`,
		`icegate_tenant_jobs_submitted_total{tenant="clinician"} 1`,
		`icegate_queue_wait_seconds_count{lane="batch"} 8`,
		`icegate_queue_wait_seconds_count{lane="interactive"} 1`,
	} {
		if !contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Weighted fair queueing inside one lane: with everything enqueued up
// front, a weight-3 tenant wins three dispatches for every one a
// weight-1 tenant gets, in the exact virtual-time order — deterministic
// because ties break by tenant name.
func TestWeightedFairInterleave(t *testing.T) {
	s, running := newTenantScheduler(t, Config{
		QueueDepth: 32, Executors: 1, Workers: 2,
		Tenants: TenantsConfig{Tenants: map[string]Quota{
			"heavy": {Weight: 3},
			"light": {Weight: 1},
		}},
	})

	// Park the executor on an anonymous blocker so both tenants' queues
	// fill before the first contested pop.
	blocker := mustSubmit(t, s, gatedReq("", LaneBatch))
	if got := <-running; got.ID != blocker.ID {
		t.Fatalf("running %s, want blocker", got.ID)
	}
	for i := 0; i < 6; i++ {
		mustSubmit(t, s, gatedReq("heavy", LaneBatch))
		mustSubmit(t, s, gatedReq("light", LaneBatch))
	}
	releaseAndWait(t, blocker)

	// Hand-computed stride schedule: heavy advances 1/3 per dispatch,
	// light 1 per dispatch, ties to "heavy" (name order), then light
	// drains its tail alone.
	want := []string{
		"heavy", "light", "heavy", "heavy", "heavy", "light",
		"heavy", "heavy", "light", "light", "light", "light",
	}
	var got []string
	for range want {
		j := <-running
		got = append(got, j.Req.Tenant)
		releaseAndWait(t, j)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d = %s, want %s (full order %v)", i, got[i], want[i], got)
		}
	}
}

// Per-tenant quotas reject with typed, Retry-After-carrying errors, and
// each limit counts exactly what it claims to.
func TestQuotaLimitsRejectWith429(t *testing.T) {
	s, running := newTenantScheduler(t, Config{
		QueueDepth: 32, Executors: 1, Workers: 2,
		Tenants: TenantsConfig{Tenants: map[string]Quota{
			"q": {MaxQueued: 1},
			"c": {MaxCells: 4},
		}},
	})
	blocker := mustSubmit(t, s, gatedReq("", LaneBatch))
	if got := <-running; got.ID != blocker.ID {
		t.Fatalf("running %s, want blocker", got.ID)
	}

	// MaxQueued counts admitted-not-running jobs only.
	mustSubmit(t, s, gatedReq("q", LaneBatch))
	_, err := s.Submit(gatedReq("q", LaneBatch))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "queued" || qe.Tenant != "q" {
		t.Fatalf("over-MaxQueued submit err = %v, want QuotaError(queued)", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("QuotaError must wrap ErrQueueFull for existing 429 mapping")
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("Retry-After hint %v, want >= 1s", qe.RetryAfter)
	}

	// MaxCells charges cells across queued+running and frees exactly once
	// on cancel.
	big := Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 3, Tenant: "c"}
	c1 := mustSubmit(t, s, big)
	if _, err := s.Submit(Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 2, Tenant: "c"}); !errors.As(err, &qe) || qe.Reason != "cells" {
		t.Fatalf("over-MaxCells submit err = %v, want QuotaError(cells)", err)
	}
	if _, err := s.Submit(gatedReq("c", LaneBatch)); err != nil {
		t.Fatalf("fitting submit rejected: %v", err) // 3+1 = 4 <= 4
	}
	if err := s.Cancel(c1.ID); err != nil {
		t.Fatal(err)
	}
	<-c1.Done()
	if err := s.Cancel(c1.ID); err != nil { // terminal re-cancel: no double free
		t.Fatal(err)
	}
	c2 := mustSubmit(t, s, Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 3, Tenant: "c"})
	if _, err := s.Submit(Request{Scenario: "test-gated", Seed: nextGateSeed(), Cells: 1, Tenant: "c"}); !errors.As(err, &qe) || qe.Reason != "cells" {
		t.Fatalf("cancel freed the charge more than once: err = %v", err)
	}
	_ = c2

	// Unblock and drain the three admitted jobs (q's first, c's fitting
	// job, c2); cancelled c1 never runs.
	releaseAndWait(t, blocker)
	for drained := 0; drained < 3; drained++ {
		got := <-running
		releaseAndWait(t, got)
	}
	if v := c1.View(); v.CellsDone != 0 {
		t.Fatalf("cancelled job executed %d cells", v.CellsDone)
	}
}

// MaxRunning caps concurrency without costing the tenant its queue
// place: a second executor stays available to other tenants while the
// capped tenant's next job waits for its own slot.
func TestMaxRunningYieldsExecutorToOthers(t *testing.T) {
	s, running := newTenantScheduler(t, Config{
		QueueDepth: 32, Executors: 2, Workers: 2,
		Tenants: TenantsConfig{Tenants: map[string]Quota{
			"r": {MaxRunning: 1},
		}},
	})

	r1 := mustSubmit(t, s, gatedReq("r", LaneBatch))
	if got := <-running; got.ID != r1.ID {
		t.Fatalf("running %s, want %s", got.ID, r1.ID)
	}
	r2 := mustSubmit(t, s, gatedReq("r", LaneBatch))

	// The free executor passes over r2 (tenant at cap) and takes the next
	// tenant's work instead.
	o1 := mustSubmit(t, s, gatedReq("other", LaneBatch))
	if got := <-running; got.ID != o1.ID {
		t.Fatalf("free executor ran %s, want other tenant's %s (r is at MaxRunning)", got.ID, o1.ID)
	}
	if st := r2.Status(); st != StatusQueued {
		t.Fatalf("capped tenant's second job status %v, want queued", st)
	}

	// r's slot frees, r2 dispatches.
	releaseAndWait(t, r1)
	if got := <-running; got.ID != r2.ID {
		t.Fatalf("after r's slot freed, running %s, want %s", got.ID, r2.ID)
	}
	releaseAndWait(t, r2)
	releaseAndWait(t, o1)
}

// A hostile client minting fresh tenant names hits the MaxTenants wall;
// configured tenants and the anonymous bucket always get through.
func TestTenantTableCapped(t *testing.T) {
	s, running := newTenantScheduler(t, Config{
		QueueDepth: 32, Executors: 1, Workers: 2,
		Tenants: TenantsConfig{
			MaxTenants: 2,
			Tenants:    map[string]Quota{"vip": {}},
		},
	})
	blocker := mustSubmit(t, s, gatedReq("", LaneBatch)) // anon occupies one table slot
	if got := <-running; got.ID != blocker.ID {
		t.Fatalf("running %s, want blocker", got.ID)
	}

	minted1 := mustSubmit(t, s, gatedReq("mint-1", LaneBatch))
	var qe *QuotaError
	if _, err := s.Submit(gatedReq("mint-2", LaneBatch)); !errors.As(err, &qe) || qe.Reason != "tenants" {
		t.Fatalf("minted tenant past cap: err = %v, want QuotaError(tenants)", err)
	}
	vip := mustSubmit(t, s, gatedReq("vip", LaneBatch)) // named: admitted past the cap
	anon2 := mustSubmit(t, s, gatedReq("", LaneBatch))  // anon: always admitted

	releaseAndWait(t, blocker)
	for _, j := range []*Job{minted1, vip, anon2} {
		_ = j
		got := <-running
		releaseAndWait(t, got)
	}

	// With everything drained the tenant table is empty again: state (and
	// metric label cardinality) tracks live tenants, not history.
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("tenant table holds %d entries after drain, want 0", n)
	}
}

// The -tenants file loader: good config round-trips, and the failure
// modes that would silently void quotas are hard errors.
func TestLoadTenantsValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json", `{
		"default": {"max_queued": 8, "max_cells": 1024},
		"tenants": {"sweeper": {"max_queued": 2, "weight": 1}, "clinician": {"weight": 4}},
		"max_tenants": 32
	}`)
	cfg, err := LoadTenants(good)
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if cfg.quotaFor("sweeper").MaxQueued != 2 || cfg.quotaFor("nobody").MaxQueued != 8 {
		t.Fatalf("quota resolution wrong: %+v", cfg)
	}
	if cfg.maxTenants() != 32 {
		t.Fatalf("maxTenants = %d, want 32", cfg.maxTenants())
	}
	if (TenantsConfig{}).maxTenants() != 64 {
		t.Fatalf("zero-config maxTenants = %d, want 64", TenantsConfig{}.maxTenants())
	}

	for name, body := range map[string]string{
		"typoed-field.json":  `{"default": {"max_qeued": 8}}`,
		"negative.json":      `{"default": {"max_cells": -1}}`,
		"bad-name.json":      `{"tenants": {"no spaces": {}}}`,
		"neg-tenants.json":   `{"max_tenants": -3}`,
		"not-even-json.json": `{`,
	} {
		if _, err := LoadTenants(write(name, body)); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
	if _, err := LoadTenants(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// Request-level tenant plumbing over HTTP: the header is authoritative,
// malformed identities are 400s, and both admission-rejection flavors
// carry a usable Retry-After.
func TestTenantHTTPSurface(t *testing.T) {
	s, ts := newTestGateway(t, Config{
		QueueDepth: 1, Executors: 1, Workers: 1,
		Tenants: TenantsConfig{Tenants: map[string]Quota{"alice": {MaxQueued: 1}}},
	})
	running := make(chan *Job, 8)
	s.hooks.jobRunning = func(j *Job) { running <- j }

	post := func(req Request, tenant string) (*http.Response, View) {
		t.Helper()
		resp, v := postJob(t, ts, req, tenant)
		return resp, v
	}

	// Header overrides the body field; defaults normalize into the view.
	blocker := gatedReq("ignored-body-tenant", "")
	resp, v := post(blocker, "alice")
	if resp.StatusCode != http.StatusCreated || v.Tenant != "alice" || v.Lane != LaneInteractive {
		t.Fatalf("header submit: code=%d view=%+v", resp.StatusCode, v)
	}
	bj := <-running

	// alice's quota: one queued job fits, the second is a 429 whose
	// Retry-After parses to a positive integer.
	if resp, _ := post(gatedReq("", ""), "alice"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("queued submit = %d", resp.StatusCode)
	}
	resp, _ = post(gatedReq("", ""), "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("quota 429 Retry-After %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}

	// The global queue (depth 1, occupied by alice's queued job) also
	// 429s, with the flat hint.
	resp, _ = post(gatedReq("", ""), "bob")
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("global-full submit: code=%d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Malformed identities are client errors, not quota rejections.
	if resp, _ := post(gatedReq("bad tenant!", ""), ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant name = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(gatedReq("", "bulk"), ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lane = %d, want 400", resp.StatusCode)
	}

	releaseAndWait(t, bj)
	q := <-running
	releaseAndWait(t, q)
}

// The disk store makes the cache restart-durable: a second scheduler on
// the same directory serves the first's result byte-identically, as a
// cache hit, without simulating — then promotes it to memory.
func TestStoreServesAcrossRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	open := func() *Scheduler {
		st, err := icestore.Open(icestore.Config{Dir: dir, MaxBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return NewScheduler(Config{QueueDepth: 4, Executors: 1, Workers: 2, Store: st})
	}
	req := Request{Scenario: fleet.ScenarioPCASupervised, Seed: 77, Cells: 3, DurationS: 300}

	s1 := open()
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	table1, ok := j1.Table()
	if !ok || j1.View().Cached {
		t.Fatalf("first run: ok=%v cached=%v", ok, j1.View().Cached)
	}
	if puts := s1.Store().Stats().Puts; puts != 1 {
		t.Fatalf("store puts after first run = %d, want 1", puts)
	}
	s1.Close()

	s2 := open()
	t.Cleanup(s2.Close)
	j2, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done() // store hits complete synchronously inside Submit
	v := j2.View()
	if !v.Cached || v.Status != StatusDone {
		t.Fatalf("restart submit not served from store: %+v", v)
	}
	if v.CellsDone != 3 {
		t.Fatalf("store hit replayed %d cells, want 3", v.CellsDone)
	}
	table2, _ := j2.Table()
	if table2 != table1 {
		t.Fatalf("restart table differs:\n--- first\n%s\n--- restart\n%s", table1, table2)
	}
	if hits := s2.Store().Stats().Hits; hits != 1 {
		t.Fatalf("store hits = %d, want 1", hits)
	}

	// Promotion: the hit landed in the in-memory cache, so a repeat stays
	// off the disk.
	j3, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j3.Done()
	if table3, _ := j3.Table(); table3 != table1 {
		t.Fatal("promoted entry differs from original")
	}
	if hits := s2.Store().Stats().Hits; hits != 1 {
		t.Fatalf("store hits after promotion = %d, want 1 (second repeat must hit memory)", hits)
	}

	if m := s2.renderMetrics(); !contains(m, "icegate_store_hits_total 1") {
		t.Fatalf("metrics missing store hit counter:\n%s", m)
	}
}

// postJob submits over HTTP with an explicit tenant header (empty means
// no header), returning the closed response and the decoded view on 201.
func postJob(t *testing.T, ts *httptest.Server, req Request, tenantHdr string) (*http.Response, View) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if tenantHdr != "" {
		hr.Header.Set(TenantHeader, tenantHdr)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}
