package icegate

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
	"time"
)

// Tenancy: every request carries a tenant identity (the X-Icegate-Tenant
// header, a "tenant" request field, or the anonymous default), and the
// scheduler enforces per-tenant quotas at admission plus weighted fair
// queueing between tenants at dispatch. Tenancy is a serving concern
// only — like worker width and tracing it never enters the result cache
// key, so two tenants submitting the same request share one cache line.

// AnonTenant is the identity of requests that declare none.
const AnonTenant = "anon"

// Priority lanes. Interactive is dispatched strictly before batch, so a
// tenant flooding the batch lane can never add more than the currently
// executing job's runtime to an interactive job's wait.
const (
	LaneInteractive = "interactive"
	LaneBatch       = "batch"
)

const numLanes = 2

// laneIndex maps a normalized lane name to its dispatch priority
// (lower = served first).
func laneIndex(lane string) int {
	if lane == LaneBatch {
		return 1
	}
	return 0
}

func laneName(idx int) string {
	if idx == 1 {
		return LaneBatch
	}
	return LaneInteractive
}

// tenantNameRE bounds tenant identities: they become metric label
// values and map keys, so arbitrary bytes and unbounded lengths are
// rejected at validation, not laundered.
var tenantNameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// Quota bounds one tenant's load on the gateway. The zero value is
// unlimited (weight 1): a gateway without a tenants file behaves
// exactly like the single-tenant gateway it used to be.
type Quota struct {
	MaxQueued  int `json:"max_queued,omitempty"`  // jobs admitted but not yet running; <=0 unlimited
	MaxRunning int `json:"max_running,omitempty"` // jobs executing concurrently; <=0 unlimited
	MaxCells   int `json:"max_cells,omitempty"`   // cells in flight across queued+running jobs; <=0 unlimited
	Weight     int `json:"weight,omitempty"`      // fair-share weight; <=0 means 1
}

// TenantsConfig is the icegated -tenants file: named tenants with their
// quotas, the default quota applied to everyone else (including anon),
// and a cap on how many distinct tenant identities the scheduler will
// track (label cardinality is memory; a hostile client minting fresh
// names must hit a wall).
type TenantsConfig struct {
	Default    Quota            `json:"default"`
	Tenants    map[string]Quota `json:"tenants,omitempty"`
	MaxTenants int              `json:"max_tenants,omitempty"` // <=0 means 64
}

func (c TenantsConfig) maxTenants() int {
	n := c.MaxTenants
	if n <= 0 {
		n = 64
	}
	// Named tenants are always admitted; the cap must leave room for
	// them plus at least the anonymous bucket.
	if min := len(c.Tenants) + 1; n < min {
		n = min
	}
	return n
}

// quotaFor resolves the quota a tenant name is subject to.
func (c TenantsConfig) quotaFor(name string) Quota {
	if q, ok := c.Tenants[name]; ok {
		return q
	}
	return c.Default
}

// Validate rejects configurations that could never be meant: negative
// limits and tenant names that would be rejected at request time.
func (c TenantsConfig) Validate() error {
	check := func(who string, q Quota) error {
		if q.MaxQueued < 0 || q.MaxRunning < 0 || q.MaxCells < 0 || q.Weight < 0 {
			return fmt.Errorf("icegate: tenant %q has a negative quota: %+v", who, q)
		}
		return nil
	}
	if err := check("default", c.Default); err != nil {
		return err
	}
	if c.MaxTenants < 0 {
		return fmt.Errorf("icegate: negative max_tenants %d", c.MaxTenants)
	}
	for name, q := range c.Tenants {
		if !tenantNameRE.MatchString(name) {
			return fmt.Errorf("icegate: bad tenant name %q (want %s)", name, tenantNameRE)
		}
		if err := check(name, q); err != nil {
			return err
		}
	}
	return nil
}

// LoadTenants reads and validates a -tenants JSON file. Unknown fields
// are rejected: a typoed "max_qeued" silently meaning "unlimited" is
// exactly the kind of quota hole this file exists to close.
func LoadTenants(path string) (TenantsConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return TenantsConfig{}, fmt.Errorf("icegate: tenants file: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var cfg TenantsConfig
	if err := dec.Decode(&cfg); err != nil {
		return TenantsConfig{}, fmt.Errorf("icegate: tenants file %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return TenantsConfig{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return cfg, nil
}

// QuotaError is admission control's per-tenant rejection: the HTTP
// layer maps it to 429 Too Many Requests with a Retry-After header.
// It wraps ErrQueueFull so existing errors.Is checks (and clients that
// treat every 429 as transient) keep working.
type QuotaError struct {
	Tenant     string
	Reason     string // which limit tripped: "queued", "cells", "tenants"
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("icegate: tenant %q over quota (%s), retry in %s", e.Tenant, e.Reason, e.RetryAfter)
}

// Unwrap ties QuotaError into the ErrQueueFull family: both are "back
// off and retry" admissions failures.
func (e *QuotaError) Unwrap() error { return ErrQueueFull }

var errSchedulerClosed = errors.New("icegate: scheduler closed")

// tenantState is the scheduler's per-tenant bookkeeping: the quota, the
// per-lane FIFO queues, the in-flight accounting the quota is enforced
// against, and the weighted-fair-queueing virtual time. All fields are
// guarded by Scheduler.mu.
type tenantState struct {
	name string
	q    Quota

	// pass is the tenant's WFQ virtual time: advanced by cost/weight at
	// every dispatch, so tenants with more weight advance slower and win
	// more dispatches. The runnable tenant with the smallest pass goes
	// next; ties break by name for determinism.
	pass float64

	queues  [numLanes][]*Job
	queued  int // jobs admitted but not yet dispatched, across lanes
	running int // jobs executing now
	cells   int // cells in flight across queued+running jobs
}

func (t *tenantState) weight() float64 {
	if t.q.Weight <= 0 {
		return 1
	}
	return float64(t.q.Weight)
}

func (t *tenantState) active() bool { return t.queued > 0 || t.running > 0 }
