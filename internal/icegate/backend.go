package icegate

import "repro/internal/fleet"

// Backend is where a job's fleet cells execute: this process's worker
// pool, or a distribution engine that fans them out across a cluster.
// The gateway's contract makes the choice invisible to clients — the
// fleet's determinism guarantee holds across processes, so the cache,
// admission control, and NDJSON streaming behave identically on every
// backend; only capacity changes.
//
// internal/icemesh's Coordinator satisfies this interface structurally
// (Name "mesh", Engine = itself), which is how cmd/icegated plugs a
// worker cluster in without icegate importing icemesh.
type Backend interface {
	// Name labels the backend in /metrics and logs ("local", "mesh").
	Name() string
	// Engine is the fleet engine jobs run on; nil means in-process.
	Engine() fleet.Engine
}

// backendMetrics is the optional extra a backend can implement to
// append its own gauges (node liveness, shard retries, per-node
// throughput) to the gateway's /metrics.
type backendMetrics interface {
	MetricsText() string
}

// LocalBackend is the default Backend: cells execute on the scheduler's
// own worker pool.
type LocalBackend struct{}

// Name implements Backend.
func (LocalBackend) Name() string { return "local" }

// Engine implements Backend: nil selects the in-process pool.
func (LocalBackend) Engine() fleet.Engine { return nil }
