package icegate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icescope"
	"repro/internal/sim"
)

// Request describes one servable job: either a fleet scenario ensemble
// (Scenario set to a fleet registry name) or a DESIGN.md experiment table
// (Exp set to a catalog ID). Exactly one of the two must be set.
//
// Worker-pool width is deliberately NOT part of a request: the fleet's
// determinism contract makes results byte-identical at any width, so
// parallelism is a server deployment knob, never a result-identity one.
type Request struct {
	Scenario  string             `json:"scenario,omitempty"`
	Exp       string             `json:"exp,omitempty"`
	Seed      int64              `json:"seed,omitempty"`
	Cells     int                `json:"cells,omitempty"`
	DurationS float64            `json:"duration_s,omitempty"` // scenario horizon; 0 = scenario default
	Knobs     map[string]float64 `json:"knobs,omitempty"`

	// Trace opts this job into icescope span recording, retrievable from
	// GET /jobs/{id}/trace once the job is terminal. Like worker width it
	// is a serving knob, NOT part of result identity: results are byte-
	// identical with tracing on or off, so Key() ignores it and a traced
	// request can be served from an untraced request's cache line.
	Trace bool `json:"trace,omitempty"`

	// Tenant identifies who is submitting, for quota accounting and fair
	// scheduling; empty means AnonTenant. Lane picks the dispatch
	// priority lane: LaneInteractive (the default) is always served
	// before LaneBatch, so bulk sweeps belong in "batch". Both are
	// serving knobs like Trace — they never enter Key(), so every tenant
	// shares one cache line per result.
	Tenant string `json:"tenant,omitempty"`
	Lane   string `json:"lane,omitempty"`
}

// Validate rejects requests that could never run or whose key would be
// unstable (non-finite numbers break cache-key equality).
func (r Request) Validate() error {
	if (r.Scenario == "") == (r.Exp == "") {
		return errors.New("icegate: request must set exactly one of scenario, exp")
	}
	if r.Cells < 0 {
		return fmt.Errorf("icegate: negative cells %d", r.Cells)
	}
	if r.DurationS < 0 || math.IsNaN(r.DurationS) || math.IsInf(r.DurationS, 0) {
		return fmt.Errorf("icegate: bad duration_s %v", r.DurationS)
	}
	for k, v := range r.Knobs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("icegate: knob %q is not finite", k)
		}
	}
	if r.Tenant != "" && !tenantNameRE.MatchString(r.Tenant) {
		return fmt.Errorf("icegate: bad tenant %q (want %s)", r.Tenant, tenantNameRE)
	}
	if r.Lane != "" && r.Lane != LaneInteractive && r.Lane != LaneBatch {
		return fmt.Errorf("icegate: unknown lane %q (want %q or %q)", r.Lane, LaneInteractive, LaneBatch)
	}
	if r.Scenario != "" {
		found := false
		for _, n := range fleet.Names() {
			if n == r.Scenario {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("icegate: unknown scenario %q (have %v)", r.Scenario, fleet.Names())
		}
		// A knob the scenario never reads would still enter the cache key,
		// caching a nominal run under the mistyped name — reject instead.
		if known, declared := fleet.KnownKnobs(r.Scenario); declared {
			for k := range r.Knobs {
				if !slices.Contains(known, k) {
					return fmt.Errorf("icegate: scenario %q has no knob %q (have %v)", r.Scenario, k, known)
				}
			}
		}
		return nil
	}
	if !experiments.Has(r.Exp) {
		return fmt.Errorf("icegate: unknown experiment %q (have %v)", r.Exp, experiments.IDs())
	}
	if len(r.Knobs) > 0 || r.DurationS != 0 {
		return errors.New("icegate: knobs/duration_s apply to scenario jobs only")
	}
	return nil
}

// normalized fills the defaults that participate in result identity, so
// "cells omitted" and "cells: 1" hit the same cache line — plus the
// serving-side defaults (tenant, lane), so views and quota accounting
// always see resolved identities.
func (r Request) normalized() Request {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Cells <= 0 {
		r.Cells = 1
	}
	if r.Tenant == "" {
		r.Tenant = AnonTenant
	}
	if r.Lane == "" {
		r.Lane = LaneInteractive
	}
	return r
}

// Key canonicalizes the request into its deterministic cache key: the
// full set of inputs that the simulation result is a pure function of.
func (r Request) Key() string {
	r = r.normalized()
	var b strings.Builder
	if r.Scenario != "" {
		fmt.Fprintf(&b, "scenario/%s", r.Scenario)
	} else {
		fmt.Fprintf(&b, "exp/%s", r.Exp)
	}
	fmt.Fprintf(&b, "?seed=%d&cells=%d", r.Seed, r.Cells)
	if r.DurationS != 0 {
		fmt.Fprintf(&b, "&duration_s=%g", r.DurationS)
	}
	knobs := make([]string, 0, len(r.Knobs))
	for k := range r.Knobs {
		knobs = append(knobs, k)
	}
	sort.Strings(knobs)
	for _, k := range knobs {
		fmt.Fprintf(&b, "&knob.%s=%g", k, r.Knobs[k])
	}
	return b.String()
}

// duration converts the requested horizon to sim time.
func (r Request) duration() sim.Time {
	return sim.Time(r.DurationS * float64(sim.Second))
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final — clients poll until it
// is.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

func (s Status) terminal() bool { return s.Terminal() }

// CellResult is the streamed per-cell record: one NDJSON line per
// completed cell.
type CellResult struct {
	Index   int                `json:"index"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Err     string             `json:"err,omitempty"`
}

// Job tracks one submission through queued→running→done/failed/cancelled.
type Job struct {
	ID  string
	Req Request // normalized form
	key string

	// Scheduler bookkeeping, guarded by Scheduler.mu (not j.mu): the
	// dispatch lane, the cell-quota charge, whether that charge has been
	// returned, and when the job entered its queue.
	laneIdx    int
	cost       int
	quotaFreed bool
	enqueuedAt time.Time

	mu         sync.Mutex
	status     Status
	errMsg     string
	cached     bool
	cellsTotal int
	cells      []CellResult // completed cells, in delivery order (replay buffer)
	table      string       // rendered result, set on success
	cancel     context.CancelFunc
	subs       []chan CellResult
	done       chan struct{} // closed on terminal status

	// Tracing (nil/zero unless Req.Trace): tr holds the job's spans, root
	// covers submission→terminal, qspan covers the time queued, and run
	// covers the executor's work — the parent every fleet/engine span
	// hangs from. run is written in start() and read by the same executor
	// goroutine, so it needs no extra locking.
	tr    *icescope.Trace
	root  icescope.Span
	qspan icescope.Span
	run   icescope.Span
}

func newJob(id string, req Request) *Job {
	req = req.normalized()
	j := &Job{
		ID: id, Req: req, key: req.Key(), status: StatusQueued, done: make(chan struct{}),
		laneIdx: laneIndex(req.Lane), cost: req.Cells,
	}
	if req.Scenario != "" {
		j.cellsTotal = req.Cells
	}
	return j
}

// enableTrace arms span recording and the live event stream for the
// job; called once at Submit, before the job is visible to anything
// concurrent. Streaming is armed before the first span opens so a
// subscriber's replay always starts at the job root.
func (j *Job) enableTrace() {
	j.tr = icescope.NewTrace(j.ID)
	j.tr.StreamEvents(0)
	j.root = j.tr.Start(icescope.Span{}, "job "+j.ID)
	j.qspan = j.root.Child("queued")
}

// traceInstant drops a zero-duration marker on the job's trace.
func (j *Job) traceInstant(name string) {
	j.tr.Instant(j.root, name)
}

// TraceData returns the job's completed trace, or nil while the job is
// still live (worker span buffers are not synchronized mid-run) or when
// the job was not traced.
func (j *Job) TraceData() *icescope.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.tr == nil || !j.status.terminal() {
		return nil
	}
	return j.tr
}

// Traced reports whether the job was submitted with tracing on.
func (j *Job) Traced() bool { return j.tr != nil }

// SubscribeEvents taps the job's live span-event stream: the events
// published so far, a live channel for the rest (closed when the job
// reaches a terminal state), and a cancel to detach early. For jobs
// already terminal — including cache hits — the replay arrives with a
// pre-closed channel. Untraced jobs get an empty replay and a
// pre-closed channel; callers gate on Traced() for a 404 instead.
func (j *Job) SubscribeEvents() (replay []icescope.SpanEvent, live <-chan icescope.SpanEvent, cancel func()) {
	return j.tr.SubscribeEvents()
}

// EventsDropped reports live events discarded over the job's stream
// bound (0 for untraced jobs).
func (j *Job) EventsDropped() uint64 { return j.tr.EventsDropped() }

// closeTraceLocked ends whatever job-lifecycle spans are still open as
// the job reaches status, then closes the live event stream (the final
// end events publish first, so subscribers see the root close before
// their channel does); callers hold j.mu. Ending the zero Span is a
// no-op, so every path simply calls this once.
func (j *Job) closeTraceLocked(status Status) {
	j.qspan.End()
	j.qspan = icescope.Span{}
	j.run.End()
	j.run = icescope.Span{}
	if j.root.Active() {
		j.root.End(icescope.StrAttr("status", string(status)))
		j.root = icescope.Span{}
	}
	j.tr.CloseEvents()
}

// View is the JSON shape of a job's status.
type View struct {
	ID         string  `json:"id"`
	Status     Status  `json:"status"`
	Request    Request `json:"request"`
	Tenant     string  `json:"tenant"`
	Lane       string  `json:"lane"`
	Cached     bool    `json:"cached"`
	CellsTotal int     `json:"cells_total"`
	CellsDone  int     `json:"cells_done"`
	Error      string  `json:"error,omitempty"`
}

// View snapshots the job for the status endpoints.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return View{
		ID: j.ID, Status: j.status, Request: j.Req, Tenant: j.Req.Tenant,
		Lane: j.Req.Lane, Cached: j.cached,
		CellsTotal: j.cellsTotal, CellsDone: len(j.cells), Error: j.errMsg,
	}
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Table returns the rendered result and whether it is available yet.
func (j *Job) Table() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table, j.status == StatusDone
}

// Done exposes the terminal-state signal (closed when the job finishes,
// fails, or is cancelled).
func (j *Job) Done() <-chan struct{} { return j.done }

// start transitions queued→running; false if the job was cancelled while
// queued (the executor then skips it).
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.cancel = cancel
	j.qspan.End()
	j.qspan = icescope.Span{}
	j.run = j.root.Child("run")
	return true
}

// deliver records one completed cell and fans it out to subscribers.
// Subscriber channels are buffered to the job's full cell count, so the
// sends below never block the fleet's workers.
func (j *Job) deliver(cr CellResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return
	}
	j.cells = append(j.cells, cr)
	for _, ch := range j.subs {
		ch <- cr
	}
}

// finish moves the job to a terminal state, closing the stream fan-out.
func (j *Job) finish(status Status, table, errMsg string, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return
	}
	j.status = status
	j.table = table
	j.errMsg = errMsg
	j.cached = cached
	j.closeTraceLocked(status)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
}

// requestCancel flips a queued job straight to cancelled or signals a
// running job's context; terminal jobs are left alone (returns false).
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.errMsg = context.Canceled.Error()
		j.closeTraceLocked(StatusCancelled)
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
		close(j.done)
		j.mu.Unlock()
		return true
	}
	if j.status == StatusRunning && j.cancel != nil {
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return true
	}
	j.mu.Unlock()
	return false
}

// subscribe atomically snapshots already-delivered cells and registers a
// live channel for the rest. The returned channel is closed when the job
// reaches a terminal state; unsubscribe is idempotent and safe after
// close. For jobs already terminal the channel arrives pre-closed.
func (j *Job) subscribe() (replay []CellResult, live <-chan CellResult, unsubscribe func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]CellResult(nil), j.cells...)
	ch := make(chan CellResult, j.cellsTotal+1)
	if j.status.terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	j.subs = append(j.subs, ch)
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
}
