package icegate

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icescope"
)

// TenantHeader carries the tenant identity on API requests; when set it
// overrides the request body's "tenant" field.
const TenantHeader = "X-Icegate-Tenant"

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, never below one (zero would invite a tight retry loop).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// NewHandler wires the gateway's HTTP/JSON API around a scheduler.
//
//	GET    /healthz                  liveness
//	GET    /api/v1/scenarios         servable fleet scenarios + experiment IDs
//	POST   /api/v1/jobs              submit a job (429 when the queue is full)
//	GET    /api/v1/jobs              list jobs, submission order
//	GET    /api/v1/jobs/{id}         job status
//	DELETE /api/v1/jobs/{id}         cancel a queued or running job
//	GET    /api/v1/jobs/{id}/result  rendered table (text/plain) once done
//	GET    /api/v1/jobs/{id}/stream  per-cell results as NDJSON, live
//	GET    /api/v1/jobs/{id}/trace   span trace once terminal (text tree, or
//	                                 ?format=chrome for Perfetto-loadable JSON);
//	                                 only for jobs submitted with "trace": true
//	GET    /api/v1/jobs/{id}/events  live span events as NDJSON while the job
//	                                 is queued/running (terminal jobs replay
//	                                 and close); only for traced jobs
//	GET    /metrics                  gateway counters, Prometheus text style
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /api/v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{
			"scenarios":   fleet.Names(),
			"experiments": experiments.IDs(),
		})
	})
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		// The header is the authoritative tenant identity when present
		// (proxies stamp it); the body field serves clients that cannot
		// set headers.
		if hdr := r.Header.Get(TenantHeader); hdr != "" {
			req.Tenant = hdr
		}
		job, err := s.Submit(req)
		var qe *QuotaError
		switch {
		case errors.As(err, &qe):
			w.Header().Set("Retry-After", retryAfterSeconds(qe.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case err != nil:
			writeError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusCreated, job.View())
		}
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		views := make([]View, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, map[string][]View{"jobs": views})
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if job, ok := s.Get(r.PathValue("id")); ok {
			writeJSON(w, http.StatusOK, job.View())
			return
		}
		writeError(w, http.StatusNotFound, "unknown job")
	})
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		job, _ := s.Get(r.PathValue("id"))
		writeJSON(w, http.StatusOK, job.View())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		v := job.View()
		switch v.Status {
		case StatusDone:
			table, _ := job.Table()
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Header().Set("X-Icegate-Cached", boolHeader(v.Cached))
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(table))
		case StatusFailed, StatusCancelled:
			writeJSON(w, http.StatusConflict, v)
		default:
			writeJSON(w, http.StatusAccepted, v)
		}
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		streamJob(s, w, r)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		streamEvents(s, w, r)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		if !job.Traced() {
			writeError(w, http.StatusNotFound, "job was not submitted with trace enabled")
			return
		}
		tr := job.TraceData()
		if tr == nil {
			// Worker span buffers are only safe to read once the job is
			// terminal; tell the client to come back.
			writeJSON(w, http.StatusAccepted, job.View())
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_ = tr.WriteChrome(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = tr.WriteText(w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.renderMetrics()))
	})
	return mux
}

// streamLine is one NDJSON record: a cell while the job runs, then a
// single terminal record carrying the final status.
type streamLine struct {
	Cell   *CellResult `json:"cell,omitempty"`
	Done   bool        `json:"done,omitempty"`
	Status Status      `json:"status,omitempty"`
	Cached bool        `json:"cached,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// streamJob replays the job's completed cells, then follows it live until
// the job reaches a terminal state or the client goes away. Each line is
// flushed immediately so a slow multi-cell job streams incrementally.
func streamJob(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: clients block on them before reading
		// the first NDJSON line, which may be a long simulation away.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(l streamLine) {
		_ = enc.Encode(l)
		if flusher != nil {
			flusher.Flush()
		}
	}

	replay, live, unsubscribe := job.subscribe()
	defer unsubscribe()
	for i := range replay {
		emit(streamLine{Cell: &replay[i]})
	}
	for {
		select {
		case cr, open := <-live:
			if !open {
				v := job.View()
				emit(streamLine{Done: true, Status: v.Status, Cached: v.Cached, Error: v.Error})
				return
			}
			emit(streamLine{Cell: &cr})
		case <-r.Context().Done():
			return
		}
	}
}

// EventLine is one NDJSON record of the live span-event stream: an
// event while the job runs, then a single terminal record carrying the
// final status and the stream's drop count. Offsets are microseconds
// from the job trace's epoch, matching the Chrome export's unit.
type EventLine struct {
	Seq     uint64         `json:"seq,omitempty"`
	Kind    string         `json:"kind,omitempty"`
	Span    uint64         `json:"span,omitempty"`
	Parent  uint64         `json:"parent,omitempty"`
	Tid     int32          `json:"tid,omitempty"`
	Name    string         `json:"name,omitempty"`
	StartUS float64        `json:"start_us"`
	EndUS   float64        `json:"end_us,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Done    bool           `json:"done,omitempty"`
	Status  Status         `json:"status,omitempty"`
	Dropped uint64         `json:"dropped,omitempty"`
}

func eventLine(ev icescope.SpanEvent) EventLine {
	l := EventLine{
		Seq: ev.Seq, Kind: ev.Kind.String(), Span: uint64(ev.Span), Parent: uint64(ev.Parent),
		Tid: ev.Tid, Name: ev.Name,
		StartUS: float64(ev.Start) / float64(time.Microsecond),
		EndUS:   float64(ev.End) / float64(time.Microsecond),
	}
	if len(ev.Attrs) > 0 {
		l.Attrs = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			l.Attrs[a.Key] = a.Value()
		}
	}
	return l
}

// streamEvents replays the traced job's span events so far, then
// follows the stream live until the job reaches a terminal state (the
// terminal NDJSON line carries the final status and drop count) or the
// client goes away. Works from submission on: a queued job streams its
// root/queued spans immediately and the rest as they happen.
func streamEvents(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if !job.Traced() {
		writeError(w, http.StatusNotFound, "job was not submitted with trace enabled")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(l EventLine) {
		_ = enc.Encode(l)
		if flusher != nil {
			flusher.Flush()
		}
	}

	replay, live, cancel := job.SubscribeEvents()
	defer cancel()
	for _, ev := range replay {
		emit(eventLine(ev))
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				v := job.View()
				emit(EventLine{Done: true, Status: v.Status, Dropped: job.EventsDropped()})
				return
			}
			emit(eventLine(ev))
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func boolHeader(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
