package alarm

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func spo2Rule() ThresholdRule {
	return ThresholdRule{
		Name: "spo2-low", Signal: "spo2", Low: 90, High: 101,
		Sustain: 10 * sim.Second, Priority: Crisis, Refractory: sim.Minute,
	}
}

func TestRuleValidate(t *testing.T) {
	if err := spo2Rule().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ThresholdRule{
		{Name: "", Signal: "x", Low: 0, High: 1},
		{Name: "a", Signal: "", Low: 0, High: 1},
		{Name: "a", Signal: "x", Low: 1, High: 1},
		{Name: "a", Signal: "x", Low: 0, High: 1, Sustain: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d: invalid rule accepted", i)
		}
	}
	e := NewEngine()
	e.MustAddRule(spo2Rule())
	if err := e.AddRule(spo2Rule()); err == nil {
		t.Fatal("duplicate rule accepted")
	}
}

func TestThresholdFiresAfterSustain(t *testing.T) {
	e := NewEngine()
	e.MustAddRule(spo2Rule())
	// Brief dip (5 s): no alarm.
	for i := 0; i < 5; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 85, true)
	}
	e.Observe(5*sim.Second, "spo2", 97, true)
	if len(e.Events()) != 0 {
		t.Fatalf("brief dip alarmed: %v", e.Events())
	}
	// Sustained dip (12 s): exactly one alarm (refractory).
	for i := 6; i < 40; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 85, true)
	}
	if got := len(e.Events()); got != 1 {
		t.Fatalf("events = %d, want 1", got)
	}
	ev := e.Events()[0]
	if ev.Rule != "spo2-low" || ev.Priority != Crisis {
		t.Fatalf("event = %+v", ev)
	}
}

func TestRefractoryAllowsReFireAfterWindow(t *testing.T) {
	e := NewEngine()
	r := spo2Rule()
	r.Refractory = 30 * sim.Second
	e.MustAddRule(r)
	for i := 0; i < 120; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 85, true)
	}
	// 120 s continuously low, refractory 30 s, sustain 10 s: alarms at
	// ~10, 40, 70, 100 s -> 4 alarms.
	if got := len(e.Events()); got != 4 {
		t.Fatalf("events = %d, want 4", got)
	}
}

func TestInvalidDataResetsSustain(t *testing.T) {
	e := NewEngine()
	e.MustAddRule(spo2Rule())
	for i := 0; i < 8; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 85, true)
	}
	e.Observe(8*sim.Second, "spo2", 0, false) // probe off
	for i := 9; i < 17; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 85, true)
	}
	if len(e.Events()) != 0 {
		t.Fatal("sustain survived an invalid-data gap")
	}
}

func TestCorroborationSuppressesArtifact(t *testing.T) {
	// The paper's example: SpO2 drop with normal blood pressure is a
	// disconnected wire, not heart failure.
	e := NewEngine()
	e.MustAddRule(spo2Rule())
	if err := e.AddCorroboration(Corroboration{
		Rule:   "spo2-low",
		MaxAge: 30 * sim.Second,
		Conditions: []Condition{
			{Signal: "map", Low: 60, High: 110}, // abnormal MAP corroborates
			{Signal: "hr", Low: 50, High: 120},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Healthy MAP and HR observed, then SpO2 "drops" (artifact).
	e.Observe(0, "map", 88, true)
	e.Observe(0, "hr", 72, true)
	for i := 1; i < 30; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 60, true)
	}
	if len(e.Events()) != 0 {
		t.Fatalf("uncorroborated artifact alarmed: %v", e.Events())
	}
	if e.SuppressedByCorroboration == 0 {
		t.Fatal("suppression not counted")
	}

	// Now the heart rate also derails: genuine deterioration -> alarm.
	e2 := NewEngine()
	e2.MustAddRule(spo2Rule())
	_ = e2.AddCorroboration(Corroboration{
		Rule: "spo2-low", MaxAge: 30 * sim.Second,
		Conditions: []Condition{{Signal: "hr", Low: 50, High: 120}},
	})
	e2.Observe(0, "hr", 139, true) // tachycardia
	for i := 1; i < 30; i++ {
		e2.Observe(sim.Time(i)*sim.Second, "spo2", 60, true)
	}
	if len(e2.Events()) != 1 {
		t.Fatalf("corroborated deterioration events = %d, want 1", len(e2.Events()))
	}
}

func TestCorroborationIgnoresStaleEvidence(t *testing.T) {
	e := NewEngine()
	e.MustAddRule(spo2Rule())
	_ = e.AddCorroboration(Corroboration{
		Rule: "spo2-low", MaxAge: 10 * sim.Second,
		Conditions: []Condition{{Signal: "hr", Low: 50, High: 120}},
	})
	e.Observe(0, "hr", 140, true) // abnormal but will be stale
	for i := 60; i < 90; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 60, true)
	}
	if len(e.Events()) != 0 {
		t.Fatal("stale corroborating evidence accepted")
	}
}

func TestContextSuppressionMutesBedArtifact(t *testing.T) {
	mapRule := ThresholdRule{
		Name: "map-low", Signal: "map", Low: 60, High: 110,
		Sustain: 4 * sim.Second, Priority: Warning, Refractory: sim.Minute,
	}
	e := NewEngine()
	e.MustAddRule(mapRule)
	if err := e.AddContextSuppression(ContextSuppression{
		Rule: "map-low", Event: "bed-moved", Window: sim.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	// Bed moves, MAP reading drops (hydrostatic artifact).
	e.ObserveContext(10*sim.Second, "bed-moved")
	for i := 11; i < 40; i++ {
		e.Observe(sim.Time(i)*sim.Second, "map", 45, true)
	}
	if len(e.Events()) != 0 {
		t.Fatalf("bed artifact alarmed: %v", e.Events())
	}
	if e.SuppressedByContext == 0 {
		t.Fatal("context suppression not counted")
	}
	// After the window, a persisting low MAP is real and must alarm.
	for i := 75; i < 90; i++ {
		e.Observe(sim.Time(i)*sim.Second, "map", 45, true)
	}
	if len(e.Events()) != 1 {
		t.Fatalf("real hypotension after window: events = %d, want 1", len(e.Events()))
	}
}

func TestOnEventListener(t *testing.T) {
	e := NewEngine()
	e.MustAddRule(spo2Rule())
	var got []Event
	e.OnEvent(func(ev Event) { got = append(got, ev) })
	for i := 0; i < 15; i++ {
		e.Observe(sim.Time(i)*sim.Second, "spo2", 80, true)
	}
	if len(got) != 1 {
		t.Fatalf("listener received %d events", len(got))
	}
}

func TestEngineConfigValidation(t *testing.T) {
	e := NewEngine()
	if err := e.AddCorroboration(Corroboration{}); err == nil {
		t.Fatal("empty corroboration accepted")
	}
	if err := e.AddContextSuppression(ContextSuppression{}); err == nil {
		t.Fatal("empty suppression accepted")
	}
}

func TestScore(t *testing.T) {
	truth := []Episode{{Start: 100 * sim.Second, End: 200 * sim.Second}}
	events := []Event{
		{At: 150 * sim.Second}, // inside: TP
		{At: 95 * sim.Second},  // within 10s slack: TP
		{At: 500 * sim.Second}, // FP
	}
	m := Score(events, truth, 10*sim.Second, sim.Hour)
	if m.TruePositives != 2 || m.FalsePositives != 1 || m.MissedEpisodes != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Sensitivity != 1 {
		t.Fatalf("sensitivity = %f", m.Sensitivity)
	}
	if m.FalsePerHour != 1 {
		t.Fatalf("false/hour = %f", m.FalsePerHour)
	}
	if m.String() == "" {
		t.Fatal("empty metrics string")
	}

	// Missed episode.
	m2 := Score(nil, truth, 0, sim.Hour)
	if m2.MissedEpisodes != 1 || m2.Sensitivity != 0 {
		t.Fatalf("metrics = %+v", m2)
	}
	// Vacuous truth.
	m3 := Score(nil, nil, 0, sim.Hour)
	if m3.Sensitivity != 1 || m3.Precision != 1 {
		t.Fatalf("vacuous metrics = %+v", m3)
	}
}

func TestEpisodesFromTrace(t *testing.T) {
	tr := sim.NewTrace()
	vals := []float64{95, 95, 80, 80, 80, 95, 95, 80, 95}
	for i, v := range vals {
		tr.Record("spo2", sim.Time(i)*sim.Minute, v)
	}
	eps := EpisodesFromTrace(tr, "spo2", 90, 2*sim.Minute)
	if len(eps) != 1 {
		t.Fatalf("episodes = %v, want exactly the 3-sample run", eps)
	}
	if eps[0].Start != 2*sim.Minute || eps[0].End != 5*sim.Minute {
		t.Fatalf("episode = %+v", eps[0])
	}
	// Open-ended final episode.
	tr2 := sim.NewTrace()
	for i, v := range []float64{95, 80, 80, 80} {
		tr2.Record("spo2", sim.Time(i)*sim.Minute, v)
	}
	if eps := EpisodesFromTrace(tr2, "spo2", 90, 2*sim.Minute); len(eps) != 1 {
		t.Fatalf("open-ended episode missed: %v", eps)
	}
}

// Property: with a single rule and no gating, the number of emitted
// alarms never exceeds the number of sustained excursions.
func TestAlarmCountBoundedByExcursionsProperty(t *testing.T) {
	f := func(samples []uint8) bool {
		e := NewEngine()
		r := ThresholdRule{Name: "r", Signal: "s", Low: 50, High: 200, Sustain: 2 * sim.Second, Refractory: sim.Hour}
		e.MustAddRule(r)
		excursions := 0
		wasOut := false
		for i, s := range samples {
			v := float64(s)
			out := v < 50 || v > 200
			if out && !wasOut {
				excursions++
			}
			wasOut = out
			e.Observe(sim.Time(i)*sim.Second, "s", v, true)
		}
		return len(e.Events()) <= excursions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityString(t *testing.T) {
	for p, want := range map[Priority]string{
		Advisory: "advisory", Warning: "warning", Crisis: "crisis", Priority(9): "unknown",
	} {
		if got := p.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", p, got, want)
		}
	}
}
