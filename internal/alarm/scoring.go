package alarm

import (
	"fmt"

	"repro/internal/sim"
)

// Episode is one ground-truth interval of genuine patient deterioration.
type Episode struct {
	Start, End sim.Time
}

// Metrics quantify alarm quality against ground truth — the currency of
// the paper's alarm-fatigue discussion.
type Metrics struct {
	TruePositives  int // alarms during (or shortly before/after) an episode
	FalsePositives int // alarms with no episode nearby
	MissedEpisodes int // episodes with no alarm at all
	TotalEpisodes  int
	TotalAlarms    int

	Sensitivity  float64 // detected episodes / total episodes
	Precision    float64 // true alarms / total alarms
	FalsePerHour float64
}

// Score classifies alarms against episodes. An alarm within
// [start-slack, end+slack] of an episode is true; an episode with at
// least one such alarm is detected. horizon is the total observation
// time, for the false-alarm rate.
func Score(events []Event, truth []Episode, slack sim.Time, horizon sim.Time) Metrics {
	m := Metrics{TotalEpisodes: len(truth), TotalAlarms: len(events)}
	detected := make([]bool, len(truth))
	for _, ev := range events {
		matched := false
		for i, ep := range truth {
			if ev.At >= ep.Start-slack && ev.At <= ep.End+slack {
				matched = true
				detected[i] = true
			}
		}
		if matched {
			m.TruePositives++
		} else {
			m.FalsePositives++
		}
	}
	for _, d := range detected {
		if !d {
			m.MissedEpisodes++
		}
	}
	if len(truth) > 0 {
		m.Sensitivity = float64(len(truth)-m.MissedEpisodes) / float64(len(truth))
	} else {
		m.Sensitivity = 1 // nothing to miss
	}
	if len(events) > 0 {
		m.Precision = float64(m.TruePositives) / float64(len(events))
	} else if len(truth) == 0 {
		m.Precision = 1
	}
	if h := horizon.Seconds() / 3600; h > 0 {
		m.FalsePerHour = float64(m.FalsePositives) / h
	}
	return m
}

// String renders the metrics as a table row.
func (m Metrics) String() string {
	return fmt.Sprintf("alarms=%d tp=%d fp=%d missed=%d/%d sens=%.2f prec=%.2f fph=%.2f",
		m.TotalAlarms, m.TruePositives, m.FalsePositives,
		m.MissedEpisodes, m.TotalEpisodes, m.Sensitivity, m.Precision, m.FalsePerHour)
}

// EpisodesFromTrace extracts ground-truth deterioration episodes from a
// recorded series: maximal runs where the value stays below the threshold
// for at least minLen.
func EpisodesFromTrace(tr *sim.Trace, series string, below float64, minLen sim.Time) []Episode {
	s := tr.Series(series)
	var out []Episode
	var start sim.Time
	in := false
	for i, smp := range s {
		if smp.V < below {
			if !in {
				in = true
				start = smp.T
			}
			continue
		}
		if in {
			in = false
			if smp.T-start >= minLen {
				out = append(out, Episode{Start: start, End: smp.T})
			}
		}
		_ = i
	}
	if in {
		end := s[len(s)-1].T
		if end-start >= minLen {
			out = append(out, Episode{Start: start, End: end})
		}
	}
	return out
}
