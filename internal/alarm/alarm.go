// Package alarm implements the paper's smart-alarm challenge (i) and the
// mixed-criticality context scenario (l): threshold alarms, multivariate
// corroboration ("a sudden SpO2 drop with normal blood pressure is more
// likely a disconnected wire than heart failure"), context-event
// suppression (bed raised -> MAP artifact), and alarm-fatigue scoring.
package alarm

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Priority grades an alarm.
type Priority int

const (
	Advisory Priority = iota
	Warning
	Crisis
)

// String names the priority.
func (p Priority) String() string {
	switch p {
	case Advisory:
		return "advisory"
	case Warning:
		return "warning"
	case Crisis:
		return "crisis"
	default:
		return "unknown"
	}
}

// Event is one emitted alarm.
type Event struct {
	At       sim.Time
	Rule     string
	Signal   string
	Priority Priority
	Value    float64
	Msg      string
}

// ThresholdRule fires when a signal leaves [Low, High] continuously for
// Sustain.
type ThresholdRule struct {
	Name     string
	Signal   string
	Low      float64 // -Inf semantics: set very low to disable
	High     float64
	Sustain  sim.Time
	Priority Priority
	// Refractory suppresses re-firing for this long after an emission,
	// so one sustained episode produces one alarm, not a stream.
	Refractory sim.Time
}

// Validate reports an error for unusable rules.
func (r ThresholdRule) Validate() error {
	if r.Name == "" || r.Signal == "" {
		return errors.New("alarm: rule needs name and signal")
	}
	if r.High <= r.Low {
		return errors.New("alarm: High must exceed Low")
	}
	if r.Sustain < 0 || r.Refractory < 0 {
		return errors.New("alarm: negative durations")
	}
	return nil
}

// Corroboration gates a rule on independent evidence: when the rule would
// fire, at least one listed condition must also be abnormal (its signal
// outside its [Low, High]) within MaxAge; otherwise the alarm is
// suppressed as a probable single-sensor artifact.
type Corroboration struct {
	Rule       string
	Conditions []Condition
	MaxAge     sim.Time
}

// Condition describes what "abnormal" means for a corroborating signal.
type Condition struct {
	Signal    string
	Low, High float64 // abnormal when outside this band
}

// ContextSuppression mutes a rule for Window after a named context event
// (the bed-height change of the paper's scenario).
type ContextSuppression struct {
	Rule   string
	Event  string
	Window sim.Time
}

type obs struct {
	at    sim.Time
	value float64
}

type ruleState struct {
	rule         ThresholdRule
	outSince     sim.Time
	out          bool
	lastEmission sim.Time
	everEmitted  bool
}

// Engine evaluates rules over observed signals. Feed it with Observe (for
// measurements) and ObserveContext (for discrete context events); it
// accumulates emitted and suppressed alarms.
type Engine struct {
	rules        []*ruleState
	corr         map[string]Corroboration
	suppressions []ContextSuppression
	latest       map[string]obs
	ctxEvents    map[string]sim.Time // last occurrence per context event

	events  []Event
	onEvent []func(Event)

	// Counters for experiments.
	SuppressedByCorroboration uint64
	SuppressedByContext       uint64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		corr:      make(map[string]Corroboration),
		latest:    make(map[string]obs),
		ctxEvents: make(map[string]sim.Time),
	}
}

// AddRule installs a threshold rule.
func (e *Engine) AddRule(r ThresholdRule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	for _, st := range e.rules {
		if st.rule.Name == r.Name {
			return fmt.Errorf("alarm: duplicate rule %q", r.Name)
		}
	}
	e.rules = append(e.rules, &ruleState{rule: r})
	return nil
}

// MustAddRule is AddRule, panicking on error.
func (e *Engine) MustAddRule(r ThresholdRule) {
	if err := e.AddRule(r); err != nil {
		panic(err)
	}
}

// AddCorroboration gates the named rule (multivariate smart alarm).
func (e *Engine) AddCorroboration(c Corroboration) error {
	if c.Rule == "" || len(c.Conditions) == 0 || c.MaxAge <= 0 {
		return errors.New("alarm: corroboration needs rule, conditions and max age")
	}
	e.corr[c.Rule] = c
	return nil
}

// AddContextSuppression mutes the named rule around a context event.
func (e *Engine) AddContextSuppression(s ContextSuppression) error {
	if s.Rule == "" || s.Event == "" || s.Window <= 0 {
		return errors.New("alarm: suppression needs rule, event and window")
	}
	e.suppressions = append(e.suppressions, s)
	return nil
}

// OnEvent registers a listener for emitted alarms.
func (e *Engine) OnEvent(fn func(Event)) { e.onEvent = append(e.onEvent, fn) }

// Events returns all emitted alarms.
func (e *Engine) Events() []Event { return e.events }

// ObserveContext records a discrete context event (e.g. "bed-moved").
func (e *Engine) ObserveContext(t sim.Time, name string) {
	e.ctxEvents[name] = t
}

// Observe feeds one measurement. Invalid measurements clear the rule's
// sustain timer (missing data is not evidence of derangement — the data
// watchdog in the supervisor covers missing-data hazards).
func (e *Engine) Observe(t sim.Time, signal string, value float64, valid bool) {
	if valid {
		e.latest[signal] = obs{at: t, value: value}
	}
	for _, st := range e.rules {
		if st.rule.Signal != signal {
			continue
		}
		if !valid {
			st.out = false
			continue
		}
		inRange := value >= st.rule.Low && value <= st.rule.High
		if inRange {
			st.out = false
			continue
		}
		if !st.out {
			st.out = true
			st.outSince = t
		}
		if t-st.outSince >= st.rule.Sustain {
			e.maybeEmit(st, t, value)
		}
	}
}

func (e *Engine) maybeEmit(st *ruleState, t sim.Time, value float64) {
	if st.everEmitted && t-st.lastEmission < st.rule.Refractory {
		return
	}
	// Context suppression.
	for _, s := range e.suppressions {
		if s.Rule != st.rule.Name {
			continue
		}
		if at, ok := e.ctxEvents[s.Event]; ok && t >= at && t-at < s.Window {
			e.SuppressedByContext++
			return
		}
	}
	// Multivariate corroboration.
	if c, ok := e.corr[st.rule.Name]; ok {
		if !e.corroborated(c, t) {
			e.SuppressedByCorroboration++
			return
		}
	}
	st.lastEmission = t
	st.everEmitted = true
	ev := Event{
		At: t, Rule: st.rule.Name, Signal: st.rule.Signal,
		Priority: st.rule.Priority, Value: value,
		Msg: fmt.Sprintf("%s: %s=%.1f outside [%.1f,%.1f]",
			st.rule.Name, st.rule.Signal, value, st.rule.Low, st.rule.High),
	}
	e.events = append(e.events, ev)
	for _, fn := range e.onEvent {
		fn(ev)
	}
}

func (e *Engine) corroborated(c Corroboration, t sim.Time) bool {
	for _, cond := range c.Conditions {
		o, ok := e.latest[cond.Signal]
		if !ok || t-o.at > c.MaxAge {
			continue
		}
		if o.value < cond.Low || o.value > cond.High {
			return true
		}
	}
	return false
}
