package physio

import (
	"fmt"

	"repro/internal/sim"
)

// PopulationSpec controls how much inter-patient variability the sampler
// injects. Coefficients of variation (CV) are the standard deviations of
// the log-normal multipliers applied to nominal parameter values; the
// defaults reflect the "staggering range of patient responses" the paper
// emphasizes in challenge (i).
type PopulationSpec struct {
	PKCV        float64 // CV on clearance/volumes (typ. 0.3-0.5)
	PDCV        float64 // CV on EC50/ke0 (typ. 0.3-0.6)
	TraitCV     float64 // CV on baseline vitals (typ. 0.08-0.15)
	AthleteFrac float64 // fraction of patients with athletic physiology
	FrailFrac   float64 // fraction with reduced reserve (fast desaturation)
}

// DefaultPopulation returns a clinically plausible mix.
func DefaultPopulation() PopulationSpec {
	return PopulationSpec{PKCV: 0.35, PDCV: 0.45, TraitCV: 0.10, AthleteFrac: 0.08, FrailFrac: 0.12}
}

// Sample draws one patient from the population. Successive calls with the
// same RNG stream produce the cohort deterministically.
func (s PopulationSpec) Sample(idx int, rng *sim.RNG) *Patient {
	ln := func(cv float64) float64 {
		if cv <= 0 {
			return 1
		}
		return rng.LogNormal(0, cv)
	}

	pk := DefaultMorphinePK()
	pk.V1 *= ln(s.PKCV)
	pk.V2 *= ln(s.PKCV)
	pk.K10 *= ln(s.PKCV)
	pk.K12 *= ln(s.PKCV * 0.7)
	pk.K21 *= ln(s.PKCV * 0.7)

	pd := DefaultMorphinePD()
	pd.EC50 *= ln(s.PDCV)
	pd.Ke0 *= ln(s.PDCV * 0.6)
	if pd.Emax > 0.99 {
		pd.Emax = 0.99
	}

	tr := DefaultTraits()
	tr.ID = fmt.Sprintf("patient-%03d", idx)
	tr.BaselineHR = rng.TruncNormal(tr.BaselineHR, tr.BaselineHR*s.TraitCV, 45, 110)
	tr.BaselineRR = rng.TruncNormal(tr.BaselineRR, tr.BaselineRR*s.TraitCV, 8, 24)
	tr.BaselineMAP = rng.TruncNormal(tr.BaselineMAP, tr.BaselineMAP*s.TraitCV, 60, 120)
	tr.SpO2Tau = rng.TruncNormal(tr.SpO2Tau, tr.SpO2Tau*0.25, 15, 120)
	tr.InitialPain = rng.TruncNormal(7, 1.5, 3, 10)
	tr.WeightKg = rng.TruncNormal(70, 14, 40, 140)

	if rng.Bernoulli(s.AthleteFrac) {
		tr.Athlete = true
		tr.BaselineHR = rng.Uniform(40, 52)
		tr.SpO2Tau *= 1.3 // larger oxygen reserve
	} else if rng.Bernoulli(s.FrailFrac) {
		tr.SpO2Tau *= 0.5 // desaturates quickly
		pd.EC50 *= 0.7    // more sensitive to opioid
	}

	return NewPatient(tr, MustPK(pk), MustPD(pd), rng.Fork(tr.ID))
}

// Cohort samples n patients from the population.
func (s PopulationSpec) Cohort(n int, rng *sim.RNG) []*Patient {
	out := make([]*Patient, n)
	for i := range out {
		out[i] = s.Sample(i, rng)
	}
	return out
}
