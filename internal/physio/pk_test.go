package physio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPKValidate(t *testing.T) {
	cases := []struct {
		name string
		p    PKParams
		ok   bool
	}{
		{"default", DefaultMorphinePK(), true},
		{"zero V1", PKParams{V1: 0, V2: 1, K10: 0.1}, false},
		{"negative V2", PKParams{V1: 1, V2: -1, K10: 0.1}, false},
		{"negative k10", PKParams{V1: 1, V2: 1, K10: -0.1}, false},
		{"zero rates ok", PKParams{V1: 1, V2: 1}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewPK(c.p)
			if (err == nil) != c.ok {
				t.Fatalf("NewPK(%+v) err=%v, want ok=%v", c.p, err, c.ok)
			}
		})
	}
}

func TestPKBolusRaisesConcentration(t *testing.T) {
	m := MustPK(DefaultMorphinePK())
	if m.Concentration() != 0 {
		t.Fatal("drug-free patient should have zero concentration")
	}
	m.Bolus(10)
	want := 10 / DefaultMorphinePK().V1
	if got := m.Concentration(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("concentration = %f, want %f", got, want)
	}
}

func TestPKNegativeBolusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative bolus did not panic")
		}
	}()
	MustPK(DefaultMorphinePK()).Bolus(-1)
}

func TestPKEliminationDecays(t *testing.T) {
	m := MustPK(DefaultMorphinePK())
	m.Bolus(10)
	c0 := m.Concentration()
	for i := 0; i < 60; i++ {
		m.Step(1, 0) // 1 h drug-free
	}
	c1 := m.Concentration()
	if c1 >= c0 {
		t.Fatalf("concentration did not decay: %f -> %f", c0, c1)
	}
	for i := 0; i < 60*12; i++ {
		m.Step(1, 0)
	}
	if c := m.Concentration(); c > 0.05*c0 {
		t.Fatalf("after 13h concentration %f still > 5%% of initial %f", c, c0)
	}
}

func TestPKSteadyStateUnderInfusion(t *testing.T) {
	p := DefaultMorphinePK()
	m := MustPK(p)
	const rate = 0.05 // mg/min
	for i := 0; i < 60*48; i++ {
		m.Step(1, rate)
	}
	// At steady state, elimination = infusion: k10 * A1 = rate.
	a1, _ := m.Amounts()
	if got, want := p.K10*a1, rate; math.Abs(got-want)/want > 0.02 {
		t.Fatalf("steady-state elimination = %f, want %f", got, want)
	}
}

// Property: drug mass is conserved — infused = stored + eliminated, for
// arbitrary dosing schedules.
func TestPKMassConservationProperty(t *testing.T) {
	f := func(boluses []uint8, rateSeed uint8) bool {
		m := MustPK(DefaultMorphinePK())
		rate := float64(rateSeed%10) / 100
		for _, b := range boluses {
			m.Bolus(float64(b % 20))
			for i := 0; i < 30; i++ {
				m.Step(0.5, rate)
			}
		}
		a1, a2 := m.Amounts()
		lhs := m.TotalInfused()
		rhs := a1 + a2 + m.TotalEliminated()
		return math.Abs(lhs-rhs) < 1e-6*(1+lhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: concentration is monotone in dose — a patient who received a
// strictly larger bolus has at least the concentration at every time.
func TestPKDoseMonotonicityProperty(t *testing.T) {
	f := func(doseSmall, extra uint8) bool {
		lo := MustPK(DefaultMorphinePK())
		hi := MustPK(DefaultMorphinePK())
		lo.Bolus(float64(doseSmall))
		hi.Bolus(float64(doseSmall) + float64(extra%50) + 0.1)
		for i := 0; i < 200; i++ {
			lo.Step(1, 0)
			hi.Step(1, 0)
			if hi.Concentration() < lo.Concentration()-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPKHalfLifeReasonable(t *testing.T) {
	m := MustPK(DefaultMorphinePK())
	hl := m.HalfLifeMinutes()
	if hl < 30 || hl > 600 {
		t.Fatalf("terminal half-life = %f min, expected clinical range [30,600]", hl)
	}
	// Empirically verify: after one half-life of decay from a bolus,
	// terminal-phase concentration should drop by roughly half once the
	// distribution phase has settled.
	m.Bolus(10)
	for i := 0; i < 240; i++ { // let distribution equilibrate (4 h)
		m.Step(1, 0)
	}
	c0 := m.Concentration()
	for i := 0; i < int(hl); i++ {
		m.Step(1, 0)
	}
	ratio := m.Concentration() / c0
	if ratio < 0.40 || ratio > 0.60 {
		t.Fatalf("terminal decay over one half-life = %f, want ~0.5", ratio)
	}
}

func TestPKStepValidation(t *testing.T) {
	m := MustPK(DefaultMorphinePK())
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive step did not panic")
		}
	}()
	m.Step(0, 0)
}

func TestPDValidate(t *testing.T) {
	good := DefaultMorphinePD()
	if _, err := NewPD(good); err != nil {
		t.Fatal(err)
	}
	bad := []PDParams{
		{Ke0: 0, EC50: 1, Gamma: 1, Emax: 0.5},
		{Ke0: 1, EC50: 0, Gamma: 1, Emax: 0.5},
		{Ke0: 1, EC50: 1, Gamma: 0, Emax: 0.5},
		{Ke0: 1, EC50: 1, Gamma: 1, Emax: 1.5},
	}
	for i, p := range bad {
		if _, err := NewPD(p); err == nil {
			t.Fatalf("case %d: bad params accepted: %+v", i, p)
		}
	}
}

func TestPDEquilibration(t *testing.T) {
	m := MustPD(DefaultMorphinePD())
	const cp = 0.1
	for i := 0; i < 600; i++ {
		m.Step(1, cp)
	}
	if got := m.EffectSite(); math.Abs(got-cp) > 0.001 {
		t.Fatalf("effect site = %f, want ~%f after long equilibration", got, cp)
	}
}

func TestPDDepressionShape(t *testing.T) {
	m := MustPD(DefaultMorphinePD())
	if m.Depression() != 0 {
		t.Fatal("zero concentration must give zero depression")
	}
	// At EC50 the depression is Emax/2 by definition.
	m.ce = m.p.EC50
	if got, want := m.Depression(), m.p.Emax/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("depression at EC50 = %f, want %f", got, want)
	}
	// Saturates below Emax.
	m.ce = m.p.EC50 * 100
	if got := m.Depression(); got > m.p.Emax {
		t.Fatalf("depression %f exceeds Emax %f", got, m.p.Emax)
	}
}

// Property: depression is monotone nondecreasing in effect-site
// concentration and bounded by [0, Emax].
func TestPDMonotoneProperty(t *testing.T) {
	m := MustPD(DefaultMorphinePD())
	f := func(a, b float64) bool {
		ca, cb := math.Abs(a), math.Abs(b)
		if math.IsNaN(ca) || math.IsNaN(cb) || math.IsInf(ca, 0) || math.IsInf(cb, 0) {
			return true
		}
		if ca > cb {
			ca, cb = cb, ca
		}
		da, db := m.depressionAt(ca), m.depressionAt(cb)
		return da <= db+1e-12 && da >= 0 && db <= m.p.Emax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPDConcentrationForInvertsHill(t *testing.T) {
	m := MustPD(DefaultMorphinePD())
	for _, e := range []float64{0.05, 0.2, 0.46, 0.7} {
		c := m.ConcentrationFor(e)
		if got := m.depressionAt(c); math.Abs(got-e) > 1e-9 {
			t.Fatalf("inverse mismatch: ConcentrationFor(%f)=%f gives depression %f", e, c, got)
		}
	}
	if !math.IsInf(m.ConcentrationFor(m.p.Emax), 1) {
		t.Fatal("ConcentrationFor(Emax) should be +Inf")
	}
	if m.ConcentrationFor(0) != 0 {
		t.Fatal("ConcentrationFor(0) should be 0")
	}
}
