package physio

import (
	"errors"
	"math"

	"repro/internal/sim"
)

// BreathPhase identifies where in the mechanical-ventilation cycle the
// lungs currently are. The X-ray/ventilator scenario of the paper hinges
// on the quiescent window at the end of exhalation, when flow is near zero
// and the chest is still.
type BreathPhase int

const (
	PhaseInhale BreathPhase = iota
	PhasePause              // end-inspiratory plateau
	PhaseExhale
	PhaseQuiescent // end-expiratory rest: the X-ray shot window
)

// String names the phase.
func (p BreathPhase) String() string {
	switch p {
	case PhaseInhale:
		return "inhale"
	case PhasePause:
		return "pause"
	case PhaseExhale:
		return "exhale"
	case PhaseQuiescent:
		return "quiescent"
	default:
		return "unknown"
	}
}

// BreathCycle is a deterministic model of a volume-controlled mechanical
// breath: constant inspiratory flow, an end-inspiratory pause, exponential
// passive exhalation, and a quiescent rest until the next machine breath.
type BreathCycle struct {
	RatePerMin  float64  // machine breaths per minute
	IERatio     float64  // inspiration:expiration time ratio (e.g. 0.5 = 1:2)
	PauseFrac   float64  // fraction of cycle spent in plateau
	TidalVolume float64  // liters
	ExhaleTau   sim.Time // exhalation flow decay time constant
}

// DefaultBreathCycle returns typical intraoperative ventilation settings:
// 12 breaths/min, 1:2 I:E, 0.5 L tidal volume.
func DefaultBreathCycle() BreathCycle {
	return BreathCycle{
		RatePerMin:  12,
		IERatio:     0.5,
		PauseFrac:   0.08,
		TidalVolume: 0.5,
		ExhaleTau:   600 * sim.Millisecond,
	}
}

// Validate reports an error for unusable settings.
func (c BreathCycle) Validate() error {
	if c.RatePerMin <= 0 || c.RatePerMin > 60 {
		return errors.New("physio: breath rate out of range")
	}
	if c.IERatio <= 0 {
		return errors.New("physio: I:E ratio must be positive")
	}
	if c.PauseFrac < 0 || c.PauseFrac > 0.3 {
		return errors.New("physio: pause fraction out of range")
	}
	if c.TidalVolume <= 0 {
		return errors.New("physio: tidal volume must be positive")
	}
	if c.ExhaleTau <= 0 {
		return errors.New("physio: exhale tau must be positive")
	}
	return nil
}

// Period returns the full cycle duration.
func (c BreathCycle) Period() sim.Time {
	return sim.Time(60 / c.RatePerMin * float64(sim.Second))
}

// segment boundaries within one cycle, as offsets from cycle start.
func (c BreathCycle) segments() (inhaleEnd, pauseEnd, exhaleEnd, period sim.Time) {
	period = c.Period()
	pause := sim.Time(float64(period) * c.PauseFrac)
	breathing := period - pause
	inhale := sim.Time(float64(breathing) * c.IERatio / (1 + c.IERatio))
	// Exhalation is "complete" (flow < 2% of peak) after ~4 time constants;
	// the remainder of the cycle is the quiescent window.
	exhale := 4 * c.ExhaleTau
	if inhale+pause+exhale > period {
		exhale = period - inhale - pause
	}
	return inhale, inhale + pause, inhale + pause + exhale, period
}

// PhaseAt reports the phase at absolute time t, assuming cycles start at
// phase0 (the time of an inhalation onset).
func (c BreathCycle) PhaseAt(t, phase0 sim.Time) BreathPhase {
	period := c.Period()
	off := (t - phase0) % period
	if off < 0 {
		off += period
	}
	inhaleEnd, pauseEnd, exhaleEnd, _ := c.segments()
	switch {
	case off < inhaleEnd:
		return PhaseInhale
	case off < pauseEnd:
		return PhasePause
	case off < exhaleEnd:
		return PhaseExhale
	default:
		return PhaseQuiescent
	}
}

// FlowAt reports airway flow (L/s, positive = into the patient) at t.
func (c BreathCycle) FlowAt(t, phase0 sim.Time) float64 {
	period := c.Period()
	off := (t - phase0) % period
	if off < 0 {
		off += period
	}
	inhaleEnd, pauseEnd, _, _ := c.segments()
	switch {
	case off < inhaleEnd:
		return c.TidalVolume / inhaleEnd.Seconds()
	case off < pauseEnd:
		return 0
	default:
		// Passive exhale: peak outflow decaying exponentially.
		te := (off - pauseEnd).Seconds()
		peak := c.TidalVolume / c.ExhaleTau.Seconds()
		return -peak * math.Exp(-te/c.ExhaleTau.Seconds())
	}
}

// NextQuiescentWindow returns the start and end of the first quiescent
// window beginning at or after t. The window closes at the start of the
// next machine inhalation.
func (c BreathCycle) NextQuiescentWindow(t, phase0 sim.Time) (start, end sim.Time) {
	period := c.Period()
	_, _, exhaleEnd, _ := c.segments()
	// Cycle index containing or following t.
	k := (t - phase0) / period
	if (t-phase0)%period < 0 {
		k--
	}
	for {
		cycleStart := phase0 + k*period
		ws := cycleStart + exhaleEnd
		we := cycleStart + period
		if we <= ws { // settings leave no quiescent time at all
			return 0, 0
		}
		if we > t {
			if ws < t {
				ws = t
			}
			if ws < we {
				return ws, we
			}
		}
		k++
	}
}

// QuiescentFraction reports what fraction of the cycle is quiescent.
func (c BreathCycle) QuiescentFraction() float64 {
	_, _, exhaleEnd, period := c.segments()
	if exhaleEnd >= period {
		return 0
	}
	return float64(period-exhaleEnd) / float64(period)
}
