package physio

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBreathCycleValidate(t *testing.T) {
	if err := DefaultBreathCycle().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BreathCycle{
		{RatePerMin: 0, IERatio: 0.5, TidalVolume: 0.5, ExhaleTau: sim.Second},
		{RatePerMin: 12, IERatio: 0, TidalVolume: 0.5, ExhaleTau: sim.Second},
		{RatePerMin: 12, IERatio: 0.5, TidalVolume: 0, ExhaleTau: sim.Second},
		{RatePerMin: 12, IERatio: 0.5, TidalVolume: 0.5, ExhaleTau: 0},
		{RatePerMin: 12, IERatio: 0.5, PauseFrac: 0.9, TidalVolume: 0.5, ExhaleTau: sim.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid settings accepted: %+v", i, c)
		}
	}
}

func TestBreathCyclePeriod(t *testing.T) {
	c := DefaultBreathCycle() // 12/min -> 5 s period
	if got := c.Period(); got != 5*sim.Second {
		t.Fatalf("period = %v, want 5s", got)
	}
}

func TestPhaseSequenceWithinCycle(t *testing.T) {
	c := DefaultBreathCycle()
	var seen []BreathPhase
	last := BreathPhase(-1)
	for t0 := sim.Time(0); t0 < c.Period(); t0 += 10 * sim.Millisecond {
		ph := c.PhaseAt(t0, 0)
		if ph != last {
			seen = append(seen, ph)
			last = ph
		}
	}
	want := []BreathPhase{PhaseInhale, PhasePause, PhaseExhale, PhaseQuiescent}
	if len(seen) != len(want) {
		t.Fatalf("phase sequence = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("phase sequence = %v, want %v", seen, want)
		}
	}
}

func TestFlowIntegratesToTidalVolume(t *testing.T) {
	c := DefaultBreathCycle()
	const dt = 1e-4 // seconds
	inhaled := 0.0
	for ts := 0.0; ts < c.Period().Seconds(); ts += dt {
		f := c.FlowAt(sim.FromSeconds(ts), 0)
		if f > 0 {
			inhaled += f * dt
		}
	}
	if math.Abs(inhaled-c.TidalVolume)/c.TidalVolume > 0.01 {
		t.Fatalf("integrated inspiratory volume = %f, want %f", inhaled, c.TidalVolume)
	}
}

func TestQuiescentWindowHasNearZeroFlow(t *testing.T) {
	c := DefaultBreathCycle()
	ws, we := c.NextQuiescentWindow(0, 0)
	if ws >= we {
		t.Fatalf("empty quiescent window [%v,%v]", ws, we)
	}
	peak := c.TidalVolume / c.ExhaleTau.Seconds()
	for ts := ws; ts < we; ts += 5 * sim.Millisecond {
		if f := math.Abs(c.FlowAt(ts, 0)); f > 0.02*peak {
			t.Fatalf("flow %f at %v exceeds 2%% of peak during quiescent window", f, ts)
		}
	}
	// And the phase agrees.
	mid := ws + (we-ws)/2
	if ph := c.PhaseAt(mid, 0); ph != PhaseQuiescent {
		t.Fatalf("phase at window middle = %v, want quiescent", ph)
	}
}

func TestNextQuiescentWindowAfterArbitraryTime(t *testing.T) {
	c := DefaultBreathCycle()
	// Ask from deep inside the following cycle.
	from := c.Period() + 500*sim.Millisecond
	ws, we := c.NextQuiescentWindow(from, 0)
	if ws < from {
		t.Fatalf("window start %v before query time %v", ws, from)
	}
	if we <= ws {
		t.Fatalf("degenerate window [%v,%v]", ws, we)
	}
	if we-ws > c.Period() {
		t.Fatalf("window longer than a period")
	}
}

// Property: for any query time and phase offset, the returned window is
// nonempty, starts at or after the query, and is entirely quiescent.
func TestQuiescentWindowProperty(t *testing.T) {
	c := DefaultBreathCycle()
	f := func(tMs uint32, phaseMs uint16) bool {
		at := sim.Time(tMs%600000) * sim.Millisecond
		ph0 := sim.Time(phaseMs) * sim.Millisecond
		ws, we := c.NextQuiescentWindow(at, ph0)
		if ws < at || we <= ws {
			return false
		}
		for _, probe := range []sim.Time{ws, ws + (we-ws)/2, we - sim.Millisecond} {
			if c.PhaseAt(probe, ph0) != PhaseQuiescent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuiescentFractionPositiveForDefaults(t *testing.T) {
	c := DefaultBreathCycle()
	qf := c.QuiescentFraction()
	if qf <= 0.05 || qf >= 0.8 {
		t.Fatalf("quiescent fraction = %f, expected a usable shot window", qf)
	}
}

func TestFastRateLeavesNoQuiescentTime(t *testing.T) {
	c := DefaultBreathCycle()
	c.RatePerMin = 30 // 2 s period
	c.ExhaleTau = sim.Second
	// 4*tau = 4 s exhale > period: no quiescent window at all.
	if qf := c.QuiescentFraction(); qf != 0 {
		t.Fatalf("quiescent fraction = %f, want 0 for fast rate", qf)
	}
}

func TestPhaseStringNames(t *testing.T) {
	names := map[BreathPhase]string{
		PhaseInhale: "inhale", PhasePause: "pause",
		PhaseExhale: "exhale", PhaseQuiescent: "quiescent",
		BreathPhase(99): "unknown",
	}
	for ph, want := range names {
		if got := ph.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", ph, got, want)
		}
	}
}
