package physio

import (
	"math"

	"repro/internal/sim"
)

// Vitals is a snapshot of the patient's true physiological state. Devices
// observe these through sensors that add their own noise and artifacts;
// the values here are ground truth used for scoring experiments.
type Vitals struct {
	HeartRate   float64 // beats/min
	SpO2        float64 // percent, [0,100]
	RespRate    float64 // breaths/min
	MAP         float64 // mean arterial pressure, mmHg
	Pain        float64 // pain score [0,10]
	DrugPlasma  float64 // central plasma concentration, mg/L
	DrugEffect  float64 // effect-site concentration, mg/L
	Depression  float64 // fractional respiratory depression [0,1]
	Ventilation float64 // fraction of baseline minute ventilation [0,1+]
}

// Traits are the per-patient baseline characteristics that population
// sampling varies and the EHR records.
type Traits struct {
	ID          string
	BaselineHR  float64 // resting heart rate (beats/min)
	BaselineRR  float64 // resting respiratory rate (breaths/min)
	BaselineMAP float64 // resting mean arterial pressure (mmHg)
	SpO2Tau     float64 // oxygen-store time constant (seconds)
	InitialPain float64 // post-operative pain score [0,10]
	PainRebound float64 // pain regeneration rate (score/hour)
	Athlete     bool    // trained athlete: low resting HR is normal
	WeightKg    float64
}

// DefaultTraits returns an average post-surgical adult.
func DefaultTraits() Traits {
	return Traits{
		ID:          "patient-0",
		BaselineHR:  72,
		BaselineRR:  14,
		BaselineMAP: 88,
		SpO2Tau:     45,
		InitialPain: 7,
		PainRebound: 1.2,
		WeightKg:    70,
	}
}

// Patient composes the PK, PD and vital-sign models into the plant of the
// paper's Figure 1: drug in (infusion + boluses), physiological signals out.
type Patient struct {
	Traits Traits
	pk     *PK
	pd     *PD
	rng    *sim.RNG

	pain  float64
	spo2  float64
	hr    float64
	rr    float64
	mapBP float64

	apneic       bool
	deadband     float64 // slow physiological wander state
	analgesiaE50 float64 // effect-site conc for half-maximal analgesia
	extVent      float64 // mechanical ventilation scale (1 = normal support)
	mapOffset    float64 // hemodynamic insult offset (mmHg), for validation scenarios
}

// NewPatient builds a patient from traits and drug models. rng drives
// physiological wander; it must not be shared with other consumers.
func NewPatient(tr Traits, pk *PK, pd *PD, rng *sim.RNG) *Patient {
	p := &Patient{
		Traits:       tr,
		pk:           pk,
		pd:           pd,
		rng:          rng,
		pain:         tr.InitialPain,
		spo2:         98,
		hr:           tr.BaselineHR,
		rr:           tr.BaselineRR,
		mapBP:        tr.BaselineMAP,
		analgesiaE50: pd.Params().EC50 * 0.2, // analgesia precedes depression
		extVent:      1,
	}
	return p
}

// Reset rewinds the patient to the state NewPatient built: initial
// vitals from traits, drug-free PK/PD, no wander, full ventilation, no
// injected insult. Traits and model parameters are retained. The RNG is
// owned by the rig, which reseeds it alongside this call so a prototype
// clone's wander stream matches a from-scratch build.
func (p *Patient) Reset() {
	p.pk.Reset()
	p.pd.Reset()
	p.pain = p.Traits.InitialPain
	p.spo2 = 98
	p.hr = p.Traits.BaselineHR
	p.rr = p.Traits.BaselineRR
	p.mapBP = p.Traits.BaselineMAP
	p.apneic = false
	p.deadband = 0
	p.extVent = 1
	p.mapOffset = 0
}

// SetExternalVentilation scales the patient's effective ventilation by an
// external factor: 1 for normal (spontaneous or full mechanical support),
// 0 when a paused ventilator leaves an anesthetized patient unventilated —
// the hazard in the paper's X-ray/ventilator scenario. Clamped to [0,1.5].
func (p *Patient) SetExternalVentilation(scale float64) {
	if scale < 0 {
		scale = 0
	}
	if scale > 1.5 {
		scale = 1.5
	}
	p.extVent = scale
}

// ExternalVentilation reports the current mechanical support scale.
func (p *Patient) ExternalVentilation() float64 { return p.extVent }

// InduceHemodynamicShift applies a persistent MAP offset (mmHg, negative
// for hypotension) — a validation hook for injecting true hemodynamic
// events into monitoring scenarios (challenge (h): simulators for testing
// and validation of MCPS). Pass 0 to clear.
func (p *Patient) InduceHemodynamicShift(deltaMmHg float64) {
	p.mapOffset = deltaMmHg
}

// DefaultPatient returns an average patient with nominal morphine models.
func DefaultPatient(rng *sim.RNG) *Patient {
	return NewPatient(DefaultTraits(), MustPK(DefaultMorphinePK()), MustPD(DefaultMorphinePD()), rng)
}

// Bolus delivers an instantaneous IV dose (mg), e.g. a PCA demand dose.
func (p *Patient) Bolus(mg float64) { p.pk.Bolus(mg) }

// PK exposes the underlying compartment model (read-mostly; used by
// experiment scoring).
func (p *Patient) PK() *PK { return p.pk }

// PD exposes the underlying effect-site model.
func (p *Patient) PD() *PD { return p.pd }

// satTarget maps the ventilation fraction r to the steady-state SpO2 the
// lungs would reach if r were held: ~98% when ventilating normally,
// falling quadratically toward a floor in deep hypoventilation.
func satTarget(r float64) float64 {
	if r > 1 {
		r = 1
	}
	if r < 0 {
		r = 0
	}
	t := 98 - 45*(1-r)*(1-r)
	if t < 55 {
		t = 55
	}
	return t
}

// Step advances the whole patient by dt of virtual time under a constant
// infusion rate (mg/min). Typical callers step at 1 s resolution.
func (p *Patient) Step(dt sim.Time, infusionMgPerMin float64) {
	dtMin := dt.Seconds() / 60
	if dtMin <= 0 {
		return
	}
	p.pk.Step(dtMin, infusionMgPerMin)
	p.pd.Step(dtMin, p.pk.Concentration())

	dep := p.pd.Depression()
	vent := (1 - dep) * p.extVent
	if vent < 0 {
		vent = 0
	}

	// Respiratory rate tracks drive with a short lag; apnea below 4/min.
	targetRR := p.Traits.BaselineRR * vent
	p.rr += (targetRR - p.rr) * math.Min(1, dt.Seconds()/20)
	p.apneic = p.rr < 4

	// SpO2: first-order pursuit of the ventilation-determined target.
	tau := p.Traits.SpO2Tau
	if tau < 5 {
		tau = 5
	}
	target := satTarget(vent)
	p.spo2 += (target - p.spo2) * (1 - math.Exp(-dt.Seconds()/tau))

	// Pain: relieved by effect-site drug, regenerates slowly.
	relief := p.pd.EffectSite() / (p.pd.EffectSite() + p.analgesiaE50)
	targetPain := p.Traits.InitialPain * (1 - relief)
	p.pain += (targetPain - p.pain) * math.Min(1, dt.Seconds()/120)
	p.pain += p.Traits.PainRebound * dt.Seconds() / 3600 * relief
	if p.pain < 0 {
		p.pain = 0
	}
	if p.pain > 10 {
		p.pain = 10
	}

	// Slow physiological wander shared by HR/MAP (Ornstein-Uhlenbeck-ish).
	p.deadband += (-p.deadband*0.1 + p.rng.Normal(0, 0.4)) * math.Min(1, dt.Seconds()/10)

	// Heart rate: pain raises it, opioid calms it, hypoxemia provokes
	// compensatory tachycardia until profound desaturation.
	hr := p.Traits.BaselineHR + 2.2*p.pain - 6*dep + 2*p.deadband
	if p.spo2 < 90 {
		hr += (90 - p.spo2) * 1.4
	}
	if p.spo2 < 65 { // decompensation: bradycardia sets in
		hr -= (65 - p.spo2) * 3
	}
	if hr < 20 {
		hr = 20
	}
	p.hr += (hr - p.hr) * math.Min(1, dt.Seconds()/15)

	// MAP: mildly lowered by the opioid, raised by pain, plus wander and
	// any injected hemodynamic insult.
	m := p.Traits.BaselineMAP - 10*dep + 1.5*p.pain + 1.5*p.deadband + p.mapOffset
	p.mapBP += (m - p.mapBP) * math.Min(1, dt.Seconds()/30)
}

// Vitals returns the current ground-truth snapshot.
func (p *Patient) Vitals() Vitals {
	dep := p.pd.Depression()
	vent := (1 - dep) * p.extVent
	if vent < 0 {
		vent = 0
	}
	return Vitals{
		HeartRate:   p.hr,
		SpO2:        p.spo2,
		RespRate:    p.rr,
		MAP:         p.mapBP,
		Pain:        p.pain,
		DrugPlasma:  p.pk.Concentration(),
		DrugEffect:  p.pd.EffectSite(),
		Depression:  dep,
		Ventilation: vent,
	}
}

// Apneic reports whether respiration has effectively ceased.
func (p *Patient) Apneic() bool { return p.apneic }

// InDistress reports whether the patient is in the danger zone the PCA
// supervisor must prevent: profound desaturation or apnea.
func (p *Patient) InDistress() bool {
	return p.spo2 < 85 || p.apneic
}

// WantsBolus models the patient's demand behaviour: the probability of
// pressing the PCA button in an interval dt grows with pain and vanishes
// when sedated. Returns true if the (simulated) patient presses now.
func (p *Patient) WantsBolus(dt sim.Time) bool {
	if p.pain < 2 || p.pd.Depression() > 0.5 {
		return false // comfortable, or too sedated to press
	}
	// Mean press interval shrinks from ~20 min at pain 3 to ~5 min at pain 9.
	meanIntervalSec := 3600 / (1 + p.pain*0.8)
	rate := dt.Seconds() / meanIntervalSec
	return p.rng.Bernoulli(rate)
}
