package physio

import (
	"errors"
	"math"
)

// PDParams are pharmacodynamic parameters linking effect-site opioid
// concentration to respiratory depression via a sigmoidal Emax model.
type PDParams struct {
	Ke0   float64 // plasma<->effect-site equilibration rate (1/min)
	EC50  float64 // effect-site concentration of half-maximal effect (mg/L)
	Gamma float64 // Hill coefficient (sigmoid steepness)
	Emax  float64 // maximal fractional depression of respiratory drive [0,1]
}

// DefaultMorphinePD returns nominal opioid respiratory-depression dynamics.
// True morphine CNS equilibration is very slow (ke0 ~0.005-0.02/min); we
// compress the time axis (ke0 0.08/min, ~9 min half-time) so that 2 h
// scenarios exercise the full onset/offset dynamics, and place the
// respiratory-depression EC50 well above the analgesic range so that
// therapeutic dosing is safe and only misprogramming/overdose reaches
// dangerous depression — the qualitative separation the PCA safety
// argument rests on.
func DefaultMorphinePD() PDParams {
	return PDParams{Ke0: 0.08, EC50: 0.25, Gamma: 2.5, Emax: 0.92}
}

// Validate reports an error for unusable parameters.
func (p PDParams) Validate() error {
	if p.Ke0 <= 0 {
		return errors.New("physio: ke0 must be positive")
	}
	if p.EC50 <= 0 {
		return errors.New("physio: EC50 must be positive")
	}
	if p.Gamma <= 0 {
		return errors.New("physio: gamma must be positive")
	}
	if p.Emax < 0 || p.Emax > 1 {
		return errors.New("physio: Emax must lie in [0,1]")
	}
	return nil
}

// PD tracks the effect-site concentration and maps it to a fractional
// depression of respiratory drive in [0, Emax].
type PD struct {
	p  PDParams
	ce float64 // effect-site concentration, mg/L
}

// NewPD returns an effect-site model at zero concentration.
func NewPD(p PDParams) (*PD, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &PD{p: p}, nil
}

// MustPD is NewPD for known-good parameters.
func MustPD(p PDParams) *PD {
	m, err := NewPD(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the model parameters.
func (m *PD) Params() PDParams { return m.p }

// Reset returns the effect site to zero concentration, keeping the
// parameters. Used when a prototype clone rewinds a patient.
func (m *PD) Reset() { m.ce = 0 }

// EffectSite reports the current effect-site concentration (mg/L).
func (m *PD) EffectSite() float64 { return m.ce }

// Step advances the effect-site concentration toward the plasma
// concentration cp over dtMinutes using the analytic first-order solution,
// which is exact for piecewise-constant cp.
func (m *PD) Step(dtMinutes, cp float64) {
	if dtMinutes <= 0 {
		panic("physio: non-positive PD step")
	}
	alpha := math.Exp(-m.p.Ke0 * dtMinutes)
	m.ce = cp + (m.ce-cp)*alpha
}

// Depression reports the fractional respiratory-drive depression in
// [0, Emax] at the current effect-site concentration.
func (m *PD) Depression() float64 {
	return m.depressionAt(m.ce)
}

func (m *PD) depressionAt(ce float64) float64 {
	if ce <= 0 || math.IsNaN(ce) {
		return 0
	}
	// Compute the Hill curve in ratio form to avoid overflow for
	// concentrations astronomically above EC50.
	rg := math.Pow(ce/m.p.EC50, m.p.Gamma)
	if math.IsInf(rg, 1) {
		return m.p.Emax
	}
	return m.p.Emax * rg / (1 + rg)
}

// ConcentrationFor inverts the Hill curve: the effect-site concentration
// producing fractional depression e. Returns +Inf for e >= Emax.
func (m *PD) ConcentrationFor(e float64) float64 {
	if e <= 0 {
		return 0
	}
	if e >= m.p.Emax {
		return math.Inf(1)
	}
	r := e / (m.p.Emax - e)
	return m.p.EC50 * math.Pow(r, 1/m.p.Gamma)
}
