package physio

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func stepFor(p *Patient, d sim.Time, rate float64) {
	for t := sim.Time(0); t < d; t += sim.Second {
		p.Step(sim.Second, rate)
	}
}

func TestHealthyPatientStaysStable(t *testing.T) {
	p := DefaultPatient(sim.NewRNG(1))
	stepFor(p, 30*sim.Minute, 0)
	v := p.Vitals()
	if v.SpO2 < 95 {
		t.Fatalf("undrugged SpO2 = %f, want >= 95", v.SpO2)
	}
	if v.RespRate < 10 || v.RespRate > 20 {
		t.Fatalf("undrugged RR = %f, want 10-20", v.RespRate)
	}
	if p.InDistress() {
		t.Fatal("undrugged patient in distress")
	}
	if v.Pain < 5 {
		t.Fatalf("untreated post-op pain = %f, want >= 5", v.Pain)
	}
}

func TestOverdoseCausesRespiratoryFailure(t *testing.T) {
	p := DefaultPatient(sim.NewRNG(2))
	// Grossly excessive loading: repeated large boluses, the failure mode
	// the paper's PCA scenario (misprogrammed pump / PCA-by-proxy) warns of.
	minSpO2, maxDep := 100.0, 0.0
	distressed := false
	for i := 0; i < 12; i++ {
		p.Bolus(6)
		for s := sim.Time(0); s < 5*sim.Minute; s += sim.Second {
			p.Step(sim.Second, 0)
			v := p.Vitals()
			minSpO2 = math.Min(minSpO2, v.SpO2)
			maxDep = math.Max(maxDep, v.Depression)
			distressed = distressed || p.InDistress()
		}
	}
	if minSpO2 >= 85 {
		t.Fatalf("massive overdose: min SpO2 = %f, expected desaturation", minSpO2)
	}
	if !distressed {
		t.Fatal("massive overdose did not produce distress")
	}
	if maxDep < 0.5 {
		t.Fatalf("max depression = %f, want >= 0.5", maxDep)
	}
}

func TestTherapeuticDoseRelievesPainSafely(t *testing.T) {
	p := DefaultPatient(sim.NewRNG(3))
	pain0 := p.Vitals().Pain
	// Standard PCA pattern: 1 mg bolus q10min x6 (typical hourly limit).
	for i := 0; i < 6; i++ {
		p.Bolus(1)
		stepFor(p, 10*sim.Minute, 0)
	}
	stepFor(p, 30*sim.Minute, 0)
	v := p.Vitals()
	if v.Pain >= pain0 {
		t.Fatalf("pain did not improve: %f -> %f", pain0, v.Pain)
	}
	if v.SpO2 < 90 {
		t.Fatalf("therapeutic dosing desaturated patient to %f", v.SpO2)
	}
}

func TestSpO2RespondsWithLagThenRecovers(t *testing.T) {
	p := DefaultPatient(sim.NewRNG(4))
	p.Bolus(25) // large single dose
	s0 := p.Vitals().SpO2
	p.Step(sim.Second, 0)
	if math.Abs(p.Vitals().SpO2-s0) > 1 {
		t.Fatal("SpO2 moved immediately; oxygen-store lag missing")
	}
	minSpO2 := s0
	for s := sim.Time(0); s < 30*sim.Minute; s += sim.Second {
		p.Step(sim.Second, 0)
		minSpO2 = math.Min(minSpO2, p.Vitals().SpO2)
	}
	if minSpO2 > s0-5 {
		t.Fatalf("SpO2 never declined after large dose: nadir %f from %f", minSpO2, s0)
	}
	// Single-dose effect washes out: the patient recovers.
	stepFor(p, 90*sim.Minute, 0)
	if got := p.Vitals().SpO2; got < 95 {
		t.Fatalf("SpO2 = %f after washout, expected recovery", got)
	}
}

func TestWantsBolusTracksPain(t *testing.T) {
	rng := sim.NewRNG(5)
	p := DefaultPatient(rng)
	presses := 0
	for i := 0; i < 3600; i++ { // 1 h in pain, untreated
		if p.WantsBolus(sim.Second) {
			presses++
		}
		p.Step(sim.Second, 0)
	}
	if presses == 0 {
		t.Fatal("patient in pain never pressed the button in an hour")
	}
	// Heavily sedated patient cannot press.
	p.pd.ce = p.pd.ConcentrationFor(0.6)
	if p.pd.Depression() <= 0.5 {
		t.Fatal("test setup: expected high depression")
	}
	for i := 0; i < 3600; i++ {
		if p.WantsBolus(sim.Second) {
			t.Fatal("sedated patient pressed the button")
		}
	}
}

func TestAthleteBaselineHR(t *testing.T) {
	spec := DefaultPopulation()
	spec.AthleteFrac = 1 // force athletes
	rng := sim.NewRNG(6)
	p := spec.Sample(0, rng)
	if !p.Traits.Athlete {
		t.Fatal("expected athlete")
	}
	if p.Traits.BaselineHR > 55 {
		t.Fatalf("athlete baseline HR = %f, want <= 55", p.Traits.BaselineHR)
	}
}

func TestPopulationDeterminismAndSpread(t *testing.T) {
	spec := DefaultPopulation()
	a := spec.Cohort(40, sim.NewRNG(7))
	b := spec.Cohort(40, sim.NewRNG(7))
	for i := range a {
		if a[i].Traits != b[i].Traits {
			t.Fatalf("cohort not deterministic at %d: %+v vs %+v", i, a[i].Traits, b[i].Traits)
		}
		if a[i].PK().Params() != b[i].PK().Params() {
			t.Fatalf("PK params differ at %d", i)
		}
	}
	// Spread: EC50 must actually vary across the cohort.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range a {
		e := p.PD().Params().EC50
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	if hi/lo < 1.5 {
		t.Fatalf("population EC50 spread too small: [%f,%f]", lo, hi)
	}
}

// Property: sampled patients always have physically valid parameters.
func TestPopulationValidityProperty(t *testing.T) {
	spec := DefaultPopulation()
	f := func(seed int64, idx uint8) bool {
		p := spec.Sample(int(idx), sim.NewRNG(seed))
		if err := p.PK().Params().Validate(); err != nil {
			return false
		}
		if err := p.PD().Params().Validate(); err != nil {
			return false
		}
		tr := p.Traits
		return tr.BaselineHR >= 20 && tr.BaselineHR <= 150 &&
			tr.BaselineRR >= 4 && tr.BaselineRR <= 40 &&
			tr.SpO2Tau > 0 && tr.WeightKg > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVitalsSnapshotConsistency(t *testing.T) {
	p := DefaultPatient(sim.NewRNG(8))
	p.Bolus(5)
	stepFor(p, 20*sim.Minute, 0.02)
	v := p.Vitals()
	if math.Abs(v.Ventilation-(1-v.Depression)) > 1e-9 {
		t.Fatalf("ventilation %f != 1-depression %f", v.Ventilation, 1-v.Depression)
	}
	if v.DrugPlasma != p.PK().Concentration() {
		t.Fatal("snapshot plasma != model plasma")
	}
	if v.DrugEffect != p.PD().EffectSite() {
		t.Fatal("snapshot effect-site != model effect-site")
	}
}
