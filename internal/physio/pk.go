// Package physio implements the patient models the paper's challenge (h)
// calls for: pharmacokinetic drug absorption (two-compartment, after the
// morphine model of Mazoit et al. cited by the paper), pharmacodynamic
// effect on respiration, vital-sign generation, the breathing cycle needed
// by the X-ray/ventilator scenario, and population variability.
//
// All models advance on the virtual clock in fixed steps and are
// deterministic given their parameters and RNG seed.
package physio

import (
	"errors"
	"fmt"
	"math"
)

// PKParams are two-compartment pharmacokinetic parameters. Units: volumes
// in liters, rate constants in 1/min. The defaults approximate published
// morphine kinetics for a 70 kg adult (central volume ~17.8 L, terminal
// half-life on the order of 2-3 h).
type PKParams struct {
	V1  float64 // central compartment volume (L)
	V2  float64 // peripheral compartment volume (L)
	K10 float64 // elimination rate from central (1/min)
	K12 float64 // central -> peripheral (1/min)
	K21 float64 // peripheral -> central (1/min)
}

// DefaultMorphinePK returns nominal adult morphine parameters.
func DefaultMorphinePK() PKParams {
	return PKParams{V1: 17.8, V2: 80.0, K10: 0.07, K12: 0.12, K21: 0.03}
}

// Validate reports an error for physically meaningless parameters.
func (p PKParams) Validate() error {
	if p.V1 <= 0 || p.V2 <= 0 {
		return errors.New("physio: compartment volumes must be positive")
	}
	if p.K10 < 0 || p.K12 < 0 || p.K21 < 0 {
		return errors.New("physio: rate constants must be nonnegative")
	}
	return nil
}

// PK is the two-compartment drug-amount model:
//
//	dA1/dt = u(t) - (k10+k12)·A1 + k21·A2
//	dA2/dt = k12·A1 - k21·A2
//
// where A1, A2 are drug amounts (mg) in the central and peripheral
// compartments and u(t) is the infusion rate (mg/min). Plasma
// concentration is A1/V1 (mg/L). Integration is classical RK4, which at
// the 1 s steps used by the simulations is accurate to well below clinical
// relevance.
type PK struct {
	p          PKParams
	a1, a2     float64 // compartment amounts, mg
	eliminated float64 // cumulative eliminated mass, mg
	infused    float64 // cumulative infused mass, mg
}

// NewPK returns a drug-free patient compartment model.
func NewPK(p PKParams) (*PK, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &PK{p: p}, nil
}

// MustPK is NewPK for known-good (e.g. default) parameters.
func MustPK(p PKParams) *PK {
	m, err := NewPK(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the model parameters.
func (m *PK) Params() PKParams { return m.p }

// Reset returns the model to the drug-free initial state, keeping its
// parameters. Used when a prototype clone rewinds a patient.
func (m *PK) Reset() {
	m.a1 = 0
	m.a2 = 0
	m.eliminated = 0
	m.infused = 0
}

// Concentration reports the central plasma concentration in mg/L.
func (m *PK) Concentration() float64 { return m.a1 / m.p.V1 }

// Amounts reports compartment drug amounts in mg.
func (m *PK) Amounts() (central, peripheral float64) { return m.a1, m.a2 }

// TotalInfused reports the cumulative drug mass delivered (mg).
func (m *PK) TotalInfused() float64 { return m.infused }

// TotalEliminated reports the cumulative drug mass eliminated (mg).
func (m *PK) TotalEliminated() float64 { return m.eliminated }

// Bolus adds an instantaneous dose (mg) to the central compartment,
// modeling an IV push such as a PCA demand dose.
func (m *PK) Bolus(mg float64) {
	if mg < 0 {
		panic(fmt.Sprintf("physio: negative bolus %f", mg))
	}
	m.a1 += mg
	m.infused += mg
}

// Step advances the model by dtMinutes with a constant infusion rate
// u (mg/min) over the step. dtMinutes must be positive and small relative
// to the fastest time constant; callers use steps of at most a few seconds.
func (m *PK) Step(dtMinutes, u float64) {
	if dtMinutes <= 0 {
		panic("physio: non-positive PK step")
	}
	if u < 0 {
		u = 0
	}
	k10, k12, k21 := m.p.K10, m.p.K12, m.p.K21
	f := func(a1, a2 float64) (d1, d2 float64) {
		d1 = u - (k10+k12)*a1 + k21*a2
		d2 = k12*a1 - k21*a2
		return
	}
	h := dtMinutes
	a1, a2 := m.a1, m.a2
	k1a, k1b := f(a1, a2)
	k2a, k2b := f(a1+h/2*k1a, a2+h/2*k1b)
	k3a, k3b := f(a1+h/2*k2a, a2+h/2*k2b)
	k4a, k4b := f(a1+h*k3a, a2+h*k3b)
	na1 := a1 + h/6*(k1a+2*k2a+2*k3a+k4a)
	na2 := a2 + h/6*(k1b+2*k2b+2*k3b+k4b)
	if na1 < 0 {
		na1 = 0
	}
	if na2 < 0 {
		na2 = 0
	}
	// Mass bookkeeping: infused mass this step, eliminated inferred from
	// conservation so the invariant infused == stored + eliminated holds
	// to integration accuracy.
	m.infused += u * h
	m.eliminated += (m.a1 + m.a2 + u*h) - (na1 + na2)
	m.a1, m.a2 = na1, na2
}

// HalfLifeMinutes estimates the terminal elimination half-life from the
// slow hybrid rate constant of the two-compartment system.
func (m *PK) HalfLifeMinutes() float64 {
	k10, k12, k21 := m.p.K10, m.p.K12, m.p.K21
	sum := k10 + k12 + k21
	disc := sum*sum - 4*k10*k21
	if disc < 0 {
		disc = 0
	}
	beta := (sum - math.Sqrt(disc)) / 2
	if beta <= 0 {
		return math.Inf(1)
	}
	return math.Ln2 / beta
}
