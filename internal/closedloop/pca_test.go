package closedloop

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

func TestPCAConfigValidate(t *testing.T) {
	if err := DefaultPCAConfig("p", "o").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*PCAConfig){
		func(c *PCAConfig) { c.PumpID = "" },
		func(c *PCAConfig) { c.OximeterID = "" },
		func(c *PCAConfig) { c.StopSpO2 = 0 },
		func(c *PCAConfig) { c.StopSpO2 = 101 },
		func(c *PCAConfig) { c.ResumeSpO2 = c.StopSpO2 - 1 },
		func(c *PCAConfig) { c.DataTimeout = 0 },
		func(c *PCAConfig) { c.CommandTimeout = 0 },
		func(c *PCAConfig) { c.AlgorithmDelay = -time.Second },
	}
	for i, mut := range bad {
		c := DefaultPCAConfig("p", "o")
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// The headline safety result (Figure 1 / F1): a misprogrammed pump plus a
// demanding patient overdoses without the supervisor and does not with it.
func TestSupervisorPreventsOverdose(t *testing.T) {
	without := DefaultPCAScenario(42)
	without.SupervisorEnabled = false
	outNo, _, err := RunPCAScenario(without)
	if err != nil {
		t.Fatal(err)
	}

	with := DefaultPCAScenario(42)
	outYes, sc, err := RunPCAScenario(with)
	if err != nil {
		t.Fatal(err)
	}

	if !outNo.Distressed {
		t.Fatalf("unsupervised misprogrammed pump did not endanger the patient: %+v", outNo)
	}
	if outYes.Distressed {
		t.Fatalf("supervised run still reached distress: %+v", outYes)
	}
	if outYes.MinSpO2 <= outNo.MinSpO2 {
		t.Fatalf("supervisor did not improve minimum SpO2: %f vs %f", outYes.MinSpO2, outNo.MinSpO2)
	}
	if outYes.PumpStops == 0 {
		t.Fatal("supervisor never stopped the pump")
	}
	if outYes.Alarms == 0 {
		t.Fatal("supervisor raised no alarms")
	}
	if sc.Sup.MeanStopLatency() <= 0 {
		t.Fatal("no acked stops recorded")
	}
	// End-to-end stop latency should be dominated by algorithm delay +
	// network round trip: well under a second on a healthy LAN.
	if sc.Sup.MeanStopLatency() > sim.Second {
		t.Fatalf("mean stop latency %v implausibly high", sc.Sup.MeanStopLatency())
	}
}

func TestSupervisorAllowsTherapeuticUse(t *testing.T) {
	cfg := DefaultPCAScenario(7)
	cfg.Pump = device.DefaultPumpSettings() // correctly programmed
	cfg.ProxyPressInterval = 0              // patient presses for themselves
	out, _, err := RunPCAScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Distressed {
		t.Fatalf("correctly programmed pump reached distress: %+v", out)
	}
	if out.Boluses == 0 {
		t.Fatal("patient never received a dose")
	}
	if out.FinalPain >= physio.DefaultTraits().InitialPain-0.5 {
		t.Fatalf("pain not relieved: %f", out.FinalPain)
	}
}

func TestFailSafeStopsOnDropout(t *testing.T) {
	cfg := DefaultPCAScenario(11)
	cfg.Pump.ConcentrationFactor = 1
	sc := BuildPCAScenario(cfg)
	// Kill the oximeter probe for 5 minutes mid-run.
	sc.K.At(20*sim.Minute, func() { sc.Oximeter.InjectDropout(5 * sim.Minute) })
	if _, err := sc.Run(40 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sc.Sup.DataTimeouts == 0 {
		t.Fatal("data timeout never detected during 5-minute dropout")
	}
	found := false
	for _, a := range sc.Sup.Alarms() {
		if a.Kind == "data-timeout" {
			found = true
		}
	}
	if !found {
		t.Fatal("no data-timeout alarm raised")
	}
	if sc.Sup.StopsIssued == 0 {
		t.Fatal("fail-safe supervisor did not stop the pump on data loss")
	}
}

func TestFailOperationalContinuesOnDropout(t *testing.T) {
	cfg := DefaultPCAScenario(11)
	cfg.Pump.ConcentrationFactor = 1
	cfg.Supervisor = DefaultPCAConfig("pump1", "ox1")
	cfg.Supervisor.FailSafe = false
	sc := BuildPCAScenario(cfg)
	sc.K.At(20*sim.Minute, func() { sc.Oximeter.InjectDropout(5 * sim.Minute) })
	if _, err := sc.Run(40 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sc.Sup.DataTimeouts == 0 {
		t.Fatal("data timeout not detected")
	}
	if sc.Sup.StopsIssued != 0 {
		t.Fatal("fail-operational supervisor stopped the pump on data loss")
	}
}

func TestAutoResumeAfterRecovery(t *testing.T) {
	cfg := DefaultPCAScenario(13)
	cfg.Duration = 4 * sim.Hour
	out, sc, err := RunPCAScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.PumpStops == 0 {
		t.Skip("no stop occurred with this seed; nothing to resume")
	}
	if sc.Sup.ResumesIssued == 0 {
		t.Fatal("supervisor never auto-resumed after recovery")
	}
}

func TestSupervisorSurvivesLossyNetwork(t *testing.T) {
	cfg := DefaultPCAScenario(17)
	cfg.Link = mednet.LinkParams{
		Latency: 5 * time.Millisecond, Jitter: 3 * time.Millisecond, LossProb: 0.2,
	}
	out, _, err := RunPCAScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With stop-command retries, 20% loss must not defeat the interlock.
	if out.Distressed {
		t.Fatalf("supervisor failed under 20%% loss: %+v", out)
	}
}

func TestProxyPressesAreBounded(t *testing.T) {
	// PCA-by-proxy against a *correctly* programmed pump: the visitor
	// presses every 2 minutes, but the lockout plus the supervisor keep
	// the patient out of danger.
	cfg := DefaultPCAScenario(23)
	cfg.Pump = device.DefaultPumpSettings()
	cfg.ProxyPressInterval = 2 * sim.Minute
	out, _, err := RunPCAScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.BolusesDenied == 0 {
		t.Fatal("lockout never denied the proxy presser")
	}
	if out.Distressed {
		t.Fatalf("proxy pressing defeated the supervised system: %+v", out)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, _, err := RunPCAScenario(DefaultPCAScenario(99))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunPCAScenario(DefaultPCAScenario(99))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, _, err := RunPCAScenario(DefaultPCAScenario(100))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical outcomes (suspicious)")
	}
}

func TestPumpCrashTimesOutCommands(t *testing.T) {
	cfg := DefaultPCAScenario(31)
	sc := BuildPCAScenario(cfg)
	sc.K.At(10*sim.Minute, func() { sc.Pump.Conn().Crash() })
	if _, err := sc.Run(cfg.Duration); err != nil {
		t.Fatal(err)
	}
	// The supervisor should have exhausted retries and raised
	// command-failed at some point after the crash (it cannot stop a dead
	// pump, but it must tell the caregiver).
	failed := false
	for _, a := range sc.Sup.Alarms() {
		if a.Kind == "command-failed" {
			failed = true
		}
	}
	if sc.Sup.StopsIssued > 0 && !failed {
		t.Fatal("stop on crashed pump produced no command-failed alarm")
	}
}
