package closedloop

import (
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// XRaySyncScenarioConfig assembles the complete Section II.b rig: one
// ventilated patient, an X-ray, and the synchronizer app coordinating
// them over a lossy network. Like PCAScenarioConfig, a run is a pure
// function of this config, which is what lets the fleet layer serve it
// as a registered cell.
type XRaySyncScenarioConfig struct {
	Seed     int64
	Requests int      // image requests per session; 0 = 24
	Spacing  sim.Time // gap between requests; 0 = 20 s
	Link     mednet.LinkParams
	Sync     XRaySyncConfig // full synchronizer design, incl. protocol

	// Trace, when non-nil, is the (empty or Reset) trace to record into —
	// see PCAScenarioConfig.Trace.
	Trace *sim.Trace

	// WireCodec selects the ICE wire encoding for the rig's endpoints —
	// see PCAScenarioConfig.WireCodec.
	WireCodec string
}

// DefaultXRaySyncScenario returns the E2 rig at its nominal network
// point (10 ms one-way latency, 2% loss) under the chosen protocol.
func DefaultXRaySyncScenario(seed int64, proto SyncProtocol) XRaySyncScenarioConfig {
	delay := 10 * time.Millisecond
	return XRaySyncScenarioConfig{
		Seed:     seed,
		Requests: 24,
		Spacing:  20 * sim.Second,
		Link:     mednet.LinkParams{Latency: delay, Jitter: delay / 4, LossProb: 0.02},
		Sync:     DefaultXRaySyncConfig("xr1", "vent1", proto),
	}
}

// XRaySyncOutcome scores one imaging session.
type XRaySyncOutcome struct {
	Sharp, Blurred      uint64 // image quality split
	Deferred            uint64 // state-sync: no usable window, request dropped
	ResumeFailures      uint64 // pause-restart: resume never acknowledged
	UnventilatedSeconds float64
	MinSpO2             float64
	KernelEvents        uint64 // kernel events executed by the session
	WireBytes           uint64 // encoded envelope bytes (shared cell codec)
	WireEncodeNS        uint64 // sampled encode wall time, ns
}

// Metric names emitted by XRaySyncOutcome.Metrics. MinSpO2 reuses
// MetricMinSpO2 so cross-scenario reducers agree on spelling.
const (
	MetricSharpImages    = "sharp"
	MetricBlurredImages  = "blurred"
	MetricDeferredShots  = "deferred"
	MetricResumeFailures = "resume_failures"
	MetricUnventilatedS  = "unventilated_s"
)

// Metrics flattens the outcome into the named-float form the fleet
// reduce stage consumes.
func (o XRaySyncOutcome) Metrics() map[string]float64 {
	return map[string]float64{
		MetricSharpImages:    float64(o.Sharp),
		MetricBlurredImages:  float64(o.Blurred),
		MetricDeferredShots:  float64(o.Deferred),
		MetricResumeFailures: float64(o.ResumeFailures),
		MetricUnventilatedS:  o.UnventilatedSeconds,
		MetricMinSpO2:        o.MinSpO2,
		MetricSimEvents:      float64(o.KernelEvents),
		MetricWireBytes:      float64(o.WireBytes),
		MetricWireEncodeNS:   float64(o.WireEncodeNS),
	}
}

// RunXRaySyncScenario builds the rig from cfg, runs the imaging session
// to its horizon, and scores it. Construction order (and hence RNG fork
// order) is fixed: experiments.E2 sweeps this exact function, and its
// tables are bit-for-bit regression fixtures.
func RunXRaySyncScenario(cfg XRaySyncScenarioConfig) (XRaySyncOutcome, error) {
	if cfg.Requests == 0 {
		cfg.Requests = 24
	}
	if cfg.Spacing == 0 {
		cfg.Spacing = 20 * sim.Second
	}

	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed)
	net := mednet.MustNew(k, rng.Fork("net"), cfg.Link)
	wire := core.MustNewCodec(cfg.WireCodec)
	mgrCfg := core.DefaultManagerConfig()
	mgrCfg.Codec = wire
	mgr := core.MustNewManager(k, net, mgrCfg)
	patient := physio.DefaultPatient(rng.Fork("patient"))

	vent := device.MustNewVentilator(k, net, cfg.Sync.VentilatorID, physio.DefaultBreathCycle(), patient, core.ConnectConfig{Codec: wire})
	xray := device.MustNewXRay(k, net, cfg.Sync.XRayID, vent, core.ConnectConfig{Codec: wire})
	ward := device.NewWard(k, patient, sim.Second)
	ward.AttachVentSupport(vent)
	tr := cfg.Trace
	if tr == nil {
		tr = sim.NewTrace()
	}
	ward.Trace = tr

	sync, err := NewXRaySync(k, mgr, cfg.Sync)
	if err != nil {
		return XRaySyncOutcome{}, err
	}

	for i := 0; i < cfg.Requests; i++ {
		at := 10*sim.Second + sim.Time(i)*cfg.Spacing
		k.AtFunc(at, runRequestImage, sync)
	}
	horizon := 10*sim.Second + sim.Time(cfg.Requests+6)*cfg.Spacing
	if err := k.Run(horizon); err != nil {
		return XRaySyncOutcome{}, err
	}

	ws := wire.Stats()
	out := XRaySyncOutcome{
		Sharp: xray.Sharp, Blurred: xray.Blurred, Deferred: sync.Deferred,
		ResumeFailures: sync.ResumeFailures,
		MinSpO2:        tr.Stats("true/spo2").Min,
		KernelEvents:   k.Executed(),
		WireBytes:      ws.Bytes,
		WireEncodeNS:   ws.EncodeNS,
	}
	// Unventilated time: integrate the recorded mechanical-support series.
	ev := tr.Series("true/extvent")
	for i := 0; i+1 < len(ev); i++ {
		if ev[i].V < 0.5 {
			out.UnventilatedSeconds += (ev[i+1].T - ev[i].T).Seconds()
		}
	}
	return out, nil
}

// RunXRaySyncCell is RunXRaySyncScenario in fleet-cell shape: a plain
// metric map, so this package stays free of fleet imports.
func RunXRaySyncCell(cfg XRaySyncScenarioConfig) (map[string]float64, error) {
	out, err := RunXRaySyncScenario(cfg)
	if err != nil {
		return nil, err
	}
	return out.Metrics(), nil
}
