package closedloop

import (
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// XRaySyncScenarioConfig assembles the complete Section II.b rig: one
// ventilated patient, an X-ray, and the synchronizer app coordinating
// them over a lossy network. Like PCAScenarioConfig, a run is a pure
// function of this config, which is what lets the fleet layer serve it
// as a registered cell.
type XRaySyncScenarioConfig struct {
	Seed     int64
	Requests int      // image requests per session; 0 = 24
	Spacing  sim.Time // gap between requests; 0 = 20 s
	Link     mednet.LinkParams
	Sync     XRaySyncConfig // full synchronizer design, incl. protocol

	// Trace, when non-nil, is the (empty or Reset) trace to record into —
	// see PCAScenarioConfig.Trace.
	Trace *sim.Trace

	// WireCodec selects the ICE wire encoding for the rig's endpoints —
	// see PCAScenarioConfig.WireCodec.
	WireCodec string
}

// DefaultXRaySyncScenario returns the E2 rig at its nominal network
// point (10 ms one-way latency, 2% loss) under the chosen protocol.
func DefaultXRaySyncScenario(seed int64, proto SyncProtocol) XRaySyncScenarioConfig {
	delay := 10 * time.Millisecond
	return XRaySyncScenarioConfig{
		Seed:     seed,
		Requests: 24,
		Spacing:  20 * sim.Second,
		Link:     mednet.LinkParams{Latency: delay, Jitter: delay / 4, LossProb: 0.02},
		Sync:     DefaultXRaySyncConfig("xr1", "vent1", proto),
	}
}

// XRaySyncOutcome scores one imaging session.
type XRaySyncOutcome struct {
	Sharp, Blurred      uint64 // image quality split
	Deferred            uint64 // state-sync: no usable window, request dropped
	ResumeFailures      uint64 // pause-restart: resume never acknowledged
	UnventilatedSeconds float64
	MinSpO2             float64
	KernelEvents        uint64 // kernel events executed by the session
	WireBytes           uint64 // encoded envelope bytes (shared cell codec)
	WireEncodeNS        uint64 // sampled encode wall time, ns
}

// Metric names emitted by XRaySyncOutcome.Metrics. MinSpO2 reuses
// MetricMinSpO2 so cross-scenario reducers agree on spelling.
const (
	MetricSharpImages    = "sharp"
	MetricBlurredImages  = "blurred"
	MetricDeferredShots  = "deferred"
	MetricResumeFailures = "resume_failures"
	MetricUnventilatedS  = "unventilated_s"
)

// Metrics flattens the outcome into the named-float form the fleet
// reduce stage consumes.
func (o XRaySyncOutcome) Metrics() map[string]float64 {
	return map[string]float64{
		MetricSharpImages:    float64(o.Sharp),
		MetricBlurredImages:  float64(o.Blurred),
		MetricDeferredShots:  float64(o.Deferred),
		MetricResumeFailures: float64(o.ResumeFailures),
		MetricUnventilatedS:  o.UnventilatedSeconds,
		MetricMinSpO2:        o.MinSpO2,
		MetricSimEvents:      float64(o.KernelEvents),
		MetricWireBytes:      float64(o.WireBytes),
		MetricWireEncodeNS:   float64(o.WireEncodeNS),
	}
}

// XRaySyncScenario is the assembled Section II.b rig, built once and —
// for prototype cloning — rewound per cell by Reset.
type XRaySyncScenario struct {
	cfg XRaySyncScenarioConfig

	K       *sim.Kernel
	Net     *mednet.Network
	Mgr     *core.Manager
	Wire    core.Codec
	Patient *physio.Patient
	Vent    *device.Ventilator
	XRay    *device.XRay
	Ward    *device.Ward
	Sync    *XRaySync
	Trace   *sim.Trace

	rootRNG    *sim.RNG
	netRNG     *sim.RNG
	patientRNG *sim.RNG
	ws0        core.CodecStats // zero after build; set per cell by Reset
}

// BuildXRaySyncScenario constructs (but does not run) the rig.
// Construction order (and hence RNG fork order) is fixed:
// experiments.E2 sweeps this rig, and its tables are bit-for-bit
// regression fixtures. As with BuildPCAScenario, Reset replays this
// sequence, so changes here must be mirrored there.
func BuildXRaySyncScenario(cfg XRaySyncScenarioConfig) (*XRaySyncScenario, error) {
	if cfg.Requests == 0 {
		cfg.Requests = 24
	}
	if cfg.Spacing == 0 {
		cfg.Spacing = 20 * sim.Second
	}

	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed)
	netRNG := rng.Fork("net")
	net := mednet.MustNew(k, netRNG, cfg.Link)
	wire := core.MustNewCodec(cfg.WireCodec)
	mgrCfg := core.DefaultManagerConfig()
	mgrCfg.Codec = wire
	mgr := core.MustNewManager(k, net, mgrCfg)
	patientRNG := rng.Fork("patient")
	patient := physio.DefaultPatient(patientRNG)

	vent := device.MustNewVentilator(k, net, cfg.Sync.VentilatorID, physio.DefaultBreathCycle(), patient, core.ConnectConfig{Codec: wire})
	xray := device.MustNewXRay(k, net, cfg.Sync.XRayID, vent, core.ConnectConfig{Codec: wire})
	ward := device.NewWard(k, patient, sim.Second)
	ward.AttachVentSupport(vent)
	tr := cfg.Trace
	if tr == nil {
		tr = sim.NewTrace()
	}
	ward.Trace = tr

	sync, err := NewXRaySync(k, mgr, cfg.Sync)
	if err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Requests; i++ {
		at := 10*sim.Second + sim.Time(i)*cfg.Spacing
		k.AtFunc(at, runRequestImage, sync)
	}
	return &XRaySyncScenario{
		cfg: cfg, K: k, Net: net, Mgr: mgr, Wire: wire, Patient: patient,
		Vent: vent, XRay: xray, Ward: ward, Sync: sync, Trace: tr,
		rootRNG: rng, netRNG: netRNG, patientRNG: patientRNG,
	}, nil
}

// Reset rewinds the rig to the just-built state for a new cell seeded
// with seed, recording into trace (nil keeps the current trace, which
// the caller must have Reset). The replay mirrors BuildXRaySyncScenario
// exactly — same fork order, same scheduling order — so sequence
// numbers and outputs match a fresh build.
func (sc *XRaySyncScenario) Reset(seed int64, trace *sim.Trace) {
	sc.K.Reset()
	sc.rootRNG.Reseed(seed)
	sc.netRNG.Reseed(sc.rootRNG.ForkSeed("net"))
	sc.Net.Reset()
	sc.ws0 = sc.Wire.Stats() // before re-announce traffic: deltas span exactly one cell
	sc.Mgr.Reset()           // sweeper: first scheduled event, as at build
	sc.patientRNG.Reseed(sc.rootRNG.ForkSeed("patient"))
	sc.Patient.Reset()
	sc.Vent.Reset() // re-announce + telemetry, in NewVentilator order
	sc.XRay.Reset()
	if trace != nil {
		sc.Trace = trace
		sc.Ward.Trace = trace
	}
	sc.Ward.Reset()
	sc.Sync.Reset()
	for i := 0; i < sc.cfg.Requests; i++ {
		at := 10*sim.Second + sim.Time(i)*sc.cfg.Spacing
		sc.K.AtFunc(at, runRequestImage, sc.Sync)
	}
}

// run executes the session to its horizon and scores it. Wire stats are
// reported relative to the last Reset baseline; after a fresh build the
// baseline is zero, so the from-scratch view is unchanged.
func (sc *XRaySyncScenario) run() (XRaySyncOutcome, error) {
	horizon := 10*sim.Second + sim.Time(sc.cfg.Requests+6)*sc.cfg.Spacing
	if err := sc.K.Run(horizon); err != nil {
		return XRaySyncOutcome{}, err
	}

	ws := sc.Wire.Stats()
	out := XRaySyncOutcome{
		Sharp: sc.XRay.Sharp, Blurred: sc.XRay.Blurred, Deferred: sc.Sync.Deferred,
		ResumeFailures: sc.Sync.ResumeFailures,
		MinSpO2:        sc.Trace.Stats("true/spo2").Min,
		KernelEvents:   sc.K.Executed(),
		WireBytes:      ws.Bytes - sc.ws0.Bytes,
		WireEncodeNS:   ws.EncodeNS - sc.ws0.EncodeNS,
	}
	// Unventilated time: integrate the recorded mechanical-support series.
	ev := sc.Trace.Series("true/extvent")
	for i := 0; i+1 < len(ev); i++ {
		if ev[i].V < 0.5 {
			out.UnventilatedSeconds += (ev[i+1].T - ev[i].T).Seconds()
		}
	}
	return out, nil
}

// RunXRaySyncScenario builds the rig from cfg, runs the imaging session
// to its horizon, and scores it — the from-scratch path, unchanged in
// behavior from when it built inline.
func RunXRaySyncScenario(cfg XRaySyncScenarioConfig) (XRaySyncOutcome, error) {
	sc, err := BuildXRaySyncScenario(cfg)
	if err != nil {
		return XRaySyncOutcome{}, err
	}
	return sc.run()
}

// XRaySyncCellRig is the prototype behind fleet cloning for imaging
// cells: one built rig, stamped per cell by Reset.
type XRaySyncCellRig struct {
	sc *XRaySyncScenario
}

// NewXRaySyncCellRig builds the prototype once from cfg, or returns nil
// when the config cannot build (callers fall back to from-scratch
// construction, which reports the error per cell).
func NewXRaySyncCellRig(cfg XRaySyncScenarioConfig) *XRaySyncCellRig {
	cfg.Trace = nil // per-cell traces arrive through RunCell
	sc, err := BuildXRaySyncScenario(cfg)
	if err != nil {
		return nil
	}
	return &XRaySyncCellRig{sc: sc}
}

// RunCell stamps one cell from the prototype — byte-identical metrics
// to RunXRaySyncCell on the same config and seed.
func (r *XRaySyncCellRig) RunCell(seed int64, trace *sim.Trace) (map[string]float64, error) {
	r.sc.Reset(seed, trace)
	out, err := r.sc.run()
	if err != nil {
		return nil, err
	}
	return out.Metrics(), nil
}

// RunXRaySyncCell is RunXRaySyncScenario in fleet-cell shape: a plain
// metric map, so this package stays free of fleet imports.
func RunXRaySyncCell(cfg XRaySyncScenarioConfig) (map[string]float64, error) {
	out, err := RunXRaySyncScenario(cfg)
	if err != nil {
		return nil, err
	}
	return out.Metrics(), nil
}
