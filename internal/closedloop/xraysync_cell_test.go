package closedloop

import (
	"reflect"
	"testing"
)

// The cell runner must be a pure function of its config: identical config,
// identical metrics. This is what the fleet layer (and the gateway's
// result cache above it) rely on.
func TestRunXRaySyncCellDeterministic(t *testing.T) {
	cfg := DefaultXRaySyncScenario(17, ProtocolStateSync)
	cfg.Requests = 6
	a, err := RunXRaySyncCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunXRaySyncCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MetricWireEncodeNS is wall-clock accounting, explicitly outside the
	// determinism contract; the fleet lifts it out of the map before
	// anything deterministic (tables, the gateway cache) consumes it.
	delete(a, MetricWireEncodeNS)
	delete(b, MetricWireEncodeNS)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different metrics:\n%v\nvs\n%v", a, b)
	}
	if a[MetricSharpImages]+a[MetricBlurredImages]+a[MetricDeferredShots] == 0 {
		t.Fatalf("session produced no imaging activity: %v", a)
	}
}

func TestRunXRaySyncCellRejectsBadConfig(t *testing.T) {
	cfg := DefaultXRaySyncScenario(1, ProtocolManual)
	cfg.Sync.Exposure = 0
	if _, err := RunXRaySyncCell(cfg); err == nil {
		t.Fatal("invalid synchronizer config did not error")
	}
}
