package closedloop

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// xrayRig assembles ventilator + x-ray + synchronizer over a configurable
// link.
type xrayRig struct {
	k       *sim.Kernel
	net     *mednet.Network
	mgr     *core.Manager
	vent    *device.Ventilator
	xray    *device.XRay
	sync    *XRaySync
	patient *physio.Patient
}

func newXRayRig(t *testing.T, link mednet.LinkParams, proto SyncProtocol, mutate func(*XRaySyncConfig)) *xrayRig {
	t.Helper()
	k := sim.NewKernel()
	rng := sim.NewRNG(5)
	net := mednet.MustNew(k, rng.Fork("net"), link)
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	patient := physio.DefaultPatient(rng.Fork("patient"))
	r := &xrayRig{k: k, net: net, mgr: mgr, patient: patient}
	k.At(0, func() {
		r.vent = device.MustNewVentilator(k, net, "vent1", physio.DefaultBreathCycle(), patient, core.ConnectConfig{})
		r.xray = device.MustNewXRay(k, net, "xr1", r.vent, core.ConnectConfig{})
		w := device.NewWard(k, patient, sim.Second)
		w.AttachVentSupport(r.vent)
		cfg := DefaultXRaySyncConfig("xr1", "vent1", proto)
		if mutate != nil {
			mutate(&cfg)
		}
		r.sync = MustNewXRaySync(k, mgr, cfg)
	})
	return r
}

func TestXRaySyncConfigValidate(t *testing.T) {
	if err := DefaultXRaySyncConfig("x", "v", ProtocolStateSync).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*XRaySyncConfig){
		func(c *XRaySyncConfig) { c.XRayID = "" },
		func(c *XRaySyncConfig) { c.Exposure = 0 },
		func(c *XRaySyncConfig) { c.DelayBound = -time.Second },
		func(c *XRaySyncConfig) { c.CommandTimeout = 0 },
		func(c *XRaySyncConfig) { c.Cycle.RatePerMin = 0 },
		func(c *XRaySyncConfig) { c.ResumeRetries = -1 },
	}
	for i, mut := range bad {
		c := DefaultXRaySyncConfig("x", "v", ProtocolStateSync)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func requestImages(r *xrayRig, n int, spacing sim.Time) {
	for i := 0; i < n; i++ {
		at := sim.Time(i+1) * spacing
		r.k.At(at, func() { r.sync.RequestImage() })
	}
}

func TestStateSyncProducesSharpImages(t *testing.T) {
	r := newXRayRig(t, mednet.DefaultLink(), ProtocolStateSync, nil)
	requestImages(r, 20, 20*sim.Second)
	if err := r.k.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if r.xray.Blurred != 0 {
		t.Fatalf("state-sync produced %d blurred images (sharp %d)", r.xray.Blurred, r.xray.Sharp)
	}
	if r.xray.Sharp < 15 {
		t.Fatalf("state-sync produced only %d sharp images of 20 requests (deferred %d)",
			r.xray.Sharp, r.sync.Deferred)
	}
	// Ventilation was never interrupted.
	if r.vent.Pauses != 0 {
		t.Fatal("state-sync paused the ventilator")
	}
}

func TestManualShotsOftenBlurred(t *testing.T) {
	r := newXRayRig(t, mednet.DefaultLink(), ProtocolManual, nil)
	requestImages(r, 20, 17*sim.Second) // unaligned with the 5 s cycle
	if err := r.k.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if r.xray.Blurred == 0 {
		t.Fatal("uncoordinated imaging never hit a moving chest (implausible)")
	}
}

func TestPauseRestartIsSharpButStopsVentilation(t *testing.T) {
	r := newXRayRig(t, mednet.DefaultLink(), ProtocolPauseRestart, nil)
	requestImages(r, 5, sim.Minute)
	if err := r.k.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if r.xray.Blurred != 0 {
		t.Fatalf("pause-restart produced %d blurred images", r.xray.Blurred)
	}
	if r.vent.Pauses != 5 || r.vent.Resumes != 5 {
		t.Fatalf("pauses=%d resumes=%d, want 5/5", r.vent.Pauses, r.vent.Resumes)
	}
	if r.vent.Paused() {
		t.Fatal("ventilator left paused after healthy run")
	}
}

func TestPauseRestartLostResumeKillsWithoutRetries(t *testing.T) {
	// The paper's fatal scenario: the resume command is lost and there is
	// no retry. The ventilator stays paused and the anesthetized patient
	// desaturates.
	link := mednet.LinkParams{Latency: 2 * time.Millisecond}
	r := newXRayRig(t, link, ProtocolPauseRestart, func(c *XRaySyncConfig) {
		c.ResumeRetries = 0
	})
	// Drop exactly the resume command: a window after the shot completes.
	// Pause settle 2 s + exposure 100 ms; resume goes out ~2.2 s after the
	// request at t=60 s. Drop supervisor->ventilator traffic 61-70 s.
	if err := r.net.Outage("ice-manager", "vent1", 61*sim.Second, 70*sim.Second); err != nil {
		t.Fatal(err)
	}
	r.k.At(sim.Minute, func() { r.sync.RequestImage() })
	if err := r.k.Run(12 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.vent.Paused() {
		t.Skip("resume survived the outage window; timing shifted")
	}
	if r.sync.ResumeFailures == 0 {
		t.Fatal("lost resume not counted as failure")
	}
	if v := r.patient.Vitals(); v.SpO2 > 90 {
		t.Fatalf("patient SpO2 = %f despite 10 min without ventilation", v.SpO2)
	}
}

func TestPauseRestartRetriesSurviveLoss(t *testing.T) {
	link := mednet.LinkParams{Latency: 2 * time.Millisecond, LossProb: 0.3}
	r := newXRayRig(t, link, ProtocolPauseRestart, func(c *XRaySyncConfig) {
		c.ResumeRetries = 10
	})
	requestImages(r, 5, sim.Minute)
	if err := r.k.Run(15 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if r.vent.Paused() {
		t.Fatal("ventilator left paused despite retries")
	}
	if v := r.patient.Vitals(); v.SpO2 < 90 {
		t.Fatalf("patient harmed despite resume retries: SpO2 %f", v.SpO2)
	}
}

func TestStateSyncDefersWhenWindowTooTight(t *testing.T) {
	// With a delay bound close to the whole quiescent window, no shot fits.
	r := newXRayRig(t, mednet.DefaultLink(), ProtocolStateSync, func(c *XRaySyncConfig) {
		c.DelayBound = 2 * time.Second // quiescent window is ~2.1 s
		c.Exposure = 500 * sim.Millisecond
	})
	requestImages(r, 10, 20*sim.Second)
	if err := r.k.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if r.sync.Deferred != 10 {
		t.Fatalf("deferred = %d, want all 10 (window cannot fit exposure)", r.sync.Deferred)
	}
	if r.xray.Sharp+r.xray.Blurred != 0 {
		t.Fatal("shots were taken despite infeasible window")
	}
}

func TestStateSyncBeforeAnyAnchorDefers(t *testing.T) {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	s := MustNewXRaySync(k, mgr, DefaultXRaySyncConfig("xr1", "vent1", ProtocolStateSync))
	k.At(sim.Millisecond, func() { s.RequestImage() })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if s.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1 (no anchor yet)", s.Deferred)
	}
}

func TestProtocolStringNames(t *testing.T) {
	for p, want := range map[SyncProtocol]string{
		ProtocolManual: "manual", ProtocolPauseRestart: "pause-restart",
		ProtocolStateSync: "state-sync", SyncProtocol(9): "unknown",
	} {
		if got := p.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", p, got, want)
		}
	}
	r := newXRayRig(t, mednet.DefaultLink(), ProtocolStateSync, nil)
	if err := r.k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if r.sync.Describe() == "" {
		t.Fatal("empty Describe")
	}
}
