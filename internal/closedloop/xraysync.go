package closedloop

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/physio"
	"repro/internal/sim"
)

// SyncProtocol selects how the X-ray coordinates with the ventilator —
// the three alternatives the paper discusses for the II.b scenario.
type SyncProtocol int

const (
	// ProtocolManual images without any coordination: the baseline
	// current practice, succeeding only by luck.
	ProtocolManual SyncProtocol = iota
	// ProtocolPauseRestart pauses the ventilator, shoots, and restarts
	// it — simple, but a lost resume command leaves the patient
	// unventilated (the fatal failure mode the paper recounts).
	ProtocolPauseRestart
	// ProtocolStateSync consumes the ventilator's transmitted cycle state
	// and fires inside the predicted end-of-exhale quiescent window,
	// accounting for transmission delay — the paper's "safer alternative,
	// although presenting tighter timing constraints".
	ProtocolStateSync
)

// String names the protocol.
func (p SyncProtocol) String() string {
	switch p {
	case ProtocolManual:
		return "manual"
	case ProtocolPauseRestart:
		return "pause-restart"
	case ProtocolStateSync:
		return "state-sync"
	default:
		return "unknown"
	}
}

// XRaySyncConfig configures the synchronizer app.
type XRaySyncConfig struct {
	XRayID       string
	VentilatorID string
	Protocol     SyncProtocol
	Exposure     sim.Time // exposure duration
	// Cycle is the ventilator's breath program. A production system would
	// transfer all of it in the announcement; here the rate arrives live
	// on the bus and the shape parameters come from the device profile.
	Cycle physio.BreathCycle
	// DelayBound is the synchronizer's assumed upper bound on one-way
	// command latency. The state-sync protocol schedules shots so the
	// exposure fits the window even if the command takes this long.
	DelayBound time.Duration
	// PauseSettle is how long after a pause acknowledgement the chest is
	// assumed still (pause-restart protocol).
	PauseSettle time.Duration
	// ResumeRetries controls whether a lost resume is retried. The paper's
	// fatal scenario corresponds to 0 retries and no acknowledgement check.
	ResumeRetries  int
	CommandTimeout time.Duration
}

// DefaultXRaySyncConfig returns the E2 experiment configuration.
func DefaultXRaySyncConfig(xrayID, ventID string, proto SyncProtocol) XRaySyncConfig {
	return XRaySyncConfig{
		XRayID:         xrayID,
		VentilatorID:   ventID,
		Protocol:       proto,
		Exposure:       100 * sim.Millisecond,
		Cycle:          physio.DefaultBreathCycle(),
		DelayBound:     50 * time.Millisecond,
		PauseSettle:    2 * time.Second,
		ResumeRetries:  3,
		CommandTimeout: time.Second,
	}
}

// Validate reports an error for unusable configuration.
func (c XRaySyncConfig) Validate() error {
	if c.XRayID == "" || c.VentilatorID == "" {
		return errors.New("closedloop: synchronizer needs device IDs")
	}
	if c.Exposure <= 0 {
		return errors.New("closedloop: non-positive exposure")
	}
	if c.DelayBound < 0 || c.PauseSettle < 0 || c.ResumeRetries < 0 {
		return errors.New("closedloop: negative timing parameter")
	}
	if c.CommandTimeout <= 0 {
		return errors.New("closedloop: command timeout must be positive")
	}
	return c.Cycle.Validate()
}

// XRaySync coordinates chest imaging with ventilation over the ICE.
type XRaySync struct {
	cfg XRaySyncConfig
	mgr *core.Manager
	k   *sim.Kernel

	anchor     sim.Time // latest cycle anchor from the bus
	anchorSeen bool
	rate       float64

	// Counters for experiments.
	Requests       uint64
	ShotsCommanded uint64
	Deferred       uint64 // state-sync: no usable window, request dropped
	ResumeFailures uint64 // pause-restart: resume never acknowledged
}

// NewXRaySync attaches the synchronizer to the manager's bus.
func NewXRaySync(k *sim.Kernel, mgr *core.Manager, cfg XRaySyncConfig) (*XRaySync, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &XRaySync{cfg: cfg, mgr: mgr, k: k, rate: cfg.Cycle.RatePerMin}
	mgr.Subscribe(core.Topic(cfg.VentilatorID, "cycle-anchor"), func(_ string, d core.Datum) {
		if d.Valid {
			s.anchor = sim.Time(d.Value)
			s.anchorSeen = true
		}
	})
	mgr.Subscribe(core.Topic(cfg.VentilatorID, "breath-rate"), func(_ string, d core.Datum) {
		if d.Valid && d.Value > 0 {
			s.rate = d.Value
		}
	})
	return s, nil
}

// Reset returns the synchronizer to its just-attached state for a
// prototype clone: no anchor seen, rate back to the configured cycle,
// counters cleared. Subscriptions are construction-time wiring and are
// retained; NewXRaySync schedules nothing, so there is nothing to
// re-arm.
func (s *XRaySync) Reset() {
	s.anchor = 0
	s.anchorSeen = false
	s.rate = s.cfg.Cycle.RatePerMin
	s.Requests = 0
	s.ShotsCommanded = 0
	s.Deferred = 0
	s.ResumeFailures = 0
}

// MustNewXRaySync is NewXRaySync, panicking on error.
func MustNewXRaySync(k *sim.Kernel, mgr *core.Manager, cfg XRaySyncConfig) *XRaySync {
	s, err := NewXRaySync(k, mgr, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// RequestImage initiates one chest image using the configured protocol.
func (s *XRaySync) RequestImage() {
	s.Requests++
	switch s.cfg.Protocol {
	case ProtocolManual:
		s.shoot()
	case ProtocolPauseRestart:
		s.pauseShootResume()
	case ProtocolStateSync:
		s.scheduleInWindow()
	}
}

// runShoot and runRequestImage adapt the synchronizer's entry points to
// the kernel's closure-free scheduling API: both fire once per imaging
// request and need no per-event state beyond the synchronizer itself.
func runShoot(arg any)        { arg.(*XRaySync).shoot() }
func runRequestImage(arg any) { arg.(*XRaySync).RequestImage() }

func (s *XRaySync) shoot() {
	s.ShotsCommanded++
	s.mgr.SendCommand(s.cfg.XRayID, "shoot",
		map[string]float64{"exposure-ms": float64(s.cfg.Exposure / sim.Millisecond)},
		s.cfg.CommandTimeout, nil)
}

func (s *XRaySync) pauseShootResume() {
	s.mgr.SendCommand(s.cfg.VentilatorID, "pause", nil, s.cfg.CommandTimeout, func(ack core.CommandAck, err error) {
		if err != nil {
			// Ack lost or ventilator unreachable: the pause may or may
			// not have taken effect. Do not image, and send a
			// precautionary resume so an uncertainly-paused ventilator
			// is never left stopped.
			s.Deferred++
			s.resume(s.cfg.ResumeRetries)
			return
		}
		if !ack.OK {
			// Definitively refused (e.g. already paused by someone else):
			// leave it alone.
			s.Deferred++
			return
		}
		s.k.After(s.cfg.PauseSettle, func() {
			s.shoot()
			// Resume once the exposure has certainly completed: command
			// delivery can take up to DelayBound, then the exposure runs.
			margin := 250 * time.Millisecond
			wait := s.cfg.Exposure.Duration() + s.cfg.DelayBound + margin
			s.k.After(wait, func() {
				s.resume(s.cfg.ResumeRetries)
			})
		})
	})
}

func (s *XRaySync) resume(retries int) {
	s.mgr.SendCommand(s.cfg.VentilatorID, "resume", nil, s.cfg.CommandTimeout, func(ack core.CommandAck, err error) {
		if err == nil && ack.OK {
			return
		}
		if retries > 0 {
			s.resume(retries - 1)
			return
		}
		// The paper's fatal scenario: ventilator left paused.
		s.ResumeFailures++
	})
}

// scheduleInWindow implements the state-transmission protocol: find the
// next quiescent window wide enough for worst-case command delay plus the
// exposure, and time the command so the exposure lands inside it.
func (s *XRaySync) scheduleInWindow() {
	if !s.anchorSeen {
		s.Deferred++
		return
	}
	cycle := s.cfg.Cycle
	cycle.RatePerMin = s.rate
	now := s.k.Now()
	bound := sim.Time(s.cfg.DelayBound)

	// Search a few upcoming windows for one that fits. The command is
	// issued no earlier than the window start, so even an instantaneous
	// delivery lands inside the window; and the window must be wide
	// enough that a worst-case (DelayBound) delivery still finishes the
	// exposure before the next inhalation.
	searchFrom := now
	for i := 0; i < 4; i++ {
		ws, we := cycle.NextQuiescentWindow(searchFrom, s.anchor)
		if we == 0 && ws == 0 {
			break // settings leave no quiescent time at all
		}
		sendAt := ws
		if sendAt < now {
			sendAt = now
		}
		if sendAt+bound+s.cfg.Exposure <= we {
			s.k.AtFunc(sendAt, runShoot, s)
			return
		}
		searchFrom = we + sim.Millisecond
	}
	s.Deferred++
}

// Describe summarizes counters for logs.
func (s *XRaySync) Describe() string {
	return fmt.Sprintf("%s: requests=%d shots=%d deferred=%d resume-failures=%d",
		s.cfg.Protocol, s.Requests, s.ShotsCommanded, s.Deferred, s.ResumeFailures)
}
