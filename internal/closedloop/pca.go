// Package closedloop implements the clinical applications the paper
// builds its case on: the PCA safety supervisor of Figure 1 and the
// X-ray/ventilator synchronizer of Section II.b. Both are ICE apps: they
// see the patient only through published sensor data and act only through
// acknowledged device commands, across the lossy simulated network.
package closedloop

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// PCAConfig tunes the PCA safety supervisor.
type PCAConfig struct {
	PumpID     string
	OximeterID string

	// StopSpO2 is the desaturation threshold that triggers a pump stop.
	StopSpO2 float64
	// ResumeSpO2 is the recovery threshold for automatic resumption.
	ResumeSpO2 float64
	// RecoveryHold is how long SpO2 must stay above ResumeSpO2 before the
	// supervisor resumes the infusion.
	RecoveryHold time.Duration
	// HRLow/HRHigh corroborate desaturation with heart-rate derangement;
	// either bound breached together with low SpO2 escalates the alarm.
	HRLow, HRHigh float64

	// DataTimeout is the maximum silence (no valid oximeter estimate)
	// before the supervisor acts on missing data.
	DataTimeout time.Duration
	// FailSafe selects the design decision D1: on data timeout, true
	// stops the pump (fail-safe), false keeps it running (fail-operational).
	FailSafe bool

	// AlgorithmDelay models the supervisor's own decision latency
	// (Figure 1's "algorithm processing time").
	AlgorithmDelay time.Duration
	// CommandTimeout bounds how long to wait for a pump acknowledgement
	// before retrying.
	CommandTimeout time.Duration
	// AutoResume enables automatic resumption after recovery; when false
	// a caregiver must resume the pump out-of-band.
	AutoResume bool
}

// DefaultPCAConfig returns the supervisor settings used by experiment F1.
func DefaultPCAConfig(pumpID, oximeterID string) PCAConfig {
	return PCAConfig{
		PumpID:         pumpID,
		OximeterID:     oximeterID,
		StopSpO2:       93,
		ResumeSpO2:     96,
		RecoveryHold:   2 * time.Minute,
		HRLow:          40,
		HRHigh:         130,
		DataTimeout:    15 * time.Second,
		FailSafe:       true,
		AlgorithmDelay: 100 * time.Millisecond,
		CommandTimeout: 2 * time.Second,
		AutoResume:     true,
	}
}

// Validate reports an error for unusable configurations.
func (c PCAConfig) Validate() error {
	if c.PumpID == "" || c.OximeterID == "" {
		return errors.New("closedloop: PCA supervisor needs pump and oximeter IDs")
	}
	if c.StopSpO2 <= 0 || c.StopSpO2 >= 100 {
		return errors.New("closedloop: StopSpO2 outside (0,100)")
	}
	if c.ResumeSpO2 < c.StopSpO2 {
		return errors.New("closedloop: ResumeSpO2 below StopSpO2 would chatter")
	}
	if c.DataTimeout <= 0 || c.CommandTimeout <= 0 {
		return errors.New("closedloop: timeouts must be positive")
	}
	if c.AlgorithmDelay < 0 || c.RecoveryHold < 0 {
		return errors.New("closedloop: negative delays")
	}
	return nil
}

// PCAState is the supervisor's commanded pump state.
type PCAState int

const (
	PCAInfusing PCAState = iota
	PCASuspended
)

// String names the state.
func (s PCAState) String() string {
	if s == PCASuspended {
		return "suspended"
	}
	return "infusing"
}

// Alarm is one supervisor alarm emission.
type Alarm struct {
	At   sim.Time
	Kind string // "desat", "desat+hr", "data-timeout", "command-failed"
	Msg  string
}

// PCASupervisor is the control box of Figure 1: it consumes oximeter
// estimates off the ICE bus, decides, and commands the pump — tolerant of
// lost data, lost commands and dead devices.
type PCASupervisor struct {
	cfg PCAConfig
	mgr *core.Manager
	k   *sim.Kernel

	state         PCAState
	lastValidData sim.Time
	lastSpO2      float64
	lastHR        float64
	recoveredAt   sim.Time // first instant of sustained recovery; 0 = none
	timeoutFired  bool

	alarms   []Alarm
	onAlarm  []func(Alarm)
	watchdog *sim.Ticker

	// decidePool recycles the argument slots of in-flight decide events,
	// so the per-estimate algorithm-delay hop schedules allocation-free.
	decidePool []*decideCtx

	// Counters for experiments.
	StopsIssued    uint64
	ResumesIssued  uint64
	DataTimeouts   uint64
	CommandRetries uint64
	StopLatencySum sim.Time // decision-to-ack, summed for averaging
	StopAcks       uint64
}

// NewPCASupervisor attaches the supervisor to the manager's bus.
func NewPCASupervisor(k *sim.Kernel, mgr *core.Manager, cfg PCAConfig) (*PCASupervisor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &PCASupervisor{cfg: cfg, mgr: mgr, k: k, state: PCAInfusing}
	mgr.Subscribe(core.Topic(cfg.OximeterID, "spo2"), func(_ string, d core.Datum) { s.onSpO2(d) })
	mgr.Subscribe(core.Topic(cfg.OximeterID, "heart-rate"), func(_ string, d core.Datum) { s.onHR(d) })
	s.lastValidData = k.Now()
	s.watchdog = k.Every(time.Second, func(now sim.Time) { s.checkTimeout(now) })
	return s, nil
}

// MustNewPCASupervisor is NewPCASupervisor, panicking on error.
func MustNewPCASupervisor(k *sim.Kernel, mgr *core.Manager, cfg PCAConfig) *PCASupervisor {
	s, err := NewPCASupervisor(k, mgr, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset returns the supervisor to its just-attached state for a
// prototype clone: infusing, watchdog primed from the (reset) clock,
// alarms and counters cleared, and the watchdog ticker re-armed in
// NewPCASupervisor's order. Subscriptions, alarm listeners, and the
// decide pool are construction-time wiring and are retained. Kernel
// and manager must be reset first.
func (s *PCASupervisor) Reset() {
	s.state = PCAInfusing
	s.lastValidData = s.k.Now()
	s.lastSpO2 = 0
	s.lastHR = 0
	s.recoveredAt = 0
	s.timeoutFired = false
	s.alarms = s.alarms[:0]
	s.StopsIssued = 0
	s.ResumesIssued = 0
	s.DataTimeouts = 0
	s.CommandRetries = 0
	s.StopLatencySum = 0
	s.StopAcks = 0
	s.watchdog.Reset()
}

// State reports the commanded pump state.
func (s *PCASupervisor) State() PCAState { return s.state }

// Alarms returns all alarms raised so far.
func (s *PCASupervisor) Alarms() []Alarm { return s.alarms }

// OnAlarm registers an alarm listener.
func (s *PCASupervisor) OnAlarm(fn func(Alarm)) { s.onAlarm = append(s.onAlarm, fn) }

// Stop detaches the watchdog (end of scenario).
func (s *PCASupervisor) Stop() { s.watchdog.Stop() }

func (s *PCASupervisor) raise(kind, format string, args ...any) {
	a := Alarm{At: s.k.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	s.alarms = append(s.alarms, a)
	for _, fn := range s.onAlarm {
		fn(a)
	}
}

func (s *PCASupervisor) onHR(d core.Datum) {
	if d.Valid {
		s.lastHR = d.Value
	}
}

func (s *PCASupervisor) onSpO2(d core.Datum) {
	if !d.Valid {
		return // invalid estimates do not reset the data watchdog
	}
	s.lastValidData = s.k.Now()
	s.timeoutFired = false
	s.lastSpO2 = d.Value

	// Decision logic runs after the algorithm processing delay. This is
	// the supervisor's per-estimate hot path, so the hop is scheduled
	// closure-free with a pooled argument slot.
	var dc *decideCtx
	if last := len(s.decidePool) - 1; last >= 0 {
		dc = s.decidePool[last]
		s.decidePool = s.decidePool[:last]
	} else {
		dc = &decideCtx{s: s}
	}
	dc.spo2 = d.Value
	s.k.AfterFunc(s.cfg.AlgorithmDelay, runDecide, dc)
}

// decideCtx carries one delayed decision's input.
type decideCtx struct {
	s    *PCASupervisor
	spo2 float64
}

// runDecide executes a delayed decision; package-level so scheduling it
// never allocates a closure. The slot is returned to the pool before the
// decision runs, since decide may schedule further work.
func runDecide(arg any) {
	dc := arg.(*decideCtx)
	s, v := dc.s, dc.spo2
	s.decidePool = append(s.decidePool, dc)
	s.decide(v)
}

func (s *PCASupervisor) decide(spo2 float64) {
	switch s.state {
	case PCAInfusing:
		if spo2 < s.cfg.StopSpO2 {
			kind := "desat"
			if s.lastHR > 0 && (s.lastHR < s.cfg.HRLow || s.lastHR > s.cfg.HRHigh) {
				kind = "desat+hr"
			}
			s.raise(kind, "SpO2 %.1f below %.1f; stopping PCA pump", spo2, s.cfg.StopSpO2)
			s.commandStop("desaturation")
		}
	case PCASuspended:
		if !s.cfg.AutoResume {
			return
		}
		now := s.k.Now()
		if spo2 >= s.cfg.ResumeSpO2 {
			if s.recoveredAt == 0 {
				s.recoveredAt = now
			}
			if now-s.recoveredAt >= sim.Time(s.cfg.RecoveryHold) {
				s.commandResume()
			}
		} else {
			s.recoveredAt = 0
		}
	}
}

func (s *PCASupervisor) checkTimeout(now sim.Time) {
	if s.timeoutFired || now-s.lastValidData < sim.Time(s.cfg.DataTimeout) {
		return
	}
	s.timeoutFired = true
	s.DataTimeouts++
	if s.cfg.FailSafe {
		s.raise("data-timeout", "no valid oximeter data for %v; fail-safe stop", s.cfg.DataTimeout)
		if s.state == PCAInfusing {
			s.commandStop("data timeout")
		}
	} else {
		s.raise("data-timeout", "no valid oximeter data for %v; continuing (fail-operational)", s.cfg.DataTimeout)
	}
}

// commandStop sends the stop with retry-until-acked semantics: a lost stop
// command must not leave the pump running.
func (s *PCASupervisor) commandStop(reason string) {
	if s.state == PCASuspended {
		return
	}
	s.state = PCASuspended
	s.recoveredAt = 0
	s.StopsIssued++
	s.sendWithRetry("stop", 5, s.k.Now())
	_ = reason
}

func (s *PCASupervisor) commandResume() {
	if s.state == PCAInfusing {
		return
	}
	s.state = PCAInfusing
	s.recoveredAt = 0
	s.ResumesIssued++
	s.mgr.SendCommand(s.cfg.PumpID, "resume", nil, s.cfg.CommandTimeout, nil)
}

func (s *PCASupervisor) sendWithRetry(name string, retries int, issuedAt sim.Time) {
	s.mgr.SendCommand(s.cfg.PumpID, name, nil, s.cfg.CommandTimeout, func(ack core.CommandAck, err error) {
		if err == nil && ack.OK {
			s.StopLatencySum += s.k.Now() - issuedAt
			s.StopAcks++
			return
		}
		if retries <= 0 {
			s.raise("command-failed", "pump %s command failed permanently: ack=%+v err=%v", name, ack, err)
			return
		}
		s.CommandRetries++
		s.sendWithRetry(name, retries-1, issuedAt)
	})
}

// MeanStopLatency reports the average decision-to-acknowledgement latency
// of stop commands (Figure 1's "pump stop delay" as seen end-to-end).
func (s *PCASupervisor) MeanStopLatency() sim.Time {
	if s.StopAcks == 0 {
		return 0
	}
	return s.StopLatencySum / sim.Time(s.StopAcks)
}
