package closedloop

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// The paper's challenge (e) asks for clinical workflows that are both
// analyzable and executable. This test executes the xray_vent workflow
// on the real ICE: its `command vent.pause` statements become acknowledged
// network commands to the simulated ventilator, and the physical patient
// responds. The same description that the model checker verified in
// internal/workflow drives actual devices here.
func TestWorkflowDrivesRealDevicesOverICE(t *testing.T) {
	k := sim.NewKernel()
	rng := sim.NewRNG(21)
	net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())
	mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
	patient := physio.DefaultPatient(rng.Fork("patient"))

	vent := device.MustNewVentilator(k, net, "vent1", physio.DefaultBreathCycle(), patient, core.ConnectConfig{})
	xray := device.MustNewXRay(k, net, "xr1", vent, core.ConnectConfig{})
	ward := device.NewWard(k, patient, sim.Second)
	ward.AttachVentSupport(vent)

	// Map workflow device aliases to ICE device IDs.
	alias := map[string]string{"vent": "vent1", "xray": "xr1"}

	w := workflow.Builtins()["xray_vent"]
	var cmdErrs []string
	in := workflow.NewInterp(k, w, workflow.InterpConfig{
		Seed: 1,
		Commands: func(dev, cmd string) error {
			id, ok := alias[dev]
			if !ok {
				return fmt.Errorf("unbound device alias %q", dev)
			}
			mgr.SendCommand(id, cmd, nil, time.Second, func(ack core.CommandAck, err error) {
				if err != nil || !ack.OK {
					cmdErrs = append(cmdErrs, fmt.Sprintf("%s.%s: ack=%+v err=%v", dev, cmd, ack, err))
				}
			})
			return nil
		},
	})
	res, err := in.RunToCompletion(sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("workflow did not complete: %+v", res)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(cmdErrs) != 0 {
		t.Fatalf("command failures: %v", cmdErrs)
	}
	// Physical effects happened: the ventilator was paused and resumed,
	// and the X-ray took exactly one exposure.
	if vent.Pauses != 1 || vent.Resumes != 1 {
		t.Fatalf("ventilator pauses=%d resumes=%d, want 1/1", vent.Pauses, vent.Resumes)
	}
	if vent.Paused() {
		t.Fatal("ventilator left paused after workflow completion")
	}
	if xray.Sharp+xray.Blurred != 1 {
		t.Fatalf("exposures = %d, want 1", xray.Sharp+xray.Blurred)
	}
	// The patient kept breathing: the brief pause must not desaturate.
	if v := patient.Vitals(); v.SpO2 < 92 {
		t.Fatalf("patient SpO2 = %f after workflow", v.SpO2)
	}
}

// The omission user error, executed against real devices: the caregiver
// "forgets" the resume step. The ventilator stays paused and the patient
// desaturates — the paper's fatal case, now observable end to end.
func TestWorkflowOmittedResumeHarmsRealPatient(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		k := sim.NewKernel()
		rng := sim.NewRNG(300 + seed)
		net := mednet.MustNew(k, rng.Fork("net"), mednet.DefaultLink())
		mgr := core.MustNewManager(k, net, core.DefaultManagerConfig())
		patient := physio.DefaultPatient(rng.Fork("patient"))
		vent := device.MustNewVentilator(k, net, "vent1", physio.DefaultBreathCycle(), patient, core.ConnectConfig{})
		device.MustNewXRay(k, net, "xr1", vent, core.ConnectConfig{})
		ward := device.NewWard(k, patient, sim.Second)
		ward.AttachVentSupport(vent)
		alias := map[string]string{"vent": "vent1", "xray": "xr1"}

		in := workflow.NewInterp(k, workflow.Builtins()["xray_vent"], workflow.InterpConfig{
			Seed:   seed,
			Errors: workflow.ErrorModel{OmitProb: 0.5},
			Commands: func(dev, cmd string) error {
				mgr.SendCommand(alias[dev], cmd, nil, time.Second, nil)
				return nil
			},
		})
		in.Start()
		if err := k.Run(20 * sim.Minute); err != nil {
			t.Fatal(err)
		}
		// Look for a run where the resume specifically was omitted after
		// a real pause.
		if vent.Paused() && vent.Pauses == 1 {
			if v := patient.Vitals(); v.SpO2 >= 90 {
				t.Fatalf("seed %d: ventilator paused 15+ min but SpO2 = %f", seed, v.SpO2)
			}
			return // demonstrated
		}
	}
	t.Fatal("30 seeds never produced the omitted-resume hazard at 50% omission rate")
}
