package closedloop

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// PCAScenarioConfig assembles the complete Figure 1 rig: patient, pump,
// pulse oximeter, ICE manager and supervisor over a lossy network.
type PCAScenarioConfig struct {
	Seed     int64
	Duration sim.Time

	Patient       physio.Traits // zero value => default traits
	PatientIdx    int           // population index when sampling
	UsePopulation bool
	Population    physio.PopulationSpec

	Pump              device.PumpSettings
	Link              mednet.LinkParams
	Supervisor        PCAConfig // PumpID/OximeterID filled in by the builder
	SupervisorEnabled bool

	// ProxyPresses injects PCA-by-proxy abuse: a visitor pressing the
	// button every interval regardless of the patient's state.
	ProxyPressInterval sim.Time

	// OximeterOutageStart/End, when End > Start, schedule a total outage
	// of the oximeter->supervisor path — the network-partition fault of
	// experiment E6. Part of the config (rather than a post-build call) so
	// a scenario is a pure function of its config, which is what lets the
	// fleet layer build cells from declarative specs.
	OximeterOutageStart sim.Time
	OximeterOutageEnd   sim.Time

	// Trace, when non-nil, is the (empty or Reset) trace the scenario
	// records into instead of allocating its own — the fleet layer pools
	// one per worker so ensemble runs reuse sample buffers across cells.
	// The recorded contents are a pure function of the config either way.
	Trace *sim.Trace

	// WireCodec selects the ICE wire encoding for every endpoint in the
	// rig: "" or "binary" (default), "json" (debug/compat). Simulation
	// outcomes are codec-independent — the differential suite holds the
	// rendered tables byte-identical across both — so this is a debug
	// and benchmarking knob, not a clinical one.
	WireCodec string
}

// DefaultPCAScenario returns a 2-hour session reproducing the adverse-
// event setup of the paper's PCA discussion: the pump is misprogrammed
// with lax safety limits (short lockout, inflated hourly cap — "the pump
// programmer overestimates the maximum dose") and double-concentration
// drug is loaded, while a well-meaning visitor presses the button for the
// patient (PCA-by-proxy). The built-in safeguards are thereby defeated,
// and only the network supervisor stands between the patient and
// respiratory failure.
func DefaultPCAScenario(seed int64) PCAScenarioConfig {
	pump := device.DefaultPumpSettings()
	pump.ConcentrationFactor = 2           // wrong vial loaded
	pump.LockoutInterval = 2 * time.Minute // misprogrammed lockout
	pump.HourlyLimitMg = 30                // misprogrammed hourly cap
	return PCAScenarioConfig{
		Seed:               seed,
		Duration:           2 * sim.Hour,
		Pump:               pump,
		Link:               mednet.DefaultLink(),
		Supervisor:         DefaultPCAConfig("pump1", "ox1"),
		SupervisorEnabled:  true,
		ProxyPressInterval: 3 * sim.Minute,
	}
}

// PCAScenario is the assembled rig.
type PCAScenario struct {
	K        *sim.Kernel
	Net      *mednet.Network
	Mgr      *core.Manager
	Wire     core.Codec // the cell's shared wire codec (encode accounting)
	Patient  *physio.Patient
	Pump     *device.Pump
	Oximeter *device.Oximeter
	Ward     *device.Ward
	Sup      *PCASupervisor // nil when disabled
	Trace    *sim.Trace

	// Prototype-cloning state (see Reset): the root RNG and the child
	// generators handed to each component at build time, the tickers the
	// builder schedules directly, the interned observation series, and
	// the codec-stats baseline captured at the last Reset so per-cell
	// wire metrics are deltas rather than rig lifetime totals.
	rootRNG    *sim.RNG
	netRNG     *sim.RNG
	patientRNG *sim.RNG
	oxRNG      *sim.RNG
	demandTick *sim.Ticker
	proxyTick  *sim.Ticker // nil unless ProxyPressInterval > 0
	obsSpO2    sim.SeriesID
	ws0        core.CodecStats
	resettable bool // false for population-sampled patients
}

// PCAOutcome summarizes a finished run for scoring.
type PCAOutcome struct {
	MinSpO2         float64
	SecondsBelow90  float64
	SecondsBelow85  float64
	Distressed      bool // ever entered the danger zone
	TotalDrugMg     float64
	Boluses         uint64
	BolusesDenied   uint64
	PumpStops       uint64
	Alarms          int
	DataTimeouts    uint64
	MeanStopLatency sim.Time
	FinalPain       float64
}

// BuildPCAScenario constructs (but does not run) the rig.
//
// The construction sequence below is load-bearing for prototype cloning:
// Reset replays the same RNG forks and scheduling calls in the same
// order, which reproduces the kernel's event sequence numbers and
// therefore the exact execution order of a fresh build. Any new fork,
// ticker, or construction-time send added here must be mirrored in
// Reset at the same position.
func BuildPCAScenario(cfg PCAScenarioConfig) *PCAScenario {
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed)
	netRNG := rng.Fork("net")
	net := mednet.MustNew(k, netRNG, cfg.Link)
	// One codec instance serves the whole cell (it is single-threaded),
	// sharing the decode intern table and summing encode accounting.
	wire := core.MustNewCodec(cfg.WireCodec)
	mgrCfg := core.DefaultManagerConfig()
	mgrCfg.Codec = wire
	mgr := core.MustNewManager(k, net, mgrCfg)

	sc := &PCAScenario{
		K: k, Net: net, Mgr: mgr, Wire: wire,
		rootRNG: rng, netRNG: netRNG,
	}

	if cfg.UsePopulation {
		sc.Patient = cfg.Population.Sample(cfg.PatientIdx, rng.Fork("population"))
	} else {
		tr := cfg.Patient
		if tr.ID == "" {
			tr = physio.DefaultTraits()
		}
		sc.patientRNG = rng.Fork("patient")
		sc.Patient = physio.NewPatient(tr, physio.MustPK(physio.DefaultMorphinePK()),
			physio.MustPD(physio.DefaultMorphinePD()), sc.patientRNG)
		sc.resettable = true
	}
	patient := sc.Patient

	pumpSettings := cfg.Pump
	if pumpSettings.HourlyLimitMg == 0 {
		pumpSettings = device.DefaultPumpSettings()
	}
	pump := device.MustNewPump(k, net, "pump1", pumpSettings, core.ConnectConfig{Codec: wire})
	sc.Pump = pump
	sc.oxRNG = rng.Fork("ox")
	sc.Oximeter = device.MustNewOximeter(k, net, "ox1", patient, sc.oxRNG, core.ConnectConfig{Codec: wire})

	trace := cfg.Trace
	if trace == nil {
		trace = sim.NewTrace()
	}
	sc.Trace = trace
	ward := device.NewWard(k, patient, sim.Second)
	ward.Trace = trace
	ward.AttachDrugSource(pump)
	sc.Ward = ward

	if cfg.SupervisorEnabled {
		supCfg := cfg.Supervisor
		if supCfg.PumpID == "" {
			supCfg = DefaultPCAConfig("pump1", "ox1")
		}
		sc.Sup = MustNewPCASupervisor(k, mgr, supCfg)
		// The closure reads sc.Trace (not a captured local) so Reset can
		// swap in a pooled trace between cells.
		sc.Sup.OnAlarm(func(a Alarm) { sc.Trace.Annotate(a.At, "alarm", "%s: %s", a.Kind, a.Msg) })
	}

	// Patient demand behaviour: check the urge every 30 s.
	sc.demandTick = k.Every(30*time.Second, func(sim.Time) {
		if patient.WantsBolus(30 * sim.Second) {
			pump.PressButton()
		}
	})
	// PCA-by-proxy abuse, if configured.
	if cfg.ProxyPressInterval > 0 {
		sc.proxyTick = k.Every(cfg.ProxyPressInterval.Duration(), func(sim.Time) { pump.PressButton() })
	}
	// Record supervisor-visible signals (interned: one sample per
	// estimate window for the whole session). Reads sc fields so Reset
	// can re-intern against a swapped trace.
	sc.obsSpO2 = trace.SeriesID("obs/spo2")
	mgr.Subscribe("ox1/spo2", func(_ string, d core.Datum) {
		if d.Valid {
			sc.Trace.RecordID(sc.obsSpO2, k.Now(), d.Value)
		}
	})
	// Configured network partition of the sensing path. Outage windows
	// are pure Network state (no events, no RNG draws), so Reset keeps
	// them rather than re-appending.
	if cfg.OximeterOutageEnd > cfg.OximeterOutageStart {
		if err := net.Outage("ox1", mgr.Addr(), cfg.OximeterOutageStart, cfg.OximeterOutageEnd); err != nil {
			panic(fmt.Sprintf("closedloop: oximeter outage: %v", err))
		}
	}
	return sc
}

// Resettable reports whether this rig supports prototype cloning via
// Reset. Population-sampled patients are rebuilt per cell (the sampled
// patient pointer is baked into device and ticker closures), so those
// configurations construct from scratch instead.
func (sc *PCAScenario) Resettable() bool { return sc.resettable }

// Reset rewinds the rig to the just-built state for a new cell seeded
// with seed, recording into trace (pass nil to keep the current trace,
// which the caller must have Reset). It replays BuildPCAScenario's RNG
// forks and scheduling calls in construction order against the cleared
// kernel, so the event sequence numbers — and therefore the cell's
// execution order and every recorded byte — match a from-scratch build
// with the same config and seed. The codec-stats baseline is captured
// here so CellMetrics reports this cell's wire traffic only.
func (sc *PCAScenario) Reset(seed int64, trace *sim.Trace) {
	if !sc.resettable {
		panic("closedloop: Reset on a population-sampled PCAScenario")
	}
	sc.K.Reset()
	sc.rootRNG.Reseed(seed)
	sc.netRNG.Reseed(sc.rootRNG.ForkSeed("net"))
	sc.Net.Reset()
	sc.ws0 = sc.Wire.Stats() // before re-announce traffic: deltas span exactly one cell
	sc.Mgr.Reset()           // sweeper: first scheduled event, as at build
	sc.patientRNG.Reseed(sc.rootRNG.ForkSeed("patient"))
	sc.Patient.Reset()
	sc.Pump.Reset() // re-announce + heartbeat + telemetry, in NewPump order
	sc.oxRNG.Reseed(sc.rootRNG.ForkSeed("ox"))
	sc.Oximeter.Reset()
	if trace != nil {
		sc.Trace = trace
		sc.Ward.Trace = trace
	}
	sc.Ward.Reset()
	if sc.Sup != nil {
		sc.Sup.Reset()
	}
	sc.demandTick.Reset()
	if sc.proxyTick != nil {
		sc.proxyTick.Reset()
	}
	sc.obsSpO2 = sc.Trace.SeriesID("obs/spo2")
}

// Run executes the scenario to its horizon and scores it.
func (sc *PCAScenario) Run(d sim.Time) (PCAOutcome, error) {
	if err := sc.K.Run(d); err != nil {
		return PCAOutcome{}, err
	}
	return sc.score(), nil
}

func (sc *PCAScenario) score() PCAOutcome {
	st := sc.Trace.Stats("true/spo2")
	below90 := 0.0
	below85 := 0.0
	s := sc.Trace.Series("true/spo2")
	for i := 0; i+1 < len(s); i++ {
		dt := (s[i+1].T - s[i].T).Seconds()
		if s[i].V < 90 {
			below90 += dt
		}
		if s[i].V < 85 {
			below85 += dt
		}
	}
	out := PCAOutcome{
		MinSpO2:        st.Min,
		SecondsBelow90: below90,
		SecondsBelow85: below85,
		Distressed:     below85 > 0,
		TotalDrugMg:    sc.Patient.PK().TotalInfused(),
		Boluses:        sc.Pump.BolusesDelivered,
		BolusesDenied:  sc.Pump.BolusesDenied,
		FinalPain:      sc.Patient.Vitals().Pain,
	}
	if sc.Sup != nil {
		out.PumpStops = sc.Sup.StopsIssued
		out.Alarms = len(sc.Sup.Alarms())
		out.DataTimeouts = sc.Sup.DataTimeouts
		out.MeanStopLatency = sc.Sup.MeanStopLatency()
	}
	return out
}

// RunPCAScenario builds and runs in one call.
func RunPCAScenario(cfg PCAScenarioConfig) (PCAOutcome, *PCAScenario, error) {
	sc := BuildPCAScenario(cfg)
	out, err := sc.Run(cfg.Duration)
	return out, sc, err
}

// Metric names emitted by PCAOutcome.Metrics. Exported so fleet reducers
// and experiment tables agree on spelling.
const (
	MetricMinSpO2        = "min_spo2"
	MetricSecondsBelow90 = "s_below90"
	MetricSecondsBelow85 = "s_below85"
	MetricDistressed     = "distressed"
	MetricDrugMg         = "drug_mg"
	MetricBoluses        = "boluses"
	MetricBolusesDenied  = "boluses_denied"
	MetricPumpStops      = "stops"
	MetricAlarms         = "alarms"
	MetricDataTimeouts   = "timeouts"
	MetricStopLatencyNs  = "stop_latency_ns"
	MetricFinalPain      = "final_pain"

	// MetricSimEvents is the reserved engine counter: cell runners report
	// the kernel's executed-event total under it, and the fleet layer
	// lifts it out of the metrics map into Result.Events (it never appears
	// in reduced clinical tables). Must match fleet.MetricSimEvents; the
	// value is spelled here so scenario packages stay free of fleet
	// imports.
	MetricSimEvents = "sim/events"

	// MetricWireBytes and MetricWireEncodeNS are the reserved wire-codec
	// counters, lifted the same way into Result.WireBytes and
	// Result.WireEncodeNS: encoded envelope bytes and (sampled) encode
	// wall time for the cell's shared codec. The serving layer sums them
	// into its wire_bytes_total / wire_encode_ns gauges.
	//
	// WARNING: MetricWireEncodeNS is wall-clock time — the one reserved
	// key that is NOT deterministic. It exists only to ride the lift
	// into Result.WireEncodeNS; any consumer of the raw cell map other
	// than fleet.runCell must strip it before comparing runs (as
	// TestRunXRaySyncCellDeterministic does).
	MetricWireBytes    = "wire/bytes"
	MetricWireEncodeNS = "wire/encode_ns"
)

// Metrics flattens the outcome into the named-float form the fleet reduce
// stage consumes. Booleans become 0/1; durations are kept in integer
// nanoseconds (exact in a float64 for any plausible latency) so tables can
// reconstruct the original sim.Time bit-for-bit.
func (o PCAOutcome) Metrics() map[string]float64 {
	m := map[string]float64{
		MetricMinSpO2:        o.MinSpO2,
		MetricSecondsBelow90: o.SecondsBelow90,
		MetricSecondsBelow85: o.SecondsBelow85,
		MetricDistressed:     0,
		MetricDrugMg:         o.TotalDrugMg,
		MetricBoluses:        float64(o.Boluses),
		MetricBolusesDenied:  float64(o.BolusesDenied),
		MetricPumpStops:      float64(o.PumpStops),
		MetricAlarms:         float64(o.Alarms),
		MetricDataTimeouts:   float64(o.DataTimeouts),
		MetricStopLatencyNs:  float64(int64(o.MeanStopLatency)),
		MetricFinalPain:      o.FinalPain,
	}
	if o.Distressed {
		m[MetricDistressed] = 1
	}
	return m
}

// RunPCACell builds the rig from cfg, runs it to the configured horizon,
// and returns the flattened outcome — the exact shape of a fleet cell
// body. It returns a plain map so this package stays free of fleet
// imports (fleet imports closedloop, not the reverse).
func RunPCACell(cfg PCAScenarioConfig) (map[string]float64, error) {
	out, sc, err := RunPCAScenario(cfg)
	if err != nil {
		return nil, err
	}
	m := out.Metrics()
	m[MetricSimEvents] = float64(sc.K.Executed())
	ws := sc.Wire.Stats()
	m[MetricWireBytes] = float64(ws.Bytes)
	m[MetricWireEncodeNS] = float64(ws.EncodeNS)
	return m, nil
}

// PCACellRig is the prototype behind fleet cloning for PCA scenarios:
// one BuildPCAScenario rig, stamped into successive cells by Reset
// instead of reconstructed. It belongs to a single worker goroutine.
type PCACellRig struct {
	cfg PCAScenarioConfig
	sc  *PCAScenario
}

// NewPCACellRig builds the prototype once from cfg. It returns nil when
// the configuration cannot be cloned (population sampling rebuilds the
// patient per cell); callers fall back to from-scratch construction.
func NewPCACellRig(cfg PCAScenarioConfig) *PCACellRig {
	if cfg.UsePopulation {
		return nil
	}
	cfg.Trace = nil // per-cell traces arrive through RunCell
	return &PCACellRig{cfg: cfg, sc: BuildPCAScenario(cfg)}
}

// RunCell stamps one cell from the prototype: Reset to seed, run to the
// configured horizon, and flatten — returning byte-identical metrics to
// RunPCACell on the same config and seed. Wire stats are reported as
// deltas over this cell (a from-scratch codec starts at zero, so the
// absolute and delta views coincide).
func (r *PCACellRig) RunCell(seed int64, trace *sim.Trace) (map[string]float64, error) {
	sc := r.sc
	sc.Reset(seed, trace)
	out, err := sc.Run(r.cfg.Duration)
	if err != nil {
		return nil, err
	}
	m := out.Metrics()
	m[MetricSimEvents] = float64(sc.K.Executed())
	ws := sc.Wire.Stats()
	m[MetricWireBytes] = float64(ws.Bytes - sc.ws0.Bytes)
	m[MetricWireEncodeNS] = float64(ws.EncodeNS - sc.ws0.EncodeNS)
	return m, nil
}
