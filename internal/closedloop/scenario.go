package closedloop

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mednet"
	"repro/internal/physio"
	"repro/internal/sim"
)

// PCAScenarioConfig assembles the complete Figure 1 rig: patient, pump,
// pulse oximeter, ICE manager and supervisor over a lossy network.
type PCAScenarioConfig struct {
	Seed     int64
	Duration sim.Time

	Patient       physio.Traits // zero value => default traits
	PatientIdx    int           // population index when sampling
	UsePopulation bool
	Population    physio.PopulationSpec

	Pump              device.PumpSettings
	Link              mednet.LinkParams
	Supervisor        PCAConfig // PumpID/OximeterID filled in by the builder
	SupervisorEnabled bool

	// ProxyPresses injects PCA-by-proxy abuse: a visitor pressing the
	// button every interval regardless of the patient's state.
	ProxyPressInterval sim.Time

	// OximeterOutageStart/End, when End > Start, schedule a total outage
	// of the oximeter->supervisor path — the network-partition fault of
	// experiment E6. Part of the config (rather than a post-build call) so
	// a scenario is a pure function of its config, which is what lets the
	// fleet layer build cells from declarative specs.
	OximeterOutageStart sim.Time
	OximeterOutageEnd   sim.Time

	// Trace, when non-nil, is the (empty or Reset) trace the scenario
	// records into instead of allocating its own — the fleet layer pools
	// one per worker so ensemble runs reuse sample buffers across cells.
	// The recorded contents are a pure function of the config either way.
	Trace *sim.Trace

	// WireCodec selects the ICE wire encoding for every endpoint in the
	// rig: "" or "binary" (default), "json" (debug/compat). Simulation
	// outcomes are codec-independent — the differential suite holds the
	// rendered tables byte-identical across both — so this is a debug
	// and benchmarking knob, not a clinical one.
	WireCodec string
}

// DefaultPCAScenario returns a 2-hour session reproducing the adverse-
// event setup of the paper's PCA discussion: the pump is misprogrammed
// with lax safety limits (short lockout, inflated hourly cap — "the pump
// programmer overestimates the maximum dose") and double-concentration
// drug is loaded, while a well-meaning visitor presses the button for the
// patient (PCA-by-proxy). The built-in safeguards are thereby defeated,
// and only the network supervisor stands between the patient and
// respiratory failure.
func DefaultPCAScenario(seed int64) PCAScenarioConfig {
	pump := device.DefaultPumpSettings()
	pump.ConcentrationFactor = 2           // wrong vial loaded
	pump.LockoutInterval = 2 * time.Minute // misprogrammed lockout
	pump.HourlyLimitMg = 30                // misprogrammed hourly cap
	return PCAScenarioConfig{
		Seed:               seed,
		Duration:           2 * sim.Hour,
		Pump:               pump,
		Link:               mednet.DefaultLink(),
		Supervisor:         DefaultPCAConfig("pump1", "ox1"),
		SupervisorEnabled:  true,
		ProxyPressInterval: 3 * sim.Minute,
	}
}

// PCAScenario is the assembled rig.
type PCAScenario struct {
	K        *sim.Kernel
	Net      *mednet.Network
	Mgr      *core.Manager
	Wire     core.Codec // the cell's shared wire codec (encode accounting)
	Patient  *physio.Patient
	Pump     *device.Pump
	Oximeter *device.Oximeter
	Ward     *device.Ward
	Sup      *PCASupervisor // nil when disabled
	Trace    *sim.Trace
}

// PCAOutcome summarizes a finished run for scoring.
type PCAOutcome struct {
	MinSpO2         float64
	SecondsBelow90  float64
	SecondsBelow85  float64
	Distressed      bool // ever entered the danger zone
	TotalDrugMg     float64
	Boluses         uint64
	BolusesDenied   uint64
	PumpStops       uint64
	Alarms          int
	DataTimeouts    uint64
	MeanStopLatency sim.Time
	FinalPain       float64
}

// BuildPCAScenario constructs (but does not run) the rig.
func BuildPCAScenario(cfg PCAScenarioConfig) *PCAScenario {
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed)
	net := mednet.MustNew(k, rng.Fork("net"), cfg.Link)
	// One codec instance serves the whole cell (it is single-threaded),
	// sharing the decode intern table and summing encode accounting.
	wire := core.MustNewCodec(cfg.WireCodec)
	mgrCfg := core.DefaultManagerConfig()
	mgrCfg.Codec = wire
	mgr := core.MustNewManager(k, net, mgrCfg)

	var patient *physio.Patient
	if cfg.UsePopulation {
		patient = cfg.Population.Sample(cfg.PatientIdx, rng.Fork("population"))
	} else {
		tr := cfg.Patient
		if tr.ID == "" {
			tr = physio.DefaultTraits()
		}
		patient = physio.NewPatient(tr, physio.MustPK(physio.DefaultMorphinePK()),
			physio.MustPD(physio.DefaultMorphinePD()), rng.Fork("patient"))
	}

	pumpSettings := cfg.Pump
	if pumpSettings.HourlyLimitMg == 0 {
		pumpSettings = device.DefaultPumpSettings()
	}
	pump := device.MustNewPump(k, net, "pump1", pumpSettings, core.ConnectConfig{Codec: wire})
	ox := device.MustNewOximeter(k, net, "ox1", patient, rng.Fork("ox"), core.ConnectConfig{Codec: wire})

	trace := cfg.Trace
	if trace == nil {
		trace = sim.NewTrace()
	}
	ward := device.NewWard(k, patient, sim.Second)
	ward.Trace = trace
	ward.AttachDrugSource(pump)

	sc := &PCAScenario{
		K: k, Net: net, Mgr: mgr, Wire: wire, Patient: patient,
		Pump: pump, Oximeter: ox, Ward: ward, Trace: trace,
	}
	if cfg.SupervisorEnabled {
		supCfg := cfg.Supervisor
		if supCfg.PumpID == "" {
			supCfg = DefaultPCAConfig("pump1", "ox1")
		}
		sc.Sup = MustNewPCASupervisor(k, mgr, supCfg)
		sc.Sup.OnAlarm(func(a Alarm) { trace.Annotate(a.At, "alarm", "%s: %s", a.Kind, a.Msg) })
	}

	// Patient demand behaviour: check the urge every 30 s.
	k.Every(30*time.Second, func(sim.Time) {
		if patient.WantsBolus(30 * sim.Second) {
			pump.PressButton()
		}
	})
	// PCA-by-proxy abuse, if configured.
	if cfg.ProxyPressInterval > 0 {
		k.Every(cfg.ProxyPressInterval.Duration(), func(sim.Time) { pump.PressButton() })
	}
	// Record supervisor-visible signals (interned: one sample per
	// estimate window for the whole session).
	obsSpO2 := trace.SeriesID("obs/spo2")
	mgr.Subscribe("ox1/spo2", func(_ string, d core.Datum) {
		if d.Valid {
			trace.RecordID(obsSpO2, k.Now(), d.Value)
		}
	})
	// Configured network partition of the sensing path.
	if cfg.OximeterOutageEnd > cfg.OximeterOutageStart {
		if err := net.Outage("ox1", mgr.Addr(), cfg.OximeterOutageStart, cfg.OximeterOutageEnd); err != nil {
			panic(fmt.Sprintf("closedloop: oximeter outage: %v", err))
		}
	}
	return sc
}

// Run executes the scenario to its horizon and scores it.
func (sc *PCAScenario) Run(d sim.Time) (PCAOutcome, error) {
	if err := sc.K.Run(d); err != nil {
		return PCAOutcome{}, err
	}
	return sc.score(), nil
}

func (sc *PCAScenario) score() PCAOutcome {
	st := sc.Trace.Stats("true/spo2")
	below90 := 0.0
	below85 := 0.0
	s := sc.Trace.Series("true/spo2")
	for i := 0; i+1 < len(s); i++ {
		dt := (s[i+1].T - s[i].T).Seconds()
		if s[i].V < 90 {
			below90 += dt
		}
		if s[i].V < 85 {
			below85 += dt
		}
	}
	out := PCAOutcome{
		MinSpO2:        st.Min,
		SecondsBelow90: below90,
		SecondsBelow85: below85,
		Distressed:     below85 > 0,
		TotalDrugMg:    sc.Patient.PK().TotalInfused(),
		Boluses:        sc.Pump.BolusesDelivered,
		BolusesDenied:  sc.Pump.BolusesDenied,
		FinalPain:      sc.Patient.Vitals().Pain,
	}
	if sc.Sup != nil {
		out.PumpStops = sc.Sup.StopsIssued
		out.Alarms = len(sc.Sup.Alarms())
		out.DataTimeouts = sc.Sup.DataTimeouts
		out.MeanStopLatency = sc.Sup.MeanStopLatency()
	}
	return out
}

// RunPCAScenario builds and runs in one call.
func RunPCAScenario(cfg PCAScenarioConfig) (PCAOutcome, *PCAScenario, error) {
	sc := BuildPCAScenario(cfg)
	out, err := sc.Run(cfg.Duration)
	return out, sc, err
}

// Metric names emitted by PCAOutcome.Metrics. Exported so fleet reducers
// and experiment tables agree on spelling.
const (
	MetricMinSpO2        = "min_spo2"
	MetricSecondsBelow90 = "s_below90"
	MetricSecondsBelow85 = "s_below85"
	MetricDistressed     = "distressed"
	MetricDrugMg         = "drug_mg"
	MetricBoluses        = "boluses"
	MetricBolusesDenied  = "boluses_denied"
	MetricPumpStops      = "stops"
	MetricAlarms         = "alarms"
	MetricDataTimeouts   = "timeouts"
	MetricStopLatencyNs  = "stop_latency_ns"
	MetricFinalPain      = "final_pain"

	// MetricSimEvents is the reserved engine counter: cell runners report
	// the kernel's executed-event total under it, and the fleet layer
	// lifts it out of the metrics map into Result.Events (it never appears
	// in reduced clinical tables). Must match fleet.MetricSimEvents; the
	// value is spelled here so scenario packages stay free of fleet
	// imports.
	MetricSimEvents = "sim/events"

	// MetricWireBytes and MetricWireEncodeNS are the reserved wire-codec
	// counters, lifted the same way into Result.WireBytes and
	// Result.WireEncodeNS: encoded envelope bytes and (sampled) encode
	// wall time for the cell's shared codec. The serving layer sums them
	// into its wire_bytes_total / wire_encode_ns gauges.
	//
	// WARNING: MetricWireEncodeNS is wall-clock time — the one reserved
	// key that is NOT deterministic. It exists only to ride the lift
	// into Result.WireEncodeNS; any consumer of the raw cell map other
	// than fleet.runCell must strip it before comparing runs (as
	// TestRunXRaySyncCellDeterministic does).
	MetricWireBytes    = "wire/bytes"
	MetricWireEncodeNS = "wire/encode_ns"
)

// Metrics flattens the outcome into the named-float form the fleet reduce
// stage consumes. Booleans become 0/1; durations are kept in integer
// nanoseconds (exact in a float64 for any plausible latency) so tables can
// reconstruct the original sim.Time bit-for-bit.
func (o PCAOutcome) Metrics() map[string]float64 {
	m := map[string]float64{
		MetricMinSpO2:        o.MinSpO2,
		MetricSecondsBelow90: o.SecondsBelow90,
		MetricSecondsBelow85: o.SecondsBelow85,
		MetricDistressed:     0,
		MetricDrugMg:         o.TotalDrugMg,
		MetricBoluses:        float64(o.Boluses),
		MetricBolusesDenied:  float64(o.BolusesDenied),
		MetricPumpStops:      float64(o.PumpStops),
		MetricAlarms:         float64(o.Alarms),
		MetricDataTimeouts:   float64(o.DataTimeouts),
		MetricStopLatencyNs:  float64(int64(o.MeanStopLatency)),
		MetricFinalPain:      o.FinalPain,
	}
	if o.Distressed {
		m[MetricDistressed] = 1
	}
	return m
}

// RunPCACell builds the rig from cfg, runs it to the configured horizon,
// and returns the flattened outcome — the exact shape of a fleet cell
// body. It returns a plain map so this package stays free of fleet
// imports (fleet imports closedloop, not the reverse).
func RunPCACell(cfg PCAScenarioConfig) (map[string]float64, error) {
	out, sc, err := RunPCAScenario(cfg)
	if err != nil {
		return nil, err
	}
	m := out.Metrics()
	m[MetricSimEvents] = float64(sc.K.Executed())
	ws := sc.Wire.Stats()
	m[MetricWireBytes] = float64(ws.Bytes)
	m[MetricWireEncodeNS] = float64(ws.EncodeNS)
	return m, nil
}
