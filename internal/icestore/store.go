// Package icestore is the gateway's durable result layer: a disk-backed
// content-addressed blob store keyed by icegate's deterministic cache
// key. Because a fleet result is a pure function of its key, a stored
// entry never goes stale — so the store can persist results across
// daemon restarts and serve them byte-identical forever.
//
// Layout under the configured directory:
//
//	objects/<sha256(key)>.ice   committed entries (one checksummed file each)
//	tmp/                        in-flight writes, renamed into objects/ on commit
//	quarantine/                 entries that failed validation, kept for autopsy
//
// The durability contract is commit-by-rename: an entry is written to
// tmp/, synced, and atomically renamed into objects/, so a crash at any
// point leaves either the old state or the new one, never a torn entry.
// Whatever garbage does end up in objects/ (torn disks, manual edits) is
// caught by the startup recovery scan or by the per-read checksum and
// moved to quarantine/ instead of being served.
//
// Eviction is LRU by total committed bytes. Recency rides on file
// mtimes — Get touches the entry — so the eviction order itself
// survives a restart.
package icestore

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// File format v1: magic, key (so the recovery scan can rebuild the
// index without a sidecar), payload, and a trailing CRC over everything
// before it.
//
//	"ICST" | version=1 | keyLen u32 | key | payloadLen u64 | payload | crc32c u32
var magic = [5]byte{'I', 'C', 'S', 'T', 1}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrOversized reports a payload that can never fit the configured byte
// budget; the entry is not stored (persistence is best-effort, but the
// caller may want to count these).
var ErrOversized = errors.New("icestore: payload exceeds the store byte budget")

// Config sizes and places the store.
type Config struct {
	Dir      string           // root directory; created if missing
	MaxBytes int64            // committed-bytes budget; <=0 = unbounded
	Now      func() time.Time // recency clock; nil = time.Now (tests inject)
}

// Stats is a snapshot of the store's lifetime counters.
type Stats struct {
	Hits        uint64 // Get served a validated entry
	Misses      uint64 // Get found nothing (including entries lost to corruption)
	Puts        uint64 // entries committed
	Evictions   uint64 // entries removed by the LRU byte budget
	Quarantined uint64 // entries that failed validation and were moved aside
	Entries     int    // committed entries resident now
	Bytes       int64  // committed bytes resident now
}

// Store is a concurrency-safe content-addressed blob store. All methods
// may be called from any goroutine.
type Store struct {
	dir      string
	maxBytes int64
	now      func() time.Time

	mu      sync.Mutex
	entries map[string]*entry // key -> entry
	lru     *list.List        // front = most recently used; values are *entry
	total   int64
	stats   Stats
	tmpSeq  int
}

type entry struct {
	key  string
	file string // object file name (content address + extension)
	size int64  // on-disk size
	elem *list.Element
}

func (s *Store) objDir() string  { return filepath.Join(s.dir, "objects") }
func (s *Store) tmpDir() string  { return filepath.Join(s.dir, "tmp") }
func (s *Store) quarDir() string { return filepath.Join(s.dir, "quarantine") }

// objectName is the content address: the key's SHA-256, hex.
func objectName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".ice"
}

// Open creates (or reopens) the store rooted at cfg.Dir, running the
// recovery scan: leftover tmp files from interrupted commits are
// deleted, every committed entry is validated end to end, corrupt or
// truncated ones are quarantined, and the survivors are indexed in
// mtime order so the LRU state picks up where the last process left it.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("icestore: Config.Dir is required")
	}
	s := &Store{
		dir:      cfg.Dir,
		maxBytes: cfg.MaxBytes,
		now:      cfg.Now,
		entries:  map[string]*entry{},
		lru:      list.New(),
	}
	if s.now == nil {
		s.now = time.Now
	}
	for _, d := range []string{s.objDir(), s.tmpDir(), s.quarDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("icestore: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover is the startup scan described on Open.
func (s *Store) recover() error {
	// A tmp file is an interrupted commit: the rename never happened, so
	// the entry was never promised to anyone. Delete.
	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return fmt.Errorf("icestore: %w", err)
	}
	for _, t := range tmps {
		_ = os.Remove(filepath.Join(s.tmpDir(), t.Name()))
	}

	objs, err := os.ReadDir(s.objDir())
	if err != nil {
		return fmt.Errorf("icestore: %w", err)
	}
	type found struct {
		e     *entry
		mtime time.Time
	}
	var scanned []found
	for _, o := range objs {
		if o.IsDir() {
			continue
		}
		path := filepath.Join(s.objDir(), o.Name())
		key, size, err := s.validateFile(path)
		if err != nil || objectName(key) != o.Name() {
			// Corrupt, truncated, or filed under the wrong address:
			// never serve it, keep the bytes for autopsy.
			s.quarantineLocked(path)
			continue
		}
		info, err := o.Info()
		if err != nil {
			s.quarantineLocked(path)
			continue
		}
		scanned = append(scanned, found{&entry{key: key, file: o.Name(), size: size}, info.ModTime()})
	}
	// Oldest first, so pushing each to the LRU front leaves the most
	// recently used entry at the front — the order the last process saw.
	sort.Slice(scanned, func(i, j int) bool {
		if !scanned[i].mtime.Equal(scanned[j].mtime) {
			return scanned[i].mtime.Before(scanned[j].mtime)
		}
		return scanned[i].e.file < scanned[j].e.file
	})
	for _, f := range scanned {
		f.e.elem = s.lru.PushFront(f.e)
		s.entries[f.e.key] = f.e
		s.total += f.e.size
	}
	s.evictLocked()
	return nil
}

// validateFile reads and fully validates one object file, returning the
// embedded key and the file size.
func (s *Store) validateFile(path string) (key string, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", 0, err
	}
	key, payload, err := decodeObject(data)
	if err != nil {
		return "", 0, err
	}
	_ = payload
	return key, int64(len(data)), nil
}

// encodeObject renders the v1 file image for (key, payload).
func encodeObject(key string, payload []byte) []byte {
	n := len(magic) + 4 + len(key) + 8 + len(payload) + 4
	buf := make([]byte, 0, n)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeObject parses and checksum-verifies a v1 file image.
func decodeObject(data []byte) (key string, payload []byte, err error) {
	if len(data) < len(magic)+4+8+4 {
		return "", nil, errors.New("icestore: truncated header")
	}
	if [5]byte(data[:5]) != magic {
		return "", nil, errors.New("icestore: bad magic")
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(crcBytes) {
		return "", nil, errors.New("icestore: checksum mismatch")
	}
	off := len(magic)
	keyLen := int(binary.BigEndian.Uint32(body[off : off+4]))
	off += 4
	if keyLen < 0 || off+keyLen+8 > len(body) {
		return "", nil, errors.New("icestore: bad key length")
	}
	key = string(body[off : off+keyLen])
	off += keyLen
	payloadLen := binary.BigEndian.Uint64(body[off : off+8])
	off += 8
	if payloadLen != uint64(len(body)-off) {
		return "", nil, errors.New("icestore: bad payload length")
	}
	return key, body[off:], nil
}

// quarantineLocked moves a failed file into quarantine/ (best-effort:
// if even the rename fails, the file is removed so it can never be
// served). Callers hold s.mu or run before the store is shared.
func (s *Store) quarantineLocked(path string) {
	dst := filepath.Join(s.quarDir(), filepath.Base(path))
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.quarDir(), fmt.Sprintf("%s.%d", filepath.Base(path), i))
	}
	if err := os.Rename(path, dst); err != nil {
		_ = os.Remove(path)
	}
	s.stats.Quarantined++
}

// Get returns the payload committed under key, re-verifying the
// checksum on every read: an entry that rotted on disk is quarantined
// and reported as a miss rather than served. A hit refreshes both the
// in-memory LRU position and the file mtime, so recency survives
// restarts.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	path := filepath.Join(s.objDir(), e.file)
	data, err := os.ReadFile(path)
	var payload []byte
	if err == nil {
		var gotKey string
		gotKey, payload, err = decodeObject(data)
		if err == nil && gotKey != key {
			err = errors.New("icestore: key mismatch")
		}
	}
	if err != nil {
		s.quarantineLocked(path)
		s.dropLocked(e)
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(e.elem)
	now := s.now()
	_ = os.Chtimes(path, now, now)
	return payload, true
}

// Put commits payload under key: full image to tmp/, fsync, atomic
// rename into objects/. Re-putting a key overwrites in place (the same
// deterministic key should carry the same bytes, but the store does not
// assume it). The write that pushes the store over budget evicts
// least-recently-used entries until it fits.
func (s *Store) Put(key string, payload []byte) error {
	image := encodeObject(key, payload)
	if s.maxBytes > 0 && int64(len(image)) > s.maxBytes {
		return ErrOversized
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.tmpSeq++
	tmp := filepath.Join(s.tmpDir(), fmt.Sprintf("put-%d.tmp", s.tmpSeq))
	if err := writeAndSync(tmp, image); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("icestore: %w", err)
	}
	name := objectName(key)
	path := filepath.Join(s.objDir(), name)
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("icestore: %w", err)
	}
	now := s.now()
	_ = os.Chtimes(path, now, now)

	if old, ok := s.entries[key]; ok {
		s.total -= old.size
		s.lru.Remove(old.elem)
	}
	e := &entry{key: key, file: name, size: int64(len(image))}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.total += e.size
	s.stats.Puts++
	s.evictLocked()
	return nil
}

// evictLocked enforces the byte budget, oldest entries first. Callers
// hold s.mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		_ = os.Remove(filepath.Join(s.objDir(), e.file))
		s.dropLocked(e)
		s.stats.Evictions++
	}
}

// dropLocked removes an entry from the index (the file is the caller's
// problem). Callers hold s.mu.
func (s *Store) dropLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.key)
	s.total -= e.size
}

// Stats snapshots the lifetime counters and resident totals.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.total
	return st
}

// Keys lists resident keys, most recently used first (tests and
// debugging; the order is the inverse eviction order).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// writeAndSync writes data to path and fsyncs it, so the subsequent
// rename publishes bytes that are actually on the platter.
func writeAndSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
