package icestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic Now: each call advances one second, so
// every write/touch gets a distinct, ordered mtime regardless of how
// fast the test runs.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

func newTestStore(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, MaxBytes: maxBytes, Now: (&testClock{t: time.Unix(1_700_000_000, 0)}).Now})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTripAndStats(t *testing.T) {
	s := newTestStore(t, t.TempDir(), 0)
	payload := []byte("scenario table bytes\nwith lines\n")
	if _, ok := s.Get("k1"); ok {
		t.Fatal("empty store claims a hit")
	}
	if err := s.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-put overwrites, not duplicates.
	if err := s.Put("k1", []byte("other")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("k1"); string(got) != "other" {
		t.Fatalf("overwrite lost: %q", got)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("overwrite duplicated the entry: %+v", st)
	}
}

// Committed entries must come back byte-identical through a full
// close/reopen cycle — the disk cache's whole reason to exist.
func TestRestartServesCommittedEntriesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir, 0)
	want := map[string][]byte{}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("scenario/x?seed=%d", i)
		payload := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		want[key] = payload
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
	}

	re := newTestStore(t, dir, 0)
	for key, payload := range want {
		got, ok := re.Get(key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("after restart %q = %v, %v", key, got, ok)
		}
	}
	if st := re.Stats(); st.Entries != 5 || st.Quarantined != 0 {
		t.Fatalf("restart stats = %+v", st)
	}
}

// The crash-mid-write scan: an interrupted commit leaves a tmp file
// (never promised, deleted on reopen) while a torn object file — the
// half-written entry — is quarantined instead of served, and every
// other entry survives intact.
func TestCrashMidWriteQuarantinesHalfWrittenEntry(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir, 0)
	if err := s.Put("good", []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", []byte("this payload will be cut mid-write")); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: one commit interrupted before rename (tmp
	// leftover) and one entry torn on disk (truncated to half its bytes).
	if err := os.WriteFile(filepath.Join(dir, "tmp", "put-99.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	tornPath := filepath.Join(dir, "objects", objectName("torn"))
	img, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, img[:len(img)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	re := newTestStore(t, dir, 0)
	if _, ok := re.Get("torn"); ok {
		t.Fatal("half-written entry was served")
	}
	got, ok := re.Get("good")
	if !ok || string(got) != "good payload" {
		t.Fatalf("intact entry lost: %q, %v", got, ok)
	}
	st := re.Stats()
	if st.Quarantined != 1 || st.Entries != 1 {
		t.Fatalf("recovery stats = %+v", st)
	}
	// The torn bytes are kept for autopsy, not deleted.
	quar, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quar) != 1 {
		t.Fatalf("quarantine dir = %v, %v", quar, err)
	}
	// The interrupted tmp write is gone.
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(tmps) != 0 {
		t.Fatalf("tmp dir = %v, %v", tmps, err)
	}
}

// Corruption that happens after startup (bit rot under a running
// daemon) is caught by the per-read checksum: quarantined, reported as
// a miss, never served.
func TestReadTimeCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir, 0)
	if err := s.Put("rot", []byte("payload that will rot")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", objectName("rot"))
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xFF
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("rot"); ok {
		t.Fatal("rotten entry served")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats after rot = %+v", st)
	}
	// The slot is free again: a fresh Put repairs the store.
	if err := s.Put("rot", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("rot"); !ok || string(got) != "fresh" {
		t.Fatalf("repair failed: %q, %v", got, ok)
	}
	// Rot the repaired entry too: the quarantine name collides with the
	// first autopsy file and must be suffixed, not clobbered.
	img2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img2[0] ^= 0xFF
	if err := os.WriteFile(path, img2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("rot"); ok {
		t.Fatal("re-rotten entry served")
	}
	quar, err := os.ReadDir(filepath.Join(s.Dir(), "quarantine"))
	if err != nil || len(quar) != 2 {
		t.Fatalf("quarantine dir after double rot = %v, %v", quar, err)
	}
}

// A file renamed to the wrong content address must not be served under
// the address it squats on.
func TestMisfiledEntryQuarantinedOnScan(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir, 0)
	if err := s.Put("honest", []byte("honest payload")); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "objects", objectName("honest"))
	dst := filepath.Join(dir, "objects", objectName("victim"))
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	re := newTestStore(t, dir, 0)
	if _, ok := re.Get("victim"); ok {
		t.Fatal("misfiled entry served under the squatted key")
	}
	if st := re.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	dir := t.TempDir()
	// Each entry's file image is ~50 bytes overhead + payload; pick a
	// budget that holds three 100-byte payloads but not four.
	payload := func(c byte) []byte { return bytes.Repeat([]byte{c}, 100) }
	one := int64(len(encodeObject("kX", payload('x'))))
	s := newTestStore(t, dir, 3*one+one/2)

	for _, k := range []string{"kA", "kB", "kC"} {
		if err := s.Put(k, payload(k[1])); err != nil {
			t.Fatal(err)
		}
	}
	// Touch kA so kB is the least recently used.
	if _, ok := s.Get("kA"); !ok {
		t.Fatal("kA missing")
	}
	if err := s.Put("kD", payload('D')); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("kB"); ok {
		t.Fatal("LRU entry kB survived eviction")
	}
	for _, k := range []string{"kA", "kC", "kD"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// The regression the mtime design exists for: recency (and therefore
// the eviction order) survives a restart.
func TestEvictionOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	payload := func(c byte) []byte { return bytes.Repeat([]byte{c}, 100) }
	one := int64(len(encodeObject("kX", payload('x'))))

	s := newTestStore(t, dir, 0) // unbounded while we set up recency
	for _, k := range []string{"kA", "kB", "kC"} {
		if err := s.Put(k, payload(k[1])); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("kA"); !ok { // kA most recent, kB least
		t.Fatal("kA missing")
	}

	re := newTestStore(t, dir, 3*one+one/2)
	if got := re.Keys(); strings.Join(got, ",") != "kA,kC,kB" {
		t.Fatalf("recency after restart = %v, want [kA kC kB]", got)
	}
	if err := re.Put("kD", payload('D')); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get("kB"); ok {
		t.Fatal("pre-restart LRU entry kB survived the post-restart eviction")
	}
	for _, k := range []string{"kA", "kC", "kD"} {
		if _, ok := re.Get(k); !ok {
			t.Fatalf("%s evicted out of order after restart", k)
		}
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	s := newTestStore(t, t.TempDir(), 64)
	if err := s.Put("big", bytes.Repeat([]byte{'x'}, 1024)); err != ErrOversized {
		t.Fatalf("oversized put err = %v", err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("oversized put leaked state: %+v", st)
	}
}

func TestOpenRequiresDirAndRecoversOverBudget(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without a dir succeeded")
	}
	// A root that is a plain file cannot become a store.
	blocked := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: blocked}); err == nil {
		t.Fatal("Open over a plain file succeeded")
	}
	// Subdirectories in objects/ are ignored, not quarantined.
	okDir := t.TempDir()
	s0 := newTestStore(t, okDir, 0)
	if err := os.Mkdir(filepath.Join(okDir, "objects", "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s0.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if st := newTestStore(t, okDir, 0).Stats(); st.Entries != 1 || st.Quarantined != 0 {
		t.Fatalf("scan over subdir = %+v", st)
	}
	// A store reopened with a smaller budget trims to fit at startup.
	dir := t.TempDir()
	s := newTestStore(t, dir, 0)
	payload := bytes.Repeat([]byte{'p'}, 100)
	one := int64(len(encodeObject("k0", payload)))
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	re := newTestStore(t, dir, 2*one+one/2)
	st := re.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("over-budget recovery stats = %+v", st)
	}
	// The two newest survive.
	for _, k := range []string{"k2", "k3"} {
		if _, ok := re.Get(k); !ok {
			t.Fatalf("%s trimmed, want newest kept", k)
		}
	}
}

// The store's concurrent path: parallel gets, puts, and the evictions
// they trigger, exercised under -race (the CI suite runs this package
// with the race detector).
func TestConcurrentGetPutEvict(t *testing.T) {
	payload := bytes.Repeat([]byte{'c'}, 200)
	one := int64(len(encodeObject("w0-k00", payload)))
	s := newTestStore(t, t.TempDir(), 8*one) // small budget: constant eviction churn

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-k%02d", w, i%10)
				if err := s.Put(key, payload); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, payload) {
					t.Errorf("get %s returned wrong bytes", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Bytes > 8*one {
		t.Fatalf("budget blown: %+v", st)
	}
	if st.Quarantined != 0 {
		t.Fatalf("concurrent churn quarantined entries: %+v", st)
	}
	// Every resident entry still round-trips.
	for _, k := range s.Keys() {
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, payload) {
			t.Fatalf("post-churn %s = %v, %v", k, got, ok)
		}
	}
}

func TestDecodeObjectRejectsGarbage(t *testing.T) {
	good := encodeObject("key", []byte("payload"))
	cases := map[string][]byte{
		"empty":         {},
		"short":         good[:8],
		"bad magic":     append([]byte("NOPE!"), good[5:]...),
		"truncated":     good[:len(good)-2],
		"flipped byte":  flip(good, 10),
		"flipped crc":   flip(good, len(good)-1),
		"inflated klen": flip(good, 6),
	}
	for name, data := range cases {
		if _, _, err := decodeObject(data); err == nil {
			t.Errorf("%s: decodeObject accepted", name)
		}
	}
	if key, payload, err := decodeObject(good); err != nil || key != "key" || string(payload) != "payload" {
		t.Fatalf("good image rejected: %q %q %v", key, payload, err)
	}
}

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x40
	return c
}
