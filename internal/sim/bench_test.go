package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelScheduling measures steady-state schedule+dispatch
// throughput with a standing queue of 1024 pending events (so heap ops
// run at realistic depth). "arena" drives the production kernel through
// the closure-free AtFunc/Step hot path; "reference" drives the pre-arena
// container/heap-of-pointers kernel exactly the way pre-refactor callers
// did — a heap-allocated closure per event. The acceptance bar for this
// PR is arena ≥ 2x reference events/s and 0 allocs/op.
func BenchmarkKernelScheduling(b *testing.B) {
	b.Run("arena", func(b *testing.B) {
		k := NewKernel()
		noop := func(any) {}
		for i := 0; i < 1024; i++ { // standing backlog, never dispatched
			k.AtFunc(Time(1)<<40+Time(i), noop, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.AtFunc(k.Now()+Millisecond, noop, nil)
			k.Step()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("reference", func(b *testing.B) {
		SetReferenceQueueForTest(true)
		defer SetReferenceQueueForTest(false)
		k := NewKernel()
		for i := 0; i < 1024; i++ {
			k.At(Time(1)<<40+Time(i), func() {})
		}
		sink := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := i // force a real capture, as pre-refactor call sites did
			k.At(k.Now()+Millisecond, func() { sink = n })
			k.Step()
		}
		b.StopTimer()
		_ = sink
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkKernelTickerStorm is the fleet's dominant event shape: many
// concurrent tickers re-arming forever (device heartbeats, telemetry,
// watchdogs). One op = one dispatched tick.
func BenchmarkKernelTickerStorm(b *testing.B) {
	k := NewKernel()
	ticks := 0
	for i := 0; i < 64; i++ {
		k.Every(time.Duration(i+1)*time.Millisecond, func(Time) { ticks++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTraceRecord contrasts the interned hot path against the
// name-keyed convenience path, both at the pooled-fleet steady state:
// buffers pre-grown to capacity and Reset, so no append growth is timed.
func BenchmarkTraceRecord(b *testing.B) {
	const cap = 1 << 20
	warm := func() *Trace {
		tr := NewTrace()
		id := tr.SeriesID("spo2")
		for i := 0; i < cap; i++ {
			tr.RecordID(id, Time(i), 97)
		}
		tr.Reset()
		return tr
	}
	b.Run("interned", func(b *testing.B) {
		tr := warm()
		id := tr.SeriesID("spo2")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%cap == 0 {
				tr.Reset()
			}
			tr.RecordID(id, Time(i%cap), 97)
		}
	})
	b.Run("by-name", func(b *testing.B) {
		tr := warm()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%cap == 0 {
				tr.Reset()
			}
			tr.Record("spo2", Time(i%cap), 97)
		}
	})
}

// BenchmarkKernelCancel exercises the cancel + lazy-sweep path: every op
// schedules two events and cancels one, so half the queue is perpetually
// dead weight that the sweep must keep reclaiming.
func BenchmarkKernelCancel(b *testing.B) {
	k := NewKernel()
	noop := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := k.AtFunc(k.Now()+Millisecond, noop, nil)
		kill := k.AtFunc(k.Now()+2*Millisecond, noop, nil)
		k.Cancel(kill)
		k.Step()
		_ = keep
	}
}
