package sim

import (
	"container/heap"
	"sync/atomic"
)

// refQueueMode routes kernels created by NewKernel through the reference
// queue below. Test-only; atomic because fleet worker goroutines create
// kernels concurrently while a differential test holds the mode steady.
var refQueueMode atomic.Bool

// SetReferenceQueueForTest makes every subsequently created Kernel use the
// pre-arena container/heap-of-pointers queue. The arena kernel is the
// production implementation; the reference exists so the differential
// determinism suite can run whole scenarios on both backends and assert
// byte-identical tables. Never enable it outside tests.
func SetReferenceQueueForTest(on bool) { refQueueMode.Store(on) }

// refEvent is the reference queue's per-event record — one heap
// allocation per event, exactly like the pre-arena kernel.
type refEvent struct {
	at       Time
	seq      uint64
	fn       func(any)
	arg      any
	canceled bool
	index    int
	id       EventID
}

type refHeap []*refEvent

func (q refHeap) Len() int { return len(q) }
func (q refHeap) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refHeap) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *refHeap) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// refQueue adapts the original queue to the kernel's backend seam. IDs
// are a plain counter resolved through a map; performance is irrelevant
// here — ordering fidelity is the point.
type refQueue struct {
	h        refHeap
	byID     map[EventID]*refEvent
	nextID   uint64
	canceled int
}

func newRefQueue() *refQueue {
	return &refQueue{byID: make(map[EventID]*refEvent)}
}

func (q *refQueue) push(at Time, seq uint64, fn func(any), arg any) EventID {
	q.nextID++
	e := &refEvent{at: at, seq: seq, fn: fn, arg: arg, id: EventID(q.nextID)}
	heap.Push(&q.h, e)
	q.byID[e.id] = e
	return e.id
}

func (q *refQueue) cancel(id EventID) bool {
	e, ok := q.byID[id]
	if !ok || e.canceled {
		return false
	}
	e.canceled = true
	q.canceled++
	return true
}

func (q *refQueue) pending() int { return len(q.h) - q.canceled }

// reset empties the queue for Kernel.Reset, mirroring the arena path so
// prototype cloning stays differential-testable on both backends.
func (q *refQueue) reset() {
	for i := range q.h {
		q.h[i] = nil
	}
	q.h = q.h[:0]
	clear(q.byID)
	q.nextID = 0
	q.canceled = 0
}

func (q *refQueue) popNext(horizon Time) (func(any), any, Time, bool) {
	for len(q.h) > 0 {
		e := q.h[0]
		if e.canceled {
			heap.Pop(&q.h)
			delete(q.byID, e.id)
			q.canceled--
			continue
		}
		if e.at > horizon {
			return nil, nil, 0, false
		}
		heap.Pop(&q.h)
		delete(q.byID, e.id)
		return e.fn, e.arg, e.at, true
	}
	return nil, nil, 0, false
}
