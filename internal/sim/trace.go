package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Sample is one timestamped scalar observation in a named series.
type Sample struct {
	T Time
	V float64
}

// SeriesID is an interned handle to one named series of a Trace. Models
// that sample on every step resolve the name once (SeriesID) and record
// through the handle (RecordID), turning steady-state sampling into a
// bounds-checked append — no map lookup, no allocation once the sample
// buffer has reached its high-water mark.
type SeriesID int32

// seriesData is one named series' storage.
type seriesData struct {
	name    string
	samples []Sample
}

// Trace records named time series produced during a simulation run.
// It is the raw material for the experiment tables (see DESIGN.md) and
// for assertions in integration tests. Not safe for concurrent use; a
// simulation is single-threaded by construction — one Trace belongs to
// one room, and the fleet layer keeps rooms isolated.
type Trace struct {
	byName map[string]SeriesID
	series []seriesData
	events []TraceEvent
}

// TraceEvent is a timestamped discrete annotation (alarm raised, pump
// stopped, message dropped, ...).
type TraceEvent struct {
	T    Time
	Kind string
	Msg  string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{byName: make(map[string]SeriesID)}
}

// SeriesID interns a series name, returning a stable handle for RecordID.
// Reserving an ID does not create an observable series: a name only
// appears in SeriesNames once a sample lands, so eagerly interning at
// model construction never perturbs trace-derived output.
func (tr *Trace) SeriesID(name string) SeriesID {
	if id, ok := tr.byName[name]; ok {
		return id
	}
	id := SeriesID(len(tr.series))
	tr.series = append(tr.series, seriesData{name: name})
	tr.byName[name] = id
	return id
}

// RecordID appends a sample to the interned series. Samples must be
// appended in nondecreasing time order; out-of-order appends panic, since
// they indicate an event-ordering bug in the model.
func (tr *Trace) RecordID(id SeriesID, t Time, v float64) {
	s := &tr.series[id]
	if n := len(s.samples); n > 0 && s.samples[n-1].T > t {
		panic(fmt.Sprintf("sim: trace %q time went backwards: %v after %v", s.name, t, s.samples[n-1].T))
	}
	s.samples = append(s.samples, Sample{T: t, V: v})
}

// Record appends a sample to the named series — the convenience form of
// RecordID, paying one map lookup per call.
func (tr *Trace) Record(name string, t Time, v float64) {
	tr.RecordID(tr.SeriesID(name), t, v)
}

// Reset empties the trace while retaining interned names and sample
// capacity, so a pooled trace replays a fresh cell without reallocating
// its buffers. Interned SeriesIDs remain valid across Reset.
func (tr *Trace) Reset() {
	for i := range tr.series {
		tr.series[i].samples = tr.series[i].samples[:0]
	}
	tr.events = tr.events[:0]
}

// Annotate appends a discrete event annotation.
func (tr *Trace) Annotate(t Time, kind, format string, args ...any) {
	tr.events = append(tr.events, TraceEvent{T: t, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Series returns the samples for name (nil if absent).
func (tr *Trace) Series(name string) []Sample {
	if id, ok := tr.byName[name]; ok {
		return tr.series[id].samples
	}
	return nil
}

// SeriesNames returns all series names with at least one sample, sorted.
func (tr *Trace) SeriesNames() []string {
	names := make([]string, 0, len(tr.series))
	for i := range tr.series {
		if len(tr.series[i].samples) > 0 {
			names = append(names, tr.series[i].name)
		}
	}
	sort.Strings(names)
	return names
}

// Events returns annotations of the given kind ("" for all).
func (tr *Trace) Events(kind string) []TraceEvent {
	if kind == "" {
		return tr.events
	}
	var out []TraceEvent
	for _, e := range tr.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// CountEvents reports how many annotations of kind were recorded.
func (tr *Trace) CountEvents(kind string) int {
	n := 0
	for _, e := range tr.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Last returns the most recent sample of the series and whether one exists.
func (tr *Trace) Last(name string) (Sample, bool) {
	s := tr.Series(name)
	if len(s) == 0 {
		return Sample{}, false
	}
	return s[len(s)-1], true
}

// At returns the value of the series at time t using zero-order hold
// (the latest sample at or before t). ok is false before the first sample.
func (tr *Trace) At(name string, t Time) (v float64, ok bool) {
	s := tr.Series(name)
	i := sort.Search(len(s), func(i int) bool { return s[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s[i-1].V, true
}

// Stats summarizes a series.
type Stats struct {
	N                int
	Min, Max, Mean   float64
	First, Last      float64
	TimeAboveSeconds float64 // accumulated time with V > threshold passed to StatsAbove
}

// Stats computes summary statistics for a series. For an empty series all
// fields are zero.
func (tr *Trace) Stats(name string) Stats {
	return tr.StatsAbove(name, 0)
}

// StatsAbove computes summary statistics and, additionally, the total
// virtual time (zero-order hold) the series spent strictly above threshold.
func (tr *Trace) StatsAbove(name string, threshold float64) Stats {
	s := tr.Series(name)
	if len(s) == 0 {
		return Stats{}
	}
	st := Stats{N: len(s), Min: s[0].V, Max: s[0].V, First: s[0].V, Last: s[len(s)-1].V}
	sum := 0.0
	for i, smp := range s {
		if smp.V < st.Min {
			st.Min = smp.V
		}
		if smp.V > st.Max {
			st.Max = smp.V
		}
		sum += smp.V
		if i+1 < len(s) && smp.V > threshold {
			st.TimeAboveSeconds += (s[i+1].T - smp.T).Seconds()
		}
	}
	st.Mean = sum / float64(len(s))
	return st
}

// Crossings counts upward crossings of the threshold (value moves from
// <= threshold to > threshold between consecutive samples).
func (tr *Trace) Crossings(name string, threshold float64) int {
	s := tr.Series(name)
	n := 0
	for i := 1; i < len(s); i++ {
		if s[i-1].V <= threshold && s[i].V > threshold {
			n++
		}
	}
	return n
}

// Render produces a compact fixed-width textual summary of selected series,
// suitable for CLI output. Columns are sampled every step.
func (tr *Trace) Render(names []string, step Time, until Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "t")
	for _, n := range names {
		fmt.Fprintf(&b, " %12s", n)
	}
	b.WriteByte('\n')
	for t := Time(0); t <= until; t += step {
		fmt.Fprintf(&b, "%-12s", t.Duration())
		for _, n := range names {
			if v, ok := tr.At(n, t); ok {
				fmt.Fprintf(&b, " %12.3f", v)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
