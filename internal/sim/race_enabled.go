//go:build race

package sim

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-regression gates skip under -race: instrumentation allocates
// on its own and would fail the 0-allocs/op contracts spuriously.
const RaceEnabled = true
