package sim

import (
	"math/rand"
	"testing"
	"time"
)

// Regression for the sticky-stop bug: Stop called outside Run used to be
// silently erased by Run's unconditional reset of the stop flag.
func TestStopBeforeRunIsSticky(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(Millisecond, func() { ran++ })
	k.Stop()
	if err := k.Run(Second); err != ErrStopped {
		t.Fatalf("Run after pre-Run Stop = %v, want ErrStopped", err)
	}
	if ran != 0 {
		t.Fatalf("pre-stopped Run executed %d events, want 0", ran)
	}
	// The stop request is consumed by the refusal: the next Run proceeds.
	if err := k.Run(Second); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("second Run executed %d events, want 1", ran)
	}
}

func TestStopBeforeRunAllIsSticky(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(Millisecond, func() { ran++ })
	k.Stop()
	if err := k.RunAll(); err != ErrStopped {
		t.Fatalf("RunAll after pre-Run Stop = %v, want ErrStopped", err)
	}
	if ran != 0 {
		t.Fatalf("pre-stopped RunAll executed %d events, want 0", ran)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("second RunAll executed %d events, want 1", ran)
	}
}

// Cancel by EventID: live events cancel exactly once; stale IDs (the
// event ran, or its recycled slot now hosts a different event) are no-ops.
func TestCancelByIDGenerations(t *testing.T) {
	k := NewKernel()
	ran := 0
	noop := func(any) { ran++ }
	id := k.AtFunc(Millisecond, noop, nil)
	if !k.Cancel(id) {
		t.Fatal("first Cancel of a live event = false")
	}
	if k.Cancel(id) {
		t.Fatal("second Cancel of the same event = true")
	}
	if k.Step() {
		t.Fatal("Step executed something; only the canceled event was queued")
	}
	if ran != 0 {
		t.Fatal("canceled event ran")
	}

	// An executed event's ID must go stale even though its slot is reused.
	id2 := k.AtFunc(2*Millisecond, noop, nil)
	if !k.Step() {
		t.Fatal("Step found no event")
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if k.Cancel(id2) {
		t.Fatal("Cancel after execution = true")
	}
	// The recycled slot's new occupant must be unaffected by the stale ID.
	id3 := k.AtFunc(3*Millisecond, noop, nil)
	if k.Cancel(id2) {
		t.Fatal("stale Cancel hit the slot's new occupant")
	}
	if !k.Cancel(id3) {
		t.Fatal("live Cancel of the new occupant = false")
	}
	if k.Cancel(0) {
		t.Fatal("Cancel of the zero EventID = true")
	}
}

// Pending must report live events only, and the lazy sweep must actually
// drop canceled entries once they exceed half the queue.
func TestPendingExcludesCanceledAndSweeps(t *testing.T) {
	k := NewKernel()
	noop := func(any) {}
	ids := make([]EventID, 100)
	for i := range ids {
		ids[i] = k.AtFunc(Time(i+1)*Millisecond, noop, nil)
	}
	if k.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", k.Pending())
	}
	for _, id := range ids[:40] {
		k.Cancel(id)
	}
	if k.Pending() != 60 {
		t.Fatalf("Pending after 40 cancels = %d, want 60", k.Pending())
	}
	if len(k.heap) != 100 {
		t.Fatalf("heap length = %d before sweep threshold, want 100 (lazy)", len(k.heap))
	}
	// Crossing half the queue triggers the sweep: the 51st cancel compacts
	// the heap to the 49 then-live entries; the last 10 cancels mark anew.
	for _, id := range ids[40:61] {
		k.Cancel(id)
	}
	if k.Pending() != 39 {
		t.Fatalf("Pending after 61 cancels = %d, want 39", k.Pending())
	}
	if len(k.heap) != 49 {
		t.Fatalf("heap length = %d after sweep, want 49", len(k.heap))
	}
	if k.canceled != 10 {
		t.Fatalf("canceled counter = %d after sweep, want 10", k.canceled)
	}
	// The survivors still run in order.
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if k.Executed() != 39 {
		t.Fatalf("executed = %d, want 39", k.Executed())
	}
}

// AtFunc carries its argument through to dispatch.
func TestAtFuncArgDelivery(t *testing.T) {
	k := NewKernel()
	type payload struct{ n int }
	p := &payload{}
	k.AtFunc(Millisecond, func(arg any) { arg.(*payload).n = 42 }, p)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if p.n != 42 {
		t.Fatalf("arg not delivered: %+v", p)
	}
}

// Differential property: random workloads with interleaved scheduling and
// cancellation execute in the same order on the arena kernel and on the
// reference (pre-arena container/heap) kernel.
func TestArenaMatchesReferenceKernel(t *testing.T) {
	run := func(seed int64, ref bool) []Time {
		SetReferenceQueueForTest(ref)
		defer SetReferenceQueueForTest(false)
		k := NewKernel()
		if ref && k.ref == nil || !ref && k.ref != nil {
			t.Fatalf("reference mode not honored (ref=%v)", ref)
		}
		g := rand.New(rand.NewSource(seed))
		var fired []Time
		var live []EventID
		var churn func(depth int)
		churn = func(depth int) {
			fired = append(fired, k.Now())
			if depth > 4 {
				return
			}
			for i, n := 0, g.Intn(4); i < n; i++ {
				d := time.Duration(g.Intn(2000)) * time.Millisecond
				id := k.AfterFunc(d, func(any) { churn(depth + 1) }, nil)
				live = append(live, id)
			}
			// Cancel a random earlier event now and then, including stale IDs.
			if len(live) > 0 && g.Intn(3) == 0 {
				k.Cancel(live[g.Intn(len(live))])
			}
		}
		for i := 0; i < 30; i++ {
			k.AfterFunc(time.Duration(g.Intn(5000))*time.Millisecond, func(any) { churn(0) }, nil)
		}
		if err := k.Run(20 * Second); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	for seed := int64(1); seed <= 8; seed++ {
		arena := run(seed, false)
		reference := run(seed, true)
		if len(arena) != len(reference) {
			t.Fatalf("seed %d: %d events on arena vs %d on reference", seed, len(arena), len(reference))
		}
		for i := range arena {
			if arena[i] != reference[i] {
				t.Fatalf("seed %d: dispatch %d at %v on arena vs %v on reference", seed, i, arena[i], reference[i])
			}
		}
	}
}

// Allocation gates — the PR's core contract. Steady-state closure-free
// scheduling, ticker re-arming, and interned trace sampling must all be
// allocation-free. Skipped under -race (instrumentation allocates).
func TestAllocsSteadyStateScheduling(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	k := NewKernel()
	noop := func(any) {}
	arg := &struct{}{}
	k.AtFunc(Millisecond, noop, arg) // warm the arena
	k.Step()
	if n := testing.AllocsPerRun(1000, func() {
		k.AtFunc(k.Now()+Millisecond, noop, arg)
		k.Step()
	}); n != 0 {
		t.Fatalf("steady-state schedule+dispatch allocates %v/op, want 0", n)
	}
}

func TestAllocsTickerSteadyState(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	k := NewKernel()
	ticks := 0
	k.Every(time.Second, func(Time) { ticks++ })
	k.Run(10 * Second) // warm
	if n := testing.AllocsPerRun(100, func() {
		k.Run(k.Now() + 10*Second)
	}); n != 0 {
		t.Fatalf("ticker steady state allocates %v per 10 ticks, want 0", n)
	}
	if ticks < 1000 {
		t.Fatalf("ticker only ticked %d times", ticks)
	}
}

func TestAllocsTraceSteadyState(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	tr := NewTrace()
	id := tr.SeriesID("spo2")
	for i := 0; i < 100000; i++ { // reach the high-water mark
		tr.RecordID(id, Time(i), 97)
	}
	tr.Reset() // the pooled-fleet steady state: full capacity, no samples
	at := Time(0)
	if n := testing.AllocsPerRun(50000, func() {
		tr.RecordID(id, at, 97)
		at++
	}); n != 0 {
		t.Fatalf("interned trace sampling allocates %v/op, want 0", n)
	}
}

// Reset must preserve interned IDs and capacities while emptying content.
func TestTraceReset(t *testing.T) {
	tr := NewTrace()
	id := tr.SeriesID("x")
	tr.RecordID(id, Second, 1)
	tr.Annotate(Second, "alarm", "boom")
	tr.Reset()
	if got := tr.Series("x"); len(got) != 0 {
		t.Fatalf("series not emptied: %v", got)
	}
	if len(tr.SeriesNames()) != 0 {
		t.Fatalf("empty series leaked into SeriesNames: %v", tr.SeriesNames())
	}
	if len(tr.Events("")) != 0 {
		t.Fatal("events survived Reset")
	}
	if tr.SeriesID("x") != id {
		t.Fatal("interned ID changed across Reset")
	}
	// Time may restart from zero after Reset (a fresh cell's clock).
	tr.RecordID(id, Millisecond, 2)
	if v, ok := tr.At("x", Second); !ok || v != 2 {
		t.Fatalf("post-Reset sample lost: %v %v", v, ok)
	}
}

// Interning a series eagerly must not make it observable until a sample
// lands — construction-time interning cannot perturb trace-derived output.
func TestSeriesIDReservationInvisible(t *testing.T) {
	tr := NewTrace()
	tr.SeriesID("reserved")
	if names := tr.SeriesNames(); len(names) != 0 {
		t.Fatalf("reserved series visible: %v", names)
	}
	if s := tr.Series("reserved"); len(s) != 0 {
		t.Fatalf("reserved series has samples: %v", s)
	}
}
