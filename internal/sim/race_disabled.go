//go:build !race

package sim

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
