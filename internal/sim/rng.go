package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source with the distributions the MCPS
// models need. It wraps math/rand with an explicit seed so that every
// simulation run is reproducible from its seed alone.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded generator. The same seed yields the same stream.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream. Children are decorrelated by
// hashing the label into the parent's stream, so adding a new consumer does
// not perturb existing ones as long as labels are stable.
//
// Fork consumes one draw from the parent, so the child depends on how many
// forks preceded it. That is the right behaviour inside a single
// simulation, where construction order is fixed, but wrong for fleet-style
// parallel ensembles: use SubSeed/Substream there, which derive children
// purely from (seed, label, index) and are therefore independent of
// construction and scheduling order.
func (g *RNG) Fork(label string) *RNG {
	return NewRNG(g.ForkSeed(label))
}

// ForkSeed computes the seed Fork would hand a child for label,
// consuming one draw from the parent exactly as Fork does. Prototype
// rigs use it to reseed retained child generators in place
// (child.Reseed(parent.ForkSeed(label))) so that a reset rig replays
// the same derivation sequence a from-scratch build would perform.
func (g *RNG) ForkSeed(label string) int64 {
	var h int64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return h ^ g.r.Int63()
}

// Reseed restarts the generator in place with a fresh seed. Components
// that captured this RNG at construction keep their pointer; after
// Reseed they observe the stream NewRNG(seed) would produce — the seam
// that lets a cloned cell rebind every substream without reallocating
// or re-plumbing generators.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// SubSeed derives a named substream seed from a base seed. The derivation
// is a pure function of (seed, label, index): FNV-1a over the inputs with a
// splitmix64 finalizer to scatter nearby seeds and indices across the
// seed space. Unlike Fork it consumes no generator state, so any worker
// can derive cell i's seed without replaying cells 0..i-1 — the property
// the fleet runner's determinism-under-parallelism guarantee rests on.
func SubSeed(seed int64, label string, index int) int64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	const prime = 1099511628211
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	mix(uint64(index))
	// splitmix64 finalizer
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// Substream returns a generator for the named substream of a base seed.
// Equivalent to NewRNG(SubSeed(seed, label, index)).
func Substream(seed int64, label string, index int) *RNG {
	return NewRNG(SubSeed(seed, label, index))
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a sample in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and stddev.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma).
// Used for population pharmacokinetic parameter variability, which is
// conventionally log-normally distributed.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns a sample with the given mean (not rate).
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(g.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
func (g *RNG) Jitter(base, frac float64) float64 {
	return base * g.Uniform(1-frac, 1+frac)
}

// TruncNormal returns a Normal(mean,stddev) sample clamped to [lo,hi].
func (g *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	v := g.Normal(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
