// Package sim provides a deterministic discrete-event simulation kernel.
//
// All MCPS subsystems (devices, networks, patients, supervisors) run on a
// single virtual clock owned by a Kernel. Events are executed in strictly
// nondecreasing time order; ties are broken by insertion order so that a
// given seed always reproduces an identical trace.
//
// The kernel is built for the fleet's hot path: pending events live in a
// slot arena indexed by a binary heap of int32 slot numbers, freed slots
// are recycled through a free list, and the closure-free scheduling
// variants (AtFunc, AfterFunc) let steady-state models schedule and
// dispatch without a single heap allocation. Events are addressed by
// EventID — a slot number plus a generation counter — so canceling an
// event that already ran (and whose slot was recycled) is always a safe
// no-op. See DESIGN.md's "Performance model" for the allocation budget.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is an absolute instant on the virtual clock, in nanoseconds since
// the start of the simulation.
type Time int64

// Common virtual-time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Duration converts t to a time.Duration for formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// FromSeconds converts fractional seconds to a Time offset.
func FromSeconds(s float64) Time {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	return Time(s * float64(Second))
}

// EventID addresses one scheduled event: the arena slot number in the high
// 32 bits and the slot's generation in the low 32. The zero EventID is
// never issued and cancels to a no-op, so an unset field is safe to
// Cancel. Generations make stale IDs harmless: once an event runs, is
// canceled, or is swept, its slot's generation advances and every ID
// minted for the old occupant stops matching.
type EventID uint64

// slot is one arena entry. A slot is live while its event sits in the
// heap; on dispatch or sweep it returns to the free list with gen bumped.
type slot struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among same-time events
	fn       func(any)
	arg      any
	gen      uint32
	canceled bool
}

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: kernel stopped")

// Kernel owns the virtual clock and the pending-event queue.
// The zero value is not ready; use NewKernel.
type Kernel struct {
	now      Time
	slots    []slot
	heap     []int32 // slot indices ordered by (at, seq)
	free     []int32 // recycled slot indices
	canceled int     // canceled events still occupying heap entries
	seq      uint64
	stopped  bool
	running  bool
	// executed counts events dispatched since construction.
	executed uint64

	// ref, when non-nil, routes the queue through the original
	// container/heap-of-pointers implementation. Test-only: the
	// differential determinism suite runs whole scenarios on both
	// backends and asserts byte-identical tables.
	ref *refQueue
}

// NewKernel returns a kernel with the clock at 0.
func NewKernel() *Kernel {
	k := &Kernel{}
	if refQueueMode.Load() {
		k.ref = newRefQueue()
	}
	return k
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of live (scheduled, not canceled) events.
// Canceled events awaiting the lazy sweep are excluded, so ticker-heavy
// long runs no longer report phantom backlog.
func (k *Kernel) Pending() int {
	if k.ref != nil {
		return k.ref.pending()
	}
	return len(k.heap) - k.canceled
}

// Executed reports how many events have been dispatched.
func (k *Kernel) Executed() uint64 { return k.executed }

// heap ordering: earliest time first, FIFO among equals. seq is unique,
// so the order is total and independent of the heap's internal layout —
// which is what lets the arena kernel replace the pointer heap without
// perturbing a single table byte.
func (k *Kernel) less(a, b int32) bool {
	sa, sb := &k.slots[a], &k.slots[b]
	return sa.at < sb.at || (sa.at == sb.at && sa.seq < sb.seq)
}

func (k *Kernel) up(j int) {
	h := k.heap
	for j > 0 {
		i := (j - 1) / 2
		if !k.less(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (k *Kernel) down(i int) {
	h := k.heap
	n := len(h)
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && k.less(h[r], h[j]) {
			j = r
		}
		if !k.less(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// removeTop deletes heap[0], restoring the heap property.
func (k *Kernel) removeTop() {
	n := len(k.heap) - 1
	k.heap[0] = k.heap[n]
	k.heap = k.heap[:n]
	if n > 0 {
		k.down(0)
	}
}

// freeSlot recycles a slot: the generation advances (invalidating every
// outstanding ID for the old occupant) and the fn/arg references drop so
// the arena never pins dead callbacks.
func (k *Kernel) freeSlot(si int32) {
	s := &k.slots[si]
	s.gen++
	if s.gen == 0 { // generation wrapped; 0 is reserved for the invalid ID
		s.gen = 1
	}
	s.fn = nil
	s.arg = nil
	s.canceled = false
	k.free = append(k.free, si)
}

// AtFunc schedules fn(arg) at absolute time at without allocating: the
// event occupies a recycled arena slot and fn should be a package-level
// function (a closure would reintroduce the allocation this API exists to
// avoid). arg should be a pointer; boxing a non-pointer value may
// allocate. Scheduling in the past (before Now) panics: it would violate
// causality and always indicates a model bug.
func (k *Kernel) AtFunc(at Time, fn func(any), arg any) EventID {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	seq := k.seq
	k.seq++
	if k.ref != nil {
		return k.ref.push(at, seq, fn, arg)
	}
	var si int32
	if n := len(k.free) - 1; n >= 0 {
		si = k.free[n]
		k.free = k.free[:n]
	} else {
		k.slots = append(k.slots, slot{gen: 1})
		si = int32(len(k.slots) - 1)
	}
	s := &k.slots[si]
	s.at, s.seq, s.fn, s.arg = at, seq, fn, arg
	k.heap = append(k.heap, si)
	k.up(len(k.heap) - 1)
	return EventID(uint64(uint32(si))<<32 | uint64(s.gen))
}

// AfterFunc is AtFunc at Now()+d. Negative d is clamped to zero.
func (k *Kernel) AfterFunc(d time.Duration, fn func(any), arg any) EventID {
	if d < 0 {
		d = 0
	}
	return k.AtFunc(k.now.Add(d), fn, arg)
}

// Cancel marks the identified event so the kernel skips it, reporting
// whether a live event was actually canceled. Stale IDs — the event
// already ran, was already canceled, or its slot was recycled — return
// false without side effects. Canceled events are dropped lazily: once
// they exceed half the queue the heap is swept and their slots freed, so
// cancel-heavy workloads (timeout patterns) cannot accumulate dead
// entries.
func (k *Kernel) Cancel(id EventID) bool {
	if id == 0 {
		return false
	}
	if k.ref != nil {
		return k.ref.cancel(id)
	}
	si := int64(id >> 32)
	if si >= int64(len(k.slots)) {
		return false
	}
	s := &k.slots[si]
	if s.gen != uint32(id) || s.canceled {
		return false
	}
	s.canceled = true
	k.canceled++
	if k.canceled >= 4 && k.canceled*2 > len(k.heap) {
		k.sweep()
	}
	return true
}

// sweep compacts the heap in place, freeing every canceled slot, and
// re-heapifies. O(n), amortized against the cancels that triggered it.
func (k *Kernel) sweep() {
	live := k.heap[:0]
	for _, si := range k.heap {
		if k.slots[si].canceled {
			k.freeSlot(si)
		} else {
			live = append(live, si)
		}
	}
	k.heap = live
	k.canceled = 0
	for i := len(k.heap)/2 - 1; i >= 0; i-- {
		k.down(i)
	}
}

// popNext discards canceled events at the top of the queue and pops the
// next live event if it is due at or before horizon.
func (k *Kernel) popNext(horizon Time) (fn func(any), arg any, at Time, ok bool) {
	if k.ref != nil {
		return k.ref.popNext(horizon)
	}
	for len(k.heap) > 0 {
		si := k.heap[0]
		s := &k.slots[si]
		if s.canceled {
			k.removeTop()
			k.canceled--
			k.freeSlot(si)
			continue
		}
		if s.at > horizon {
			return nil, nil, 0, false
		}
		k.removeTop()
		fn, arg, at = s.fn, s.arg, s.at
		// Free before dispatch: a self-rescheduling chain (tickers, the
		// dominant steady-state pattern) reuses this very slot, keeping the
		// arena at its high-water mark with zero allocation.
		k.freeSlot(si)
		return fn, arg, at, true
	}
	return nil, nil, 0, false
}

// Reset returns the kernel to its initial state — clock at 0, empty
// queue, sequence and executed counters zeroed, any pending Stop
// cleared — while retaining the slot arena, heap, and free-list
// capacity. It is the foundation of prototype cloning (see
// internal/fleet): a rig resets its kernel, then replays its
// construction-time scheduling calls in the original order, which
// reproduces the original seq assignments and therefore the original
// event order exactly. Slot generations advance for every discarded
// event, so EventIDs issued before Reset cancel to a no-op. Resetting
// mid-Run panics: it would corrupt the dispatch loop.
func (k *Kernel) Reset() {
	if k.running {
		panic("sim: Reset during Run")
	}
	for _, si := range k.heap {
		k.freeSlot(si)
	}
	k.heap = k.heap[:0]
	k.canceled = 0
	k.now = 0
	k.seq = 0
	k.stopped = false
	k.executed = 0
	if k.ref != nil {
		k.ref.reset()
	}
}

// Event is a legacy convenience handle for the closure-based scheduling
// API. Hot paths should hold the EventID from AtFunc/AfterFunc instead.
type Event struct {
	k        *Kernel
	id       EventID
	at       Time
	canceled bool
}

// Cancel marks the event so the kernel skips it. Canceling an already-run
// or already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	e.k.Cancel(e.id)
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At reports the scheduled execution instant.
func (e *Event) At() Time { return e.at }

// runFunc0 adapts a plain func() to the arena's func(any) calling
// convention; storing the func value in the arg word costs no allocation.
func runFunc0(arg any) { arg.(func())() }

// At schedules fn at absolute time at. This is the convenience form: it
// allocates a handle per call, so steady-state schedulers should prefer
// AtFunc. Scheduling in the past (before Now) panics.
func (k *Kernel) At(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	id := k.AtFunc(at, runFunc0, fn)
	return &Event{k: k, id: id, at: at}
}

// After schedules fn at Now()+d. Negative d is clamped to zero.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Stop makes Run return ErrStopped after the current event completes.
// A stop requested while no run is in progress is sticky: the next
// Run/RunAll call returns ErrStopped immediately instead of silently
// discarding the request (each Stop aborts exactly one run).
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, advancing the clock to it.
// It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	fn, arg, at, ok := k.popNext(Time(math.MaxInt64))
	if !ok {
		return false
	}
	if at < k.now {
		panic("sim: time went backwards")
	}
	k.now = at
	k.executed++
	fn(arg)
	return true
}

// Run executes events until the clock would pass horizon, the queue drains,
// or Stop is called. The clock is left at min(horizon, last event time) —
// after a complete run it is set to the horizon so that subsequent
// scheduling is relative to the intended end time. A Stop issued before
// Run aborts it up front (consuming the stop request).
func (k *Kernel) Run(horizon Time) error {
	if k.running {
		return errors.New("sim: Run reentered")
	}
	k.running = true
	defer func() { k.running = false }()
	for {
		if k.stopped {
			k.stopped = false
			return ErrStopped
		}
		fn, arg, at, ok := k.popNext(horizon)
		if !ok {
			break
		}
		k.now = at
		k.executed++
		fn(arg)
	}
	if k.now < horizon {
		k.now = horizon
	}
	return nil
}

// RunAll executes every pending event regardless of horizon. Like Run, a
// pre-issued Stop aborts it before the first event.
func (k *Kernel) RunAll() error {
	if k.stopped {
		k.stopped = false
		return ErrStopped
	}
	for k.Step() {
		if k.stopped {
			k.stopped = false
			return ErrStopped
		}
	}
	return nil
}

// Ticker invokes fn every period until canceled or the kernel drains.
// The first invocation happens one period from now. Re-arming goes
// through AfterFunc with the ticker itself as the argument, so a
// steady-state ticker allocates nothing per tick.
type Ticker struct {
	k      *Kernel
	period time.Duration
	fn     func(Time)
	id     EventID
	done   bool
}

// Every creates and starts a Ticker. period must be positive.
func (k *Kernel) Every(period time.Duration, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.arm()
	return t
}

// runTicker fires one tick and re-arms; package-level so rearming stays
// allocation-free.
func runTicker(arg any) {
	t := arg.(*Ticker)
	if t.done {
		return
	}
	t.fn(t.k.Now())
	if !t.done {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.id = t.k.AfterFunc(t.period, runTicker, t)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.done = true
	t.k.Cancel(t.id)
}

// Reset re-arms the ticker for a fresh run: the next tick fires one
// period from the kernel's current time. Intended for prototype rigs
// that call Kernel.Reset and then re-arm each component's tickers in
// construction order — the ticker object (and the event argument
// identity the arena relies on) is reused, so re-arming allocates
// nothing. Any previously armed tick is dropped by the kernel reset
// (its EventID is stale); Reset on a still-armed ticker without an
// intervening Kernel.Reset would duplicate ticks, so rigs must reset
// the kernel first.
func (t *Ticker) Reset() {
	t.done = false
	t.arm()
}
