// Package sim provides a deterministic discrete-event simulation kernel.
//
// All MCPS subsystems (devices, networks, patients, supervisors) run on a
// single virtual clock owned by a Kernel. Events are executed in strictly
// nondecreasing time order; ties are broken by insertion order so that a
// given seed always reproduces an identical trace.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is an absolute instant on the virtual clock, in nanoseconds since
// the start of the simulation.
type Time int64

// Common virtual-time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Duration converts t to a time.Duration for formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// FromSeconds converts fractional seconds to a Time offset.
func FromSeconds(s float64) Time {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	return Time(s * float64(Second))
}

// Event is a scheduled callback.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among same-time events
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// Cancel marks the event so the kernel skips it. Canceling an already-run
// or already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At reports the scheduled execution instant.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: kernel stopped")

// Kernel owns the virtual clock and the pending-event queue.
// The zero value is not ready; use NewKernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	running bool
	// Executed counts events dispatched since construction.
	executed uint64
}

// NewKernel returns a kernel with the clock at 0.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.queue)
	return k
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of not-yet-executed events (including
// canceled events still in the queue).
func (k *Kernel) Pending() int { return len(k.queue) }

// Executed reports how many events have been dispatched.
func (k *Kernel) Executed() uint64 { return k.executed }

// At schedules fn at absolute time at. Scheduling in the past (before Now)
// panics: it would violate causality and always indicates a model bug.
func (k *Kernel) At(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn at Now()+d. Negative d is clamped to zero.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Stop makes Run return ErrStopped after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, advancing the clock to it.
// It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.executed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the clock would pass horizon, the queue drains,
// or Stop is called. The clock is left at min(horizon, last event time) —
// after a complete run it is set to the horizon so that subsequent
// scheduling is relative to the intended end time.
func (k *Kernel) Run(horizon Time) error {
	if k.running {
		return errors.New("sim: Run reentered")
	}
	k.running = true
	defer func() { k.running = false }()
	k.stopped = false
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		next := k.queue[0]
		if next.canceled {
			heap.Pop(&k.queue)
			continue
		}
		if next.at > horizon {
			break
		}
		heap.Pop(&k.queue)
		k.now = next.at
		k.executed++
		next.fn()
	}
	if k.stopped {
		return ErrStopped
	}
	if k.now < horizon {
		k.now = horizon
	}
	return nil
}

// RunAll executes every pending event regardless of horizon.
func (k *Kernel) RunAll() error {
	for k.Step() {
		if k.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Ticker invokes fn every period until canceled or the kernel drains.
// The first invocation happens one period from now.
type Ticker struct {
	k      *Kernel
	period time.Duration
	fn     func(Time)
	ev     *Event
	done   bool
}

// Every creates and starts a Ticker. period must be positive.
func (k *Kernel) Every(period time.Duration, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.k.After(t.period, func() {
		if t.done {
			return
		}
		t.fn(t.k.Now())
		if !t.done {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.done = true
	t.ev.Cancel()
}
