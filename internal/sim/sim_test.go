package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30*Millisecond, func() { got = append(got, 3) })
	k.At(10*Millisecond, func() { got = append(got, 1) })
	k.At(20*Millisecond, func() { got = append(got, 2) })
	if err := k.Run(Second); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if k.Now() != Second {
		t.Fatalf("clock = %v, want %v", k.Now(), Second)
	}
}

func TestKernelFIFOAmongSimultaneous(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Millisecond, func() { got = append(got, i) })
	}
	if err := k.Run(Second); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestKernelHorizonLeavesLaterEventsPending(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10*Millisecond, func() { ran++ })
	k.At(2*Second, func() { ran++ })
	if err := k.Run(Second); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// A second Run picks up the remainder.
	if err := k.Run(3 * Second); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestKernelSchedulingInsideEvents(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.At(Millisecond, func() {
		times = append(times, k.Now())
		k.After(time.Millisecond, func() {
			times = append(times, k.Now())
		})
	})
	if err := k.Run(Second); err != nil {
		t.Fatal(err)
	}
	want := []Time{Millisecond, 2 * Millisecond}
	if !reflect.DeepEqual(times, want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(Millisecond, func() {})
	})
	if err := k.Run(2 * Second); err != nil {
		t.Fatal(err)
	}
}

func TestEventCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.At(Millisecond, func() { ran = true })
	e.Cancel()
	if err := k.Run(Second); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("canceled event ran")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(Millisecond, func() { ran++; k.Stop() })
	k.At(2*Millisecond, func() { ran++ })
	if err := k.Run(Second); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	tk := k.Every(100*time.Millisecond, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			tk := now // keep linter quiet about shadow; Stop below
			_ = tk
		}
	})
	k.At(550*Millisecond, func() { tk.Stop() })
	if err := k.Run(2 * Second); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 5 {
		t.Fatalf("ticks = %d, want 5 (%v)", len(ticks), ticks)
	}
	for i, at := range ticks {
		want := Time(i+1) * 100 * Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunAllDrainsQueue(t *testing.T) {
	k := NewKernel()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 100 {
			k.After(time.Millisecond, chain)
		}
	}
	k.After(time.Millisecond, chain)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("n = %d, want 100", n)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed = %d, want 100", k.Executed())
	}
}

// Property: for any set of event offsets, the kernel dispatches them in
// sorted order and the clock never moves backwards.
func TestKernelOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, off := range offsets {
			at := Time(off) * Millisecond
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		if err := k.RunAll(); err != nil {
			return false
		}
		if len(fired) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(offsets))
		for i, off := range offsets {
			want[i] = Time(off) * Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical RNG streams; different labels
// fork decorrelated streams deterministically.
func TestRNGDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 50; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		fa, fb := NewRNG(seed).Fork("x"), NewRNG(seed).Fork("x")
		for i := 0; i < 50; i++ {
			if fa.Normal(0, 1) != fb.Normal(0, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDistributionSanity(t *testing.T) {
	g := NewRNG(42)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %f, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("normal variance = %f, want ~4", variance)
	}

	// Bernoulli frequency.
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.01 {
		t.Fatalf("bernoulli frequency = %f, want ~0.3", f)
	}

	// Poisson mean.
	total := 0
	for i := 0; i < n/10; i++ {
		total += g.Poisson(4.5)
	}
	if m := float64(total) / float64(n/10); math.Abs(m-4.5) > 0.15 {
		t.Fatalf("poisson mean = %f, want ~4.5", m)
	}
}

func TestRNGTruncNormalBounds(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := g.TruncNormal(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %f", v)
		}
	}
}

func TestRNGPoissonZeroAndLargeMean(t *testing.T) {
	g := NewRNG(3)
	if got := g.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := g.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
	// Large-mean path must stay nonnegative and near the mean.
	sum := 0
	for i := 0; i < 2000; i++ {
		v := g.Poisson(100)
		if v < 0 {
			t.Fatalf("negative poisson sample")
		}
		sum += v
	}
	if m := float64(sum) / 2000; math.Abs(m-100) > 2 {
		t.Fatalf("poisson(100) mean = %f", m)
	}
}

func TestTraceRecordAndQuery(t *testing.T) {
	tr := NewTrace()
	tr.Record("hr", 0, 60)
	tr.Record("hr", Second, 70)
	tr.Record("hr", 2*Second, 80)
	if v, ok := tr.At("hr", 1500*Millisecond); !ok || v != 70 {
		t.Fatalf("At = %f,%v, want 70,true", v, ok)
	}
	if _, ok := tr.At("hr", -1); ok {
		t.Fatal("At before first sample should report !ok")
	}
	last, ok := tr.Last("hr")
	if !ok || last.V != 80 {
		t.Fatalf("Last = %+v", last)
	}
	st := tr.Stats("hr")
	if st.N != 3 || st.Min != 60 || st.Max != 80 || st.Mean != 70 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestTraceOutOfOrderPanics(t *testing.T) {
	tr := NewTrace()
	tr.Record("x", Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record did not panic")
		}
	}()
	tr.Record("x", Millisecond, 2)
}

func TestTraceCrossingsAndTimeAbove(t *testing.T) {
	tr := NewTrace()
	vals := []float64{0, 5, 0, 5, 5, 0}
	for i, v := range vals {
		tr.Record("y", Time(i)*Second, v)
	}
	if c := tr.Crossings("y", 2); c != 2 {
		t.Fatalf("crossings = %d, want 2", c)
	}
	st := tr.StatsAbove("y", 2)
	// Above 2 during [1,2) and [3,5): 3 seconds total.
	if math.Abs(st.TimeAboveSeconds-3) > 1e-9 {
		t.Fatalf("TimeAbove = %f, want 3", st.TimeAboveSeconds)
	}
}

func TestTraceEventsAndNames(t *testing.T) {
	tr := NewTrace()
	tr.Annotate(Second, "alarm", "spo2 low: %d", 85)
	tr.Annotate(2*Second, "pump", "stopped")
	tr.Record("a", 0, 1)
	tr.Record("b", 0, 1)
	if n := tr.CountEvents("alarm"); n != 1 {
		t.Fatalf("CountEvents = %d", n)
	}
	if got := tr.Events(""); len(got) != 2 {
		t.Fatalf("all events = %d", len(got))
	}
	if names := tr.SeriesNames(); !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Fatalf("names = %v", names)
	}
}

func TestTraceRender(t *testing.T) {
	tr := NewTrace()
	tr.Record("v", 0, 1)
	tr.Record("v", Second, 2)
	out := tr.Render([]string{"v", "missing"}, Second, Second)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestFromSeconds(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromSeconds(math.NaN()) != 0 || FromSeconds(math.Inf(1)) != 0 {
		t.Fatal("non-finite seconds should map to 0")
	}
}

// Fuzz-ish determinism check: a random workload replayed twice on two
// kernels with the same seed produces identical executed counts and clocks.
func TestKernelReplayDeterminism(t *testing.T) {
	build := func(seed int64) (uint64, Time) {
		k := NewKernel()
		g := rand.New(rand.NewSource(seed))
		var rec func(depth int)
		rec = func(depth int) {
			if depth > 3 {
				return
			}
			n := g.Intn(3)
			for i := 0; i < n; i++ {
				k.After(time.Duration(g.Intn(1000))*time.Millisecond, func() { rec(depth + 1) })
			}
		}
		for i := 0; i < 20; i++ {
			k.After(time.Duration(g.Intn(5000))*time.Millisecond, func() { rec(0) })
		}
		if err := k.Run(10 * Second); err != nil {
			t.Fatal(err)
		}
		return k.Executed(), k.Now()
	}
	e1, t1 := build(99)
	e2, t2 := build(99)
	if e1 != e2 || t1 != t2 {
		t.Fatalf("replay diverged: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}
