package sim

import "testing"

func TestSubSeedDeterministicAndLabelSensitive(t *testing.T) {
	if SubSeed(1, "a", 0) != SubSeed(1, "a", 0) {
		t.Fatal("SubSeed not deterministic")
	}
	seen := map[int64]string{}
	add := func(v int64, what string) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision: %s and %s both map to %d", prev, what, v)
		}
		seen[v] = what
	}
	for _, seed := range []int64{0, 1, 42, -7} {
		for _, label := range []string{"net", "patient", "e7/patient"} {
			for idx := 0; idx < 8; idx++ {
				add(SubSeed(seed, label, idx), "")
			}
		}
	}
}

// Substreams must be pure functions of (seed, label, index): deriving
// stream 5 must not require, or be perturbed by, deriving streams 0..4.
// Fork, by contrast, consumes parent state — the property split the fleet
// runner relies on.
func TestSubstreamOrderIndependent(t *testing.T) {
	direct := Substream(9, "cell", 5).Float64()
	for i := 0; i < 5; i++ {
		_ = Substream(9, "cell", i).Float64()
	}
	again := Substream(9, "cell", 5).Float64()
	if direct != again {
		t.Fatal("substream depends on derivation order")
	}

	p1, p2 := NewRNG(9), NewRNG(9)
	_ = p1.Fork("x")
	if p1.Fork("y").Float64() == p2.Fork("y").Float64() {
		t.Fatal("expected Fork to consume parent state (sanity check of the contrast)")
	}
}

func TestSubstreamsDecorrelated(t *testing.T) {
	// Neighbouring substreams must not produce correlated output; a crude
	// but effective check is that the first draws differ and means stay
	// near zero.
	var sum float64
	const n = 64
	first := map[float64]bool{}
	for i := 0; i < n; i++ {
		g := Substream(1234, "trial", i)
		v := g.Normal(0, 1)
		if first[v] {
			t.Fatalf("substreams %d produced a duplicate first draw", i)
		}
		first[v] = true
		sum += v
	}
	mean := sum / n
	if mean > 0.5 || mean < -0.5 {
		t.Fatalf("substream ensemble mean %v implausibly far from 0", mean)
	}
}
