// Package sigproc provides the physiological signal-processing substrate:
// synthesis of two-wavelength photoplethysmograms from ground-truth vitals,
// estimation of heart rate and SpO2 back out of the waveforms, digital
// filters, and artifact injection. The pulse oximeter device in
// internal/device/oximeter is a thin wrapper around this package; the
// window lengths here are what create the "signal processing time" delay
// identified in Figure 1 of the paper.
package sigproc

import "sort"

// MovingAverage is a fixed-window running mean filter.
type MovingAverage struct {
	buf  []float64
	next int
	full bool
	sum  float64
}

// NewMovingAverage returns a filter over a window of n samples. n must be
// positive.
func NewMovingAverage(n int) *MovingAverage {
	if n <= 0 {
		panic("sigproc: window must be positive")
	}
	return &MovingAverage{buf: make([]float64, n)}
}

// Push adds a sample and returns the current mean over the (possibly not
// yet full) window.
func (f *MovingAverage) Push(v float64) float64 {
	if f.full {
		f.sum -= f.buf[f.next]
	}
	f.buf[f.next] = v
	f.sum += v
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	return f.Value()
}

// Value returns the current mean without adding a sample.
func (f *MovingAverage) Value() float64 {
	n := f.n()
	if n == 0 {
		return 0
	}
	return f.sum / float64(n)
}

func (f *MovingAverage) n() int {
	if f.full {
		return len(f.buf)
	}
	return f.next
}

// Full reports whether the window has been filled at least once.
func (f *MovingAverage) Full() bool { return f.full }

// Reset empties the window.
func (f *MovingAverage) Reset() {
	f.next, f.full, f.sum = 0, false, 0
	for i := range f.buf {
		f.buf[i] = 0
	}
}

// Median is a fixed-window running median filter, the standard tool for
// rejecting impulsive motion artifacts without smearing edges.
type Median struct {
	buf  []float64
	next int
	full bool
	tmp  []float64
}

// NewMedian returns a median filter over n samples (n positive, usually odd).
func NewMedian(n int) *Median {
	if n <= 0 {
		panic("sigproc: window must be positive")
	}
	return &Median{buf: make([]float64, n), tmp: make([]float64, 0, n)}
}

// Push adds a sample and returns the median of the current window.
func (f *Median) Push(v float64) float64 {
	f.buf[f.next] = v
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	return f.Value()
}

// Value returns the median of the samples seen so far in the window.
func (f *Median) Value() float64 {
	n := len(f.buf)
	if !f.full {
		n = f.next
	}
	if n == 0 {
		return 0
	}
	f.tmp = f.tmp[:0]
	if f.full {
		f.tmp = append(f.tmp, f.buf...)
	} else {
		f.tmp = append(f.tmp, f.buf[:f.next]...)
	}
	sort.Float64s(f.tmp)
	if n%2 == 1 {
		return f.tmp[n/2]
	}
	return (f.tmp[n/2-1] + f.tmp[n/2]) / 2
}

// SinglePole is a first-order IIR low-pass filter:
// y[n] = y[n-1] + alpha*(x[n]-y[n-1]).
type SinglePole struct {
	alpha  float64
	y      float64
	primed bool
}

// NewSinglePole returns a low-pass with smoothing factor alpha in (0,1].
func NewSinglePole(alpha float64) *SinglePole {
	if alpha <= 0 || alpha > 1 {
		panic("sigproc: alpha must lie in (0,1]")
	}
	return &SinglePole{alpha: alpha}
}

// Push filters one sample. The first sample primes the state directly so
// the filter does not ramp from zero.
func (f *SinglePole) Push(v float64) float64 {
	if !f.primed {
		f.y = v
		f.primed = true
		return v
	}
	f.y += f.alpha * (v - f.y)
	return f.y
}

// Value returns the current output.
func (f *SinglePole) Value() float64 { return f.y }

// RateOfChange estimates the slope of a signal (units/second) over a
// sliding window by linear regression — used by trend alarms.
type RateOfChange struct {
	ts   []float64
	vs   []float64
	next int
	full bool
}

// NewRateOfChange returns a slope estimator over n samples.
func NewRateOfChange(n int) *RateOfChange {
	if n < 2 {
		panic("sigproc: slope window must be >= 2")
	}
	return &RateOfChange{ts: make([]float64, n), vs: make([]float64, n)}
}

// Push adds a (timeSeconds, value) pair and returns the current slope.
func (f *RateOfChange) Push(timeSeconds, v float64) float64 {
	f.ts[f.next] = timeSeconds
	f.vs[f.next] = v
	f.next++
	if f.next == len(f.ts) {
		f.next = 0
		f.full = true
	}
	return f.Slope()
}

// Slope returns the least-squares slope over the current window, or 0 when
// fewer than two samples are present or time does not advance.
func (f *RateOfChange) Slope() float64 {
	n := len(f.ts)
	if !f.full {
		n = f.next
	}
	if n < 2 {
		return 0
	}
	var st, sv, stt, stv float64
	idx := func(i int) int {
		if f.full {
			return (f.next + i) % len(f.ts)
		}
		return i
	}
	for i := 0; i < n; i++ {
		j := idx(i)
		st += f.ts[j]
		sv += f.vs[j]
		stt += f.ts[j] * f.ts[j]
		stv += f.ts[j] * f.vs[j]
	}
	den := float64(n)*stt - st*st
	if den == 0 {
		return 0
	}
	return (float64(n)*stv - st*sv) / den
}
