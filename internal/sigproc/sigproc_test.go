package sigproc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMovingAverage(t *testing.T) {
	f := NewMovingAverage(3)
	if got := f.Push(3); got != 3 {
		t.Fatalf("first = %f", got)
	}
	if got := f.Push(6); got != 4.5 {
		t.Fatalf("second = %f", got)
	}
	f.Push(9)
	if !f.Full() {
		t.Fatal("window should be full")
	}
	if got := f.Push(12); got != 9 { // (6+9+12)/3
		t.Fatalf("rolled = %f, want 9", got)
	}
	f.Reset()
	if f.Full() || f.Value() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: the moving average always equals the mean of the last n pushes.
func TestMovingAverageProperty(t *testing.T) {
	f := func(vals []float64, winSeed uint8) bool {
		win := int(winSeed%16) + 1
		ma := NewMovingAverage(win)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Constrain to signal-like magnitudes; the running-sum
			// implementation is not meant for 1e308-scale inputs where
			// catastrophic cancellation dominates.
			v = math.Mod(v, 1e6)
			vals[i] = v
			got := ma.Push(v)
			lo := i - win + 1
			if lo < 0 {
				lo = 0
			}
			var sum float64
			for _, w := range vals[lo : i+1] {
				sum += w
			}
			want := sum / float64(i+1-lo)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianRejectsSpike(t *testing.T) {
	f := NewMedian(5)
	for _, v := range []float64{10, 10, 10, 1000, 10} {
		f.Push(v)
	}
	if got := f.Value(); got != 10 {
		t.Fatalf("median = %f, want 10 (spike not rejected)", got)
	}
}

func TestMedianEvenPartialWindow(t *testing.T) {
	f := NewMedian(4)
	f.Push(1)
	f.Push(3)
	if got := f.Value(); got != 2 {
		t.Fatalf("median of {1,3} = %f, want 2", got)
	}
}

func TestSinglePolePrimesAndConverges(t *testing.T) {
	f := NewSinglePole(0.2)
	if got := f.Push(10); got != 10 {
		t.Fatalf("first sample should prime: %f", got)
	}
	for i := 0; i < 100; i++ {
		f.Push(20)
	}
	if math.Abs(f.Value()-20) > 0.01 {
		t.Fatalf("did not converge: %f", f.Value())
	}
}

func TestRateOfChangeLinear(t *testing.T) {
	f := NewRateOfChange(10)
	for i := 0; i < 10; i++ {
		f.Push(float64(i), 5+2*float64(i)) // slope 2
	}
	if got := f.Slope(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slope = %f, want 2", got)
	}
}

func TestRateOfChangeDegenerate(t *testing.T) {
	f := NewRateOfChange(4)
	if f.Slope() != 0 {
		t.Fatal("empty slope should be 0")
	}
	f.Push(1, 5)
	if f.Slope() != 0 {
		t.Fatal("single-sample slope should be 0")
	}
	f.Push(1, 7) // same timestamp: zero denominator
	if got := f.Slope(); got != 0 {
		t.Fatalf("degenerate slope = %f, want 0", got)
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	for _, s := range []float64{100, 97, 90, 85, 70, 60} {
		if got := SpO2ForRatio(RatioForSpO2(s)); math.Abs(got-s) > 1e-9 {
			t.Fatalf("round trip %f -> %f", s, got)
		}
	}
}

// End-to-end: synthesize a clean pleth at known vitals, estimate, and
// verify HR and SpO2 are recovered within clinical accuracy (±3% SpO2,
// ±5 bpm — the accuracy class of real pulse oximeters).
func TestSynthEstimateRoundTrip(t *testing.T) {
	cases := []struct{ hr, spo2 float64 }{
		{60, 98}, {75, 97}, {110, 92}, {55, 85}, {140, 75},
	}
	for _, c := range cases {
		synth := NewSynth(DefaultSynth(), sim.NewRNG(11))
		est := NewEstimator(DefaultEstimator())
		dt := synth.SampleInterval()
		var got Estimate
		n := 0
		for ts := sim.Time(0); n < 3; ts += dt { // use the 3rd window (warm)
			s := synth.Next(ts, dt, c.hr, c.spo2)
			if e, ok := est.Push(s); ok {
				got = e
				n++
			}
		}
		if !got.Valid {
			t.Fatalf("hr=%f spo2=%f: estimate invalid (quality %f)", c.hr, c.spo2, got.Quality)
		}
		if math.Abs(got.HeartRate-c.hr) > 5 {
			t.Fatalf("hr=%f: estimated %f", c.hr, got.HeartRate)
		}
		if math.Abs(got.SpO2-c.spo2) > 3 {
			t.Fatalf("spo2=%f: estimated %f", c.spo2, got.SpO2)
		}
	}
}

func TestEstimatorFlagsDropout(t *testing.T) {
	synth := NewSynth(DefaultSynth(), sim.NewRNG(12))
	est := NewEstimator(DefaultEstimator())
	dt := synth.SampleInterval()
	synth.InjectDropout(0, 30*sim.Second)
	var last Estimate
	seen := 0
	for ts := sim.Time(0); seen < 2; ts += dt {
		s := synth.Next(ts, dt, 70, 97)
		if e, ok := est.Push(s); ok {
			last = e
			seen++
		}
	}
	if last.Valid {
		t.Fatalf("dropout window produced a valid estimate: %+v", last)
	}
}

func TestEstimatorMotionDegradesQuality(t *testing.T) {
	clean := windowQuality(t, 0)
	noisy := windowQuality(t, 8)
	if noisy >= clean {
		t.Fatalf("motion artifact did not degrade quality: clean=%f noisy=%f", clean, noisy)
	}
}

func windowQuality(t *testing.T, motionGain float64) float64 {
	t.Helper()
	synth := NewSynth(DefaultSynth(), sim.NewRNG(13))
	est := NewEstimator(DefaultEstimator())
	dt := synth.SampleInterval()
	if motionGain > 0 {
		synth.InjectMotion(0, sim.Minute, motionGain)
	}
	for ts := sim.Time(0); ; ts += dt {
		s := synth.Next(ts, dt, 70, 97)
		if e, ok := est.Push(s); ok {
			return e.Quality
		}
	}
}

func TestProcessingDelayMatchesWindow(t *testing.T) {
	p := DefaultEstimator()
	est := NewEstimator(p)
	if est.ProcessingDelay() != p.Window {
		t.Fatalf("delay = %v, want %v", est.ProcessingDelay(), p.Window)
	}
	if est.WindowSamples() != 200 { // 4 s * 50 Hz
		t.Fatalf("window samples = %d, want 200", est.WindowSamples())
	}
}

// Property: the estimator never emits Valid estimates with non-physiologic
// values, whatever junk the waveform contains.
func TestEstimatorPlausibilityGateProperty(t *testing.T) {
	f := func(seed int64, hrRaw, spo2Raw uint8) bool {
		hr := 20 + float64(hrRaw%230)
		spo2 := 40 + float64(spo2Raw%61)
		synth := NewSynth(DefaultSynth(), sim.NewRNG(seed))
		est := NewEstimator(DefaultEstimator())
		dt := synth.SampleInterval()
		if seed%3 == 0 {
			synth.InjectMotion(0, 20*sim.Second, 10)
		}
		count := 0
		for ts := sim.Time(0); count < 2; ts += dt {
			s := synth.Next(ts, dt, hr, spo2)
			if e, ok := est.Push(s); ok {
				count++
				if e.Valid {
					if e.HeartRate < 25 || e.HeartRate > 240 || e.SpO2 < 40 || e.SpO2 > 100 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPulseShapeBounded(t *testing.T) {
	for ph := 0.0; ph < 1; ph += 0.001 {
		v := pulseShape(ph)
		if v < 0 || v > 1.2 {
			t.Fatalf("pulseShape(%f) = %f out of bounds", ph, v)
		}
	}
}
