package sigproc

import (
	"math"

	"repro/internal/sim"
)

// PlethSample is one two-wavelength photoplethysmogram sample. Real pulse
// oximeters shine red (~660 nm) and infrared (~940 nm) light through the
// finger; the ratio of the pulsatile (AC) to steady (DC) absorbances at
// the two wavelengths encodes arterial oxygen saturation.
type PlethSample struct {
	T   sim.Time
	Red float64
	IR  float64
}

// SynthParams control waveform generation.
type SynthParams struct {
	SampleRate  float64 // Hz; clinical oximeters run 30-100 Hz
	Perfusion   float64 // AC/DC fraction of the IR channel (typ. 0.02)
	NoiseStddev float64 // additive white noise on each channel
}

// DefaultSynth returns typical front-end characteristics.
func DefaultSynth() SynthParams {
	return SynthParams{SampleRate: 50, Perfusion: 0.02, NoiseStddev: 0.0004}
}

// Synth generates pleth waveforms from ground-truth vitals. It keeps the
// cardiac phase continuous across calls so that heart-rate changes do not
// produce waveform discontinuities.
type Synth struct {
	p     SynthParams
	rng   *sim.RNG
	phase float64 // cardiac phase in [0,1)

	artifactUntil sim.Time
	artifactGain  float64
	dropoutUntil  sim.Time
	biasUntil     sim.Time
	biasDelta     float64 // SpO2 points subtracted while biased
}

// NewSynth returns a generator. rng must be non-nil.
func NewSynth(p SynthParams, rng *sim.RNG) *Synth {
	if p.SampleRate <= 0 {
		panic("sigproc: sample rate must be positive")
	}
	return &Synth{p: p, rng: rng}
}

// Reset returns the generator to its initial cardiac phase and clears
// any injected artifact, dropout, or bias windows for a prototype
// clone. The RNG is shared wiring owned by the rig, which reseeds it
// separately.
func (s *Synth) Reset() {
	s.phase = 0
	s.artifactUntil = 0
	s.artifactGain = 0
	s.dropoutUntil = 0
	s.biasUntil = 0
	s.biasDelta = 0
}

// SampleInterval returns the spacing between samples.
func (s *Synth) SampleInterval() sim.Time {
	return sim.FromSeconds(1 / s.p.SampleRate)
}

// pulseShape is a stylized arterial pulse: sharp systolic upstroke with a
// dicrotic notch, built from two raised cosines. Phase in [0,1).
func pulseShape(phase float64) float64 {
	systole := 0.0
	if phase < 0.35 {
		systole = 0.5 * (1 - math.Cos(2*math.Pi*phase/0.35))
	}
	dicrotic := 0.0
	if phase >= 0.4 && phase < 0.65 {
		dicrotic = 0.12 * (1 - math.Cos(2*math.Pi*(phase-0.4)/0.25))
	}
	return systole + dicrotic
}

// RatioForSpO2 inverts the classic empirical calibration SpO2 = 110 - 25R,
// giving the red/IR modulation ratio R that encodes a saturation.
func RatioForSpO2(spo2 float64) float64 {
	if spo2 > 100 {
		spo2 = 100
	}
	if spo2 < 50 {
		spo2 = 50
	}
	return (110 - spo2) / 25
}

// SpO2ForRatio applies the calibration in the forward direction.
func SpO2ForRatio(r float64) float64 {
	s := 110 - 25*r
	if s > 100 {
		s = 100
	}
	if s < 0 {
		s = 0
	}
	return s
}

// Next produces the sample at time t for a patient with the given true
// heart rate and SpO2. dt is the time since the previous sample.
func (s *Synth) Next(t sim.Time, dt sim.Time, heartRate, spo2 float64) PlethSample {
	if heartRate < 10 {
		heartRate = 10
	}
	s.phase += heartRate / 60 * dt.Seconds()
	s.phase -= math.Floor(s.phase)

	if t < s.dropoutUntil {
		// Probe disconnected: both channels collapse to ambient noise.
		return PlethSample{T: t, Red: s.rng.Normal(0, s.p.NoiseStddev*5), IR: s.rng.Normal(0, s.p.NoiseStddev*5)}
	}

	if t < s.biasUntil {
		// Probe misposition: the waveform stays clean (the estimator sees
		// high quality) but the red/IR ratio is shifted — a plausible,
		// VALID, wrong reading. This is the failure mode multivariate
		// smart alarms exist to reject.
		spo2 -= s.biasDelta
	}
	pulse := pulseShape(s.phase)
	acIR := s.p.Perfusion
	acRed := RatioForSpO2(spo2) * acIR

	ir := 1 + acIR*pulse + s.rng.Normal(0, s.p.NoiseStddev)
	red := 1 + acRed*pulse + s.rng.Normal(0, s.p.NoiseStddev)

	if t < s.artifactUntil {
		// Motion artifact: correlated large-amplitude disturbance.
		m := s.artifactGain * s.rng.Normal(0, s.p.Perfusion*4)
		ir += m
		red += m * s.rng.Uniform(0.7, 1.3)
	}
	return PlethSample{T: t, Red: red, IR: ir}
}

// InjectMotion corrupts the signal with motion artifact for the duration.
func (s *Synth) InjectMotion(now sim.Time, d sim.Time, gain float64) {
	if gain <= 0 {
		gain = 1
	}
	s.artifactUntil = now + d
	s.artifactGain = gain
}

// InjectDropout simulates probe disconnection for the duration.
func (s *Synth) InjectDropout(now sim.Time, d sim.Time) {
	s.dropoutUntil = now + d
}

// InjectBias shifts the reported saturation down by delta points for the
// duration while keeping the waveform clean — a mispositioned probe whose
// readings pass the signal-quality check.
func (s *Synth) InjectBias(now sim.Time, d sim.Time, delta float64) {
	s.biasUntil = now + d
	s.biasDelta = delta
}

// InArtifact reports whether an artifact, dropout or bias is active at t.
func (s *Synth) InArtifact(t sim.Time) bool {
	return t < s.artifactUntil || t < s.dropoutUntil || t < s.biasUntil
}
