package sigproc

import (
	"math"

	"repro/internal/sim"
)

// Estimate is the oximeter's output: processed heart rate and SpO2 with a
// validity flag. Invalid estimates correspond to windows the signal-quality
// check rejected (artifact, dropout, non-physiologic ratio).
type Estimate struct {
	T         sim.Time // time of the window end
	HeartRate float64  // beats/min
	SpO2      float64  // percent
	Valid     bool
	Quality   float64 // [0,1] signal-quality index
}

// EstimatorParams size the processing window. The window length is the
// dominant component of the "signal processing time" delay in Figure 1:
// an estimate describes the patient as of half a window ago at best.
type EstimatorParams struct {
	SampleRate   float64  // Hz, must match the synthesizer
	Window       sim.Time // analysis window length (typ. 4 s)
	MinQuality   float64  // below this, the estimate is flagged invalid
	MaxHeartRate float64  // plausibility gate, beats/min
	MinHeartRate float64
}

// DefaultEstimator returns clinically typical processing parameters.
func DefaultEstimator() EstimatorParams {
	return EstimatorParams{
		SampleRate:   50,
		Window:       4 * sim.Second,
		MinQuality:   0.25,
		MaxHeartRate: 240,
		MinHeartRate: 25,
	}
}

// Estimator consumes pleth samples and emits one Estimate per window.
type Estimator struct {
	p       EstimatorParams
	samples []PlethSample
	perWin  int
	ac      []float64 // zero-mean IR scratch, reused across windows
}

// NewEstimator returns an estimator sized for the given parameters.
func NewEstimator(p EstimatorParams) *Estimator {
	if p.SampleRate <= 0 || p.Window <= 0 {
		panic("sigproc: estimator needs positive rate and window")
	}
	perWin := int(p.Window.Seconds() * p.SampleRate)
	if perWin < 8 {
		panic("sigproc: window too short for analysis")
	}
	return &Estimator{p: p, samples: make([]PlethSample, 0, perWin), perWin: perWin, ac: make([]float64, perWin)}
}

// Reset drops any partially accumulated window so a prototype clone
// starts from an empty buffer; parameters and scratch capacity persist.
func (e *Estimator) Reset() { e.samples = e.samples[:0] }

// WindowSamples reports how many samples form one analysis window.
func (e *Estimator) WindowSamples() int { return e.perWin }

// ProcessingDelay reports the intrinsic latency of the estimator: a full
// window must elapse before the first estimate describing its contents.
func (e *Estimator) ProcessingDelay() sim.Time { return e.p.Window }

// Push adds one sample. When a full window has accumulated it is analyzed,
// the buffer resets, and the estimate is returned with ok=true.
func (e *Estimator) Push(s PlethSample) (Estimate, bool) {
	e.samples = append(e.samples, s)
	if len(e.samples) < e.perWin {
		return Estimate{}, false
	}
	est := e.analyze()
	e.samples = e.samples[:0]
	return est, true
}

// analyze runs ratio-of-ratios SpO2 estimation and autocorrelation-based
// heart-rate detection over the buffered window.
func (e *Estimator) analyze() Estimate {
	n := len(e.samples)
	endT := e.samples[n-1].T

	// Channel means (DC) and zero-mean AC series.
	var dcR, dcI float64
	for _, s := range e.samples {
		dcR += s.Red
		dcI += s.IR
	}
	dcR /= float64(n)
	dcI /= float64(n)
	if dcR < 0.1 || dcI < 0.1 {
		// Probe off: no light path.
		return Estimate{T: endT, Valid: false, Quality: 0}
	}
	// The red channel's AC series is only ever reduced to its RMS, so it
	// is accumulated scalar-wise; the IR series feeds the autocorrelation
	// and lands in a reused scratch slice. Both changes preserve the
	// original floating-point operation order bit for bit.
	acI := e.ac[:n]
	var rmsR, rmsI float64
	for i, s := range e.samples {
		ar := s.Red - dcR
		ai := s.IR - dcI
		acI[i] = ai
		rmsR += ar * ar
		rmsI += ai * ai
	}
	rmsR = math.Sqrt(rmsR / float64(n))
	rmsI = math.Sqrt(rmsI / float64(n))
	if rmsI == 0 {
		return Estimate{T: endT, Valid: false, Quality: 0}
	}

	ratio := (rmsR / dcR) / (rmsI / dcI)
	spo2 := SpO2ForRatio(ratio)

	// Heart rate by autocorrelation peak of the IR AC component.
	hr, periodicity := autocorrHR(acI, e.p.SampleRate, e.p.MinHeartRate, e.p.MaxHeartRate)

	quality := periodicity
	valid := quality >= e.p.MinQuality && hr >= e.p.MinHeartRate && hr <= e.p.MaxHeartRate &&
		spo2 >= 40 && spo2 <= 100
	return Estimate{T: endT, HeartRate: hr, SpO2: spo2, Valid: valid, Quality: quality}
}

// autocorrHR finds the dominant periodicity in x and converts it to
// beats/min. The returned periodicity in [0,1] is the normalized
// autocorrelation at the detected lag — a natural signal-quality index
// that collapses under uncorrelated artifact noise.
func autocorrHR(x []float64, fs, minHR, maxHR float64) (hr, periodicity float64) {
	n := len(x)
	var r0 float64
	for _, v := range x {
		r0 += v * v
	}
	if r0 == 0 {
		return 0, 0
	}
	minLag := int(fs * 60 / maxHR)
	maxLag := int(fs * 60 / minHR)
	if maxLag >= n {
		maxLag = n - 1
	}
	if minLag < 1 {
		minLag = 1
	}
	bestLag, bestR := 0, 0.0
	for lag := minLag; lag <= maxLag; lag++ {
		r := lagCorr(x, lag) / r0
		if r > bestR {
			bestR = r
			bestLag = lag
		}
	}
	if bestLag == 0 {
		return 0, 0
	}
	// Refine: if lag/2 also scores nearly as high, the true period is the
	// half (we latched onto a subharmonic).
	if half := bestLag / 2; half >= minLag {
		if r := lagCorr(x, half) / r0; r > 0.85*bestR {
			bestLag = half
			bestR = r
		}
	}
	return 60 * fs / float64(bestLag), clamp01(bestR)
}

// lagCorr is the raw autocorrelation sum at one lag. Slicing the tail
// lets the compiler drop both bounds checks from the inner loop — this
// is the hottest loop in the whole engine (42% of cell CPU) — while the
// products and their accumulation order stay exactly those of the
// textbook x[i]*x[i-lag] formulation.
func lagCorr(x []float64, lag int) float64 {
	var r float64
	tail := x[lag:]
	for i, v := range tail {
		r += v * x[i]
	}
	return r
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
